package main

import "testing"

// TestRun executes the whole example; it errors on any verdict that
// deviates from the paper's claims.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
