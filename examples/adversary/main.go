// Adversary: watch the Theorem 1 impossibility happen live, on both
// substrates. The environment strategy from the paper's proof starves
// process p1 against every opaque TM — p2 commits round after round
// while p1 is aborted forever (or, with a blocking TM, everyone
// blocks). The same strategy logic drives the deterministic simulated
// TMs and, through the linearization-point hooks, the five native
// (real-goroutine) algorithms — so the proof's infinite histories and
// real hardware starvation sit in one table.
package main

import (
	"fmt"
	"os"

	"livetm/internal/adversary"
	"livetm/internal/core"
	"livetm/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adversary:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Theorem 1: no TM ensures both opacity and local progress.")
	fmt.Println("Running the proof's environment strategy against every simulated TM:")
	fmt.Println()
	fmt.Printf("%-14s %-10s %-10s %-10s %-10s\n", "tm", "strategy", "p1-commit", "p2-commit", "outcome")

	for _, nf := range core.Registry(false) {
		for _, alg := range []int{1, 2} {
			cfg := adversary.Config{Rounds: 10, MaxSteps: 40000, Seed: 3}
			var res adversary.Result
			if alg == 1 {
				res = adversary.Algorithm1(nf.Factory, cfg)
			} else {
				res = adversary.Algorithm2(nf.Factory, cfg)
			}
			outcome := "p1 starved"
			if res.Rounds == 0 {
				outcome = "blocked"
			}
			if res.P1Committed {
				outcome = "P1 COMMITTED (!)"
			}
			fmt.Printf("%-14s alg%-7d %-10d %-10d %-10s\n",
				nf.Name, alg, res.Stats.Commits[1], res.Stats.Commits[2], outcome)
		}
	}

	fmt.Println("\nThe same strategies against the native TMs (real goroutines, gated")
	fmt.Println("through the linearization-point hooks, monitored while they run):")
	fmt.Println()
	cells, err := adversary.RunMatrix(adversary.Config{Rounds: 6})
	if err != nil {
		return err
	}
	fmt.Print(adversary.FormatCells(cells))
	for _, c := range cells {
		if !c.Dichotomy() {
			return fmt.Errorf("%s on %s: p1 committed", c.Strategy, c.Engine)
		}
	}

	fmt.Println("\nA sample starving run against dstm (Figure 10's shape — p1 aborted forever):")
	nf, ok := core.Lookup("dstm")
	if !ok {
		return fmt.Errorf("dstm not registered")
	}
	res := adversary.Algorithm1(nf.Factory, adversary.Config{Rounds: 4, Seed: 3})
	h := res.History
	if len(h) > 40 {
		h = h[len(h)-40:]
	}
	fmt.Print(trace.Render(h))
	return nil
}
