// Quickstart: run transactions on a TM, record the history, and check
// it for opacity — the core workflow of the library.
package main

import (
	"fmt"
	"os"

	"livetm/internal/model"
	"livetm/internal/safety"
	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/tl2"
	"livetm/internal/trace"
	"livetm/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Create a TM (TL2-style) and wrap it with a history recorder.
	rec := stm.NewRecorder(tl2.New())

	// 2. Run two processes under the deterministic cooperative
	// scheduler. Each increments a shared counter transactionally.
	s := sim.New(sim.NewSeeded(42))
	defer s.Close()
	for p := model.Proc(1); p <= 2; p++ {
		_ = s.Spawn(p, func(env *sim.Env) {
			for i := 0; i < 3; i++ {
				attempts := workload.Increment(rec, env, 0)
				fmt.Printf("p%d committed increment #%d after %d attempt(s)\n", env.Proc(), i+1, attempts)
			}
		})
	}
	s.Run(10000)

	// 3. Inspect the recorded history.
	h := rec.History()
	fmt.Println("\nrecorded history:")
	fmt.Print(trace.Render(h))

	// 4. Check safety: the history must be opaque (and therefore
	// strictly serializable).
	op, err := safety.CheckOpacity(h)
	if err != nil {
		return err
	}
	fmt.Printf("\nopaque: %v\n", op.Holds)
	if !op.Holds {
		return fmt.Errorf("opacity violated: %s", op.Reason)
	}
	fmt.Println("witness serialization:")
	for _, t := range op.Witness {
		fmt.Println("  ", t)
	}

	// 5. The counter ends at 6: three commits per process.
	env := sim.Background(3)
	var final model.Value
	workload.Atomically(rec, env, func(tx *workload.Tx) { final = tx.Read(0) })
	fmt.Printf("\nfinal counter value: %d (want 6)\n", final)
	return nil
}
