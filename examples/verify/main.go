// Verify: exhaustively model-check TM implementations. The explorer
// enumerates every interleaving (and every crash placement) of a small
// scenario and checks opacity of each reachable history — then shows
// the checker catching a deliberately broken TM, with the violating
// schedule reported for replay.
package main

import (
	"fmt"
	"os"

	"livetm/internal/core"
	"livetm/internal/explore"
	"livetm/internal/model"
	"livetm/internal/safety"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		os.Exit(1)
	}
}

func incrementBody(tm stm.TM, p model.Proc) func(*sim.Env) {
	return func(env *sim.Env) {
		v, st := tm.Read(env, 0)
		if st != stm.OK {
			return
		}
		if tm.Write(env, 0, v+1) != stm.OK {
			return
		}
		tm.TryCommit(env)
	}
}

func opacityCheck(schedule []model.Proc, h model.History) error {
	res, err := safety.CheckOpacity(h)
	if err != nil {
		return err
	}
	if !res.Holds {
		return fmt.Errorf("not opaque: %s", res.Reason)
	}
	return nil
}

func run() error {
	fmt.Println("Exhaustive opacity verification (all schedules of 2 one-shot increments, depth 14):")
	for _, name := range []string{"tinystm", "tl2", "norec", "dstm", "ostm", "fgp"} {
		nf, ok := core.Lookup(name)
		if !ok {
			return fmt.Errorf("%s not registered", name)
		}
		sc := explore.Scenario{NProcs: 2, NVars: 1, Factory: nf.Factory, Body: incrementBody}
		stats, err := explore.Run(sc, 14, opacityCheck)
		if err != nil {
			return fmt.Errorf("%s FAILED: %w", name, err)
		}
		fmt.Printf("  %-10s %5d schedules, deepest %2d — every history opaque\n",
			name, stats.Schedules, stats.Deepest)
	}

	fmt.Println("\nWith exhaustive crash injection (every placement of a p1 crash):")
	nf, _ := core.Lookup("ostm")
	sc := explore.Scenario{NProcs: 2, NVars: 2, Factory: nf.Factory,
		Body: func(tm stm.TM, p model.Proc) func(*sim.Env) {
			if p == 1 {
				return func(env *sim.Env) {
					if tm.Write(env, 0, 7) != stm.OK {
						return
					}
					if tm.Write(env, 1, 8) != stm.OK {
						return
					}
					tm.TryCommit(env)
				}
			}
			return func(env *sim.Env) {
				tm.Read(env, 0)
				tm.Read(env, 1)
				tm.TryCommit(env)
			}
		}}
	stats, err := explore.RunWithCrashes(sc, 12, []model.Proc{1}, opacityCheck)
	if err != nil {
		return fmt.Errorf("ostm crash-exhaustive FAILED: %w", err)
	}
	fmt.Printf("  ostm: %d schedules×crash-points — helped commits stay atomic and opaque\n", stats.Schedules)

	fmt.Println("\nAnd a deliberately broken TM (in-place writes, no isolation):")
	broken := explore.Scenario{NProcs: 2, NVars: 1,
		Factory: func(n, v int) stm.TM { return &dirtyTM{store: map[model.TVar]model.Value{}} },
		Body: func(tm stm.TM, p model.Proc) func(*sim.Env) {
			if p == 1 {
				return func(env *sim.Env) {
					tm.Write(env, 0, 7)
					env.Yield() // transaction left live: its write must be invisible
				}
			}
			return func(env *sim.Env) {
				tm.Read(env, 0)
				tm.TryCommit(env)
			}
		}}
	_, err = explore.Run(broken, 10, opacityCheck)
	if err == nil {
		return fmt.Errorf("the broken TM was not caught")
	}
	fmt.Printf("  caught: %v\n", err)
	return nil
}

// dirtyTM leaks uncommitted writes — the explorer must find the
// schedule that exposes it.
type dirtyTM struct {
	store map[model.TVar]model.Value
}

func (b *dirtyTM) Name() string { return "dirty" }

func (b *dirtyTM) Read(env *sim.Env, x model.TVar) (model.Value, stm.Status) {
	env.Yield()
	return b.store[x], stm.OK
}

func (b *dirtyTM) Write(env *sim.Env, x model.TVar, v model.Value) stm.Status {
	env.Yield()
	b.store[x] = v
	return stm.OK
}

func (b *dirtyTM) TryCommit(env *sim.Env) stm.Status {
	env.Yield()
	return stm.OK
}
