// Bank: concurrent transfers over every TM implementation, with crash
// injection — shows which TMs keep the bank live when a process dies
// mid-transaction, the paper's liveness question in application form.
package main

import (
	"fmt"
	"os"

	"livetm/internal/core"
	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/workload"
)

const (
	accounts = 6
	initial  = model.Value(100)
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bank:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("%-14s %-12s %-14s %-12s\n", "tm", "transfers", "after-crash", "audit")
	for _, nf := range core.Registry(false) {
		tm := nf.Factory(4, accounts)
		setup := sim.Background(4)
		bank := workload.NewBank(tm, setup, accounts, initial)

		s := sim.New(sim.NewSeeded(7))
		transfers := make([]int, 3)
		for i := 0; i < 3; i++ {
			p := model.Proc(i + 1)
			idx := i
			_ = s.Spawn(p, func(env *sim.Env) {
				state := uint64(idx + 13)
				for {
					state ^= state << 13
					state ^= state >> 7
					state ^= state << 17
					from := int(state % accounts)
					to := int((state >> 8) % accounts)
					bank.Transfer(env, from, to, 1)
					transfers[idx]++
				}
			})
		}
		// Let the bank run, then crash p1 wherever it happens to be —
		// possibly mid-transaction, holding locks.
		s.Run(900)
		s.Crash(1)
		before := transfers[1] + transfers[2]
		s.Run(4000)
		after := transfers[1] + transfers[2] - before

		// Audit inside the scheduler: survivors (or the crashed p1)
		// may be wedged holding locks, so the audit itself can block;
		// a bounded step budget turns "blocked" into a report instead
		// of a hang.
		var total model.Value
		audited := false
		_ = s.Spawn(4, func(env *sim.Env) {
			total = bank.Total(env)
			audited = true
		})
		s.Run(4000)
		s.Close()

		audit := "blocked"
		switch {
		case audited && total == accounts*initial:
			audit = "ok"
		case audited:
			audit = fmt.Sprintf("BAD TOTAL %d", total)
		}
		fmt.Printf("%-14s %-12d %-14d %-12s\n", nf.Name, transfers[0]+before, after, audit)
	}
	fmt.Println("\nafter-crash = transfers completed by survivors after p1 crashed mid-run;")
	fmt.Println("0 with a blocked audit means the crashed process wedged the TM —")
	fmt.Println("the liveness failure the paper's §3.2.3 classification predicts.")
	return nil
}
