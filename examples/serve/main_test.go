package main

import "testing"

// TestRun executes the whole example: blocking and async submissions
// on a live session, dynamic worker admission, and a certified close.
// Run with -race.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
