// Serve: the session-first engine API. Where the other examples drive
// closed batch runs (engine.Run with a fixed Procs × OpsPerProc
// budget), this one runs a TM the way the paper's liveness results
// frame it — as an ongoing service: engine.Open starts a long-lived
// session with a worker pool and a resident live monitor, client
// goroutines submit individual transactions with Exec (blocking) and
// Submit (async callback), Stats snapshots the counters mid-flight,
// AddWorkers grows the pool while traffic is flowing, and Close drains
// the in-flight transactions and returns the monitor's final report.
//
// `livetm serve` wraps exactly this shape as a SIGTERM-clean soak
// command; engine.Run is the batch convenience wrapper over the same
// session core.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"livetm/internal/engine"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run() error {
	// A session is an open-world TM instance: no transaction budget, no
	// fixed process loop — just a pool of workers (MaxWorkers provisions
	// room to grow) and whatever clients submit.
	s, err := engine.Open(engine.SessionConfig{
		Engine:     "native-tinystm",
		Workers:    2,
		MaxWorkers: 3,
		Vars:       4,
		Live:       true,
	})
	if err != nil {
		return err
	}

	// Blocking clients: several goroutines transfer between two
	// accounts, each Exec returning only when its transaction
	// committed.
	const submitters, transfers = 4, 200
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			from, to := id%4, (id+1)%4
			for j := 0; j < transfers; j++ {
				err := s.Exec(context.Background(), func(tx engine.Tx) error {
					fv, err := tx.Read(from)
					if err != nil {
						return err
					}
					tv, err := tx.Read(to)
					if err != nil {
						return err
					}
					if err := tx.Write(from, fv-1); err != nil {
						return err
					}
					return tx.Write(to, tv+1)
				})
				if err != nil {
					fmt.Fprintf(os.Stderr, "submitter %d: %v\n", id, err)
					return
				}
			}
		}(i)
	}

	// Grow the pool mid-flight: the recorder and backoff slots were
	// provisioned for MaxWorkers, so the new worker's events slot
	// straight into the checked stream (it joins the monitor's process
	// set with its first event).
	if err := s.AddWorkers(1); err != nil {
		return err
	}

	// Async clients: fire-and-forget audits with a result callback.
	var audited atomic.Int64
	for i := 0; i < 50; i++ {
		err := s.Submit(func(tx engine.Tx) error {
			var total int64
			for v := 0; v < 4; v++ {
				x, err := tx.Read(v)
				if err != nil {
					return err
				}
				total += x
			}
			if total != 0 {
				return fmt.Errorf("audit: total = %d, want 0", total)
			}
			return nil
		}, func(err error) {
			if err == nil {
				audited.Add(1)
			}
		})
		if err != nil {
			return err
		}
	}

	mid := s.Stats()
	fmt.Printf("mid-flight: workers=%d submitted=%d completed=%d commits=%d aborts=%d (%.1f%%)\n",
		mid.Workers, mid.Submitted, mid.Completed, mid.Commits, mid.Aborts, 100*mid.AbortRate())

	wg.Wait()
	if err := s.Drain(context.Background()); err != nil {
		return err
	}
	rep, err := s.Close()
	if err != nil {
		return err
	}
	st := s.Stats()
	fmt.Printf("closed: commits=%d (audits passed: %d/50) over %d workers\n",
		st.Commits, audited.Load(), st.Workers)
	fmt.Print(rep.Format())
	fmt.Printf("liveness class: %s\n", rep.LivenessClass())

	if want := uint64(submitters*transfers + 50); st.Commits != want {
		return fmt.Errorf("commits = %d, want %d", st.Commits, want)
	}
	if audited.Load() != 50 {
		return fmt.Errorf("audits passed = %d, want 50", audited.Load())
	}
	if !rep.Checked || !rep.Opacity.Holds {
		return fmt.Errorf("the resident monitor did not certify the session: %s", rep.Opacity.Reason)
	}
	fmt.Println("the session served blocking and async clients, grew its pool, and closed with a certified history")
	return nil
}
