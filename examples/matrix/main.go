// Matrix: reproduce the paper's §3.2.3 liveness classification as a
// measured table — every TM implementation against every fault model,
// compared to the paper's claims.
package main

import (
	"fmt"
	"os"

	"livetm/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "matrix:", err)
		os.Exit(1)
	}
}

func run() error {
	rows := core.RunMatrix(core.MatrixConfig{Ablations: true})
	fmt.Print(core.FormatMatrix(rows))
	fmt.Println("paper claims (§3.2.3, §6):")
	fmt.Println("  glock        local progress, but only fault-free; any faulty lock holder blocks all")
	fmt.Println("  tinystm/2pl  solo progress iff parasitic-free AND crash-free (held locks)")
	fmt.Println("  tl2/norec    solo progress iff crash-free (commit-time locks; deferred updates shrug off parasites)")
	fmt.Println("  dstm         solo progress iff parasitic-free (obstruction-free; competitors abort crashed owners)")
	fmt.Println("  ostm         global progress in any fault-prone system (lock-free helping)")
	fmt.Println("  fgp          opacity + global progress in any fault-prone system (Theorem 3)")
	for _, r := range rows {
		if !r.Match() {
			return fmt.Errorf("MISMATCH: %s measured %+v, expected %+v", r.Name, r.Measured, r.Expected)
		}
	}
	fmt.Println("\nall measured rows match the paper's classification.")
	return nil
}
