// Netclient: sessions on the wire. Where the serve example drives a
// session in-process, this one puts the same session behind the wire
// API (internal/server) and drives it from the outside through
// internal/client: blocking Exec programs, async Submit+Wait, an
// overload-aware retry loop around the server's 429/Retry-After
// admission refusals, and a graceful drain that brings back the
// session's final monitor report over the wire.
//
// `livetm serve -listen` wraps the server half as a long-lived
// process and `livetm client` the client half; this example runs both
// ends in one binary over a loopback listener.
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"livetm/internal/client"
	"livetm/internal/engine"
	"livetm/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netclient:", err)
		os.Exit(1)
	}
}

func run() error {
	// Server half: a live session behind the wire API. Cuts are
	// disabled (QuiesceEvery -1) because wire clients may hold
	// interactive transactions open across round trips; the monitor's
	// approximate fallback carries the stream instead. MaxInflight is
	// deliberately tiny so the example exercises the 429 path.
	sess, err := engine.Open(engine.SessionConfig{
		Engine:       "native-tl2",
		Workers:      2,
		Vars:         4,
		Live:         true,
		QuiesceEvery: -1,
	})
	if err != nil {
		return err
	}
	srv := server.New(sess, server.Config{
		MaxInflight: 4,
		RetryAfter:  5 * time.Millisecond,
		Info:        server.InfoResponse{Engine: sess.Name(), Workers: 2, Vars: 4, Live: true},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hsrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = hsrv.Serve(ln) }()
	defer hsrv.Close()
	addr := ln.Addr().String()
	fmt.Printf("serving %s on %s\n", sess.Name(), addr)

	// Client half, blocking: each connection runs increment programs
	// with Exec, backing off on engine.ErrOverloaded exactly as the
	// sentinel's Retry-After hint says. errors.Is works across the
	// wire: the server turned the engine sentinel into a stable code,
	// the client turned it back.
	const conns, progs = 6, 50
	var committed, backoffs atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := client.New(client.Config{Addr: addr, Name: fmt.Sprintf("conn-%d", id)})
			prog := []server.Op{{Kind: server.OpIncr, Var: id % 4, Val: 1}}
			for n := 0; n < progs; n++ {
				for {
					res, err := c.Exec(context.Background(), engine.AnyWorker, prog)
					if err == nil {
						if res.Committed {
							committed.Add(1)
						}
						break
					}
					var werr *client.Error
					if errors.Is(err, engine.ErrOverloaded) && errors.As(err, &werr) {
						backoffs.Add(1)
						time.Sleep(werr.RetryAfter)
						continue
					}
					fmt.Fprintf(os.Stderr, "conn-%d: %v\n", id, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("blocking: %d/%d programs committed, %d overload backoffs\n",
		committed.Load(), conns*progs, backoffs.Load())

	// Async: Submit hands back an id immediately; Wait redeems it.
	c := client.New(client.Config{Addr: addr, Name: "async"})
	ctx := context.Background()
	id, err := c.Submit(ctx, engine.AnyWorker, []server.Op{{Kind: server.OpRead, Var: 0}})
	if err != nil {
		return err
	}
	res, err := c.Wait(ctx, id)
	if err != nil {
		return err
	}
	fmt.Printf("async: var 0 = %d after the blocking phase\n", res.Reads[0])

	// Graceful drain over the wire: the server finishes every accepted
	// submission, closes the session, and ships the monitor's final
	// report back.
	dr, err := c.Drain(ctx)
	if err != nil {
		return err
	}
	if dr.Code != "" {
		return fmt.Errorf("server closed with %s: %s", dr.Code, dr.Error)
	}
	fmt.Printf("drained: commits=%d aborts=%d", dr.Stats.Commits, dr.Stats.Aborts)
	if dr.Report != nil {
		fmt.Printf(", liveness class %q over %d events", dr.Report.LivenessClass(), dr.Report.Events)
	}
	fmt.Println()
	return nil
}
