package main

import "testing"

// TestRun executes the whole example: a served session over loopback,
// concurrent wire clients with the 429 backoff loop, an async
// submit/wait pair, and a graceful drain returning the final report.
// Run with -race.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
