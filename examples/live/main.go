// Live: in-process monitoring with mid-flight violation stop. Where
// the monitor example checks a native run after it finished, this one
// closes the loop while the run is still going: events stream from the
// per-process recorder buffers through a bounded channel into the
// online monitor as the goroutines execute, measured starvation feeds
// back into the retry loop's backoff (starved processes back off less,
// hot ones more), and a safety violation cancels the run mid-flight
// instead of being discovered post-mortem.
//
// Both halves run here: a healthy TL2 instance completes its budget
// under live monitoring with a holding verdict, then a deliberately
// broken "TM" whose reads return values nobody wrote is stopped by the
// monitor long before its budget — the production story the paper's
// online-progress result points at.
package main

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"

	"livetm/internal/engine"
	"livetm/internal/native"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "live:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := healthy(); err != nil {
		return err
	}
	return violating()
}

// healthy: a correct TM under live monitoring completes its budget and
// the verdict arrives with the run, not after it.
func healthy() error {
	e, ok := engine.Lookup("native-tl2")
	if !ok {
		return fmt.Errorf("native-tl2 not registered")
	}
	const procs, rounds = 4, 100
	st, err := e.Run(engine.RunConfig{
		Procs: procs, Vars: 1, OpsPerProc: rounds, Live: true,
	}, func(proc, round int, tx engine.Tx) error {
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		return tx.Write(0, v+1)
	})
	if err != nil {
		return err
	}
	fmt.Printf("live native-tl2 run: %d goroutines × %d rounds, commits=%d aborts=%d stopped=%v\n",
		procs, rounds, st.Commits, st.Aborts, st.Stopped)
	fmt.Print(st.Live.Format())
	fmt.Printf("liveness class: %s; backoff cap=%d bias=%v; recorder chunks=%d (ring — nothing retained)\n\n",
		st.Live.LivenessClass(), st.BackoffCap, st.BackoffBias, st.RecorderChunks)
	if !st.Live.Checked || !st.Live.Opacity.Holds {
		return fmt.Errorf("healthy run failed the live check: %s", st.Live.Opacity.Reason)
	}
	if st.Commits != procs*rounds {
		return fmt.Errorf("healthy run stopped early: %d commits", st.Commits)
	}
	return nil
}

// brokenTM serves every read a fresh value nobody ever wrote — no
// legal serialization can explain that, so the live monitor must
// catch it while the run executes.
type brokenTM struct {
	ctr     atomic.Int64
	commits atomic.Uint64
}

type brokenTxn struct{ tm *brokenTM }

func (tx brokenTxn) Read(i int) (int64, error)  { return 1 + tx.tm.ctr.Add(1), nil }
func (tx brokenTxn) Write(i int, v int64) error { return nil }

func (b *brokenTM) Name() string        { return "native-broken" }
func (b *brokenTM) Vars() int           { return 1 }
func (b *brokenTM) Stats() native.Stats { return native.Stats{Commits: b.commits.Load()} }

func (b *brokenTM) Atomically(fn func(native.Txn) error) error {
	return b.AtomicallyOpts(native.RunOpts{}, fn)
}

func (b *brokenTM) AtomicallyObserved(obs native.Observer, fn func(native.Txn) error) error {
	return b.AtomicallyOpts(native.RunOpts{Observer: obs}, fn)
}

func (b *brokenTM) AtomicallyOpts(opts native.RunOpts, fn func(native.Txn) error) error {
	if opts.Stop != nil {
		select {
		case <-opts.Stop:
			return native.ErrStopped
		default:
		}
	}
	obs := opts.Observer
	err := fn(observedBroken{tx: brokenTxn{tm: b}, obs: obs})
	if err != nil {
		if obs != nil {
			obs.Abandon()
		}
		return err
	}
	if obs != nil {
		obs.TryCommitInv()
	}
	b.commits.Add(1)
	if obs != nil {
		obs.TryCommitReturn(true)
	}
	return nil
}

type observedBroken struct {
	tx  brokenTxn
	obs native.Observer
}

func (o observedBroken) Read(i int) (int64, error) {
	if o.obs != nil {
		o.obs.ReadInv(i)
	}
	v, err := o.tx.Read(i)
	if o.obs != nil {
		o.obs.ReadReturn(i, v, false)
	}
	return v, err
}

func (o observedBroken) Write(i int, v int64) error {
	if o.obs != nil {
		o.obs.WriteInv(i, v)
	}
	err := o.tx.Write(i, v)
	if o.obs != nil {
		o.obs.WriteReturn(i, v, false)
	}
	return err
}

// violating: the same live harness around the broken TM stops the run
// mid-flight with the violation verdict.
func violating() error {
	e := engine.NewNative(native.Info{
		Name: "native-broken", Nonblocking: true,
		New: func(n int) (native.TM, error) { return &brokenTM{}, nil },
	})
	const procs, budget = 3, 100000
	st, err := e.Run(engine.RunConfig{
		Procs: procs, Vars: 1, OpsPerProc: budget, Live: true,
	}, func(proc, round int, tx engine.Tx) error {
		_, err := tx.Read(0)
		return err
	})
	if !errors.Is(err, engine.ErrLiveViolation) {
		return fmt.Errorf("broken TM was not stopped: err=%v", err)
	}
	fmt.Printf("broken TM stopped mid-flight after %d of %d budgeted commits\n", st.Commits, procs*budget)
	fmt.Print(st.Live.Format())
	if st.Live.Opacity.Holds || !st.Stopped {
		return fmt.Errorf("stop without a violation verdict: %+v", st.Live.Opacity)
	}
	fmt.Println("the monitor cancelled the run at the first checkable violation — not post-mortem")
	return nil
}
