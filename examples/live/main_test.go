package main

import "testing"

// TestRun executes the whole example: the healthy run must complete
// under live monitoring with a holding verdict, and the broken TM must
// be stopped mid-flight with a violation verdict. Run with -race.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
