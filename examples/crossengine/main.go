// Crossengine: one workload, two substrates. The same transactional
// body — declared once against the engine API — runs on a simulated
// TM under the deterministic cooperative scheduler (where the history
// is recorded and checked for opacity) and on its native counterpart
// across real goroutines (where throughput and abort pressure are
// wall-clock real). This is the repository's two-substrate
// architecture in one page; see internal/engine's package
// documentation for when to use which.
package main

import (
	"fmt"
	"os"

	"livetm/internal/engine"
	"livetm/internal/safety"
	"livetm/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crossengine:", err)
		os.Exit(1)
	}
}

func run() error {
	// One workload point from the declared matrix: 2 processes, an
	// update mix, hot contention, shared variables.
	var spec workload.Spec
	for _, s := range workload.Matrix([]int{2}) {
		if s.Mix.Name == "update" && s.Contention.Name == "hot" && s.Sharing == workload.Shared {
			spec = s
			break
		}
	}
	fmt.Printf("workload %q on both substrates of algorithm tl2:\n\n", spec.Name)

	// 1. The simulated substrate: deterministic, recordable — ask the
	// safety checker about the exact run.
	simEngine, ok := engine.Lookup("sim-tl2")
	if !ok {
		return fmt.Errorf("sim-tl2 not registered")
	}
	simStats, err := simEngine.Run(engine.RunConfig{
		Procs: spec.Procs, Vars: spec.Vars,
		Seed: 42, OpsPerProc: 4, SimSteps: 20000, Record: true,
	}, spec.Body())
	if err != nil {
		return err
	}
	res, err := safety.CheckOpacity(simStats.History)
	if err != nil {
		return err
	}
	if !res.Holds {
		return fmt.Errorf("simulated history not opaque: %s", res.Reason)
	}
	fmt.Printf("  %-12s %3d commits, %2d aborts in %4d scheduler steps; recorded history of %d events is opaque\n",
		simEngine.Name(), simStats.Commits, simStats.Aborts, simStats.Steps, len(simStats.History))

	// 2. The native substrate: the same body on real cores, here with
	// recording off — the payoff is wall-clock scalability (see
	// examples/monitor for a recorded and checked native run).
	nativeEngine, ok := engine.Lookup("native-tl2")
	if !ok {
		return fmt.Errorf("native-tl2 not registered")
	}
	nativeStats, err := nativeEngine.Run(engine.RunConfig{
		Procs: spec.Procs, Vars: spec.Vars, OpsPerProc: 500,
	}, spec.Body())
	if err != nil {
		return err
	}
	fmt.Printf("  %-12s %3d commits, %2d aborts across %d real goroutines (abort rate %.1f%%)\n\n",
		nativeEngine.Name(), nativeStats.Commits, nativeStats.Aborts,
		spec.Procs, 100*nativeStats.AbortRate())

	// 3. The same spec across every engine of both substrates — the
	// cross-engine workload matrix in miniature.
	results, err := workload.RunMatrix(engine.Engines(false), []workload.Spec{spec},
		workload.Budget{SimSteps: 1500, NativeOps: 200})
	if err != nil {
		return err
	}
	fmt.Print(workload.FormatResults(results))
	return nil
}
