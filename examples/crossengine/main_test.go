package main

import "testing"

// TestRun executes the whole example: the shared workload body must
// produce an opaque history on the simulated substrate and complete
// on every engine of both substrates.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
