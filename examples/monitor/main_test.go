package main

import "testing"

// TestRun executes the whole example: a recorded native run must pass
// the online monitor's opacity check, land every liveness verdict, and
// conserve the counter. Run with -race.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
