// Monitor: a real-concurrency run, formally checked. A native TL2
// instance runs a contended counter workload on real goroutines with
// history recording on — every read return, write return and
// tryCommit outcome is stamped by one atomic sequence counter at its
// linearization point — and the recorded history streams through the
// online monitor: a segmented opacity check in bounded memory plus
// per-process progress accounting classified against the paper's
// liveness lattice. This closes the loop the paper is about: the
// formal machinery of §2.4 applied to what the hardware actually did,
// not to a simulation of it.
package main

import (
	"fmt"
	"os"

	"livetm/internal/engine"
	"livetm/internal/model"
	"livetm/internal/monitor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "monitor:", err)
		os.Exit(1)
	}
}

func run() error {
	e, ok := engine.Lookup("native-tl2")
	if !ok {
		return fmt.Errorf("native-tl2 not registered")
	}
	if !e.Capabilities().HistoryRecording {
		return fmt.Errorf("%s cannot record histories", e.Name())
	}

	// 1. Record a native run: 3 real goroutines increment a shared
	// counter. QuiesceEvery plants the quiescent cuts the streaming
	// checker segments at.
	const procs, rounds = 3, 30
	st, err := e.Run(engine.RunConfig{
		Procs: procs, Vars: 1,
		OpsPerProc: rounds, Record: true, QuiesceEvery: 3,
	}, func(proc, round int, tx engine.Tx) error {
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		return tx.Write(0, v+1)
	})
	if err != nil {
		return err
	}
	fmt.Printf("recorded native-tl2 run: %d goroutines × %d rounds, %d commits, %d aborts, %d events\n",
		procs, rounds, st.Commits, st.Aborts, len(st.History))

	if err := model.CheckWellFormed(st.History); err != nil {
		return fmt.Errorf("recorded history malformed: %w", err)
	}

	// 2. Stream it through the online monitor, event by event, exactly
	// as `livetm record ... | livetm monitor -file -` would.
	m, err := monitor.New(monitor.Config{SegmentTxns: 48, TailWindow: 128})
	if err != nil {
		return err
	}
	for _, ev := range st.History {
		if err := m.Observe(ev); err != nil {
			return fmt.Errorf("monitor rejected the run: %w", err)
		}
	}
	report := m.Report()
	fmt.Print(report.Format())

	// 3. The verdicts are the paper's: the real execution was opaque,
	// and with every process committing its budget the run sits at the
	// top of the liveness lattice.
	if !report.Checked || !report.Opacity.Holds {
		return fmt.Errorf("native run failed the opacity check: %s", report.Opacity.Reason)
	}
	for _, v := range report.Verdicts {
		if !v.Holds {
			return fmt.Errorf("%s violated on a fully progressing run", v.Property)
		}
	}
	// The counter proves the committed effects line up too: with every
	// committed transaction incrementing once, the largest committed
	// write equals the commit count.
	txns, err := model.Transactions(st.History)
	if err != nil {
		return err
	}
	final := model.Value(0)
	for _, txn := range txns {
		if txn.Status != model.Committed {
			continue
		}
		for _, v := range txn.WriteSet() {
			if v > final {
				final = v
			}
		}
	}
	if final != model.Value(st.Commits) {
		return fmt.Errorf("final counter value %d, want %d", final, st.Commits)
	}
	fmt.Printf("final counter value %d matches %d committed increments\n", final, st.Commits)
	return nil
}
