package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"livetm/internal/adversary"
	"livetm/internal/workload"
)

func TestRunRequiresSubcommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing subcommand must error")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand must error")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
}

func TestCmdTMs(t *testing.T) {
	if err := run([]string{"tms"}); err != nil {
		t.Fatal(err)
	}
}

// TestCmdServe runs a short soak: the service must drain after
// -duration with a clean final report. Run with -race.
func TestCmdServe(t *testing.T) {
	if err := run([]string{"serve", "-engine", "native-norec", "-workers", "2", "-submitters", "5",
		"-duration", "400ms", "-progress", "150ms"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"serve", "-engine", "sim-tl2", "-duration", "100ms"}); err == nil {
		t.Error("serve on a simulated engine must error")
	}
	if err := run([]string{"serve", "-live=false", "-quiesce", "-1", "-duration", "100ms"}); err == nil {
		t.Error("monitor-only flags with -live=false must error, not be dropped")
	}
	if err := run([]string{"serve", "-engine", "nope", "-duration", "100ms"}); err == nil {
		t.Error("serve on an unknown engine must error")
	}
}

func TestCmdMatrixSmall(t *testing.T) {
	if err := run([]string{"matrix", "-steps", "600", "-ablations=false"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdAdversary(t *testing.T) {
	if err := run([]string{"adversary", "-tm", "dstm", "-alg", "1", "-rounds", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"adversary", "-tm", "tl2", "-alg", "2", "-parasitic", "-rounds", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"adversary", "-tm", "nope"}); err == nil {
		t.Error("unknown TM must error")
	}
	if err := run([]string{"adversary", "-tm", "dstm", "-alg", "9"}); err == nil {
		t.Error("invalid algorithm must error")
	}
}

func TestCmdAdversaryNativeEngine(t *testing.T) {
	if err := run([]string{"adversary", "-engine", "native-tl2", "-alg", "2", "-rounds", "3"}); err != nil {
		t.Fatal(err)
	}
	// A sim engine name routes to the simulated driver for the same
	// algorithm.
	if err := run([]string{"adversary", "-engine", "sim-tl2", "-rounds", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"adversary", "-engine", "native-nope", "-rounds", "2"}); err == nil {
		t.Error("unknown native engine must error")
	}
	if err := run([]string{"adversary", "-engine", "bogus", "-rounds", "2"}); err == nil {
		t.Error("an engine name without a substrate prefix must error")
	}
	if err := run([]string{"adversary", "-artifact", "x.json"}); err == nil {
		t.Error("-artifact without -matrix must error")
	}
	if err := run([]string{"adversary", "-matrix", "-alg", "2", "-rounds", "2"}); err == nil {
		t.Error("-matrix runs every variant; combining it with -alg must error")
	}
	if err := run([]string{"adversary", "-matrix", "-out", "x.jsonl", "-rounds", "2"}); err == nil {
		t.Error("-matrix cannot honour -out and must error")
	}
}

func TestCmdAdversaryMatrixArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "starvation.json")
	if err := run([]string{"adversary", "-matrix", "-rounds", "2", "-artifact", path}); err != nil {
		t.Fatal(err)
	}
	art, err := adversary.LoadStarvationArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Cells) == 0 || art.Rounds != 2 {
		t.Errorf("artifact rounds=%d cells=%d", art.Rounds, len(art.Cells))
	}
	for _, c := range art.Cells {
		if c.Substrate != "sim" && c.Substrate != "native" {
			t.Errorf("cell %s/%s has substrate %q", c.Strategy, c.Engine, c.Substrate)
		}
	}
}

func TestCmdAdversaryOutAndCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run([]string{"adversary", "-tm", "ostm", "-rounds", "3", "-out", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check", "-file", path, "-render=false"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check"}); err == nil {
		t.Error("check without -file must error")
	}
	if err := run([]string{"check", "-file", filepath.Join(t.TempDir(), "missing.jsonl")}); err == nil {
		t.Error("check with a missing file must error")
	}
}

func TestCmdClassify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run([]string{"adversary", "-tm", "tl2", "-rounds", "3", "-out", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"classify", "-file", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"classify", "-file", path, "-split", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"classify"}); err == nil {
		t.Error("classify without -file must error")
	}
	if err := run([]string{"classify", "-file", path, "-split", "100000"}); err == nil {
		t.Error("out-of-range split must error")
	}
}

func TestCmdTheorem1(t *testing.T) {
	if err := run([]string{"theorem1", "-rounds", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdTheorem3(t *testing.T) {
	if err := run([]string{"theorem3", "-schedules", "3", "-ops", "60"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdExplore(t *testing.T) {
	if err := run([]string{"explore", "-tm", "tl2", "-depth", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"explore", "-tm", "nope"}); err == nil {
		t.Error("unknown TM must error")
	}
}

func TestCmdFgpDOT(t *testing.T) {
	if err := run([]string{"fgp-dot"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"fgp-dot", "-procs", "2", "-limit", "3"}); err == nil {
		t.Error("limit overflow must error")
	}
}

func TestCmdFgpStates(t *testing.T) {
	if err := run([]string{"fgp-states"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"fgp-states", "-variant", "corrected"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"fgp-states", "-variant", "wat"}); err == nil {
		t.Error("invalid variant must error")
	}
	if err := run([]string{"fgp-states", "-procs", "2", "-vars", "1", "-limit", "5"}); err == nil {
		t.Error("limit overflow must error")
	}
}

func TestCmdLattice(t *testing.T) {
	if err := run([]string{"lattice", "-samples", "500"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdReport(t *testing.T) {
	if err := run([]string{"report", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdEngines(t *testing.T) {
	if err := run([]string{"engines"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdWorkloads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_native.json")
	if err := run([]string{"workloads", "-procs", "2", "-simsteps", "300", "-ops", "20", "-out", path}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	if err := run([]string{"workloads", "-procs", "zero"}); err == nil {
		t.Error("bad process list must error")
	}
}

// withStdin temporarily redirects os.Stdin to the given file.
func withStdin(t *testing.T, path string, fn func()) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	old := os.Stdin
	os.Stdin = f
	defer func() { os.Stdin = old }()
	fn()
}

func TestCmdRecordAndMonitor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "native.jsonl")
	if err := run([]string{"record", "-engine", "native-tl2", "-procs", "2", "-ops", "15", "-quiesce", "3", "-out", path}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace missing or empty: %v", err)
	}
	if err := run([]string{"monitor", "-file", path, "-every", "50"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check", "-file", path, "-render=false"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"record", "-engine", "no-such"}); err == nil {
		t.Error("unknown engine must error")
	}
	if err := run([]string{"record", "-engine", "native-tl2", "-mix", "wat"}); err == nil {
		t.Error("unknown mix must error")
	}
	if err := run([]string{"monitor"}); err == nil {
		t.Error("monitor without -file must error")
	}
	if err := run([]string{"monitor", "-file", filepath.Join(t.TempDir(), "missing.jsonl")}); err == nil {
		t.Error("monitor with a missing file must error")
	}
}

func TestCmdRecordSimEngine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sim.jsonl")
	if err := run([]string{"record", "-engine", "sim-tl2", "-procs", "2", "-ops", "5", "-out", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"monitor", "-file", path}); err != nil {
		t.Fatal(err)
	}
}

// TestCmdCheckStdin: `livetm record ... | livetm check -file -` works
// without a temp file (stdin stands in for the pipe here).
func TestCmdCheckStdin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run([]string{"record", "-engine", "native-norec", "-procs", "2", "-ops", "10", "-out", path}); err != nil {
		t.Fatal(err)
	}
	withStdin(t, path, func() {
		if err := run([]string{"check", "-file", "-", "-render=false"}); err != nil {
			t.Error(err)
		}
	})
	withStdin(t, path, func() {
		if err := run([]string{"monitor", "-file", "-"}); err != nil {
			t.Error(err)
		}
	})
	withStdin(t, path, func() {
		if err := run([]string{"classify", "-file", "-"}); err != nil {
			t.Error(err)
		}
	})
}

func TestCmdWorkloadsChecked(t *testing.T) {
	if err := run([]string{"workloads", "-procs", "2", "-simsteps", "300", "-ops", "12", "-check"}); err != nil {
		t.Fatal(err)
	}
}

func TestSubcommandTable(t *testing.T) {
	for _, sc := range subcommands {
		if sc.name == "" || sc.run == nil {
			t.Fatalf("malformed dispatch entry %+v", sc)
		}
	}
	if err := run([]string{"tms", "stray"}); err == nil {
		t.Error("tms with arguments must error")
	}
	if err := run([]string{"engines", "stray"}); err == nil {
		t.Error("engines with arguments must error")
	}
}

// TestCmdRunLive: `livetm run` drives a native cell under the
// in-process monitor, optionally retaining the trace, and degrades to
// a plain recorded run with -live=false.
func TestCmdRunLive(t *testing.T) {
	if err := run([]string{"run", "-engine", "native-tl2", "-procs", "2", "-ops", "20"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "live.jsonl")
	if err := run([]string{"run", "-engine", "native-dstm", "-procs", "2", "-ops", "15", "-out", path}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("live trace missing or empty: %v", err)
	}
	if err := run([]string{"check", "-file", path, "-render=false"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"run", "-live=false", "-engine", "native-tl2", "-procs", "2", "-ops", "10",
		"-out", filepath.Join(t.TempDir(), "plain.jsonl")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"run", "-engine", "no-such"}); err == nil {
		t.Error("unknown engine must error")
	}
	if err := run([]string{"run", "-engine", "sim-tl2"}); err == nil {
		t.Error("live run on a simulated engine must error")
	}
}

// TestCmdMonitorLive: `livetm monitor -live` monitors an in-process
// native run instead of reading a trace.
func TestCmdMonitorLive(t *testing.T) {
	if err := run([]string{"monitor", "-live", "-engine", "native-norec", "-procs", "2", "-ops", "15"}); err != nil {
		t.Fatal(err)
	}
}

// TestCmdWorkloadsLive: the live/overhead/shard-sweep matrix flags
// produce the schema-v3 artifact with liveness classes on native
// cells and per-shard breakdowns on the swept ones.
func TestCmdWorkloadsLive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_native.json")
	if err := run([]string{"workloads", "-procs", "2", "-simsteps", "200", "-ops", "12", "-live", "-check", "-overhead", "-shards", "1,2", "-out", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art workload.Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if art.Schema != workload.ArtifactSchema {
		t.Fatalf("schema = %q, want %q", art.Schema, workload.ArtifactSchema)
	}
	liveCells, shardedCells := 0, 0
	for _, r := range art.Results {
		if r.Live {
			liveCells++
			if r.LivenessClass == "" {
				t.Errorf("%s/%s: live cell without class", r.Engine, r.Workload)
			}
		}
		if r.Shards > 1 {
			shardedCells++
			if len(r.PerShard) != r.Shards {
				t.Errorf("%s/%s: %d per-shard entries, want %d", r.Engine, r.Workload, len(r.PerShard), r.Shards)
			}
		}
	}
	if liveCells == 0 {
		t.Fatal("no live cells in the artifact")
	}
	if shardedCells == 0 {
		t.Fatal("no sharded cells in the artifact")
	}
}
