// Command livetm is the experiment driver for the reproduction of
// "On the Liveness of Transactional Memory" (PODC 2012).
//
// Subcommands:
//
//	livetm matrix [-ablations] [-steps N]
//	    Run the liveness matrix (DESIGN.md E20): each TM × fault
//	    model, compared against the paper's §3.2.3 claims.
//
//	livetm run -engine NAME [-procs N] [-ops N] [-mix M] [-contention C] [-sharing S] [-live] [-shards S] [-out FILE]
//	    Run one workload cell on a native engine with the in-process
//	    monitor attached (-live, the default): events stream into the
//	    checker while the cell executes, an opacity violation stops
//	    the run mid-flight, and the measured per-process starvation
//	    rebiases the retry backoff (starved processes back off less).
//	    -shards partitions the keyspace: quiescent cuts pause one
//	    shard's workers instead of the whole session and the monitor
//	    checks the shards in parallel lanes, printing per-shard cut
//	    counts and pause percentiles. Prints the monitor report and
//	    liveness class; -live=false degrades to a plain recorded run
//	    (like `livetm record`).
//
//	livetm serve -engine NAME [-workers N] [-submitters N] [-mix M] [-contention C] [-sharing S] [-shards S] [-duration D] [-progress D] [-metrics ADDR] [-flight FILE [-flight-every D]] [-listen ADDR [-max-inflight N] [-retry-after D]]
//	    Run a native engine as a long-lived service: one session whose
//	    worker pool serves transactions submitted by concurrent client
//	    goroutines, with the in-process monitor resident for the
//	    session's whole lifetime — the soak mode for native TMs.
//	    Prints a progress line every -progress interval (throughput,
//	    abort-cause breakdown, per-shard checker-lane lag, backoff
//	    bias) and drains cleanly on SIGINT/SIGTERM (or after
//	    -duration), printing the final monitor report and liveness
//	    class. A safety violation stops the service mid-flight with a
//	    non-zero exit. -metrics ADDR serves the session's live
//	    telemetry registry over HTTP — Prometheus text exposition at
//	    /metrics, an indented JSON snapshot at /snapshot, and
//	    net/http/pprof at /debug/pprof/ — and -flight FILE appends a
//	    JSONL registry snapshot every -flight-every (default 1s) for
//	    offline trajectory analysis. -listen ADDR additionally puts
//	    the session on the wire (internal/server): the HTTP/JSON wire
//	    API v1 under /v1/ serves remote clients (blocking Exec
//	    programs, async Submit/Wait, interactive transactions, remote
//	    drain) on the same listener as the telemetry endpoints, with
//	    per-client fair admission (-max-inflight caps concurrent
//	    submissions; refusals answer 429 with a Retry-After of
//	    -retry-after) — in this mode -submitters defaults to 0 (remote
//	    clients are the load) and quiescent cuts are disabled unless
//	    explicitly configured, since a parked interactive transaction
//	    must not block a cut.
//
//	livetm client [-addr ADDR] [-name ID] [-clients N] [-ops N] [-strategy NAME [-rounds N] [-block-timeout D]] [-drain]
//	    Drive a served session (`livetm serve -listen`) over the wire
//	    API. Default mode is load: -clients connections each run -ops
//	    increment programs, backing off on 429 exactly as the server's
//	    Retry-After hints say, then print the commit/backoff tally and
//	    the server's stats. -strategy runs a Theorem 1 environment
//	    strategy (alg1, alg1-crash, alg2, alg2-parasitic) as a true
//	    network client — each process an interactive wire transaction —
//	    and prints the observed no-local-progress outcome. -drain asks
//	    the server to drain and prints the session's final monitor
//	    report, liveness class, and per-process starvation intervals.
//
//	livetm loadgen -scenario FILE [-addr ADDR] [-plan] [-out FILE] [-drain] [-gate [-bench FILE]]
//	    Drive a declarative open-loop scenario (internal/loadgen):
//	    Poisson or bursty arrivals at fixed seed, weighted
//	    workload-matrix cell mixes, warmup/inject/recovery phases with
//	    adversary strategies as the inject faults, and ramp schedules
//	    growing the worker pool under load. -addr targets a served
//	    session (`livetm serve -listen`); without it the scenario's
//	    session block opens an in-process one (ramps are in-process
//	    only, faults wire-only). -plan prints the materialized
//	    schedule — a pure function of (file, seed), byte-identical
//	    across runs — and exits. The run emits a provenance-stamped
//	    artifact (scenario hash, seed, plan digest, git describe,
//	    per-phase p50/p95/p99, abort and overload-refusal rates,
//	    fault outcomes; -drain folds in the final monitor report's
//	    liveness class and checked-throughput); -out writes it, and
//	    -gate evaluates the scenario's release gates immediately
//	    (non-zero exit on failure; -bench adds the BENCH-trajectory
//	    comparison).
//
//	livetm loadgen gate -artifact FILE [-bench FILE]
//	    Re-judge a saved loadgen artifact against its embedded gates:
//	    p99 latency, abort rate, overload-refusal rate, throughput
//	    floor, minimum liveness class, and -bench fraction-of-
//	    trajectory. Prints one verdict line per gate; exits non-zero
//	    if any gate fails — the CI regression gate.
//
//	livetm adversary [-tm NAME | -engine NAME | -matrix] [-alg 1|2] [-crash] [-parasitic] [-rounds N] [-out FILE] [-artifact FILE]
//	    Run the Theorem 1 environment strategy against a TM and print
//	    the resulting history suffix (Figures 9, 10, 12, 13). -tm picks
//	    a simulated TM; -engine picks a registry engine on either
//	    substrate ("native-tl2" drives the strategy against the real
//	    goroutines through the linearization-point hooks, streaming the
//	    run through the online monitor); -matrix runs every strategy
//	    variant against every native algorithm and its simulated
//	    counterpart, printing the cross-substrate starvation comparison
//	    and optionally writing it as the -artifact JSON (the adversary
//	    analogue of BENCH_native.json).
//
//	livetm check -file FILE
//	    Load a JSON Lines trace ("-" reads stdin) and decide opacity
//	    and strict serializability, printing a witness serialization.
//
//	livetm record -engine NAME [-procs N] [-ops N] [-mix M] [-contention C] [-sharing S] [-out FILE]
//	    Run a recording-capable engine (native algorithms included)
//	    with history recording and write the history as a JSON Lines
//	    trace ("-" writes stdout, so it pipes into check/monitor).
//
//	livetm monitor -file FILE [-segment N] [-window N] [-every N] [-approx] | -live [-engine NAME] ...
//	    Stream a trace ("-" reads stdin, live from a pipe) through the
//	    online monitor: incremental opacity checking plus per-process
//	    progress accounting classified against the liveness lattice.
//	    -approx degrades cut-starved streams to an explicit
//	    approximate verdict (forced serialization frontiers) instead
//	    of refusing them; -live monitors an in-process native run
//	    (same flags as `livetm run`).
//
//	livetm classify -file FILE [-split N]
//	    Read a trace as an infinite history (observed tail repeated
//	    forever) and report the paper's process classes and
//	    TM-liveness verdicts.
//
//	livetm theorem1 [-rounds N]
//	    Run both strategies against every registered TM (E17).
//
//	livetm theorem3 [-schedules N]
//	    Validate Fgp: opacity of random-schedule prefixes and steady
//	    commits under faults (E19).
//
//	livetm fgp-states [-procs N] [-vars N] [-variant faithful|corrected]
//	    Enumerate the reachable state space of a small Fgp instance
//	    (Figure 15 is -procs 1 -vars 1 -variant faithful).
//
//	livetm fgp-dot [-procs N] [-vars N]
//	    Emit the Fgp state graph as Graphviz DOT (Figure 15's diagram).
//
//	livetm explore -tm NAME [-depth N] [-procs N]
//	    Exhaustively model-check a TM: enumerate every schedule of the
//	    increment scenario up to the bound and verify opacity of each
//	    reachable history.
//
//	livetm lattice [-samples N]
//	    Sample the inclusion lattice of the TM-liveness properties
//	    (local/k/global/solo/priority progress) with witnesses.
//
//	livetm report [-quick]
//	    Regenerate every experiment in one pass as a markdown report.
//
//	livetm tms
//	    List the registered TM implementations.
//
//	livetm engines
//	    List every (algorithm, substrate) engine behind the unified
//	    engine API with its capabilities.
//
//	livetm workloads [-procs LIST] [-simsteps N] [-ops N] [-out FILE] [-record] [-check] [-live] [-overhead] [-shards LIST]
//	    Run the declared workload matrix on every engine of both
//	    substrates and print the result table (optionally writing the
//	    BENCH_native.json schema-v3 artifact); -record captures each
//	    cell's history, -check verifies it through the online monitor,
//	    -live runs native cells under the in-process monitor (per-cell
//	    liveness class, starvation-aware backoff), -overhead measures
//	    each native cell's recording-cost ratio, and -shards sweeps
//	    each native recorded/live cell over keyspace-shard counts
//	    (per-shard cut latency and checker-lane segments land in the
//	    artifact).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"livetm/internal/adversary"
	"livetm/internal/adversary/netadv"
	"livetm/internal/automaton"
	"livetm/internal/client"
	"livetm/internal/core"
	"livetm/internal/engine"
	"livetm/internal/explore"
	"livetm/internal/fgp"
	"livetm/internal/liveness"
	"livetm/internal/loadgen"
	"livetm/internal/model"
	"livetm/internal/monitor"
	"livetm/internal/native"
	"livetm/internal/safety"
	"livetm/internal/server"
	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/telemetry"
	"livetm/internal/trace"
	"livetm/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "livetm:", err)
		os.Exit(1)
	}
}

// subcommands is the single dispatch table; usage() derives the
// synopsis from it, so adding a subcommand here is the whole job.
var subcommands = []struct {
	name string
	run  func(args []string) error
}{
	{"matrix", cmdMatrix},
	{"run", cmdRun},
	{"serve", cmdServe},
	{"client", cmdClient},
	{"loadgen", cmdLoadgen},
	{"check", cmdCheck},
	{"classify", cmdClassify},
	{"adversary", cmdAdversary},
	{"theorem1", cmdTheorem1},
	{"theorem3", cmdTheorem3},
	{"fgp-states", cmdFgpStates},
	{"fgp-dot", cmdFgpDOT},
	{"explore", cmdExplore},
	{"lattice", cmdLattice},
	{"report", cmdReport},
	{"record", cmdRecord},
	{"monitor", cmdMonitor},
	{"tms", cmdTMs},
	{"engines", cmdEngines},
	{"workloads", cmdWorkloads},
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "help", "-h", "--help":
		usage()
		return nil
	}
	for _, sc := range subcommands {
		if sc.name == args[0] {
			return sc.run(args[1:])
		}
	}
	usage()
	return fmt.Errorf("unknown subcommand %q", args[0])
}

func usage() {
	names := make([]string, len(subcommands))
	for i, sc := range subcommands {
		names[i] = sc.name
	}
	fmt.Fprintf(os.Stderr, "usage: livetm <%s> [flags]\n", strings.Join(names, "|"))
}

// loadTraceArg reads a JSON Lines trace from the -file argument, with
// "-" meaning stdin so traces pipe between subcommands without a temp
// file.
func loadTraceArg(file string) (model.History, error) {
	if file == "-" {
		return model.ReadTrace(os.Stdin)
	}
	return model.LoadTrace(file)
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	file := fs.String("file", "", "JSON Lines trace file, or - for stdin (see `livetm adversary -out`, `livetm record`)")
	render := fs.Bool("render", true, "render the history")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("check: -file is required")
	}
	h, err := loadTraceArg(*file)
	if err != nil {
		return err
	}
	if err := model.CheckWellFormed(h); err != nil {
		return fmt.Errorf("trace is not well-formed: %w", err)
	}
	if *render {
		fmt.Print(trace.Render(h))
		fmt.Print(trace.Summary(h))
	}
	op, err := safety.CheckOpacity(h)
	if err != nil {
		return err
	}
	ss, err := safety.CheckStrictSerializability(h)
	if err != nil {
		return err
	}
	fmt.Printf("events=%d opaque=%v strictly-serializable=%v\n", len(h), op.Holds, ss.Holds)
	if !op.Holds {
		fmt.Println("opacity violation:", op.Reason)
	}
	if op.Holds {
		fmt.Println("witness serialization:")
		for _, t := range op.Witness {
			fmt.Println("  ", t)
		}
	}
	return nil
}

func cmdMatrix(args []string) error {
	fs := flag.NewFlagSet("matrix", flag.ContinueOnError)
	ablations := fs.Bool("ablations", true, "include ablation variants")
	steps := fs.Int("steps", 2000, "scheduler steps per scenario")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows := core.RunMatrix(core.MatrixConfig{Steps: *steps, Ablations: *ablations})
	fmt.Print(core.FormatMatrix(rows))
	for _, r := range rows {
		if !r.Match() {
			return fmt.Errorf("matrix mismatch for %s", r.Name)
		}
	}
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	file := fs.String("file", "", "JSON Lines trace file, or - for stdin")
	split := fs.Int("split", -1, "prefix length; the rest is read as the repeating tail (default: half)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("classify: -file is required")
	}
	h, err := loadTraceArg(*file)
	if err != nil {
		return err
	}
	at := *split
	if at < 0 {
		at = liveness.SplitHalf(h)
	}
	l, err := liveness.ClassifyRun(h, at, nil)
	if err != nil {
		return err
	}
	fmt.Printf("read as: %d-event prefix + %d-event tail repeated forever\n", len(l.Prefix), len(l.Cycle))
	for _, p := range l.Procs {
		class := "correct"
		switch {
		case l.Crashes(p):
			class = "crashed"
		case l.Parasitic(p):
			class = "parasitic"
		case l.Starving(p):
			class = "starving"
		}
		fmt.Printf("  p%d: %-10s progress=%v\n", p, class, l.MakesProgress(p))
	}
	fmt.Printf("local=%v global=%v solo=%v 2-progress=%v\n",
		liveness.LocalProgress.Contains(l),
		liveness.GlobalProgress.Contains(l),
		liveness.SoloProgress.Contains(l),
		liveness.KProgress(2).Contains(l))
	return nil
}

func cmdAdversary(args []string) error {
	fs := flag.NewFlagSet("adversary", flag.ContinueOnError)
	tmName := fs.String("tm", "dstm", "simulated TM implementation (see `livetm tms`)")
	engineName := fs.String("engine", "", "registry engine to drive instead of -tm (see `livetm engines`; native engines run the real-concurrency driver)")
	matrix := fs.Bool("matrix", false, "run every strategy variant against every native algorithm and its simulated counterpart")
	alg := fs.Int("alg", 1, "strategy: 1 (parasitic-free case) or 2 (crash-free case)")
	crash := fs.Bool("crash", false, "crash p1 after its first read (Figure 9; algorithm 1)")
	parasitic := fs.Bool("parasitic", false, "make p1 parasitic (Figure 12; algorithm 2)")
	rounds := fs.Int("rounds", 10, "p2 commits before stopping")
	tail := fs.Int("tail", 48, "events of the history suffix to print")
	out := fs.String("out", "", "write the full history as a JSON Lines trace file")
	artifact := fs.String("artifact", "", "with -matrix: write the cross-substrate starvation comparison as a JSON artifact")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := adversary.Config{Rounds: *rounds, CrashP1AfterRead: *crash, ParasiticP1: *parasitic, Seed: 3}
	if *matrix {
		// Flags the matrix runs all combinations of (or cannot honour)
		// are rejected, not silently dropped.
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "tm", "engine", "alg", "crash", "parasitic", "tail", "out":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("adversary: %s cannot be combined with -matrix (it runs every strategy variant against every engine)", strings.Join(conflict, ", "))
		}
		cells, err := adversary.RunMatrix(cfg)
		if err != nil {
			return err
		}
		fmt.Print(adversary.FormatCells(cells))
		for _, c := range cells {
			if !c.Dichotomy() {
				return fmt.Errorf("%s on %s: p1 committed — safety or strategy violation", c.Strategy, c.Engine)
			}
		}
		if *artifact != "" {
			if err := adversary.WriteStarvationArtifact(*artifact, *rounds, cells); err != nil {
				return err
			}
			fmt.Printf("starvation artifact written to %s (%d cells)\n", *artifact, len(cells))
		}
		return nil
	}
	if *artifact != "" {
		return fmt.Errorf("adversary: -artifact needs -matrix")
	}
	if *engineName != "" && strings.HasPrefix(*engineName, "native-") {
		return adversaryNative(*engineName, *alg, cfg, *tail, *out)
	}
	if *engineName != "" {
		name, ok := strings.CutPrefix(*engineName, "sim-")
		if !ok {
			return fmt.Errorf("adversary: engine %q is neither native-* nor sim-*", *engineName)
		}
		*tmName = name
	}
	nf, ok := core.Lookup(*tmName)
	if !ok {
		return fmt.Errorf("unknown TM %q", *tmName)
	}
	var res adversary.Result
	switch *alg {
	case 1:
		res = adversary.Algorithm1(nf.Factory, cfg)
	case 2:
		res = adversary.Algorithm2(nf.Factory, cfg)
	default:
		return fmt.Errorf("alg must be 1 or 2")
	}
	fmt.Printf("adversary algorithm %d vs %s: rounds=%d p1Committed=%v steps=%d\n",
		*alg, nf.Name, res.Rounds, res.P1Committed, res.Steps)
	fmt.Printf("commits: p1=%d p2=%d   aborts: p1=%d p2=%d\n",
		res.Stats.Commits[1], res.Stats.Commits[2], res.Stats.Aborts[1], res.Stats.Aborts[2])
	h := res.History
	if len(h) > *tail {
		fmt.Printf("history suffix (last %d of %d events):\n", *tail, len(h))
		h = h[len(h)-*tail:]
	}
	fmt.Print(trace.Render(h))
	fmt.Print(trace.Summary(res.History))
	if *out != "" {
		if err := model.SaveTrace(*out, res.History); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%d events)\n", *out, len(res.History))
	}
	if res.P1Committed {
		return fmt.Errorf("p1 committed: safety or strategy violation")
	}
	return nil
}

// adversaryNative drives one strategy against a native engine through
// the real-concurrency driver and prints the monitor's starvation
// harvest alongside the history suffix.
func adversaryNative(engineName string, alg int, cfg adversary.Config, tail int, out string) error {
	var info native.Info
	found := false
	for _, i := range native.Algorithms() {
		if i.Name == engineName {
			info, found = i, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown native engine %q (see `livetm engines`)", engineName)
	}
	if alg != 1 && alg != 2 {
		return fmt.Errorf("alg must be 1 or 2")
	}
	s := adversary.Strategy{Algorithm: alg, Crash: cfg.CrashP1AfterRead, Parasitic: cfg.ParasiticP1}
	res, err := adversary.RunNative(info, s, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("adversary %s vs %s: rounds=%d p1Committed=%v blocked=%v\n",
		s.Name(), info.Name, res.Rounds, res.P1Committed, res.Blocked)
	fmt.Printf("tm stats: commits=%d aborts=%d   backoff bias=%v (over %d rebias snapshots)\n",
		res.TMStats.Commits, res.TMStats.Aborts, res.BackoffBias, len(res.BiasTrajectory))
	fmt.Print(res.Report.Format())
	fmt.Printf("  liveness class: %s\n", res.Report.LivenessClass())
	intervals := res.Report.StarvationIntervals()
	for _, p := range res.Report.Procs {
		fmt.Printf("  p%d starvation intervals: %v\n", p.Proc, intervals[p.Proc])
	}
	h := res.History
	if len(h) > tail {
		fmt.Printf("history suffix (last %d of %d events):\n", tail, len(h))
		h = h[len(h)-tail:]
	}
	fmt.Print(trace.Render(h))
	if out != "" {
		if err := model.SaveTrace(out, res.History); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%d events)\n", out, len(res.History))
	}
	if res.Violation != nil {
		return fmt.Errorf("monitor found a safety violation: %w", res.Violation)
	}
	if res.P1Committed {
		return fmt.Errorf("p1 committed: safety or strategy violation")
	}
	return nil
}

func cmdTheorem1(args []string) error {
	fs := flag.NewFlagSet("theorem1", flag.ContinueOnError)
	rounds := fs.Int("rounds", 10, "p2 commits per run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	outs := core.Theorem1Evidence(*rounds, true)
	fmt.Print(core.FormatTheorem1(outs))
	for _, o := range outs {
		if !o.Starved {
			return fmt.Errorf("%s/%s: p1 committed", o.TM, o.Strategy)
		}
	}
	for _, note := range core.Theorem2Evidence() {
		fmt.Println("theorem 2:", note)
	}
	return nil
}

func cmdTheorem3(args []string) error {
	fs := flag.NewFlagSet("theorem3", flag.ContinueOnError)
	schedules := fs.Int("schedules", 25, "random schedules to check")
	ops := fs.Int("ops", 200, "operations per schedule")
	if err := fs.Parse(args); err != nil {
		return err
	}
	out := core.Theorem3Evidence(*schedules, *ops)
	if out.Violation != "" {
		return fmt.Errorf("theorem 3 violated: %s", out.Violation)
	}
	fmt.Printf("theorem 3: %d schedules checked, %d opaque prefixes, %d commits — Fgp ensures opacity and global progress\n",
		out.SchedulesChecked, out.PrefixesOpaque, out.Commits)
	return nil
}

func cmdFgpStates(args []string) error {
	fs := flag.NewFlagSet("fgp-states", flag.ContinueOnError)
	procs := fs.Int("procs", 1, "process count")
	vars := fs.Int("vars", 1, "t-variable count")
	variantName := fs.String("variant", "faithful", "faithful or corrected")
	limit := fs.Int("limit", 2000, "state budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	variant := fgp.Faithful
	if *variantName == "corrected" {
		variant = fgp.Corrected
	} else if *variantName != "faithful" {
		return fmt.Errorf("variant must be faithful or corrected")
	}
	a, err := fgp.New(*procs, *vars, variant)
	if err != nil {
		return err
	}
	states, err := automaton.Explore(a.IOAutomaton(), a.Alphabet([]model.Value{0, 1}), *limit)
	if err != nil {
		return fmt.Errorf("explore: %w (found %d states)", err, len(states))
	}
	fmt.Printf("Fgp procs=%d vars=%d variant=%s: %d reachable states\n", *procs, *vars, variant, len(states))
	for i, s := range states {
		fmt.Printf("  s%-3d = %s\n", i+1, s.(*fgp.State))
	}
	return nil
}

func cmdFgpDOT(args []string) error {
	fs := flag.NewFlagSet("fgp-dot", flag.ContinueOnError)
	procs := fs.Int("procs", 1, "process count")
	vars := fs.Int("vars", 1, "t-variable count")
	limit := fs.Int("limit", 2000, "state budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := fgp.New(*procs, *vars, fgp.Faithful)
	if err != nil {
		return err
	}
	alphabet := a.Alphabet([]model.Value{0, 1})
	states, err := automaton.Explore(a.IOAutomaton(), alphabet, *limit)
	if err != nil {
		return fmt.Errorf("explore: %w", err)
	}
	edges := automaton.Edges(a.IOAutomaton(), states, alphabet)
	fmt.Print(automaton.DOT(states, edges))
	return nil
}

func cmdExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	tmName := fs.String("tm", "tl2", "TM implementation (see `livetm tms`)")
	depth := fs.Int("depth", 14, "schedule step bound")
	procs := fs.Int("procs", 2, "process count (each runs one increment transaction)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	nf, ok := core.Lookup(*tmName)
	if !ok {
		return fmt.Errorf("unknown TM %q", *tmName)
	}
	sc := explore.Scenario{
		NProcs:  *procs,
		NVars:   1,
		Factory: nf.Factory,
		Body: func(tm stm.TM, p model.Proc) func(*sim.Env) {
			return func(env *sim.Env) {
				v, st := tm.Read(env, 0)
				if st != stm.OK {
					return
				}
				if tm.Write(env, 0, v+1) != stm.OK {
					return
				}
				tm.TryCommit(env)
			}
		},
	}
	stats, err := explore.Run(sc, *depth, func(schedule []model.Proc, h model.History) error {
		res, cerr := safety.CheckOpacity(h)
		if cerr != nil {
			return cerr
		}
		if !res.Holds {
			return fmt.Errorf("not opaque: %s", res.Reason)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("exhaustive check FAILED: %w", err)
	}
	fmt.Printf("exhaustively verified %s: %d schedules (deepest %d), every reachable history opaque\n",
		nf.Name, stats.Schedules, stats.Deepest)
	return nil
}

// cmdReport regenerates every experiment in one pass and emits a
// self-contained markdown report — the "rerun the paper" command.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "smaller budgets for a fast smoke report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	steps, rounds, samples, depth := 2000, 10, 5000, 14
	if *quick {
		steps, rounds, samples, depth = 800, 4, 800, 10
	}

	fmt.Println("# livetm experiment report")
	fmt.Println()
	fmt.Println("Reproduction of Bushkov, Guerraoui, Kapałka: On the Liveness of")
	fmt.Println("Transactional Memory (PODC 2012). All runs are deterministic.")

	fmt.Println("\n## E20 — liveness matrix (§3.2.3 claims)\n\n```")
	rows := core.RunMatrix(core.MatrixConfig{Steps: steps, Ablations: true})
	fmt.Print(core.FormatMatrix(rows))
	fmt.Println("```")
	for _, r := range rows {
		if !r.Match() {
			return fmt.Errorf("matrix mismatch for %s", r.Name)
		}
	}

	fmt.Println("\n## E17 — Theorem 1 (impossibility of local progress)\n\n```")
	outs := core.Theorem1Evidence(rounds, true)
	fmt.Print(core.FormatTheorem1(outs))
	fmt.Println("```")
	for _, o := range outs {
		if !o.Starved {
			return fmt.Errorf("%s/%s: p1 committed", o.TM, o.Strategy)
		}
	}
	for _, note := range core.Theorem2Evidence() {
		fmt.Println("- Theorem 2:", note)
	}

	fmt.Println("\n## E19 — Theorem 3 (Fgp: opacity + global progress)")
	t3 := core.Theorem3Evidence(25, 200)
	if t3.Violation != "" {
		return fmt.Errorf("theorem 3 violated: %s", t3.Violation)
	}
	fmt.Printf("\n%d random fault-injected schedules; %d opaque prefixes; %d commits.\n",
		t3.SchedulesChecked, t3.PrefixesOpaque, t3.Commits)

	fmt.Println("\n## E25 — TM-liveness property lattice\n\n```")
	fmt.Print(core.BuildPropertyLattice(samples).Format())
	fmt.Println("```")

	fmt.Println("\n## E26 — exhaustive model checking")
	fmt.Println()
	for _, name := range []string{"tinystm", "tl2", "norec", "dstm", "ostm", "fgp"} {
		nf, ok := core.Lookup(name)
		if !ok {
			return fmt.Errorf("%s not registered", name)
		}
		sc := explore.Scenario{NProcs: 2, NVars: 1, Factory: nf.Factory,
			Body: func(tm stm.TM, p model.Proc) func(*sim.Env) {
				return func(env *sim.Env) {
					v, st := tm.Read(env, 0)
					if st != stm.OK {
						return
					}
					if tm.Write(env, 0, v+1) != stm.OK {
						return
					}
					tm.TryCommit(env)
				}
			}}
		stats, err := explore.Run(sc, depth, func(schedule []model.Proc, h model.History) error {
			res, cerr := safety.CheckOpacity(h)
			if cerr != nil {
				return cerr
			}
			if !res.Holds {
				return fmt.Errorf("not opaque: %s", res.Reason)
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("%s failed exhaustive verification: %w", name, err)
		}
		fmt.Printf("- %s: %d schedules (deepest %d), every reachable history opaque\n",
			name, stats.Schedules, stats.Deepest)
	}
	fmt.Println("\nreport complete: all experiments match the paper's claims.")
	return nil
}

func cmdLattice(args []string) error {
	fs := flag.NewFlagSet("lattice", flag.ContinueOnError)
	samples := fs.Int("samples", 5000, "random lassos to sample")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lat := core.BuildPropertyLattice(*samples)
	fmt.Print(lat.Format())
	return nil
}

func cmdTMs(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("tms: unexpected arguments %v", args)
	}
	for _, nf := range core.Registry(true) {
		kind := "paper system"
		if nf.Ablation {
			kind = "ablation variant"
		}
		fmt.Printf("%-16s %s  (expected: fault-free=%v crash=%v parasitic=%v)\n",
			nf.Name, kind,
			nf.Expected.LocalFaultFree, nf.Expected.SoloUnderCrash, nf.Expected.SoloUnderParasitic)
	}
	return nil
}

func cmdEngines(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("engines: unexpected arguments %v", args)
	}
	ablation := map[string]bool{}
	for _, nf := range core.Registry(true) {
		if nf.Ablation {
			ablation["sim-"+nf.Name] = true
		}
	}
	for _, e := range engine.Engines(true) {
		caps := e.Capabilities()
		note := ""
		if ablation[e.Name()] {
			note = "  (ablation variant; excluded unless `workloads -ablations`)"
		}
		fmt.Printf("%-20s substrate=%-6s real-concurrency=%-5v deterministic=%-5v recording=%-5v nonblocking=%-5v%s\n",
			e.Name(), caps.Substrate, caps.RealConcurrency,
			caps.DeterministicReplay, caps.HistoryRecording, caps.Nonblocking, note)
	}
	return nil
}

func cmdWorkloads(args []string) error {
	fs := flag.NewFlagSet("workloads", flag.ContinueOnError)
	procsArg := fs.String("procs", "1,2,4", "comma-separated process counts")
	simSteps := fs.Int("simsteps", 2000, "scheduler steps per simulated cell")
	ops := fs.Int("ops", 500, "committed transactions per process per native cell")
	out := fs.String("out", "", "also write the BENCH_native.json artifact here")
	ablations := fs.Bool("ablations", false, "include the simulated ablation variants")
	record := fs.Bool("record", false, "record each cell's history")
	check := fs.Bool("check", false, "verify each recorded history through the online monitor (implies -record)")
	live := fs.Bool("live", false, "run native cells under the in-process monitor (mid-flight stop, starvation-aware backoff, per-cell liveness class)")
	overhead := fs.Bool("overhead", false, "measure each native cell's recording overhead ratio against an unrecorded rerun")
	quiesce := fs.Int("quiesce", 4, "rendezvous interval (rounds) of recorded native cells (0 = never)")
	shardsArg := fs.String("shards", "", "comma-separated shard counts to sweep native recorded/live cells over (counts that do not fit a cell are skipped; empty = unsharded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	quiesceOpt := *quiesce
	if quiesceOpt <= 0 {
		quiesceOpt = -1 // "never" in workload.Options
	}
	var procs []int
	for _, part := range strings.Split(*procsArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return fmt.Errorf("workloads: bad process count %q", part)
		}
		procs = append(procs, n)
	}
	var shardCounts []int
	if *shardsArg != "" {
		for _, part := range strings.Split(*shardsArg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return fmt.Errorf("workloads: bad shard count %q", part)
			}
			shardCounts = append(shardCounts, n)
		}
		if !*record && !*check && !*live {
			return fmt.Errorf("workloads: -shards needs -record, -check or -live (shard-local cuts exist for the checker)")
		}
	}
	engines := engine.Engines(*ablations)
	specs := workload.Matrix(procs)
	budget := workload.Budget{SimSteps: *simSteps, NativeOps: *ops}
	fmt.Printf("running %d workloads × %d engines...\n", len(specs), len(engines))
	results, err := workload.RunMatrixOptions(engines, specs, budget,
		workload.Options{Record: *record, Check: *check, Live: *live, Overhead: *overhead, QuiesceEvery: quiesceOpt, Shards: shardCounts})
	if err != nil {
		return err
	}
	fmt.Print(workload.FormatResults(results))
	if *check {
		checked := 0
		for _, r := range results {
			if r.Checked {
				checked++
			}
		}
		fmt.Printf("checked %d of %d cells well-formed and opaque (the rest undecided within the cut budget)\n",
			checked, len(results))
	}
	if *out != "" {
		if err := workload.WriteArtifact(*out, budget, results); err != nil {
			return err
		}
		fmt.Printf("artifact written to %s (%d cells)\n", *out, len(results))
	}
	return nil
}

// matrixCell selects the declared matrix cell with the given mix,
// contention and sharing for one process count, so traces and live
// runs always match the matrix cell of the same name.
func matrixCell(procs int, mix, contention, sharing string) (workload.Spec, error) {
	for _, s := range workload.Matrix([]int{procs}) {
		if s.Mix.Name == mix && s.Contention.Name == contention && string(s.Sharing) == sharing {
			return s, nil
		}
	}
	return workload.Spec{}, fmt.Errorf("no matrix cell with mix %q, contention %q, sharing %q", mix, contention, sharing)
}

// runLiveCell executes one matrix cell on a native engine with the
// in-process monitor attached and prints the run's stats and the
// monitor's report. Shared by `livetm run` and `livetm monitor -live`.
func runLiveCell(engineName string, procs, ops int, mix, contention, sharing string, quiesce, segment, window, shards int, out string) error {
	e, ok := engine.Lookup(engineName)
	if !ok {
		return fmt.Errorf("unknown engine %q", engineName)
	}
	spec, err := matrixCell(procs, mix, contention, sharing)
	if err != nil {
		return err
	}
	cfg := engine.RunConfig{
		Procs:           spec.Procs,
		Vars:            spec.Vars,
		OpsPerProc:      ops,
		Live:            true,
		Record:          out != "",
		QuiesceEvery:    quiesce,
		LiveSegmentTxns: segment,
		LiveTailWindow:  window,
		Shards:          shards,
	}
	st, runErr := e.Run(cfg, spec.Body())
	fmt.Printf("live %s on %s: commits=%d aborts=%d no-commits=%d stopped=%v\n",
		spec.Name, e.Name(), st.Commits, st.Aborts, st.NoCommits, st.Stopped)
	if st.Live != nil {
		fmt.Print(st.Live.Format())
		fmt.Printf("  liveness class: %s\n", st.Live.LivenessClass())
	}
	fmt.Printf("  backoff cap=%d bias=%v recorder chunks=%d\n", st.BackoffCap, st.BackoffBias, st.RecorderChunks)
	printCutStats(st.Shards, st.CutLatency, st.ShardCuts)
	if out != "" && st.History != nil {
		if err := model.SaveTrace(out, st.History); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%d events)\n", out, len(st.History))
	}
	return runErr
}

// cmdRun runs one workload cell under the in-process monitor: events
// stream into the checker while the cell executes, a safety violation
// stops the run mid-flight, and measured starvation rebiases the
// native backoff loop.
func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	name := fs.String("engine", "native-tl2", "native engine to run (see `livetm engines`)")
	procsN := fs.Int("procs", 4, "process count")
	ops := fs.Int("ops", 200, "rounds per process")
	mixName := fs.String("mix", "update", "read/write mix: update, readheavy or writeheavy")
	contentionName := fs.String("contention", "hot", "contention level: hot or cold")
	sharing := fs.String("sharing", "shared", "variable sharing: shared or disjoint")
	live := fs.Bool("live", true, "attach the in-process monitor (mid-flight violation stop + starvation-aware backoff)")
	quiesce := fs.Int("quiesce", 0, "rendezvous interval in rounds (0 = the live default of 4, -1 = never)")
	segment := fs.Int("segment", 0, "live checker segment budget in transactions (0 = default 48)")
	shards := fs.Int("shards", 0, "keyspace shard count: shard-local quiescent cuts and one checker lane per shard (0 = unsharded; must be a power of two dividing -procs)")
	out := fs.String("out", "", "also retain the history and write it as a JSON Lines trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*live {
		if *shards > 1 {
			return fmt.Errorf("run: -shards needs the in-process monitor (drop -live=false)")
		}
		// Without the monitor this is a plain recorded run; reuse the
		// record path so the two stay behaviourally identical.
		rest := []string{"-engine", *name, "-procs", strconv.Itoa(*procsN), "-ops", strconv.Itoa(*ops),
			"-mix", *mixName, "-contention", *contentionName, "-sharing", *sharing}
		if *out != "" {
			rest = append(rest, "-out", *out)
		}
		return cmdRecord(rest)
	}
	return runLiveCell(*name, *procsN, *ops, *mixName, *contentionName, *sharing, *quiesce, *segment, 0, *shards, *out)
}

// printCutStats prints the quiescent-cut pause summary of a sharded
// run: totals first, then each shard's own count and percentiles.
func printCutStats(shards int, total engine.CutStats, perShard []engine.CutStats) {
	if shards <= 1 || total.Count == 0 {
		return
	}
	fmt.Printf("  cuts over %d shards: %d total, pause p50=%v p99=%v\n",
		shards, total.Count, time.Duration(total.P50ns), time.Duration(total.P99ns))
	for k, cs := range perShard {
		fmt.Printf("    shard %d: cuts=%d p50=%v p99=%v\n",
			k, cs.Count, time.Duration(cs.P50ns), time.Duration(cs.P99ns))
	}
}

// cmdServe runs a native engine as a long-lived service: one session
// whose worker pool serves matrix-cell transactions submitted by
// concurrent client goroutines, the in-process monitor resident for
// the session's lifetime, periodic progress lines, and a SIGTERM-clean
// shutdown that drains in-flight transactions and prints the final
// monitor report.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	name := fs.String("engine", "native-tl2", "native engine to serve (see `livetm engines`)")
	workers := fs.Int("workers", 4, "worker pool size (the session's process count)")
	submitters := fs.Int("submitters", 8, "concurrent client goroutines submitting transactions")
	mixName := fs.String("mix", "update", "read/write mix: update, readheavy or writeheavy")
	contentionName := fs.String("contention", "hot", "contention level: hot or cold")
	sharing := fs.String("sharing", "shared", "variable sharing: shared or disjoint")
	live := fs.Bool("live", true, "keep the in-process monitor resident (mid-flight violation stop + starvation-aware backoff)")
	duration := fs.Duration("duration", 0, "stop after this long (0 = serve until SIGINT/SIGTERM)")
	progress := fs.Duration("progress", 2*time.Second, "progress line interval")
	quiesce := fs.Int("quiesce", 0, "quiescent-cut interval in completed transactions per worker (0 = the live default of 4, -1 = never)")
	segment := fs.Int("segment", 0, "live checker segment budget in transactions (0 = default 48)")
	shards := fs.Int("shards", 0, "keyspace shard count: shard-local quiescent cuts and one checker lane per shard (0 = unsharded; must be a power of two dividing -workers)")
	listen := fs.String("listen", "", "serve the wire API v1 on this address (livetm client / internal/client); telemetry rides the same listener at /metrics. Defaults -submitters to 0 and -quiesce to -1 (network clients park transactions across round trips, which would stall a cut) unless set explicitly")
	maxInflight := fs.Int("max-inflight", 256, "wire admission cap: total submissions in flight across all clients, shared fairly (0 = unbounded; -listen only)")
	retryAfter := fs.Duration("retry-after", 50*time.Millisecond, "backoff hint attached to wire overload refusals (-listen only)")
	metricsAddr := fs.String("metrics", "", "serve live telemetry on this address: Prometheus text at /metrics, JSON at /snapshot, pprof at /debug/pprof/ (empty = no endpoint)")
	flight := fs.String("flight", "", "flight recorder: append a JSONL registry snapshot to this file every -flight-every (empty = off)")
	flightEvery := fs.Duration("flight-every", time.Second, "flight-recorder snapshot interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *flightEvery <= 0 {
		return fmt.Errorf("serve: -flight-every must be positive, got %v", *flightEvery)
	}
	if *progress <= 0 {
		return fmt.Errorf("serve: -progress must be positive, got %v", *progress)
	}
	if *listen == "" {
		var wireOnly []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "max-inflight", "retry-after":
				wireOnly = append(wireOnly, "-"+f.Name)
			}
		})
		if len(wireOnly) > 0 {
			return fmt.Errorf("serve: %s only applies with -listen (wire admission control)", strings.Join(wireOnly, ", "))
		}
	} else {
		// A wire service defaults to no local submitters (the load comes
		// from the network) and, on a live session, to cuts disabled: a
		// network client parks its transaction inside the body between
		// round trips, and a quiescent cut would wait on it forever.
		subSet, quiesceSet := false, false
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "submitters":
				subSet = true
			case "quiesce":
				quiesceSet = true
			}
		})
		if !subSet {
			*submitters = 0
		}
		if !quiesceSet && *live {
			*quiesce = -1
		}
	}
	if !*live {
		// Flags only the resident monitor honours are rejected, not
		// silently dropped.
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "quiesce", "segment", "shards":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("serve: %s cannot be combined with -live=false (quiescent cuts and the segment budget belong to the resident monitor)", strings.Join(conflict, ", "))
		}
	}
	e, ok := engine.Lookup(*name)
	if !ok {
		return fmt.Errorf("serve: unknown engine %q", *name)
	}
	if e.Capabilities().Substrate != engine.Native {
		return fmt.Errorf("serve: %s is not a native engine (the soak service needs real concurrency)", *name)
	}
	spec, err := matrixCell(*workers, *mixName, *contentionName, *sharing)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	// The soak service always registers its instruments: the progress
	// lines read the registry, and the enforced overhead budget
	// (telemetry.OverheadBudgetRatio) keeps it cheap either way.
	reg := telemetry.NewRegistry()
	s, err := e.Open(engine.SessionConfig{
		Workers:         *workers,
		Vars:            spec.Vars,
		Live:            *live,
		QuiesceEvery:    *quiesce,
		LiveSegmentTxns: *segment,
		Shards:          *shards,
		Telemetry:       reg,
	})
	if err != nil {
		return err
	}
	var wsrv *server.Server
	if *listen != "" {
		wsrv = server.New(s, server.Config{
			MaxInflight: *maxInflight,
			RetryAfter:  *retryAfter,
			Registry:    reg,
			Info: server.InfoResponse{
				Engine: e.Name(), Workers: *workers, Vars: spec.Vars,
				Shards: *shards, Live: *live,
			},
		})
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			_, _ = s.Close()
			return fmt.Errorf("serve: -listen: %w", err)
		}
		hsrv := &http.Server{Handler: wsrv.Handler()}
		go func() { _ = hsrv.Serve(ln) }()
		defer hsrv.Close()
		fmt.Printf("serve: wire API v1 on http://%s/v1/ (max-inflight=%d, telemetry at /metrics)\n", ln.Addr(), *maxInflight)
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			_, _ = s.Close()
			return fmt.Errorf("serve: -metrics: %w", err)
		}
		srv := &http.Server{Handler: telemetry.Handler(reg)}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		fmt.Printf("serve: telemetry on http://%s/metrics (JSON at /snapshot, pprof at /debug/pprof/)\n", ln.Addr())
	}
	if *flight != "" {
		f, err := os.OpenFile(*flight, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			_, _ = s.Close()
			return fmt.Errorf("serve: -flight: %w", err)
		}
		fr := telemetry.NewFlightRecorder(reg, f, *flightEvery)
		fr.Start()
		defer func() { fr.Stop(); f.Close() }()
		fmt.Printf("serve: flight recorder appending to %s every %v\n", *flight, *flightEvery)
	}
	fmt.Printf("serve: %s serving %s with %d workers, %d submitters (live=%v)\n",
		e.Name(), spec.Name, *workers, *submitters, *live)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		var timeout <-chan time.Time
		if *duration > 0 {
			timeout = time.After(*duration)
		}
		select {
		case sig := <-sigc:
			fmt.Printf("serve: caught %v — draining\n", sig)
		case <-timeout:
			fmt.Printf("serve: duration %v elapsed — draining\n", *duration)
		case <-ctx.Done():
		}
		cancel()
	}()

	body := spec.Body()
	errc := make(chan error, *submitters)
	var wg sync.WaitGroup
	for i := 0; i < *submitters; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// The workload body's variable choice is a function of its
			// process index, so the submission is pinned to the worker
			// with that identity: submitters sharing a worker serialize
			// on its lane, and a disjoint cell stays disjoint.
			proc := id % *workers
			for round := 0; ctx.Err() == nil; round++ {
				r := round
				err := s.ExecOn(ctx, proc, func(tx engine.Tx) error { return body(proc, r, tx) })
				switch {
				case err == nil, errors.Is(err, engine.ErrNoCommit):
				case errors.Is(err, context.Canceled):
					return
				default:
					errc <- err
					cancel()
					return
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	submittersDone := (<-chan struct{})(done)
	var idleStop <-chan struct{}
	if *submitters == 0 {
		// No local submitters: the load is remote, so the instantly-empty
		// WaitGroup must not end the serving loop — the signal handler
		// (via ctx) or a remote drain does. With local submitters ctx
		// stays out of the select: they observe the cancellation
		// themselves and the loop ends on their clean exit.
		submittersDone = nil
		idleStop = ctx.Done()
	}
	var remoteDrained <-chan struct{}
	if wsrv != nil {
		remoteDrained = wsrv.Done()
	}

	start := time.Now()
	tick := time.NewTicker(*progress)
	defer tick.Stop()
serving:
	for {
		select {
		case <-tick.C:
			st := s.Stats()
			snap := reg.Snapshot()
			fmt.Printf("serve: t=%-8s workers=%d submitted=%d completed=%d commits=%d aborts=%d (%.1f%%)%s%s bias=%v\n",
				time.Since(start).Round(time.Second), st.Workers, st.Submitted, st.Completed,
				st.Commits, st.Aborts, 100*st.AbortRate(),
				abortCauseSummary(snap), laneLagSummary(snap), st.BackoffBias)
		case <-submittersDone:
			break serving
		case <-remoteDrained:
			fmt.Println("serve: drained remotely (POST /v1/drain)")
			break serving
		case <-idleStop:
			break serving
		}
	}

	var (
		rep  *monitor.Report
		st   engine.SessionStats
		cerr error
	)
	if wsrv != nil {
		// Drain through the wire server so parked interactive
		// transactions are abandoned before the session closes; a remote
		// drain already ran this and the call just returns its outcome.
		dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
		res, derr := wsrv.Drain(dctx)
		dcancel()
		rep, st, cerr = res.Report, res.Stats, derr
	} else {
		rep, cerr = s.Close()
		st = s.Stats()
	}
	fmt.Printf("serve: final report after %s: commits=%d aborts=%d (%.1f%%) no-commits=%d over %d workers\n",
		time.Since(start).Round(time.Millisecond), st.Commits, st.Aborts, 100*st.AbortRate(), st.NoCommits, st.Workers)
	if rep != nil {
		fmt.Print(rep.Format())
		fmt.Printf("  liveness class: %s\n", rep.LivenessClass())
	}
	printCutStats(st.Shards, st.CutLatency, st.ShardCuts)
	if cerr != nil {
		return fmt.Errorf("serve: %w", cerr)
	}
	select {
	case err := <-errc:
		return fmt.Errorf("serve: submitter failed: %w", err)
	default:
	}
	return nil
}

// cmdClient drives a served session (livetm serve -listen) over the
// wire: either as a load generator — concurrent connections
// submitting increment programs with a 429-aware backoff loop — or,
// with -strategy, as the network adversary (the paper's environment
// strategies executed as wire clients through
// internal/adversary/netadv). -drain asks the server for a graceful
// drain afterwards and prints the final monitor report.
func cmdClient(args []string) error {
	fs := flag.NewFlagSet("client", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8722", "server address (livetm serve -listen)")
	name := fs.String("name", "", "client identity for per-client fairness accounting (default livetm-<pid>)")
	clients := fs.Int("clients", 4, "concurrent load connections")
	ops := fs.Int("ops", 200, "programs each connection submits (load mode)")
	strategyName := fs.String("strategy", "", "run this adversary strategy over the wire instead of load: alg1, alg1-crash, alg2 or alg2-parasitic")
	rounds := fs.Int("rounds", 10, "p2 commits to sample (-strategy)")
	blockTimeout := fs.Duration("block-timeout", 5*time.Second, "per-action budget before the TM counts as blocking (-strategy)")
	drain := fs.Bool("drain", false, "after the run, gracefully drain the server and print its final monitor report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ident := *name
	if ident == "" {
		ident = fmt.Sprintf("livetm-%d", os.Getpid())
	}
	c := client.New(client.Config{Addr: *addr, Name: ident})
	ctx := context.Background()
	info, err := c.Info(ctx)
	if err != nil {
		return fmt.Errorf("client: %s: %w", *addr, err)
	}
	fmt.Printf("client: %s serving %s (%d workers, %d vars, live=%v)\n",
		*addr, info.Engine, info.Workers, info.Vars, info.Live)

	if *strategyName != "" {
		var strat adversary.Strategy
		found := false
		for _, s := range adversary.Variants() {
			if s.Name() == *strategyName {
				strat, found = s, true
				break
			}
		}
		if !found {
			return fmt.Errorf("client: unknown strategy %q (alg1, alg1-crash, alg2, alg2-parasitic)", *strategyName)
		}
		if info.Workers < 2 {
			return fmt.Errorf("client: the adversary needs 2 workers, the server has %d", info.Workers)
		}
		outcome, err := netadv.RunNetwork(c, strat, adversary.Config{
			Rounds: *rounds, BlockTimeout: *blockTimeout,
		})
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		fmt.Printf("client: strategy %s: rounds=%d p1-committed=%v blocked=%v local-progress-violated=%v\n",
			strat.Name(), outcome.Rounds, outcome.P1Committed, outcome.Blocked, outcome.LocalProgressViolated())
	} else {
		if *clients <= 0 || *ops <= 0 {
			return fmt.Errorf("client: -clients and -ops must be positive")
		}
		var committed, retries atomic.Uint64
		var wg sync.WaitGroup
		errc := make(chan error, *clients)
		start := time.Now()
		for i := 0; i < *clients; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				cc := client.New(client.Config{Addr: *addr, Name: fmt.Sprintf("%s-%d", ident, id)})
				v := id % info.Vars
				prog := []server.Op{{Kind: server.OpIncr, Var: v, Val: 1}}
				var backoff client.Backoff
				for n := 0; n < *ops; n++ {
					for {
						res, err := cc.Exec(ctx, engine.AnyWorker, prog)
						if err == nil {
							if res.Committed {
								committed.Add(1)
							}
							backoff.Reset()
							break
						}
						var werr *client.Error
						if errors.Is(err, engine.ErrOverloaded) && errors.As(err, &werr) {
							// The 429 path: the server's hint floors the
							// wait, jitter above it de-herds the retries.
							retries.Add(1)
							time.Sleep(backoff.Next(werr.RetryAfter))
							continue
						}
						errc <- fmt.Errorf("connection %d: %w", id, err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		select {
		case err := <-errc:
			return fmt.Errorf("client: %w", err)
		default:
		}
		elapsed := time.Since(start)
		fmt.Printf("client: %d connections committed %d/%d programs in %v (%d overload retries)\n",
			*clients, committed.Load(), *clients**ops, elapsed.Round(time.Millisecond), retries.Load())
		st, err := c.Stats(ctx)
		if err != nil {
			return fmt.Errorf("client: stats: %w", err)
		}
		fmt.Printf("client: server stats: submitted=%d completed=%d commits=%d aborts=%d (%.1f%%)\n",
			st.Submitted, st.Completed, st.Commits, st.Aborts, 100*st.AbortRate())
	}

	if *drain {
		dctx, cancel := context.WithTimeout(ctx, time.Minute)
		defer cancel()
		res, err := c.Drain(dctx)
		if err != nil {
			return fmt.Errorf("client: drain: %w", err)
		}
		fmt.Printf("client: server drained: commits=%d aborts=%d no-commits=%d\n",
			res.Stats.Commits, res.Stats.Aborts, res.Stats.NoCommits)
		if res.Report != nil {
			fmt.Print(res.Report.Format())
			fmt.Printf("  liveness class: %s\n", res.Report.LivenessClass())
			intervals := res.Report.StarvationIntervals()
			procs := make([]model.Proc, 0, len(intervals))
			for proc := range intervals {
				procs = append(procs, proc)
			}
			sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
			for _, proc := range procs {
				if iv := intervals[proc]; len(iv) > 0 {
					fmt.Printf("  p%d starvation intervals (events): %v\n", proc, iv)
				}
			}
		}
		if res.Code != "" {
			return fmt.Errorf("client: server closed with %s: %s", res.Code, res.Error)
		}
	}
	return nil
}

// cmdLoadgen drives a declarative open-loop scenario against an
// in-process session or a served one, emits the provenance-stamped
// artifact, and optionally evaluates the release gates in place. The
// "gate" word re-judges a saved artifact instead (the CI entry
// point).
func cmdLoadgen(args []string) error {
	if len(args) > 0 && args[0] == "gate" {
		return cmdLoadgenGate(args[1:])
	}
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	scenarioFile := fs.String("scenario", "", "scenario JSON file (required; see internal/loadgen's package docs for the schema)")
	addr := fs.String("addr", "", "address of a served session (livetm serve -listen); empty opens the scenario's in-process session block")
	planOnly := fs.Bool("plan", false, "print the materialized arrival schedule (deterministic JSON) and exit without running")
	out := fs.String("out", "", "write the run artifact JSON to this file")
	drainFlag := fs.Bool("drain", false, "drain the wire target after the run so the artifact carries the final monitor report (in-process runs always close and fold it)")
	ident := fs.String("name", "loadgen", "client identity prefix; arrivals rotate through <name>-0..<clients-1>")
	gateFlag := fs.Bool("gate", false, "evaluate the scenario's gates against the artifact; non-zero exit on failure")
	benchFile := fs.String("bench", "", "BENCH artifact (BENCH_native.json) for the trajectory gate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenarioFile == "" {
		return fmt.Errorf("loadgen: -scenario is required")
	}
	sc, hash, err := loadgen.Load(*scenarioFile)
	if err != nil {
		return err
	}
	if *planOnly {
		plan, err := sc.Plan()
		if err != nil {
			return err
		}
		b, err := plan.Encode()
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var art *loadgen.Artifact
	if *addr != "" {
		c := client.New(client.Config{Addr: *addr, Name: *ident})
		tgt, err := loadgen.NewWireTarget(ctx, c)
		if err != nil {
			return err
		}
		fmt.Printf("loadgen: scenario %s (seed %d) against %s, %d workers, %d vars\n",
			sc.Name, sc.Seed, *addr, tgt.Workers(), tgt.Vars())
		if art, err = loadgen.Run(ctx, tgt, sc, hash, loadgen.Options{ClientPrefix: *ident}); err != nil {
			return err
		}
		if *drainFlag {
			dctx, cancel := context.WithTimeout(ctx, time.Minute)
			res, derr := c.Drain(dctx)
			cancel()
			if derr != nil {
				return fmt.Errorf("loadgen: drain: %w", derr)
			}
			art.AttachReport(res.Report)
		}
	} else {
		if sc.Session == nil {
			return fmt.Errorf("loadgen: scenario %s has no session block; give -addr or add one", sc.Name)
		}
		ses := sc.Session
		sess, err := engine.Open(engine.SessionConfig{
			Engine: ses.Engine, Workers: ses.Workers, MaxWorkers: ses.MaxWorkers,
			Vars: ses.Vars, MaxQueue: ses.MaxQueue, Live: ses.Live, Shards: ses.Shards,
			Record: ses.Live,
		})
		if err != nil {
			return fmt.Errorf("loadgen: open session: %w", err)
		}
		tgt := &loadgen.SessionTarget{S: sess, NVars: ses.Vars}
		fmt.Printf("loadgen: scenario %s (seed %d) in process on %s, %d workers, %d vars\n",
			sc.Name, sc.Seed, sess.Name(), tgt.Workers(), tgt.Vars())
		art, err = loadgen.Run(ctx, tgt, sc, hash, loadgen.Options{ClientPrefix: *ident})
		rep, cerr := sess.Close()
		if err != nil {
			return err
		}
		if cerr != nil {
			fmt.Printf("loadgen: session close: %v\n", cerr)
		}
		art.AttachReport(rep)
	}

	for _, p := range art.Phases {
		line := fmt.Sprintf("loadgen: phase %-10s planned=%d dispatched=%d committed=%d p50=%.1fms p95=%.1fms p99=%.1fms abort=%.3f refusal=%.3f",
			p.Name, p.Planned, p.Dispatched, p.Committed, p.P50MS, p.P95MS, p.P99MS, p.AbortRate, p.RefusalRate)
		if p.Shed+p.Dropped+p.Errors > 0 {
			line += fmt.Sprintf(" shed=%d dropped=%d errors=%d", p.Shed, p.Dropped, p.Errors)
		}
		for _, fr := range p.FaultResults {
			line += fmt.Sprintf(" fault=%s runs=%d rounds=%d violations=%d",
				fr.Strategy, fr.Runs, fr.Rounds, fr.Violations)
		}
		if len(p.FaultResults) == 0 && p.FaultOutcome != nil {
			// Artifacts written before layered faults carry only the
			// singular summary.
			line += fmt.Sprintf(" fault=%s runs=%d rounds=%d violations=%d",
				p.FaultOutcome.Strategy, p.FaultOutcome.Runs, p.FaultOutcome.Rounds, p.FaultOutcome.Violations)
		}
		fmt.Println(line)
	}
	if art.LivenessClass != "" {
		fmt.Printf("loadgen: liveness class: %s (checked=%v, checked-throughput=%.1f/s)\n",
			art.LivenessClass, art.Checked, art.CheckedThroughput)
	}
	if *out != "" {
		if err := art.Write(*out); err != nil {
			return fmt.Errorf("loadgen: write artifact: %w", err)
		}
		fmt.Printf("loadgen: artifact written to %s\n", *out)
	}
	if *gateFlag {
		if art.Gates == nil {
			return fmt.Errorf("loadgen: -gate set but scenario %s declares no gates", sc.Name)
		}
		return printGateVerdicts(loadgen.Evaluate(art, *art.Gates, *benchFile))
	}
	return nil
}

// cmdLoadgenGate re-judges a saved artifact against its embedded
// gates — the CI regression gate.
func cmdLoadgenGate(args []string) error {
	fs := flag.NewFlagSet("loadgen gate", flag.ContinueOnError)
	artifactFile := fs.String("artifact", "", "loadgen artifact JSON (required)")
	benchFile := fs.String("bench", "", "BENCH artifact (BENCH_native.json) for the trajectory gate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *artifactFile == "" {
		return fmt.Errorf("loadgen gate: -artifact is required")
	}
	art, err := loadgen.LoadArtifact(*artifactFile)
	if err != nil {
		return err
	}
	if art.Gates == nil {
		return fmt.Errorf("loadgen gate: artifact %s carries no gates", *artifactFile)
	}
	fmt.Printf("loadgen gate: %s (scenario %s, seed %d, %s)\n",
		*artifactFile, art.Scenario, art.Seed, art.GitDescribe)
	return printGateVerdicts(loadgen.Evaluate(art, *art.Gates, *benchFile))
}

// printGateVerdicts prints one line per gate and errors if any
// failed (the subcommands' non-zero exit).
func printGateVerdicts(results []loadgen.GateResult) error {
	failed := 0
	for _, r := range results {
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("loadgen gate: %-4s %-16s %s\n", verdict, r.Gate, r.Detail)
	}
	if len(results) == 0 {
		return fmt.Errorf("loadgen gate: no gates evaluated")
	}
	if failed > 0 {
		return fmt.Errorf("loadgen gate: %d/%d gates failed", failed, len(results))
	}
	return nil
}

// abortCauseSummary renders the retry loop's abort-cause breakdown
// from a registry snapshot (" causes=conflict:N,operation:M,..."),
// listing only non-zero causes; empty before any abort.
func abortCauseSummary(snap telemetry.Snapshot) string {
	f := snap.Family("livetm_tx_aborts_total")
	if f == nil {
		return ""
	}
	var parts []string
	for _, cause := range []string{"conflict", "operation", "abandoned", "stopped"} {
		if v, ok := snap.Value("livetm_tx_aborts_total", "cause", cause); ok && v > 0 {
			parts = append(parts, fmt.Sprintf("%s:%.0f", cause, v))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return " causes=" + strings.Join(parts, ",")
}

// laneLagSummary renders the per-shard checker-lane backlog from a
// registry snapshot (" lag=[a b ...]" in shard order, the merge lane
// excluded); empty when no checker telemetry is registered.
func laneLagSummary(snap telemetry.Snapshot) string {
	f := snap.Family("livetm_checker_lane_lag")
	if f == nil {
		return ""
	}
	lags := make(map[int]int64)
	max := -1
	for _, ser := range f.Series {
		k, err := strconv.Atoi(ser.Label("shard"))
		if err != nil {
			continue // the merge lane
		}
		lags[k] = int64(ser.Value)
		if k > max {
			max = k
		}
	}
	if max < 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString(" lag=[")
	for k := 0; k <= max; k++ {
		if k > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", lags[k])
	}
	b.WriteByte(']')
	return b.String()
}

// cmdRecord runs one recording-capable engine over a workload-matrix
// style body and writes the recorded history as a JSON Lines trace.
func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	name := fs.String("engine", "native-tl2", "engine to run (see `livetm engines`)")
	procsN := fs.Int("procs", 2, "process count")
	ops := fs.Int("ops", 50, "rounds per process (native), round budget (sim)")
	simSteps := fs.Int("simsteps", 20000, "scheduler step budget (simulated engines)")
	mixName := fs.String("mix", "update", "read/write mix: update, readheavy or writeheavy")
	contentionName := fs.String("contention", "hot", "contention level: hot or cold")
	sharing := fs.String("sharing", "shared", "variable sharing: shared or disjoint")
	quiesce := fs.Int("quiesce", 4, "rendezvous interval (rounds) on native engines; plants the quiescent cuts the checkers need (0 = never)")
	seed := fs.Uint64("seed", 1, "scheduler seed (simulated engines)")
	out := fs.String("out", "-", "trace file, or - for stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	e, ok := engine.Lookup(*name)
	if !ok {
		return fmt.Errorf("record: unknown engine %q", *name)
	}
	caps := e.Capabilities()
	if !caps.HistoryRecording {
		return fmt.Errorf("record: engine %s cannot record histories", e.Name())
	}
	// Select the cell from the declared matrix rather than rebuilding
	// it, so recorded traces always match the matrix cell of the same
	// name.
	spec, err := matrixCell(*procsN, *mixName, *contentionName, *sharing)
	if err != nil {
		return fmt.Errorf("record: %w", err)
	}
	cfg := engine.RunConfig{
		Procs:      spec.Procs,
		Vars:       spec.Vars,
		Seed:       *seed,
		OpsPerProc: *ops,
		Record:     true,
	}
	if caps.Substrate == engine.Simulated {
		cfg.SimSteps = *simSteps
	} else {
		cfg.QuiesceEvery = *quiesce
	}
	st, err := e.Run(cfg, spec.Body())
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recorded %s on %s: %d events, commits=%d aborts=%d\n",
		spec.Name, e.Name(), len(st.History), st.Commits, st.Aborts)
	if *out == "-" {
		return model.WriteTrace(os.Stdout, st.History)
	}
	if err := model.SaveTrace(*out, st.History); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace written to %s\n", *out)
	return nil
}

// cmdMonitor streams a trace — live from a pipe, replayed from a
// file, or (with -live) produced by an in-process native run — through
// the online monitor.
func cmdMonitor(args []string) error {
	fs := flag.NewFlagSet("monitor", flag.ContinueOnError)
	file := fs.String("file", "", "JSON Lines trace file, or - for stdin")
	segment := fs.Int("segment", 48, "streaming opacity segment budget (transactions)")
	window := fs.Int("window", 256, "tail window (events) for liveness classification")
	every := fs.Int("every", 0, "print a progress line every N events (0 = only the final report)")
	approx := fs.Bool("approx", false, "degrade cut-starved streams to approximate verdicts instead of refusing")
	live := fs.Bool("live", false, "monitor an in-process native run instead of a trace (mid-flight stop + starvation-aware backoff)")
	engineName := fs.String("engine", "native-tl2", "native engine for -live (see `livetm engines`)")
	procsN := fs.Int("procs", 4, "process count for -live")
	ops := fs.Int("ops", 200, "rounds per process for -live")
	mixName := fs.String("mix", "update", "read/write mix for -live")
	contentionName := fs.String("contention", "hot", "contention level for -live")
	sharing := fs.String("sharing", "shared", "variable sharing for -live")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *live {
		// Flags the in-process path cannot honour are rejected, not
		// silently dropped.
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "file", "every", "approx":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("monitor: %s cannot be combined with -live (the engine's in-process monitor streams internally and always uses the approximate fallback)", strings.Join(conflict, ", "))
		}
		return runLiveCell(*engineName, *procsN, *ops, *mixName, *contentionName, *sharing, 0, *segment, *window, 0, "")
	}
	if *file == "" {
		return fmt.Errorf("monitor: -file is required (or -live for an in-process run)")
	}
	in := os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	m, err := monitor.New(monitor.Config{SegmentTxns: *segment, TailWindow: *window, Approx: *approx})
	if err != nil {
		return err
	}
	dec := json.NewDecoder(in)
	var firstErr error
	for i := 0; ; i++ {
		var e model.Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("monitor: decode event %d: %w", i, err)
		}
		// Terminal safety errors land in the report; the liveness half
		// keeps accounting, which is the point of monitoring live.
		if err := m.Observe(e); err != nil && firstErr == nil {
			firstErr = err
			fmt.Fprintf(os.Stderr, "after event %d: %v\n", i+1, err)
		}
		if *every > 0 && (i+1)%*every == 0 {
			fmt.Fprintf(os.Stderr, "observed %d events...\n", i+1)
		}
	}
	fmt.Print(m.Report().Format())
	return nil
}
