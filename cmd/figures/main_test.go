package main

import "testing"

// TestRun executes the whole figure regeneration; every checker
// verdict inside is asserted by run itself (it errors on any
// discrepancy such as Hex being rejected).
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
