// Command figures regenerates every figure of the paper "On the
// Liveness of Transactional Memory" (PODC 2012) from the executable
// artifacts in this repository: it renders each history, reports the
// checker verdicts, enumerates the Fgp state space of Figure 15, and
// replays Figure 16's history Hex.
package main

import (
	"fmt"
	"os"

	"livetm/internal/adversary"
	"livetm/internal/automaton"
	"livetm/internal/core"
	"livetm/internal/fgp"
	"livetm/internal/liveness"
	"livetm/internal/model"
	"livetm/internal/safety"
	"livetm/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := history("Figure 1 (opaque, strictly serializable; repeated forever it starves T1)", core.Fig1()); err != nil {
		return err
	}
	fmt.Println("Figure 2: process-class lattice — verified as properties over lassos;")
	fmt.Println("  see internal/liveness TestClassLatticeProperty.")
	fmt.Println()
	if err := history("Figure 3 (lost update: not opaque, not strictly serializable)", core.Fig3()); err != nil {
		return err
	}
	if err := history("Figure 4 (strictly serializable but not opaque)", core.Fig4()); err != nil {
		return err
	}

	lasso("Figure 5 (local progress)", core.Fig5())
	lasso("Figure 6 (global but not local progress)", core.Fig6())
	lasso("Figure 7 (solo progress: p1 crashes, p2 parasitic, p3 alone)", core.Fig7())

	if err := history("Figures 8/11 (Algorithm 1/2's would-be terminating suffix, v=0)", core.Fig8(0)); err != nil {
		return err
	}

	if err := adversaryFigures(); err != nil {
		return err
	}

	lasso("Figure 14 (solo runner starves: violates every nonblocking property)", core.Fig14())

	if err := fig15(); err != nil {
		return err
	}
	return fig16()
}

// adversaryFigures regenerates Figures 9, 10, 12, and 13 by running
// the Theorem 1 environment strategies against the obstruction-free
// TM and rendering each suffix.
func adversaryFigures() error {
	nf, ok := core.Lookup("dstm")
	if !ok {
		return fmt.Errorf("dstm not registered")
	}
	cases := []struct {
		title string
		alg   int
		cfg   adversary.Config
	}{
		{"Figure 9 (Algorithm 1, p1 crashes after its read: p2 commits forever)", 1,
			adversary.Config{Rounds: 3, Seed: 5, CrashP1AfterRead: true}},
		{"Figure 10 (Algorithm 1, p1 correct: aborted forever)", 1,
			adversary.Config{Rounds: 3, Seed: 5}},
		{"Figure 12 (Algorithm 2, p1 parasitic: reads forever, p2 commits forever)", 2,
			adversary.Config{Rounds: 3, Seed: 5, ParasiticP1: true}},
		{"Figure 13 (Algorithm 2, p1 correct: aborted forever)", 2,
			adversary.Config{Rounds: 3, Seed: 5}},
	}
	for _, c := range cases {
		var res adversary.Result
		if c.alg == 1 {
			res = adversary.Algorithm1(nf.Factory, c.cfg)
		} else {
			res = adversary.Algorithm2(nf.Factory, c.cfg)
		}
		if res.P1Committed {
			return fmt.Errorf("%s: p1 committed", c.title)
		}
		fmt.Println("==", c.title, "— live run vs", nf.Name)
		h := res.History
		if len(h) > 36 {
			h = h[len(h)-36:]
		}
		fmt.Print(trace.Render(h))
		fmt.Printf("   p1 commits=%d p2 commits=%d (p1 starves; local progress fails)\n\n",
			res.Stats.Commits[1], res.Stats.Commits[2])
	}
	return nil
}

func history(title string, h model.History) error {
	fmt.Println("==", title)
	fmt.Print(trace.Render(h))
	op, err := safety.CheckOpacity(h)
	if err != nil {
		return err
	}
	ss, err := safety.CheckStrictSerializability(h)
	if err != nil {
		return err
	}
	fmt.Printf("   opaque=%v  strictly-serializable=%v\n\n", op.Holds, ss.Holds)
	return nil
}

func lasso(title string, l *liveness.Lasso) {
	fmt.Println("==", title)
	fmt.Println("prefix:")
	fmt.Print(trace.Render(l.Prefix))
	fmt.Println("cycle (repeated forever):")
	fmt.Print(trace.Render(l.Cycle))
	fmt.Printf("   local=%v global=%v solo=%v  violates{nonblocking=%v biprogressing=%v}\n\n",
		liveness.LocalProgress.Contains(l),
		liveness.GlobalProgress.Contains(l),
		liveness.SoloProgress.Contains(l),
		liveness.ViolatesNonblocking(l),
		liveness.ViolatesBiprogressing(l))
}

func fig15() error {
	fmt.Println("== Figure 15 (Fgp for one process, one binary t-variable)")
	a, err := fgp.New(1, 1, fgp.Faithful)
	if err != nil {
		return err
	}
	states, err := automaton.Explore(a.IOAutomaton(), a.Alphabet([]model.Value{0, 1}), 100)
	if err != nil {
		return err
	}
	fmt.Printf("reachable states: %d (paper lists 10)\n", len(states))
	for i, s := range states {
		fmt.Printf("  s%-2d = %s\n", i+1, s.(*fgp.State))
	}
	fmt.Println()
	return nil
}

func fig16() error {
	fmt.Println("== Figure 16 (history Hex of Fgp: 3 processes, 2 binary t-variables)")
	hex := core.Fig16Hex()
	fmt.Print(trace.Render(hex))
	a, err := fgp.New(3, 2, fgp.Corrected)
	if err != nil {
		return err
	}
	if _, err := a.IOAutomaton().Replay(hex); err != nil {
		return fmt.Errorf("Hex rejected: %w", err)
	}
	op, err := safety.CheckOpacity(hex)
	if err != nil {
		return err
	}
	fmt.Printf("   accepted by Fgp=%v  opaque=%v\n", true, op.Holds)
	return nil
}
