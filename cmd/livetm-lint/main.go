// Command livetm-lint runs livetm's domain-specific static-analysis
// suite: five analyzers that prove the repository's concurrency and
// determinism invariants at compile time (see internal/lint's package
// documentation for the rule catalog and the allow-directive
// grammar). It is stdlib-only — the package graph comes from `go
// list`, type checking from go/parser + go/types — so the module's
// zero-dependency property survives its own linter.
//
// Usage:
//
//	livetm-lint [-dir DIR] [-list] [packages]
//
// Packages default to ./... under -dir (default "."). The exit code
// is 0 when the tree is clean, 1 when any finding is reported, and 2
// on a driver error (unparseable package, failed go list).
package main

import (
	"flag"
	"fmt"
	"os"

	"livetm/internal/lint"
)

func main() {
	dir := flag.String("dir", ".", "module directory to analyze")
	list := flag.Bool("list", false, "list the rule catalog and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: livetm-lint [-dir DIR] [-list] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	findings, err := lint.Analyze(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "livetm-lint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "livetm-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
