// Benchmark harness: one benchmark per paper artifact (figures 1–16,
// theorems 1–3), plus the liveness matrix (E20), the scalability/
// resilience experiment (E21), and the design-choice ablations
// (DESIGN.md §5). Each benchmark reports its headline measurement as
// custom metrics, so `go test -bench=. -benchmem` regenerates the
// paper's rows/series.
package livetm_test

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"livetm/internal/adversary"
	"livetm/internal/automaton"
	"livetm/internal/core"
	"livetm/internal/engine"
	"livetm/internal/fgp"
	"livetm/internal/liveness"
	"livetm/internal/model"
	"livetm/internal/safety"
	"livetm/internal/sim"
	stmpkg "livetm/internal/stm"
	"livetm/internal/stm/dstm"
	"livetm/internal/stm/glock"
	"livetm/internal/stm/ostm"
	"livetm/internal/stm/stmtest"
	"livetm/internal/telemetry"
	"livetm/internal/workload"
)

var printOnce sync.Map

// printHeader prints a benchmark's table once per process, keeping
// -bench output readable across b.N calibration runs.
func printHeader(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Print(text)
	}
}

// --- Figures 1, 3, 4, 8/11: safety checker verdicts ---

func benchVerdict(b *testing.B, h model.History, wantOpaque, wantSS bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		op, err := safety.CheckOpacity(h)
		if err != nil {
			b.Fatal(err)
		}
		ss, err := safety.CheckStrictSerializability(h)
		if err != nil {
			b.Fatal(err)
		}
		if op.Holds != wantOpaque || ss.Holds != wantSS {
			b.Fatalf("verdicts opaque=%v ss=%v, want %v,%v", op.Holds, ss.Holds, wantOpaque, wantSS)
		}
	}
}

func BenchmarkFig01RetryHistory(b *testing.B) {
	printHeader("fig1", "fig01: retry history — opaque=true strictly-serializable=true\n")
	benchVerdict(b, core.Fig1(), true, true)
}

func BenchmarkFig03NotOpaque(b *testing.B) {
	printHeader("fig3", "fig03: lost update — opaque=false strictly-serializable=false\n")
	benchVerdict(b, core.Fig3(), false, false)
}

func BenchmarkFig04SSNotOpaque(b *testing.B) {
	printHeader("fig4", "fig04: inconsistent aborted read — opaque=false strictly-serializable=true\n")
	benchVerdict(b, core.Fig4(), false, true)
}

func BenchmarkFig08TerminationImpossible(b *testing.B) {
	printHeader("fig8", "fig08/11: adversary termination suffix — opaque=false (Theorem 1's case analysis)\n")
	benchVerdict(b, core.Fig8(0), false, false)
}

func BenchmarkFig11Alg2Termination(b *testing.B) {
	benchVerdict(b, core.Fig11(7), false, false)
}

// --- Figure 2: class lattice over the figure lassos ---

func BenchmarkFig02ClassLattice(b *testing.B) {
	printHeader("fig2", "fig02: class lattice — crashed/parasitic ⊂ faulty ⊂ pending holds on all figure lassos\n")
	lassos := []*liveness.Lasso{core.Fig5(), core.Fig6(), core.Fig7(), core.Fig14()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range lassos {
			for _, p := range l.Procs {
				if l.Crashes(p) && !l.Faulty(p) {
					b.Fatal("crashed must imply faulty")
				}
				if l.Parasitic(p) && !l.Pending(p) {
					b.Fatal("parasitic must imply pending")
				}
				if l.Starving(p) && !(l.Correct(p) && l.Pending(p)) {
					b.Fatal("starving must imply correct and pending")
				}
			}
		}
	}
}

// --- Figures 5, 6, 7, 14: liveness property membership ---

func benchLasso(b *testing.B, l *liveness.Lasso, wantLocal, wantGlobal, wantSolo bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if liveness.LocalProgress.Contains(l) != wantLocal ||
			liveness.GlobalProgress.Contains(l) != wantGlobal ||
			liveness.SoloProgress.Contains(l) != wantSolo {
			b.Fatal("liveness verdicts changed")
		}
	}
}

func BenchmarkFig05LocalProgress(b *testing.B) {
	printHeader("fig5", "fig05: local=true global=true solo=true\n")
	benchLasso(b, core.Fig5(), true, true, true)
}

func BenchmarkFig06GlobalProgress(b *testing.B) {
	printHeader("fig6", "fig06: local=false global=true solo=true (witnesses: global progress is not biprogressing)\n")
	benchLasso(b, core.Fig6(), false, true, true)
}

func BenchmarkFig07SoloProgress(b *testing.B) {
	printHeader("fig7", "fig07: crash+parasitic+solo runner — solo=true\n")
	benchLasso(b, core.Fig7(), true, true, true)
}

func BenchmarkFig14Blocking(b *testing.B) {
	printHeader("fig14", "fig14: solo runner starves — violates every nonblocking property\n")
	l := core.Fig14()
	for i := 0; i < b.N; i++ {
		if !liveness.ViolatesNonblocking(l) {
			b.Fatal("figure 14 must violate nonblocking")
		}
	}
}

// --- Figures 9, 10, 12, 13: adversary suffixes ---

func benchAdversary(b *testing.B, alg int, cfg adversary.Config, label string) {
	b.Helper()
	factory := func(n, v int) stmpkg.TM { return dstm.New() }
	var rounds, p1aborts int
	for i := 0; i < b.N; i++ {
		var res adversary.Result
		if alg == 1 {
			res = adversary.Algorithm1(factory, cfg)
		} else {
			res = adversary.Algorithm2(factory, cfg)
		}
		if res.P1Committed {
			b.Fatal("p1 committed")
		}
		rounds = res.Rounds
		p1aborts = res.Stats.Aborts[1]
	}
	printHeader(label, fmt.Sprintf("%s: p2 commits=%d, p1 commits=0, p1 aborts=%d\n", label, rounds, p1aborts))
	b.ReportMetric(float64(rounds), "p2commits")
}

func BenchmarkFig09Alg1Crash(b *testing.B) {
	benchAdversary(b, 1, adversary.Config{Rounds: 6, Seed: 5, CrashP1AfterRead: true}, "fig09 (alg1, p1 crashes)")
}

func BenchmarkFig10Alg1NoCrash(b *testing.B) {
	benchAdversary(b, 1, adversary.Config{Rounds: 6, Seed: 5}, "fig10 (alg1, p1 correct, starves)")
}

func BenchmarkFig12Alg2Parasitic(b *testing.B) {
	benchAdversary(b, 2, adversary.Config{Rounds: 6, Seed: 5, ParasiticP1: true}, "fig12 (alg2, p1 parasitic)")
}

func BenchmarkFig13Alg2NoParasite(b *testing.B) {
	benchAdversary(b, 2, adversary.Config{Rounds: 6, Seed: 5}, "fig13 (alg2, p1 correct, starves)")
}

// --- Figure 15: Fgp state space ---

func BenchmarkFig15FgpStateSpace(b *testing.B) {
	a, err := fgp.New(1, 1, fgp.Faithful)
	if err != nil {
		b.Fatal(err)
	}
	alphabet := a.Alphabet([]model.Value{0, 1})
	var n int
	for i := 0; i < b.N; i++ {
		states, err := automaton.Explore(a.IOAutomaton(), alphabet, 100)
		if err != nil {
			b.Fatal(err)
		}
		if len(states) != 10 {
			b.Fatalf("states = %d, want 10", len(states))
		}
		n = len(states)
	}
	printHeader("fig15", fmt.Sprintf("fig15: Fgp(1 proc, 1 binary var) reachable states = %d (paper: 10)\n", n))
	b.ReportMetric(float64(n), "states")
}

// --- Figure 16: Hex replay ---

func BenchmarkFig16FgpHex(b *testing.B) {
	printHeader("fig16", "fig16: Hex replays through Fgp and is opaque\n")
	a, err := fgp.New(3, 2, fgp.Corrected)
	if err != nil {
		b.Fatal(err)
	}
	hex := core.Fig16Hex()
	io := a.IOAutomaton()
	for i := 0; i < b.N; i++ {
		if _, err := io.Replay(hex); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Theorems ---

func BenchmarkThm1Impossibility(b *testing.B) {
	var starved int
	for i := 0; i < b.N; i++ {
		outs := core.Theorem1Evidence(3, false)
		starved = 0
		for _, o := range outs {
			if !o.Starved {
				b.Fatalf("%s/%s: p1 committed", o.TM, o.Strategy)
			}
			starved++
		}
	}
	printHeader("thm1", fmt.Sprintf("thm1: %d adversary runs (%d TMs × 2 strategies), p1 starved in all\n", starved, starved/2))
	b.ReportMetric(float64(starved), "starvedruns")
}

// BenchmarkLemma1NProcesses runs the n-process generalization: n-1
// holders and one committer; at most one process progresses.
func BenchmarkLemma1NProcesses(b *testing.B) {
	for _, n := range []int{3, 5, 8} {
		n := n
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			factory := func(procs, vars int) stmpkg.TM { return dstm.New() }
			var rounds int
			for i := 0; i < b.N; i++ {
				res := adversary.Lemma1(factory, n, adversary.Config{Rounds: 5, Seed: uint64(n)})
				if res.P1Committed {
					b.Fatal("a holder committed")
				}
				progressing := 0
				for _, c := range res.Stats.Commits {
					if c > 0 {
						progressing++
					}
				}
				if progressing > 1 {
					b.Fatalf("%d processes progressed", progressing)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "committerrounds")
		})
	}
}

func BenchmarkThm2Generalized(b *testing.B) {
	printHeader("thm2", "thm2: starvation and blocking lassos violate biprogressing/nonblocking classes\n")
	for i := 0; i < b.N; i++ {
		notes := core.Theorem2Evidence()
		if len(notes) != 2 {
			b.Fatalf("evidence notes = %v", notes)
		}
	}
}

func BenchmarkThm3FgpOpacity(b *testing.B) {
	var out core.Theorem3Outcome
	for i := 0; i < b.N; i++ {
		out = core.Theorem3Evidence(4, 120)
		if out.Violation != "" {
			b.Fatal(out.Violation)
		}
	}
	printHeader("thm3", fmt.Sprintf("thm3: %d random schedules, all prefixes opaque, %d commits under faults\n",
		out.SchedulesChecked, out.Commits))
	b.ReportMetric(float64(out.Commits), "commits")
}

// --- E20: liveness matrix ---

func BenchmarkLivenessMatrix(b *testing.B) {
	var rows []core.MatrixRow
	for i := 0; i < b.N; i++ {
		rows = core.RunMatrix(core.MatrixConfig{Steps: 800, Sweep: 25, Ablations: true})
		for _, r := range rows {
			if !r.Match() {
				b.Fatalf("%s: measured %+v, expected %+v", r.Name, r.Measured, r.Expected)
			}
		}
	}
	printHeader("matrix", "E20 liveness matrix:\n"+core.FormatMatrix(rows))
	b.ReportMetric(float64(len(rows)), "rows")
}

// --- E21: throughput under contention and faults (footnote 1) ---

func BenchmarkScalability(b *testing.B) {
	type point struct {
		tm      string
		procs   int
		commits int
	}
	var series []point
	for _, nf := range core.Registry(false) {
		nf := nf
		for _, procs := range []int{1, 2, 4, 8} {
			procs := procs
			b.Run(fmt.Sprintf("%s/p%d", nf.Name, procs), func(b *testing.B) {
				var total int
				for i := 0; i < b.N; i++ {
					counts := stmtest.FaultFree(nf.Factory, procs, 4000, 9)
					total = 0
					for _, c := range counts {
						total += c
					}
				}
				series = append(series, point{nf.Name, procs, total})
				b.ReportMetric(float64(total)/4000, "commits/step")
			})
		}
	}
	if len(series) > 0 {
		text := "E21 commit throughput (commits per 4000 fair steps, shared counter):\n"
		for _, p := range series {
			text += fmt.Sprintf("  %-10s procs=%d commits=%d\n", p.tm, p.procs, p.commits)
		}
		printHeader("scal", text)
	}
}

// TestWorkloadMatrixArtifact executes the declared workload matrix
// (internal/workload) across every (algorithm, substrate) pair
// through the engine API with small budgets, and writes the
// machine-readable BENCH_native.json trajectory artifact that future
// PRs compare against. BenchmarkWorkloadMatrix is the full-budget
// version of the same run.
func TestWorkloadMatrixArtifact(t *testing.T) {
	engines := engine.Engines(false)
	specs := workload.Matrix([]int{1, 2})
	budget := workload.Budget{SimSteps: 600, NativeOps: 50}
	results, err := workload.RunMatrix(engines, specs, budget)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(engines) * len(specs); len(results) != want {
		t.Fatalf("matrix produced %d cells, want %d", len(results), want)
	}
	var commits uint64
	for _, r := range results {
		commits += r.Commits
	}
	if commits == 0 {
		t.Fatal("the matrix committed nothing")
	}
	// Only materialize the artifact when it is missing: the tracked
	// baseline comes from BenchmarkWorkloadMatrix's full budgets and
	// must not be clobbered with this test's smoke-sized numbers.
	if _, err := os.Stat("BENCH_native.json"); os.IsNotExist(err) {
		if err := workload.WriteArtifact("BENCH_native.json", budget, results); err != nil {
			t.Fatal(err)
		}
	}
}

// BenchmarkWorkloadMatrix is the wall-clock half of E21 (footnote 1)
// generalized: the declared workload matrix (process count ×
// read/write mix × contention × sharing) on every algorithm of both
// substrates. The native cells run under the in-process monitor, so
// their ops/sec is checked-throughput (live verification overlapped
// with the run) with a liveness class and recorder-overhead ratio per
// cell, and each live cell that fits is additionally swept at four
// keyspace shards (shard-local cuts, parallel checker lanes — the
// "/s4" cells); the simulated cells measure commits per deterministic
// scheduler step. The run rewrites BENCH_native.json (schema v3) with
// full budgets.
func BenchmarkWorkloadMatrix(b *testing.B) {
	engines := engine.Engines(false)
	specs := workload.Matrix([]int{1, 2, 4, 8})
	budget := workload.Budget{SimSteps: 4000, NativeOps: 1500}
	var results []workload.Result
	for i := 0; i < b.N; i++ {
		var err error
		results, err = workload.RunMatrixOptions(engines, specs, budget,
			workload.Options{Live: true, Overhead: true, QuiesceEvery: 4, Shards: []int{1, 4}})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := workload.WriteArtifact("BENCH_native.json", budget, results); err != nil {
		b.Fatal(err)
	}
	var commits, aborts uint64
	for _, r := range results {
		commits += r.Commits
		aborts += r.Aborts
	}
	printHeader("wmatrix", fmt.Sprintf(
		"workload matrix: %d engines × %d workloads = %d cells -> BENCH_native.json\n",
		len(engines), len(specs), len(results)))
	b.ReportMetric(float64(commits), "commits")
	b.ReportMetric(float64(aborts), "aborts")
}

// BenchmarkShardedCheckedThroughput pins the sharding win on one
// disjoint cell: the same live-monitored workload at one shard (one
// streaming checker lane, global quiescent cuts) versus four (one
// lane and one cut domain per shard). The p8 writeheavy cold cell is
// where the single lane hurts most: eight processes interleave into
// shared segments, and with 128 variables the linear-extension
// enumeration that propagates feasible snapshots across segments pays
// for large diverging snapshots at every memoized state, while each
// shard-local lane sees only its own two processes' chains over its
// own quarter of the keyspace — so the sharded cell's
// checked-throughput must be a multiple, not a few percent.
func BenchmarkShardedCheckedThroughput(b *testing.B) {
	e, ok := engine.Lookup("native-tl2")
	if !ok {
		b.Fatal("native-tl2 not registered")
	}
	var spec workload.Spec
	for _, s := range workload.Matrix([]int{8}) {
		if s.Mix.Name == "writeheavy" && s.Contention.Name == "cold" && s.Sharing == workload.Disjoint {
			spec = s
			break
		}
	}
	budget := workload.Budget{NativeOps: 1500}
	rates := map[int]float64{}
	for _, shards := range []int{1, 4} {
		shards := shards
		b.Run(fmt.Sprintf("s%d", shards), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				results, err := workload.RunMatrixOptions(
					[]engine.Engine{e}, []workload.Spec{spec}, budget,
					workload.Options{Live: true, Check: true, QuiesceEvery: 4, Shards: []int{shards}})
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != 1 || !results[0].Checked {
					b.Fatalf("cell not checked: %+v", results)
				}
				rate = results[0].OpsPerSec
			}
			rates[shards] = rate
			b.ReportMetric(rate, "checked-ops/sec")
		})
	}
	if rates[1] > 0 && rates[4] > 0 {
		printHeader("shardtp", fmt.Sprintf(
			"sharded checked-throughput (%s on native-tl2): s1 %.0f ops/sec, s4 %.0f ops/sec (%.2fx)\n",
			spec.Name, rates[1], rates[4], rates[4]/rates[1]))
	}
}

// --- Recorder overhead: recorded vs unrecorded native runs ---

// BenchmarkRecorderOverhead measures what history recording costs on
// the native hot path: the default workload (4 procs, update mix, hot
// contention, shared variables) on native-tl2, unrecorded vs recorded
// vs live-monitored. Each recorded event is one atomic fetch-add plus
// a process-local chunk append, so the recorded slowdown must stay
// well under the 2x budget; the live variant adds the stream send and
// the monitor goroutine, and must keep its allocation capped at the
// chunk ring (one reusable chunk per process — asserted here).
func BenchmarkRecorderOverhead(b *testing.B) {
	var spec workload.Spec
	for _, s := range workload.Matrix([]int{4}) {
		if s.Mix.Name == "update" && s.Contention.Name == "hot" && s.Sharing == workload.Shared {
			spec = s
			break
		}
	}
	e, ok := engine.Lookup("native-tl2")
	if !ok {
		b.Fatal("native-tl2 not registered")
	}
	const ops = 2000
	measure := func(b *testing.B, record, live, instrumented bool) float64 {
		var elapsed time.Duration
		for i := 0; i < b.N; i++ {
			var reg *telemetry.Registry
			if instrumented {
				reg = telemetry.NewRegistry()
			}
			start := time.Now()
			st, err := e.Run(engine.RunConfig{
				Procs: spec.Procs, Vars: spec.Vars,
				OpsPerProc: ops, Record: record, Live: live,
				Telemetry: reg,
			}, spec.Body())
			if err != nil {
				b.Fatal(err)
			}
			elapsed += time.Since(start)
			if record && len(st.History) == 0 {
				b.Fatal("recording run returned no history")
			}
			if live {
				if !st.Live.Checked {
					b.Fatalf("live run undecided: %s", st.Live.Opacity.Reason)
				}
				// The allocation cap the ring of reusable chunks buys:
				// one chunk per process, however long the run.
				if st.RecorderChunks > spec.Procs {
					b.Fatalf("live run allocated %d chunks, cap is %d (one ring chunk per process)",
						st.RecorderChunks, spec.Procs)
				}
			}
		}
		rate := float64(b.N) * float64(spec.Procs*ops) / elapsed.Seconds()
		b.ReportMetric(rate, "commits/sec")
		return rate
	}
	var raw, recorded, live, instrumented float64
	b.Run("unrecorded", func(b *testing.B) { raw = measure(b, false, false, false) })
	b.Run("recorded", func(b *testing.B) { recorded = measure(b, true, false, false) })
	b.Run("live", func(b *testing.B) { live = measure(b, false, true, false) })
	b.Run("instrumented", func(b *testing.B) { instrumented = measure(b, false, false, true) })
	if raw > 0 && recorded > 0 && live > 0 && instrumented > 0 {
		printHeader("recorder", fmt.Sprintf(
			"recorder overhead (%s on native-tl2): unrecorded %.0f commits/sec, recorded %.0f commits/sec (%.2fx, budget 2x), live-monitored %.0f commits/sec (%.2fx), telemetry-instrumented %.0f commits/sec (%.2fx, budget %.1fx)\n",
			spec.Name, raw, recorded, raw/recorded, live, raw/live,
			instrumented, raw/instrumented, telemetry.OverheadBudgetRatio))
	}
}

// BenchmarkTelemetryOverhead is the enforced telemetry budget: the
// same low-contention native workload with a registered telemetry
// registry versus bare instruments (SessionConfig.Telemetry == nil —
// the identical atomics minus names, labels, and the clock-involving
// Exec-latency/retry histograms). Best-of-three interleaved runs per
// side to shave scheduler noise; the benchmark FAILS if the bare/
// instrumented throughput ratio exceeds telemetry.OverheadBudgetRatio,
// and CI runs it as a gate.
func BenchmarkTelemetryOverhead(b *testing.B) {
	var spec workload.Spec
	for _, s := range workload.Matrix([]int{4}) {
		if s.Mix.Name == "update" && s.Contention.Name == "cold" && s.Sharing == workload.Disjoint {
			spec = s
			break
		}
	}
	if spec.Procs == 0 {
		b.Fatal("p4 update cold disjoint cell not in workload matrix")
	}
	e, ok := engine.Lookup("native-tl2")
	if !ok {
		b.Fatal("native-tl2 not registered")
	}
	const ops = 4000
	run := func(reg *telemetry.Registry) float64 {
		start := time.Now()
		st, err := e.Run(engine.RunConfig{
			Procs: spec.Procs, Vars: spec.Vars, OpsPerProc: ops, Telemetry: reg,
		}, spec.Body())
		if err != nil {
			b.Fatal(err)
		}
		if st.Commits == 0 {
			b.Fatal("run committed nothing")
		}
		return float64(spec.Procs*ops) / time.Since(start).Seconds()
	}
	var bare, instrumented float64
	for i := 0; i < b.N; i++ {
		for rep := 0; rep < 3; rep++ {
			if r := run(nil); r > bare {
				bare = r
			}
			if r := run(telemetry.NewRegistry()); r > instrumented {
				instrumented = r
			}
		}
	}
	ratio := bare / instrumented
	b.ReportMetric(ratio, "overhead-x")
	if ratio > telemetry.OverheadBudgetRatio {
		b.Fatalf("telemetry overhead %.2fx exceeds budget %.1fx (bare %.0f ops/sec, instrumented %.0f ops/sec)",
			ratio, telemetry.OverheadBudgetRatio, bare, instrumented)
	}
	printHeader("teloverhead", fmt.Sprintf(
		"telemetry overhead (%s on native-tl2): bare %.0f ops/sec, instrumented %.0f ops/sec (%.2fx, budget %.1fx)\n",
		spec.Name, bare, instrumented, ratio, telemetry.OverheadBudgetRatio))
}

// --- Ablations (DESIGN.md §5) ---

func BenchmarkAblationOpacityChecker(b *testing.B) {
	// Six pairwise-concurrent transactions that all read 0 and write
	// distinct values: only one can be serialized first, so legality
	// pruning cuts every branch at depth ~2 while the naive search
	// enumerates entire orders.
	var h model.History
	for p := model.Proc(1); p <= 6; p++ {
		h = append(h, model.Read(p, 0), model.ValueResp(p, 0))
	}
	for p := model.Proc(1); p <= 6; p++ {
		h = append(h,
			model.Write(p, 0, model.Value(p)), model.OK(p),
			model.TryCommit(p), model.Commit(p))
	}
	b.Run("pruned", func(b *testing.B) {
		var explored int
		for i := 0; i < b.N; i++ {
			res, err := safety.CheckOpacity(h)
			if err != nil {
				b.Fatal(err)
			}
			explored = res.Explored
		}
		b.ReportMetric(float64(explored), "prefixes")
	})
	b.Run("naive", func(b *testing.B) {
		var explored int
		for i := 0; i < b.N; i++ {
			res, err := safety.CheckOpacityNaive(h)
			if err != nil {
				b.Fatal(err)
			}
			explored = res.Explored
		}
		b.ReportMetric(float64(explored), "prefixes")
	})
}

func BenchmarkAblationCM(b *testing.B) {
	b.Run("abort-other", func(b *testing.B) {
		var worst int
		for i := 0; i < b.N; i++ {
			worst = stmtest.CrashSweep(func(n, v int) stmpkg.TM { return dstm.New() }, 400, 20, 17)
			if worst == 0 {
				b.Fatal("aggressive CM must tolerate crashes")
			}
		}
		b.ReportMetric(float64(worst), "worstsurvivorcommits")
	})
	b.Run("abort-self", func(b *testing.B) {
		var worst int
		for i := 0; i < b.N; i++ {
			worst = stmtest.CrashSweep(func(n, v int) stmpkg.TM { return dstm.NewWithCM(dstm.AbortSelf) }, 400, 20, 17)
			if worst != 0 {
				b.Fatal("polite CM must wedge on a crashed owner")
			}
		}
		b.ReportMetric(float64(worst), "worstsurvivorcommits")
	})
}

func BenchmarkAblationGlockFairness(b *testing.B) {
	measure := func(b *testing.B, factory stmpkg.Factory) (min, max int) {
		counts := stmtest.FaultFree(factory, 3, 6000, 13)
		min, max = -1, 0
		for _, c := range counts {
			if min < 0 || c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return min, max
	}
	b.Run("fifo", func(b *testing.B) {
		var min, max int
		for i := 0; i < b.N; i++ {
			min, max = measure(b, func(n, v int) stmpkg.TM { return glock.New() })
		}
		b.ReportMetric(float64(min), "mincommits")
		b.ReportMetric(float64(max), "maxcommits")
	})
	b.Run("barging", func(b *testing.B) {
		var min, max int
		for i := 0; i < b.N; i++ {
			min, max = measure(b, func(n, v int) stmpkg.TM { return glock.NewBarging() })
		}
		b.ReportMetric(float64(min), "mincommits")
		b.ReportMetric(float64(max), "maxcommits")
	})
}

func BenchmarkAblationHelping(b *testing.B) {
	b.Run("helping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if worst := stmtest.CrashSweep(func(n, v int) stmpkg.TM { return ostm.New() }, 400, 20, 23); worst == 0 {
				b.Fatal("helping must tolerate crashes")
			}
		}
	})
	b.Run("no-helping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if worst := stmtest.CrashSweep(func(n, v int) stmpkg.TM { return ostm.NewWithoutHelping() }, 400, 20, 23); worst != 0 {
				b.Fatal("without helping a crashed committer must wedge conflicting txns")
			}
		}
	})
}

// --- Checker and TM micro-benchmarks ---

func BenchmarkOpacityCheckerLargerHistory(b *testing.B) {
	// 12 transactions across 3 processes and 2 variables.
	bd := model.NewBuilder()
	for i := 0; i < 12; i++ {
		p := model.Proc(i%3 + 1)
		x := model.TVar(i % 2)
		bd.Read(p, x, model.Value(i/2*2/2*0)) // always read 0: everything stays legal
		bd.Commit(p)
	}
	h := bd.History()
	for i := 0; i < b.N; i++ {
		res, err := safety.CheckOpacity(h)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Holds {
			b.Fatal("read-only history must be opaque")
		}
	}
}

func BenchmarkTMOperations(b *testing.B) {
	for _, nf := range core.Registry(false) {
		nf := nf
		b.Run(nf.Name, func(b *testing.B) {
			tm := nf.Factory(1, 4)
			env := sim.Background(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, st := tm.Read(env, 0)
				if st != stmpkg.OK {
					continue
				}
				if tm.Write(env, 0, v+1) != stmpkg.OK {
					continue
				}
				tm.TryCommit(env)
			}
		})
	}
}
