package model

import (
	"errors"
	"testing"
)

func TestSnapshotDefaults(t *testing.T) {
	s := make(Snapshot)
	if got := s.Get(7); got != InitialValue {
		t.Errorf("fresh snapshot Get = %d, want %d", got, InitialValue)
	}
	s.Apply(map[TVar]Value{7: 3})
	if got := s.Get(7); got != 3 {
		t.Errorf("after Apply Get = %d, want 3", got)
	}
	c := s.Clone()
	c.Apply(map[TVar]Value{7: 9})
	if s.Get(7) != 3 {
		t.Error("mutating a clone must not change the original")
	}
}

func TestLegalInState(t *testing.T) {
	mk := func(ops ...Op) *Transaction {
		return &Transaction{Proc: 1, Status: Committed, Ops: ops}
	}
	tests := []struct {
		name  string
		txn   *Transaction
		state Snapshot
		legal bool
	}{
		{
			"read initial value",
			mk(Op{Kind: OpRead, Var: 0, Val: 0}),
			Snapshot{},
			true,
		},
		{
			"read stale value",
			mk(Op{Kind: OpRead, Var: 0, Val: 0}),
			Snapshot{0: 1},
			false,
		},
		{
			"read own write",
			mk(Op{Kind: OpWrite, Var: 0, Val: 5}, Op{Kind: OpRead, Var: 0, Val: 5}),
			Snapshot{0: 1},
			true,
		},
		{
			"own write shadows state once written",
			mk(Op{Kind: OpRead, Var: 0, Val: 1}, Op{Kind: OpWrite, Var: 0, Val: 5}, Op{Kind: OpRead, Var: 0, Val: 5}),
			Snapshot{0: 1},
			true,
		},
		{
			"read other variable unaffected",
			mk(Op{Kind: OpWrite, Var: 1, Val: 5}, Op{Kind: OpRead, Var: 0, Val: 2}),
			Snapshot{0: 2},
			true,
		},
		{
			"aborted final op skipped",
			mk(Op{Kind: OpRead, Var: 0, Val: 2}, Op{Kind: OpRead, Var: 0, Aborted: true}),
			Snapshot{0: 2},
			true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := LegalInState(tt.txn, tt.state)
			if (err == nil) != tt.legal {
				t.Errorf("LegalInState() = %v, want legal=%v", err, tt.legal)
			}
		})
	}
}

func TestLegalInStateReportsDetail(t *testing.T) {
	txn := &Transaction{Proc: 2, Seq: 1, Ops: []Op{{Kind: OpRead, Var: 3, Val: 9}}}
	err := LegalInState(txn, Snapshot{3: 4})
	var ire *IllegalReadError
	if !errors.As(err, &ire) {
		t.Fatalf("error type = %T, want *IllegalReadError", err)
	}
	if ire.Var != 3 || ire.Got != 9 || ire.Expected != 4 || ire.Txn != "T2.1" {
		t.Errorf("IllegalReadError = %+v", ire)
	}
}

func TestLegalSequenceFigure1(t *testing.T) {
	txns := mustTransactions(fig1History())
	t1, t2 := txns[0], txns[1]

	// T2 (committed) before T1 (aborted): both read 0, T2's write of 1
	// is invisible to T1 only if T1 is placed first... it is not, so T1
	// placed second reads 0 while state is 1 — illegal.
	if err := LegalSequence([]*Transaction{t2, t1}); err == nil {
		t.Error("T2;T1 must be illegal: T1 read 0 after T2 committed 1")
	}
	// T1 (aborted) before T2: T1 reads 0 from initial state, its writes
	// are discarded, T2 reads 0 and commits 1 — legal.
	if err := LegalSequence([]*Transaction{t1, t2}); err != nil {
		t.Errorf("T1;T2 should be legal, got %v", err)
	}
}

func TestLegalSequenceAbortedWritesInvisible(t *testing.T) {
	h := NewBuilder().
		Write(1, 0, 7).CommitAbort(1). // aborted write of 7
		Read(2, 0, 0).Commit(2).       // must still read the initial 0
		History()
	txns := mustTransactions(h)
	if err := LegalSequence(txns); err != nil {
		t.Errorf("aborted writes must be invisible: %v", err)
	}

	hBad := NewBuilder().
		Write(1, 0, 7).CommitAbort(1).
		Read(2, 0, 7).Commit(2). // reading the aborted write is illegal
		History()
	if err := LegalSequence(mustTransactions(hBad)); err == nil {
		t.Error("reading an aborted transaction's write must be illegal")
	}
}

func TestLegalSequenceCommittedWritesVisible(t *testing.T) {
	h := NewBuilder().
		Write(1, 0, 7).Commit(1).
		Read(2, 0, 7).Commit(2).
		History()
	if err := LegalSequence(mustTransactions(h)); err != nil {
		t.Errorf("committed write must be visible to the successor: %v", err)
	}
}

func TestLegalSequenceLastWriteWins(t *testing.T) {
	h := NewBuilder().
		Write(1, 0, 1).Write(1, 0, 2).Commit(1).
		Read(2, 0, 2).Commit(2).
		History()
	if err := LegalSequence(mustTransactions(h)); err != nil {
		t.Errorf("the transaction's last write must win: %v", err)
	}
}

func TestLegalSequenceChainOfCounters(t *testing.T) {
	// The adversary's pattern: each committed transaction reads v and
	// writes v+1. Any prefix ordered by value is legal.
	b := NewBuilder()
	for i := 0; i < 6; i++ {
		p := Proc(i%2 + 1)
		b.Read(p, 0, Value(i)).Write(p, 0, Value(i+1)).Commit(p)
	}
	if err := LegalSequence(mustTransactions(b.History())); err != nil {
		t.Errorf("counter chain must be legal: %v", err)
	}
}
