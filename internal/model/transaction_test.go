package model

import (
	"testing"
	"testing/quick"
)

// fig1History is the history of Figure 1: p1 reads 0; p2 reads 0,
// writes 1, commits; p1 writes 1 and is aborted.
func fig1History() History {
	return History{
		Read(1, 0), ValueResp(1, 0),
		Read(2, 0), ValueResp(2, 0),
		Write(2, 0, 1), OK(2),
		TryCommit(2), Commit(2),
		Write(1, 0, 1), OK(1),
		TryCommit(1), Abort(1),
	}
}

func TestCheckWellFormed(t *testing.T) {
	tests := []struct {
		name    string
		h       History
		wantErr bool
	}{
		{"empty", History{}, false},
		{"figure1", fig1History(), false},
		{"pending invocation at end", History{Read(1, 0)}, false},
		{"double invocation", History{Read(1, 0), Write(1, 0, 1)}, true},
		{"orphan response", History{ValueResp(1, 0)}, true},
		{"mismatched response", History{Read(1, 0), OK(1)}, true},
		{"commit answers read", History{Read(1, 0), Commit(1)}, true},
		{"abort answers anything", History{Write(1, 0, 1), Abort(1)}, false},
		{"completion abort on open txn", History{Read(1, 0), ValueResp(1, 0), Abort(1)}, false},
		{"abort without open txn", History{Abort(1)}, true},
		{"abort after committed txn", History{Read(1, 0), ValueResp(1, 0), TryCommit(1), Commit(1), Abort(1)}, true},
		{"interleaved ok", History{Read(1, 0), Read(2, 0), ValueResp(2, 0), ValueResp(1, 0)}, false},
		{"cross-process response", History{Read(1, 0), ValueResp(2, 0)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := CheckWellFormed(tt.h)
			if (err != nil) != tt.wantErr {
				t.Errorf("CheckWellFormed() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTransactionsFigure1(t *testing.T) {
	txns, err := Transactions(fig1History())
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 2 {
		t.Fatalf("got %d transactions, want 2", len(txns))
	}
	t1, t2 := txns[0], txns[1]
	if t1.Proc != 1 || t2.Proc != 2 {
		t.Fatalf("transaction order by first event: got procs %d,%d want 1,2", t1.Proc, t2.Proc)
	}
	if t1.Status != Aborted {
		t.Errorf("T1 status = %v, want aborted", t1.Status)
	}
	if t2.Status != Committed {
		t.Errorf("T2 status = %v, want committed", t2.Status)
	}
	if len(t1.Ops) != 3 { // read, write, tryC(aborted)
		t.Errorf("T1 has %d ops, want 3", len(t1.Ops))
	}
	if got := t1.Ops[2]; got.Kind != OpTryCommit || !got.Aborted {
		t.Errorf("T1 last op = %v, want aborted tryC", got)
	}
	ws := t2.WriteSet()
	if len(ws) != 1 || ws[0] != 1 {
		t.Errorf("T2 write set = %v, want {x0:1}", ws)
	}
	reads := t2.Reads()
	if len(reads) != 1 || reads[0].Val != 0 {
		t.Errorf("T2 reads = %v, want one read of 0", reads)
	}
}

func TestTransactionsMultiplePerProcess(t *testing.T) {
	h := NewBuilder().
		Read(1, 0, 0).Commit(1).
		Read(1, 0, 1).CommitAbort(1).
		Write(1, 0, 2).
		History()
	txns, err := Transactions(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 3 {
		t.Fatalf("got %d transactions, want 3", len(txns))
	}
	wantStatus := []TxnStatus{Committed, Aborted, Live}
	wantSeq := []int{0, 1, 2}
	for i, tx := range txns {
		if tx.Status != wantStatus[i] {
			t.Errorf("txn %d status = %v, want %v", i, tx.Status, wantStatus[i])
		}
		if tx.Seq != wantSeq[i] {
			t.Errorf("txn %d seq = %d, want %d", i, tx.Seq, wantSeq[i])
		}
	}
	if txns[0].ID() != "T1.0" || txns[2].ID() != "T1.2" {
		t.Errorf("IDs = %s, %s; want T1.0, T1.2", txns[0].ID(), txns[2].ID())
	}
}

func TestTransactionsPendingInvocation(t *testing.T) {
	h := History{Read(1, 0), ValueResp(1, 0), Write(1, 0, 5)}
	txns, err := Transactions(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 1 {
		t.Fatalf("got %d transactions, want 1", len(txns))
	}
	tx := txns[0]
	if tx.Status != Live {
		t.Errorf("status = %v, want live", tx.Status)
	}
	if tx.PendingInv == nil || tx.PendingInv.Kind != InvWrite {
		t.Errorf("pending invocation = %v, want the write", tx.PendingInv)
	}
}

func TestTransactionsRejectsMalformed(t *testing.T) {
	if _, err := Transactions(History{OK(1)}); err == nil {
		t.Error("expected error for orphan response")
	}
}

func TestPrecedes(t *testing.T) {
	h := fig1History()
	txns, _ := Transactions(h)
	t1, t2 := txns[0], txns[1]
	// T1 and T2 are concurrent in Figure 1: neither precedes the other.
	if t1.Precedes(t2) || t2.Precedes(t1) {
		t.Error("Figure 1's transactions must be concurrent")
	}

	seq := NewBuilder().Read(1, 0, 0).Commit(1).Read(2, 0, 0).Commit(2).History()
	st, _ := Transactions(seq)
	if !st[0].Precedes(st[1]) {
		t.Error("sequential first transaction must precede the second")
	}
	if st[1].Precedes(st[0]) {
		t.Error("precedence must be antisymmetric for disjoint transactions")
	}
}

func TestLiveTransactionNeverPrecedes(t *testing.T) {
	h := History{Read(1, 0), ValueResp(1, 0), Read(2, 0), ValueResp(2, 0), TryCommit(2), Commit(2)}
	txns, _ := Transactions(h)
	var live, committed *Transaction
	for _, tx := range txns {
		if tx.Status == Live {
			live = tx
		} else {
			committed = tx
		}
	}
	if live == nil || committed == nil {
		t.Fatal("expected one live and one committed transaction")
	}
	if live.Precedes(committed) {
		t.Error("a live transaction precedes nothing")
	}
}

func TestComplete(t *testing.T) {
	h := History{Read(1, 0), ValueResp(1, 0), Read(2, 0)}
	c := Complete(h)
	txns, err := Transactions(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range txns {
		if tx.Status == Live {
			t.Errorf("completion left %s live", tx.ID())
		}
	}
	// Completing a complete history is the identity.
	cc := Complete(c)
	if len(cc) != len(c) {
		t.Errorf("completion is not idempotent: %d then %d events", len(c), len(cc))
	}
}

func TestCompleteAddsAbortAtEnd(t *testing.T) {
	h := NewBuilder().Read(1, 0, 0).History() // completed read, live txn
	c := Complete(h)
	if len(c) != len(h)+1 {
		t.Fatalf("completion added %d events, want 1", len(c)-len(h))
	}
	if last := c[len(c)-1]; last.Kind != RespAbort || last.Proc != 1 {
		t.Errorf("completion appended %v, want A_1", last)
	}
}

func TestCommittedProjection(t *testing.T) {
	h := fig1History()
	com, err := CommittedProjection(h)
	if err != nil {
		t.Fatal(err)
	}
	txns, _ := Transactions(com)
	if len(txns) != 1 || txns[0].Proc != 2 || txns[0].Status != Committed {
		t.Fatalf("committed projection = %v, want only p2's committed transaction", com)
	}
}

func TestCommittedProjectionDropsLive(t *testing.T) {
	h := History{Read(1, 0), ValueResp(1, 0), Read(2, 0), ValueResp(2, 0), TryCommit(2), Commit(2)}
	com, err := CommittedProjection(h)
	if err != nil {
		t.Fatal(err)
	}
	if procs := com.Procs(); len(procs) != 1 || procs[0] != 2 {
		t.Errorf("committed projection procs = %v, want [2]", procs)
	}
}

func TestSequentialHistoryRoundTrip(t *testing.T) {
	h := fig1History()
	txns, _ := Transactions(h)
	// Place T2 before T1 — the order that makes Figure 1 legal.
	seq := SequentialHistory([]*Transaction{txns[1], txns[0]})
	ok, err := IsSequential(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("SequentialHistory must produce a sequential history")
	}
	if !seq.Equivalent(h) {
		t.Error("reordered sequential history must stay equivalent to the original")
	}
}

func TestSequentialHistoryCompletesLive(t *testing.T) {
	h := History{Read(1, 0), ValueResp(1, 0), Write(1, 0, 3)}
	txns, _ := Transactions(h)
	seq := SequentialHistory(txns)
	if last := seq[len(seq)-1]; last.Kind != RespAbort {
		t.Errorf("sequentialized live transaction must end in abort, got %v", last)
	}
	if err := CheckWellFormed(seq); err != nil {
		t.Errorf("sequential history not well-formed: %v", err)
	}
}

func TestIsSequential(t *testing.T) {
	if ok, _ := IsSequential(fig1History()); ok {
		t.Error("Figure 1 is concurrent, not sequential")
	}
	seq := NewBuilder().Read(1, 0, 0).Commit(1).Read(2, 0, 0).Commit(2).History()
	if ok, _ := IsSequential(seq); !ok {
		t.Error("back-to-back transactions form a sequential history")
	}
}

// Property: for histories generated from arbitrary completed-op
// sequences, Transactions always yields per-process contiguous,
// status-consistent transactions, and Complete removes all live ones.
func TestTransactionInvariantsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		h := wellFormedHistory(raw)
		txns, err := Transactions(h)
		if err != nil {
			return false
		}
		perProc := make(map[Proc]int)
		for _, tx := range txns {
			if tx.Seq != perProc[tx.Proc] {
				return false
			}
			perProc[tx.Proc]++
			for i, op := range tx.Ops {
				if op.Aborted && i != len(tx.Ops)-1 {
					return false // only the last op may abort
				}
			}
			if tx.Status == Committed {
				if n := len(tx.Ops); n == 0 || tx.Ops[n-1].Kind != OpTryCommit || tx.Ops[n-1].Aborted {
					return false
				}
			}
		}
		for _, tx := range mustTransactions(Complete(h)) {
			if tx.Status == Live {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the real-time order is a strict partial order (irreflexive
// and transitive) on every well-formed history.
func TestPrecedencePartialOrderProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		txns := mustTransactions(wellFormedHistory(raw))
		for _, a := range txns {
			if a.Precedes(a) {
				return false
			}
			for _, b := range txns {
				for _, c := range txns {
					if a.Precedes(b) && b.Precedes(c) && !a.Precedes(c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func mustTransactions(h History) []*Transaction {
	txns, err := Transactions(h)
	if err != nil {
		panic(err)
	}
	return txns
}

// wellFormedHistory builds a well-formed history from fuzz bytes by
// interleaving whole operations of up to three processes.
func wellFormedHistory(raw []uint8) History {
	b := NewBuilder()
	for _, c := range raw {
		p := Proc(c%3 + 1)
		x := TVar(c / 3 % 2)
		v := Value(c / 6 % 3)
		switch c % 5 {
		case 0:
			b.Read(p, x, v)
		case 1:
			b.Write(p, x, v)
		case 2:
			b.Commit(p)
		case 3:
			b.CommitAbort(p)
		case 4:
			b.WriteAbort(p, x, v)
		}
	}
	return b.History()
}
