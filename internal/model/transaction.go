package model

import (
	"fmt"
	"strings"
)

// TxnStatus is the outcome of a transaction within a finite history.
type TxnStatus int

// Transaction outcomes. A transaction is Live when the history ends
// before the transaction commits or aborts (it is "neither committed
// nor aborted" in the paper's words); completion com(H) turns every
// Live transaction into an Aborted one.
const (
	Committed TxnStatus = iota + 1
	Aborted
	Live
)

// String returns the conventional name of the status.
func (s TxnStatus) String() string {
	switch s {
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	case Live:
		return "live"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// OpKind enumerates the kinds of completed transactional operations.
type OpKind int

// Operation kinds inside a transaction.
const (
	OpRead OpKind = iota + 1
	OpWrite
	OpTryCommit
)

// Op is one completed operation of a transaction: an invocation
// together with its response. Operations whose response was an abort
// terminate the transaction and carry Aborted=true.
type Op struct {
	Kind    OpKind
	Var     TVar
	Val     Value // value read (OpRead) or written (OpWrite)
	Aborted bool  // response was A_k
}

// String renders the op in the paper's shorthand, e.g. "r(x0)->3",
// "w(x0,1)", "tryC", with "!A" appended when the response was an abort.
func (o Op) String() string {
	var s string
	switch o.Kind {
	case OpRead:
		s = fmt.Sprintf("r(x%d)->%d", o.Var, o.Val)
		if o.Aborted {
			s = fmt.Sprintf("r(x%d)", o.Var)
		}
	case OpWrite:
		s = fmt.Sprintf("w(x%d,%d)", o.Var, o.Val)
	case OpTryCommit:
		s = "tryC"
	default:
		s = fmt.Sprintf("op(%d)", int(o.Kind))
	}
	if o.Aborted {
		s += "!A"
	}
	return s
}

// Transaction is a maximal transaction of one process within a history,
// as defined in §2.2 of the paper: a maximal run of the process's
// events containing no commit or abort except possibly as its last
// event.
type Transaction struct {
	Proc   Proc
	Seq    int // 0-based index among the process's transactions
	Status TxnStatus
	Ops    []Op

	// First and Last are indices into the source history of the
	// transaction's first and last event. They define the real-time
	// order. For a Live transaction with a pending invocation, Last is
	// the index of that invocation.
	First, Last int

	// PendingInv holds the pending invocation of a Live transaction
	// that ended mid-operation, if any. Completion answers it with an
	// abort.
	PendingInv *Event
}

// ID returns a stable human-readable identifier like "T1.0" (process 1,
// first transaction).
func (t *Transaction) ID() string { return fmt.Sprintf("T%d.%d", t.Proc, t.Seq) }

// String renders the transaction compactly, e.g.
// "T1.0[r(x0)->0 w(x0,1) tryC]:committed".
func (t *Transaction) String() string {
	parts := make([]string, len(t.Ops))
	for i, op := range t.Ops {
		parts[i] = op.String()
	}
	return fmt.Sprintf("%s[%s]:%s", t.ID(), strings.Join(parts, " "), t.Status)
}

// Reads returns the completed reads of the transaction in program
// order (reads that received a value response, not an abort).
func (t *Transaction) Reads() []Op {
	var out []Op
	for _, op := range t.Ops {
		if op.Kind == OpRead && !op.Aborted {
			out = append(out, op)
		}
	}
	return out
}

// WriteSet returns the last acknowledged write per t-variable; only
// these take effect if the transaction commits.
func (t *Transaction) WriteSet() map[TVar]Value {
	out := make(map[TVar]Value)
	for _, op := range t.Ops {
		if op.Kind == OpWrite && !op.Aborted {
			out[op.Var] = op.Val
		}
	}
	return out
}

// Precedes reports whether t precedes u in the real-time order of the
// source history: t is committed or aborted and t's last event occurs
// before u's first event. Two transactions that do not precede each
// other either way are concurrent.
func (t *Transaction) Precedes(u *Transaction) bool {
	if t.Status == Live {
		return false
	}
	return t.Last < u.First
}

// wfError describes a well-formedness violation found by Transactions
// or CheckWellFormed.
type wfError struct {
	Index int
	Event Event
	Msg   string
}

func (e *wfError) Error() string {
	return fmt.Sprintf("event %d (%s): %s", e.Index, e.Event, e.Msg)
}

// CheckWellFormed verifies that the history is a valid sequence over
// the per-process alphabets Σ_k: for every process, events strictly
// alternate invocation–response with matching pairs, starting with an
// invocation. A trailing unanswered invocation is permitted (the
// process is mid-operation when the history ends).
//
// One relaxation of Σ_k is accepted: an abort event with no pending
// invocation is legal when the process has an open transaction. This
// is the "completion abort" that com(H) appends to transactions whose
// last operation already returned; the paper defines completion at
// transaction granularity, above the event alphabet.
func CheckWellFormed(h History) error {
	pending := make(map[Proc]*int) // index of pending invocation per process
	inTxn := make(map[Proc]bool)   // open transaction per process
	for i, e := range h {
		switch {
		case e.Kind.IsInvocation():
			if pending[e.Proc] != nil {
				return &wfError{i, e, "invocation while a previous invocation is pending"}
			}
			idx := i
			pending[e.Proc] = &idx
			inTxn[e.Proc] = true
		case e.Kind.IsResponse():
			pi := pending[e.Proc]
			if pi == nil {
				if e.Kind == RespAbort && inTxn[e.Proc] {
					inTxn[e.Proc] = false // completion abort
					continue
				}
				return &wfError{i, e, "response without a pending invocation"}
			}
			if !Matches(h[*pi], e) {
				return &wfError{i, e, fmt.Sprintf("response does not match invocation %s", h[*pi])}
			}
			pending[e.Proc] = nil
			if e.Kind == RespCommit || e.Kind == RespAbort {
				inTxn[e.Proc] = false
			}
		default:
			return &wfError{i, e, "unknown event kind"}
		}
	}
	return nil
}

// Transactions parses the history into its transactions, per process
// and in history order of first events. It returns an error when the
// history is not well-formed.
//
// The returned slice is ordered by the index of each transaction's
// first event, which makes iteration deterministic.
func Transactions(h History) ([]*Transaction, error) {
	if err := CheckWellFormed(h); err != nil {
		return nil, err
	}
	open := make(map[Proc]*Transaction)
	seq := make(map[Proc]int)
	pendingInv := make(map[Proc]Event)
	hasPending := make(map[Proc]bool)
	var txns []*Transaction

	ensure := func(p Proc, i int) *Transaction {
		t := open[p]
		if t == nil {
			t = &Transaction{Proc: p, Seq: seq[p], Status: Live, First: i, Last: i}
			seq[p]++
			open[p] = t
			txns = append(txns, t)
		}
		return t
	}

	for i, e := range h {
		switch e.Kind {
		case InvRead, InvWrite, InvTryCommit:
			t := ensure(e.Proc, i)
			t.Last = i
			pendingInv[e.Proc] = e
			hasPending[e.Proc] = true
		case RespValue:
			t := open[e.Proc]
			t.Last = i
			inv := pendingInv[e.Proc]
			t.Ops = append(t.Ops, Op{Kind: OpRead, Var: inv.Var, Val: e.Val})
			hasPending[e.Proc] = false
		case RespOK:
			t := open[e.Proc]
			t.Last = i
			inv := pendingInv[e.Proc]
			t.Ops = append(t.Ops, Op{Kind: OpWrite, Var: inv.Var, Val: inv.Val})
			hasPending[e.Proc] = false
		case RespCommit:
			t := open[e.Proc]
			t.Last = i
			t.Ops = append(t.Ops, Op{Kind: OpTryCommit})
			t.Status = Committed
			open[e.Proc] = nil
			hasPending[e.Proc] = false
		case RespAbort:
			t := open[e.Proc]
			t.Last = i
			if hasPending[e.Proc] {
				inv := pendingInv[e.Proc]
				op := Op{Aborted: true}
				switch inv.Kind {
				case InvRead:
					op.Kind, op.Var = OpRead, inv.Var
				case InvWrite:
					op.Kind, op.Var, op.Val = OpWrite, inv.Var, inv.Val
				case InvTryCommit:
					op.Kind = OpTryCommit
				}
				t.Ops = append(t.Ops, op)
			}
			t.Status = Aborted
			open[e.Proc] = nil
			hasPending[e.Proc] = false
		}
	}
	for p, t := range open {
		if t == nil {
			continue
		}
		if hasPending[p] {
			inv := pendingInv[p]
			t.PendingInv = &inv
		}
	}
	return txns, nil
}

// Complete returns com(H): the history extended with abort events for
// every transaction that is neither committed nor aborted, as in §2.4.
// A pending invocation is answered with an abort; a transaction whose
// last operation completed receives a standalone abort event.
//
// This is the paper's literal completion. The opacity checker in
// package safety deliberately does NOT use it: following the paper's
// opacity reference [18], it completes *commit-pending* transactions
// (live with a pending tryC) as either committed or aborted, which
// matters for helping TMs (see safety.CheckOpacity).
func Complete(h History) History {
	txns, err := Transactions(h)
	if err != nil {
		// A malformed history cannot be completed meaningfully;
		// returning it unchanged lets the caller's own well-formedness
		// check surface the error.
		return h.Clone()
	}
	out := h.Clone()
	for _, t := range txns {
		if t.Status == Live {
			out = append(out, Abort(t.Proc))
		}
	}
	return out
}

// CommittedProjection returns the longest subsequence of the history
// containing only events of committed transactions (the H_com of the
// strict-serializability definition).
func CommittedProjection(h History) (History, error) {
	txns, err := Transactions(h)
	if err != nil {
		return nil, err
	}
	keep := make([]bool, len(h))
	for _, t := range txns {
		if t.Status != Committed {
			continue
		}
		for i := t.First; i <= t.Last; i++ {
			if h[i].Proc == t.Proc {
				keep[i] = true
			}
		}
	}
	var out History
	for i, k := range keep {
		if k {
			out = append(out, h[i])
		}
	}
	return out, nil
}

// SequentialHistory flattens an ordered list of transactions into a
// complete sequential history: each transaction's events appear
// contiguously, with Live transactions terminated by an abort (so the
// result is complete in the paper's sense).
func SequentialHistory(order []*Transaction) History {
	var out History
	for _, t := range order {
		for _, op := range t.Ops {
			switch op.Kind {
			case OpRead:
				out = append(out, Read(t.Proc, op.Var))
				if op.Aborted {
					out = append(out, Abort(t.Proc))
				} else {
					out = append(out, ValueResp(t.Proc, op.Val))
				}
			case OpWrite:
				out = append(out, Write(t.Proc, op.Var, op.Val))
				if op.Aborted {
					out = append(out, Abort(t.Proc))
				} else {
					out = append(out, OK(t.Proc))
				}
			case OpTryCommit:
				out = append(out, TryCommit(t.Proc))
				if op.Aborted {
					out = append(out, Abort(t.Proc))
				} else {
					out = append(out, Commit(t.Proc))
				}
			}
		}
		if t.Status == Live {
			if t.PendingInv != nil {
				out = append(out, *t.PendingInv)
			}
			out = append(out, Abort(t.Proc))
		}
	}
	return out
}

// IsSequential reports whether no two transactions of the history are
// concurrent to each other.
func IsSequential(h History) (bool, error) {
	txns, err := Transactions(h)
	if err != nil {
		return false, err
	}
	for i, t := range txns {
		for _, u := range txns[i+1:] {
			if !t.Precedes(u) && !u.Precedes(t) {
				return false, nil
			}
		}
	}
	return true, nil
}
