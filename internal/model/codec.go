package model

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// eventJSON is the wire form of an Event. Kind uses the conventional
// short names so trace files are self-describing and diff-friendly.
type eventJSON struct {
	Proc int    `json:"proc"`
	Kind string `json:"kind"`
	Var  *int   `json:"var,omitempty"`
	Val  *int64 `json:"val,omitempty"`
}

var kindNames = map[Kind]string{
	InvRead:      "read",
	InvWrite:     "write",
	InvTryCommit: "tryC",
	RespValue:    "val",
	RespOK:       "ok",
	RespCommit:   "C",
	RespAbort:    "A",
}

var kindsByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// MarshalJSON implements json.Marshaler.
func (e Event) MarshalJSON() ([]byte, error) {
	name, ok := kindNames[e.Kind]
	if !ok {
		return nil, fmt.Errorf("model: cannot encode event with kind %d", int(e.Kind))
	}
	ej := eventJSON{Proc: int(e.Proc), Kind: name}
	switch e.Kind {
	case InvRead:
		x := int(e.Var)
		ej.Var = &x
	case InvWrite:
		x, v := int(e.Var), int64(e.Val)
		ej.Var, ej.Val = &x, &v
	case RespValue:
		v := int64(e.Val)
		ej.Val = &v
	}
	return json.Marshal(ej)
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *Event) UnmarshalJSON(data []byte) error {
	var ej eventJSON
	if err := json.Unmarshal(data, &ej); err != nil {
		return err
	}
	kind, ok := kindsByName[ej.Kind]
	if !ok {
		return fmt.Errorf("model: unknown event kind %q", ej.Kind)
	}
	if ej.Proc <= 0 {
		return fmt.Errorf("model: event has non-positive process id %d", ej.Proc)
	}
	ev := Event{Proc: Proc(ej.Proc), Kind: kind}
	switch kind {
	case InvRead:
		if ej.Var == nil {
			return fmt.Errorf("model: read event missing var")
		}
		ev.Var = TVar(*ej.Var)
	case InvWrite:
		if ej.Var == nil || ej.Val == nil {
			return fmt.Errorf("model: write event missing var or val")
		}
		ev.Var, ev.Val = TVar(*ej.Var), Value(*ej.Val)
	case RespValue:
		if ej.Val == nil {
			return fmt.Errorf("model: value response missing val")
		}
		ev.Val = Value(*ej.Val)
	}
	*e = ev
	return nil
}

// WriteTrace writes the history as JSON Lines: one event object per
// line, streamable and appendable.
func WriteTrace(w io.Writer, h History) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, e := range h {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("model: encode event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace reads a JSON Lines trace written by WriteTrace.
func ReadTrace(r io.Reader) (History, error) {
	dec := json.NewDecoder(r)
	var h History
	for i := 0; ; i++ {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return h, nil
		} else if err != nil {
			return nil, fmt.Errorf("model: decode event %d: %w", i, err)
		}
		h = append(h, e)
	}
}

// SaveTrace writes the history to a file.
func SaveTrace(path string, h History) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("model: %w", err)
	}
	if err := WriteTrace(f, h); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTrace reads a history from a file written by SaveTrace.
func LoadTrace(path string) (History, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	defer f.Close()
	return ReadTrace(f)
}
