// Package model provides the formal vocabulary of the paper "On the
// Liveness of Transactional Memory" (Bushkov, Guerraoui, Kapałka; PODC
// 2012): invocation and response events, histories, per-process
// projections, the per-process alphabet Σ_k, transactions, completion
// com(H), equivalence, and the real-time precedence order.
//
// The package is purely about finite histories; infinite histories are
// modeled in package liveness as lassos (eventually-periodic histories)
// whose segments are model.History values.
package model

import (
	"fmt"
	"strconv"
	"strings"
)

// Proc identifies a process p_k. Process identifiers are positive; the
// zero value is invalid so that accidentally unset fields are caught.
type Proc int

// TVar identifies a transactional variable ("t-variable" in the paper).
// T-variable identifiers are non-negative; experiments use small dense
// identifiers starting at 0.
type TVar int

// Value is the value domain V of t-variables. The paper leaves V
// abstract; int64 is large enough for every experiment, including the
// unbounded counter used by the impossibility adversary (which writes
// v+1 forever).
type Value int64

// Kind enumerates the kinds of events that can appear in a history.
// Invocation kinds come first, response kinds second; the zero value is
// invalid per the style guide ("start enums at one").
type Kind int

// Event kinds. InvRead, InvWrite and InvTryCommit are the invocation
// events Inv_k of the paper; the remaining kinds are the response
// events Res_k.
const (
	// InvRead is the invocation x.read_k().
	InvRead Kind = iota + 1
	// InvWrite is the invocation x.write_k(v).
	InvWrite
	// InvTryCommit is the invocation tryC_k.
	InvTryCommit
	// RespValue is the response v_k carrying the value read.
	RespValue
	// RespOK is the response ok_k acknowledging a write.
	RespOK
	// RespCommit is the commit event C_k.
	RespCommit
	// RespAbort is the abort event A_k.
	RespAbort
)

// String returns the conventional short name of the kind.
func (k Kind) String() string {
	switch k {
	case InvRead:
		return "read"
	case InvWrite:
		return "write"
	case InvTryCommit:
		return "tryC"
	case RespValue:
		return "val"
	case RespOK:
		return "ok"
	case RespCommit:
		return "C"
	case RespAbort:
		return "A"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// IsInvocation reports whether the kind is an invocation event.
func (k Kind) IsInvocation() bool {
	return k == InvRead || k == InvWrite || k == InvTryCommit
}

// IsResponse reports whether the kind is a response event.
func (k Kind) IsResponse() bool {
	return k == RespValue || k == RespOK || k == RespCommit || k == RespAbort
}

// Event is a single invocation or response event of a history. The
// fields used depend on Kind:
//
//	InvRead       Proc, Var
//	InvWrite      Proc, Var, Val
//	InvTryCommit  Proc
//	RespValue     Proc, Val
//	RespOK        Proc
//	RespCommit    Proc
//	RespAbort     Proc
type Event struct {
	Proc Proc
	Kind Kind
	Var  TVar
	Val  Value
}

// Read returns the invocation event x.read_k().
func Read(p Proc, x TVar) Event { return Event{Proc: p, Kind: InvRead, Var: x} }

// Write returns the invocation event x.write_k(v).
func Write(p Proc, x TVar, v Value) Event {
	return Event{Proc: p, Kind: InvWrite, Var: x, Val: v}
}

// TryCommit returns the invocation event tryC_k.
func TryCommit(p Proc) Event { return Event{Proc: p, Kind: InvTryCommit} }

// ValueResp returns the response event v_k.
func ValueResp(p Proc, v Value) Event { return Event{Proc: p, Kind: RespValue, Val: v} }

// OK returns the response event ok_k.
func OK(p Proc) Event { return Event{Proc: p, Kind: RespOK} }

// Commit returns the commit event C_k.
func Commit(p Proc) Event { return Event{Proc: p, Kind: RespCommit} }

// Abort returns the abort event A_k.
func Abort(p Proc) Event { return Event{Proc: p, Kind: RespAbort} }

// String renders the event in the paper's notation, e.g. "x0.read_1",
// "x0.write_2(5)", "tryC_1", "3_1", "ok_2", "C_1", "A_2".
func (e Event) String() string {
	switch e.Kind {
	case InvRead:
		return fmt.Sprintf("x%d.read_%d", e.Var, e.Proc)
	case InvWrite:
		return fmt.Sprintf("x%d.write_%d(%d)", e.Var, e.Proc, e.Val)
	case InvTryCommit:
		return fmt.Sprintf("tryC_%d", e.Proc)
	case RespValue:
		return fmt.Sprintf("%d_%d", e.Val, e.Proc)
	case RespOK:
		return fmt.Sprintf("ok_%d", e.Proc)
	case RespCommit:
		return fmt.Sprintf("C_%d", e.Proc)
	case RespAbort:
		return fmt.Sprintf("A_%d", e.Proc)
	default:
		return fmt.Sprintf("event{%d,%d,%d,%d}", e.Proc, e.Kind, e.Var, e.Val)
	}
}

// Matches reports whether response r is a legal response to invocation
// inv for the same process, following the alphabet Σ_k of the paper: a
// read is answered by a value or an abort, a write by ok or abort, and
// tryC by commit or abort.
func Matches(inv, r Event) bool {
	if inv.Proc != r.Proc || !inv.Kind.IsInvocation() || !r.Kind.IsResponse() {
		return false
	}
	if r.Kind == RespAbort {
		return true
	}
	switch inv.Kind {
	case InvRead:
		return r.Kind == RespValue
	case InvWrite:
		return r.Kind == RespOK
	case InvTryCommit:
		return r.Kind == RespCommit
	default:
		return false
	}
}

// History is a finite sequence of events, the basic object of the
// paper's formalism. A History value is generally treated as immutable;
// operations return fresh slices.
type History []Event

// Clone returns a deep copy of the history.
func (h History) Clone() History {
	out := make(History, len(h))
	copy(out, h)
	return out
}

// Append returns a new history with the events appended. The receiver
// is not modified (beyond possible shared-capacity reuse being avoided
// by always copying).
func (h History) Append(events ...Event) History {
	out := make(History, 0, len(h)+len(events))
	out = append(out, h...)
	out = append(out, events...)
	return out
}

// Procs returns the sorted set of process identifiers appearing in the
// history.
func (h History) Procs() []Proc {
	seen := make(map[Proc]bool)
	var out []Proc
	for _, e := range h {
		if !seen[e.Proc] {
			seen[e.Proc] = true
			out = append(out, e.Proc)
		}
	}
	sortProcs(out)
	return out
}

// Vars returns the sorted set of t-variables read or written in the
// history.
func (h History) Vars() []TVar {
	seen := make(map[TVar]bool)
	var out []TVar
	for _, e := range h {
		if e.Kind == InvRead || e.Kind == InvWrite {
			if !seen[e.Var] {
				seen[e.Var] = true
				out = append(out, e.Var)
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Projection returns H|p_k: the longest subsequence of the history
// consisting of events of process p.
func (h History) Projection(p Proc) History {
	var out History
	for _, e := range h {
		if e.Proc == p {
			out = append(out, e)
		}
	}
	return out
}

// String renders the history as a space-separated event sequence.
func (h History) String() string {
	parts := make([]string, len(h))
	for i, e := range h {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// Equivalent reports whether h and other are equivalent in the paper's
// sense: for every process p, h|p == other|p. Only processes appearing
// in either history are considered.
func (h History) Equivalent(other History) bool {
	procs := make(map[Proc]bool)
	for _, e := range h {
		procs[e.Proc] = true
	}
	for _, e := range other {
		procs[e.Proc] = true
	}
	for p := range procs {
		a, b := h.Projection(p), other.Projection(p)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

func sortProcs(ps []Proc) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
