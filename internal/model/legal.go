package model

import "fmt"

// InitialValue is the value every t-variable holds before any
// transaction commits. The paper's automaton Fgp and all of its example
// histories start t-variables at 0.
const InitialValue Value = 0

// Snapshot is the committed state of the t-variables at a point of a
// sequential history: the value each t-variable would return to a
// freshly started transaction. Missing variables hold InitialValue.
type Snapshot map[TVar]Value

// Get returns the value of x, defaulting to InitialValue.
func (s Snapshot) Get(x TVar) Value {
	if v, ok := s[x]; ok {
		return v
	}
	return InitialValue
}

// Clone returns a copy of the snapshot.
func (s Snapshot) Clone() Snapshot {
	out := make(Snapshot, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Apply installs the write set of a committed transaction.
func (s Snapshot) Apply(writes map[TVar]Value) {
	for x, v := range writes {
		s[x] = v
	}
}

// IllegalReadError reports the first read that violates the semantics
// of its t-variable in a candidate sequential history.
type IllegalReadError struct {
	Txn      string // transaction ID
	Var      TVar
	Got      Value // value the read returned in the history
	Expected Value // value the t-variable held at that point
}

func (e *IllegalReadError) Error() string {
	return fmt.Sprintf("transaction %s: read of x%d returned %d but the t-variable held %d",
		e.Txn, e.Var, e.Got, e.Expected)
}

// LegalInState checks the transaction's reads against the committed
// snapshot it starts from, honoring reads of the transaction's own
// earlier writes. It returns nil when every completed read respects the
// semantics of its t-variable.
//
// This is the per-transaction core of the paper's legality definition:
// for every response v_k in the transaction, v is the value of the
// previous write to x within the transaction, or the value of x when
// the transaction starts.
func LegalInState(t *Transaction, start Snapshot) error {
	local := make(map[TVar]Value)
	for _, op := range t.Ops {
		if op.Aborted {
			// An op answered with an abort returns no value; there is
			// nothing to validate, and no later op exists.
			break
		}
		switch op.Kind {
		case OpRead:
			expected, wroteLocally := local[op.Var]
			if !wroteLocally {
				expected = start.Get(op.Var)
			}
			if op.Val != expected {
				return &IllegalReadError{Txn: t.ID(), Var: op.Var, Got: op.Val, Expected: expected}
			}
		case OpWrite:
			local[op.Var] = op.Val
		}
	}
	return nil
}

// LegalSequence checks that every transaction in the given order is
// legal when the transactions are executed sequentially in that order
// from the initial state: each transaction sees the writes of the
// committed transactions placed before it (its visible(T) in the
// paper's terms, with aborted transactions' writes discarded), plus its
// own earlier writes. It returns nil when the whole order is legal.
func LegalSequence(order []*Transaction) error {
	state := make(Snapshot)
	for _, t := range order {
		if err := LegalInState(t, state); err != nil {
			return err
		}
		if t.Status == Committed {
			state.Apply(t.WriteSet())
		}
	}
	return nil
}
