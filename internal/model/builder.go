package model

// Builder constructs histories fluently. Each method appends a
// completed operation (invocation immediately followed by its
// response), which matches how the paper's figures interleave whole
// operations; Raw gives access to finer interleavings.
//
// The zero value is ready to use.
type Builder struct {
	h History
}

// NewBuilder returns an empty history builder.
func NewBuilder() *Builder { return &Builder{} }

// Read appends x.read_p() → v.
func (b *Builder) Read(p Proc, x TVar, v Value) *Builder {
	b.h = append(b.h, Read(p, x), ValueResp(p, v))
	return b
}

// ReadAbort appends x.read_p() → A_p.
func (b *Builder) ReadAbort(p Proc, x TVar) *Builder {
	b.h = append(b.h, Read(p, x), Abort(p))
	return b
}

// Write appends x.write_p(v) → ok_p.
func (b *Builder) Write(p Proc, x TVar, v Value) *Builder {
	b.h = append(b.h, Write(p, x, v), OK(p))
	return b
}

// WriteAbort appends x.write_p(v) → A_p.
func (b *Builder) WriteAbort(p Proc, x TVar, v Value) *Builder {
	b.h = append(b.h, Write(p, x, v), Abort(p))
	return b
}

// Commit appends tryC_p → C_p.
func (b *Builder) Commit(p Proc) *Builder {
	b.h = append(b.h, TryCommit(p), Commit(p))
	return b
}

// CommitAbort appends tryC_p → A_p.
func (b *Builder) CommitAbort(p Proc) *Builder {
	b.h = append(b.h, TryCommit(p), Abort(p))
	return b
}

// Raw appends arbitrary events, allowing interleavings where an
// invocation and its response are separated by other processes'
// events.
func (b *Builder) Raw(events ...Event) *Builder {
	b.h = append(b.h, events...)
	return b
}

// History returns the built history. The builder can keep being used;
// the returned slice is a copy.
func (b *Builder) History() History { return b.h.Clone() }
