package model

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{InvRead, "read"},
		{InvWrite, "write"},
		{InvTryCommit, "tryC"},
		{RespValue, "val"},
		{RespOK, "ok"},
		{RespCommit, "C"},
		{RespAbort, "A"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestKindClassification(t *testing.T) {
	invs := []Kind{InvRead, InvWrite, InvTryCommit}
	resps := []Kind{RespValue, RespOK, RespCommit, RespAbort}
	for _, k := range invs {
		if !k.IsInvocation() {
			t.Errorf("%v should be an invocation", k)
		}
		if k.IsResponse() {
			t.Errorf("%v should not be a response", k)
		}
	}
	for _, k := range resps {
		if !k.IsResponse() {
			t.Errorf("%v should be a response", k)
		}
		if k.IsInvocation() {
			t.Errorf("%v should not be an invocation", k)
		}
	}
	if Kind(0).IsInvocation() || Kind(0).IsResponse() {
		t.Error("zero kind must be neither invocation nor response")
	}
}

func TestEventString(t *testing.T) {
	tests := []struct {
		e    Event
		want string
	}{
		{Read(1, 0), "x0.read_1"},
		{Write(2, 3, 5), "x3.write_2(5)"},
		{TryCommit(1), "tryC_1"},
		{ValueResp(1, 7), "7_1"},
		{OK(2), "ok_2"},
		{Commit(1), "C_1"},
		{Abort(2), "A_2"},
	}
	for _, tt := range tests {
		if got := tt.e.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestMatches(t *testing.T) {
	tests := []struct {
		name string
		inv  Event
		resp Event
		want bool
	}{
		{"read/value", Read(1, 0), ValueResp(1, 3), true},
		{"read/abort", Read(1, 0), Abort(1), true},
		{"read/ok", Read(1, 0), OK(1), false},
		{"read/commit", Read(1, 0), Commit(1), false},
		{"write/ok", Write(1, 0, 1), OK(1), true},
		{"write/abort", Write(1, 0, 1), Abort(1), true},
		{"write/value", Write(1, 0, 1), ValueResp(1, 1), false},
		{"tryC/commit", TryCommit(1), Commit(1), true},
		{"tryC/abort", TryCommit(1), Abort(1), true},
		{"tryC/ok", TryCommit(1), OK(1), false},
		{"cross-process", Read(1, 0), ValueResp(2, 3), false},
		{"resp-as-inv", Commit(1), Commit(1), false},
		{"inv-as-resp", Read(1, 0), Read(1, 0), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Matches(tt.inv, tt.resp); got != tt.want {
				t.Errorf("Matches(%v, %v) = %v, want %v", tt.inv, tt.resp, got, tt.want)
			}
		})
	}
}

func TestHistoryProjection(t *testing.T) {
	h := NewBuilder().Read(1, 0, 0).Read(2, 0, 0).Write(2, 0, 1).Commit(2).Write(1, 0, 1).CommitAbort(1).History()
	p1 := h.Projection(1)
	for _, e := range p1 {
		if e.Proc != 1 {
			t.Fatalf("projection on p1 contains event of p%d", e.Proc)
		}
	}
	if len(p1) != 6 { // read inv+resp, write inv+resp, tryC inv+abort
		t.Fatalf("p1 projection length = %d, want 6", len(p1))
	}
	p2 := h.Projection(2)
	if len(p2) != 6 {
		t.Fatalf("p2 projection length = %d, want 6", len(p2))
	}
	if len(h.Projection(3)) != 0 {
		t.Error("projection on absent process must be empty")
	}
}

func TestHistoryProcsAndVars(t *testing.T) {
	h := NewBuilder().Read(3, 5, 0).Write(1, 2, 1).Read(2, 5, 0).History()
	procs := h.Procs()
	if len(procs) != 3 || procs[0] != 1 || procs[1] != 2 || procs[2] != 3 {
		t.Errorf("Procs() = %v, want [1 2 3]", procs)
	}
	vars := h.Vars()
	if len(vars) != 2 || vars[0] != 2 || vars[1] != 5 {
		t.Errorf("Vars() = %v, want [2 5]", vars)
	}
}

func TestHistoryEquivalent(t *testing.T) {
	// Figure-1-style history and a sequentialized version: equivalent
	// because per-process projections coincide.
	concurrent := History{
		Read(1, 0), ValueResp(1, 0),
		Read(2, 0), ValueResp(2, 0),
		Write(2, 0, 1), OK(2),
		TryCommit(2), Commit(2),
		Write(1, 0, 1), OK(1),
		TryCommit(1), Abort(1),
	}
	sequential := History{
		Read(2, 0), ValueResp(2, 0),
		Write(2, 0, 1), OK(2),
		TryCommit(2), Commit(2),
		Read(1, 0), ValueResp(1, 0),
		Write(1, 0, 1), OK(1),
		TryCommit(1), Abort(1),
	}
	if !concurrent.Equivalent(sequential) {
		t.Error("histories with identical projections must be equivalent")
	}
	different := History{Read(1, 0), ValueResp(1, 1)}
	if concurrent.Equivalent(different) {
		t.Error("histories with different projections must not be equivalent")
	}
}

func TestHistoryEquivalentIsSymmetric(t *testing.T) {
	a := NewBuilder().Read(1, 0, 0).Commit(1).History()
	b := NewBuilder().Read(1, 0, 0).History()
	if a.Equivalent(b) || b.Equivalent(a) {
		t.Error("prefix must not be equivalent to its extension, in either direction")
	}
}

func TestHistoryCloneIndependence(t *testing.T) {
	h := NewBuilder().Read(1, 0, 0).History()
	c := h.Clone()
	c[0] = Read(2, 1)
	if h[0] != Read(1, 0) {
		t.Error("mutating a clone must not affect the original")
	}
}

func TestHistoryAppendDoesNotAlias(t *testing.T) {
	h := make(History, 0, 8)
	h = append(h, Read(1, 0))
	a := History(h).Append(ValueResp(1, 0))
	b := History(h).Append(Abort(1))
	if a[1] == b[1] {
		t.Error("Append must not share backing arrays between results")
	}
}

func TestHistoryString(t *testing.T) {
	h := NewBuilder().Read(1, 0, 0).Commit(1).History()
	s := h.String()
	for _, want := range []string{"x0.read_1", "0_1", "tryC_1", "C_1"} {
		if !strings.Contains(s, want) {
			t.Errorf("History.String() = %q missing %q", s, want)
		}
	}
}

// Property: projection preserves per-process order and captures exactly
// that process's events.
func TestProjectionProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		h := randomishHistory(raw)
		for _, p := range h.Procs() {
			proj := h.Projection(p)
			j := 0
			for _, e := range h {
				if e.Proc == p {
					if j >= len(proj) || proj[j] != e {
						return false
					}
					j++
				}
			}
			if j != len(proj) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomishHistory derives an arbitrary (not necessarily well-formed)
// history from raw fuzz bytes. It is intentionally unconstrained:
// projection and equivalence are defined on arbitrary event sequences.
func randomishHistory(raw []uint8) History {
	var h History
	for i, b := range raw {
		p := Proc(b%3 + 1)
		x := TVar(b % 2)
		v := Value(b % 4)
		switch (int(b) + i) % 7 {
		case 0:
			h = append(h, Read(p, x))
		case 1:
			h = append(h, Write(p, x, v))
		case 2:
			h = append(h, TryCommit(p))
		case 3:
			h = append(h, ValueResp(p, v))
		case 4:
			h = append(h, OK(p))
		case 5:
			h = append(h, Commit(p))
		default:
			h = append(h, Abort(p))
		}
	}
	return h
}
