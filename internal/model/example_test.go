package model_test

import (
	"fmt"

	"livetm/internal/model"
)

// Build Figure 1's history with the fluent builder, then raw events
// for the interleaved operations.
func ExampleBuilder() {
	h := model.NewBuilder().
		Read(1, 0, 0).
		Read(2, 0, 0).Write(2, 0, 1).Commit(2).
		WriteAbort(1, 0, 1).
		History()
	fmt.Println(len(h), "events")
	fmt.Println(h.Projection(2))
	// Output:
	// 10 events
	// x0.read_2 0_2 x0.write_2(1) ok_2 tryC_2 C_2
}

func ExampleTransactions() {
	h := model.NewBuilder().
		Read(1, 0, 0).Write(1, 0, 1).Commit(1).
		Read(2, 0, 1).CommitAbort(2).
		History()
	txns, _ := model.Transactions(h)
	for _, t := range txns {
		fmt.Println(t)
	}
	// Output:
	// T1.0[r(x0)->0 w(x0,1) tryC]:committed
	// T2.0[r(x0)->1 tryC!A]:aborted
}

func ExampleComplete() {
	h := model.History{model.Read(1, 0), model.ValueResp(1, 0), model.Write(1, 0, 5)}
	com := model.Complete(h)
	txns, _ := model.Transactions(com)
	fmt.Println(txns[0].Status)
	// Output:
	// aborted
}

func ExampleLegalSequence() {
	h := model.NewBuilder().
		Write(1, 0, 7).Commit(1).
		Read(2, 0, 7).Commit(2).
		History()
	txns, _ := model.Transactions(h)
	fmt.Println(model.LegalSequence(txns) == nil)
	// Output:
	// true
}
