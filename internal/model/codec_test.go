package model

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestEventJSONRoundTrip(t *testing.T) {
	events := []Event{
		Read(1, 0),
		Write(2, 3, -5),
		TryCommit(3),
		ValueResp(1, 42),
		OK(2),
		Commit(1),
		Abort(3),
	}
	for _, e := range events {
		data, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		var back Event
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if back != e {
			t.Errorf("round trip %v -> %s -> %v", e, data, back)
		}
	}
}

func TestEventJSONEncoding(t *testing.T) {
	data, err := json.Marshal(Write(2, 1, 7))
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"proc":2`, `"kind":"write"`, `"var":1`, `"val":7`} {
		if !strings.Contains(s, want) {
			t.Errorf("encoding %s missing %s", s, want)
		}
	}
	// Responses without payloads omit var/val.
	data, _ = json.Marshal(Commit(1))
	if strings.Contains(string(data), "var") || strings.Contains(string(data), "val") {
		t.Errorf("commit encoding should omit var/val: %s", data)
	}
}

func TestEventJSONRejectsBad(t *testing.T) {
	bad := []string{
		`{"proc":1,"kind":"nope"}`,
		`{"proc":0,"kind":"read","var":0}`,
		`{"proc":1,"kind":"read"}`,          // missing var
		`{"proc":1,"kind":"write","var":0}`, // missing val
		`{"proc":1,"kind":"val"}`,           // missing val
		`[1,2,3]`,
	}
	for _, s := range bad {
		var e Event
		if err := json.Unmarshal([]byte(s), &e); err == nil {
			t.Errorf("unmarshal %s should fail", s)
		}
	}
}

func TestEventMarshalRejectsUnknownKind(t *testing.T) {
	if _, err := json.Marshal(Event{Proc: 1, Kind: Kind(99)}); err == nil {
		t.Error("marshaling an unknown kind must fail")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	h := NewBuilder().
		Read(1, 0, 0).Write(1, 0, 5).Commit(1).
		Read(2, 0, 5).CommitAbort(2).
		Raw(Read(3, 1)).
		History()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(h) {
		t.Fatalf("round trip length %d, want %d", len(back), len(h))
	}
	for i := range h {
		if back[i] != h[i] {
			t.Errorf("event %d: %v != %v", i, back[i], h[i])
		}
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	h := NewBuilder().Read(1, 0, 0).Commit(1).History()
	if err := SaveTrace(path, h); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equivalent(h) || len(back) != len(h) {
		t.Errorf("file round trip mismatch: %v vs %v", back, h)
	}
}

func TestLoadTraceMissingFile(t *testing.T) {
	if _, err := LoadTrace(filepath.Join(t.TempDir(), "nope.jsonl")); err == nil {
		t.Error("missing file must error")
	}
}

func TestReadTraceGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage must error")
	}
}

// Property: every well-formed history round-trips through the codec.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		h := wellFormedHistory(raw)
		var buf bytes.Buffer
		if err := WriteTrace(&buf, h); err != nil {
			return false
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		if len(back) != len(h) {
			return false
		}
		for i := range h {
			if back[i] != h[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
