package tstruct

import (
	"fmt"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/workload"
)

// List is a sorted singly-linked integer set over t-variables — the
// IntSet workload of the DSTM paper [14], rebuilt on this repository's
// TM interface. Unlike Set's array scan, membership walks only a
// prefix of the keys, so transactions conflict exactly where their
// search paths overlap.
//
// Layout (relative to base): nodes live in a fixed arena of capacity
// cells, each node occupying two t-variables (key, next); one
// t-variable holds the allocation bump pointer and one holds the head
// link. Node identifiers are 1-based; 0 is the nil link. Freed nodes
// are not recycled (unlinking suffices for set semantics).
type List struct {
	tm   stm.TM
	base model.TVar
	cap  int
}

// NewList returns a sorted-list set with room for capacity nodes,
// using t-variables [base, base+2+2*capacity).
func NewList(tm stm.TM, base model.TVar, capacity int) (*List, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("tstruct: list capacity %d must be positive", capacity)
	}
	return &List{tm: tm, base: base, cap: capacity}, nil
}

// Vars returns the number of t-variables the list occupies.
func (l *List) Vars() int { return 2 + 2*l.cap }

func (l *List) allocVar() model.TVar { return l.base }
func (l *List) headVar() model.TVar  { return l.base + 1 }
func (l *List) keyVar(node model.Value) model.TVar {
	return l.base + 2 + 2*model.TVar(node-1)
}
func (l *List) nextVar(node model.Value) model.TVar {
	return l.base + 3 + 2*model.TVar(node-1)
}

// locate walks the sorted list inside tx and returns the link variable
// that points at the first node with key >= k (the head link if the
// list is empty or k is smallest), plus that node id (0 if none).
func (l *List) locate(tx *workload.Tx, k model.Value) (link model.TVar, node model.Value) {
	link = l.headVar()
	node = tx.Read(link)
	for node != 0 && !tx.Aborted() {
		if tx.Read(l.keyVar(node)) >= k {
			return link, node
		}
		link = l.nextVar(node)
		node = tx.Read(link)
	}
	return link, node
}

// Insert adds k; it reports whether the set changed and returns
// ErrFull when the arena is exhausted.
func (l *List) Insert(env *sim.Env, k model.Value) (bool, error) {
	var (
		added bool
		full  bool
	)
	workload.Atomically(l.tm, env, func(tx *workload.Tx) {
		added, full = false, false
		link, node := l.locate(tx, k)
		if tx.Aborted() {
			return
		}
		if node != 0 && tx.Read(l.keyVar(node)) == k {
			return // already present
		}
		used := tx.Read(l.allocVar())
		if int(used) >= l.cap {
			full = true
			return
		}
		fresh := used + 1
		tx.Write(l.allocVar(), fresh)
		tx.Write(l.keyVar(fresh), k)
		tx.Write(l.nextVar(fresh), node)
		tx.Write(link, fresh)
		added = true
	})
	if full {
		return false, ErrFull
	}
	return added, nil
}

// Remove deletes k by unlinking its node; it reports whether the set
// changed.
func (l *List) Remove(env *sim.Env, k model.Value) bool {
	var removed bool
	workload.Atomically(l.tm, env, func(tx *workload.Tx) {
		removed = false
		link, node := l.locate(tx, k)
		if tx.Aborted() || node == 0 {
			return
		}
		if tx.Read(l.keyVar(node)) != k {
			return
		}
		tx.Write(link, tx.Read(l.nextVar(node)))
		removed = true
	})
	return removed
}

// Contains reports membership.
func (l *List) Contains(env *sim.Env, k model.Value) bool {
	var found bool
	workload.Atomically(l.tm, env, func(tx *workload.Tx) {
		found = false
		_, node := l.locate(tx, k)
		if tx.Aborted() || node == 0 {
			return
		}
		found = tx.Read(l.keyVar(node)) == k
	})
	return found
}

// Snapshot returns the keys in ascending order as of one transaction.
func (l *List) Snapshot(env *sim.Env) []model.Value {
	var out []model.Value
	workload.Atomically(l.tm, env, func(tx *workload.Tx) {
		out = out[:0]
		node := tx.Read(l.headVar())
		for node != 0 && !tx.Aborted() {
			out = append(out, tx.Read(l.keyVar(node)))
			node = tx.Read(l.nextVar(node))
		}
	})
	return out
}
