package tstruct

import (
	"errors"
	"sort"
	"testing"

	"livetm/internal/model"
	"livetm/internal/sim"
)

func TestListSortedSemantics(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			l, err := NewList(f(1, 30), 0, 10)
			if err != nil {
				t.Fatal(err)
			}
			env := sim.Background(1)
			for _, k := range []model.Value{5, 1, 9, 3, 7} {
				added, err := l.Insert(env, k)
				if err != nil || !added {
					t.Fatalf("insert %d: %v,%v", k, added, err)
				}
			}
			if added, _ := l.Insert(env, 5); added {
				t.Fatal("duplicate insert must report no change")
			}
			snap := l.Snapshot(env)
			want := []model.Value{1, 3, 5, 7, 9}
			if len(snap) != len(want) {
				t.Fatalf("snapshot = %v, want %v", snap, want)
			}
			for i := range want {
				if snap[i] != want[i] {
					t.Fatalf("snapshot = %v, want %v (sorted)", snap, want)
				}
			}
			if !l.Contains(env, 7) || l.Contains(env, 8) {
				t.Fatal("membership")
			}
			if !l.Remove(env, 5) || l.Remove(env, 5) {
				t.Fatal("remove semantics")
			}
			if l.Contains(env, 5) {
				t.Fatal("5 was removed")
			}
			// Remove the head and the tail.
			if !l.Remove(env, 1) || !l.Remove(env, 9) {
				t.Fatal("removing extremes")
			}
			snap = l.Snapshot(env)
			if len(snap) != 2 || snap[0] != 3 || snap[1] != 7 {
				t.Fatalf("snapshot = %v, want [3 7]", snap)
			}
		})
	}
}

func TestListArenaExhaustion(t *testing.T) {
	l, err := NewList(factories()["tl2"](1, 10), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	env := sim.Background(1)
	if _, err := l.Insert(env, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Insert(env, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Insert(env, 3); !errors.Is(err, ErrFull) {
		t.Fatalf("insert into full arena: %v, want ErrFull", err)
	}
	// Re-inserting an existing key needs no allocation.
	if added, err := l.Insert(env, 2); err != nil || added {
		t.Fatalf("existing key: %v,%v", added, err)
	}
}

func TestListValidation(t *testing.T) {
	if _, err := NewList(factories()["tl2"](1, 4), 0, 0); err == nil {
		t.Error("zero-capacity list must be rejected")
	}
}

// TestListConcurrentLinearizable: concurrent inserts/removes of
// disjoint and overlapping keys; the final snapshot must equal the
// sequential effect of the committed operations.
func TestListConcurrentLinearizable(t *testing.T) {
	for _, name := range []string{"tl2", "dstm", "ostm", "fgp"} {
		f := factories()[name]
		t.Run(name, func(t *testing.T) {
			l, err := NewList(f(3, 50), 0, 20)
			if err != nil {
				t.Fatal(err)
			}
			s := sim.New(sim.NewSeeded(23))
			defer s.Close()
			inserted := make([][]model.Value, 2)
			for i := 0; i < 2; i++ {
				p := model.Proc(i + 1)
				idx := i
				keys := []model.Value{model.Value(10*idx + 1), model.Value(10*idx + 2), model.Value(10*idx + 3)}
				_ = s.Spawn(p, func(env *sim.Env) {
					for _, k := range keys {
						if added, err := l.Insert(env, k); err == nil && added {
							inserted[idx] = append(inserted[idx], k)
						}
					}
				})
			}
			if steps := s.Run(100000); steps >= 100000 {
				t.Fatal("list workload wedged")
			}
			var want []model.Value
			for _, ks := range inserted {
				want = append(want, ks...)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			env := sim.Background(3)
			snap := l.Snapshot(env)
			if len(snap) != len(want) {
				t.Fatalf("snapshot = %v, want %v", snap, want)
			}
			for i := range want {
				if snap[i] != want[i] {
					t.Fatalf("snapshot = %v, want %v", snap, want)
				}
			}
		})
	}
}
