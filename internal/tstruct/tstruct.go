// Package tstruct implements shared data structures on top of
// transactional memory, the layering §2.1 of the paper describes:
// base objects (t-variables) below, shared objects (queue, set,
// register file) above, with every operation running as one
// transaction via workload.Atomically.
//
// The structures map their state onto dense t-variable ranges so they
// can coexist in one TM instance: each structure is given a base
// offset and a capacity at construction.
package tstruct

import (
	"errors"
	"fmt"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/workload"
)

// ErrFull is returned when a bounded structure has no room.
var ErrFull = errors.New("tstruct: structure is full")

// ErrEmpty is returned when there is nothing to take.
var ErrEmpty = errors.New("tstruct: structure is empty")

// Queue is a bounded FIFO queue. Layout (relative to base):
//
//	base+0: head index, base+1: tail index, base+2..base+2+cap: slots
//
// Indices grow without bound; slot = index mod capacity.
type Queue struct {
	tm   stm.TM
	base model.TVar
	cap  int
}

// NewQueue returns a queue of the given capacity using t-variables
// [base, base+2+capacity).
func NewQueue(tm stm.TM, base model.TVar, capacity int) (*Queue, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("tstruct: queue capacity %d must be positive", capacity)
	}
	return &Queue{tm: tm, base: base, cap: capacity}, nil
}

// Vars returns the number of t-variables the queue occupies.
func (q *Queue) Vars() int { return q.cap + 2 }

func (q *Queue) head() model.TVar { return q.base }
func (q *Queue) tail() model.TVar { return q.base + 1 }
func (q *Queue) slot(i model.Value) model.TVar {
	return q.base + 2 + model.TVar(int(i)%q.cap)
}

// Enqueue appends v, retrying until the enclosing transaction
// commits. It returns ErrFull when the queue is full at commit time.
func (q *Queue) Enqueue(env *sim.Env, v model.Value) error {
	var full bool
	workload.Atomically(q.tm, env, func(tx *workload.Tx) {
		head, tail := tx.Read(q.head()), tx.Read(q.tail())
		full = int(tail-head) >= q.cap
		if full {
			return
		}
		tx.Write(q.slot(tail), v)
		tx.Write(q.tail(), tail+1)
	})
	if full {
		return ErrFull
	}
	return nil
}

// Dequeue removes and returns the oldest element, or ErrEmpty.
func (q *Queue) Dequeue(env *sim.Env) (model.Value, error) {
	var (
		empty bool
		v     model.Value
	)
	workload.Atomically(q.tm, env, func(tx *workload.Tx) {
		head, tail := tx.Read(q.head()), tx.Read(q.tail())
		empty = head == tail
		if empty {
			return
		}
		v = tx.Read(q.slot(head))
		tx.Write(q.head(), head+1)
	})
	if empty {
		return 0, ErrEmpty
	}
	return v, nil
}

// Len returns the current length (in its own transaction).
func (q *Queue) Len(env *sim.Env) int {
	var n int
	workload.Atomically(q.tm, env, func(tx *workload.Tx) {
		n = int(tx.Read(q.tail()) - tx.Read(q.head()))
	})
	return n
}

// Set is a fixed-capacity integer set stored as an unordered array
// with a size field. Layout: base+0: size, base+1..: elements.
// Membership scans are whole-set reads, making Contains a snapshot
// operation — a natural generator of large read sets for conflict
// studies.
type Set struct {
	tm   stm.TM
	base model.TVar
	cap  int
}

// NewSet returns a set of the given capacity using t-variables
// [base, base+1+capacity).
func NewSet(tm stm.TM, base model.TVar, capacity int) (*Set, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("tstruct: set capacity %d must be positive", capacity)
	}
	return &Set{tm: tm, base: base, cap: capacity}, nil
}

// Vars returns the number of t-variables the set occupies.
func (s *Set) Vars() int { return s.cap + 1 }

func (s *Set) size() model.TVar              { return s.base }
func (s *Set) elem(i model.Value) model.TVar { return s.base + 1 + model.TVar(i) }

// Add inserts v; it reports whether the set changed and returns
// ErrFull when v is absent and there is no room.
func (s *Set) Add(env *sim.Env, v model.Value) (bool, error) {
	var (
		added bool
		full  bool
	)
	workload.Atomically(s.tm, env, func(tx *workload.Tx) {
		added, full = false, false
		n := tx.Read(s.size())
		for i := model.Value(0); i < n; i++ {
			if tx.Read(s.elem(i)) == v {
				return // already present
			}
		}
		if int(n) >= s.cap {
			full = true
			return
		}
		tx.Write(s.elem(n), v)
		tx.Write(s.size(), n+1)
		added = true
	})
	if full {
		return false, ErrFull
	}
	return added, nil
}

// Remove deletes v (swap-with-last); it reports whether the set
// changed.
func (s *Set) Remove(env *sim.Env, v model.Value) bool {
	var removed bool
	workload.Atomically(s.tm, env, func(tx *workload.Tx) {
		removed = false
		n := tx.Read(s.size())
		for i := model.Value(0); i < n; i++ {
			if tx.Read(s.elem(i)) == v {
				last := tx.Read(s.elem(n - 1))
				tx.Write(s.elem(i), last)
				tx.Write(s.size(), n-1)
				removed = true
				return
			}
		}
	})
	return removed
}

// Contains reports membership with a full-snapshot read.
func (s *Set) Contains(env *sim.Env, v model.Value) bool {
	var found bool
	workload.Atomically(s.tm, env, func(tx *workload.Tx) {
		found = false
		n := tx.Read(s.size())
		for i := model.Value(0); i < n; i++ {
			if tx.Read(s.elem(i)) == v {
				found = true
				return
			}
		}
	})
	return found
}

// Len returns the cardinality.
func (s *Set) Len(env *sim.Env) int {
	var n model.Value
	workload.Atomically(s.tm, env, func(tx *workload.Tx) {
		n = tx.Read(s.size())
	})
	return int(n)
}

// Snapshot returns the elements as of one transaction.
func (s *Set) Snapshot(env *sim.Env) []model.Value {
	var out []model.Value
	workload.Atomically(s.tm, env, func(tx *workload.Tx) {
		out = out[:0]
		n := tx.Read(s.size())
		for i := model.Value(0); i < n; i++ {
			out = append(out, tx.Read(s.elem(i)))
		}
	})
	return out
}
