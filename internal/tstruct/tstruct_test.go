package tstruct

import (
	"errors"
	"testing"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/dstm"
	"livetm/internal/stm/fgptm"
	"livetm/internal/stm/glock"
	"livetm/internal/stm/norec"
	"livetm/internal/stm/ostm"
	"livetm/internal/stm/tiny"
	"livetm/internal/stm/tl2"
)

func factories() map[string]stm.Factory {
	return map[string]stm.Factory{
		"glock": func(n, v int) stm.TM { return glock.New() },
		"tiny":  func(n, v int) stm.TM { return tiny.New() },
		"tl2":   func(n, v int) stm.TM { return tl2.New() },
		"norec": func(n, v int) stm.TM { return norec.New() },
		"dstm":  func(n, v int) stm.TM { return dstm.New() },
		"ostm":  func(n, v int) stm.TM { return ostm.New() },
		"fgp": func(n, v int) stm.TM {
			tm, err := fgptm.New(n, v)
			if err != nil {
				panic(err)
			}
			return tm
		},
	}
}

func TestQueueFIFO(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			q, err := NewQueue(f(1, 12), 0, 4)
			if err != nil {
				t.Fatal(err)
			}
			env := sim.Background(1)
			for i := 1; i <= 4; i++ {
				if err := q.Enqueue(env, model.Value(i)); err != nil {
					t.Fatalf("enqueue %d: %v", i, err)
				}
			}
			if err := q.Enqueue(env, 5); !errors.Is(err, ErrFull) {
				t.Fatalf("enqueue into full queue: %v, want ErrFull", err)
			}
			if got := q.Len(env); got != 4 {
				t.Fatalf("len = %d, want 4", got)
			}
			for i := 1; i <= 4; i++ {
				v, err := q.Dequeue(env)
				if err != nil || v != model.Value(i) {
					t.Fatalf("dequeue = %d,%v; want %d,nil", v, err, i)
				}
			}
			if _, err := q.Dequeue(env); !errors.Is(err, ErrEmpty) {
				t.Fatalf("dequeue from empty: %v, want ErrEmpty", err)
			}
		})
	}
}

func TestQueueWrapAround(t *testing.T) {
	q, err := NewQueue(tl2.New(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	env := sim.Background(1)
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			if err := q.Enqueue(env, model.Value(round*3+i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3; i++ {
			v, err := q.Dequeue(env)
			if err != nil || v != model.Value(round*3+i) {
				t.Fatalf("round %d: dequeue = %d,%v", round, v, err)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := NewQueue(tl2.New(), 0, 0); err == nil {
		t.Error("zero-capacity queue must be rejected")
	}
	if _, err := NewSet(tl2.New(), 0, -1); err == nil {
		t.Error("negative-capacity set must be rejected")
	}
}

func TestSetSemantics(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			s, err := NewSet(f(1, 8), 0, 4)
			if err != nil {
				t.Fatal(err)
			}
			env := sim.Background(1)
			if added, err := s.Add(env, 7); err != nil || !added {
				t.Fatalf("add 7: %v,%v", added, err)
			}
			if added, err := s.Add(env, 7); err != nil || added {
				t.Fatal("re-adding must report no change")
			}
			if !s.Contains(env, 7) || s.Contains(env, 8) {
				t.Fatal("membership")
			}
			for _, v := range []model.Value{1, 2, 3} {
				if _, err := s.Add(env, v); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.Add(env, 9); !errors.Is(err, ErrFull) {
				t.Fatalf("add to full set: %v, want ErrFull", err)
			}
			if !s.Remove(env, 7) {
				t.Fatal("remove present element")
			}
			if s.Remove(env, 7) {
				t.Fatal("removing twice must report no change")
			}
			if s.Len(env) != 3 {
				t.Fatalf("len = %d, want 3", s.Len(env))
			}
			snap := s.Snapshot(env)
			if len(snap) != 3 {
				t.Fatalf("snapshot = %v", snap)
			}
		})
	}
}

// TestQueueConcurrentConservation: producers and consumers on the
// same queue; nothing is lost or duplicated.
func TestQueueConcurrentConservation(t *testing.T) {
	for _, name := range []string{"tl2", "dstm", "ostm"} {
		f := factories()[name]
		t.Run(name, func(t *testing.T) {
			q, err := NewQueue(f(4, 20), 0, 8)
			if err != nil {
				t.Fatal(err)
			}
			s := sim.New(sim.NewSeeded(17))
			defer s.Close()
			const perProducer = 25
			seen := make(map[model.Value]int)
			var consumed int
			for i := 0; i < 2; i++ {
				p := model.Proc(i + 1)
				base := model.Value((i + 1) * 1000)
				_ = s.Spawn(p, func(env *sim.Env) {
					for k := 0; k < perProducer; {
						if err := q.Enqueue(env, base+model.Value(k)); err == nil {
							k++
						}
					}
				})
			}
			_ = s.Spawn(3, func(env *sim.Env) {
				for consumed < 2*perProducer {
					v, err := q.Dequeue(env)
					if err == nil {
						seen[v]++
						consumed++
					}
				}
			})
			if steps := s.Run(300000); steps >= 300000 {
				t.Fatal("queue workload wedged")
			}
			if consumed != 2*perProducer {
				t.Fatalf("consumed %d, want %d", consumed, 2*perProducer)
			}
			for v, n := range seen {
				if n != 1 {
					t.Errorf("value %d seen %d times", v, n)
				}
			}
		})
	}
}

// TestSetConcurrentInvariant: concurrent adders/removers never
// corrupt the size field or duplicate elements.
func TestSetConcurrentInvariant(t *testing.T) {
	f := factories()["ostm"]
	s := sim.New(sim.NewSeeded(19))
	defer s.Close()
	set, err := NewSet(f(3, 10), 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		p := model.Proc(i + 1)
		_ = s.Spawn(p, func(env *sim.Env) {
			state := uint64(p) * 7
			for {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				v := model.Value(state % 6)
				if state%2 == 0 {
					_, _ = set.Add(env, v)
				} else {
					set.Remove(env, v)
				}
			}
		})
	}
	bad := 0
	_ = s.Spawn(3, func(env *sim.Env) {
		for {
			snap := set.Snapshot(env)
			dup := make(map[model.Value]bool)
			for _, v := range snap {
				if dup[v] {
					bad++
				}
				dup[v] = true
			}
		}
	})
	s.Run(20000)
	if bad != 0 {
		t.Errorf("%d snapshots contained duplicates", bad)
	}
}
