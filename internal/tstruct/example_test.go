package tstruct_test

import (
	"fmt"

	"livetm/internal/sim"
	"livetm/internal/stm/ostm"
	"livetm/internal/tstruct"
)

// A bounded FIFO queue over t-variables: every operation is one
// transaction.
func ExampleQueue() {
	q, _ := tstruct.NewQueue(ostm.New(), 0, 4)
	env := sim.Background(1)
	_ = q.Enqueue(env, 10)
	_ = q.Enqueue(env, 20)
	v, _ := q.Dequeue(env)
	fmt.Println(v, q.Len(env))
	// Output:
	// 10 1
}

// A fixed-capacity set with snapshot membership.
func ExampleSet() {
	s, _ := tstruct.NewSet(ostm.New(), 0, 8)
	env := sim.Background(1)
	_, _ = s.Add(env, 5)
	_, _ = s.Add(env, 5) // duplicate: no change
	fmt.Println(s.Len(env), s.Contains(env, 5), s.Contains(env, 6))
	// Output:
	// 1 true false
}
