// Package automaton provides a small deterministic I/O-automaton kit
// used to realize the paper's formal model (§2.2): automata over
// invocation/response events with explicit states, history replay, and
// reachable-state enumeration for finite instances.
//
// The paper's automata are relations; the kit restricts attention to
// automata whose transition function is deterministic per event, which
// suffices for Fgp (each event has at most one successor state) while
// nondeterminism in *output choice* stays with the caller, who decides
// which response event to feed.
package automaton

import (
	"errors"
	"fmt"
	"strings"

	"livetm/internal/model"
)

// State is an automaton state. Key must be a canonical encoding:
// states are equal iff their keys are equal.
type State interface {
	Key() string
}

// Automaton is a deterministic-step I/O automaton.
type Automaton struct {
	// Initial is the start state s0.
	Initial State
	// Step returns the successor of s on event e, or false when e is
	// not enabled in s.
	Step func(s State, e model.Event) (State, bool)
}

// RejectedEventError reports the first event of a history that the
// automaton does not enable.
type RejectedEventError struct {
	Index int
	Event model.Event
	State State
}

func (e *RejectedEventError) Error() string {
	return fmt.Sprintf("event %d (%s) not enabled in state %s", e.Index, e.Event, e.State.Key())
}

// Replay runs the history through the automaton and returns the final
// state. It fails with a *RejectedEventError if some event is not
// enabled, making the history not a history of the automaton.
func (a *Automaton) Replay(h model.History) (State, error) {
	s := a.Initial
	for i, e := range h {
		next, ok := a.Step(s, e)
		if !ok {
			return s, &RejectedEventError{Index: i, Event: e, State: s}
		}
		s = next
	}
	return s, nil
}

// IsHistory reports whether h is a history of the automaton, i.e.
// every event is enabled in sequence from the initial state.
func (a *Automaton) IsHistory(h model.History) bool {
	_, err := a.Replay(h)
	return err == nil
}

// ErrExploreLimit is returned by Explore when the reachable state set
// exceeds the given limit (the automaton may be infinite-state).
var ErrExploreLimit = errors.New("automaton: reachable state set exceeds limit")

// Explore enumerates the states reachable from the initial state using
// events from the alphabet, in breadth-first order. It stops with
// ErrExploreLimit when more than limit states are found; limit <= 0
// means no limit (use only for instances known to be finite).
func Explore(a *Automaton, alphabet []model.Event, limit int) ([]State, error) {
	seen := map[string]bool{a.Initial.Key(): true}
	order := []State{a.Initial}
	queue := []State{a.Initial}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, e := range alphabet {
			next, ok := a.Step(s, e)
			if !ok {
				continue
			}
			k := next.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			order = append(order, next)
			queue = append(queue, next)
			if limit > 0 && len(order) > limit {
				return order, ErrExploreLimit
			}
		}
	}
	return order, nil
}

// Transitions enumerates all enabled (state, event, state') triples
// over the reachable states for the alphabet. It is intended for
// rendering small instances (e.g. Figure 15).
type Transition struct {
	From  State
	Event model.Event
	To    State
}

// Edges returns all transitions among the given states for the
// alphabet.
func Edges(a *Automaton, states []State, alphabet []model.Event) []Transition {
	var out []Transition
	for _, s := range states {
		for _, e := range alphabet {
			if next, ok := a.Step(s, e); ok {
				out = append(out, Transition{From: s, Event: e, To: next})
			}
		}
	}
	return out
}

// DOT renders states and transitions as a Graphviz digraph, with
// states numbered s1.. in the given order (s1 is drawn as the initial
// state). Figure 15 of the paper is DOT(states, edges) for the
// single-process Fgp instance.
func DOT(states []State, edges []Transition) string {
	id := make(map[string]int, len(states))
	for i, s := range states {
		id[s.Key()] = i + 1
	}
	var b strings.Builder
	b.WriteString("digraph automaton {\n  rankdir=LR;\n  node [shape=circle];\n")
	for i := range states {
		attrs := ""
		if i == 0 {
			attrs = " [shape=doublecircle]"
		}
		fmt.Fprintf(&b, "  s%d%s;\n", i+1, attrs)
	}
	for _, t := range edges {
		from, okF := id[t.From.Key()]
		to, okT := id[t.To.Key()]
		if !okF || !okT {
			continue // edge touches a state outside the listing
		}
		fmt.Fprintf(&b, "  s%d -> s%d [label=%q];\n", from, to, t.Event.String())
	}
	b.WriteString("}\n")
	return b.String()
}
