package automaton

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"livetm/internal/model"
)

// counterState is a toy automaton state for kit tests: a saturating
// counter driven by read invocations (+1) and abort events (reset).
type counterState int

func (c counterState) Key() string { return strconv.Itoa(int(c)) }

func counterAutomaton(max int) *Automaton {
	return &Automaton{
		Initial: counterState(0),
		Step: func(s State, e model.Event) (State, bool) {
			c := s.(counterState)
			switch e.Kind {
			case model.InvRead:
				if int(c) >= max {
					return nil, false
				}
				return c + 1, true
			case model.RespAbort:
				return counterState(0), true
			default:
				return nil, false
			}
		},
	}
}

func TestReplay(t *testing.T) {
	a := counterAutomaton(3)
	s, err := a.Replay(model.History{model.Read(1, 0), model.Read(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if s.(counterState) != 2 {
		t.Errorf("state = %v, want 2", s)
	}
}

func TestReplayRejects(t *testing.T) {
	a := counterAutomaton(1)
	h := model.History{model.Read(1, 0), model.Read(1, 0)}
	_, err := a.Replay(h)
	var rej *RejectedEventError
	if !errors.As(err, &rej) {
		t.Fatalf("error = %v, want RejectedEventError", err)
	}
	if rej.Index != 1 {
		t.Errorf("rejected index = %d, want 1", rej.Index)
	}
	if a.IsHistory(h) {
		t.Error("IsHistory must be false for a rejected history")
	}
	if !a.IsHistory(h[:1]) {
		t.Error("prefix within bounds must be a history")
	}
}

func TestExplore(t *testing.T) {
	a := counterAutomaton(4)
	alphabet := []model.Event{model.Read(1, 0), model.Abort(1)}
	states, err := Explore(a, alphabet, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 5 { // 0..4
		t.Errorf("reachable = %d states, want 5", len(states))
	}
	if states[0].Key() != "0" {
		t.Errorf("first state must be the initial state, got %s", states[0].Key())
	}
}

func TestExploreLimit(t *testing.T) {
	a := counterAutomaton(1 << 20)
	alphabet := []model.Event{model.Read(1, 0)}
	_, err := Explore(a, alphabet, 10)
	if !errors.Is(err, ErrExploreLimit) {
		t.Errorf("error = %v, want ErrExploreLimit", err)
	}
}

func TestDOT(t *testing.T) {
	a := counterAutomaton(2)
	alphabet := []model.Event{model.Read(1, 0), model.Abort(1)}
	states, err := Explore(a, alphabet, 0)
	if err != nil {
		t.Fatal(err)
	}
	edges := Edges(a, states, alphabet)
	dot := DOT(states, edges)
	for _, want := range []string{"digraph", "s1 [shape=doublecircle]", "s1 -> s2", `label="x0.read_1"`, "}"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestEdges(t *testing.T) {
	a := counterAutomaton(2)
	alphabet := []model.Event{model.Read(1, 0), model.Abort(1)}
	states, err := Explore(a, alphabet, 0)
	if err != nil {
		t.Fatal(err)
	}
	edges := Edges(a, states, alphabet)
	// States 0,1,2. Edges: 0-r->1, 1-r->2, 0-A->0, 1-A->0, 2-A->0.
	if len(edges) != 5 {
		t.Errorf("edges = %d, want 5", len(edges))
	}
	selfAborts := 0
	for _, e := range edges {
		if e.Event.Kind == model.RespAbort && e.To.Key() != "0" {
			t.Errorf("abort must reset to 0, got %s", e.To.Key())
		}
		if e.Event.Kind == model.RespAbort && e.From.Key() == "0" {
			selfAborts++
		}
	}
	if selfAborts != 1 {
		t.Errorf("self-abort edges = %d, want 1", selfAborts)
	}
}
