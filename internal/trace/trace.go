// Package trace renders histories in the visual style of the paper's
// figures: one row per process, one column per operation, in global
// time order.
//
//	p1 | r(x0)->0                      w(x0,1) tryC->A
//	p2 |          r(x0)->0 w(x0,1) C
package trace

import (
	"fmt"
	"strings"

	"livetm/internal/model"
)

// cell is one rendered operation (invocation plus response, or a
// pending invocation, or a completion abort).
type cell struct {
	proc model.Proc
	text string
	pos  int // invocation index in the history: column order
}

// Render formats the history as per-process rows. Malformed histories
// are rendered best-effort (orphan responses become their own cells).
func Render(h model.History) string {
	cells := cellsOf(h)
	if len(cells) == 0 {
		return "(empty history)\n"
	}
	procs := h.Procs()

	widths := make([]int, len(cells))
	for i, c := range cells {
		widths[i] = len([]rune(c.text)) + 1
	}

	var b strings.Builder
	for _, p := range procs {
		fmt.Fprintf(&b, "p%-2d |", p)
		for i, c := range cells {
			s := ""
			if c.proc == p {
				s = c.text
			}
			pad := widths[i] - len([]rune(s))
			b.WriteString(" " + s + strings.Repeat(" ", pad-1))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func cellsOf(h model.History) []*cell {
	var cells []*cell
	pending := make(map[model.Proc]*cell) // open invocation cells
	add := func(c *cell) *cell {
		cells = append(cells, c)
		return c
	}
	flush := func(p model.Proc) {
		if c := pending[p]; c != nil {
			c.text += "…" // never answered within the history
			pending[p] = nil
		}
	}
	for i, e := range h {
		switch e.Kind {
		case model.InvRead:
			flush(e.Proc)
			pending[e.Proc] = add(&cell{proc: e.Proc, text: fmt.Sprintf("r(x%d)", e.Var), pos: i})
		case model.InvWrite:
			flush(e.Proc)
			pending[e.Proc] = add(&cell{proc: e.Proc, text: fmt.Sprintf("w(x%d,%d)", e.Var, e.Val), pos: i})
		case model.InvTryCommit:
			flush(e.Proc)
			pending[e.Proc] = add(&cell{proc: e.Proc, text: "tryC", pos: i})
		case model.RespValue:
			if c := pending[e.Proc]; c != nil {
				c.text += fmt.Sprintf("->%d", e.Val)
				pending[e.Proc] = nil
			} else {
				add(&cell{proc: e.Proc, text: fmt.Sprintf("%d?", e.Val), pos: i})
			}
		case model.RespOK:
			pending[e.Proc] = nil // "w(x,v)" already says it all
		case model.RespCommit:
			if c := pending[e.Proc]; c != nil {
				c.text = "C"
				pending[e.Proc] = nil
			} else {
				add(&cell{proc: e.Proc, text: "C?", pos: i})
			}
		case model.RespAbort:
			if c := pending[e.Proc]; c != nil {
				c.text += "->A"
				pending[e.Proc] = nil
			} else {
				add(&cell{proc: e.Proc, text: "A", pos: i})
			}
		}
	}
	// Mark invocations still open at the end of the history.
	for _, c := range pending {
		if c != nil {
			c.text += "…"
		}
	}
	return cells
}

// Summary renders the per-process transaction outcomes of a history,
// e.g. "p1: 3 committed, 2 aborted, 1 live".
func Summary(h model.History) string {
	txns, err := model.Transactions(h)
	if err != nil {
		return fmt.Sprintf("(malformed history: %v)", err)
	}
	type counts struct{ c, a, l int }
	per := make(map[model.Proc]*counts)
	for _, t := range txns {
		c, ok := per[t.Proc]
		if !ok {
			c = &counts{}
			per[t.Proc] = c
		}
		switch t.Status {
		case model.Committed:
			c.c++
		case model.Aborted:
			c.a++
		default:
			c.l++
		}
	}
	var b strings.Builder
	for _, p := range h.Procs() {
		c := per[p]
		if c == nil {
			continue
		}
		fmt.Fprintf(&b, "p%d: %d committed, %d aborted, %d live\n", p, c.c, c.a, c.l)
	}
	return b.String()
}
