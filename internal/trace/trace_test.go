package trace

import (
	"strings"
	"testing"

	"livetm/internal/model"
)

func fig1() model.History {
	return model.History{
		model.Read(1, 0), model.ValueResp(1, 0),
		model.Read(2, 0), model.ValueResp(2, 0),
		model.Write(2, 0, 1), model.OK(2),
		model.TryCommit(2), model.Commit(2),
		model.Write(1, 0, 1), model.OK(1),
		model.TryCommit(1), model.Abort(1),
	}
}

func TestRenderFig1(t *testing.T) {
	out := Render(fig1())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("rendered %d rows, want 2:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "p1 ") || !strings.HasPrefix(lines[1], "p2 ") {
		t.Errorf("rows must be labeled p1, p2:\n%s", out)
	}
	for _, want := range []string{"r(x0)->0", "w(x0,1)", "C", "tryC->A"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// p1's aborted commit is on row 1, p2's C on row 2.
	if !strings.Contains(lines[0], "tryC->A") {
		t.Errorf("p1's row should end with tryC->A:\n%s", out)
	}
	if !strings.Contains(lines[1], "C") {
		t.Errorf("p2's row should contain C:\n%s", out)
	}
}

func TestRenderColumnsAlign(t *testing.T) {
	out := Render(fig1())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len([]rune(lines[0])) != len([]rune(lines[1])) {
		t.Errorf("rows must have equal width:\n%q\n%q", lines[0], lines[1])
	}
	// Columns are disjoint: wherever p1 has text, p2 has spaces (after
	// the row label).
	r0, r1 := []rune(lines[0])[5:], []rune(lines[1])[5:]
	for i := range r0 {
		if r0[i] != ' ' && r1[i] != ' ' {
			t.Fatalf("overlapping cells at column %d:\n%s", i, out)
		}
	}
}

func TestRenderPendingInvocation(t *testing.T) {
	h := model.History{model.Read(1, 0)}
	out := Render(h)
	if !strings.Contains(out, "r(x0)…") {
		t.Errorf("pending invocation must be marked: %q", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if got := Render(nil); !strings.Contains(got, "empty") {
		t.Errorf("Render(nil) = %q", got)
	}
}

func TestRenderCompletionAbort(t *testing.T) {
	h := model.History{model.Read(1, 0), model.ValueResp(1, 0), model.Abort(1)}
	out := Render(h)
	if !strings.Contains(out, "A") {
		t.Errorf("completion abort must render as A: %q", out)
	}
}

func TestRenderOrphanResponses(t *testing.T) {
	h := model.History{model.ValueResp(1, 3), model.Commit(2)}
	out := Render(h)
	if !strings.Contains(out, "3?") || !strings.Contains(out, "C?") {
		t.Errorf("orphan responses must render best-effort: %q", out)
	}
}

func TestSummary(t *testing.T) {
	h := model.NewBuilder().
		Read(1, 0, 0).Commit(1).
		Read(1, 0, 0).CommitAbort(1).
		Raw(model.Read(2, 0)).
		History()
	s := Summary(h)
	if !strings.Contains(s, "p1: 1 committed, 1 aborted, 0 live") {
		t.Errorf("summary = %q", s)
	}
	if !strings.Contains(s, "p2: 0 committed, 0 aborted, 1 live") {
		t.Errorf("summary = %q", s)
	}
}

func TestSummaryMalformed(t *testing.T) {
	s := Summary(model.History{model.OK(1)})
	if !strings.Contains(s, "malformed") {
		t.Errorf("summary of malformed history = %q", s)
	}
}
