package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// FlightRecord is one line of a flight-recorder file: a wall-clock
// stamp, milliseconds since the recorder started, and the snapshot.
type FlightRecord struct {
	Wall      time.Time `json:"wall"`
	ElapsedMS int64     `json:"elapsed_ms"`
	Snapshot  Snapshot  `json:"snapshot"`
}

// FlightRecorder periodically flushes registry snapshots as JSON
// lines, one FlightRecord per line, for offline trajectory analysis
// (how abort rates, lane lag, and starvation evolve over a run — the
// time-domain signals a final report collapses).
type FlightRecorder struct {
	reg      *Registry
	w        io.Writer
	interval time.Duration
	start    time.Time

	mu   sync.Mutex
	done chan struct{}
	wg   sync.WaitGroup
}

// NewFlightRecorder records snapshots of reg to w every interval
// (minimum 10ms). Call Start to begin and Stop to flush the final
// record and halt. The recorder does not close w.
func NewFlightRecorder(reg *Registry, w io.Writer, interval time.Duration) *FlightRecorder {
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	return &FlightRecorder{reg: reg, w: w, interval: interval}
}

// Start launches the background flush loop. It is a no-op if already
// started.
func (f *FlightRecorder) Start() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done != nil {
		return
	}
	done := make(chan struct{})
	f.done = done
	f.start = time.Now()
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		t := time.NewTicker(f.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				f.flush()
			case <-done:
				return
			}
		}
	}()
}

// Stop halts the loop, writes one final record, and waits for the
// background goroutine to exit. It is a no-op if not started.
func (f *FlightRecorder) Stop() {
	f.mu.Lock()
	if f.done == nil {
		f.mu.Unlock()
		return
	}
	done := f.done
	f.done = nil
	f.mu.Unlock()
	close(done)
	f.wg.Wait()
	f.flush()
}

func (f *FlightRecorder) flush() {
	rec := FlightRecord{
		Wall:      time.Now(),
		ElapsedMS: time.Since(f.start).Milliseconds(),
		Snapshot:  f.reg.Snapshot(),
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	_, _ = f.w.Write(b)
}
