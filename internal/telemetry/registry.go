package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// kind discriminates the three instrument types of a family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instrument inside a family. Exactly one of
// the three instrument pointers is non-nil, matching the family kind.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Label is one name/value pair attached to a series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// family is a named set of series sharing a kind, a help string, and
// a label-key schema.
type family struct {
	name   string
	help   string
	kind   kind
	keys   []string
	series []*series
	byKey  map[string]*series
}

// Registry holds named metric families. Instrument handles are
// resolved once (Counter/Gauge/Histogram panic on schema misuse, which
// is a wiring bug, not a runtime condition) and then used lock-free;
// the registry lock guards only resolution and snapshotting.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter resolves (creating on first use) the counter series of
// family name with the given alternating key, value label pairs. The
// first resolution of a name fixes its kind, help string, and label
// keys; later resolutions must match.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.resolve(name, help, kindCounter, labels)
	return s.c
}

// Gauge resolves the gauge series of family name. See Counter.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.resolve(name, help, kindGauge, labels)
	return s.g
}

// Histogram resolves the histogram series of family name. See Counter.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	s := r.resolve(name, help, kindHistogram, labels)
	return s.h
}

func (r *Registry) resolve(name, help string, k kind, kvs []string) *series {
	if len(kvs)%2 != 0 {
		panic(fmt.Sprintf("telemetry: %s resolved with odd label list %q", name, kvs))
	}
	labels := make([]Label, 0, len(kvs)/2)
	for i := 0; i < len(kvs); i += 2 {
		labels = append(labels, Label{Key: kvs[i], Value: kvs[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	keys := make([]string, len(labels))
	for i, l := range labels {
		keys[i] = l.Key
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: k, keys: keys, byKey: make(map[string]*series)}
		r.families[name] = fam
		r.order = append(r.order, name)
	} else {
		if fam.kind != k {
			panic(fmt.Sprintf("telemetry: %s resolved as %s, registered as %s", name, k, fam.kind))
		}
		if strings.Join(fam.keys, ",") != strings.Join(keys, ",") {
			panic(fmt.Sprintf("telemetry: %s resolved with label keys %v, registered with %v", name, keys, fam.keys))
		}
	}
	key := seriesKey(labels)
	if s := fam.byKey[key]; s != nil {
		return s
	}
	s := &series{labels: labels}
	switch k {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	default:
		s.h = &Histogram{}
	}
	fam.byKey[key] = s
	fam.series = append(fam.series, s)
	return s
}

// Unregister removes the series of family name with the given
// alternating key, value label pairs from the registry, reporting
// whether it was present. The family itself (name, kind, help, label
// schema) stays registered, so a later resolution with the same
// labels starts a fresh series at zero — per-series counter resets
// are the caller's contract to preserve monotonicity across (see
// internal/server's admission eviction, which folds retiring values
// into an aggregate series before unregistering). Handles already
// held on the removed series keep working; their updates are simply
// no longer exported.
func (r *Registry) Unregister(name string, kvs ...string) bool {
	if len(kvs)%2 != 0 {
		panic(fmt.Sprintf("telemetry: %s unregistered with odd label list %q", name, kvs))
	}
	labels := make([]Label, 0, len(kvs)/2)
	for i := 0; i < len(kvs); i += 2 {
		labels = append(labels, Label{Key: kvs[i], Value: kvs[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })

	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		return false
	}
	key := seriesKey(labels)
	s := fam.byKey[key]
	if s == nil {
		return false
	}
	delete(fam.byKey, key)
	for i, other := range fam.series {
		if other == s {
			fam.series = append(fam.series[:i], fam.series[i+1:]...)
			break
		}
	}
	return true
}

func seriesKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('\x00')
		b.WriteString(l.Value)
		b.WriteByte('\x00')
	}
	return b.String()
}
