package telemetry

import "sort"

// SeriesSnapshot is one labeled series at a point in time. Counters
// and gauges carry Value; histograms carry Count, Sum (midpoint
// approximation), the quantile summaries, and the non-empty buckets.
type SeriesSnapshot struct {
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`

	Count   uint64           `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	P50     int64            `json:"p50,omitempty"`
	P99     int64            `json:"p99,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one non-empty histogram bucket: Count samples at
// or below Upper (inclusive), exclusive of lower buckets.
type BucketSnapshot struct {
	Upper uint64 `json:"le"`
	Count uint64 `json:"n"`
}

// Label returns the value of the label named key, or "".
func (s SeriesSnapshot) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// FamilySnapshot is one metric family at a point in time.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help"`
	Kind   string           `json:"kind"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is a point-in-time copy of a registry, ordered by family
// name. It is the payload of the JSON endpoint and the flight
// recorder, and the source for livetm serve's progress lines.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// Snapshot captures every family. Each series is read once with
// atomic loads; no hot-path writer is blocked.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	// Series slices only ever append under r.mu; copy the headers so
	// the scan below runs without the lock.
	sers := make([][]*series, len(fams))
	for i, f := range fams {
		sers[i] = append([]*series(nil), f.series...)
	}
	r.mu.Unlock()

	snap := Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for i, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, s := range sers[i] {
			ss := SeriesSnapshot{Labels: s.labels}
			switch {
			case s.c != nil:
				ss.Value = float64(s.c.Load())
			case s.g != nil:
				ss.Value = float64(s.g.Load())
			default:
				for b := 0; b < histBuckets; b++ {
					n := s.h.buckets[b].Load()
					if n > 0 {
						ss.Buckets = append(ss.Buckets, BucketSnapshot{Upper: bucketUpper(b), Count: n})
						ss.Count += n
					}
				}
				ss.Sum = s.h.sumApprox()
				ss.P50 = s.h.Quantile(0.50)
				ss.P99 = s.h.Quantile(0.99)
				ss.Value = float64(ss.Count)
			}
			fs.Series = append(fs.Series, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	sort.Slice(snap.Families, func(a, b int) bool { return snap.Families[a].Name < snap.Families[b].Name })
	return snap
}

// Family returns the named family, or nil.
func (s Snapshot) Family(name string) *FamilySnapshot {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Value returns the value of the series of family name whose labels
// include every given key, value pair, and whether it exists.
func (s Snapshot) Value(name string, kvs ...string) (float64, bool) {
	f := s.Family(name)
	if f == nil {
		return 0, false
	}
outer:
	for _, ser := range f.Series {
		for i := 0; i < len(kvs); i += 2 {
			if ser.Label(kvs[i]) != kvs[i+1] {
				continue outer
			}
		}
		return ser.Value, true
	}
	return 0, false
}

// Total sums Value across all series of family name (0 if absent).
func (s Snapshot) Total(name string) float64 {
	f := s.Family(name)
	if f == nil {
		return 0
	}
	var t float64
	for _, ser := range f.Series {
		t += ser.Value
	}
	return t
}
