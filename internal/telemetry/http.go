package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry over HTTP:
//
//	/metrics        Prometheus text exposition
//	/snapshot       the JSON Snapshot
//	/debug/pprof/*  net/http/pprof (profile, heap, goroutine, trace, ...)
//
// Every request works from a point-in-time Snapshot, so a slow or
// stuck scraper can never block a hot-path writer.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Snapshot())
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
