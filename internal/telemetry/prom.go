package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE header per
// family, then one line per series. Histograms emit cumulative le
// buckets for the non-empty fixed buckets plus +Inf, then _sum and
// _count. The writer works from a Snapshot, so scraping never blocks
// a hot-path writer.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	for _, f := range snap.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Series {
			if f.Kind == "histogram" {
				if err := writeHistogram(w, f.Name, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, labelSet(s.Labels, "", 0), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s SeriesSnapshot) error {
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelSet(s.Labels, "le", b.Upper), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelSetInf(s.Labels), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelSet(s.Labels, "", 0), formatValue(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelSet(s.Labels, "", 0), s.Count)
	return err
}

// labelSet renders {k="v",...}, appending le=bound when leKey is
// non-empty. An empty set renders as "".
func labelSet(labels []Label, leKey string, le uint64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%d\"", leKey, le)
	}
	b.WriteByte('}')
	return b.String()
}

func labelSetInf(labels []Label) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range labels {
		fmt.Fprintf(&b, "%s=%q,", l.Key, l.Value)
	}
	b.WriteString(`le="+Inf"}`)
	return b.String()
}

func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
