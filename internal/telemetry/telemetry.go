// Package telemetry is the dependency-free metrics core behind the
// live observability of livetm: atomic counters, gauges, and fixed
// log-bucketed histograms, collected into a named Registry of labeled
// families and exposed as Prometheus text exposition, JSON snapshots,
// and an optional JSONL flight recorder.
//
// The package exists to make the paper's time-domain signals —
// starvation intervals, abort/commit dichotomies, liveness classes —
// visible while a run is in flight, not only in post-hoc Stats
// snapshots. Because the instruments sit on the transactional hot
// path, the design budget is strict:
//
//   - Counter and Gauge updates are exactly one atomic RMW.
//   - Histogram.Observe is exactly one atomic RMW: the value is mapped
//     to a fixed log-linear bucket (2 sub-bucket bits per octave, 252
//     buckets covering all of uint64) with pure integer arithmetic and
//     a single bucket increment. No count word, no sum word, no locks.
//   - Hot paths never touch the Registry. Handles are resolved once at
//     wiring time (session open, recorder construction) and held; the
//     Registry's mutex is only taken at resolve and snapshot time.
//
// The zero value of each instrument is ready to use, so layers that
// must keep their accounting alive even when telemetry is disabled
// (e.g. the engine's cut-pause histograms backing CutStats) can hold
// bare, unregistered instruments at identical cost.
//
// The enforced overhead contract is OverheadBudgetRatio: the
// instrumented-vs-uninstrumented benchmarks (BenchmarkTelemetryOverhead
// at the repo root, mirrored by the workload matrix's per-cell
// telemetry_overhead field) assert that full telemetry wiring keeps a
// native session's throughput within that factor of the bare run, and
// the CI bench smoke fails on a breach.
package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// OverheadBudgetRatio is the enforced ceiling on instrumented /
// uninstrumented hot-path cost. The measured ratio on the benchmark
// cells sits near 1.0x; the budget is deliberately generous so the CI
// gate trips on structural regressions (a lock or a syscall sneaking
// onto the hot path), not on scheduler noise.
const OverheadBudgetRatio = 1.5

// Counter is a monotonically increasing uint64. The zero value is a
// valid, unregistered counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 level. The zero value is a valid,
// unregistered gauge.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram bucket layout: values 0..7 get exact unit buckets; every
// larger octave [2^e, 2^{e+1}) is split into 4 sub-buckets (2
// significant bits below the leading bit), giving a worst-case
// relative quantization error of 1/4 across the full uint64 range.
//
//	idx(v) = v                                  v < 8
//	       = 8 + (e-3)*4 + ((v>>(e-2)) & 3)     e = bits.Len64(v)-1
//
// e ranges 3..63, so idx tops out at 8 + 60*4 + 3 = 251.
const histBuckets = 8 + (64-3-1)*4 + 4 // 252

func bucketIdx(v uint64) int {
	if v < 8 {
		return int(v)
	}
	e := bits.Len64(v) - 1
	return 8 + (e-3)*4 + int((v>>(e-2))&3)
}

// bucketUpper is the inclusive upper bound of bucket idx.
func bucketUpper(idx int) uint64 {
	if idx < 8 {
		return uint64(idx)
	}
	e := 3 + (idx-8)/4
	sub := uint64((idx - 8) % 4)
	return (4+sub+1)<<(e-2) - 1
}

// Histogram is a fixed log-bucketed distribution of non-negative
// int64 samples (typically nanoseconds). Observe performs exactly one
// atomic increment; totals and quantiles are derived at snapshot time
// from the buckets alone. The zero value is a valid, unregistered
// histogram.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
}

// Observe records v (negative values clamp to 0) with a single atomic
// bucket increment.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIdx(uint64(v))].Add(1)
}

// Count returns the number of observations, summed from the buckets.
// Concurrent Observes may or may not be included; the result is a
// consistent lower bound of any later snapshot.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) of
// the observed samples: the upper edge of the bucket in which the
// quantile falls, exact to the 1/4 relative bucket width. It returns
// 0 when nothing has been observed.
func (h *Histogram) Quantile(q float64) int64 {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i := range counts {
		cum += counts[i]
		if cum > rank {
			return int64(bucketUpper(i))
		}
	}
	return int64(bucketUpper(histBuckets - 1))
}

// Aggregate folds the given histograms bucket-by-bucket into a fresh
// unregistered histogram, so a whole-system distribution can be read
// off per-shard instruments without double-registering any series.
// Nil inputs are skipped; buckets are loaded individually, so the
// result is a consistent lower bound of any later snapshot.
func Aggregate(hs ...*Histogram) *Histogram {
	out := &Histogram{}
	for _, h := range hs {
		if h == nil {
			continue
		}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				out.buckets[i].Add(n)
			}
		}
	}
	return out
}

// sumApprox estimates the sum of observed samples from bucket
// midpoints (exact for the unit buckets 0..7).
func (h *Histogram) sumApprox() float64 {
	var s float64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		var mid float64
		if i < 8 {
			mid = float64(i)
		} else {
			upper := bucketUpper(i)
			lower := bucketUpper(i-1) + 1
			mid = float64(lower+upper) / 2
		}
		s += float64(n) * mid
	}
	return s
}
