package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/bits"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIdxMonotoneAndInverse(t *testing.T) {
	// Every value maps into a bucket whose bounds contain it, indices
	// are monotone in the value, and the full range stays in bounds.
	vals := []uint64{0, 1, 2, 7, 8, 9, 10, 15, 16, 31, 32, 100, 1000, 1 << 20, 1<<40 + 12345, 1<<63 - 1, 1 << 63, ^uint64(0)}
	prev := -1
	for _, v := range vals {
		idx := bucketIdx(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range", v, idx)
		}
		if idx < prev {
			t.Fatalf("bucketIdx not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		up := bucketUpper(idx)
		if v > up {
			t.Fatalf("value %d above its bucket upper bound %d (idx %d)", v, up, idx)
		}
		if idx > 0 {
			lo := bucketUpper(idx-1) + 1
			if v < lo {
				t.Fatalf("value %d below its bucket lower bound %d (idx %d)", v, lo, idx)
			}
		}
	}
	// Exhaustive monotonicity + containment over small values and
	// octave edges.
	prev = 0
	for v := uint64(0); v < 1<<12; v++ {
		idx := bucketIdx(v)
		if idx < prev {
			t.Fatalf("bucketIdx not monotone at %d", v)
		}
		prev = idx
	}
	for e := 3; e < 63; e++ {
		for _, v := range []uint64{1 << e, 1<<e + 1, 1<<(e+1) - 1} {
			idx := bucketIdx(v)
			if up := bucketUpper(idx); v > up {
				t.Fatalf("edge %d (e=%d) above bucket upper %d", v, e, up)
			}
			_ = bits.Len64(v)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("Count = %d, want 1000", got)
	}
	// Quantiles are bucket upper bounds: within one sub-bucket (25%
	// relative) of the exact rank statistic.
	p50 := h.Quantile(0.50)
	if p50 < 500 || p50 > 640 {
		t.Fatalf("p50 = %d, want ~500 (within bucket width)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 990 || p99 > 1280 {
		t.Fatalf("p99 = %d, want ~990 (within bucket width)", p99)
	}
	if q := h.Quantile(0); q < 1 || q > 2 {
		t.Fatalf("q0 = %d, want bucket of min sample", q)
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile should be 0")
	}
	empty.Observe(-5)
	if empty.Quantile(1) != 0 {
		t.Fatalf("negative samples clamp to 0")
	}
}

func TestRegistryHandlesAreStable(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("livetm_test_total", "help", "algo", "tl2")
	b := r.Counter("livetm_test_total", "help", "algo", "tl2")
	if a != b {
		t.Fatalf("same name+labels must resolve to the same handle")
	}
	c := r.Counter("livetm_test_total", "help", "algo", "norec")
	if a == c {
		t.Fatalf("distinct label values must resolve to distinct handles")
	}
	a.Add(3)
	c.Inc()
	snap := r.Snapshot()
	if v, ok := snap.Value("livetm_test_total", "algo", "tl2"); !ok || v != 3 {
		t.Fatalf("Value(tl2) = %v, %v; want 3, true", v, ok)
	}
	if got := snap.Total("livetm_test_total"); got != 4 {
		t.Fatalf("Total = %v, want 4", got)
	}
}

func TestRegistryUnregister(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("livetm_test_total", "help", "client", "eph-1")
	keep := r.Counter("livetm_test_total", "help", "client", "keep")
	a.Add(5)
	keep.Add(2)

	if !r.Unregister("livetm_test_total", "client", "eph-1") {
		t.Fatalf("Unregister of a live series must report true")
	}
	if r.Unregister("livetm_test_total", "client", "eph-1") {
		t.Fatalf("second Unregister of the same series must report false")
	}
	if r.Unregister("livetm_missing_total", "client", "eph-1") {
		t.Fatalf("Unregister of an unknown family must report false")
	}

	snap := r.Snapshot()
	if _, ok := snap.Value("livetm_test_total", "client", "eph-1"); ok {
		t.Fatalf("unregistered series still exported")
	}
	if v, ok := snap.Value("livetm_test_total", "client", "keep"); !ok || v != 2 {
		t.Fatalf("surviving series = %v, %v; want 2, true", v, ok)
	}

	// The family schema survives: re-resolving the same labels starts a
	// fresh series at zero, distinct from the retired handle.
	b := r.Counter("livetm_test_total", "help", "client", "eph-1")
	if b == a {
		t.Fatalf("re-resolved series must be a fresh handle")
	}
	if v, ok := r.Snapshot().Value("livetm_test_total", "client", "eph-1"); !ok || v != 0 {
		t.Fatalf("re-resolved series = %v, %v; want 0, true", v, ok)
	}
}

func TestRegistrySchemaMisusePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("livetm_x_total", "h")
	for _, tc := range []func(){
		func() { r.Gauge("livetm_x_total", "h") },
		func() { r.Counter("livetm_x_total", "h", "k", "v") },
		func() { r.Counter("livetm_y_total", "h", "odd") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("schema misuse must panic")
				}
			}()
			tc()
		}()
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("livetm_tx_commits_total", "committed transactions", "algo", "native-tl2").Add(7)
	r.Gauge("livetm_session_workers", "active workers").Set(4)
	h := r.Histogram("livetm_exec_latency_ns", "Exec latency", "algo", "native-tl2")
	h.Observe(5)
	h.Observe(100)
	h.Observe(100)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE livetm_tx_commits_total counter",
		`livetm_tx_commits_total{algo="native-tl2"} 7`,
		"# TYPE livetm_session_workers gauge",
		"livetm_session_workers 4",
		"# TYPE livetm_exec_latency_ns histogram",
		`livetm_exec_latency_ns_bucket{algo="native-tl2",le="5"} 1`,
		`livetm_exec_latency_ns_bucket{algo="native-tl2",le="+Inf"} 3`,
		`livetm_exec_latency_ns_count{algo="native-tl2"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts: the 100-bucket line must carry 3
	// (1 from value 5, 2 from value 100).
	idx := bucketIdx(100)
	line := fmt.Sprintf(`livetm_exec_latency_ns_bucket{algo="native-tl2",le="%d"} 3`, bucketUpper(idx))
	if !strings.Contains(out, line) {
		t.Fatalf("exposition missing cumulative line %q:\n%s", line, out)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("livetm_tx_starts_total", "started transactions").Add(2)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String(), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(ct, "text/plain") || !strings.Contains(body, "livetm_tx_starts_total 2") {
		t.Fatalf("/metrics: ct=%q body=%q", ct, body)
	}
	body, ct = get("/snapshot")
	if !strings.Contains(ct, "application/json") {
		t.Fatalf("/snapshot content type %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot is not JSON: %v", err)
	}
	if v, ok := snap.Value("livetm_tx_starts_total"); !ok || v != 2 {
		t.Fatalf("snapshot value = %v, %v", v, ok)
	}
	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Fatalf("pprof cmdline endpoint empty")
	}
}

func TestSnapshotUnderConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("livetm_race_total", "h")
	h := r.Histogram("livetm_race_ns", "h")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(i % 4096)
				}
			}
		}()
	}
	var last float64
	for i := 0; i < 50; i++ {
		snap := r.Snapshot()
		v, _ := snap.Value("livetm_race_total")
		if v < last {
			t.Fatalf("counter regressed across snapshots: %v < %v", v, last)
		}
		last = v
	}
	close(stop)
	wg.Wait()
}

func TestFlightRecorder(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("livetm_flight_total", "h")
	var buf syncBuffer
	fr := NewFlightRecorder(r, &buf, 10*time.Millisecond)
	fr.Start()
	fr.Start() // idempotent
	c.Add(5)
	time.Sleep(35 * time.Millisecond)
	fr.Stop()
	fr.Stop() // idempotent

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("want >= 2 flight records, got %d", len(lines))
	}
	var rec FlightRecord
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &rec); err != nil {
		t.Fatalf("flight line is not JSON: %v", err)
	}
	if v, ok := rec.Snapshot.Value("livetm_flight_total"); !ok || v != 5 {
		t.Fatalf("flight snapshot value = %v, %v; want 5", v, ok)
	}
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		v := int64(17)
		for pb.Next() {
			h.Observe(v)
			v = v*1664525 + 1013904223
			if v < 0 {
				v = -v
			}
		}
	})
}
