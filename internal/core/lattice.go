package core

import (
	"fmt"
	"strings"

	"livetm/internal/liveness"
	"livetm/internal/model"
)

// PropertyLattice samples random lassos and computes the empirical
// inclusion relation among TM-liveness properties: properties from the
// paper (local, global, solo progress) and the §7 extensions
// (k-progress, priority progress). For every non-inclusion it keeps a
// witness history.
//
// Inclusions confirmed on every sample are only evidence, not proof —
// but each *strict* separation is a theorem (the witness is a concrete
// history in one property and not the other).
type PropertyLattice struct {
	Names []string
	// Contains[i][j] is false iff some sampled history is in property
	// i but not in property j.
	Contains [][]bool
	// Witness[i][j] is a lasso in i but not j (nil when Contains).
	Witness [][]*liveness.Lasso
	Samples int
}

// BuildPropertyLattice samples `samples` random lassos over three
// processes (plus the paper's figure histories, which separate
// several pairs) and returns the inclusion matrix.
func BuildPropertyLattice(samples int) *PropertyLattice {
	props := []liveness.Property{
		liveness.LocalProgress,
		liveness.KProgress(2),
		liveness.GlobalProgress, // = 1-progress
		liveness.SoloProgress,
		liveness.PriorityProgress(map[model.Proc]int{1: 3, 2: 2, 3: 1}),
	}
	names := make([]string, len(props))
	for i, p := range props {
		names[i] = p.Name
	}
	n := len(props)
	lat := &PropertyLattice{Names: names, Samples: samples}
	lat.Contains = make([][]bool, n)
	lat.Witness = make([][]*liveness.Lasso, n)
	for i := range lat.Contains {
		lat.Contains[i] = make([]bool, n)
		lat.Witness[i] = make([]*liveness.Lasso, n)
		for j := range lat.Contains[i] {
			lat.Contains[i][j] = true
		}
	}

	consider := func(l *liveness.Lasso) {
		for i, pi := range props {
			if !pi.Contains(l) {
				continue
			}
			for j, pj := range props {
				if i != j && lat.Contains[i][j] && !pj.Contains(l) {
					lat.Contains[i][j] = false
					lat.Witness[i][j] = l
				}
			}
		}
	}

	// The paper's figures first: they separate local/global/solo.
	for _, l := range []*liveness.Lasso{Fig5(), Fig6(), Fig7(), Fig14()} {
		consider(l)
	}
	// Then a deterministic pseudo-random sweep.
	state := uint64(0x9e3779b97f4a7c15)
	for s := 0; s < samples; s++ {
		var raw []uint8
		steps := int(state%12) + 2
		for k := 0; k < steps; k++ {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			raw = append(raw, uint8(state))
		}
		if l := lassoFromBytes(raw); l != nil {
			consider(l)
		}
	}
	return lat
}

// lassoFromBytes builds a well-formed lasso from fuzz bytes (the same
// construction the liveness property tests use).
func lassoFromBytes(raw []uint8) *liveness.Lasso {
	split := 0
	if len(raw) > 0 {
		split = int(raw[0]) % (len(raw) + 1)
	}
	build := func(bs []uint8) model.History {
		b := model.NewBuilder()
		for _, c := range bs {
			p := model.Proc(c%3 + 1)
			x := model.TVar(c / 3 % 2)
			v := model.Value(c / 6 % 3)
			switch c % 5 {
			case 0:
				b.Read(p, x, v)
			case 1:
				b.Write(p, x, v)
			case 2:
				b.Commit(p)
			case 3:
				b.CommitAbort(p)
			case 4:
				b.ReadAbort(p, x)
			}
		}
		return b.History()
	}
	prefix, cycle := build(raw[:split]), build(raw[split:])
	if len(cycle) == 0 {
		return nil
	}
	l, err := liveness.NewLassoWithProcs(prefix, cycle, []model.Proc{1, 2, 3})
	if err != nil {
		return nil
	}
	return l
}

// Format renders the lattice as a matrix: cell (i,j) is "⊆" when every
// sampled member of i is in j, "×" when a witness separates them.
func (lat *PropertyLattice) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", "⊆?")
	for _, n := range lat.Names {
		fmt.Fprintf(&b, " %-12.12s", n)
	}
	b.WriteByte('\n')
	for i, ni := range lat.Names {
		fmt.Fprintf(&b, "%-18.18s", ni)
		for j := range lat.Names {
			cell := "⊆"
			if i == j {
				cell = "="
			} else if !lat.Contains[i][j] {
				cell = "×"
			}
			fmt.Fprintf(&b, " %-12s", cell)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(%d random lassos + the paper's figure histories; × = separated by a concrete witness)\n", lat.Samples)
	return b.String()
}
