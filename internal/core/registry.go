package core

import (
	"livetm/internal/stm"
	"livetm/internal/stm/dstm"
	"livetm/internal/stm/fgptm"
	"livetm/internal/stm/glock"
	"livetm/internal/stm/norec"
	"livetm/internal/stm/ostm"
	"livetm/internal/stm/tiny"
	"livetm/internal/stm/tl2"
	"livetm/internal/stm/twopl"
)

// NamedFactory is a TM implementation registered under its report
// name, together with the liveness class the paper (§3.2.3 and §6)
// predicts for it.
type NamedFactory struct {
	Name    string
	Factory stm.Factory
	// Expected liveness verdicts (see Verdict) per the paper's claims.
	Expected Verdict
	// Ablation marks the variants kept for DESIGN.md §5 rather than
	// the paper's main claims.
	Ablation bool
}

// Verdict is the empirical liveness classification produced by the
// matrix experiment, aligned with the paper's per-TM claims:
//
//   - LocalFaultFree: every process commits in a fault-free run under
//     a fair schedule (the empirical shadow of local progress; by
//     Theorem 1 no opaque TM achieves it under adversarial schedules).
//   - SoloUnderCrash: the worst crash point still leaves the surviving
//     process committing.
//   - SoloUnderParasitic: a parasitic writer (fair and biased
//     schedules) still leaves the correct process committing.
type Verdict struct {
	LocalFaultFree     bool
	SoloUnderCrash     bool
	SoloUnderParasitic bool
}

// Registry returns the TM implementations in report order. With
// ablations set, the CM/fairness/helping ablation variants are
// included.
func Registry(ablations bool) []NamedFactory {
	r := []NamedFactory{
		{
			Name:     "glock",
			Factory:  func(n, v int) stm.TM { return glock.New() },
			Expected: Verdict{LocalFaultFree: true, SoloUnderCrash: false, SoloUnderParasitic: false},
		},
		{
			Name:     "tinystm",
			Factory:  func(n, v int) stm.TM { return tiny.New() },
			Expected: Verdict{LocalFaultFree: true, SoloUnderCrash: false, SoloUnderParasitic: false},
		},
		{
			Name:     "2pl",
			Factory:  func(n, v int) stm.TM { return twopl.New() },
			Expected: Verdict{LocalFaultFree: true, SoloUnderCrash: false, SoloUnderParasitic: false},
		},
		{
			Name:     "tl2",
			Factory:  func(n, v int) stm.TM { return tl2.New() },
			Expected: Verdict{LocalFaultFree: true, SoloUnderCrash: false, SoloUnderParasitic: true},
		},
		{
			Name:     "norec",
			Factory:  func(n, v int) stm.TM { return norec.New() },
			Expected: Verdict{LocalFaultFree: true, SoloUnderCrash: false, SoloUnderParasitic: true},
		},
		{
			Name:     "dstm",
			Factory:  func(n, v int) stm.TM { return dstm.New() },
			Expected: Verdict{LocalFaultFree: true, SoloUnderCrash: true, SoloUnderParasitic: false},
		},
		{
			Name:     "ostm",
			Factory:  func(n, v int) stm.TM { return ostm.New() },
			Expected: Verdict{LocalFaultFree: true, SoloUnderCrash: true, SoloUnderParasitic: true},
		},
		{
			Name: "fgp",
			Factory: func(n, v int) stm.TM {
				tm, err := fgptm.New(n, v)
				if err != nil {
					panic(err) // sizes come from the harness and are valid
				}
				return tm
			},
			Expected: Verdict{LocalFaultFree: true, SoloUnderCrash: true, SoloUnderParasitic: true},
		},
	}
	if ablations {
		r = append(r,
			NamedFactory{
				Name:     "glock-barging",
				Factory:  func(n, v int) stm.TM { return glock.NewBarging() },
				Expected: Verdict{LocalFaultFree: true, SoloUnderCrash: false, SoloUnderParasitic: false},
				Ablation: true,
			},
			NamedFactory{
				Name:     "dstm-abortself",
				Factory:  func(n, v int) stm.TM { return dstm.NewWithCM(dstm.AbortSelf) },
				Expected: Verdict{LocalFaultFree: true, SoloUnderCrash: false, SoloUnderParasitic: false},
				Ablation: true,
			},
			NamedFactory{
				Name:     "ostm-nohelp",
				Factory:  func(n, v int) stm.TM { return ostm.NewWithoutHelping() },
				Expected: Verdict{LocalFaultFree: true, SoloUnderCrash: false, SoloUnderParasitic: true},
				Ablation: true,
			},
			NamedFactory{
				Name:     "dstm-visible",
				Factory:  func(n, v int) stm.TM { return dstm.NewVisible() },
				Expected: Verdict{LocalFaultFree: true, SoloUnderCrash: true, SoloUnderParasitic: false},
				Ablation: true,
			},
			NamedFactory{
				Name:    "dstm-greedy",
				Factory: func(n, v int) stm.TM { return dstm.NewWithCM(dstm.Greedy) },
				// Greedy trades fault tolerance for fault-free
				// starvation freedom: an older crashed or parasitic
				// transaction is never aborted by younger ones.
				Expected: Verdict{LocalFaultFree: true, SoloUnderCrash: false, SoloUnderParasitic: false},
				Ablation: true,
			},
		)
	}
	return r
}

// Lookup returns the named factory, or false.
func Lookup(name string) (NamedFactory, bool) {
	for _, nf := range Registry(true) {
		if nf.Name == name {
			return nf, true
		}
	}
	return NamedFactory{}, false
}
