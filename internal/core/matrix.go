package core

import (
	"fmt"
	"strings"

	"livetm/internal/stm/stmtest"
)

// MatrixConfig parameterizes the liveness-matrix experiment (E20).
// The zero value gets sensible defaults.
type MatrixConfig struct {
	// Steps per scenario run.
	Steps int
	// Sweep is the number of crash offsets tried in the crash-point
	// sweep.
	Sweep int
	// Seed drives the fair schedules.
	Seed uint64
	// Ablations includes the ablation variants.
	Ablations bool
}

func (c MatrixConfig) withDefaults() MatrixConfig {
	if c.Steps == 0 {
		c.Steps = 2000
	}
	if c.Sweep == 0 {
		c.Sweep = 40
	}
	if c.Seed == 0 {
		c.Seed = 12
	}
	return c
}

// MatrixRow is the measured liveness behavior of one TM.
type MatrixRow struct {
	Name string
	// FaultFreeCommits is the per-process commit count under a fair
	// fault-free run with 3 processes (minimum across processes).
	FaultFreeMinCommits int
	// CrashWorstCommits is the survivor's commit count at the worst
	// crash point.
	CrashWorstCommits int
	// ParasiticFairCommits and ParasiticBiasedCommits are the correct
	// process's commits against a parasitic writer under a fair and a
	// 2:1-biased schedule.
	ParasiticFairCommits   int
	ParasiticBiasedCommits int

	Measured Verdict
	Expected Verdict
	Ablation bool
}

// Match reports whether the measured verdict equals the paper's
// prediction.
func (r MatrixRow) Match() bool { return r.Measured == r.Expected }

// RunMatrix measures the liveness matrix across the registry: for
// each TM, fault-free progress, worst-case crash-point behavior, and
// parasitic-writer behavior under fair and biased schedules. Liveness
// claims are worst-case over schedules, so the parasitic verdict is
// the conjunction of both schedules.
func RunMatrix(cfg MatrixConfig) []MatrixRow {
	cfg = cfg.withDefaults()
	var rows []MatrixRow
	for _, nf := range Registry(cfg.Ablations) {
		row := MatrixRow{Name: nf.Name, Expected: nf.Expected, Ablation: nf.Ablation}

		counts := stmtest.FaultFree(nf.Factory, 3, 3*cfg.Steps, cfg.Seed)
		row.FaultFreeMinCommits = -1
		for _, c := range counts {
			if row.FaultFreeMinCommits < 0 || c < row.FaultFreeMinCommits {
				row.FaultFreeMinCommits = c
			}
		}

		row.CrashWorstCommits = stmtest.CrashSweep(nf.Factory, cfg.Steps, cfg.Sweep, cfg.Seed)
		row.ParasiticFairCommits = stmtest.Parasitic(nf.Factory, cfg.Steps, cfg.Seed)
		row.ParasiticBiasedCommits = stmtest.ParasiticBiased(nf.Factory, cfg.Steps, 2)

		row.Measured = Verdict{
			LocalFaultFree:     row.FaultFreeMinCommits > 0,
			SoloUnderCrash:     row.CrashWorstCommits > 0,
			SoloUnderParasitic: row.ParasiticFairCommits > 0 && row.ParasiticBiasedCommits > 0,
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatMatrix renders the matrix as the fixed-width table the paper's
// §3.2.3 claims map onto.
func FormatMatrix(rows []MatrixRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-12s %-12s %-12s %-8s\n", "tm", "fault-free", "crash", "parasitic", "paper?")
	mark := func(v bool) string {
		if v {
			return "yes"
		}
		return "NO"
	}
	for _, r := range rows {
		match := "match"
		if !r.Match() {
			match = "MISMATCH"
		}
		name := r.Name
		if r.Ablation {
			name += "*"
		}
		fmt.Fprintf(&b, "%-16s %-12s %-12s %-12s %-8s\n",
			name,
			fmt.Sprintf("%s(%d)", mark(r.Measured.LocalFaultFree), r.FaultFreeMinCommits),
			fmt.Sprintf("%s(%d)", mark(r.Measured.SoloUnderCrash), r.CrashWorstCommits),
			fmt.Sprintf("%s(%d/%d)", mark(r.Measured.SoloUnderParasitic), r.ParasiticFairCommits, r.ParasiticBiasedCommits),
			match)
	}
	b.WriteString("\ncolumns: fault-free = min commits across 3 fair processes;\n" +
		"crash = survivor commits at the worst crash point;\n" +
		"parasitic = survivor commits under fair / 2:1-biased schedules;\n" +
		"* = ablation variant (DESIGN.md §5)\n")
	return b.String()
}
