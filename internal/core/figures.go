// Package core ties the reproduction together: it provides the
// paper's figures as executable artifacts, the registry of TM
// implementations, the liveness-matrix experiment (DESIGN.md E20),
// and the theorem-evidence runners (E17–E19).
package core

import (
	"livetm/internal/liveness"
	"livetm/internal/model"
)

// Fig1 is Figure 1: T1 reads 0 and stalls; T2 reads 0, writes 1 and
// commits; T1's write is acknowledged and its commit aborted. The
// history is opaque and strictly serializable — and repeating it
// forever starves T1.
func Fig1() model.History {
	return model.History{
		model.Read(1, 0), model.ValueResp(1, 0),
		model.Read(2, 0), model.ValueResp(2, 0),
		model.Write(2, 0, 1), model.OK(2),
		model.TryCommit(2), model.Commit(2),
		model.Write(1, 0, 1), model.OK(1),
		model.TryCommit(1), model.Abort(1),
	}
}

// Fig3 is Figure 3: both transactions read 0, write 1, and commit — a
// lost update; neither opaque nor strictly serializable.
func Fig3() model.History {
	return model.NewBuilder().
		Read(1, 0, 0).
		Read(2, 0, 0).Write(2, 0, 1).Commit(2).
		Write(1, 0, 1).Commit(1).
		History()
}

// Fig4 is Figure 4: T2 commits x:=1 while T1 is live; T1 reads 0 then
// 1 and aborts. Strictly serializable but not opaque.
func Fig4() model.History {
	return model.History{
		model.Read(1, 0), model.ValueResp(1, 0),
		model.Write(2, 0, 1), model.OK(2),
		model.TryCommit(2), model.Commit(2),
		model.Read(1, 0), model.ValueResp(1, 1),
		model.TryCommit(1), model.Abort(1),
	}
}

// Fig5 is an infinite history in the spirit of Figure 5 (local
// progress): both processes run infinitely many read-v/write-(1-v)
// transactions and both commit infinitely often; each also has
// infinitely many aborted attempts.
func Fig5() *liveness.Lasso {
	cycle := model.NewBuilder().
		Read(1, 0, 0).Write(1, 0, 1).Commit(1).
		ReadAbort(2, 0).
		Read(2, 0, 1).Write(2, 0, 0).Commit(2).
		ReadAbort(1, 0).
		History()
	return mustLasso(nil, cycle, nil)
}

// Fig6 is Figure 6 (global but not local progress): p1 commits
// infinitely often, p2 aborts infinitely often and never commits.
func Fig6() *liveness.Lasso {
	cycle := model.NewBuilder().
		Read(1, 0, 0).Write(1, 0, 1).Commit(1).
		Read(2, 0, 1).Write(2, 0, 0).CommitAbort(2).
		Read(1, 0, 1).Write(1, 0, 0).Commit(1).
		Read(2, 0, 0).Write(2, 0, 1).CommitAbort(2).
		History()
	return mustLasso(nil, cycle, nil)
}

// Fig7 is Figure 7 (solo progress): p1 crashes after a read, p2
// commits once and then turns parasitic, p3 runs alone and commits
// forever.
func Fig7() *liveness.Lasso {
	prefix := model.NewBuilder().
		Read(1, 0, 0).
		Write(2, 0, 1).Commit(2).
		History()
	cycle := model.NewBuilder().
		Read(3, 0, 1).Write(3, 0, 0).Commit(3).
		Read(2, 0, 0).Write(2, 0, 1).
		Read(3, 0, 0).Write(3, 0, 1).Commit(3).
		Read(2, 0, 1).Write(2, 0, 0).
		History()
	return mustLasso(prefix, cycle, nil)
}

// Fig8 is the would-be terminating suffix of Algorithm 1 (Figure 8;
// Figure 11 is the same shape for Algorithm 2): both processes read
// v, write v+1, and commit. The proof of Theorem 1 shows it is not
// opaque.
func Fig8(v model.Value) model.History {
	return model.History{
		model.Read(1, 0), model.ValueResp(1, v),
		model.Read(2, 0), model.ValueResp(2, v),
		model.Write(2, 0, v+1), model.OK(2),
		model.TryCommit(2), model.Commit(2),
		model.Write(1, 0, v+1), model.OK(1),
		model.TryCommit(1), model.Commit(1),
	}
}

// Fig11 is Figure 11, identical in shape to Figure 8.
func Fig11(v model.Value) model.History { return Fig8(v) }

// Fig14 is Figure 14 (violates every nonblocking property): like
// Figure 7, but the solo runner p3 aborts forever.
func Fig14() *liveness.Lasso {
	prefix := model.NewBuilder().
		Read(1, 0, 0).
		Write(2, 0, 1).Commit(2).
		History()
	cycle := model.NewBuilder().
		Read(3, 0, 1).Write(3, 0, 0).CommitAbort(3).
		Read(2, 0, 1).Write(2, 0, 0).
		History()
	return mustLasso(prefix, cycle, nil)
}

// Fig16Hex is the history Hex of Figure 16: three processes, two
// binary t-variables x (=x0) and y (=x1), a history of the automaton
// Fgp.
func Fig16Hex() model.History {
	const (
		x = model.TVar(0)
		y = model.TVar(1)
	)
	return model.History{
		model.Read(1, x), model.ValueResp(1, 0),
		model.Write(2, y, 1),
		model.Write(1, x, 1), model.OK(1),
		model.TryCommit(1), model.Commit(1),
		model.Abort(2),
		model.Read(3, y), model.ValueResp(3, 0),
		model.Write(3, y, 1), model.OK(3),
		model.Read(1, y), model.ValueResp(1, 0),
		model.TryCommit(3), model.Commit(3),
		model.TryCommit(1), model.Abort(1),
		model.Read(2, y), model.ValueResp(2, 1),
		model.Read(2, x), model.ValueResp(2, 1),
		model.TryCommit(2), model.Commit(2),
	}
}

func mustLasso(prefix, cycle model.History, procs []model.Proc) *liveness.Lasso {
	l, err := liveness.NewLassoWithProcs(prefix, cycle, procs)
	if err != nil {
		// The figure constructors are package constants in spirit;
		// a construction failure is a programming error caught by the
		// package tests.
		panic(err)
	}
	return l
}
