package core

import (
	"fmt"
	"math/rand"
	"strings"

	"livetm/internal/adversary"
	"livetm/internal/fgp"
	"livetm/internal/liveness"
	"livetm/internal/model"
	"livetm/internal/safety"
)

// Theorem1Outcome is the result of the impossibility adversary against
// one TM.
type Theorem1Outcome struct {
	TM       string
	Strategy string // "algorithm1" or "algorithm2"
	Result   adversary.Result
	// Starved reports the expected outcome: p1 never committed.
	Starved bool
	// Blocked reports that the TM blocked the adversary (the global
	// lock case): no rounds completed and someone is stuck inside an
	// operation.
	Blocked bool
}

// Theorem1Evidence runs both adversary strategies against every TM in
// the registry and reports whether local progress failed everywhere —
// the operational content of Theorem 1.
func Theorem1Evidence(rounds int, ablations bool) []Theorem1Outcome {
	var out []Theorem1Outcome
	for _, nf := range Registry(ablations) {
		for _, strat := range []string{"algorithm1", "algorithm2"} {
			cfg := adversary.Config{Rounds: rounds, MaxSteps: 4000 * rounds, Seed: 3}
			var res adversary.Result
			if strat == "algorithm1" {
				res = adversary.Algorithm1(nf.Factory, cfg)
			} else {
				res = adversary.Algorithm2(nf.Factory, cfg)
			}
			blocked := res.Rounds == 0 && anyPending(res)
			out = append(out, Theorem1Outcome{
				TM:       nf.Name,
				Strategy: strat,
				Result:   res,
				Starved:  !res.P1Committed,
				Blocked:  blocked,
			})
		}
	}
	return out
}

func anyPending(res adversary.Result) bool {
	for _, pending := range res.Stats.PendingInv {
		if pending {
			return true
		}
	}
	return false
}

// FormatTheorem1 renders the evidence table.
func FormatTheorem1(outs []Theorem1Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-12s %-8s %-10s %-10s %-8s\n",
		"tm", "strategy", "rounds", "p1-commits", "p2-commits", "mode")
	for _, o := range outs {
		mode := "starved"
		if o.Blocked {
			mode = "blocked"
		}
		if !o.Starved {
			mode = "P1-COMMITTED(!)"
		}
		fmt.Fprintf(&b, "%-16s %-12s %-8d %-10d %-10d %-8s\n",
			o.TM, o.Strategy, o.Result.Rounds,
			o.Result.Stats.Commits[1], o.Result.Stats.Commits[2], mode)
	}
	b.WriteString("\nTheorem 1: against every opaque TM, p1 never commits — local progress fails\n" +
		"either by starvation (p1 aborted forever) or by blocking (nobody progresses).\n")
	return b.String()
}

// Theorem2Evidence checks the generalization: the histories produced
// by the Theorem 1 runs, continued forever, violate every nonblocking
// and biprogressing property. Operationally we re-express each run as
// a lasso shape — p2 committing forever while p1 aborts forever (or
// both block) — and evaluate the class predicates of §5.
func Theorem2Evidence() []string {
	var notes []string
	// The starvation shape: p1 aborted forever, p2 committing forever
	// (Figures 10/13) — two correct processes, one progressing.
	starve := mustLasso(nil, model.NewBuilder().
		Read(2, 0, 0).Write(2, 0, 1).Commit(2).
		Read(1, 0, 1).WriteAbort(1, 0, 2).
		Read(2, 0, 1).Write(2, 0, 0).Commit(2).
		Read(1, 0, 0).WriteAbort(1, 0, 1).
		History(), nil)
	if liveness.ViolatesBiprogressing(starve) {
		notes = append(notes, "starvation run: ≥2 correct processes, <2 progressing — no biprogressing property contains it")
	}
	if liveness.LocalProgress.Contains(starve) {
		notes = append(notes, "ERROR: starvation run must not ensure local progress")
	}
	// The blocking shape: one process commits nothing and hangs inside
	// an operation, while the other also cannot proceed (the glock
	// case) — the solo runner starves.
	block := mustLasso(
		model.NewBuilder().Read(1, 0, 0).History(),             // p1 holds the lock, then crashes
		model.History{model.Read(2, 0)}.Append(model.Abort(2)), // p2 aborted/blocked forever
		nil)
	if p, ok := block.RunsAlone(); ok && !block.MakesProgress(p) {
		notes = append(notes, "blocking run: the solo correct process starves — no nonblocking property contains it")
	}
	return notes
}

// FormalVerdicts evaluates the named TM-liveness properties on an
// adversary run, read as an infinite history via ClassifyRun (the
// observed tail repeats forever). It closes the loop between the
// empirical Theorem 1 runs and the formal property definitions: for
// every aborting TM the run's lasso fails local progress and
// 2-progress while satisfying global progress.
//
// Runs against blocking TMs have an empty tail (every process is
// parked inside an operation) and cannot be classified this way;
// ClassifyRun's error is propagated.
func FormalVerdicts(res adversary.Result) (map[string]bool, error) {
	l, err := liveness.ClassifyRun(res.History, liveness.SplitHalf(res.History), nil)
	if err != nil {
		return nil, fmt.Errorf("formalize adversary run: %w", err)
	}
	return map[string]bool{
		"local":      liveness.LocalProgress.Contains(l),
		"global":     liveness.GlobalProgress.Contains(l),
		"solo":       liveness.SoloProgress.Contains(l),
		"2-progress": liveness.KProgress(2).Contains(l),
	}, nil
}

// Theorem3Outcome summarizes the Fgp validation (E19).
type Theorem3Outcome struct {
	SchedulesChecked int
	PrefixesOpaque   int
	Commits          int
	Violation        string // non-empty on failure
}

// Theorem3Evidence validates the corrected Fgp automaton: opacity of
// every checked prefix over random schedules, and steady commits
// (global progress) in long runs with random crash/parasitic faults.
func Theorem3Evidence(schedules int, opsPerRun int) Theorem3Outcome {
	out := Theorem3Outcome{}
	for seed := int64(1); seed <= int64(schedules); seed++ {
		eng, err := fgp.NewEngine(3, 2, fgp.Corrected)
		if err != nil {
			out.Violation = err.Error()
			return out
		}
		rng := rand.New(rand.NewSource(seed))
		crashed := map[model.Proc]bool{}
		for i := 0; i < opsPerRun; i++ {
			p := model.Proc(rng.Intn(3) + 1)
			if crashed[p] {
				continue
			}
			if rng.Intn(50) == 0 {
				crashed[p] = true // crash: p stops invoking forever
				continue
			}
			switch rng.Intn(4) {
			case 0, 1:
				_, _, err = eng.Read(p, model.TVar(rng.Intn(2)))
			case 2:
				_, err = eng.Write(p, model.TVar(rng.Intn(2)), model.Value(rng.Intn(3)))
			case 3:
				var ok bool
				ok, err = eng.TryCommit(p)
				if ok {
					out.Commits++
				}
			}
			if err != nil {
				out.Violation = fmt.Sprintf("engine error: %v", err)
				return out
			}
		}
		out.SchedulesChecked++
		h := eng.History()
		if len(h) > 44 {
			h = h[:44] // keep the opacity check tractable
		}
		res, err := safety.CheckOpacity(h)
		if err != nil {
			out.Violation = err.Error()
			return out
		}
		if !res.Holds {
			out.Violation = fmt.Sprintf("seed %d: non-opaque prefix: %s", seed, res.Reason)
			return out
		}
		out.PrefixesOpaque++
	}
	return out
}
