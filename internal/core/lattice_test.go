package core

import (
	"strings"
	"testing"
)

// TestPropertyLattice pins the inclusion structure of the property
// family: local ⊆ 2-progress ⊆ global ⊆ solo (with all inclusions
// strict), and priority progress incomparable with the middle layers.
func TestPropertyLattice(t *testing.T) {
	lat := BuildPropertyLattice(3000)
	idx := map[string]int{}
	for i, n := range lat.Names {
		idx[n] = i
	}
	local, k2 := idx["local progress"], idx["2-progress"]
	global, solo := idx["global progress"], idx["solo progress"]
	prio := idx["priority progress"]

	mustContain := [][2]int{
		{local, k2}, {local, global}, {local, solo},
		{k2, global}, {k2, solo},
		{global, solo},
		{local, prio}, // all-maximal demands nothing local doesn't give
	}
	for _, pair := range mustContain {
		if !lat.Contains[pair[0]][pair[1]] {
			t.Errorf("%s ⊆ %s refuted by witness %v",
				lat.Names[pair[0]], lat.Names[pair[1]], lat.Witness[pair[0]][pair[1]])
		}
	}
	mustSeparate := [][2]int{
		{solo, global}, {global, k2}, {k2, local},
		{global, local}, {solo, local},
		{prio, local},  // priority progress does not demand everyone
		{global, prio}, // some progressing process may be low-priority
		{prio, global}, // a no-correct-max corner can still separate? see below
	}
	for _, pair := range mustSeparate {
		i, j := pair[0], pair[1]
		if i == prio && j == global {
			// priority ⊆ global actually holds when the priority map
			// covers every process (the max-priority correct process
			// progresses, hence someone does). Skip: not a required
			// separation.
			continue
		}
		if lat.Contains[i][j] {
			t.Errorf("%s ⊆ %s not separated after %d samples", lat.Names[i], lat.Names[j], lat.Samples)
		}
	}

	out := lat.Format()
	for _, want := range []string{"local progress", "solo progress", "×", "="} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted lattice missing %q:\n%s", want, out)
		}
	}
}
