package core

import (
	"strings"
	"testing"

	"livetm/internal/adversary"
	"livetm/internal/fgp"
	"livetm/internal/liveness"
	"livetm/internal/model"
	"livetm/internal/safety"
)

// TestFig01 pins Figure 1's verdicts: opaque, strictly serializable.
func TestFig01(t *testing.T) {
	op, err := safety.CheckOpacity(Fig1())
	if err != nil {
		t.Fatal(err)
	}
	if !op.Holds {
		t.Errorf("figure 1 must be opaque: %s", op.Reason)
	}
	ss, err := safety.CheckStrictSerializability(Fig1())
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Holds {
		t.Error("figure 1 must be strictly serializable")
	}
}

func TestFigureSafetyVerdicts(t *testing.T) {
	tests := []struct {
		name   string
		h      model.History
		opaque bool
		ss     bool
	}{
		{"fig3", Fig3(), false, false},
		{"fig4", Fig4(), false, true},
		{"fig8(v=0)", Fig8(0), false, false},
		{"fig11(v=7)", Fig11(7), false, false},
		{"fig16", Fig16Hex(), true, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			op, err := safety.CheckOpacity(tt.h)
			if err != nil {
				t.Fatal(err)
			}
			if op.Holds != tt.opaque {
				t.Errorf("opaque = %v, want %v (%s)", op.Holds, tt.opaque, op.Reason)
			}
			ss, err := safety.CheckStrictSerializability(tt.h)
			if err != nil {
				t.Fatal(err)
			}
			if ss.Holds != tt.ss {
				t.Errorf("strictly serializable = %v, want %v", ss.Holds, tt.ss)
			}
		})
	}
}

func TestLassoFigures(t *testing.T) {
	if !liveness.LocalProgress.Contains(Fig5()) {
		t.Error("figure 5 ensures local progress")
	}
	l6 := Fig6()
	if liveness.LocalProgress.Contains(l6) || !liveness.GlobalProgress.Contains(l6) {
		t.Error("figure 6 ensures global but not local progress")
	}
	l7 := Fig7()
	if !liveness.SoloProgress.Contains(l7) {
		t.Error("figure 7 ensures solo progress")
	}
	if p, ok := l7.RunsAlone(); !ok || p != 3 {
		t.Error("p3 runs alone in figure 7")
	}
	l14 := Fig14()
	if !liveness.ViolatesNonblocking(l14) {
		t.Error("figure 14 violates every nonblocking property")
	}
}

func TestFig16IsFgpHistory(t *testing.T) {
	for _, variant := range []fgp.Variant{fgp.Faithful, fgp.Corrected} {
		a, err := fgp.New(3, 2, variant)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.IOAutomaton().Replay(Fig16Hex()); err != nil {
			t.Errorf("Hex must replay under %s: %v", variant, err)
		}
	}
}

func TestRegistry(t *testing.T) {
	base := Registry(false)
	if len(base) != 8 {
		t.Fatalf("base registry has %d entries, want 8", len(base))
	}
	all := Registry(true)
	if len(all) != 13 {
		t.Fatalf("full registry has %d entries, want 13", len(all))
	}
	seen := map[string]bool{}
	for _, nf := range all {
		if seen[nf.Name] {
			t.Errorf("duplicate name %q", nf.Name)
		}
		seen[nf.Name] = true
		tm := nf.Factory(4, 2)
		if tm == nil {
			t.Fatalf("%s factory returned nil", nf.Name)
		}
	}
	if _, ok := Lookup("tl2"); !ok {
		t.Error("Lookup(tl2) must succeed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) must fail")
	}
}

// TestLivenessMatrix is E20: the measured matrix must match the
// paper's §3.2.3 claims for every TM, including the ablations.
func TestLivenessMatrix(t *testing.T) {
	rows := RunMatrix(MatrixConfig{Steps: 1200, Sweep: 30, Ablations: true})
	if len(rows) != 13 {
		t.Fatalf("matrix has %d rows, want 13", len(rows))
	}
	for _, r := range rows {
		if !r.Match() {
			t.Errorf("%s: measured %+v, paper predicts %+v "+
				"(fault-free min %d, crash worst %d, parasitic %d/%d)",
				r.Name, r.Measured, r.Expected,
				r.FaultFreeMinCommits, r.CrashWorstCommits,
				r.ParasiticFairCommits, r.ParasiticBiasedCommits)
		}
	}
	table := FormatMatrix(rows)
	for _, want := range []string{"glock", "tl2", "fgp", "match"} {
		if !strings.Contains(table, want) {
			t.Errorf("formatted matrix missing %q:\n%s", want, table)
		}
	}
	if strings.Contains(table, "MISMATCH") {
		t.Errorf("matrix reports mismatches:\n%s", table)
	}
}

// TestTheorem1Evidence is E17: local progress fails against every TM.
func TestTheorem1Evidence(t *testing.T) {
	outs := Theorem1Evidence(5, true)
	if len(outs) != 26 { // 13 TMs × 2 strategies
		t.Fatalf("got %d outcomes, want 26", len(outs))
	}
	for _, o := range outs {
		if !o.Starved {
			t.Errorf("%s/%s: p1 committed — impossibility breached", o.TM, o.Strategy)
		}
	}
	table := FormatTheorem1(outs)
	if !strings.Contains(table, "starved") && !strings.Contains(table, "blocked") {
		t.Errorf("table must classify outcomes:\n%s", table)
	}
	if strings.Contains(table, "P1-COMMITTED") {
		t.Errorf("table reports a breach:\n%s", table)
	}
}

// TestFormalVerdicts closes the loop: the Theorem 1 runs, read as
// infinite histories, formally fail local progress and 2-progress
// while satisfying global progress.
func TestFormalVerdicts(t *testing.T) {
	for _, name := range []string{"dstm", "tl2", "tinystm", "ostm", "fgp", "norec"} {
		nf, ok := Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		res := adversary.Algorithm1(nf.Factory, adversary.Config{Rounds: 8, Seed: 3})
		v, err := FormalVerdicts(res)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v["local"] {
			t.Errorf("%s: run must fail local progress", name)
		}
		if v["2-progress"] {
			t.Errorf("%s: run must fail 2-progress", name)
		}
		if !v["global"] {
			t.Errorf("%s: run must satisfy global progress (p2 keeps committing)", name)
		}
	}
}

// TestTheorem2Evidence is E18.
func TestTheorem2Evidence(t *testing.T) {
	notes := Theorem2Evidence()
	if len(notes) != 2 {
		t.Fatalf("want 2 evidence notes, got %v", notes)
	}
	for _, n := range notes {
		if strings.Contains(n, "ERROR") {
			t.Errorf("evidence note reports an error: %s", n)
		}
	}
}

// TestTheorem3Evidence is E19.
func TestTheorem3Evidence(t *testing.T) {
	out := Theorem3Evidence(10, 150)
	if out.Violation != "" {
		t.Fatalf("Fgp violated Theorem 3: %s", out.Violation)
	}
	if out.SchedulesChecked != 10 || out.PrefixesOpaque != 10 {
		t.Errorf("checked %d schedules, %d opaque prefixes; want 10, 10",
			out.SchedulesChecked, out.PrefixesOpaque)
	}
	if out.Commits == 0 {
		t.Error("Fgp must commit during the runs")
	}
}
