package twopl

import (
	"testing"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/stmtest"
)

func factory(nProcs, nVars int) stm.TM { return New() }

func TestConformance(t *testing.T) {
	stmtest.Conformance(t, factory)
}

func TestFaultFreeProgress(t *testing.T) {
	counts := stmtest.FaultFree(factory, 3, 8000, 67)
	for p, c := range counts {
		if c == 0 {
			t.Errorf("process %d never committed fault-free", p)
		}
	}
}

// TestDeadlockDetected: the classic upgrade deadlock — two readers of
// the same variable both upgrade to write. One must be chosen as the
// victim and aborted; the other commits.
func TestDeadlockDetected(t *testing.T) {
	tm := New()
	s := sim.New(&sim.RoundRobin{})
	defer s.Close()
	results := map[model.Proc]stm.Status{}
	body := func(env *sim.Env) {
		p := env.Proc()
		if _, st := tm.Read(env, 0); st != stm.OK {
			results[p] = stm.Aborted
			return
		}
		if st := tm.Write(env, 0, model.Value(p)); st != stm.OK {
			results[p] = stm.Aborted
			return
		}
		results[p] = tm.TryCommit(env)
	}
	_ = s.Spawn(1, body)
	_ = s.Spawn(2, body)
	if steps := s.Run(10000); steps >= 10000 {
		t.Fatal("deadlock was not resolved: the run wedged")
	}
	aborted, committed := 0, 0
	for _, st := range results {
		if st == stm.OK {
			committed++
		} else {
			aborted++
		}
	}
	if committed != 1 || aborted != 1 {
		t.Fatalf("results = %v; want exactly one victim and one winner", results)
	}
}

// TestReadersShareWritersExclude: two concurrent readers proceed; a
// writer waits for both.
func TestReadersShareWritersExclude(t *testing.T) {
	tm := New()
	s := sim.New(&sim.RoundRobin{})
	defer s.Close()
	var reads, writes int
	reader := func(env *sim.Env) {
		if _, st := tm.Read(env, 0); st == stm.OK {
			reads++
		}
		// Hold the read lock for a while before committing.
		for i := 0; i < 20; i++ {
			env.Yield()
		}
		tm.TryCommit(env)
	}
	_ = s.Spawn(1, reader)
	_ = s.Spawn(2, reader)
	_ = s.Spawn(3, func(env *sim.Env) {
		if st := tm.Write(env, 0, 9); st == stm.OK {
			writes++
		}
		tm.TryCommit(env)
	})
	s.Run(20000)
	if reads != 2 {
		t.Errorf("reads = %d, want 2 (shared locks coexist)", reads)
	}
	if writes != 1 {
		t.Errorf("writes = %d, want 1 (the writer proceeds after the readers)", writes)
	}
	env := sim.Background(4)
	v, st := tm.Read(env, 0)
	if st != stm.OK || v != 9 {
		t.Fatalf("final value = %d,%v; want 9", v, st)
	}
}

// TestCrashHoldingLockBlocks: a crashed lock holder blocks conflicting
// transactions forever — but by blocking, not by aborting them.
func TestCrashHoldingLockBlocks(t *testing.T) {
	worst := stmtest.CrashSweep(factory, 600, 50, 71)
	if worst != 0 {
		t.Errorf("worst-case survivor commits = %d, want 0", worst)
	}
}

// TestParasiticWriterBlocks: a parasitic writer holds its exclusive
// lock forever.
func TestParasiticWriterBlocks(t *testing.T) {
	if got := stmtest.Parasitic(factory, 4000, 71); got != 0 {
		t.Errorf("survivor commits = %d, want 0", got)
	}
}

// TestBlockedNotAborted: distinguishing 2PL's failure mode from the
// encounter-time TMs — the victim of a crashed holder is stuck inside
// its operation (pending invocation), not aborted over and over.
func TestBlockedNotAborted(t *testing.T) {
	tm := New()
	rec := stm.NewRecorder(tm)
	s := sim.New(&sim.RoundRobin{})
	defer s.Close()
	_ = s.Spawn(1, func(env *sim.Env) {
		rec.Write(env, 0, 1) // exclusive lock, held at crash
		for {
			env.Yield()
		}
	})
	s.Run(30)
	s.Crash(1)
	_ = s.Spawn(2, func(env *sim.Env) {
		rec.Read(env, 0) // blocks forever
	})
	s.Run(2000)
	stats := stm.Summarize(rec.History())
	if !stats.PendingInv[2] {
		t.Error("p2 must be blocked inside its read (pending invocation)")
	}
	if stats.Aborts[2] != 0 {
		t.Errorf("p2 received %d aborts; 2PL blocks rather than aborts", stats.Aborts[2])
	}
}

// TestAbortRestoresPreImages: the deadlock victim's in-place writes
// are rolled back.
func TestAbortRestoresPreImages(t *testing.T) {
	tm := New()
	s := sim.New(&sim.RoundRobin{})
	defer s.Close()
	// p1 writes x0 then tries x1; p2 writes x1 then tries x0: a
	// write-write deadlock. The victim's write must be undone.
	outcome := map[model.Proc]stm.Status{}
	mk := func(a, b model.TVar) func(*sim.Env) {
		return func(env *sim.Env) {
			p := env.Proc()
			if st := tm.Write(env, a, 100+model.Value(p)); st != stm.OK {
				outcome[p] = stm.Aborted
				return
			}
			if st := tm.Write(env, b, 200+model.Value(p)); st != stm.OK {
				outcome[p] = stm.Aborted
				return
			}
			outcome[p] = tm.TryCommit(env)
		}
	}
	_ = s.Spawn(1, mk(0, 1))
	_ = s.Spawn(2, mk(1, 0))
	if steps := s.Run(10000); steps >= 10000 {
		t.Fatal("write-write deadlock not resolved")
	}
	env := sim.Background(3)
	v0, _ := tm.Read(env, 0)
	v1, _ := tm.Read(env, 1)
	if st := tm.TryCommit(env); st != stm.OK {
		t.Fatal("audit commit")
	}
	// Exactly one of the two committed; both variables must reflect
	// only the winner's transaction.
	switch {
	case outcome[1] == stm.OK && outcome[2] == stm.Aborted:
		if v0 != 101 || v1 != 201 {
			t.Fatalf("x0=%d x1=%d; want p1's 101/201 only", v0, v1)
		}
	case outcome[2] == stm.OK && outcome[1] == stm.Aborted:
		if v1 != 102 || v0 != 202 {
			t.Fatalf("x0=%d x1=%d; want p2's 202/102 only", v0, v1)
		}
	default:
		t.Fatalf("outcomes = %v; want exactly one winner", outcome)
	}
}
