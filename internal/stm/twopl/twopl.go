// Package twopl implements strict two-phase locking with deadlock
// detection — the classic blocking concurrency control, included
// because the paper's model deliberately covers blocking TMs (the
// global lock of §1.1 is its degenerate form). Transactions take
// per-variable read/write locks as they go and hold them to the end;
// a lock conflict blocks (yield-spins) unless it would close a cycle
// in the wait-for graph, in which case the requester aborts.
//
// Liveness class: like TinySTM's row — solo progress only in systems
// that are both crash-free and parasitic-free — but for blocking
// reasons: a crashed or parasitic lock holder blocks conflicting
// transactions *without* aborting them (their operations simply never
// return), whereas encounter-time TMs abort them forever. Deadlock
// detection keeps the fault-free case live where naive 2PL would hang.
package twopl

import (
	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

type lockMode int

const (
	unlocked lockMode = iota
	shared
	exclusive
)

type varLock struct {
	mode    lockMode
	holders map[model.Proc]bool // readers under shared, one writer under exclusive
	value   model.Value
	undo    model.Value // pre-image for the exclusive holder
}

type txn struct {
	active bool
	locked []model.TVar // variables this transaction holds (in order)
}

// TM is the strict-2PL TM.
type TM struct {
	vars    map[model.TVar]*varLock
	txns    map[model.Proc]*txn
	waiting map[model.Proc]model.TVar // who waits for which variable
}

var _ stm.TM = (*TM)(nil)

// New returns an empty instance.
func New() *TM {
	return &TM{
		vars:    make(map[model.TVar]*varLock),
		txns:    make(map[model.Proc]*txn),
		waiting: make(map[model.Proc]model.TVar),
	}
}

// Name implements stm.TM.
func (t *TM) Name() string { return "2pl" }

func (t *TM) lk(x model.TVar) *varLock {
	l, ok := t.vars[x]
	if !ok {
		l = &varLock{holders: make(map[model.Proc]bool), value: model.InitialValue}
		t.vars[x] = l
	}
	return l
}

func (t *TM) txn(p model.Proc) *txn {
	tx, ok := t.txns[p]
	if !ok || !tx.active {
		tx = &txn{active: true}
		t.txns[p] = tx
	}
	return tx
}

// wouldDeadlock reports whether p waiting for x closes a cycle in the
// wait-for graph: following holders of x through their own waits
// reaches p.
func (t *TM) wouldDeadlock(p model.Proc, x model.TVar) bool {
	visited := make(map[model.Proc]bool)
	var stack []model.Proc
	for q := range t.lk(x).holders {
		if q != p {
			stack = append(stack, q)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if q == p {
			return true
		}
		if visited[q] {
			continue
		}
		visited[q] = true
		if wx, waits := t.waiting[q]; waits {
			for r := range t.lk(wx).holders {
				if r != q {
					stack = append(stack, r)
				}
			}
		}
	}
	return false
}

// grantable reports whether p can take x in the given mode now.
func (t *TM) grantable(p model.Proc, x model.TVar, mode lockMode) bool {
	l := t.lk(x)
	switch l.mode {
	case unlocked:
		return true
	case shared:
		if mode == shared {
			return true
		}
		// Upgrade allowed only when p is the sole reader.
		return len(l.holders) == 1 && l.holders[p]
	default: // exclusive
		return l.holders[p]
	}
}

// acquire blocks (yield-spinning) until p holds x in the requested
// mode, or returns false when waiting would deadlock (the requester is
// chosen as the victim).
func (t *TM) acquire(env *sim.Env, p model.Proc, x model.TVar, mode lockMode) bool {
	tx := t.txn(p)
	for {
		env.Yield()
		if t.grantable(p, x, mode) {
			l := t.lk(x)
			if !l.holders[p] {
				l.holders[p] = true
				tx.locked = append(tx.locked, x)
			}
			if mode == exclusive && l.mode != exclusive {
				l.mode = exclusive
				l.undo = l.value
			} else if l.mode == unlocked {
				l.mode = shared
			}
			delete(t.waiting, p)
			return true
		}
		if t.wouldDeadlock(p, x) {
			delete(t.waiting, p)
			t.rollback(p)
			return false
		}
		t.waiting[p] = x
	}
}

// rollback restores pre-images of exclusively held variables and
// releases all of p's locks.
func (t *TM) rollback(p model.Proc) {
	tx := t.txns[p]
	for _, x := range tx.locked {
		l := t.lk(x)
		if !l.holders[p] {
			continue
		}
		if l.mode == exclusive {
			l.value = l.undo
		}
		delete(l.holders, p)
		if len(l.holders) == 0 {
			l.mode = unlocked
		}
	}
	tx.active = false
}

// release frees all of p's locks, keeping the written values.
func (t *TM) release(p model.Proc) {
	tx := t.txns[p]
	for _, x := range tx.locked {
		l := t.lk(x)
		delete(l.holders, p)
		if len(l.holders) == 0 {
			l.mode = unlocked
		}
	}
	tx.active = false
}

// Read implements stm.TM: take a shared lock and read in place.
func (t *TM) Read(env *sim.Env, x model.TVar) (model.Value, stm.Status) {
	p := env.Proc()
	t.txn(p)
	if !t.acquire(env, p, x, shared) {
		return 0, stm.Aborted
	}
	env.Yield()
	return t.lk(x).value, stm.OK
}

// Write implements stm.TM: take an exclusive lock (possibly an
// upgrade) and write in place with an undo image.
func (t *TM) Write(env *sim.Env, x model.TVar, v model.Value) stm.Status {
	p := env.Proc()
	t.txn(p)
	if !t.acquire(env, p, x, exclusive) {
		return stm.Aborted
	}
	env.Yield()
	t.lk(x).value = v
	return stm.OK
}

// TryCommit implements stm.TM: strict 2PL commits by releasing.
func (t *TM) TryCommit(env *sim.Env) stm.Status {
	p := env.Proc()
	t.txn(p)
	env.Yield()
	t.release(p)
	return stm.OK
}
