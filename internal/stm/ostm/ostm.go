// Package ostm implements a lock-free TM in the style of OSTM/FSTM
// [13]: deferred updates, per-variable versions, and a helping commit
// protocol. A committing transaction publishes a commit descriptor on
// each variable of its write set (in ascending variable order); any
// process that encounters an in-flight descriptor *helps* it to
// completion instead of waiting. A process that crashes in the middle
// of its commit therefore cannot block anyone — the next process to
// touch an acquired variable finishes the commit on its behalf.
//
// This is the mechanism behind the paper's remark (§1.3, §6) that
// OSTM ensures opacity and global progress in any fault-prone system:
// individual transactions can starve (validation can keep failing),
// but some transaction always completes.
//
// The helping ablation (DESIGN.md §5): NewWithoutHelping returns a
// variant that aborts instead of helping; with it a crashed committer
// leaves its descriptor in place forever and every conflicting
// transaction aborts indefinitely — global progress degrades to solo
// progress in crash-free systems.
package ostm

import (
	"sort"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

type status int

const (
	active status = iota + 1
	successful
	failed
)

type writeEntry struct {
	x model.TVar
	v model.Value
}

type desc struct {
	st      status
	reads   map[model.TVar]uint64
	writes  []writeEntry // ascending by variable
	applied map[model.TVar]bool
}

type varRecord struct {
	value   model.Value
	version uint64
	d       *desc // in-flight commit descriptor, nil when none
}

type txn struct {
	activ  bool
	reads  map[model.TVar]uint64
	writes map[model.TVar]model.Value
}

// TM is the OSTM-style TM.
type TM struct {
	helping bool
	vars    map[model.TVar]*varRecord
	txns    map[model.Proc]*txn
}

var _ stm.TM = (*TM)(nil)

// New returns an instance with helping enabled.
func New() *TM {
	return &TM{helping: true, vars: map[model.TVar]*varRecord{}, txns: map[model.Proc]*txn{}}
}

// NewWithoutHelping returns the ablation variant that aborts on
// encountering a foreign in-flight descriptor instead of helping it.
func NewWithoutHelping() *TM {
	return &TM{helping: false, vars: map[model.TVar]*varRecord{}, txns: map[model.Proc]*txn{}}
}

// Name implements stm.TM.
func (t *TM) Name() string {
	if !t.helping {
		return "ostm-nohelp"
	}
	return "ostm"
}

func (t *TM) rec(x model.TVar) *varRecord {
	r, ok := t.vars[x]
	if !ok {
		r = &varRecord{value: model.InitialValue}
		t.vars[x] = r
	}
	return r
}

func (t *TM) txn(p model.Proc) *txn {
	tx, ok := t.txns[p]
	if !ok || !tx.activ {
		tx = &txn{
			activ:  true,
			reads:  make(map[model.TVar]uint64),
			writes: make(map[model.TVar]model.Value),
		}
		t.txns[p] = tx
	}
	return tx
}

// help drives a foreign descriptor to completion. It runs within one
// scheduler slice (no yields), so its read-modify-write sequence is
// atomic. Recursion terminates because descriptors acquire variables
// in ascending order: a cycle of descriptors each waiting on a
// variable held by the next would need some descriptor to acquire
// descending.
func (t *TM) help(d *desc) {
	if d.st == active {
		for _, w := range d.writes {
			if d.st != active {
				break
			}
			r := t.rec(w.x)
			if r.d == d {
				continue
			}
			if r.d != nil {
				t.help(r.d)
			}
			if d.st != active {
				break
			}
			r.d = d
		}
		if d.st == active {
			t.decide(d)
		}
	}
	t.cleanup(d)
}

// decide validates the descriptor's read set and fixes the outcome.
func (t *TM) decide(d *desc) {
	for x, ver := range d.reads {
		r := t.rec(x)
		if r.version != ver || (r.d != nil && r.d != d) {
			d.st = failed
			return
		}
	}
	d.st = successful
}

// cleanup applies a decided descriptor's writes (once) and clears its
// variable pointers. It is idempotent and safe to run by the owner and
// any number of helpers.
func (t *TM) cleanup(d *desc) {
	for _, w := range d.writes {
		r := t.rec(w.x)
		if r.d != d {
			continue
		}
		if d.st == successful && !d.applied[w.x] {
			r.value = w.v
			r.version++
			d.applied[w.x] = true
		}
		r.d = nil
	}
}

// validate checks the transaction's reads against current versions.
func (t *TM) validate(tx *txn) bool {
	for x, ver := range tx.reads {
		if t.rec(x).version != ver {
			return false
		}
	}
	return true
}

// Read implements stm.TM.
func (t *TM) Read(env *sim.Env, x model.TVar) (model.Value, stm.Status) {
	p := env.Proc()
	tx := t.txn(p)
	if v, buffered := tx.writes[x]; buffered {
		env.Yield()
		return v, stm.OK
	}
	env.Yield()
	r := t.rec(x)
	if r.d != nil {
		if !t.helping {
			tx.activ = false
			return 0, stm.Aborted
		}
		t.help(r.d)
	}
	if ver, seen := tx.reads[x]; seen && ver != r.version {
		tx.activ = false
		return 0, stm.Aborted
	}
	tx.reads[x] = r.version
	if !t.validate(tx) {
		tx.activ = false
		return 0, stm.Aborted
	}
	return r.value, stm.OK
}

// Write implements stm.TM: buffered until commit.
func (t *TM) Write(env *sim.Env, x model.TVar, v model.Value) stm.Status {
	p := env.Proc()
	tx := t.txn(p)
	env.Yield()
	tx.writes[x] = v
	return stm.OK
}

// TryCommit implements stm.TM.
func (t *TM) TryCommit(env *sim.Env) stm.Status {
	p := env.Proc()
	tx := t.txn(p)
	env.Yield()
	if len(tx.writes) == 0 {
		ok := t.validate(tx)
		tx.activ = false
		if ok {
			return stm.OK
		}
		return stm.Aborted
	}

	d := &desc{
		st:      active,
		reads:   tx.reads,
		applied: make(map[model.TVar]bool),
	}
	order := make([]model.TVar, 0, len(tx.writes))
	for x := range tx.writes {
		order = append(order, x)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, x := range order {
		d.writes = append(d.writes, writeEntry{x: x, v: tx.writes[x]})
	}

	// Acquisition phase, with a crash point before each variable. A
	// crash here leaves d active and partially installed; the next
	// process to touch an installed variable helps d to completion.
	for _, w := range d.writes {
		env.Yield()
		if d.st != active {
			break // a helper already finished the commit
		}
		r := t.rec(w.x)
		if r.d == d {
			continue
		}
		if r.d != nil {
			if !t.helping {
				// Ablation variant: abort instead of helping. Undo our
				// own partial acquisition so we do not become a blocker
				// ourselves.
				d.st = failed
				t.cleanup(d)
				tx.activ = false
				return stm.Aborted
			}
			t.help(r.d)
		}
		if d.st != active {
			break
		}
		r.d = d
	}
	// Crash point between acquisition and decision: the descriptor is
	// fully installed but undecided. This is the window in which a
	// crashed committer depends on helpers; without helping (the
	// ablation variant) the descriptor blocks conflicting transactions
	// forever. The decision and cleanup then form one atomic slice.
	env.Yield()
	if d.st == active {
		t.decide(d)
	}
	t.cleanup(d)
	tx.activ = false
	if d.st == successful {
		return stm.OK
	}
	return stm.Aborted
}
