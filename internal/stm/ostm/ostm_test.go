package ostm

import (
	"testing"

	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/stmtest"
)

func factory(nProcs, nVars int) stm.TM { return New() }

func TestConformance(t *testing.T) {
	stmtest.Conformance(t, factory)
}

func TestConformanceNoHelp(t *testing.T) {
	stmtest.Conformance(t, func(nProcs, nVars int) stm.TM { return NewWithoutHelping() })
}

func TestNames(t *testing.T) {
	if New().Name() != "ostm" || NewWithoutHelping().Name() != "ostm-nohelp" {
		t.Error("names")
	}
}

func TestFaultFreeProgress(t *testing.T) {
	counts := stmtest.FaultFree(factory, 3, 8000, 51)
	for p, c := range counts {
		if c == 0 {
			t.Errorf("process %d never committed fault-free", p)
		}
	}
}

// TestCrashNeverBlocks: helping completes a crashed committer's
// descriptor; every crash point leaves the survivor progressing. This
// is the crash half of OSTM's global progress (§1.3).
func TestCrashNeverBlocks(t *testing.T) {
	worst := stmtest.CrashSweep(factory, 600, 80, 23)
	if worst == 0 {
		t.Error("some crash point blocked the survivor; helping must complete in-flight commits")
	}
}

// TestParasiticHarmless: deferred updates — a parasitic writer
// publishes nothing and blocks nobody (the parasitic half of global
// progress).
func TestParasiticHarmless(t *testing.T) {
	if got := stmtest.Parasitic(factory, 4000, 23); got == 0 {
		t.Error("a parasitic writer must not block OSTM")
	}
}

// TestNoHelpLosesCrashResilience (the helping ablation): without
// helping a crashed committer's descriptor blocks conflicting
// transactions forever.
func TestNoHelpLosesCrashResilience(t *testing.T) {
	worst := stmtest.CrashSweep(func(nProcs, nVars int) stm.TM { return NewWithoutHelping() }, 600, 80, 23)
	if worst != 0 {
		t.Errorf("worst-case survivor commits = %d, want 0 without helping", worst)
	}
}

// TestCrashedCommitStaysAtomic sweeps the crash point across p1's
// two-variable committing transaction. Whatever the crash point, a
// later reader (who helps any in-flight descriptor) must observe
// either none or all of p1's writes — never a mixed state — and must
// never be blocked.
func TestCrashedCommitStaysAtomic(t *testing.T) {
	for crashAt := 1; crashAt <= 10; crashAt++ {
		tm := New()
		s := sim.New(nil)
		_ = s.Spawn(1, func(env *sim.Env) {
			tm.Write(env, 0, 7)
			tm.Write(env, 1, 8)
			tm.TryCommit(env)
		})
		s.Run(crashAt)
		s.Crash(1)
		s.Close()

		env2 := sim.Background(2)
		v0, st0 := tm.Read(env2, 0)
		v1, st1 := tm.Read(env2, 1)
		if st0 != stm.OK || st1 != stm.OK {
			t.Fatalf("crashAt=%d: reader blocked or aborted (%v, %v)", crashAt, st0, st1)
		}
		both := v0 == 7 && v1 == 8
		neither := v0 == 0 && v1 == 0
		if !both && !neither {
			t.Fatalf("crashAt=%d: mixed state x0=%d x1=%d", crashAt, v0, v1)
		}
	}
}

// TestReadOnlyCommitValidates: a read-only transaction with a stale
// read set aborts at commit.
func TestReadOnlyCommitValidates(t *testing.T) {
	tm := New()
	env1, env2 := sim.Background(1), sim.Background(2)
	if _, st := tm.Read(env1, 0); st != stm.OK {
		t.Fatal("p1 read")
	}
	if st := tm.Write(env2, 0, 1); st != stm.OK {
		t.Fatal("p2 write")
	}
	if st := tm.TryCommit(env2); st != stm.OK {
		t.Fatal("p2 commit")
	}
	if st := tm.TryCommit(env1); st != stm.Aborted {
		t.Fatal("stale read-only transaction must abort at commit")
	}
}

// TestConflictingCommitsOneWins: two transactions writing the same
// variable with a read dependency — exactly one commits.
func TestConflictingCommitsOneWins(t *testing.T) {
	tm := New()
	env1, env2 := sim.Background(1), sim.Background(2)
	v1, st := tm.Read(env1, 0)
	if st != stm.OK {
		t.Fatal("p1 read")
	}
	v2, st := tm.Read(env2, 0)
	if st != stm.OK {
		t.Fatal("p2 read")
	}
	if st := tm.Write(env1, 0, v1+1); st != stm.OK {
		t.Fatal("p1 write")
	}
	if st := tm.Write(env2, 0, v2+1); st != stm.OK {
		t.Fatal("p2 write")
	}
	st1 := tm.TryCommit(env1)
	st2 := tm.TryCommit(env2)
	if st1 == stm.OK && st2 == stm.OK {
		t.Fatal("both conflicting increments committed: lost update")
	}
	if st1 != stm.OK && st2 != stm.OK {
		t.Fatal("neither committed: no progress")
	}
	env3 := sim.Background(3)
	v, st := tm.Read(env3, 0)
	if st != stm.OK || v != 1 {
		t.Fatalf("final value = %d,%v; want 1,ok", v, st)
	}
}
