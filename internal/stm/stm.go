// Package stm defines the operational interface that every TM
// implementation in the repository exposes, mirroring the paper's
// request/response model (§2.2): processes issue read, write, and
// commit requests and receive value/ok/commit responses or aborts.
//
// Implementations run under the cooperative scheduler of package sim:
// they call Env.Yield at every base-object access, which makes every
// lock-hold window preemptible and crash-visible. Blocking TMs (the
// global-lock TM) block by yielding in a loop inside the operation, so
// a blocked operation simply never returns — exactly the paper's
// notion of a transaction waiting forever.
package stm

import (
	"sync"

	"livetm/internal/model"
	"livetm/internal/sim"
)

// Status is the outcome of a TM operation.
type Status int

// Operation outcomes. OK means the value/ok/commit response; Aborted
// means the abort event A_k, which also ends the current transaction.
const (
	OK Status = iota + 1
	Aborted
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Aborted:
		return "aborted"
	default:
		return "status(?)"
	}
}

// TM is a transactional memory implementation. Transactions are
// implicit: a process's transaction starts at its first operation
// after a commit or abort and ends with the next commit or abort.
// The process identity is carried by the environment.
//
// Implementations are driven by the cooperative scheduler and must not
// be called from concurrently running goroutines outside it.
type TM interface {
	// Name identifies the implementation in reports.
	Name() string
	// Read performs x.read_p for p = env.Proc().
	Read(env *sim.Env, x model.TVar) (model.Value, Status)
	// Write performs x.write_p(v).
	Write(env *sim.Env, x model.TVar, v model.Value) Status
	// TryCommit performs tryC_p. OK means the transaction committed.
	TryCommit(env *sim.Env) Status
}

// Recorder wraps a TM and records the resulting history in the
// paper's event vocabulary. Invocations are recorded before the inner
// operation runs, so an operation that blocks forever leaves a pending
// invocation — a live transaction — in the history.
type Recorder struct {
	mu    sync.Mutex
	inner TM
	h     model.History
}

// NewRecorder wraps tm.
func NewRecorder(tm TM) *Recorder { return &Recorder{inner: tm} }

var _ TM = (*Recorder)(nil)

// Name implements TM.
func (r *Recorder) Name() string { return r.inner.Name() }

// History returns a copy of the recorded history.
func (r *Recorder) History() model.History {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.h.Clone()
}

func (r *Recorder) record(e model.Event) {
	r.mu.Lock()
	r.h = append(r.h, e)
	r.mu.Unlock()
}

// Read implements TM.
func (r *Recorder) Read(env *sim.Env, x model.TVar) (model.Value, Status) {
	p := env.Proc()
	r.record(model.Read(p, x))
	v, st := r.inner.Read(env, x)
	if st == OK {
		r.record(model.ValueResp(p, v))
	} else {
		r.record(model.Abort(p))
	}
	return v, st
}

// Write implements TM.
func (r *Recorder) Write(env *sim.Env, x model.TVar, v model.Value) Status {
	p := env.Proc()
	r.record(model.Write(p, x, v))
	st := r.inner.Write(env, x, v)
	if st == OK {
		r.record(model.OK(p))
	} else {
		r.record(model.Abort(p))
	}
	return st
}

// TryCommit implements TM.
func (r *Recorder) TryCommit(env *sim.Env) Status {
	p := env.Proc()
	r.record(model.TryCommit(p))
	st := r.inner.TryCommit(env)
	if st == OK {
		r.record(model.Commit(p))
	} else {
		r.record(model.Abort(p))
	}
	return st
}

// Stats summarizes a history per process.
type Stats struct {
	Commits    map[model.Proc]int
	Aborts     map[model.Proc]int
	Operations map[model.Proc]int // completed operations (responses)
	PendingInv map[model.Proc]bool
}

// Summarize computes per-process statistics of a history.
func Summarize(h model.History) Stats {
	s := Stats{
		Commits:    make(map[model.Proc]int),
		Aborts:     make(map[model.Proc]int),
		Operations: make(map[model.Proc]int),
		PendingInv: make(map[model.Proc]bool),
	}
	for _, e := range h {
		switch {
		case e.Kind.IsInvocation():
			s.PendingInv[e.Proc] = true
		case e.Kind.IsResponse():
			s.PendingInv[e.Proc] = false
			s.Operations[e.Proc]++
			switch e.Kind {
			case model.RespCommit:
				s.Commits[e.Proc]++
			case model.RespAbort:
				s.Aborts[e.Proc]++
			}
		}
	}
	return s
}

// TotalCommits sums commits across processes.
func (s Stats) TotalCommits() int {
	n := 0
	for _, c := range s.Commits {
		n += c
	}
	return n
}

// Factory creates a fresh TM instance for a system of the given size.
// Implementations that do not need the sizes may ignore them.
type Factory func(nProcs, nVars int) TM
