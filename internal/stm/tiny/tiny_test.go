package tiny

import (
	"testing"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/stmtest"
)

func factory(nProcs, nVars int) stm.TM { return New() }

func TestConformance(t *testing.T) {
	stmtest.Conformance(t, factory)
}

func TestFaultFreeProgress(t *testing.T) {
	counts := stmtest.FaultFree(factory, 3, 6000, 21)
	for p, c := range counts {
		if c == 0 {
			t.Errorf("process %d never committed fault-free", p)
		}
	}
}

// TestCrashHoldingLockBlocks: encounter-time locks are held from first
// write to commit; some crash point leaves them held forever, so
// TinySTM-style TMs do not ensure solo progress under crashes
// (§3.2.3).
func TestCrashHoldingLockBlocks(t *testing.T) {
	worst := stmtest.CrashSweep(factory, 600, 40, 9)
	if worst != 0 {
		t.Errorf("worst-case survivor commits = %d, want 0", worst)
	}
}

// TestParasiticWriterBlocks: a parasitic writer holds its encounter
// lock forever and conflicting transactions abort indefinitely.
func TestParasiticWriterBlocks(t *testing.T) {
	if got := stmtest.Parasitic(factory, 4000, 9); got != 0 {
		t.Errorf("survivor commits = %d, want 0 under a parasitic writer", got)
	}
}

// TestParasiticReaderHarmless: reads are invisible; a parasitic reader
// blocks nobody.
func TestParasiticReaderHarmless(t *testing.T) {
	tm := New()
	s := sim.New(sim.NewSeeded(4))
	defer s.Close()
	var c2 int
	_ = s.Spawn(1, stmtest.ParasiticReaderBody(tm, 0))
	_ = s.Spawn(2, stmtest.CounterBody(tm, 0, &c2))
	s.Run(4000)
	if c2 == 0 {
		t.Error("a parasitic reader must not block a writer")
	}
}

// TestCrashOnDisjointVariableHarmless: a crashed lock holder only
// blocks transactions that touch its variables.
func TestCrashOnDisjointVariableHarmless(t *testing.T) {
	tm := New()
	s := sim.New(sim.NewSeeded(6))
	defer s.Close()
	var c1, c2 int
	_ = s.Spawn(1, stmtest.DisjointBody(tm, &c1)) // per-process variable
	_ = s.Spawn(2, stmtest.DisjointBody(tm, &c2))
	s.Run(60)
	s.Crash(1)
	before := c2
	s.Run(2000)
	if c2 == before {
		t.Error("p2 works on a disjoint variable and must keep committing")
	}
}

// TestBoundedCounterFinishes: bounded workloads terminate and release
// everything, leaving the TM auditable afterwards.
func TestBoundedCounterFinishes(t *testing.T) {
	tm := New()
	s := sim.New(sim.NewSeeded(8))
	defer s.Close()
	var c1, c2 int
	_ = s.Spawn(1, stmtest.BoundedCounterBody(tm, 0, 5, &c1))
	_ = s.Spawn(2, stmtest.BoundedCounterBody(tm, 0, 5, &c2))
	if steps := s.Run(100000); steps >= 100000 {
		t.Fatal("bounded counters did not finish")
	}
	if c1 != 5 || c2 != 5 {
		t.Fatalf("commits = %d, %d; want 5 each", c1, c2)
	}
	env := sim.Background(3)
	v, st := tm.Read(env, 0)
	if st != stm.OK || v != 10 {
		t.Fatalf("final counter = %d,%v; want 10", v, st)
	}
}

// TestDirtyReadPrevented: an uncommitted in-place write is never
// observable — readers abort on locked variables.
func TestDirtyReadPrevented(t *testing.T) {
	tm := New()
	s := sim.New(&sim.Fixed{Schedule: []model.Proc{1, 1, 1, 2, 2, 2, 2}})
	defer s.Close()
	_ = s.Spawn(1, func(env *sim.Env) {
		tm.Write(env, 0, 99) // acquires the lock, writes in place
		for {
			env.Yield() // parasitic from here on: lock stays held
		}
	})
	var sawDirty, sawAbort bool
	_ = s.Spawn(2, func(env *sim.Env) {
		for i := 0; i < 5; i++ {
			v, st := tm.Read(env, 0)
			if st == stm.OK && v == 99 {
				sawDirty = true
			}
			if st == stm.Aborted {
				sawAbort = true
			}
		}
	})
	s.Run(200)
	if sawDirty {
		t.Error("reader observed an uncommitted in-place write")
	}
	if !sawAbort {
		t.Error("reader should have been aborted by the encounter lock")
	}
}

// TestAbortRestoresValue: a writer that aborts rolls its in-place
// writes back.
func TestAbortRestoresValue(t *testing.T) {
	tm := New()
	env1, env2 := sim.Background(1), sim.Background(2)
	if st := tm.Write(env1, 0, 5); st != stm.OK {
		t.Fatal("p1 write")
	}
	if st := tm.TryCommit(env1); st != stm.OK {
		t.Fatal("p1 commit")
	}
	// p2 writes 9 in place, then aborts by conflicting on a read of a
	// variable p1 then locks... simpler: force p2's abort via p1's
	// encounter lock.
	if st := tm.Write(env2, 0, 9); st != stm.OK {
		t.Fatal("p2 write")
	}
	if st := tm.Write(env1, 0, 6); st != stm.Aborted {
		t.Fatal("p1 must abort on p2's lock")
	}
	// p2 aborts itself by reading a variable... instead make p2 abort
	// via commit-time validation failure: impossible here, so test the
	// rollback path through a read conflict: p2 reads x1 (version
	// recorded), p3 commits x1 behind p2's back, p2's next read fails
	// and rolls back.
	env3 := sim.Background(3)
	if _, st := tm.Read(env2, 1); st != stm.OK {
		t.Fatal("p2 read x1")
	}
	if st := tm.Write(env3, 1, 1); st != stm.OK {
		t.Fatal("p3 write x1")
	}
	if st := tm.TryCommit(env3); st != stm.OK {
		t.Fatal("p3 commit")
	}
	if _, st := tm.Read(env2, 1); st != stm.Aborted {
		t.Fatal("p2's snapshot is stale; the read must abort")
	}
	// p2's in-place 9 must have been rolled back to the committed 5.
	v, st := tm.Read(env3, 0)
	if st != stm.OK || v != 5 {
		t.Fatalf("after p2's rollback, x0 = %d,%v; want 5,ok", v, st)
	}
}
