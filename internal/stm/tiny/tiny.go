// Package tiny implements an encounter-time-locking, write-through TM
// in the style of TinySTM/SwissTM [16, 17]: writers lock t-variables
// when they first write them and hold the lock until commit or abort,
// applying writes in place with an undo log; readers validate their
// read set incrementally so every transaction observes a consistent
// snapshot (opacity).
//
// Liveness class (§3.2.3): solo progress in systems that are both
// parasitic-free and crash-free. A parasitic writer holds its
// encounter-time locks forever, and a process that crashes while
// holding locks leaves them locked forever; in both cases conflicting
// transactions abort indefinitely.
package tiny

import (
	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

type varRecord struct {
	value   model.Value
	version uint64
	owner   model.Proc // 0 when unlocked
}

type txn struct {
	active  bool
	reads   map[model.TVar]uint64      // var -> version observed
	undo    map[model.TVar]model.Value // var -> pre-image
	ordered []model.TVar               // locked vars in acquisition order
}

// TM is the encounter-time-locking TM.
type TM struct {
	vars map[model.TVar]*varRecord
	txns map[model.Proc]*txn
}

var _ stm.TM = (*TM)(nil)

// New returns an empty instance.
func New() *TM {
	return &TM{
		vars: make(map[model.TVar]*varRecord),
		txns: make(map[model.Proc]*txn),
	}
}

// Name implements stm.TM.
func (t *TM) Name() string { return "tinystm" }

func (t *TM) rec(x model.TVar) *varRecord {
	r, ok := t.vars[x]
	if !ok {
		r = &varRecord{value: model.InitialValue}
		t.vars[x] = r
	}
	return r
}

func (t *TM) txn(p model.Proc) *txn {
	tx, ok := t.txns[p]
	if !ok || !tx.active {
		tx = &txn{
			active: true,
			reads:  make(map[model.TVar]uint64),
			undo:   make(map[model.TVar]model.Value),
		}
		t.txns[p] = tx
	}
	return tx
}

// validate re-checks every read: its version must be unchanged and the
// variable unlocked or owned by p.
func (t *TM) validate(p model.Proc, tx *txn) bool {
	for x, ver := range tx.reads {
		r := t.rec(x)
		if r.owner != 0 && r.owner != p {
			return false
		}
		if r.version != ver {
			return false
		}
	}
	return true
}

// rollback restores pre-images, bumps versions of written variables
// (readers that saw intermediate dirty state must fail validation),
// and releases locks.
func (t *TM) rollback(p model.Proc, tx *txn) {
	for _, x := range tx.ordered {
		r := t.rec(x)
		if r.owner == p {
			r.value = tx.undo[x]
			r.version++
			r.owner = 0
		}
	}
	tx.active = false
}

// Read implements stm.TM.
func (t *TM) Read(env *sim.Env, x model.TVar) (model.Value, stm.Status) {
	p := env.Proc()
	tx := t.txn(p)
	env.Yield()
	r := t.rec(x)
	if r.owner == p {
		// Reading our own encounter-time write: the in-place value.
		return r.value, stm.OK
	}
	if r.owner != 0 {
		t.rollback(p, tx)
		return 0, stm.Aborted
	}
	if _, seen := tx.reads[x]; !seen {
		tx.reads[x] = r.version
	} else if tx.reads[x] != r.version {
		t.rollback(p, tx)
		return 0, stm.Aborted
	}
	// Incremental validation keeps the whole snapshot consistent.
	if !t.validate(p, tx) {
		t.rollback(p, tx)
		return 0, stm.Aborted
	}
	return r.value, stm.OK
}

// Write implements stm.TM. The first write to a variable locks it
// (encounter time) and records the undo image; the write then applies
// in place.
func (t *TM) Write(env *sim.Env, x model.TVar, v model.Value) stm.Status {
	p := env.Proc()
	tx := t.txn(p)
	env.Yield()
	r := t.rec(x)
	if r.owner != 0 && r.owner != p {
		t.rollback(p, tx)
		return stm.Aborted
	}
	if r.owner != p {
		// Acquire: but first make sure our own earlier read of x (if
		// any) is still valid, and the snapshot still holds.
		if ver, seen := tx.reads[x]; seen && ver != r.version {
			t.rollback(p, tx)
			return stm.Aborted
		}
		r.owner = p
		tx.undo[x] = r.value
		tx.ordered = append(tx.ordered, x)
	}
	env.Yield()
	r.value = v
	return stm.OK
}

// TryCommit implements stm.TM: validate the read set, then release
// locks with fresh versions.
func (t *TM) TryCommit(env *sim.Env) stm.Status {
	p := env.Proc()
	tx := t.txn(p)
	env.Yield()
	if !t.validate(p, tx) {
		t.rollback(p, tx)
		return stm.Aborted
	}
	// Crash point: validated but nothing released. A crash here (or
	// anywhere earlier in the transaction) leaves the encounter-time
	// locks held forever. The release itself is one atomic slice so
	// the recorded history never shows a half-committed transaction.
	env.Yield()
	for _, x := range tx.ordered {
		r := t.rec(x)
		r.version++
		r.owner = 0
	}
	tx.active = false
	return stm.OK
}
