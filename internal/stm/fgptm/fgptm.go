// Package fgptm adapts the paper's Fgp automaton (§6, package fgp) to
// the operational TM interface so it can run in the liveness matrix
// and adversary experiments beside the classical STM designs.
//
// Fgp is a centralized automaton: every operation is answered
// immediately from the current state, so operations never block and a
// crash can never leave anything "held" — the state machine simply
// stops hearing from the crashed process. This is why it ensures
// global progress in any fault-prone system (Theorem 3); the corrected
// variant also ensures opacity.
package fgptm

import (
	"livetm/internal/fgp"
	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

// TM wraps an fgp.Engine.
type TM struct {
	eng *fgp.Engine
	err error // first engine invariant violation, if any (never expected)
}

var _ stm.TM = (*TM)(nil)

// New returns an Fgp-backed TM (corrected variant) for the given
// system size.
func New(nProcs, nVars int) (*TM, error) {
	eng, err := fgp.NewEngine(nProcs, nVars, fgp.Corrected)
	if err != nil {
		return nil, err
	}
	return &TM{eng: eng}, nil
}

// Name implements stm.TM.
func (t *TM) Name() string { return "fgp" }

// Err returns the first engine invariant violation observed, if any.
// A non-nil value indicates a bug in the harness, not a TM abort.
func (t *TM) Err() error { return t.err }

// History returns the automaton-level history recorded by the engine.
func (t *TM) History() model.History { return t.eng.History() }

// Read implements stm.TM.
func (t *TM) Read(env *sim.Env, x model.TVar) (model.Value, stm.Status) {
	env.Yield()
	v, ok, err := t.eng.Read(env.Proc(), x)
	if err != nil {
		t.fail(err)
		return 0, stm.Aborted
	}
	if !ok {
		return 0, stm.Aborted
	}
	return v, stm.OK
}

// Write implements stm.TM.
func (t *TM) Write(env *sim.Env, x model.TVar, v model.Value) stm.Status {
	env.Yield()
	ok, err := t.eng.Write(env.Proc(), x, v)
	if err != nil {
		t.fail(err)
		return stm.Aborted
	}
	if !ok {
		return stm.Aborted
	}
	return stm.OK
}

// TryCommit implements stm.TM.
func (t *TM) TryCommit(env *sim.Env) stm.Status {
	env.Yield()
	ok, err := t.eng.TryCommit(env.Proc())
	if err != nil {
		t.fail(err)
		return stm.Aborted
	}
	if !ok {
		return stm.Aborted
	}
	return stm.OK
}

func (t *TM) fail(err error) {
	if t.err == nil {
		t.err = err
	}
}
