package fgptm

import (
	"testing"

	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/stmtest"
)

func factory(nProcs, nVars int) stm.TM {
	tm, err := New(nProcs, nVars)
	if err != nil {
		panic(err) // test-only factory; sizes are always valid here
	}
	return tm
}

func TestConformance(t *testing.T) {
	stmtest.Conformance(t, factory)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("invalid sizes must be rejected")
	}
}

func TestFaultFreeProgress(t *testing.T) {
	counts := stmtest.FaultFree(factory, 3, 8000, 61)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Error("no commits at all fault-free")
	}
	// Fgp promises global progress, not local: under a fair random
	// schedule all three typically commit, but the guarantee we assert
	// is that commits keep happening.
	if total < 100 {
		t.Errorf("total commits = %d; Fgp should commit steadily", total)
	}
}

// TestCrashNeverBlocks: Theorem 3's liveness in operational form — no
// crash point can stop the survivor, because the automaton holds
// nothing on behalf of a process.
func TestCrashNeverBlocks(t *testing.T) {
	worst := stmtest.CrashSweep(factory, 600, 60, 29)
	if worst == 0 {
		t.Error("some crash point blocked the survivor; Fgp must ensure global progress")
	}
}

// TestParasiticHarmless: a parasitic writer only moves its own row of
// Val; the correct process keeps committing.
func TestParasiticHarmless(t *testing.T) {
	if got := stmtest.Parasitic(factory, 4000, 29); got == 0 {
		t.Error("a parasitic writer must not block Fgp")
	}
}

// TestNoHarnessErrors: the engine never reports invariant violations
// under the standard scenarios.
func TestNoHarnessErrors(t *testing.T) {
	tm := factory(2, 1).(*TM)
	s := sim.New(sim.NewSeeded(3))
	defer s.Close()
	var c1, c2 int
	_ = s.Spawn(1, stmtest.CounterBody(tm, 0, &c1))
	_ = s.Spawn(2, stmtest.CounterBody(tm, 0, &c2))
	s.Run(3000)
	if err := tm.Err(); err != nil {
		t.Fatalf("engine invariant violation: %v", err)
	}
	if tm.History() == nil {
		t.Error("engine history must be recorded")
	}
}
