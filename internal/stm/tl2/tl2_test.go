package tl2

import (
	"testing"

	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/stmtest"
)

func factory(nProcs, nVars int) stm.TM { return New() }

func TestConformance(t *testing.T) {
	stmtest.Conformance(t, factory)
}

func TestFaultFreeProgress(t *testing.T) {
	counts := stmtest.FaultFree(factory, 3, 6000, 31)
	for p, c := range counts {
		if c == 0 {
			t.Errorf("process %d never committed fault-free", p)
		}
	}
}

// TestCrashMidCommitBlocks: TL2 holds locks only inside TryCommit, but
// a crash in that window leaves them held forever — TL2 ensures solo
// progress only in crash-free systems (§3.2.3).
func TestCrashMidCommitBlocks(t *testing.T) {
	worst := stmtest.CrashSweep(factory, 600, 60, 13)
	if worst != 0 {
		t.Errorf("worst-case survivor commits = %d, want 0 (crash inside the commit window)", worst)
	}
}

// TestParasiticHarmless: deferred updates mean a parasitic process
// holds nothing; the correct process keeps committing. This is the
// paper's distinction between TL2 and encounter-time TMs.
func TestParasiticHarmless(t *testing.T) {
	if got := stmtest.Parasitic(factory, 4000, 13); got == 0 {
		t.Error("a parasitic writer must not block TL2")
	}
}

// TestParasiticReaderHarmless mirrors the writer case.
func TestParasiticReaderHarmless(t *testing.T) {
	tm := New()
	s := sim.New(sim.NewSeeded(8))
	defer s.Close()
	var c2 int
	_ = s.Spawn(1, stmtest.ParasiticReaderBody(tm, 0))
	_ = s.Spawn(2, stmtest.CounterBody(tm, 0, &c2))
	s.Run(4000)
	if c2 == 0 {
		t.Error("a parasitic reader must not block TL2")
	}
}

// TestCrashOutsideCommitHarmless: crashing between operations (not
// inside TryCommit) leaves no locks held; TL2 recovers. This pins down
// *why* the crash sweep finds zero: only the commit window is fatal.
func TestCrashOutsideCommitHarmless(t *testing.T) {
	tm := New()
	s := sim.New(&sim.RoundRobin{})
	defer s.Close()
	var c2 int
	_ = s.Spawn(1, func(env *sim.Env) {
		tm.Write(env, 0, 7) // buffered only
		for {
			env.Yield()
		}
	})
	_ = s.Spawn(2, stmtest.CounterBody(tm, 0, &c2))
	s.Run(50)
	s.Crash(1)
	before := c2
	s.Run(2000)
	if c2 == before {
		t.Error("a crash outside the commit window must not block TL2")
	}
}

// TestReadYourOwnBufferedWrite: deferred updates still satisfy
// read-your-writes inside a transaction.
func TestReadYourOwnBufferedWrite(t *testing.T) {
	tm := New()
	env := sim.Background(1)
	if st := tm.Write(env, 0, 3); st != stm.OK {
		t.Fatal("write")
	}
	v, st := tm.Read(env, 0)
	if st != stm.OK || v != 3 {
		t.Fatalf("read own buffered write = %d,%v; want 3,ok", v, st)
	}
}

// TestStaleReadAborts: a transaction that started before a concurrent
// commit cannot read the newer version (its read version is older).
func TestStaleReadAborts(t *testing.T) {
	tm := New()
	env1, env2 := sim.Background(1), sim.Background(2)
	// p1 starts a transaction by reading x1 (rv = 0).
	if _, st := tm.Read(env1, 1); st != stm.OK {
		t.Fatal("p1 read x1")
	}
	// p2 commits x0 := 5, advancing the clock.
	if st := tm.Write(env2, 0, 5); st != stm.OK {
		t.Fatal("p2 write")
	}
	if st := tm.TryCommit(env2); st != stm.OK {
		t.Fatal("p2 commit")
	}
	// p1 now reads x0: version (1) > rv (0) — must abort, not return 5.
	if _, st := tm.Read(env1, 0); st != stm.Aborted {
		t.Fatal("stale transaction must abort rather than mix snapshots")
	}
}

// TestWriteNeverAbortsBeforeCommit: writes are local.
func TestWriteNeverAbortsBeforeCommit(t *testing.T) {
	tm := New()
	env := sim.Background(1)
	for i := 0; i < 100; i++ {
		if st := tm.Write(env, 0, 1); st != stm.OK {
			t.Fatal("buffered write aborted")
		}
	}
}
