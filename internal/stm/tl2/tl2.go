// Package tl2 implements a TL2-style TM [15]: deferred updates
// (writes are buffered until commit), a global version clock, and
// commit-time locking. Reads validate against the transaction's read
// version, so every transaction sees a consistent snapshot (opacity).
//
// Liveness class (§3.2.3): solo progress in crash-free systems. A
// parasitic process holds no locks — updates are deferred — so it
// cannot block anyone; but a process that crashes inside its commit,
// between lock acquisition and release, leaves those commit-time locks
// held forever and conflicting transactions abort indefinitely.
package tl2

import (
	"sort"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

type varRecord struct {
	value   model.Value
	version uint64
	owner   model.Proc // commit-time lock; 0 when unlocked
}

type txn struct {
	active bool
	rv     uint64 // read version: global clock at transaction start
	reads  map[model.TVar]struct{}
	writes map[model.TVar]model.Value
}

// TM is the TL2-style TM.
type TM struct {
	clock uint64
	vars  map[model.TVar]*varRecord
	txns  map[model.Proc]*txn
}

var _ stm.TM = (*TM)(nil)

// New returns an empty instance.
func New() *TM {
	return &TM{
		vars: make(map[model.TVar]*varRecord),
		txns: make(map[model.Proc]*txn),
	}
}

// Name implements stm.TM.
func (t *TM) Name() string { return "tl2" }

func (t *TM) rec(x model.TVar) *varRecord {
	r, ok := t.vars[x]
	if !ok {
		r = &varRecord{value: model.InitialValue}
		t.vars[x] = r
	}
	return r
}

func (t *TM) txn(p model.Proc) *txn {
	tx, ok := t.txns[p]
	if !ok || !tx.active {
		tx = &txn{
			active: true,
			rv:     t.clock,
			reads:  make(map[model.TVar]struct{}),
			writes: make(map[model.TVar]model.Value),
		}
		t.txns[p] = tx
	}
	return tx
}

func (t *TM) abort(tx *txn) stm.Status {
	tx.active = false
	return stm.Aborted
}

// Read implements stm.TM: return the write-buffer entry if present,
// else the shared value, valid only if unlocked and not newer than the
// transaction's read version.
func (t *TM) Read(env *sim.Env, x model.TVar) (model.Value, stm.Status) {
	p := env.Proc()
	tx := t.txn(p)
	if v, buffered := tx.writes[x]; buffered {
		env.Yield()
		return v, stm.OK
	}
	env.Yield()
	r := t.rec(x)
	if r.owner != 0 || r.version > tx.rv {
		return 0, t.abort(tx)
	}
	tx.reads[x] = struct{}{}
	return r.value, stm.OK
}

// Write implements stm.TM: buffer the write; no shared state is
// touched before commit.
func (t *TM) Write(env *sim.Env, x model.TVar, v model.Value) stm.Status {
	p := env.Proc()
	tx := t.txn(p)
	env.Yield()
	tx.writes[x] = v
	return stm.OK
}

// TryCommit implements stm.TM: read-only transactions commit
// immediately (their reads were validated against rv); update
// transactions lock their write set in variable order, validate the
// read set, publish, and release. A crash between acquisition and
// release leaves the locks held.
func (t *TM) TryCommit(env *sim.Env) stm.Status {
	p := env.Proc()
	tx := t.txn(p)
	env.Yield()
	if len(tx.writes) == 0 {
		tx.active = false
		return stm.OK
	}

	order := make([]model.TVar, 0, len(tx.writes))
	for x := range tx.writes {
		order = append(order, x)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	acquired := 0
	releaseAndAbort := func() stm.Status {
		for _, x := range order[:acquired] {
			t.rec(x).owner = 0
		}
		return t.abort(tx)
	}
	for _, x := range order {
		env.Yield() // crash point: locks acquired so far stay held
		r := t.rec(x)
		if r.owner != 0 {
			return releaseAndAbort()
		}
		if _, alsoRead := tx.reads[x]; alsoRead && r.version > tx.rv {
			return releaseAndAbort()
		}
		r.owner = p
		acquired++
	}

	env.Yield()
	// Validate the read set against rv.
	for x := range tx.reads {
		r := t.rec(x)
		if (r.owner != 0 && r.owner != p) || r.version > tx.rv {
			return releaseAndAbort()
		}
	}

	// Final crash point: every lock is held, nothing is published. A
	// crash here is the scenario of §3.2.3 — commit-time locks held
	// forever. Publication and release then happen in one atomic
	// slice: a half-published commit would make the recorded history
	// unaccountable (the transaction would be neither committed nor
	// cleanly absent), which models the write-back being protected by
	// the very locks being released.
	env.Yield()
	t.clock++
	wv := t.clock
	for _, x := range order {
		r := t.rec(x)
		r.value = tx.writes[x]
		r.version = wv
		r.owner = 0
	}
	tx.active = false
	return stm.OK
}
