package dstm

import (
	"testing"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/stmtest"
)

func visibleFactory(nProcs, nVars int) stm.TM { return NewVisible() }

func TestVisibleConformance(t *testing.T) {
	stmtest.Conformance(t, visibleFactory)
}

func TestVisibleName(t *testing.T) {
	if NewVisible().Name() != "dstm-visible" {
		t.Error("name")
	}
}

// TestVisibleWriterAbortsReader: acquiring a variable kills its
// registered readers immediately — no validation lag.
func TestVisibleWriterAbortsReader(t *testing.T) {
	tm := NewVisible()
	env1, env2 := sim.Background(1), sim.Background(2)
	if _, st := tm.Read(env1, 0); st != stm.OK {
		t.Fatal("p1 read")
	}
	if st := tm.Write(env2, 0, 5); st != stm.OK {
		t.Fatal("p2 write must acquire by aborting the reader")
	}
	// p1's next operation observes the abort — even on a variable the
	// writer never touched, because the descriptor is dead.
	if _, st := tm.Read(env1, 1); st != stm.Aborted {
		t.Fatal("visible reader must be aborted at acquire time")
	}
	if st := tm.TryCommit(env2); st != stm.OK {
		t.Fatal("p2 commits")
	}
}

// TestVisibleReaderAbortsWriter: the symmetric conflict — a visible
// read of an actively-owned variable aborts the writer (aggressive
// CM).
func TestVisibleReaderAbortsWriter(t *testing.T) {
	tm := NewVisible()
	env1, env2 := sim.Background(1), sim.Background(2)
	if st := tm.Write(env1, 0, 5); st != stm.OK {
		t.Fatal("p1 write")
	}
	v, st := tm.Read(env2, 0)
	if st != stm.OK || v != 0 {
		t.Fatalf("p2 read = %d,%v; want the old value 0", v, st)
	}
	if st := tm.TryCommit(env1); st != stm.Aborted {
		t.Fatal("the aborted writer must not commit")
	}
	if st := tm.TryCommit(env2); st != stm.OK {
		t.Fatal("the reader commits")
	}
}

// TestVisibleSnapshotWithoutValidation: a reader that survives to its
// commit necessarily saw a consistent snapshot — writers would have
// killed it otherwise.
func TestVisibleSnapshotWithoutValidation(t *testing.T) {
	tm := NewVisible()
	s := sim.New(sim.NewSeeded(29))
	defer s.Close()
	bad := 0
	_ = s.Spawn(1, func(env *sim.Env) {
		for i := int64(1); ; i++ {
			// Keep x0 and x1 equal, transactionally.
			if tm.Write(env, 0, 0) != stm.OK {
				continue
			}
			if tm.Write(env, 1, 0) != stm.OK {
				continue
			}
			tm.TryCommit(env)
		}
	})
	_ = s.Spawn(2, func(env *sim.Env) {
		for {
			v0, st := tm.Read(env, 0)
			if st != stm.OK {
				continue
			}
			v1, st := tm.Read(env, 1)
			if st != stm.OK {
				continue
			}
			if tm.TryCommit(env) == stm.OK && v0 != v1 {
				bad++
			}
		}
	})
	s.Run(6000)
	if bad != 0 {
		t.Errorf("%d committed reads saw a torn snapshot", bad)
	}
}

// TestVisibleCrashResilience: crashes still cannot block — a crashed
// reader's or writer's descriptor is aborted by the next competitor.
func TestVisibleCrashResilience(t *testing.T) {
	worst := stmtest.CrashSweep(visibleFactory, 600, 60, 31)
	if worst == 0 {
		t.Error("some crash point blocked the survivor; the visible variant is still obstruction-free")
	}
}

// TestVisibleParasiticReaderDefeatsWriter: unlike invisible reads, a
// parasitic *reader* now fights writers — under a biased schedule it
// keeps re-registering and aborting the writer forever. The variant
// trades validation cost for a larger parasitic attack surface.
func TestVisibleParasiticReaderDefeatsWriter(t *testing.T) {
	pattern := biasedPattern(2, 6000)
	tm := NewVisible()
	s := sim.New(&sim.Fixed{Schedule: pattern})
	defer s.Close()
	var c2 int
	_ = s.Spawn(1, stmtest.ParasiticReaderBody(tm, 0))
	_ = s.Spawn(2, stmtest.CounterBody(tm, 0, &c2))
	s.Run(3000)
	before := c2
	s.Run(3000)
	if c2 != before {
		t.Logf("survivor still committed %d times; acceptable but unexpected under 2:1 bias", c2-before)
	}
	// The invisible-reads variant shrugs the same parasite off.
	inv := New()
	s2 := sim.New(&sim.Fixed{Schedule: pattern})
	defer s2.Close()
	var c2inv int
	_ = s2.Spawn(1, stmtest.ParasiticReaderBody(inv, 0))
	_ = s2.Spawn(2, stmtest.CounterBody(inv, 0, &c2inv))
	s2.Run(6000)
	if c2inv == 0 {
		t.Error("invisible reads must shrug off a parasitic reader")
	}
}

func biasedPattern(bias, steps int) []model.Proc {
	var out []model.Proc
	for len(out) < steps {
		for i := 0; i < bias; i++ {
			out = append(out, 1)
		}
		out = append(out, 2)
	}
	return out
}
