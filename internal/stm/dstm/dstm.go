// Package dstm implements an obstruction-free TM in the style of DSTM
// [14]: writers acquire t-variables by installing locators that point
// to their transaction descriptor and hold both the old and the new
// value; the descriptor's status decides which value is current.
// Aborting a competitor is a single status change, so no process ever
// waits on another — the hallmark of obstruction freedom.
//
// Reads are invisible and validated incrementally, giving opacity.
//
// Liveness class (§3.2.3): solo progress in parasitic-free systems. A
// crashed transaction is simply aborted by the next competitor, but a
// parasitic writer can keep re-acquiring a variable and, under the
// aggressive contention manager, abort a correct process forever.
//
// The contention manager is pluggable (the paper treats the CM as part
// of the TM, §2.2): AbortOther (aggressive) or AbortSelf (polite).
// The choice is observable in the liveness matrix — with AbortSelf a
// crashed writer's descriptor is never cleaned up and conflicting
// processes abort forever, losing solo progress even in parasitic-free
// systems. This is the CM ablation of DESIGN.md §5.
package dstm

import (
	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

// CM is a contention-management policy.
type CM int

// Contention-manager choices.
const (
	// AbortOther aborts the competing active transaction (aggressive).
	AbortOther CM = iota + 1
	// AbortSelf aborts the requesting transaction (polite).
	AbortSelf
	// Greedy resolves write conflicts by age: a transaction keeps its
	// timestamp across retries, and the older transaction wins (the
	// younger is aborted). Every write-conflicting transaction
	// eventually becomes oldest and wins — starvation freedom for
	// write-write contention — yet Theorem 1 still applies: the
	// impossibility adversary starves its victim through *invisible
	// reads*, which no contention manager can protect (see the
	// package tests).
	Greedy
)

type status int

const (
	active status = iota + 1
	committed
	aborted
)

type desc struct {
	st status
	// stamp is the Greedy priority: assigned when a process first
	// starts a transaction and retained across its retries, so the
	// process's priority only grows with failed attempts. Lower is
	// older and wins conflicts.
	stamp uint64
}

type locator struct {
	owner  *desc
	oldVal model.Value
	newVal model.Value
}

type varRecord struct {
	loc *locator
	// readers holds the descriptors of active visible readers (visible
	// variant only); dead entries are pruned on access.
	readers []*desc
}

type txn struct {
	d     *desc
	reads map[model.TVar]model.Value
	mine  map[model.TVar]*locator
	activ bool
}

// TM is the DSTM-style TM.
type TM struct {
	cm      CM
	visible bool // visible reads: readers register, writers abort them
	vars    map[model.TVar]*varRecord
	txns    map[model.Proc]*txn
	clock   uint64                // Greedy timestamp source
	stamps  map[model.Proc]uint64 // Greedy: retained across retries
}

var _ stm.TM = (*TM)(nil)

// New returns an instance with the aggressive contention manager.
func New() *TM { return NewWithCM(AbortOther) }

// NewWithCM returns an instance with the given contention manager.
func NewWithCM(cm CM) *TM {
	return &TM{
		cm:     cm,
		vars:   make(map[model.TVar]*varRecord),
		txns:   make(map[model.Proc]*txn),
		stamps: make(map[model.Proc]uint64),
	}
}

// NewVisible returns the visible-reads variant with the aggressive
// contention manager: readers register on the variables they read and
// writers abort them at acquire time, trading read-set validation for
// reader-writer contention (the DSTM design axis).
func NewVisible() *TM {
	tm := NewWithCM(AbortOther)
	tm.visible = true
	return tm
}

// Name implements stm.TM.
func (t *TM) Name() string {
	if t.visible {
		return "dstm-visible"
	}
	switch t.cm {
	case AbortSelf:
		return "dstm-abortself"
	case Greedy:
		return "dstm-greedy"
	default:
		return "dstm"
	}
}

func (t *TM) rec(x model.TVar) *varRecord {
	r, ok := t.vars[x]
	if !ok {
		r = &varRecord{loc: &locator{owner: &desc{st: committed}, newVal: model.InitialValue}}
		t.vars[x] = r
	}
	return r
}

func (t *TM) txn(p model.Proc) *txn {
	tx, ok := t.txns[p]
	if !ok || !tx.activ {
		stamp, has := t.stamps[p]
		if !has {
			t.clock++
			stamp = t.clock
			t.stamps[p] = stamp
		}
		tx = &txn{
			d:     &desc{st: active, stamp: stamp},
			reads: make(map[model.TVar]model.Value),
			mine:  make(map[model.TVar]*locator),
			activ: true,
		}
		t.txns[p] = tx
	}
	return tx
}

// current resolves the committed value of a variable through its
// locator: the new value if the owner committed, the old one if the
// owner is active or aborted.
func current(r *varRecord) model.Value {
	if r.loc.owner.st == committed {
		return r.loc.newVal
	}
	return r.loc.oldVal
}

// validate re-resolves every read; the snapshot must be unchanged and
// the transaction still active.
func (t *TM) validate(tx *txn) bool {
	if tx.d.st != active {
		return false
	}
	for x, v := range tx.reads {
		if current(t.rec(x)) != v {
			return false
		}
	}
	return true
}

func (t *TM) selfAbort(tx *txn) {
	if tx.d.st == active {
		tx.d.st = aborted
	}
	tx.activ = false
}

// registerReader adds tx's descriptor to the variable's visible-reader
// list, pruning dead entries.
func registerReader(r *varRecord, d *desc) {
	live := r.readers[:0]
	present := false
	for _, rd := range r.readers {
		if rd.st != active {
			continue
		}
		if rd == d {
			present = true
		}
		live = append(live, rd)
	}
	if !present {
		live = append(live, d)
	}
	r.readers = live
}

// abortReaders aborts every active visible reader except keep.
func abortReaders(r *varRecord, keep *desc) {
	for _, rd := range r.readers {
		if rd != keep && rd.st == active {
			rd.st = aborted
		}
	}
	r.readers = r.readers[:0]
}

// Read implements stm.TM.
func (t *TM) Read(env *sim.Env, x model.TVar) (model.Value, stm.Status) {
	p := env.Proc()
	tx := t.txn(p)
	env.Yield()
	if tx.d.st != active {
		t.selfAbort(tx)
		return 0, stm.Aborted
	}
	r := t.rec(x)
	if loc, mine := tx.mine[x]; mine && r.loc == loc {
		return loc.newVal, stm.OK
	}
	if t.visible {
		// A visible reader conflicts with an active writer like a
		// writer would: the contention manager resolves it.
		if r.loc.owner.st == active && r.loc.owner != tx.d {
			r.loc.owner.st = aborted // AbortOther; NewVisible pins the aggressive CM
		}
		registerReader(r, tx.d)
		// No validation needed: any conflicting acquire would have
		// aborted this descriptor atomically.
		return current(r), stm.OK
	}
	v := current(r)
	if prev, seen := tx.reads[x]; seen && prev != v {
		t.selfAbort(tx)
		return 0, stm.Aborted
	}
	tx.reads[x] = v
	if !t.validate(tx) {
		t.selfAbort(tx)
		return 0, stm.Aborted
	}
	return v, stm.OK
}

// Write implements stm.TM: acquire the variable by installing a fresh
// locator; a conflicting active owner is handled by the contention
// manager.
func (t *TM) Write(env *sim.Env, x model.TVar, v model.Value) stm.Status {
	p := env.Proc()
	tx := t.txn(p)
	env.Yield()
	if tx.d.st != active {
		t.selfAbort(tx)
		return stm.Aborted
	}
	r := t.rec(x)
	if loc, mine := tx.mine[x]; mine && r.loc == loc {
		loc.newVal = v
		return stm.OK
	}
	if r.loc.owner.st == active && r.loc.owner != tx.d {
		switch t.cm {
		case AbortOther:
			r.loc.owner.st = aborted
		case Greedy:
			if tx.d.stamp < r.loc.owner.stamp {
				r.loc.owner.st = aborted // we are older: the younger yields
			} else {
				t.selfAbort(tx)
				return stm.Aborted
			}
		default: // AbortSelf
			t.selfAbort(tx)
			return stm.Aborted
		}
	}
	if t.visible {
		// Acquiring a variable aborts its visible readers; our own
		// registered reads stay protected the same way.
		abortReaders(r, tx.d)
		if tx.d.st != active {
			t.selfAbort(tx)
			return stm.Aborted
		}
		loc := &locator{owner: tx.d, oldVal: current(r), newVal: v}
		r.loc = loc
		tx.mine[x] = loc
		return stm.OK
	}
	old := current(r)
	if prev, seen := tx.reads[x]; seen && prev != old {
		t.selfAbort(tx)
		return stm.Aborted
	}
	if !t.validate(tx) {
		t.selfAbort(tx)
		return stm.Aborted
	}
	loc := &locator{owner: tx.d, oldVal: old, newVal: v}
	r.loc = loc
	tx.mine[x] = loc
	return stm.OK
}

// TryCommit implements stm.TM: validate the read set and flip the
// descriptor to committed in one atomic slice (the descriptor status
// change is DSTM's linearization point). A commit retires the
// process's Greedy timestamp; aborts retain it, so priority only
// grows with failed attempts.
func (t *TM) TryCommit(env *sim.Env) stm.Status {
	p := env.Proc()
	tx := t.txn(p)
	env.Yield()
	if !t.validate(tx) {
		t.selfAbort(tx)
		return stm.Aborted
	}
	tx.d.st = committed
	tx.activ = false
	delete(t.stamps, p)
	return stm.OK
}
