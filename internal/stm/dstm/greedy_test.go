// The external test package breaks the import cycle that the
// adversary's cross-substrate matrix would otherwise close: adversary
// (driven here) imports this package's factory for its simulated
// counterpart cells.
package dstm_test

import (
	"testing"

	"livetm/internal/adversary"
	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/dstm"
	"livetm/internal/stm/stmtest"
)

func greedyFactory(nProcs, nVars int) stm.TM { return dstm.NewWithCM(dstm.Greedy) }

func TestGreedyConformance(t *testing.T) {
	stmtest.Conformance(t, greedyFactory)
}

func TestGreedyName(t *testing.T) {
	if dstm.NewWithCM(dstm.Greedy).Name() != "dstm-greedy" {
		t.Error("name")
	}
}

// TestGreedyNoLivelockUnderMetronome: two conflicting writers under
// strict alternation. With AbortOther they can abort each other
// forever; with Greedy the older transaction always wins, so both
// processes commit (write-write starvation freedom).
func TestGreedyNoLivelockUnderMetronome(t *testing.T) {
	tm := dstm.NewWithCM(dstm.Greedy)
	s := sim.New(&sim.RoundRobin{})
	defer s.Close()
	var c1, c2 int
	_ = s.Spawn(1, writerBody(tm, &c1))
	_ = s.Spawn(2, writerBody(tm, &c2))
	s.Run(4000)
	if c1 == 0 || c2 == 0 {
		t.Errorf("commits = %d, %d; greedy must avoid mutual-abort livelock", c1, c2)
	}
}

// writerBody runs blind-write transactions (write then commit), the
// pure write-write conflict workload.
func writerBody(tm stm.TM, commits *int) func(*sim.Env) {
	return func(env *sim.Env) {
		for i := model.Value(0); ; i++ {
			if tm.Write(env, 0, i) != stm.OK {
				continue
			}
			if tm.TryCommit(env) == stm.OK {
				*commits++
			}
		}
	}
}

// TestGreedyPriorityRetainedAcrossRetries: after an abort a process
// keeps its (older) timestamp, so it wins its next conflict.
func TestGreedyPriorityRetainedAcrossRetries(t *testing.T) {
	tm := dstm.NewWithCM(dstm.Greedy)
	env1, env2 := sim.Background(1), sim.Background(2)
	// p1 starts first: older stamp.
	if st := tm.Write(env1, 0, 1); st != stm.OK {
		t.Fatal("p1 write")
	}
	// p2 (younger) conflicts: must abort itself, not p1.
	if st := tm.Write(env2, 0, 2); st != stm.Aborted {
		t.Fatal("younger p2 must self-abort")
	}
	// p2 retries (keeps its stamp, still younger): self-aborts again.
	if st := tm.Write(env2, 0, 2); st != stm.Aborted {
		t.Fatal("p2 must still be younger")
	}
	if st := tm.TryCommit(env1); st != stm.OK {
		t.Fatal("p1 commits")
	}
	// After p1's commit its stamp is retired; p2's retained stamp is
	// now the oldest and its retry succeeds.
	if st := tm.Write(env2, 0, 2); st != stm.OK {
		t.Fatal("p2's retry after p1's commit must acquire")
	}
	if st := tm.TryCommit(env2); st != stm.OK {
		t.Fatal("p2 commits")
	}
}

// TestGreedyLosesCrashResilience: a crashed transaction with an older
// stamp is never aborted by younger competitors — Greedy trades fault
// tolerance for fault-free starvation freedom (the worst crash point
// wedges the survivor).
func TestGreedyLosesCrashResilience(t *testing.T) {
	worst := stmtest.CrashSweep(greedyFactory, 500, 40, 43)
	if worst != 0 {
		t.Errorf("worst-case survivor commits = %d, want 0 (older crashed owner is never aborted)", worst)
	}
}

// TestGreedyTheorem1StillApplies: the impossibility adversary starves
// p1 against Greedy too — its weapon is invisible reads, which no
// contention manager can protect. Even a CM that guarantees every
// write conflict is eventually won cannot give local progress with
// opacity (Theorem 1).
func TestGreedyTheorem1StillApplies(t *testing.T) {
	res := adversary.Algorithm1(greedyFactory, adversary.Config{Rounds: 8, Seed: 3})
	if res.P1Committed {
		t.Fatal("p1 committed against greedy DSTM")
	}
	if res.Rounds < 8 {
		t.Fatalf("p2 completed %d/8 rounds", res.Rounds)
	}
	if res.Stats.Commits[1] != 0 {
		t.Error("p1 must starve despite retaining the oldest timestamp")
	}
	res2 := adversary.Algorithm2(greedyFactory, adversary.Config{Rounds: 8, Seed: 7})
	if res2.P1Committed || res2.Rounds < 8 {
		t.Errorf("algorithm 2: p1Committed=%v rounds=%d", res2.P1Committed, res2.Rounds)
	}
}
