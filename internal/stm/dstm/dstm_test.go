package dstm

import (
	"testing"

	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/stmtest"
)

func factory(nProcs, nVars int) stm.TM { return New() }

func TestConformance(t *testing.T) {
	stmtest.Conformance(t, factory)
}

func TestConformanceAbortSelf(t *testing.T) {
	stmtest.Conformance(t, func(nProcs, nVars int) stm.TM { return NewWithCM(AbortSelf) })
}

func TestNames(t *testing.T) {
	if New().Name() != "dstm" || NewWithCM(AbortSelf).Name() != "dstm-abortself" {
		t.Error("names")
	}
}

func TestFaultFreeProgress(t *testing.T) {
	counts := stmtest.FaultFree(factory, 3, 8000, 41)
	for p, c := range counts {
		if c == 0 {
			t.Errorf("process %d never committed fault-free", p)
		}
	}
}

// TestCrashNeverBlocks: obstruction freedom — a crashed transaction's
// descriptor is aborted by the next competitor; every crash point
// leaves the survivor progressing (solo progress in parasitic-free
// systems, §3.2.3).
func TestCrashNeverBlocks(t *testing.T) {
	worst := stmtest.CrashSweep(factory, 600, 60, 17)
	if worst == 0 {
		t.Error("some crash point blocked the survivor; obstruction-free TMs must tolerate crashes")
	}
}

// TestParasiticWriterDefeats: under an adversarial schedule that gives
// the parasitic writer two slices per survivor slice, the parasite
// keeps re-acquiring the variable and aborting the correct process
// inside its commit window — no solo progress under parasites. (Under
// a fair schedule the survivor wins the race often enough to progress;
// the paper's claims are worst-case over schedules, see
// TestParasiticFairScheduleSurvives.)
func TestParasiticWriterDefeats(t *testing.T) {
	if got := stmtest.ParasiticBiased(factory, 4000, 2); got != 0 {
		t.Errorf("survivor commits = %d, want 0 (livelock with the biased parasitic writer)", got)
	}
}

// TestParasiticFairScheduleSurvives documents the schedule dependence:
// with fair random scheduling, observing its own abort costs the
// parasite a slice and the survivor progresses.
func TestParasiticFairScheduleSurvives(t *testing.T) {
	if got := stmtest.Parasitic(factory, 4000, 17); got == 0 {
		t.Error("under a fair schedule the survivor should win the race against a 1:1 parasite")
	}
}

// TestAbortSelfLosesCrashResilience (the CM ablation): with the polite
// contention manager a crashed active descriptor is never cleaned up,
// and conflicting transactions abort forever.
func TestAbortSelfLosesCrashResilience(t *testing.T) {
	worst := stmtest.CrashSweep(func(nProcs, nVars int) stm.TM { return NewWithCM(AbortSelf) }, 600, 60, 17)
	if worst != 0 {
		t.Errorf("worst-case survivor commits = %d, want 0 with AbortSelf", worst)
	}
}

// TestSuspensionNeverStalls: obstruction freedom means even the
// suspension window costs the survivor nothing — competitors abort
// the suspended owner's descriptor instead of waiting (contrast with
// glock's TestSuspensionStallsButRecovers).
func TestSuspensionNeverStalls(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		during, recovered := stmtest.SuspensionStall(factory, 37, 600, 800, seed)
		if during == 0 {
			t.Errorf("seed %d: survivor stalled during the suspension; DSTM must not wait", seed)
		}
		if recovered == 0 {
			t.Errorf("seed %d: survivor must keep committing after resume", seed)
		}
	}
}

// TestParasiticReaderHarmless: invisible reads — a parasitic reader
// cannot abort anyone and its snapshot never invalidates (the writer
// commits regardless).
func TestParasiticReaderHarmless(t *testing.T) {
	tm := New()
	s := sim.New(sim.NewSeeded(14))
	defer s.Close()
	var c2 int
	_ = s.Spawn(1, stmtest.ParasiticReaderBody(tm, 0))
	_ = s.Spawn(2, stmtest.CounterBody(tm, 0, &c2))
	s.Run(4000)
	if c2 == 0 {
		t.Error("a parasitic reader must not block the writer")
	}
}

// TestWriteWriteConflictAbortsOther: the aggressive CM aborts the
// competitor immediately.
func TestWriteWriteConflictAbortsOther(t *testing.T) {
	tm := New()
	env1, env2 := sim.Background(1), sim.Background(2)
	if st := tm.Write(env1, 0, 1); st != stm.OK {
		t.Fatal("p1 write")
	}
	if st := tm.Write(env2, 0, 2); st != stm.OK {
		t.Fatal("p2 write must succeed by aborting p1")
	}
	if st := tm.TryCommit(env1); st != stm.Aborted {
		t.Fatal("p1 must discover it was aborted")
	}
	if st := tm.TryCommit(env2); st != stm.OK {
		t.Fatal("p2 commits")
	}
	v, st := tm.Read(env1, 0)
	if st != stm.OK || v != 2 {
		t.Fatalf("committed value = %d,%v; want 2,ok", v, st)
	}
}

// TestAbortedWriteInvisible: an aborted transaction's new value is
// never observable; the locator resolves to the old value.
func TestAbortedWriteInvisible(t *testing.T) {
	tm := New()
	env1, env2 := sim.Background(1), sim.Background(2)
	if st := tm.Write(env1, 0, 9); st != stm.OK {
		t.Fatal("p1 write")
	}
	// p2's write aborts p1 and installs 2, then p2 itself is aborted
	// by p1's retry before committing.
	if st := tm.Write(env2, 0, 2); st != stm.OK {
		t.Fatal("p2 write")
	}
	// p1's next operation observes its own abort (ending that
	// transaction); the operation after that starts fresh and aborts
	// p2 in turn.
	if st := tm.Write(env1, 0, 3); st != stm.Aborted {
		t.Fatal("p1 must first observe its abort")
	}
	if st := tm.Write(env1, 0, 3); st != stm.OK {
		t.Fatal("p1 retry write (aborts p2)")
	}
	// p1 has not committed either; a third process reads the initial 0.
	env3 := sim.Background(3)
	// p3's read observes the old value through the locator chain; but
	// note p1's transaction is still active, so p3 sees oldVal.
	v, st := tm.Read(env3, 0)
	if st != stm.OK || v != 0 {
		t.Fatalf("read through active/aborted locators = %d,%v; want 0,ok", v, st)
	}
}

// TestReadValidationCatchesChange: a transaction whose read set is
// invalidated by a commit aborts at its next read.
func TestReadValidationCatchesChange(t *testing.T) {
	tm := New()
	env1, env2 := sim.Background(1), sim.Background(2)
	if _, st := tm.Read(env1, 0); st != stm.OK {
		t.Fatal("p1 read x0")
	}
	if st := tm.Write(env2, 0, 1); st != stm.OK {
		t.Fatal("p2 write")
	}
	if st := tm.TryCommit(env2); st != stm.OK {
		t.Fatal("p2 commit")
	}
	if _, st := tm.Read(env1, 1); st != stm.Aborted {
		t.Fatal("p1's snapshot is stale; the next read must abort")
	}
}
