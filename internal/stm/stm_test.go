package stm

import (
	"testing"

	"livetm/internal/model"
	"livetm/internal/sim"
)

// memTM is a trivial single-process TM used to test the recorder: it
// applies operations directly and aborts on demand.
type memTM struct {
	store     map[model.TVar]model.Value
	abortNext bool
}

func (m *memTM) Name() string { return "mem" }

func (m *memTM) Read(env *sim.Env, x model.TVar) (model.Value, Status) {
	if m.abortNext {
		m.abortNext = false
		return 0, Aborted
	}
	return m.store[x], OK
}

func (m *memTM) Write(env *sim.Env, x model.TVar, v model.Value) Status {
	if m.abortNext {
		m.abortNext = false
		return Aborted
	}
	m.store[x] = v
	return OK
}

func (m *memTM) TryCommit(env *sim.Env) Status {
	if m.abortNext {
		m.abortNext = false
		return Aborted
	}
	return OK
}

func TestStatusString(t *testing.T) {
	if OK.String() != "ok" || Aborted.String() != "aborted" {
		t.Error("status names")
	}
	if Status(0).String() != "status(?)" {
		t.Error("unknown status name")
	}
}

func TestRecorderHistory(t *testing.T) {
	rec := NewRecorder(&memTM{store: map[model.TVar]model.Value{}})
	if rec.Name() != "mem" {
		t.Errorf("Name = %q", rec.Name())
	}
	env := sim.Background(1)
	if _, st := rec.Read(env, 0); st != OK {
		t.Fatal("read")
	}
	if st := rec.Write(env, 0, 5); st != OK {
		t.Fatal("write")
	}
	if st := rec.TryCommit(env); st != OK {
		t.Fatal("commit")
	}
	h := rec.History()
	want := model.History{
		model.Read(1, 0), model.ValueResp(1, 0),
		model.Write(1, 0, 5), model.OK(1),
		model.TryCommit(1), model.Commit(1),
	}
	if len(h) != len(want) {
		t.Fatalf("history %v, want %v", h, want)
	}
	for i := range h {
		if h[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, h[i], want[i])
		}
	}
	if err := model.CheckWellFormed(h); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderAborts(t *testing.T) {
	m := &memTM{store: map[model.TVar]model.Value{}}
	rec := NewRecorder(m)
	env := sim.Background(2)
	m.abortNext = true
	if _, st := rec.Read(env, 0); st != Aborted {
		t.Fatal("expected abort")
	}
	h := rec.History()
	if len(h) != 2 || h[1] != model.Abort(2) {
		t.Fatalf("history = %v, want read + A_2", h)
	}
}

func TestRecorderHistoryIsCopy(t *testing.T) {
	rec := NewRecorder(&memTM{store: map[model.TVar]model.Value{}})
	env := sim.Background(1)
	rec.Read(env, 0)
	h := rec.History()
	h[0] = model.Abort(9)
	if rec.History()[0] != model.Read(1, 0) {
		t.Error("History must return a copy")
	}
}

func TestSummarize(t *testing.T) {
	h := model.NewBuilder().
		Read(1, 0, 0).Commit(1).
		Read(2, 0, 0).CommitAbort(2).
		Read(1, 0, 0).Commit(1).
		Raw(model.Read(3, 0)). // pending invocation
		History()
	s := Summarize(h)
	if s.Commits[1] != 2 || s.Commits[2] != 0 {
		t.Errorf("commits = %v", s.Commits)
	}
	if s.Aborts[2] != 1 {
		t.Errorf("aborts = %v", s.Aborts)
	}
	if !s.PendingInv[3] {
		t.Error("p3 has a pending invocation")
	}
	if s.PendingInv[1] {
		t.Error("p1 has no pending invocation")
	}
	if s.TotalCommits() != 2 {
		t.Errorf("total commits = %d, want 2", s.TotalCommits())
	}
	if s.Operations[1] != 4 { // 2 reads + 2 commits
		t.Errorf("p1 operations = %d, want 4", s.Operations[1])
	}
}
