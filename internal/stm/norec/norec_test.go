package norec

import (
	"testing"

	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/stmtest"
)

func factory(nProcs, nVars int) stm.TM { return New() }

func TestConformance(t *testing.T) {
	stmtest.Conformance(t, factory)
}

func TestFaultFreeProgress(t *testing.T) {
	counts := stmtest.FaultFree(factory, 3, 6000, 71)
	for p, c := range counts {
		if c == 0 {
			t.Errorf("process %d never committed fault-free", p)
		}
	}
}

// TestCrashHoldingSeqLockBlocks: a crash inside the commit window
// holds the global sequence lock forever; like TL2, NOrec ensures
// solo progress only in crash-free systems.
func TestCrashHoldingSeqLockBlocks(t *testing.T) {
	worst := stmtest.CrashSweep(factory, 600, 60, 37)
	if worst != 0 {
		t.Errorf("worst-case survivor commits = %d, want 0 (sequence lock held)", worst)
	}
}

// TestParasiticHarmless: deferred updates — a parasitic writer holds
// nothing.
func TestParasiticHarmless(t *testing.T) {
	if got := stmtest.Parasitic(factory, 4000, 37); got == 0 {
		t.Error("a parasitic writer must not block NOrec")
	}
	if got := stmtest.ParasiticBiased(factory, 4000, 2); got == 0 {
		t.Error("even a biased parasitic writer must not block NOrec")
	}
}

// TestCrashBlocksDisjointWriters: unlike TL2, the crashed commit
// blocks updates to *disjoint* variables too — the sequence lock is
// global. This distinguishes the two designs' failure modes within
// the same verdict row.
func TestCrashBlocksDisjointWriters(t *testing.T) {
	// Find a crash point inside p1's commit window, then check that
	// p2 — writing a different variable — still cannot commit.
	for crashAt := 1; crashAt <= 16; crashAt++ {
		tm := New()
		s := sim.New(nil)
		_ = s.Spawn(1, func(env *sim.Env) {
			tm.Write(env, 0, 1)
			tm.TryCommit(env)
		})
		s.Run(crashAt)
		s.Crash(1)

		var c2 int
		_ = s.Spawn(2, stmtest.CounterBody(tm, 1, &c2))
		s.Run(800)
		s.Close()
		if c2 == 0 {
			return // found the blocking window: expected behavior
		}
	}
	t.Error("no crash point blocked a disjoint writer; the sequence lock should be global")
}

// TestValueBasedValidationSurvivesSilentRewrite: NOrec's value-based
// validation admits a reader when a writer re-installed the same
// value (where TL2's version check would abort).
func TestValueBasedValidationSurvivesSilentRewrite(t *testing.T) {
	tm := New()
	env1, env2 := sim.Background(1), sim.Background(2)
	// p1 reads x0 = 0.
	if _, st := tm.Read(env1, 0); st != stm.OK {
		t.Fatal("p1 read")
	}
	// p2 commits x1 := 5 (bumps the sequence number; x0 untouched).
	if st := tm.Write(env2, 1, 5); st != stm.OK {
		t.Fatal("p2 write")
	}
	if st := tm.TryCommit(env2); st != stm.OK {
		t.Fatal("p2 commit")
	}
	// p1's next read revalidates by value and passes: x0 is still 0.
	if _, st := tm.Read(env1, 1); st != stm.OK {
		t.Fatal("value-based validation must admit p1 (its snapshot still holds by value)")
	}
	if st := tm.TryCommit(env1); st != stm.OK {
		t.Fatal("p1 read-only commit")
	}
}

// TestSnapshotStillConsistent: value-based validation must not admit
// a genuinely stale snapshot.
func TestSnapshotStillConsistent(t *testing.T) {
	tm := New()
	env1, env2 := sim.Background(1), sim.Background(2)
	if _, st := tm.Read(env1, 0); st != stm.OK {
		t.Fatal("p1 read x0")
	}
	if st := tm.Write(env2, 0, 9); st != stm.OK {
		t.Fatal("p2 write")
	}
	if st := tm.TryCommit(env2); st != stm.OK {
		t.Fatal("p2 commit")
	}
	// p1's snapshot (x0=0) is now stale by value: the next read aborts.
	if _, st := tm.Read(env1, 1); st != stm.Aborted {
		t.Fatal("stale-by-value snapshot must abort")
	}
}
