// Package norec implements a NOrec-style TM (Dalessandro, Spear,
// Scott; PPoPP 2010 — cited here as a post-paper design the liveness
// framework classifies cleanly): no per-variable metadata at all, one
// global sequence lock, deferred updates, and value-based validation.
//
// Reads snapshot the global sequence number and validate by re-reading
// values whenever it changes; commits take the sequence lock, validate,
// publish, and release.
//
// Liveness class in the paper's terms: solo progress in crash-free
// systems, like TL2 — a parasitic process holds nothing (deferred
// updates), but a crash inside the commit window leaves the *global*
// lock held and every update transaction in the system blocks, not
// just conflicting ones. The liveness matrix shows this coarser
// failure mode with the same verdict row as TL2.
package norec

import (
	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

type txn struct {
	active   bool
	snapshot uint64
	reads    []readEntry
	writes   map[model.TVar]model.Value
	order    []model.TVar
}

type readEntry struct {
	x model.TVar
	v model.Value
}

// TM is the NOrec-style TM.
type TM struct {
	seq    uint64 // odd while the writer holds the sequence lock
	owner  model.Proc
	values map[model.TVar]model.Value
	txns   map[model.Proc]*txn
}

var _ stm.TM = (*TM)(nil)

// New returns an empty instance.
func New() *TM {
	return &TM{
		values: make(map[model.TVar]model.Value),
		txns:   make(map[model.Proc]*txn),
	}
}

// Name implements stm.TM.
func (t *TM) Name() string { return "norec" }

func (t *TM) value(x model.TVar) model.Value {
	if v, ok := t.values[x]; ok {
		return v
	}
	return model.InitialValue
}

func (t *TM) txn(p model.Proc) *txn {
	tx, ok := t.txns[p]
	if !ok || !tx.active {
		tx = &txn{
			active:   true,
			snapshot: t.seq,
			writes:   make(map[model.TVar]model.Value),
		}
		t.txns[p] = tx
	}
	return tx
}

// revalidate re-reads the whole read set by value. It succeeds only
// when the sequence number is stable and even (no writer) and every
// previously read value is unchanged; on success it moves the
// transaction's snapshot forward.
func (t *TM) revalidate(tx *txn) bool {
	if t.seq%2 == 1 {
		return false // a writer holds the sequence lock
	}
	for _, r := range tx.reads {
		if t.value(r.x) != r.v {
			return false
		}
	}
	tx.snapshot = t.seq
	return true
}

// Read implements stm.TM.
func (t *TM) Read(env *sim.Env, x model.TVar) (model.Value, stm.Status) {
	p := env.Proc()
	tx := t.txn(p)
	if v, buffered := tx.writes[x]; buffered {
		env.Yield()
		return v, stm.OK
	}
	env.Yield()
	if t.seq != tx.snapshot {
		// The world moved: value-based revalidation (NOrec's
		// signature move — false conflicts on silent re-writes only).
		if !t.revalidate(tx) {
			tx.active = false
			return 0, stm.Aborted
		}
	}
	v := t.value(x)
	tx.reads = append(tx.reads, readEntry{x: x, v: v})
	return v, stm.OK
}

// Write implements stm.TM: buffered until commit.
func (t *TM) Write(env *sim.Env, x model.TVar, v model.Value) stm.Status {
	p := env.Proc()
	tx := t.txn(p)
	env.Yield()
	if _, buffered := tx.writes[x]; !buffered {
		tx.order = append(tx.order, x)
	}
	tx.writes[x] = v
	return stm.OK
}

// TryCommit implements stm.TM: read-only transactions commit after a
// final value validation; update transactions take the global
// sequence lock (seq becomes odd), validate, publish, and release. A
// crash while the lock is held blocks every update transaction in the
// system.
func (t *TM) TryCommit(env *sim.Env) stm.Status {
	p := env.Proc()
	tx := t.txn(p)
	env.Yield()
	if len(tx.writes) == 0 {
		ok := t.seq == tx.snapshot || t.revalidate(tx)
		tx.active = false
		if ok {
			return stm.OK
		}
		return stm.Aborted
	}

	// Acquire the sequence lock; NOrec spins here, which under a
	// crashed lock holder means blocking forever. We follow NOrec and
	// block (yield-spin) rather than abort: this is what makes its
	// crash column match TL2's for a different reason.
	for t.seq%2 == 1 {
		env.Yield()
	}
	t.seq++ // odd: locked
	t.owner = p

	env.Yield() // crash point: the global sequence lock is held

	if !t.revalidateLocked(tx) {
		t.seq++ // even again: released
		t.owner = 0
		tx.active = false
		return stm.Aborted
	}
	// Publish and release in one atomic slice (the lock protects the
	// write-back; a half-published commit would be unaccountable).
	for _, x := range tx.order {
		t.values[x] = tx.writes[x]
	}
	t.seq++ // even: released, new version
	t.owner = 0
	tx.active = false
	return stm.OK
}

// revalidateLocked validates the read set while holding the sequence
// lock (seq is odd and owned by the caller).
func (t *TM) revalidateLocked(tx *txn) bool {
	for _, r := range tx.reads {
		if t.value(r.x) != r.v {
			return false
		}
	}
	return true
}
