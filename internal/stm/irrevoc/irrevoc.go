// Package irrevoc implements the paper's *second* circumvention of the
// impossibility (§1.3): assume the TM controls the application's
// re-execution [12]. The wrapper turns a transaction irrevocable after
// it has been aborted too often — it hands the starving process a
// FIFO token and silences every other process's operations (immediate
// aborts) until the token holder commits. Because the holder then runs
// without interference, its next attempt succeeds on any inner TM.
//
// What this buys, and what it cannot: with cooperative applications
// (retry loops) in a crash-free, parasitic-free system, every process
// commits — starvation freedom even under metronome schedules where
// the raw inner TM starves one writer forever. But Theorem 1 is not
// breached, in three instructive ways the package tests pin down:
//
//   - the impossibility adversary controls the *application*, not just
//     the schedule, and never re-invokes the victim when the token
//     would help it;
//   - a *parasitic* process accumulates aborts like anyone else,
//     captures the token, and — never committing — never releases it,
//     silencing the entire system (the token mechanism presumes the TM
//     controls the application's commit behavior, which is precisely
//     what a parasite denies);
//   - a token holder that crashes silences everyone forever.
//
// Under faults the wrapper therefore behaves like the global lock,
// which is why it is not in the liveness-matrix registry: its verdict
// is the claim "local progress iff the TM controls the application",
// not a schedule-measurable row.
package irrevoc

import (
	"fmt"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

// TM wraps an inner TM with abort-triggered irrevocability.
type TM struct {
	inner     stm.TM
	threshold int

	aborts map[model.Proc]int // consecutive aborts per process
	queue  []model.Proc       // FIFO of processes waiting for the token
	holder model.Proc         // current token holder; 0 when none
}

var _ stm.TM = (*TM)(nil)

// Wrap returns inner with irrevocability after threshold consecutive
// aborts.
func Wrap(inner stm.TM, threshold int) (*TM, error) {
	if threshold <= 0 {
		return nil, fmt.Errorf("irrevoc: threshold %d must be positive", threshold)
	}
	return &TM{
		inner:     inner,
		threshold: threshold,
		aborts:    make(map[model.Proc]int),
	}, nil
}

// Name implements stm.TM.
func (t *TM) Name() string { return "irrevocable(" + t.inner.Name() + ")" }

// silenced reports whether p must be aborted immediately because some
// other process holds (or is owed) the token.
func (t *TM) silenced(p model.Proc) bool {
	if t.holder == p {
		return false
	}
	if t.holder != 0 {
		return true
	}
	// No holder: promote the queue head lazily.
	if len(t.queue) > 0 {
		t.holder = t.queue[0]
		t.queue = t.queue[1:]
		return t.holder != p
	}
	return false
}

// noteAbort counts a consecutive abort and enqueues p for the token at
// the threshold.
func (t *TM) noteAbort(p model.Proc) {
	t.aborts[p]++
	if t.aborts[p] == t.threshold {
		for _, q := range t.queue {
			if q == p {
				return
			}
		}
		t.queue = append(t.queue, p)
	}
}

// noteCommit resets p's abort streak and releases its token.
func (t *TM) noteCommit(p model.Proc) {
	t.aborts[p] = 0
	if t.holder == p {
		t.holder = 0
	}
}

// Read implements stm.TM.
func (t *TM) Read(env *sim.Env, x model.TVar) (model.Value, stm.Status) {
	p := env.Proc()
	env.Yield()
	if t.silenced(p) {
		return 0, stm.Aborted // the TM delays p's re-execution
	}
	v, st := t.inner.Read(env, x)
	if st == stm.Aborted {
		t.noteAbort(p)
	}
	return v, st
}

// Write implements stm.TM.
func (t *TM) Write(env *sim.Env, x model.TVar, v model.Value) stm.Status {
	p := env.Proc()
	env.Yield()
	if t.silenced(p) {
		return stm.Aborted
	}
	st := t.inner.Write(env, x, v)
	if st == stm.Aborted {
		t.noteAbort(p)
	}
	return st
}

// TryCommit implements stm.TM.
func (t *TM) TryCommit(env *sim.Env) stm.Status {
	p := env.Proc()
	env.Yield()
	if t.silenced(p) {
		return stm.Aborted
	}
	st := t.inner.TryCommit(env)
	if st == stm.OK {
		t.noteCommit(p)
	} else {
		t.noteAbort(p)
	}
	return st
}
