package irrevoc

import (
	"testing"

	"livetm/internal/adversary"
	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/dstm"
	"livetm/internal/stm/stmtest"
	"livetm/internal/stm/tl2"
)

func factory(nProcs, nVars int) stm.TM {
	tm, err := Wrap(dstm.New(), 4)
	if err != nil {
		panic(err)
	}
	return tm
}

func TestWrapValidation(t *testing.T) {
	if _, err := Wrap(dstm.New(), 0); err == nil {
		t.Error("non-positive threshold must be rejected")
	}
	tm, err := Wrap(tl2.New(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Name() != "irrevocable(tl2)" {
		t.Errorf("name = %q", tm.Name())
	}
}

func TestConformance(t *testing.T) {
	stmtest.Conformance(t, factory)
}

// writerBody runs blind write-commit transactions and counts commits.
func writerBody(tm stm.TM, commits *int) func(*sim.Env) {
	return func(env *sim.Env) {
		for i := model.Value(0); ; i++ {
			if tm.Write(env, 0, i) != stm.OK {
				continue
			}
			if tm.TryCommit(env) == stm.OK {
				*commits++
			}
		}
	}
}

// metronomeRun drives two blind writers under strict alternation and
// returns their commit counts.
func metronomeRun(tm stm.TM, steps int) (c1, c2 int) {
	s := sim.New(&sim.RoundRobin{})
	defer s.Close()
	_ = s.Spawn(1, writerBody(tm, &c1))
	_ = s.Spawn(2, writerBody(tm, &c2))
	s.Run(steps)
	return c1, c2
}

// TestStarvationFreedomUnderMetronome: under strict alternation raw
// DSTM (AbortOther) starves one blind writer forever; the wrapper's
// token rescues it — the paper's circumvention (b) in action for
// cooperative applications.
func TestStarvationFreedomUnderMetronome(t *testing.T) {
	r1, r2 := metronomeRun(dstm.New(), 4000)
	if r1 != 0 && r2 != 0 {
		t.Fatalf("precondition: raw dstm should starve one metronome writer (got %d, %d)", r1, r2)
	}
	if r1+r2 == 0 {
		t.Fatalf("precondition: raw dstm should let one writer commit")
	}
	w1, w2 := metronomeRun(factory(2, 1), 4000)
	if w1 == 0 || w2 == 0 {
		t.Fatalf("wrapper must rescue both writers, got %d, %d", w1, w2)
	}
}

// TestFaultFreeAllProgress: every process commits with the wrapper
// under fair scheduling too.
func TestFaultFreeAllProgress(t *testing.T) {
	counts := stmtest.FaultFree(factory, 3, 6000, 47)
	for p, c := range counts {
		if c == 0 {
			t.Errorf("process %d never committed under the wrapper", p)
		}
	}
}

// TestParasiteCapturesToken: a parasitic writer accumulates aborts,
// earns the token, and never releases it — the whole system is
// silenced. The circumvention presumes the TM controls the
// application's commits; a parasite is exactly an application it does
// not control, so Theorem 1 stands.
func TestParasiteCapturesToken(t *testing.T) {
	if got := stmtest.ParasiticBiased(factory, 4000, 2); got != 0 {
		t.Errorf("survivor commits = %d, want 0 (the parasite holds the token forever)", got)
	}
	if got := stmtest.Parasitic(factory, 4000, 47); got != 0 {
		t.Errorf("fair schedule: survivor commits = %d, want 0", got)
	}
}

// TestCrashedTokenHolderBlocksAll constructs the fatal crash window
// directly: drive w1 to the token via metronome starvation, crash it
// while it holds the token, and watch w2 never commit again.
func TestCrashedTokenHolderBlocksAll(t *testing.T) {
	tm, err := Wrap(dstm.New(), 4)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(&sim.RoundRobin{})
	defer s.Close()
	var c1, c2 int
	_ = s.Spawn(1, writerBody(tm, &c1))
	_ = s.Spawn(2, writerBody(tm, &c2))
	// Run until some process holds the token, then crash the holder.
	for i := 0; i < 20000 && tm.holder == 0; i++ {
		s.Step()
	}
	holder := tm.holder
	if holder == 0 {
		t.Fatal("no process earned the token; the metronome should starve one writer")
	}
	s.Crash(holder)
	var survivor *int
	if holder == 1 {
		survivor = &c2
	} else {
		survivor = &c1
	}
	before := *survivor
	s.Run(4000)
	if *survivor != before {
		t.Errorf("survivor committed %d times after the token holder crashed, want 0", *survivor-before)
	}
}

// TestAdversaryStillWins: the Theorem 1 adversary controls the
// application and starves p1 even against the wrapper.
func TestAdversaryStillWins(t *testing.T) {
	res := adversary.Algorithm1(factory, adversary.Config{Rounds: 8, MaxSteps: 60000, Seed: 3})
	if res.P1Committed {
		t.Fatal("p1 committed: the wrapper must not breach Theorem 1")
	}
	if res.Stats.Commits[1] != 0 {
		t.Error("p1 must have no commits")
	}
}

// TestTokenGrantAndRelease walks the token life cycle directly: p1
// earns the token through read-validation aborts, silences p2 and p3,
// commits, and releases.
func TestTokenGrantAndRelease(t *testing.T) {
	tm, err := Wrap(dstm.New(), 2)
	if err != nil {
		t.Fatal(err)
	}
	env1, env2, env3 := sim.Background(1), sim.Background(2), sim.Background(3)
	// Each round: p1 reads x0, p2 commits a write to x0, p1's write
	// fails validation — one clean abort for p1 per round.
	for i := 0; i < 2; i++ {
		if _, st := tm.Read(env1, 0); st != stm.OK {
			t.Fatalf("round %d: p1 read", i)
		}
		if st := tm.Write(env2, 0, model.Value(i+1)); st != stm.OK {
			t.Fatalf("round %d: p2 write", i)
		}
		if st := tm.TryCommit(env2); st != stm.OK {
			t.Fatalf("round %d: p2 commit", i)
		}
		if st := tm.Write(env1, 0, 9); st != stm.Aborted {
			t.Fatalf("round %d: p1's stale write must abort", i)
		}
	}
	// p1 reached the threshold: everyone else is silenced.
	if st := tm.Write(env3, 1, 9); st != stm.Aborted {
		t.Fatal("p3 must be silenced while p1 is owed the token")
	}
	if st := tm.Write(env2, 0, 5); st != stm.Aborted {
		t.Fatal("p2 must be silenced too")
	}
	// The token holder runs unopposed.
	if st := tm.Write(env1, 0, 7); st != stm.OK {
		t.Fatal("token holder's write must succeed")
	}
	if st := tm.TryCommit(env1); st != stm.OK {
		t.Fatal("token holder must commit")
	}
	// Token released: p3 proceeds normally.
	if st := tm.Write(env3, 1, 9); st != stm.OK {
		t.Fatal("after release p3 must proceed")
	}
	if st := tm.TryCommit(env3); st != stm.OK {
		t.Fatal("p3 commits")
	}
	v, st := tm.Read(env2, 0)
	if st != stm.OK || v != 7 {
		t.Fatalf("x0 = %d,%v; want the token holder's 7", v, st)
	}
}
