// Package glock implements the paper's strawman TM (§1.1, §3.2.1): a
// single global lock protecting all transactions. The TM never aborts
// anything, executes transactions strictly sequentially, and therefore
// ensures opacity and — in a system that is both crash-free and
// parasitic-free — local progress. Any crashed or parasitic lock
// holder blocks every other process forever, which is exactly the
// behavior the impossibility discussion turns on.
//
// Two fairness modes exist: FIFO (the fair lock the paper mentions)
// and barging, kept for the fairness ablation — with barging, an
// unlucky process can starve even in a fault-free system.
package glock

import (
	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

// TM is the global-lock TM. Create instances with New.
type TM struct {
	fair   bool
	holder model.Proc // 0 when free
	queue  []model.Proc
	store  map[model.TVar]model.Value
	inTxn  map[model.Proc]bool
}

var _ stm.TM = (*TM)(nil)

// New returns a FIFO-fair global-lock TM.
func New() *TM { return newTM(true) }

// NewBarging returns the barging (unfair) variant: whoever observes
// the lock free first takes it, regardless of arrival order.
func NewBarging() *TM { return newTM(false) }

func newTM(fair bool) *TM {
	return &TM{
		fair:  fair,
		store: make(map[model.TVar]model.Value),
		inTxn: make(map[model.Proc]bool),
	}
}

// Name implements stm.TM.
func (t *TM) Name() string {
	if t.fair {
		return "glock"
	}
	return "glock-barging"
}

// acquire blocks (by yielding) until p holds the global lock. The
// first operation of each transaction acquires; the commit releases.
func (t *TM) acquire(env *sim.Env, p model.Proc) {
	if t.holder == p {
		return
	}
	if t.fair {
		enqueued := false
		for _, q := range t.queue {
			if q == p {
				enqueued = true
				break
			}
		}
		if !enqueued {
			t.queue = append(t.queue, p)
		}
		for {
			env.Yield()
			if t.holder == 0 && len(t.queue) > 0 && t.queue[0] == p {
				t.queue = t.queue[1:]
				t.holder = p
				return
			}
		}
	}
	for {
		env.Yield()
		if t.holder == 0 {
			t.holder = p
			return
		}
	}
}

func (t *TM) release(p model.Proc) {
	if t.holder == p {
		t.holder = 0
	}
}

// Read implements stm.TM. It blocks until the lock is held; it never
// aborts.
func (t *TM) Read(env *sim.Env, x model.TVar) (model.Value, stm.Status) {
	p := env.Proc()
	if !t.inTxn[p] {
		t.acquire(env, p)
		t.inTxn[p] = true
	}
	env.Yield()
	return t.store[x], stm.OK
}

// Write implements stm.TM. Writes apply in place: the transaction runs
// exclusively and never aborts, so no undo is needed.
func (t *TM) Write(env *sim.Env, x model.TVar, v model.Value) stm.Status {
	p := env.Proc()
	if !t.inTxn[p] {
		t.acquire(env, p)
		t.inTxn[p] = true
	}
	env.Yield()
	t.store[x] = v
	return stm.OK
}

// TryCommit implements stm.TM. It always commits.
func (t *TM) TryCommit(env *sim.Env) stm.Status {
	p := env.Proc()
	if !t.inTxn[p] {
		// An empty transaction: nothing was read or written.
		env.Yield()
		return stm.OK
	}
	env.Yield()
	t.inTxn[p] = false
	t.release(p)
	return stm.OK
}
