package glock

import (
	"testing"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/stmtest"
)

func factory(nProcs, nVars int) stm.TM { return New() }

func TestConformance(t *testing.T) {
	stmtest.Conformance(t, factory)
}

func TestName(t *testing.T) {
	if New().Name() != "glock" || NewBarging().Name() != "glock-barging" {
		t.Error("names")
	}
}

// TestLocalProgressFaultFree: with no faults, every process commits —
// the global lock gives local progress in a crash-free, parasitic-free
// system (§3.2.1).
func TestLocalProgressFaultFree(t *testing.T) {
	counts := stmtest.FaultFree(factory, 4, 4000, 11)
	for p, c := range counts {
		if c == 0 {
			t.Errorf("process %d never committed under the fair global lock", p)
		}
	}
}

// TestNeverAborts: the global-lock TM never issues abort events.
func TestNeverAborts(t *testing.T) {
	rec := stm.NewRecorder(New())
	s := sim.New(sim.NewSeeded(3))
	defer s.Close()
	var c1, c2 int
	_ = s.Spawn(1, stmtest.CounterBody(rec, 0, &c1))
	_ = s.Spawn(2, stmtest.CounterBody(rec, 0, &c2))
	s.Run(2000)
	for _, e := range rec.History() {
		if e.Kind == model.RespAbort {
			t.Fatalf("global-lock TM aborted: %s", e)
		}
	}
	if c1 == 0 || c2 == 0 {
		t.Errorf("commits = %d, %d; both processes must progress", c1, c2)
	}
}

// TestCrashBlocksEveryone: some crash point leaves the lock held
// forever and the survivor starves — the global lock does not ensure
// solo progress under crashes.
func TestCrashBlocksEveryone(t *testing.T) {
	worst := stmtest.CrashSweep(factory, 400, 40, 5)
	if worst != 0 {
		t.Errorf("worst-case survivor commits = %d, want 0 (lock held by the crashed process)", worst)
	}
}

// TestParasiticBlocksEveryone: a parasitic writer holds the lock
// forever.
func TestParasiticBlocksEveryone(t *testing.T) {
	if got := stmtest.Parasitic(factory, 2000, 5); got != 0 {
		t.Errorf("survivor commits = %d, want 0 under a parasitic lock holder", got)
	}
}

// TestSuspensionStallsButRecovers is the §1.2 distinction in action:
// during p1's long suspension the lock may be held and p2 stalls, but
// unlike a crash the stall ends — p2 commits again once p1 resumes
// and releases.
func TestSuspensionStallsButRecovers(t *testing.T) {
	stalled := false
	for seed := uint64(1); seed <= 12; seed++ {
		during, recovered := stmtest.SuspensionStall(factory, 37, 600, 800, seed)
		if recovered == 0 {
			t.Fatalf("seed %d: p2 must recover after p1 resumes (got %d during, %d after)", seed, during, recovered)
		}
		if during == 0 {
			stalled = true // the suspension caught p1 holding the lock
		}
	}
	if !stalled {
		t.Error("no seed caught p1 holding the lock during its suspension; the stall should be observable")
	}
}

// TestFIFOOrder: the fair lock grants in arrival order.
func TestFIFOOrder(t *testing.T) {
	tm := New()
	s := sim.New(&sim.Fixed{Schedule: schedule()})
	defer s.Close()
	var order []model.Proc
	body := func(env *sim.Env) {
		if _, st := tm.Read(env, 0); st != stm.OK {
			t.Error("glock read must not abort")
		}
		order = append(order, env.Proc())
		if tm.TryCommit(env) != stm.OK {
			t.Error("glock commit must not abort")
		}
	}
	_ = s.Spawn(1, body)
	_ = s.Spawn(2, body)
	_ = s.Spawn(3, body)
	s.Run(4000)
	if len(order) != 3 {
		t.Fatalf("completions = %v, want all three processes", order)
	}
	// p1 enqueued first (schedule lets p1 reach the queue first), then
	// p2, then p3.
	for i, want := range []model.Proc{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("grant order = %v, want [1 2 3]", order)
		}
	}
}

// schedule lets each process take exactly one step (enqueue) in id
// order, then round-robins.
func schedule() []model.Proc {
	s := []model.Proc{1, 2, 3}
	for i := 0; i < 200; i++ {
		s = append(s, 1, 2, 3)
	}
	return s
}

// TestBargingConformance: the barging variant is still safe (it is
// only fairness that changes).
func TestBargingConformance(t *testing.T) {
	stmtest.Conformance(t, func(nProcs, nVars int) stm.TM { return NewBarging() })
}

// TestEmptyTransactionCommit: a tryC with no preceding operations
// commits without touching the lock.
func TestEmptyTransactionCommit(t *testing.T) {
	tm := New()
	env := sim.Background(1)
	if tm.TryCommit(env) != stm.OK {
		t.Error("empty transaction must commit")
	}
}
