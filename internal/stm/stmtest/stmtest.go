// Package stmtest provides the shared conformance and liveness-
// scenario harness used by every TM implementation in the repository:
// randomized opacity conformance, sequential-semantics checks, and the
// fault-injection scenarios (crash-point sweeps, parasitic processes)
// that the liveness matrix (DESIGN.md E20) is built on.
package stmtest

import (
	"testing"

	"livetm/internal/model"
	"livetm/internal/safety"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

// Factory creates a fresh TM instance for a system of the given size.
// It aliases stm.Factory so test files can pass their local factories
// to both packages.
type Factory = stm.Factory

// CounterBody returns a process body that repeatedly runs the
// read-increment-commit transaction on x, retrying forever; *commits
// counts successful commits. The body never returns; the scheduler's
// Close kills it.
func CounterBody(tm stm.TM, x model.TVar, commits *int) func(*sim.Env) {
	return func(env *sim.Env) {
		for {
			v, st := tm.Read(env, x)
			if st != stm.OK {
				continue
			}
			if st := tm.Write(env, x, v+1); st != stm.OK {
				continue
			}
			if st := tm.TryCommit(env); st == stm.OK {
				*commits++
			}
		}
	}
}

// DisjointBody is CounterBody on a per-process variable, so processes
// never conflict.
func DisjointBody(tm stm.TM, commits *int) func(*sim.Env) {
	return func(env *sim.Env) {
		x := model.TVar(env.Proc())
		CounterBody(tm, x, commits)(env)
	}
}

// ParasiticWriterBody returns a body that keeps writing to x without
// ever invoking TryCommit. If the TM aborts an operation the body just
// keeps going (a new transaction starts implicitly), still never
// attempting to commit.
func ParasiticWriterBody(tm stm.TM, x model.TVar) func(*sim.Env) {
	return func(env *sim.Env) {
		var v model.Value
		for {
			tm.Write(env, x, v)
			v++
		}
	}
}

// ParasiticReaderBody is like ParasiticWriterBody but only reads.
func ParasiticReaderBody(tm stm.TM, x model.TVar) func(*sim.Env) {
	return func(env *sim.Env) {
		for {
			tm.Read(env, x)
		}
	}
}

// BoundedCounterBody runs the counter transaction until it has
// committed n times, then returns.
func BoundedCounterBody(tm stm.TM, x model.TVar, n int, commits *int) func(*sim.Env) {
	return func(env *sim.Env) {
		for *commits < n {
			v, st := tm.Read(env, x)
			if st != stm.OK {
				continue
			}
			if st := tm.Write(env, x, v+1); st != stm.OK {
				continue
			}
			if st := tm.TryCommit(env); st == stm.OK {
				*commits++
			}
		}
	}
}

// FaultFree runs nProcs counter processes on a shared variable for the
// given number of steps and returns per-process commit counts.
func FaultFree(factory Factory, nProcs, steps int, seed uint64) map[model.Proc]int {
	tm := factory(nProcs, 1)
	s := sim.New(sim.NewSeeded(seed))
	defer s.Close()
	counts := make(map[model.Proc]int, nProcs)
	cells := make([]int, nProcs)
	for i := 0; i < nProcs; i++ {
		p := model.Proc(i + 1)
		c := &cells[i]
		_ = s.Spawn(p, CounterBody(tm, 0, c))
	}
	s.Run(steps)
	for i := 0; i < nProcs; i++ {
		counts[model.Proc(i+1)] = cells[i]
	}
	return counts
}

// CrashSweep crashes process 1 at every step offset in [1, sweep] (one
// fresh run per offset) and returns the worst-case commit count
// process 2 achieves in the following steps. A zero result means some
// crash point blocks the survivor forever — the TM does not ensure
// solo progress under crashes.
func CrashSweep(factory Factory, steps, sweep int, seed uint64) int {
	worst := -1
	for crashAt := 1; crashAt <= sweep; crashAt++ {
		got := crashRun(factory, steps, crashAt, seed)
		if worst < 0 || got < worst {
			worst = got
		}
	}
	return worst
}

func crashRun(factory Factory, steps, crashAt int, seed uint64) int {
	tm := factory(2, 1)
	s := sim.New(sim.NewSeeded(seed))
	defer s.Close()
	var c1, c2 int
	_ = s.Spawn(1, CounterBody(tm, 0, &c1))
	_ = s.Spawn(2, CounterBody(tm, 0, &c2))
	s.Run(crashAt)
	s.Crash(1)
	before := c2
	s.Run(steps)
	return c2 - before
}

// Parasitic runs a parasitic writer (process 1) against a correct
// counter process (process 2) on the same variable under a fair
// seeded schedule and returns the survivor's commits in the second
// half of the run (the first half is warm-up: the parasite needs a few
// steps to establish itself, and the survivor may have a transaction
// in flight). Zero means the parasite defeats the TM.
func Parasitic(factory Factory, steps int, seed uint64) int {
	return ParasiticUnder(factory, sim.NewSeeded(seed), steps)
}

// ParasiticBiased is Parasitic under an adversarial schedule that
// gives the parasite `bias` slices per survivor slice. Liveness claims
// are worst-case over schedules: an obstruction-free TM survives a
// parasite under a fair schedule (observing its own abort costs the
// parasite a slice) but loses once the parasite gets enough slices to
// re-acquire inside the survivor's commit window.
func ParasiticBiased(factory Factory, steps, bias int) int {
	pattern := make([]model.Proc, 0, (bias+1)*steps)
	for len(pattern) < (bias+1)*steps {
		for i := 0; i < bias; i++ {
			pattern = append(pattern, 1)
		}
		pattern = append(pattern, 2)
	}
	return ParasiticUnder(factory, &sim.Fixed{Schedule: pattern}, steps)
}

// ParasiticUnder is the schedule-parameterized core of Parasitic.
func ParasiticUnder(factory Factory, policy sim.Policy, steps int) int {
	tm := factory(2, 1)
	s := sim.New(policy)
	defer s.Close()
	var c2 int
	_ = s.Spawn(1, ParasiticWriterBody(tm, 0))
	_ = s.Spawn(2, CounterBody(tm, 0, &c2))
	s.Run(steps / 2)
	before := c2
	s.Run(steps - steps/2)
	return c2 - before
}

// SuspensionStall runs two counter processes, suspends process 1 for
// `pause` steps mid-run (wherever it happens to be — possibly holding
// locks), and returns the survivor's commits during the suspension and
// after process 1 resumes. It measures the paper's §1.2 distinction:
// a slow process is not a crashed one — blocking TMs stall *during*
// the suspension yet recover afterwards, while resilient TMs never
// stall.
func SuspensionStall(factory Factory, warm, pause, after int, seed uint64) (during, recovered int) {
	tm := factory(2, 1)
	s := sim.New(sim.NewSeeded(seed))
	defer s.Close()
	var c1, c2 int
	_ = s.Spawn(1, CounterBody(tm, 0, &c1))
	_ = s.Spawn(2, CounterBody(tm, 0, &c2))
	s.Run(warm)
	s.Suspend(1, pause)
	at := c2
	s.Run(pause)
	during = c2 - at
	at = c2
	s.Run(after)
	recovered = c2 - at
	return during, recovered
}

// Conformance runs the shared safety conformance suite: sequential
// memory semantics, committed-write visibility, well-formedness and
// opacity of randomized concurrent histories.
func Conformance(t *testing.T, factory Factory) {
	t.Helper()

	t.Run("sequential semantics", func(t *testing.T) {
		tm := factory(1, 2)
		env := sim.Background(1)
		mustRead := func(x model.TVar, want model.Value) {
			t.Helper()
			v, st := tm.Read(env, x)
			if st != stm.OK || v != want {
				t.Fatalf("read x%d = %d,%v; want %d,ok", x, v, st, want)
			}
		}
		mustRead(0, 0)
		if st := tm.Write(env, 0, 7); st != stm.OK {
			t.Fatalf("write: %v", st)
		}
		mustRead(0, 7) // own write
		mustRead(1, 0) // other variable untouched
		if st := tm.TryCommit(env); st != stm.OK {
			t.Fatalf("commit: %v", st)
		}
		mustRead(0, 7) // committed value in the next transaction
		if st := tm.TryCommit(env); st != stm.OK {
			t.Fatalf("read-only commit: %v", st)
		}
	})

	t.Run("committed visibility", func(t *testing.T) {
		// A seeded (randomized-fair) schedule, not a metronome round-
		// robin: under strict alternation a reader that commits
		// read-only transactions can starve an Fgp writer forever (the
		// reader's commits land exactly inside the writer's window —
		// the impossibility pattern of §4). Fairness-in-expectation is
		// the right assumption for a convergence check.
		tm := factory(2, 1)
		s := sim.New(sim.NewSeeded(77))
		defer s.Close()
		var order []model.Value
		_ = s.Spawn(1, func(env *sim.Env) {
			// Retry the whole transaction on any abort: retrying only
			// the commit would commit an empty transaction and lose
			// the write.
			for {
				if tm.Write(env, 0, 41) != stm.OK {
					continue
				}
				if tm.TryCommit(env) == stm.OK {
					return
				}
			}
		})
		_ = s.Spawn(2, func(env *sim.Env) {
			for {
				v, st := tm.Read(env, 0)
				if st != stm.OK {
					continue
				}
				if tm.TryCommit(env) == stm.OK {
					order = append(order, v)
					if v == 41 {
						return
					}
				}
			}
		})
		s.Run(5000)
		if len(order) == 0 || order[len(order)-1] != 41 {
			t.Fatalf("reader never observed the committed 41: %v", order)
		}
	})

	t.Run("no dirty reads", func(t *testing.T) {
		// p1 writes 99 and parks without committing; p2 must never be
		// *returned* 99 — it may read the old value, abort, or block,
		// but the uncommitted value must stay invisible.
		tm := factory(2, 1)
		s := sim.New(sim.NewSeeded(31))
		defer s.Close()
		_ = s.Spawn(1, func(env *sim.Env) {
			tm.Write(env, 0, 99)
			for {
				env.Yield()
			}
		})
		sawDirty := false
		_ = s.Spawn(2, func(env *sim.Env) {
			for {
				if v, st := tm.Read(env, 0); st == stm.OK && v == 99 {
					sawDirty = true
					return
				}
				tm.TryCommit(env)
			}
		})
		s.Run(3000)
		if sawDirty {
			t.Fatal("reader observed an uncommitted write")
		}
	})

	t.Run("snapshot consistency", func(t *testing.T) {
		// p2 reads x twice in one transaction while p1 commits a
		// change in between (across many interleavings): the two reads
		// must agree whenever both return.
		for seed := uint64(1); seed <= 6; seed++ {
			tm := factory(2, 1)
			s := sim.New(sim.NewSeeded(seed * 101))
			inconsistent := false
			_ = s.Spawn(1, func(env *sim.Env) {
				for i := model.Value(1); ; i++ {
					if tm.Write(env, 0, i) != stm.OK {
						continue
					}
					tm.TryCommit(env)
				}
			})
			_ = s.Spawn(2, func(env *sim.Env) {
				for {
					v1, st := tm.Read(env, 0)
					if st != stm.OK {
						continue
					}
					v2, st := tm.Read(env, 0)
					if st != stm.OK {
						continue
					}
					if v1 != v2 {
						inconsistent = true
						return
					}
					tm.TryCommit(env)
				}
			})
			s.Run(4000)
			s.Close()
			if inconsistent {
				t.Fatalf("seed %d: two reads in one transaction disagreed", seed)
			}
		}
	})

	t.Run("opacity random", func(t *testing.T) {
		for seed := uint64(1); seed <= 8; seed++ {
			h := randomHistory(t, factory, seed)
			if err := model.CheckWellFormed(h); err != nil {
				t.Fatalf("seed %d: malformed history: %v\n%s", seed, err, h)
			}
			res, err := safety.CheckOpacity(h)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !res.Holds {
				t.Fatalf("seed %d: history not opaque: %s\n%s", seed, res.Reason, h)
			}
		}
	})
}

// randomHistory drives 2 processes × ≤3 committed transactions over 2
// variables and returns the recorded history (kept small so the
// opacity checker stays fast).
func randomHistory(t *testing.T, factory Factory, seed uint64) model.History {
	t.Helper()
	rec := stm.NewRecorder(factory(2, 2))
	s := sim.New(sim.NewSeeded(seed))
	defer s.Close()
	state := seed | 1
	next := func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	for i := 0; i < 2; i++ {
		p := model.Proc(i + 1)
		_ = s.Spawn(p, func(env *sim.Env) {
			committed := 0
			for committed < 3 {
				ops := next(3) + 1
				aborted := false
				for j := 0; j < ops && !aborted; j++ {
					x := model.TVar(next(2))
					if next(2) == 0 {
						if _, st := rec.Read(env, x); st != stm.OK {
							aborted = true
						}
					} else {
						if st := rec.Write(env, x, model.Value(next(3))); st != stm.OK {
							aborted = true
						}
					}
				}
				if aborted {
					continue
				}
				if rec.TryCommit(env) == stm.OK {
					committed++
				}
			}
		})
	}
	s.Run(20000)
	return rec.History()
}
