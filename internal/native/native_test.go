package native

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// both historically returned TL2 and Mutex; it now returns every
// registered algorithm so the whole suite runs across the registry.
func both(t *testing.T, n int) []TM {
	t.Helper()
	var tms []TM
	for _, info := range Algorithms() {
		tm, err := info.New(n)
		if err != nil {
			t.Fatal(err)
		}
		tms = append(tms, tm)
	}
	return tms
}

func TestNewValidation(t *testing.T) {
	for _, info := range Algorithms() {
		if _, err := info.New(0); err == nil {
			t.Errorf("%s: New(0) must fail", info.Name)
		}
		if _, err := info.New(-1); err == nil {
			t.Errorf("%s: New(-1) must fail", info.Name)
		}
	}
	if _, err := New("native-tl2", 4); err != nil {
		t.Errorf("New by name: %v", err)
	}
	if _, err := New("no-such-algorithm", 4); err == nil {
		t.Error("unknown algorithm must fail")
	}
}

// TestRegistry pins the registry shape: at least 5 algorithms with
// unique names, and at least one nonblocking member.
func TestRegistry(t *testing.T) {
	infos := Algorithms()
	if len(infos) < 5 {
		t.Fatalf("registry has %d algorithms, want >= 5", len(infos))
	}
	seen := map[string]bool{}
	nonblocking := 0
	for _, info := range infos {
		if seen[info.Name] {
			t.Errorf("duplicate name %q", info.Name)
		}
		seen[info.Name] = true
		if info.Nonblocking {
			nonblocking++
		}
	}
	if nonblocking == 0 {
		t.Error("registry must include a nonblocking algorithm")
	}
}

// TestStatsCounters checks that commits and aborts are counted.
func TestStatsCounters(t *testing.T) {
	for _, tm := range both(t, 1) {
		for i := 0; i < 5; i++ {
			if err := tm.Atomically(func(tx Txn) error {
				v, err := tx.Read(0)
				if err != nil {
					return err
				}
				return tx.Write(0, v+1)
			}); err != nil {
				t.Fatal(err)
			}
		}
		st := tm.Stats()
		if st.Commits != 5 {
			t.Errorf("%s: commits = %d, want 5", tm.Name(), st.Commits)
		}
		if got := st.AbortRate(); got < 0 || got >= 1 {
			t.Errorf("%s: abort rate = %v", tm.Name(), got)
		}
	}
	if (Stats{}).AbortRate() != 0 {
		t.Error("empty stats must have abort rate 0")
	}
}

func TestSequentialSemantics(t *testing.T) {
	for _, tm := range both(t, 4) {
		t.Run(tm.Name(), func(t *testing.T) {
			err := tm.Atomically(func(tx Txn) error {
				v, err := tx.Read(0)
				if err != nil {
					return err
				}
				if v != 0 {
					return fmt.Errorf("initial value = %d", v)
				}
				if err := tx.Write(0, 7); err != nil {
					return err
				}
				v, err = tx.Read(0)
				if err != nil {
					return err
				}
				if v != 7 {
					return fmt.Errorf("read own write = %d", v)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			var got int64
			err = tm.Atomically(func(tx Txn) error {
				var err error
				got, err = tx.Read(0)
				return err
			})
			if err != nil || got != 7 {
				t.Fatalf("committed value = %d, %v", got, err)
			}
			if tm.Vars() != 4 {
				t.Errorf("Vars = %d", tm.Vars())
			}
		})
	}
}

func TestOutOfRange(t *testing.T) {
	for _, tm := range both(t, 2) {
		err := tm.Atomically(func(tx Txn) error {
			_, err := tx.Read(5)
			return err
		})
		if err == nil || errors.Is(err, ErrAborted) {
			t.Errorf("%s: out-of-range read error = %v", tm.Name(), err)
		}
		err = tm.Atomically(func(tx Txn) error {
			return tx.Write(-1, 0)
		})
		if err == nil {
			t.Errorf("%s: out-of-range write must error", tm.Name())
		}
	}
}

// TestConcurrentCounter: G goroutines × K increments each; the final
// count must be exact. Run with -race.
func TestConcurrentCounter(t *testing.T) {
	const goroutines, each = 8, 200
	for _, tm := range both(t, 1) {
		t.Run(tm.Name(), func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < each; i++ {
						err := tm.Atomically(func(tx Txn) error {
							v, err := tx.Read(0)
							if err != nil {
								return err
							}
							return tx.Write(0, v+1)
						})
						if err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			var got int64
			_ = tm.Atomically(func(tx Txn) error {
				var err error
				got, err = tx.Read(0)
				return err
			})
			if got != goroutines*each {
				t.Fatalf("counter = %d, want %d", got, goroutines*each)
			}
		})
	}
}

// TestConcurrentBankConservation: transfers between 8 accounts while
// auditors sum them; every audit must see the conserved total (the
// snapshot guarantee under real concurrency).
func TestConcurrentBankConservation(t *testing.T) {
	const accounts, initial = 8, 1000
	for _, tm := range both(t, accounts) {
		t.Run(tm.Name(), func(t *testing.T) {
			err := tm.Atomically(func(tx Txn) error {
				for i := 0; i < accounts; i++ {
					if err := tx.Write(i, initial); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					state := seed | 1
					for {
						select {
						case <-stop:
							return
						default:
						}
						state ^= state << 13
						state ^= state >> 7
						state ^= state << 17
						from := int(state % accounts)
						to := int((state >> 8) % accounts)
						_ = tm.Atomically(func(tx Txn) error {
							fv, err := tx.Read(from)
							if err != nil {
								return err
							}
							tv, err := tx.Read(to)
							if err != nil {
								return err
							}
							if err := tx.Write(from, fv-1); err != nil {
								return err
							}
							return tx.Write(to, tv+1)
						})
					}
				}(uint64(g + 1))
			}
			for audit := 0; audit < 200; audit++ {
				var total int64
				err := tm.Atomically(func(tx Txn) error {
					total = 0
					for i := 0; i < accounts; i++ {
						v, err := tx.Read(i)
						if err != nil {
							return err
						}
						total += v
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if total != accounts*initial {
					t.Fatalf("audit %d: total = %d, want %d", audit, total, accounts*initial)
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestAbandonedBodyWritesInvisible: a body that writes and then
// returns a non-abort error must leave no effects behind, on every
// algorithm (the buffered ones discard, DSTM settles as aborted, the
// mutex baseline buffers until commit).
func TestAbandonedBodyWritesInvisible(t *testing.T) {
	sentinel := errors.New("decline")
	for _, tm := range both(t, 2) {
		err := tm.Atomically(func(tx Txn) error {
			if err := tx.Write(0, 7); err != nil {
				return err
			}
			return sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("%s: err = %v", tm.Name(), err)
		}
		var got int64
		if err := tm.Atomically(func(tx Txn) error {
			var err error
			got, err = tx.Read(0)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Errorf("%s: abandoned write leaked, read %d", tm.Name(), got)
		}
		if st := tm.Stats(); st.Commits != 1 {
			t.Errorf("%s: commits = %d, want only the reader's", tm.Name(), st.Commits)
		}
	}
}

// TestBodyErrorPropagates: a non-abort error from the body is
// returned, not retried.
func TestBodyErrorPropagates(t *testing.T) {
	sentinel := errors.New("sentinel")
	for _, tm := range both(t, 1) {
		calls := 0
		err := tm.Atomically(func(tx Txn) error {
			calls++
			return sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("%s: err = %v", tm.Name(), err)
		}
		if calls != 1 {
			t.Errorf("%s: body ran %d times, want 1", tm.Name(), calls)
		}
	}
}
