package native

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func both(t *testing.T, n int) []TM {
	t.Helper()
	tl2, err := NewTL2(n)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := NewMutex(n)
	if err != nil {
		t.Fatal(err)
	}
	return []TM{tl2, mu}
}

func TestNewValidation(t *testing.T) {
	if _, err := NewTL2(0); err == nil {
		t.Error("NewTL2(0) must fail")
	}
	if _, err := NewMutex(-1); err == nil {
		t.Error("NewMutex(-1) must fail")
	}
}

func TestSequentialSemantics(t *testing.T) {
	for _, tm := range both(t, 4) {
		t.Run(tm.Name(), func(t *testing.T) {
			err := tm.Atomically(func(tx Txn) error {
				v, err := tx.Read(0)
				if err != nil {
					return err
				}
				if v != 0 {
					return fmt.Errorf("initial value = %d", v)
				}
				if err := tx.Write(0, 7); err != nil {
					return err
				}
				v, err = tx.Read(0)
				if err != nil {
					return err
				}
				if v != 7 {
					return fmt.Errorf("read own write = %d", v)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			var got int64
			err = tm.Atomically(func(tx Txn) error {
				var err error
				got, err = tx.Read(0)
				return err
			})
			if err != nil || got != 7 {
				t.Fatalf("committed value = %d, %v", got, err)
			}
			if tm.Vars() != 4 {
				t.Errorf("Vars = %d", tm.Vars())
			}
		})
	}
}

func TestOutOfRange(t *testing.T) {
	for _, tm := range both(t, 2) {
		err := tm.Atomically(func(tx Txn) error {
			_, err := tx.Read(5)
			return err
		})
		if err == nil || errors.Is(err, ErrAborted) {
			t.Errorf("%s: out-of-range read error = %v", tm.Name(), err)
		}
		err = tm.Atomically(func(tx Txn) error {
			return tx.Write(-1, 0)
		})
		if err == nil {
			t.Errorf("%s: out-of-range write must error", tm.Name())
		}
	}
}

// TestConcurrentCounter: G goroutines × K increments each; the final
// count must be exact. Run with -race.
func TestConcurrentCounter(t *testing.T) {
	const goroutines, each = 8, 200
	for _, tm := range both(t, 1) {
		t.Run(tm.Name(), func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < each; i++ {
						err := tm.Atomically(func(tx Txn) error {
							v, err := tx.Read(0)
							if err != nil {
								return err
							}
							return tx.Write(0, v+1)
						})
						if err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			var got int64
			_ = tm.Atomically(func(tx Txn) error {
				var err error
				got, err = tx.Read(0)
				return err
			})
			if got != goroutines*each {
				t.Fatalf("counter = %d, want %d", got, goroutines*each)
			}
		})
	}
}

// TestConcurrentBankConservation: transfers between 8 accounts while
// auditors sum them; every audit must see the conserved total (the
// snapshot guarantee under real concurrency).
func TestConcurrentBankConservation(t *testing.T) {
	const accounts, initial = 8, 1000
	for _, tm := range both(t, accounts) {
		t.Run(tm.Name(), func(t *testing.T) {
			err := tm.Atomically(func(tx Txn) error {
				for i := 0; i < accounts; i++ {
					if err := tx.Write(i, initial); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					state := seed | 1
					for {
						select {
						case <-stop:
							return
						default:
						}
						state ^= state << 13
						state ^= state >> 7
						state ^= state << 17
						from := int(state % accounts)
						to := int((state >> 8) % accounts)
						_ = tm.Atomically(func(tx Txn) error {
							fv, err := tx.Read(from)
							if err != nil {
								return err
							}
							tv, err := tx.Read(to)
							if err != nil {
								return err
							}
							if err := tx.Write(from, fv-1); err != nil {
								return err
							}
							return tx.Write(to, tv+1)
						})
					}
				}(uint64(g + 1))
			}
			for audit := 0; audit < 200; audit++ {
				var total int64
				err := tm.Atomically(func(tx Txn) error {
					total = 0
					for i := 0; i < accounts; i++ {
						v, err := tx.Read(i)
						if err != nil {
							return err
						}
						total += v
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if total != accounts*initial {
					t.Fatalf("audit %d: total = %d, want %d", audit, total, accounts*initial)
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestBodyErrorPropagates: a non-abort error from the body is
// returned, not retried.
func TestBodyErrorPropagates(t *testing.T) {
	sentinel := errors.New("sentinel")
	for _, tm := range both(t, 1) {
		calls := 0
		err := tm.Atomically(func(tx Txn) error {
			calls++
			return sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("%s: err = %v", tm.Name(), err)
		}
		if calls != 1 {
			t.Errorf("%s: body ran %d times, want 1", tm.Name(), calls)
		}
	}
}
