package native

import (
	"errors"
	"fmt"
	"testing"
)

// scriptObserver renders every callback as a compact token so tests
// can assert exact event sequences.
type scriptObserver struct {
	events []string
}

func (o *scriptObserver) ReadInv(i int) { o.events = append(o.events, fmt.Sprintf("r%d?", i)) }
func (o *scriptObserver) ReadReturn(i int, v int64, aborted bool) {
	if aborted {
		o.events = append(o.events, "A")
	} else {
		o.events = append(o.events, fmt.Sprintf("r%d=%d", i, v))
	}
}
func (o *scriptObserver) WriteInv(i int, v int64) {
	o.events = append(o.events, fmt.Sprintf("w%d(%d)?", i, v))
}
func (o *scriptObserver) WriteReturn(i int, v int64, aborted bool) {
	if aborted {
		o.events = append(o.events, "A")
	} else {
		o.events = append(o.events, "ok")
	}
}
func (o *scriptObserver) TryCommitInv() { o.events = append(o.events, "tryC") }
func (o *scriptObserver) TryCommitReturn(committed bool) {
	if committed {
		o.events = append(o.events, "C")
	} else {
		o.events = append(o.events, "A")
	}
}
func (o *scriptObserver) Abandon() { o.events = append(o.events, "abandon") }

// TestEveryAlgorithmObservable: each registered TM implements
// ObservableTM and reports the canonical increment sequence.
func TestEveryAlgorithmObservable(t *testing.T) {
	for _, info := range Algorithms() {
		t.Run(info.Name, func(t *testing.T) {
			tm, err := info.New(2)
			if err != nil {
				t.Fatal(err)
			}
			obs := &scriptObserver{}
			err = AtomicallyObserved(tm, obs, func(tx Txn) error {
				v, err := tx.Read(0)
				if err != nil {
					return err
				}
				return tx.Write(0, v+1)
			})
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"r0?", "r0=0", "w0(1)?", "ok", "tryC", "C"}
			if fmt.Sprint(obs.events) != fmt.Sprint(want) {
				t.Fatalf("events = %v, want %v", obs.events, want)
			}
		})
	}
}

// TestObserveAbandon: a body error ends the attempt without a
// tryCommit, reported through the Abandon hook, and no effects are
// published.
func TestObserveAbandon(t *testing.T) {
	sentinel := errors.New("sentinel")
	for _, info := range Algorithms() {
		t.Run(info.Name, func(t *testing.T) {
			tm, err := info.New(1)
			if err != nil {
				t.Fatal(err)
			}
			obs := &scriptObserver{}
			err = AtomicallyObserved(tm, obs, func(tx Txn) error {
				if err := tx.Write(0, 7); err != nil {
					return err
				}
				return sentinel
			})
			if !errors.Is(err, sentinel) {
				t.Fatalf("err = %v, want sentinel", err)
			}
			want := []string{"w0(7)?", "ok", "abandon"}
			if fmt.Sprint(obs.events) != fmt.Sprint(want) {
				t.Fatalf("events = %v, want %v", obs.events, want)
			}
			if err := tm.Atomically(func(tx Txn) error {
				v, err := tx.Read(0)
				if err != nil {
					return err
				}
				if v != 0 {
					return fmt.Errorf("abandoned write published: %d", v)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestObserveRangeError: an out-of-range operation is reported as an
// aborted operation followed by the abandon of the attempt.
func TestObserveRangeError(t *testing.T) {
	tm, err := NewTL2(1)
	if err != nil {
		t.Fatal(err)
	}
	obs := &scriptObserver{}
	err = AtomicallyObserved(tm, obs, func(tx Txn) error {
		_, err := tx.Read(9)
		return err
	})
	if err == nil {
		t.Fatal("out-of-range read must surface an error")
	}
	want := []string{"r9?", "A", "abandon"}
	if fmt.Sprint(obs.events) != fmt.Sprint(want) {
		t.Fatalf("events = %v, want %v", obs.events, want)
	}
}

// TestObserveBodyAbort: a body may return ErrAborted of its own accord
// with no operation having aborted; the observer must see the attempt
// end so the next attempt is a fresh transaction.
func TestObserveBodyAbort(t *testing.T) {
	for _, info := range Algorithms() {
		if info.Name == "native-mutex" {
			continue // the mutex has no retry loop; ErrAborted is terminal there
		}
		t.Run(info.Name, func(t *testing.T) {
			tm, err := info.New(1)
			if err != nil {
				t.Fatal(err)
			}
			obs := &scriptObserver{}
			attempt := 0
			err = AtomicallyObserved(tm, obs, func(tx Txn) error {
				if _, err := tx.Read(0); err != nil {
					return err
				}
				if attempt++; attempt == 1 {
					return ErrAborted // voluntary abort, no op failed
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"r0?", "r0=0", "abandon", "r0?", "r0=0", "tryC", "C"}
			if fmt.Sprint(obs.events) != fmt.Sprint(want) {
				t.Fatalf("events = %v, want %v", obs.events, want)
			}
		})
	}
}
