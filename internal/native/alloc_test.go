package native

import "testing"

// TestAllocBudgetPerCommit pins the steady-state allocation cost of
// one committed read-modify-write transaction per algorithm. The
// pooled scratch (recyclable) is what keeps the lock-based algorithms
// at (near) zero; DSTM pays for its per-attempt descriptor and
// per-write locator by design, and Mutex for its unpooled one-shot
// handle. Budgets are ceilings with one alloc of slack for GC noise
// (a drained sync.Pool refills once), not exact figures.
func TestAllocBudgetPerCommit(t *testing.T) {
	budgets := map[string]float64{
		"native-mutex":   3,
		"native-tl2":     1,
		"native-norec":   1,
		"native-tinystm": 1,
		"native-dstm":    4,
	}
	for _, info := range Algorithms() {
		t.Run(info.Name, func(t *testing.T) {
			budget, ok := budgets[info.Name]
			if !ok {
				t.Fatalf("no allocation budget for %s", info.Name)
			}
			tm, err := info.New(8)
			if err != nil {
				t.Fatal(err)
			}
			body := func(tx Txn) error {
				v, err := tx.Read(3)
				if err != nil {
					return err
				}
				return tx.Write(3, v+1)
			}
			// Warm the pools so the measurement sees the steady state.
			for i := 0; i < 16; i++ {
				if err := tm.Atomically(body); err != nil {
					t.Fatal(err)
				}
			}
			got := testing.AllocsPerRun(200, func() {
				if err := tm.Atomically(body); err != nil {
					t.Fatal(err)
				}
			})
			if got > budget {
				t.Errorf("%s: %.2f allocs per committed transaction, budget %.0f", info.Name, got, budget)
			}
		})
	}
}
