package native

import "sync/atomic"

// The lock-based algorithms (TL2, TinySTM) share this metadata
// layout: values live in a flat padded array, and lock/version words
// live in a striped table — variable i maps to stripe i & mask, so
// the metadata footprint is bounded regardless of the variable count
// and two variables in one stripe conflict conservatively (a false
// conflict, never a missed one).

// maxStripes bounds the lock table; beyond it, variables share.
const maxStripes = 1 << 12

// vword is a versioned lock word: version<<1 | lockbit, padded to a
// cache line so adjacent stripes do not false-share.
type vword struct {
	word atomic.Uint64
	_    [7]uint64
}

func (w *vword) load() uint64       { return w.word.Load() }
func locked(word uint64) bool       { return word&1 == 1 }
func version(word uint64) uint64    { return word >> 1 }
func lockedWord(word uint64) uint64 { return word | 1 }
func versionWord(ver uint64) uint64 { return ver << 1 }

// tryLock CASes the word from the observed unlocked value to its
// locked form.
func (w *vword) tryLock(observed uint64) bool {
	return w.word.CompareAndSwap(observed, lockedWord(observed))
}

// unlock stores a new unlocked word (either the pre-lock word on
// abort or a fresh version on commit).
func (w *vword) unlock(word uint64) { w.word.Store(word) }

// vcell is a padded value cell. Values are written only while the
// owning stripe is locked (or under the Mutex baseline's lock), and
// read through the atomic so unsynchronized readers are well-defined.
type vcell struct {
	v atomic.Int64
	_ [7]uint64
}

// stripeTable is the shared striped versioned-lock array plus the
// value array it guards.
type stripeTable struct {
	mask  int
	locks []vword
	vals  []vcell
}

func newStripeTable(vars int) *stripeTable {
	stripes := 1
	for stripes < vars && stripes < maxStripes {
		stripes <<= 1
	}
	return &stripeTable{
		mask:  stripes - 1,
		locks: make([]vword, stripes),
		vals:  make([]vcell, vars),
	}
}

// stripe maps a variable index to its lock index.
func (t *stripeTable) stripe(i int) int { return i & t.mask }

func (t *stripeTable) lock(i int) *vword { return &t.locks[t.stripe(i)] }
