// Package native provides a real-concurrency counterpart to the
// simulated STMs: a TL2-style STM built on sync/atomic and a
// global-mutex baseline, both behind one transactional API. It exists
// for the paper's footnote-1 argument — resilient (nonblocking) TMs
// are motivated by scalability on real parallel hardware — which the
// cooperative simulator cannot measure. The wall-clock benchmarks in
// bench_test.go run both across goroutines on real cores.
//
// The simulated STMs (internal/stm/...) remain the vehicles for the
// liveness experiments; this package is deliberately minimal: a fixed
// t-variable set, int64 values, and a retry-loop API.
package native

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrAborted is returned by transaction operations when the current
// attempt must be retried. Atomically handles it internally; bodies
// only see it if they inspect operation errors.
var ErrAborted = errors.New("native: transaction aborted")

// TM is a transactional memory over a fixed array of int64
// t-variables.
type TM interface {
	// Name identifies the implementation.
	Name() string
	// Atomically runs fn as a transaction, retrying on aborts until
	// it commits. fn must be idempotent across retries and must stop
	// (return) when an operation reports an error.
	Atomically(fn func(Txn) error) error
	// Vars returns the number of t-variables.
	Vars() int
}

// Txn is the per-attempt handle.
type Txn interface {
	// Read returns the value of variable i, or ErrAborted.
	Read(i int) (int64, error)
	// Write buffers v into variable i, or returns ErrAborted.
	Write(i int, v int64) error
}

// --- TL2 on sync/atomic ---

// Versioned lock word layout: version<<1 | lockbit.
type vlock struct {
	word  atomic.Uint64
	value atomic.Int64
	// pad the record to a cache line to avoid false sharing between
	// adjacent t-variables in the scalability benchmarks.
	_ [5]uint64
}

// TL2 is a TL2-style STM: global version clock, invisible reads
// validated against a read version, commit-time locking in variable
// order.
type TL2 struct {
	clock atomic.Uint64
	vars  []vlock
}

var _ TM = (*TL2)(nil)

// NewTL2 returns an instance with n t-variables initialized to 0.
func NewTL2(n int) (*TL2, error) {
	if n <= 0 {
		return nil, fmt.Errorf("native: need a positive variable count, got %d", n)
	}
	return &TL2{vars: make([]vlock, n)}, nil
}

// Name implements TM.
func (t *TL2) Name() string { return "native-tl2" }

// Vars implements TM.
func (t *TL2) Vars() int { return len(t.vars) }

type tl2Txn struct {
	tm     *TL2
	rv     uint64
	reads  []int
	writes map[int]int64
	order  []int
	dead   bool
}

// Atomically implements TM.
func (t *TL2) Atomically(fn func(Txn) error) error {
	for {
		tx := &tl2Txn{tm: t, rv: t.clock.Load(), writes: make(map[int]int64)}
		err := fn(tx)
		if tx.dead || errors.Is(err, ErrAborted) {
			continue
		}
		if err != nil {
			return err
		}
		if tx.commit() {
			return nil
		}
	}
}

func (tx *tl2Txn) Read(i int) (int64, error) {
	if tx.dead {
		return 0, ErrAborted
	}
	if v, ok := tx.writes[i]; ok {
		return v, nil
	}
	if i < 0 || i >= len(tx.tm.vars) {
		return 0, fmt.Errorf("native: variable %d out of range", i)
	}
	r := &tx.tm.vars[i]
	w1 := r.word.Load()
	if w1&1 == 1 || w1>>1 > tx.rv {
		tx.dead = true
		return 0, ErrAborted
	}
	v := r.value.Load()
	if r.word.Load() != w1 {
		tx.dead = true
		return 0, ErrAborted
	}
	tx.reads = append(tx.reads, i)
	return v, nil
}

func (tx *tl2Txn) Write(i int, v int64) error {
	if tx.dead {
		return ErrAborted
	}
	if i < 0 || i >= len(tx.tm.vars) {
		return fmt.Errorf("native: variable %d out of range", i)
	}
	if _, ok := tx.writes[i]; !ok {
		tx.order = append(tx.order, i)
	}
	tx.writes[i] = v
	return nil
}

func (tx *tl2Txn) commit() bool {
	if len(tx.writes) == 0 {
		return true // reads already validated against rv
	}
	sortInts(tx.order)
	acquired := 0
	release := func() {
		for _, i := range tx.order[:acquired] {
			r := &tx.tm.vars[i]
			r.word.Store(r.word.Load() &^ 1)
		}
	}
	for _, i := range tx.order {
		r := &tx.tm.vars[i]
		w := r.word.Load()
		if w&1 == 1 || w>>1 > tx.rv {
			release()
			return false
		}
		if !r.word.CompareAndSwap(w, w|1) {
			release()
			return false
		}
		acquired++
	}
	for _, i := range tx.reads {
		if _, mine := tx.writes[i]; mine {
			continue
		}
		w := tx.tm.vars[i].word.Load()
		if w&1 == 1 || w>>1 > tx.rv {
			release()
			return false
		}
	}
	wv := tx.tm.clock.Add(1)
	for _, i := range tx.order {
		r := &tx.tm.vars[i]
		r.value.Store(tx.writes[i])
		r.word.Store(wv << 1) // new version, unlocked
	}
	return true
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// --- Global mutex baseline ---

// Mutex is the coarse-grained baseline: every transaction runs under
// one sync.Mutex. It never aborts.
type Mutex struct {
	mu   sync.Mutex
	vals []int64
}

var _ TM = (*Mutex)(nil)

// NewMutex returns an instance with n t-variables initialized to 0.
func NewMutex(n int) (*Mutex, error) {
	if n <= 0 {
		return nil, fmt.Errorf("native: need a positive variable count, got %d", n)
	}
	return &Mutex{vals: make([]int64, n)}, nil
}

// Name implements TM.
func (m *Mutex) Name() string { return "native-mutex" }

// Vars implements TM.
func (m *Mutex) Vars() int { return len(m.vals) }

type mutexTxn struct{ m *Mutex }

// Atomically implements TM.
func (m *Mutex) Atomically(fn func(Txn) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fn(mutexTxn{m: m})
}

func (tx mutexTxn) Read(i int) (int64, error) {
	if i < 0 || i >= len(tx.m.vals) {
		return 0, fmt.Errorf("native: variable %d out of range", i)
	}
	return tx.m.vals[i], nil
}

func (tx mutexTxn) Write(i int, v int64) error {
	if i < 0 || i >= len(tx.m.vals) {
		return fmt.Errorf("native: variable %d out of range", i)
	}
	tx.m.vals[i] = v
	return nil
}
