// Package native provides the real-concurrency counterparts to the
// simulated STMs: five transactional-memory algorithms built on
// sync/atomic and driven by real goroutines on real cores. It exists
// for the paper's footnote-1 argument — resilient (nonblocking) TMs
// are motivated by scalability on real parallel hardware — which the
// cooperative simulator cannot measure.
//
// The algorithms mirror the simulated registry (internal/stm/...):
//
//   - TL2: global-clock, invisible reads, commit-time locking.
//   - NOrec: single global sequence lock, value-based validation.
//   - TinySTM: encounter-time locking with timestamp extension.
//   - DSTM: obstruction-free per-variable ownership records with an
//     aggressive (abort-other) contention manager.
//   - Mutex: the coarse-grained blocking baseline.
//
// The lock-based algorithms share one infrastructure: a striped
// versioned-lock table (power-of-two stripes, see stripes.go), a
// sharded global version clock that removes the commit-counter hot
// spot of a single fetch-add word (see clock.go), and a common
// retry/backoff loop with commit/abort statistics (below).
//
// The simulated STMs remain the vehicles for the liveness
// experiments; this package is deliberately minimal — a fixed
// t-variable set, int64 values, and a retry-loop API — and is driven
// through the unified engine API (internal/engine) alongside them.
package native

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrAborted is returned by transaction operations when the current
// attempt must be retried. Atomically handles it internally; bodies
// only see it if they inspect operation errors.
var ErrAborted = errors.New("native: transaction aborted")

// ErrStopped is returned by AtomicallyOpts when RunOpts.Stop closed
// between attempts: the run is being torn down (e.g. the live monitor
// detected a safety violation) and the transaction will not retry.
var ErrStopped = errors.New("native: run stopped")

// TM is a transactional memory over a fixed array of int64
// t-variables.
type TM interface {
	// Name identifies the implementation.
	Name() string
	// Atomically runs fn as a transaction, retrying on aborts until
	// it commits. fn must be idempotent across retries and must stop
	// (return) when an operation reports an error. A non-abort error
	// from fn is returned without committing.
	Atomically(fn func(Txn) error) error
	// Vars returns the number of t-variables.
	Vars() int
	// Stats returns the cumulative commit/abort counters.
	Stats() Stats
}

// Txn is the per-attempt handle.
type Txn interface {
	// Read returns the value of variable i, or ErrAborted.
	Read(i int) (int64, error)
	// Write buffers v into variable i, or returns ErrAborted.
	Write(i int, v int64) error
}

// Stats is a snapshot of a TM's cumulative counters.
type Stats struct {
	// Commits counts committed transactions.
	Commits uint64
	// Aborts counts aborted attempts (each retry is one abort).
	Aborts uint64
}

// AbortRate is Aborts / (Commits + Aborts), or 0 with no attempts.
func (s Stats) AbortRate() float64 {
	if s.Commits+s.Aborts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Commits+s.Aborts)
}

// --- shared attempt loop ---

// attempt is the single-attempt contract each algorithm implements
// behind the shared retry loop.
type attempt interface {
	Txn
	// commit tries to make the attempt's effects visible; false means
	// the attempt lost a conflict and the transaction retries.
	commit() bool
	// abandon releases any per-attempt resources (encounter-time
	// locks, ownership records) after an abort, a body error, or a
	// failed commit. It must be idempotent: the retry loop calls it
	// on every non-committed attempt, including after commit() has
	// cleaned up its own failure.
	abandon()
}

// recyclable is implemented by attempts that keep reusable scratch —
// read logs, write maps, lock-order buffers. The shared retry loop
// hands every terminal attempt back through recycle, so a TM's pool
// can serve the next begin() from the same allocation instead of
// growing per-transaction garbage; the allocation budget asserted by
// BenchmarkAllocsPerCommit rests on this.
type recyclable interface{ recycle() }

// recycle returns a terminal attempt's scratch to its TM's pool. The
// attempt must not be touched afterwards: the same allocation may
// already be serving another worker's begin().
func recycle(tx attempt) {
	if r, ok := tx.(recyclable); ok {
		r.recycle()
	}
}

// counters is embedded by every TM. The two words live on separate
// cache lines so commit and abort traffic do not false-share.
type counters struct {
	commits atomic.Uint64
	_       [7]uint64
	aborts  atomic.Uint64
	_       [7]uint64
}

func (c *counters) snapshot() Stats {
	return Stats{Commits: c.commits.Load(), Aborts: c.aborts.Load()}
}

// RunOpts configures one execution of the shared retry loop beyond
// plain Atomically. The zero value is plain Atomically.
type RunOpts struct {
	// Observer receives the linearization-point callbacks (nil: none).
	Observer Observer
	// Stop, when non-nil, cancels the retry loop: once the channel is
	// closed no further attempt begins and the call returns ErrStopped.
	// A committed attempt is never undone — the stop takes effect
	// between attempts only.
	Stop <-chan struct{}
	// Backoff is the retry-backoff policy (nil: the package default —
	// DefaultBackoffCap, no bias).
	Backoff *Backoff
	// Proc is the zero-based process index selecting the caller's bias
	// in the Backoff policy.
	Proc int
	// Metrics, when non-nil, receives the retry-loop telemetry
	// (starts, commits, aborts by cause, retry latency, backoff
	// waits). All bundle fields must be set; see NewTxMetrics.
	Metrics *TxMetrics
}

// runAtomically is the retry/backoff loop shared by every algorithm:
// begin an attempt, run the body, commit or back off and retry. With a
// non-nil observer, every operation return and attempt outcome is
// reported at its linearization point — these are the instrumentation
// hooks behind ObservableTM.
func runAtomically(c *counters, begin func() attempt, opts RunOpts, fn func(Txn) error) error {
	obs := opts.Observer
	m := opts.Metrics
	bo := opts.Backoff
	if bo == nil {
		bo = defaultBackoff
	}
	if m != nil {
		m.Starts.Inc()
	}
	// retryStart stamps the first abort so a retried transaction's
	// eventual commit can report its retry latency. First-try commits
	// never read the clock.
	var retryStart time.Time
	for round := 0; ; round++ {
		if opts.Stop != nil {
			select {
			case <-opts.Stop:
				if m != nil {
					m.AbortStopped.Inc()
				}
				return ErrStopped
			default:
			}
		}
		tx := begin()
		err := fn(observe(obs, tx))
		if err == nil {
			if obs != nil {
				obs.TryCommitInv()
			}
			committed := tx.commit()
			if obs != nil {
				obs.TryCommitReturn(committed)
			}
			if committed {
				c.commits.Add(1)
				if m != nil {
					m.Commits.Inc()
					if round > 0 {
						m.RetryLatency.Observe(time.Since(retryStart).Nanoseconds())
					}
				}
				recycle(tx)
				return nil
			}
			// A failed commit already cleans up after itself, but
			// abandon is idempotent and closing the loop here keeps
			// resource release off each algorithm's commit path as an
			// undocumented obligation.
			tx.abandon()
			if m != nil {
				m.AbortConflict.Inc()
			}
		} else if !errors.Is(err, ErrAborted) {
			tx.abandon()
			if obs != nil {
				obs.Abandon()
			}
			if m != nil {
				m.AbortAbandoned.Inc()
			}
			recycle(tx)
			return err
		} else {
			tx.abandon()
			// A body may return ErrAborted of its own accord, with no
			// operation having aborted; the observer must still see
			// the attempt end or the next attempt's events would merge
			// into the same recorded transaction. Abandon is a no-op
			// when an operation-level abort already closed it.
			if obs != nil {
				obs.Abandon()
			}
			if m != nil {
				m.AbortOperation.Inc()
			}
		}
		recycle(tx)
		c.aborts.Add(1)
		if m != nil {
			m.Retries.Inc()
			if round == 0 {
				retryStart = time.Now()
			}
			waitStart := time.Now()
			bo.wait(opts.Proc, round)
			m.BackoffWait.Observe(time.Since(waitStart).Nanoseconds())
		} else {
			bo.wait(opts.Proc, round)
		}
	}
}

// spinHint is a compiler-opaque no-op so the backoff loop is not
// optimized away.
//
//go:noinline
func spinHint() {}

func checkVars(n int) error {
	if n <= 0 {
		return fmt.Errorf("native: need a positive variable count, got %d", n)
	}
	return nil
}

func rangeErr(i int) error {
	return fmt.Errorf("native: variable %d out of range", i)
}

// --- registry ---

// Info describes a registered native algorithm.
type Info struct {
	// Name is the report name ("native-" prefix).
	Name string
	// Nonblocking reports whether the algorithm is obstruction-free
	// (no transaction ever waits on a stalled peer).
	Nonblocking bool
	// New creates an instance with n t-variables initialized to 0.
	New func(n int) (TM, error)
}

// Algorithms returns the registered native TMs in report order.
func Algorithms() []Info {
	return []Info{
		{Name: "native-mutex", Nonblocking: false, New: func(n int) (TM, error) { return NewMutex(n) }},
		{Name: "native-tl2", Nonblocking: false, New: func(n int) (TM, error) { return NewTL2(n) }},
		{Name: "native-norec", Nonblocking: false, New: func(n int) (TM, error) { return NewNOrec(n) }},
		{Name: "native-tinystm", Nonblocking: false, New: func(n int) (TM, error) { return NewTinySTM(n) }},
		{Name: "native-dstm", Nonblocking: true, New: func(n int) (TM, error) { return NewDSTM(n) }},
	}
}

// New creates the named algorithm with n t-variables, or errors on an
// unknown name.
func New(name string, n int) (TM, error) {
	for _, info := range Algorithms() {
		if info.Name == name {
			return info.New(n)
		}
	}
	return nil, fmt.Errorf("native: unknown algorithm %q", name)
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
