package native

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// NOrec is a NOrec-style STM: no per-variable metadata at all, one
// global sequence lock (even = stable, odd = a committer is writing
// back), and value-based validation — a reader revalidates its read
// log by value whenever the sequence number moves. Single-writer
// commit makes it the simplest of the scalable designs and the best
// fit for read-dominated workloads.
type NOrec struct {
	counters
	seq  atomic.Uint64
	_    [7]uint64
	vals []vcell
	pool sync.Pool // recycled *norecTxn scratch
}

var _ TM = (*NOrec)(nil)

// NewNOrec returns an instance with n t-variables initialized to 0.
func NewNOrec(n int) (*NOrec, error) {
	if err := checkVars(n); err != nil {
		return nil, err
	}
	return &NOrec{vals: make([]vcell, n)}, nil
}

// Name implements TM.
func (t *NOrec) Name() string { return "native-norec" }

// Vars implements TM.
func (t *NOrec) Vars() int { return len(t.vals) }

// Stats implements TM.
func (t *NOrec) Stats() Stats { return t.snapshot() }

// Atomically implements TM.
func (t *NOrec) Atomically(fn func(Txn) error) error {
	return runAtomically(&t.counters, t.begin, RunOpts{}, fn)
}

// AtomicallyObserved implements ObservableTM.
func (t *NOrec) AtomicallyObserved(obs Observer, fn func(Txn) error) error {
	return runAtomically(&t.counters, t.begin, RunOpts{Observer: obs}, fn)
}

// AtomicallyOpts implements ObservableTM.
func (t *NOrec) AtomicallyOpts(opts RunOpts, fn func(Txn) error) error {
	return runAtomically(&t.counters, t.begin, opts, fn)
}

func (t *NOrec) begin() attempt {
	tx, _ := t.pool.Get().(*norecTxn)
	if tx == nil {
		tx = &norecTxn{tm: t}
	}
	tx.snapshot = t.waitStable()
	return tx
}

// waitStable spins until the sequence lock is even and returns it.
func (t *NOrec) waitStable() uint64 {
	for {
		s := t.seq.Load()
		if s&1 == 0 {
			return s
		}
		runtime.Gosched()
	}
}

type norecRead struct {
	i int
	v int64
}

type norecTxn struct {
	tm       *NOrec
	snapshot uint64
	reads    []norecRead
	writes   map[int]int64
	dead     bool
}

// recycle implements recyclable: clear the logs, keep the capacity.
func (tx *norecTxn) recycle() {
	tx.reads = tx.reads[:0]
	clear(tx.writes)
	tx.dead = false
	tx.tm.pool.Put(tx)
}

// validate re-reads the log by value against a stable snapshot; it
// returns the snapshot under which the log was last consistent.
func (tx *norecTxn) validate() (uint64, bool) {
	for {
		s := tx.tm.waitStable()
		for _, r := range tx.reads {
			if tx.tm.vals[r.i].v.Load() != r.v {
				return 0, false
			}
		}
		if tx.tm.seq.Load() == s {
			return s, true
		}
	}
}

func (tx *norecTxn) Read(i int) (int64, error) {
	if tx.dead {
		return 0, ErrAborted
	}
	if v, ok := tx.writes[i]; ok {
		return v, nil
	}
	if i < 0 || i >= len(tx.tm.vals) {
		return 0, rangeErr(i)
	}
	v := tx.tm.vals[i].v.Load()
	for tx.snapshot != tx.tm.seq.Load() {
		s, ok := tx.validate()
		if !ok {
			tx.dead = true
			return 0, ErrAborted
		}
		tx.snapshot = s
		v = tx.tm.vals[i].v.Load()
	}
	tx.reads = append(tx.reads, norecRead{i: i, v: v})
	return v, nil
}

func (tx *norecTxn) Write(i int, v int64) error {
	if tx.dead {
		return ErrAborted
	}
	if i < 0 || i >= len(tx.tm.vals) {
		return rangeErr(i)
	}
	if tx.writes == nil {
		tx.writes = make(map[int]int64)
	}
	tx.writes[i] = v
	return nil
}

func (tx *norecTxn) abandon() {}

func (tx *norecTxn) commit() bool {
	if tx.dead {
		return false
	}
	if len(tx.writes) == 0 {
		return true // read log validated on every snapshot move
	}
	for !tx.tm.seq.CompareAndSwap(tx.snapshot, tx.snapshot+1) {
		s, ok := tx.validate()
		if !ok {
			return false
		}
		tx.snapshot = s
	}
	for i, v := range tx.writes {
		tx.tm.vals[i].v.Store(v)
	}
	tx.tm.seq.Store(tx.snapshot + 2)
	return true
}
