package native

import "livetm/internal/telemetry"

// TxMetrics is the pre-resolved telemetry handle bundle for the shared
// retry loop. All fields must be non-nil (use NewTxMetrics); the loop
// only nil-checks the bundle itself, so an uninstrumented run pays a
// single predictable branch and an instrumented fast path (first-try
// commit) pays exactly two atomic increments and no clock read. Clock
// reads happen only on the abort path, where a wait is imminent
// anyway.
type TxMetrics struct {
	// Starts counts transactions entering the retry loop.
	Starts *telemetry.Counter
	// Commits counts transactions leaving it committed.
	Commits *telemetry.Counter
	// Retries counts aborted attempts that go around again.
	Retries *telemetry.Counter
	// AbortConflict counts attempts whose tryCommit lost a conflict.
	AbortConflict *telemetry.Counter
	// AbortOperation counts attempts aborted by an operation (or a
	// body returning ErrAborted of its own accord).
	AbortOperation *telemetry.Counter
	// AbortAbandoned counts attempts abandoned on a terminal body
	// error (including the engine's declined-to-commit sentinel).
	AbortAbandoned *telemetry.Counter
	// AbortStopped counts transactions cancelled by RunOpts.Stop.
	AbortStopped *telemetry.Counter
	// RetryLatency distributes nanoseconds from a transaction's first
	// abort to its eventual commit (first-try commits are not
	// observed: their retry latency is identically zero).
	RetryLatency *telemetry.Histogram
	// BackoffWait distributes nanoseconds spent inside Backoff.wait.
	BackoffWait *telemetry.Histogram
}

// NewTxMetrics resolves the retry-loop families in reg for one
// algorithm. The families are shared across sessions using the same
// registry; the algo label keeps the five algorithms apart: it is fed
// from engine.Info.Name, which comes from the fixed algorithm registry
// (engine.Engines) — a finite set the telemetrylabel classifier cannot
// see through the registry indirection, hence the allowance.
//
//lint:allow(telemetrylabel) algo comes from the fixed engine registry (engine.Engines), a finite compiled-in set
func NewTxMetrics(reg *telemetry.Registry, algo string) *TxMetrics {
	return &TxMetrics{
		Starts:         reg.Counter("livetm_tx_starts_total", "transactions entering the native retry loop", "algo", algo),
		Commits:        reg.Counter("livetm_tx_commits_total", "transactions committed by the native retry loop", "algo", algo),
		Retries:        reg.Counter("livetm_tx_retries_total", "aborted attempts that retried", "algo", algo),
		AbortConflict:  reg.Counter("livetm_tx_aborts_total", "aborted attempts by cause", "algo", algo, "cause", "conflict"),
		AbortOperation: reg.Counter("livetm_tx_aborts_total", "aborted attempts by cause", "algo", algo, "cause", "operation"),
		AbortAbandoned: reg.Counter("livetm_tx_aborts_total", "aborted attempts by cause", "algo", algo, "cause", "abandoned"),
		AbortStopped:   reg.Counter("livetm_tx_aborts_total", "aborted attempts by cause", "algo", algo, "cause", "stopped"),
		RetryLatency:   reg.Histogram("livetm_tx_retry_latency_ns", "first abort to eventual commit, ns", "algo", algo),
		BackoffWait:    reg.Histogram("livetm_tx_backoff_wait_ns", "time inside the retry backoff, ns", "algo", algo),
	}
}
