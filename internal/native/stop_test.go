package native

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBackoffConcurrentRebias hammers one Backoff policy from three
// sides at once — the monitor's rebias feedback, direct bias writes,
// and the retry loop's wait/shift reads — the exact concurrency the
// live engine and the native adversary driver produce. Run under
// -race; afterwards every bias must still sit inside the policy's
// dynamic range.
func TestBackoffConcurrentRebias(t *testing.T) {
	const procs = 8
	bo := NewBackoff(procs)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			starve := make([]int, procs)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for p := range starve {
					starve[p] = (i*31 + p*p*17 + g) % 257
				}
				bo.Rebias(starve)
			}
		}(g)
	}
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				bo.SetBias(p, i%9-4) // beyond ±MaxBias on purpose: must clamp
				bo.wait(p, i%(DefaultBackoffCap+2))
				_ = bo.Bias(p)
				_ = bo.BiasSnapshot()
			}
		}(p)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	for p, b := range bo.BiasSnapshot() {
		if b < -MaxBias || b > MaxBias {
			t.Errorf("proc %d bias %d escaped [-%d, %d]", p, b, MaxBias, MaxBias)
		}
	}
}

// TestStopCancellationWithoutSignal covers the run stop path `livetm
// run` relies on when a live run is cancelled from inside the process
// (the monitor's violation stop) rather than by a signal: closing
// RunOpts.Stop while every attempt keeps aborting must end the retry
// loop with ErrStopped on every algorithm, promptly and exactly once.
func TestStopCancellationWithoutSignal(t *testing.T) {
	for _, info := range Algorithms() {
		t.Run(info.Name, func(t *testing.T) {
			tm, err := info.New(1)
			if err != nil {
				t.Fatal(err)
			}
			otm, ok := tm.(ObservableTM)
			if !ok {
				t.Fatalf("%s does not implement ObservableTM", info.Name)
			}
			stop := make(chan struct{})
			if info.Name == "native-mutex" {
				// The mutex never retries; its stop check runs once,
				// before the lock. A stop that landed before the call
				// must refuse the transaction outright.
				close(stop)
				err := otm.AtomicallyOpts(RunOpts{Stop: stop}, func(Txn) error { return nil })
				if !errors.Is(err, ErrStopped) {
					t.Fatalf("want ErrStopped, got %v", err)
				}
				return
			}
			var attempts atomic.Int64
			done := make(chan error, 1)
			go func() {
				done <- otm.AtomicallyOpts(RunOpts{Stop: stop}, func(tx Txn) error {
					attempts.Add(1)
					// Keep the transaction aborting so the retry loop
					// spins until the stop lands.
					return ErrAborted
				})
			}()
			for attempts.Load() < 3 {
				time.Sleep(time.Millisecond)
			}
			close(stop)
			select {
			case err := <-done:
				if !errors.Is(err, ErrStopped) {
					t.Fatalf("want ErrStopped, got %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("retry loop did not honour the stop")
			}
		})
	}
}
