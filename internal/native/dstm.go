package native

import (
	"sync"
	"sync/atomic"
)

// DSTM is a DSTM-style obstruction-free STM: every variable points at
// an ownership record (locator) naming the writing transaction and
// carrying the pre- and post-images, so the committed value is always
// reachable regardless of where the owner stalls or crashes — no
// transaction ever waits on a peer. Conflicts are resolved by the
// aggressive contention manager of the simulated counterpart
// (internal/stm/dstm): on encountering an active owner, abort it with
// one CAS on its status word and move on.
type DSTM struct {
	counters
	vars []atomic.Pointer[locator]
	pool sync.Pool // recycled *dstmTxn scratch
}

var _ TM = (*DSTM)(nil)

const (
	dstmActive int32 = iota
	dstmCommitted
	dstmAborted
)

// dstmDesc is a transaction descriptor; its status word is the single
// linearization point for commit and for being aborted by others.
type dstmDesc struct {
	status atomic.Int32
}

// locator binds a variable to its owning transaction. oldVal is the
// committed value when the owner started; newVal is the tentative
// value, visible only once the owner's status is committed. Fields
// are immutable after publication except newVal, which only the
// active owner writes and others read only after observing the
// committed status (the status CAS orders the accesses).
type locator struct {
	owner  *dstmDesc
	oldVal int64
	newVal int64
}

// current resolves the committed value of a locator whose owner has
// the given status.
func (l *locator) current(status int32) int64 {
	if status == dstmCommitted {
		return l.newVal
	}
	return l.oldVal
}

// NewDSTM returns an instance with n t-variables initialized to 0.
func NewDSTM(n int) (*DSTM, error) {
	if err := checkVars(n); err != nil {
		return nil, err
	}
	t := &DSTM{vars: make([]atomic.Pointer[locator], n)}
	seed := &dstmDesc{}
	seed.status.Store(dstmCommitted)
	for i := range t.vars {
		t.vars[i].Store(&locator{owner: seed})
	}
	return t, nil
}

// Name implements TM.
func (t *DSTM) Name() string { return "native-dstm" }

// Vars implements TM.
func (t *DSTM) Vars() int { return len(t.vars) }

// Stats implements TM.
func (t *DSTM) Stats() Stats { return t.snapshot() }

// Atomically implements TM.
func (t *DSTM) Atomically(fn func(Txn) error) error {
	return runAtomically(&t.counters, t.begin, RunOpts{}, fn)
}

// AtomicallyObserved implements ObservableTM.
func (t *DSTM) AtomicallyObserved(obs Observer, fn func(Txn) error) error {
	return runAtomically(&t.counters, t.begin, RunOpts{Observer: obs}, fn)
}

// AtomicallyOpts implements ObservableTM.
func (t *DSTM) AtomicallyOpts(opts RunOpts, fn func(Txn) error) error {
	return runAtomically(&t.counters, t.begin, opts, fn)
}

func (t *DSTM) begin() attempt {
	tx, _ := t.pool.Get().(*dstmTxn)
	if tx == nil {
		tx = &dstmTxn{tm: t}
	}
	// The descriptor cannot be recycled: settled locators keep pointing
	// at it forever, so reusing one would rewrite their resolution.
	tx.desc = &dstmDesc{}
	return tx
}

type dstmRead struct {
	i   int
	loc *locator
}

type dstmTxn struct {
	tm    *DSTM
	desc  *dstmDesc
	reads []dstmRead
	owned map[int]*locator
	dead  bool
}

// recycle implements recyclable: clear the logs, keep the capacity
// (the descriptor and locators stay behind — see begin).
func (tx *dstmTxn) recycle() {
	tx.reads = tx.reads[:0]
	clear(tx.owned)
	tx.dead = false
	tx.tm.pool.Put(tx)
}

// settle returns the variable's locator with its owner in a settled
// (non-active) state, aborting any other active owner on the way —
// the aggressive contention manager.
func (tx *dstmTxn) settle(i int) (*locator, int32) {
	for {
		loc := tx.tm.vars[i].Load()
		st := loc.owner.status.Load()
		if st == dstmActive && loc.owner != tx.desc {
			loc.owner.status.CompareAndSwap(dstmActive, dstmAborted)
			continue
		}
		return loc, st
	}
}

// validate checks that every recorded read still sees the locator it
// resolved (settled owners never change their resolution) and that
// this transaction has not been aborted by a peer. A variable this
// transaction re-acquired for writing is valid too: Write verified at
// acquisition that its locator displaced exactly the one read.
func (tx *dstmTxn) validate() bool {
	for _, r := range tx.reads {
		cur := tx.tm.vars[r.i].Load()
		if cur != r.loc && (tx.owned == nil || tx.owned[r.i] != cur) {
			return false
		}
	}
	return tx.desc.status.Load() == dstmActive
}

func (tx *dstmTxn) Read(i int) (int64, error) {
	if tx.dead {
		return 0, ErrAborted
	}
	if i < 0 || i >= len(tx.tm.vars) {
		return 0, rangeErr(i)
	}
	if loc, mine := tx.owned[i]; mine {
		return loc.newVal, nil
	}
	loc, st := tx.settle(i)
	if loc.owner == tx.desc {
		return loc.newVal, nil
	}
	v := loc.current(st)
	tx.reads = append(tx.reads, dstmRead{i: i, loc: loc})
	if !tx.validate() {
		tx.dead = true
		return 0, ErrAborted
	}
	return v, nil
}

func (tx *dstmTxn) Write(i int, v int64) error {
	if tx.dead {
		return ErrAborted
	}
	if i < 0 || i >= len(tx.tm.vars) {
		return rangeErr(i)
	}
	if loc, mine := tx.owned[i]; mine {
		loc.newVal = v
		return nil
	}
	for {
		cur, st := tx.settle(i)
		nl := &locator{owner: tx.desc, oldVal: cur.current(st), newVal: v}
		if tx.tm.vars[i].CompareAndSwap(cur, nl) {
			if tx.owned == nil {
				tx.owned = make(map[int]*locator)
			}
			tx.owned[i] = nl
			// A prior read of i must have seen exactly the locator we
			// displaced, or the read is stale.
			for _, r := range tx.reads {
				if r.i == i && r.loc != cur {
					tx.dead = true
					return ErrAborted
				}
			}
			if tx.desc.status.Load() != dstmActive {
				tx.dead = true
				return ErrAborted
			}
			return nil
		}
	}
}

func (tx *dstmTxn) abandon() {
	// Settle as aborted so retained locators resolve to their
	// pre-images forever.
	tx.desc.status.CompareAndSwap(dstmActive, dstmAborted)
}

func (tx *dstmTxn) commit() bool {
	if tx.dead {
		tx.abandon()
		return false
	}
	if !tx.validate() {
		tx.abandon()
		return false
	}
	return tx.desc.status.CompareAndSwap(dstmActive, dstmCommitted)
}
