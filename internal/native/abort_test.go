package native

import (
	"sync"
	"testing"
)

// TestTL2ReadValidationAborts drives the read-side abort paths
// directly: a transaction that started before a concurrent commit must
// not observe the newer version.
func TestTL2ReadValidationAborts(t *testing.T) {
	tm, err := NewTL2(2)
	if err != nil {
		t.Fatal(err)
	}
	attempts := 0
	err = tm.Atomically(func(tx Txn) error {
		attempts++
		if _, err := tx.Read(1); err != nil {
			return err
		}
		if attempts == 1 {
			// Concurrently commit to variable 0 from another
			// transaction, bumping the clock past this txn's rv.
			done := make(chan struct{})
			go func() {
				defer close(done)
				_ = tm.Atomically(func(tx2 Txn) error {
					return tx2.Write(0, 5)
				})
			}()
			<-done
		}
		// First attempt: version of variable 0 is now newer than rv —
		// the read must abort and Atomically must retry.
		_, err := tx.Read(0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts < 2 {
		t.Errorf("attempts = %d; the stale first attempt must have retried", attempts)
	}
}

// TestTL2WriteConflictRetries: two goroutines hammering overlapping
// write sets with read dependencies; commit-time lock conflicts force
// retries but both finish.
func TestTL2WriteConflictRetries(t *testing.T) {
	tm, err := NewTL2(4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				_ = tm.Atomically(func(tx Txn) error {
					// Overlapping ascending and descending write sets
					// maximize lock-order contention.
					a, b := g%4, (g+1)%4
					va, err := tx.Read(a)
					if err != nil {
						return err
					}
					vb, err := tx.Read(b)
					if err != nil {
						return err
					}
					if err := tx.Write(a, va+1); err != nil {
						return err
					}
					return tx.Write(b, vb+1)
				})
			}
		}(g)
	}
	wg.Wait()
	var total int64
	_ = tm.Atomically(func(tx Txn) error {
		total = 0
		for i := 0; i < 4; i++ {
			v, err := tx.Read(i)
			if err != nil {
				return err
			}
			total += v
		}
		return nil
	})
	if total != 4*300*2 {
		t.Fatalf("total = %d, want %d", total, 4*300*2)
	}
}

// TestTL2ReadOwnBufferedWrite covers the write-buffer fast path.
func TestTL2ReadOwnBufferedWrite(t *testing.T) {
	tm, _ := NewTL2(1)
	err := tm.Atomically(func(tx Txn) error {
		if err := tx.Write(0, 3); err != nil {
			return err
		}
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		if v != 3 {
			t.Errorf("buffered read = %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
