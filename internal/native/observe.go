package native

import "fmt"

// Observer receives the linearization-point callbacks of one process's
// transactions. Invocation callbacks fire immediately before the
// operation runs and return callbacks immediately after it returns, so
// an observer that timestamps both sides brackets the operation's real
// duration: any precedence visible in the resulting stamps is genuine
// real-time precedence, which keeps the safety checkers sound on the
// recorded history.
//
// All calls for one Observer are made on a single goroutine (the
// process's), with no additional synchronization. Implementations must
// be cheap — they sit on the transactional hot path.
type Observer interface {
	// ReadInv fires before variable i is read.
	ReadInv(i int)
	// ReadReturn fires after the read returns v, or aborts.
	ReadReturn(i int, v int64, aborted bool)
	// WriteInv fires before v is buffered into variable i.
	WriteInv(i int, v int64)
	// WriteReturn fires after the write returns, or aborts.
	WriteReturn(i int, v int64, aborted bool)
	// TryCommitInv fires before the attempt tries to commit.
	TryCommitInv()
	// TryCommitReturn fires with the commit outcome.
	TryCommitReturn(committed bool)
	// Abandon fires when an attempt ends without a tryCommit because
	// the body returned a non-abort error (including the engine's
	// declined-to-commit sentinel). The native TM discards the
	// attempt's buffers and releases its resources, which a history
	// recorder reports as an abort event.
	Abandon()
}

// ObservableTM is implemented by the TMs of this package: Atomically
// with linearization-point callbacks and run control. A nil observer
// (or a zero RunOpts) degrades to plain Atomically.
type ObservableTM interface {
	TM
	// AtomicallyObserved is Atomically, reporting every operation and
	// every attempt outcome to obs.
	AtomicallyObserved(obs Observer, fn func(Txn) error) error
	// AtomicallyOpts is Atomically under the given RunOpts: observed,
	// cancellable between attempts (RunOpts.Stop, returning
	// ErrStopped), and backing off under the supplied policy.
	AtomicallyOpts(opts RunOpts, fn func(Txn) error) error
}

// AtomicallyObserved runs fn on tm like TM.Atomically while reporting
// linearization-point events to obs. It errors when tm does not
// support observation.
func AtomicallyObserved(tm TM, obs Observer, fn func(Txn) error) error {
	otm, ok := tm.(ObservableTM)
	if !ok {
		return fmt.Errorf("native: %s does not support observation", tm.Name())
	}
	return otm.AtomicallyObserved(obs, fn)
}

// observedTxn reports every operation of the wrapped handle to the
// observer, bracketing the inner call with the invocation/return pair.
type observedTxn struct {
	tx  Txn
	obs Observer
}

func (o observedTxn) Read(i int) (int64, error) {
	o.obs.ReadInv(i)
	v, err := o.tx.Read(i)
	o.obs.ReadReturn(i, v, err != nil)
	return v, err
}

func (o observedTxn) Write(i int, v int64) error {
	o.obs.WriteInv(i, v)
	err := o.tx.Write(i, v)
	o.obs.WriteReturn(i, v, err != nil)
	return err
}

// observe wraps tx for obs; a nil observer passes tx through.
func observe(obs Observer, tx Txn) Txn {
	if obs == nil {
		return tx
	}
	return observedTxn{tx: tx, obs: obs}
}
