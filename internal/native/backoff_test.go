package native

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestBackoffShiftCapped: the effective spin shift never exceeds the
// cap, whatever the round or bias — the policy's defined dynamic
// range.
func TestBackoffShiftCapped(t *testing.T) {
	b := NewBackoff(2)
	for round := 0; round < 100; round++ {
		if s := b.shift(0, round); s > b.Cap() {
			t.Fatalf("round %d: shift %d exceeds cap %d", round, s, b.Cap())
		}
	}
	b.SetBias(0, MaxBias)
	if s := b.shift(0, 1000); s != b.Cap() {
		t.Fatalf("saturated shift = %d, want cap %d", s, b.Cap())
	}
	b.SetBias(1, -MaxBias)
	if s := b.shift(1, 1); s != 0 {
		t.Fatalf("favoured shift = %d, want 0", s)
	}
	if s := b.shift(5, 3); s != 3 {
		t.Fatalf("out-of-range proc shift = %d, want round", s)
	}
}

// TestBackoffBiasClamped: SetBias clamps to ±MaxBias, out-of-range
// processes are ignored.
func TestBackoffBiasClamped(t *testing.T) {
	b := NewBackoff(2)
	b.SetBias(0, 100)
	b.SetBias(1, -100)
	b.SetBias(7, 2) // out of range: no-op, no panic
	if got := b.BiasSnapshot(); got[0] != MaxBias || got[1] != -MaxBias {
		t.Fatalf("bias = %v, want [%d %d]", got, MaxBias, -MaxBias)
	}
}

// TestBackoffRebias: a process starved far beyond the mean backs off
// less, a hot process more, a balanced process returns to neutral.
func TestBackoffRebias(t *testing.T) {
	b := NewBackoff(3)
	b.SetBias(2, MaxBias) // must return to neutral
	b.Rebias([]int{1000, 10, 330})
	if got := b.BiasSnapshot(); got[0] != -starveBias || got[1] != starveBias || got[2] != 0 {
		t.Fatalf("bias after rebias = %v, want [%d %d 0]", got, -starveBias, starveBias)
	}
	// All-zero starvation (no signal) leaves the policy untouched.
	b.Rebias([]int{0, 0, 0})
	if got := b.BiasSnapshot(); got[0] != -starveBias {
		t.Fatalf("zero-signal rebias changed bias: %v", got)
	}
}

// TestAtomicallyOptsStopped: a transaction wedged in its retry loop
// returns ErrStopped once the stop channel closes, on every
// algorithm. Run with -race.
func TestAtomicallyOptsStopped(t *testing.T) {
	for _, info := range Algorithms() {
		if info.Name == "native-mutex" {
			continue // no retry loop: a body abort returns, it never wedges
		}
		t.Run(info.Name, func(t *testing.T) {
			tm, err := info.New(1)
			if err != nil {
				t.Fatal(err)
			}
			otm := tm.(ObservableTM)
			stop := make(chan struct{})
			done := make(chan error, 1)
			var once sync.Once
			go func() {
				done <- otm.AtomicallyOpts(RunOpts{Stop: stop, Backoff: NewBackoff(1)},
					func(tx Txn) error {
						once.Do(func() { close(stop) })
						return ErrAborted // retry forever until stopped
					})
			}()
			select {
			case err := <-done:
				if !errors.Is(err, ErrStopped) {
					t.Fatalf("err = %v, want ErrStopped", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("retry loop did not stop")
			}
		})
	}
}

// TestAtomicallyOptsStoppedBeforeStart: a closed stop channel refuses
// even the first attempt.
func TestAtomicallyOptsStoppedBeforeStart(t *testing.T) {
	for _, info := range Algorithms() {
		tm, err := info.New(1)
		if err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		close(stop)
		err = tm.(ObservableTM).AtomicallyOpts(RunOpts{Stop: stop}, func(tx Txn) error {
			t.Fatalf("%s: body ran after stop", info.Name)
			return nil
		})
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("%s: err = %v, want ErrStopped", info.Name, err)
		}
	}
}

// TestAtomicallyOptsCommits: a zero-bias policy with a stop channel
// that never fires behaves exactly like plain Atomically.
func TestAtomicallyOptsCommits(t *testing.T) {
	for _, info := range Algorithms() {
		tm, err := info.New(1)
		if err != nil {
			t.Fatal(err)
		}
		otm := tm.(ObservableTM)
		stop := make(chan struct{})
		bo := NewBackoff(1)
		for i := 0; i < 10; i++ {
			err := otm.AtomicallyOpts(RunOpts{Stop: stop, Backoff: bo}, func(tx Txn) error {
				v, err := tx.Read(0)
				if err != nil {
					return err
				}
				return tx.Write(0, v+1)
			})
			if err != nil {
				t.Fatalf("%s: %v", info.Name, err)
			}
		}
		var got int64
		if err := tm.Atomically(func(tx Txn) error {
			v, err := tx.Read(0)
			got = v
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if got != 10 {
			t.Fatalf("%s: counter = %d, want 10", info.Name, got)
		}
	}
}
