package native

import (
	"runtime"
	"sync/atomic"
)

// DefaultBackoffCap is the ceiling on the exponential spin shift: no
// attempt ever spins more than 1<<DefaultBackoffCap hints between
// retries, whatever the retry round. The cap defines the policy's
// dynamic range — the starvation bias moves a process at most MaxBias
// shifts inside it — and is surfaced through engine stats so runs can
// report the range their contention management operated in.
const DefaultBackoffCap = 10

// MaxBias bounds the per-process shift adjustment: a bias of ±MaxBias
// scales a process's spin bound by at most 2^MaxBias in either
// direction, which keeps even a maximally favoured process backing off
// and a maximally penalized one below the cap.
const MaxBias = 3

// starveBias is the adjustment Rebias applies to processes whose
// measured starvation stands out from the mean.
const starveBias = 2

// Backoff is a shared, tunable retry-backoff policy. Every process of
// one run waits through the same policy; the per-process bias shifts
// an individual process's exponential spin bound so a contention
// manager (the live monitor's starvation feedback) can favour starved
// processes over hot ones. All methods are safe for concurrent use.
type Backoff struct {
	cap  int32
	bias []atomic.Int32
}

// NewBackoff creates a policy for procs processes (zero-based index)
// with the default cap and neutral bias.
func NewBackoff(procs int) *Backoff {
	return NewBackoffCap(procs, DefaultBackoffCap)
}

// NewBackoffCap creates a policy with an explicit spin-shift cap. A
// non-positive cap degrades to pure runtime.Gosched backoff.
func NewBackoffCap(procs, cap int) *Backoff {
	if cap < 0 {
		cap = 0
	}
	b := &Backoff{cap: int32(cap)}
	if procs > 0 {
		b.bias = make([]atomic.Int32, procs)
	}
	return b
}

// defaultBackoff is the policy behind plain Atomically: default cap,
// no per-process bias.
var defaultBackoff = NewBackoff(0)

// Cap returns the spin-shift ceiling.
func (b *Backoff) Cap() int { return int(b.cap) }

// Bias returns process proc's current shift adjustment (0 for
// processes outside the policy's range).
func (b *Backoff) Bias(proc int) int {
	if proc < 0 || proc >= len(b.bias) {
		return 0
	}
	return int(b.bias[proc].Load())
}

// SetBias sets process proc's shift adjustment, clamped to
// [-MaxBias, MaxBias]. Negative bias makes the process back off less.
func (b *Backoff) SetBias(proc, bias int) {
	if proc < 0 || proc >= len(b.bias) {
		return
	}
	if bias > MaxBias {
		bias = MaxBias
	}
	if bias < -MaxBias {
		bias = -MaxBias
	}
	b.bias[proc].Store(int32(bias))
}

// BiasSnapshot returns a copy of every process's current bias.
func (b *Backoff) BiasSnapshot() []int {
	out := make([]int, len(b.bias))
	for p := range b.bias {
		out[p] = int(b.bias[p].Load())
	}
	return out
}

// Rebias derives every process's bias from its measured starvation
// interval (events since its last commit, as accounted by the online
// monitor): a process starved beyond twice the mean interval backs
// off less, a process committing well inside half the mean backs off
// more, and everyone else returns to neutral. Entries beyond the
// policy's process range are ignored.
func (b *Backoff) Rebias(starvation []int) {
	n := len(starvation)
	if n > len(b.bias) {
		n = len(b.bias)
	}
	total := 0
	for _, s := range starvation[:n] {
		total += s
	}
	if n == 0 || total == 0 {
		return
	}
	mean := float64(total) / float64(n)
	for p := 0; p < n; p++ {
		s := float64(starvation[p])
		switch {
		case s > 2*mean:
			b.bias[p].Store(-starveBias)
		case 2*s < mean:
			b.bias[p].Store(starveBias)
		default:
			b.bias[p].Store(0)
		}
	}
}

// shift is the effective spin shift of process proc on retry round:
// round adjusted by the process's bias, clamped to [0, cap].
func (b *Backoff) shift(proc, round int) int {
	s := round + b.Bias(proc)
	if s < 0 {
		s = 0
	}
	if s > int(b.cap) {
		s = int(b.cap)
	}
	return s
}

// wait spins with exponentially growing bounds and yields the
// processor once the bound saturates, so retry storms under heavy
// contention do not starve the committer holding the locks.
func (b *Backoff) wait(proc, round int) {
	if round <= 0 {
		return
	}
	saturated := round+b.Bias(proc) >= int(b.cap)
	if saturated {
		runtime.Gosched()
	}
	for i := 0; i < 1<<b.shift(proc, round); i++ {
		spinHint()
	}
}
