package native

import "sync"

// Mutex is the coarse-grained baseline: every transaction runs under
// one sync.Mutex. It never aborts.
type Mutex struct {
	counters
	mu   sync.Mutex
	vals []int64
}

var _ TM = (*Mutex)(nil)

// NewMutex returns an instance with n t-variables initialized to 0.
func NewMutex(n int) (*Mutex, error) {
	if err := checkVars(n); err != nil {
		return nil, err
	}
	return &Mutex{vals: make([]int64, n)}, nil
}

// Name implements TM.
func (m *Mutex) Name() string { return "native-mutex" }

// Vars implements TM.
func (m *Mutex) Vars() int { return len(m.vals) }

// Stats implements TM.
func (m *Mutex) Stats() Stats { return m.snapshot() }

// mutexTxn buffers writes so a body that returns an error (or
// declines to commit) leaves no effects, like every other algorithm.
type mutexTxn struct {
	m      *Mutex
	writes map[int]int64
}

// Atomically implements TM.
func (m *Mutex) Atomically(fn func(Txn) error) error {
	return m.AtomicallyObserved(nil, fn)
}

// AtomicallyOpts implements ObservableTM. Mutex never retries, so the
// backoff policy is unused; the stop signal is honoured before the
// lock is taken (a transaction already under the lock completes).
func (m *Mutex) AtomicallyOpts(opts RunOpts, fn func(Txn) error) error {
	if opts.Stop != nil {
		select {
		case <-opts.Stop:
			return ErrStopped
		default:
		}
	}
	return m.AtomicallyObserved(opts.Observer, fn)
}

// AtomicallyObserved implements ObservableTM. The whole transaction —
// including the observer's commit callbacks — runs under the mutex, so
// observed events of different transactions never interleave.
func (m *Mutex) AtomicallyObserved(obs Observer, fn func(Txn) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	tx := &mutexTxn{m: m}
	if err := fn(observe(obs, tx)); err != nil {
		if obs != nil {
			obs.Abandon()
		}
		return err
	}
	if obs != nil {
		obs.TryCommitInv()
	}
	for i, v := range tx.writes {
		m.vals[i] = v
	}
	m.commits.Add(1)
	if obs != nil {
		obs.TryCommitReturn(true)
	}
	return nil
}

func (tx *mutexTxn) Read(i int) (int64, error) {
	if v, ok := tx.writes[i]; ok {
		return v, nil
	}
	if i < 0 || i >= len(tx.m.vals) {
		return 0, rangeErr(i)
	}
	return tx.m.vals[i], nil
}

func (tx *mutexTxn) Write(i int, v int64) error {
	if i < 0 || i >= len(tx.m.vals) {
		return rangeErr(i)
	}
	if tx.writes == nil {
		tx.writes = make(map[int]int64)
	}
	tx.writes[i] = v
	return nil
}
