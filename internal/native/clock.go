package native

import (
	"reflect"
	"sync/atomic"
)

// A single fetch-add version clock is the classic TL2 scalability
// bottleneck: every commit serializes on one cache line. This clock
// shards the counter: logical time is the maximum over the shards,
// shard s only ever holds values congruent to s modulo clockShards
// (so write versions stay globally unique), and a commit advances one
// shard to a value strictly above the maximum it scanned.
//
// Correctness argument (what TL2/TinySTM need from the clock): shard
// values are monotone, so if a Sample completes before a Tick begins,
// the Tick's scan reads every shard at least as high as the Sample
// did, and its result strictly exceeds the sampled value. That is
// exactly the property the single-word clock provides — a transaction
// that ticks after a reader sampled rv gets a write version > rv —
// while spreading commit traffic across clockShards cache lines.

// clockShards is a power of two.
const clockShards = 8

type clockShard struct {
	v atomic.Uint64
	_ [7]uint64
}

type shardedClock struct {
	shards [clockShards]clockShard
}

func newShardedClock() *shardedClock {
	c := &shardedClock{}
	// Shard s starts at s, establishing the residue invariant.
	for i := range c.shards {
		c.shards[i].v.Store(uint64(i))
	}
	return c
}

// Sample returns the current logical time: at least every Tick that
// completed before the sample began, never ahead of real time.
func (c *shardedClock) Sample() uint64 {
	var m uint64
	for i := range c.shards {
		if v := c.shards[i].v.Load(); v > m {
			m = v
		}
	}
	return m
}

// Tick advances shard s (mod clockShards) to a fresh globally-unique
// value strictly above the current logical time and returns it.
func (c *shardedClock) Tick(s int) uint64 {
	s &= clockShards - 1
	for {
		m := c.Sample()
		cur := c.shards[s].v.Load()
		if cur > m {
			m = cur
		}
		// Smallest value ≡ s (mod clockShards) strictly above m.
		next := m - m%clockShards + uint64(s)
		for next <= m {
			next += clockShards
		}
		if c.shards[s].v.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// shardOf derives a clock shard from an attempt's heap address, a
// zero-contention stand-in for a CPU id: concurrent committers live
// at different addresses and so spread across shards, without a
// shared round-robin counter reintroducing the hot spot.
func shardOf(tx any) int {
	return int(reflect.ValueOf(tx).Pointer()>>5) & (clockShards - 1)
}
