package native

import "sync"

// TL2 is a TL2-style STM: sharded global version clock, invisible
// reads validated against a read version, commit-time locking in
// stripe order over the shared striped lock table.
type TL2 struct {
	counters
	clock *shardedClock
	table *stripeTable
	pool  sync.Pool // recycled *tl2Txn scratch
}

var _ TM = (*TL2)(nil)

// NewTL2 returns an instance with n t-variables initialized to 0.
func NewTL2(n int) (*TL2, error) {
	if err := checkVars(n); err != nil {
		return nil, err
	}
	return &TL2{clock: newShardedClock(), table: newStripeTable(n)}, nil
}

// Name implements TM.
func (t *TL2) Name() string { return "native-tl2" }

// Vars implements TM.
func (t *TL2) Vars() int { return len(t.table.vals) }

// Stats implements TM.
func (t *TL2) Stats() Stats { return t.snapshot() }

// Atomically implements TM.
func (t *TL2) Atomically(fn func(Txn) error) error {
	return runAtomically(&t.counters, t.begin, RunOpts{}, fn)
}

// AtomicallyObserved implements ObservableTM.
func (t *TL2) AtomicallyObserved(obs Observer, fn func(Txn) error) error {
	return runAtomically(&t.counters, t.begin, RunOpts{Observer: obs}, fn)
}

// AtomicallyOpts implements ObservableTM.
func (t *TL2) AtomicallyOpts(opts RunOpts, fn func(Txn) error) error {
	return runAtomically(&t.counters, t.begin, opts, fn)
}

func (t *TL2) begin() attempt {
	tx, _ := t.pool.Get().(*tl2Txn)
	if tx == nil {
		tx = &tl2Txn{tm: t, writes: make(map[int]int64)}
	}
	tx.rv = t.clock.Sample()
	return tx
}

type tl2Txn struct {
	tm     *TL2
	rv     uint64
	reads  []int // stripes read
	writes map[int]int64
	order  []int // variable indexes in first-write order
	dead   bool
	// commit scratch, recycled with the rest: distinct write stripes in
	// lock order and their pre-lock words.
	stripes []int
	seen    map[int]uint64
}

// recycle implements recyclable: clear the logs, keep the capacity.
func (tx *tl2Txn) recycle() {
	tx.reads = tx.reads[:0]
	clear(tx.writes)
	tx.order = tx.order[:0]
	tx.stripes = tx.stripes[:0]
	clear(tx.seen)
	tx.dead = false
	tx.tm.pool.Put(tx)
}

func (tx *tl2Txn) Read(i int) (int64, error) {
	if tx.dead {
		return 0, ErrAborted
	}
	if v, ok := tx.writes[i]; ok {
		return v, nil
	}
	tab := tx.tm.table
	if i < 0 || i >= len(tab.vals) {
		return 0, rangeErr(i)
	}
	l := tab.lock(i)
	w1 := l.load()
	if locked(w1) || version(w1) > tx.rv {
		tx.dead = true
		return 0, ErrAborted
	}
	v := tab.vals[i].v.Load()
	if l.load() != w1 {
		tx.dead = true
		return 0, ErrAborted
	}
	tx.reads = append(tx.reads, tab.stripe(i))
	return v, nil
}

func (tx *tl2Txn) Write(i int, v int64) error {
	if tx.dead {
		return ErrAborted
	}
	if i < 0 || i >= len(tx.tm.table.vals) {
		return rangeErr(i)
	}
	if _, ok := tx.writes[i]; !ok {
		tx.order = append(tx.order, i)
	}
	tx.writes[i] = v
	return nil
}

func (tx *tl2Txn) abandon() {}

func (tx *tl2Txn) commit() bool {
	if tx.dead {
		return false
	}
	if len(tx.writes) == 0 {
		return true // reads already validated against rv
	}
	tab := tx.tm.table

	// Distinct write stripes in ascending order (deadlock-free), built
	// in the transaction's pooled scratch.
	stripes := tx.stripes[:0]
	seen := tx.seen
	if seen == nil {
		seen = make(map[int]uint64, len(tx.order))
		tx.seen = seen
	}
	for _, i := range tx.order {
		s := tab.stripe(i)
		if _, dup := seen[s]; !dup {
			seen[s] = 0
			stripes = append(stripes, s)
		}
	}
	tx.stripes = stripes
	sortInts(stripes)

	acquired := 0
	release := func() {
		for _, s := range stripes[:acquired] {
			tab.locks[s].unlock(seen[s])
		}
	}
	for _, s := range stripes {
		w := tab.locks[s].load()
		if locked(w) || version(w) > tx.rv || !tab.locks[s].tryLock(w) {
			release()
			return false
		}
		seen[s] = w // pre-lock word, restored on failure
		acquired++
	}
	for _, s := range tx.reads {
		if _, mine := seen[s]; mine {
			continue // validated at acquisition
		}
		w := tab.locks[s].load()
		if locked(w) || version(w) > tx.rv {
			release()
			return false
		}
	}
	wv := tx.tm.clock.Tick(shardOf(tx))
	for i, v := range tx.writes {
		tab.vals[i].v.Store(v)
	}
	for _, s := range stripes {
		tab.locks[s].unlock(versionWord(wv))
	}
	return true
}
