package native

import "sync"

// TinySTM is a TinySTM-style STM: encounter-time locking on the
// shared stripe table (a writer owns its stripes from first write to
// commit), write-back buffering, and timestamp extension — a read
// that sees a version newer than the read timestamp revalidates the
// read set and slides the timestamp forward instead of aborting.
type TinySTM struct {
	counters
	clock *shardedClock
	table *stripeTable
	pool  sync.Pool // recycled *tinyTxn scratch
}

var _ TM = (*TinySTM)(nil)

// NewTinySTM returns an instance with n t-variables initialized to 0.
func NewTinySTM(n int) (*TinySTM, error) {
	if err := checkVars(n); err != nil {
		return nil, err
	}
	return &TinySTM{clock: newShardedClock(), table: newStripeTable(n)}, nil
}

// Name implements TM.
func (t *TinySTM) Name() string { return "native-tinystm" }

// Vars implements TM.
func (t *TinySTM) Vars() int { return len(t.table.vals) }

// Stats implements TM.
func (t *TinySTM) Stats() Stats { return t.snapshot() }

// Atomically implements TM.
func (t *TinySTM) Atomically(fn func(Txn) error) error {
	return runAtomically(&t.counters, t.begin, RunOpts{}, fn)
}

// AtomicallyObserved implements ObservableTM.
func (t *TinySTM) AtomicallyObserved(obs Observer, fn func(Txn) error) error {
	return runAtomically(&t.counters, t.begin, RunOpts{Observer: obs}, fn)
}

// AtomicallyOpts implements ObservableTM.
func (t *TinySTM) AtomicallyOpts(opts RunOpts, fn func(Txn) error) error {
	return runAtomically(&t.counters, t.begin, opts, fn)
}

func (t *TinySTM) begin() attempt {
	tx, _ := t.pool.Get().(*tinyTxn)
	if tx == nil {
		tx = &tinyTxn{tm: t}
	}
	tx.rv = t.clock.Sample()
	return tx
}

type tinyRead struct {
	stripe int
	ver    uint64
}

type tinyTxn struct {
	tm     *TinySTM
	rv     uint64
	reads  []tinyRead
	writes map[int]int64
	owned  map[int]uint64 // stripe -> pre-lock word
	dead   bool
}

// recycle implements recyclable: clear the logs, keep the capacity.
func (tx *tinyTxn) recycle() {
	tx.reads = tx.reads[:0]
	clear(tx.writes)
	clear(tx.owned)
	tx.dead = false
	tx.tm.pool.Put(tx)
}

// validateReads checks that every read's observed stripe version is
// still current (exact match: a newer version means the read is
// stale even if it fits under a fresher timestamp).
func (tx *tinyTxn) validateReads() bool {
	for _, r := range tx.reads {
		if pre, mine := tx.owned[r.stripe]; mine {
			if version(pre) != r.ver {
				return false
			}
			continue
		}
		w := tx.tm.table.locks[r.stripe].load()
		if locked(w) || version(w) != r.ver {
			return false
		}
	}
	return true
}

// extend tries to slide the read timestamp forward past a version
// that postdates rv: sample a fresh timestamp, then prove every prior
// read is still current under it.
func (tx *tinyTxn) extend() bool {
	rv := tx.tm.clock.Sample()
	if !tx.validateReads() {
		return false
	}
	tx.rv = rv
	return true
}

func (tx *tinyTxn) abort() error {
	tx.dead = true
	tx.releaseOwned()
	return ErrAborted
}

func (tx *tinyTxn) releaseOwned() {
	for s, pre := range tx.owned {
		tx.tm.table.locks[s].unlock(pre)
	}
	clear(tx.owned) // keep the map for the pooled scratch
}

func (tx *tinyTxn) Read(i int) (int64, error) {
	if tx.dead {
		return 0, ErrAborted
	}
	if v, ok := tx.writes[i]; ok {
		return v, nil
	}
	tab := tx.tm.table
	if i < 0 || i >= len(tab.vals) {
		return 0, rangeErr(i)
	}
	s := tab.stripe(i)
	if pre, mine := tx.owned[s]; mine {
		// The stripe is locked by this transaction: the cell holds
		// the committed value (write-back) and cannot move.
		v := tab.vals[i].v.Load()
		tx.reads = append(tx.reads, tinyRead{stripe: s, ver: version(pre)})
		return v, nil
	}
	for tries := 0; ; tries++ {
		w1 := tab.locks[s].load()
		if locked(w1) {
			return 0, tx.abort() // encounter conflict: abort self
		}
		if version(w1) > tx.rv {
			if tries >= 2 || !tx.extend() {
				return 0, tx.abort()
			}
			continue
		}
		v := tab.vals[i].v.Load()
		if tab.locks[s].load() != w1 {
			return 0, tx.abort()
		}
		tx.reads = append(tx.reads, tinyRead{stripe: s, ver: version(w1)})
		return v, nil
	}
}

func (tx *tinyTxn) Write(i int, v int64) error {
	if tx.dead {
		return ErrAborted
	}
	tab := tx.tm.table
	if i < 0 || i >= len(tab.vals) {
		return rangeErr(i)
	}
	s := tab.stripe(i)
	if tx.writes == nil {
		tx.writes = make(map[int]int64)
		tx.owned = make(map[int]uint64)
	}
	if _, mine := tx.owned[s]; mine {
		tx.writes[i] = v
		return nil
	}
	for tries := 0; ; tries++ {
		w := tab.locks[s].load()
		if locked(w) {
			return tx.abort() // encounter conflict: abort self
		}
		if version(w) > tx.rv {
			if tries >= 2 || !tx.extend() {
				return tx.abort()
			}
			continue
		}
		if !tab.locks[s].tryLock(w) {
			return tx.abort()
		}
		tx.owned[s] = w
		tx.writes[i] = v
		return nil
	}
}

func (tx *tinyTxn) abandon() {
	if !tx.dead {
		tx.releaseOwned()
	}
}

func (tx *tinyTxn) commit() bool {
	if tx.dead {
		return false
	}
	if len(tx.writes) == 0 {
		return true // reads were validated incrementally
	}
	if !tx.validateReads() {
		tx.releaseOwned()
		return false
	}
	tab := tx.tm.table
	wv := tx.tm.clock.Tick(shardOf(tx))
	for i, v := range tx.writes {
		tab.vals[i].v.Store(v)
	}
	for s := range tx.owned {
		tab.locks[s].unlock(versionWord(wv))
	}
	clear(tx.owned)
	return true
}
