package loadgen

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"livetm/internal/client"
	"livetm/internal/engine"
	"livetm/internal/server"
)

func testScenario() *Scenario {
	return &Scenario{
		Name: "unit",
		Seed: 42,
		Arrival: Arrival{
			Process: "poisson",
			Rate:    600,
		},
		Mix: []MixEntry{
			{Cell: "update/hot/shared", Weight: 3},
			{Cell: "readheavy/cold/disjoint", Weight: 1},
		},
		Phases: []Phase{
			{Name: "warmup", Duration: Duration(150 * time.Millisecond)},
			{Name: "steady", Duration: Duration(300 * time.Millisecond), RateScale: 1.5},
		},
		Clients: 6,
	}
}

// TestPlanDeterminism is the acceptance criterion in miniature: the
// same scenario + seed materializes into byte-identical schedules,
// and a different seed into a different one.
func TestPlanDeterminism(t *testing.T) {
	sc := testScenario()
	p1, err := sc.Plan()
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	p2, err := sc.Plan()
	if err != nil {
		t.Fatalf("plan again: %v", err)
	}
	b1, _ := p1.Encode()
	b2, _ := p2.Encode()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same scenario + seed produced different schedules")
	}
	if len(p1.Events) < 100 {
		t.Fatalf("plan has %d events, expected a few hundred arrivals", len(p1.Events))
	}
	sc.Seed = 43
	p3, err := sc.Plan()
	if err != nil {
		t.Fatalf("plan seed 43: %v", err)
	}
	d1, _ := p1.Digest()
	d3, _ := p3.Digest()
	if d1 == d3 {
		t.Fatalf("different seeds produced the same plan digest")
	}
}

// TestPlanBursty pins the bursty process: bursts land on the period
// grid, all arrivals of a burst at the same instant, sized by
// rate × period and scaled per phase.
func TestPlanBursty(t *testing.T) {
	sc := testScenario()
	sc.Arrival = Arrival{Process: "bursty", BurstSize: 5, BurstEvery: Duration(50 * time.Millisecond)}
	sc.Phases = []Phase{
		{Name: "steady", Duration: Duration(200 * time.Millisecond)},
		{Name: "surge", Duration: Duration(100 * time.Millisecond), RateScale: 2},
	}
	p, err := sc.Plan()
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if got := p.PlannedByPhase[0]; got != 4*5 {
		t.Fatalf("steady planned %d arrivals, want 20", got)
	}
	if got := p.PlannedByPhase[1]; got != 2*10 {
		t.Fatalf("surge planned %d arrivals, want 20 (burst size doubled)", got)
	}
	for _, ev := range p.Events {
		if ev.Kind == EvArrival && ev.At%(50*time.Millisecond) != 0 {
			t.Fatalf("arrival off the burst grid at %v", ev.At)
		}
	}
}

// TestRunInProcessDeterministicArtifact runs the same scenario twice
// against fresh sessions and compares every deterministic artifact
// field — the "identical artifact modulo timestamps (and measured
// quantities)" acceptance criterion.
func TestRunInProcessDeterministicArtifact(t *testing.T) {
	run := func() *Artifact {
		sess, err := engine.Open(engine.SessionConfig{
			Engine: "native-tl2", Workers: 2, Vars: 8, MaxQueue: 256,
		})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		sc := testScenario()
		sc.Gates = &Gates{MaxAbortRate: 0.99, MinThroughput: 1}
		art, err := Run(context.Background(), &SessionTarget{S: sess, NVars: 8}, sc, "hash123", Options{})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		rep, err := sess.Close()
		if err != nil {
			t.Fatalf("close: %v", err)
		}
		art.AttachReport(rep)
		return art
	}
	a, b := run(), run()
	if a.PlanDigest != b.PlanDigest || a.PlanDigest == "" {
		t.Fatalf("plan digests differ: %q vs %q", a.PlanDigest, b.PlanDigest)
	}
	if a.ScenarioHash != "hash123" || a.Seed != 42 || a.Schema != ArtifactSchema {
		t.Fatalf("provenance fields wrong: %+v", a)
	}
	if a.PlannedArrivals != b.PlannedArrivals {
		t.Fatalf("planned arrivals differ: %d vs %d", a.PlannedArrivals, b.PlannedArrivals)
	}
	for i := range a.Phases {
		if a.Phases[i].Planned != b.Phases[i].Planned || a.Phases[i].Name != b.Phases[i].Name {
			t.Fatalf("phase %d plan differs: %+v vs %+v", i, a.Phases[i], b.Phases[i])
		}
	}
	// The measured side must be populated and coherent.
	total := uint64(0)
	for _, p := range a.Phases {
		total += p.Committed + p.NoCommits + p.Dropped + p.Shed + p.Errors
	}
	if total == 0 {
		t.Fatalf("no arrival completed: %+v", a.Phases)
	}
	steady := a.Phases[1]
	if steady.Dispatched == 0 || steady.P99MS <= 0 {
		t.Fatalf("steady phase unmeasured: %+v", steady)
	}
	// Gates embedded from the scenario evaluate against the artifact.
	results := Evaluate(a, *a.Gates, "")
	if !Passed(results) {
		t.Fatalf("loose development gates failed: %+v", results)
	}
}

// TestRunRampAddsWorkers drives a ramp schedule against an in-process
// session and checks the pool actually grew under load.
func TestRunRampAddsWorkers(t *testing.T) {
	sess, err := engine.Open(engine.SessionConfig{
		Engine: "native-tl2", Workers: 2, MaxWorkers: 4, Vars: 8,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer sess.Close()
	sc := testScenario()
	sc.Ramp = []RampStep{{At: Duration(200 * time.Millisecond), AddWorkers: 2}}
	tgt := &SessionTarget{S: sess, NVars: 8}
	if _, err := Run(context.Background(), tgt, sc, "", Options{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if w := sess.Stats().Workers; w != 4 {
		t.Fatalf("workers after ramp = %d, want 4", w)
	}
}

// TestRunCapabilityValidation: a ramping scenario must be rejected on
// a wire target and a faulting one on a session target, before any
// traffic flows.
func TestRunCapabilityValidation(t *testing.T) {
	sess, err := engine.Open(engine.SessionConfig{Engine: "native-tl2", Workers: 2, Vars: 4})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer sess.Close()
	sc := testScenario()
	sc.Phases[1].Fault = "alg1"
	if _, err := Run(context.Background(), &SessionTarget{S: sess, NVars: 4}, sc, "", Options{}); err == nil {
		t.Fatalf("fault scenario ran against a session target")
	}
	// The layered spelling hits the same capability check.
	sc.Phases[1].Fault = ""
	sc.Phases[1].Faults = []string{"alg1"}
	if _, err := Run(context.Background(), &SessionTarget{S: sess, NVars: 4}, sc, "", Options{}); err == nil {
		t.Fatalf("layered fault scenario ran against a session target")
	}
}

// TestLayeredFaultValidation pins the layered-fault schema: Fault and
// Faults combine in order, duplicates and unknown names are rejected.
func TestLayeredFaultValidation(t *testing.T) {
	sc := testScenario()
	sc.Phases[1].Fault = "alg1-crash"
	sc.Phases[1].Faults = []string{"alg2-parasitic"}
	if err := sc.Validate(); err != nil {
		t.Fatalf("layered faults rejected: %v", err)
	}
	if got := sc.Phases[1].FaultNames(); len(got) != 2 || got[0] != "alg1-crash" || got[1] != "alg2-parasitic" {
		t.Fatalf("FaultNames = %v, want [alg1-crash alg2-parasitic]", got)
	}
	sc.Phases[1].Faults = []string{"alg1-crash"}
	if err := sc.Validate(); err == nil {
		t.Fatalf("duplicate fault across Fault and Faults accepted")
	}
	sc.Phases[1].Faults = []string{"no-such-fault"}
	if err := sc.Validate(); err == nil {
		t.Fatalf("unknown layered fault accepted")
	}
	sc.Phases[1].Fault = ""
	sc.Phases[1].Faults = []string{"alg2-parasitic"}
	if err := sc.Validate(); err != nil {
		t.Fatalf("faults-only phase rejected: %v", err)
	}
	if got := sc.Phases[1].FaultNames(); len(got) != 1 || got[0] != "alg2-parasitic" {
		t.Fatalf("FaultNames = %v, want [alg2-parasitic]", got)
	}
}

// TestRunLayeredFaultsOverWire layers a crash-variant fault with a
// parasitic one in a single inject phase and checks each strategy ran
// its own episode loop, with the legacy singular fields still carrying
// the first entry.
func TestRunLayeredFaultsOverWire(t *testing.T) {
	sess, err := engine.Open(engine.SessionConfig{
		Engine: "native-tl2", Workers: 2, Vars: 8, MaxQueue: 256,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	srv := server.New(sess, server.Config{
		Info: server.InfoResponse{Engine: sess.Name(), Workers: 2, Vars: 8},
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, _ = srv.Drain(ctx)
	}()

	c := client.New(client.Config{Addr: hs.URL, Name: "lg"})
	tgt, err := NewWireTarget(context.Background(), c)
	if err != nil {
		t.Fatalf("wire target: %v", err)
	}
	sc := testScenario()
	sc.Arrival.Rate = 200
	sc.Phases = []Phase{
		{Name: "warmup", Duration: Duration(100 * time.Millisecond)},
		{Name: "inject", Duration: Duration(700 * time.Millisecond),
			Faults: []string{"alg1-crash", "alg2-parasitic"}},
		{Name: "recovery", Duration: Duration(100 * time.Millisecond)},
	}
	art, err := Run(context.Background(), tgt, sc, "", Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	inj := art.Phases[1]
	if len(inj.Faults) != 2 || inj.Faults[0] != "alg1-crash" || inj.Faults[1] != "alg2-parasitic" {
		t.Fatalf("inject faults = %v", inj.Faults)
	}
	if len(inj.FaultResults) != 2 {
		t.Fatalf("inject has %d fault results, want 2: %+v", len(inj.FaultResults), inj.FaultResults)
	}
	for i, fr := range inj.FaultResults {
		if fr.Strategy != inj.Faults[i] {
			t.Fatalf("fault result %d is %q, want %q", i, fr.Strategy, inj.Faults[i])
		}
		if fr.Error != "" {
			t.Fatalf("fault %s errored: %s", fr.Strategy, fr.Error)
		}
		if fr.Runs < 1 {
			t.Fatalf("fault %s never completed an episode: %+v", fr.Strategy, fr)
		}
	}
	// Legacy singular fields mirror the first layered entry.
	if inj.Fault != "alg1-crash" || inj.FaultOutcome != inj.FaultResults[0] {
		t.Fatalf("legacy fault fields diverged: fault=%q outcome=%+v", inj.Fault, inj.FaultOutcome)
	}
	for _, pi := range []int{0, 2} {
		if art.Phases[pi].Fault != "" || len(art.Phases[pi].FaultResults) != 0 {
			t.Fatalf("phase %s unexpectedly carries faults: %+v", art.Phases[pi].Name, art.Phases[pi])
		}
	}
}

// TestRunOverWire drives a short scenario against a served session
// through WireTarget, with identity churn wide enough to cross the
// server's (shortened) eviction grace, asserting the admission layer
// stays bounded while the artifact fills in.
func TestRunOverWire(t *testing.T) {
	sess, err := engine.Open(engine.SessionConfig{
		Engine: "native-tl2", Workers: 2, Vars: 8, MaxQueue: 256,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	srv := server.New(sess, server.Config{
		Info:            server.InfoResponse{Engine: sess.Name(), Workers: 2, Vars: 8},
		ClientIdleAfter: 50 * time.Millisecond,
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, _ = srv.Drain(ctx)
	}()

	c := client.New(client.Config{Addr: hs.URL, Name: "lg"})
	tgt, err := NewWireTarget(context.Background(), c)
	if err != nil {
		t.Fatalf("wire target: %v", err)
	}
	sc := testScenario()
	sc.Clients = 64
	art, err := Run(context.Background(), tgt, sc, "wirehash", Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if art.Target != "wire/native-tl2" {
		t.Fatalf("target = %q", art.Target)
	}
	var committed uint64
	for _, p := range art.Phases {
		committed += p.Committed
	}
	if committed == 0 {
		t.Fatalf("nothing committed over the wire: %+v", art.Phases)
	}
}

// TestGateEvaluate pins the gate semantics: warmup excluded, each
// threshold judged on the worst steady phase, degradation flips the
// verdict, and the bench trajectory gate reads the committed BENCH
// schema.
func TestGateEvaluate(t *testing.T) {
	art := &Artifact{
		Schema: ArtifactSchema, Scenario: "g", LivenessClass: "global progress",
		Phases: []PhaseResult{
			{Name: "warmup", DurationMS: 500, Committed: 10, P99MS: 900, AbortRate: 0.99},
			{Name: "steady", DurationMS: 1000, Committed: 400, P99MS: 20, AbortRate: 0.2, RefusalRate: 0.05},
			{Name: "recovery", DurationMS: 500, Committed: 200, P99MS: 35, AbortRate: 0.3, RefusalRate: 0.01},
		},
	}
	g := Gates{MaxP99MS: 50, MaxAbortRate: 0.5, MaxRefusalRate: 0.1, MinThroughput: 100, MinLiveness: "solo progress"}
	if res := Evaluate(art, g, ""); !Passed(res) {
		t.Fatalf("healthy artifact failed: %+v", res)
	}
	// Warmup's terrible numbers were excluded; degrade a steady phase
	// and each gate trips.
	bad := *art
	bad.Phases = append([]PhaseResult(nil), art.Phases...)
	bad.Phases[2].P99MS = 80
	if res := Evaluate(&bad, g, ""); Passed(res) {
		t.Fatalf("degraded p99 passed: %+v", res)
	}
	bad.Phases[2] = art.Phases[2]
	bad.Phases[1].AbortRate = 0.8
	if res := Evaluate(&bad, g, ""); Passed(res) {
		t.Fatalf("degraded abort rate passed: %+v", res)
	}
	bad.Phases[1] = art.Phases[1]
	bad.LivenessClass = "none"
	if res := Evaluate(&bad, g, ""); Passed(res) {
		t.Fatalf("liveness collapse passed: %+v", res)
	}
	if Passed(nil) {
		t.Fatalf("an empty gate set must not pass")
	}
}
