// Package loadgen is the open-loop scenario engine: it schedules
// transaction arrivals against a TM session — in-process
// (SessionTarget) or served over the wire (WireTarget) — from a
// declarative scenario file, measures per-phase latency, abort and
// overload behaviour, and emits a provenance-stamped artifact that
// release gates (Evaluate) judge against thresholds and the BENCH
// performance trajectory.
//
// Open-loop means arrivals fire on the scenario's clock, not on
// completions: the driver keeps submitting at the planned instants
// whether or not earlier transactions finished, which is the arrival
// pressure under which the paper's no-local-progress dichotomy bites
// in production. Closed-loop harnesses (the workload matrix, `livetm
// client -clients`) never generate that pressure — each worker waits
// for its previous transaction. The only concession to reality is
// the outstanding cap: past Scenario.MaxOutstanding concurrently
// in-flight arrivals, new ones are shed and counted, so the driver
// itself cannot become an unbounded queue.
//
// # Scenario schema
//
// A scenario file is JSON:
//
//	{
//	  "name": "wire-smoke",
//	  "seed": 42,
//	  "arrival": {"process": "poisson", "rate": 400},
//	  "mix": [
//	    {"cell": "update/hot/shared", "weight": 3},
//	    {"cell": "readheavy/cold/disjoint", "weight": 1}
//	  ],
//	  "phases": [
//	    {"name": "warmup", "duration": "500ms"},
//	    {"name": "inject", "duration": "1s", "rate_scale": 1.5, "fault": "alg2-parasitic"},
//	    {"name": "recovery", "duration": "500ms"}
//	  ],
//	  "ramp": [{"at": "750ms", "add_workers": 2}],
//	  "clients": 8,
//	  "retries": 3,
//	  "gates": {"max_p99_ms": 250, "max_abort_rate": 0.9, "max_refusal_rate": 0.5, "min_throughput": 50}
//	}
//
// arrival.process is "poisson" (exponential inter-arrivals at rate/sec)
// or "bursty" (burst_size simultaneous arrivals every burst_every).
// Each mix cell names a workload-matrix point minus the process count
// ("mix/contention/sharing"); arrivals draw cells by weight and
// compile them to declarative programs (the wire's server.Op
// vocabulary), so the same scenario runs in-process and over the
// wire. Phases run back to back, each scaling the base rate; a
// phase's "fault" names a Theorem 1 adversary strategy run repeatedly
// as network clients for the phase's duration (wire targets only —
// the canonical shape is warmup/inject/recovery). "ramp" steps call
// Session.AddWorkers under load (in-process targets only). "clients"
// rotates arrivals through that many distinct client identities,
// exercising the server's per-client fair admission and its
// idle-eviction path.
//
// # Determinism
//
// The whole schedule — arrival instants, cell choices, client
// identities, and each arrival's operation pattern — is a pure
// function of (scenario file, seed), materialized up front by
// Scenario.Plan and digested into the artifact (PlanDigest). Same
// file + same seed is byte-identical, which CI asserts; only the
// measured quantities (latency, abort rates, stats deltas) vary
// between runs.
//
// # Artifacts and gates
//
// Run returns a schema "livetm/loadgen/v1" artifact: scenario hash,
// seed, plan digest, git describe, per-phase
// p50/p95/p99/throughput/abort-rate/refusal-rate, fault outcomes, and
// — after AttachReport folds in a drain or close report — the
// liveness class and checked-throughput. Evaluate judges it against
// the scenario's embedded Gates: p99 latency, abort rate, overload
// refusal rate, throughput floor, minimum liveness class, and a
// fraction of a BENCH_native.json trajectory cell. `livetm loadgen`
// runs scenarios; `livetm loadgen gate` re-judges saved artifacts, CI
// wiring both.
package loadgen
