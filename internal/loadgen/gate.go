package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
)

// Gates are a scenario's release thresholds: the four-gate
// methodology (latency, abort rate, overload refusals, throughput)
// plus the liveness lattice and the BENCH trajectory. A zero/empty
// field leaves that gate unevaluated, so development scenarios can
// start with a loose subset and tighten toward GA.
type Gates struct {
	// MaxP99MS bounds the worst phase p99 completion latency
	// (warmup excluded, as in all phase gates below).
	MaxP99MS float64 `json:"max_p99_ms,omitempty"`
	// MaxAbortRate bounds the worst phase attempt-level abort rate.
	MaxAbortRate float64 `json:"max_abort_rate,omitempty"`
	// MaxRefusalRate bounds the worst phase overload-refusal rate.
	MaxRefusalRate float64 `json:"max_refusal_rate,omitempty"`
	// MinThroughput floors the committed arrivals/sec across all
	// non-warmup phases.
	MinThroughput float64 `json:"min_throughput,omitempty"`
	// MinLiveness floors the run's liveness class on the lattice
	// (none < solo progress < global progress < 2-progress < local
	// progress). Requires a drained/closed run with a monitor report.
	MinLiveness string `json:"min_liveness,omitempty"`
	// BenchCell names a BENCH_native.json trajectory cell
	// ("<engine> <workload>", e.g. "native-tl2 p4/update/hot/shared");
	// the run's throughput must reach BenchFraction of its
	// ops_per_sec. Wire and open-loop runs pay per-arrival round
	// trips the closed-loop bench does not, so fractions are small.
	BenchCell     string  `json:"bench_cell,omitempty"`
	BenchFraction float64 `json:"bench_fraction,omitempty"`
}

// GateResult is one gate's verdict.
type GateResult struct {
	Gate   string `json:"gate"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// livenessRank orders the lattice for MinLiveness comparisons.
func livenessRank(class string) int {
	switch class {
	case "local progress":
		return 4
	case "2-progress":
		return 3
	case "global progress":
		return 2
	case "solo progress":
		return 1
	default:
		return 0
	}
}

// steadyPhases filters out warmup: gates judge the phases that are
// supposed to be representative, including inject and recovery.
func steadyPhases(a *Artifact) []PhaseResult {
	var out []PhaseResult
	for _, p := range a.Phases {
		if p.Name == "warmup" {
			continue
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return a.Phases
	}
	return out
}

// Evaluate judges the artifact against the gates (and, when BenchCell
// is set and a BENCH artifact is supplied, the trajectory). Every
// evaluated gate reports; the run passes when all do.
func Evaluate(a *Artifact, g Gates, benchPath string) []GateResult {
	var out []GateResult
	phases := steadyPhases(a)

	if g.MaxP99MS > 0 {
		worst, at := 0.0, ""
		for _, p := range phases {
			if p.P99MS >= worst {
				worst, at = p.P99MS, p.Name
			}
		}
		out = append(out, GateResult{
			Gate: "p99_latency", Pass: worst <= g.MaxP99MS,
			Detail: fmt.Sprintf("worst p99 %.2fms (phase %s), max %.2fms", worst, at, g.MaxP99MS),
		})
	}
	if g.MaxAbortRate > 0 {
		worst, at := 0.0, ""
		for _, p := range phases {
			if p.AbortRate >= worst {
				worst, at = p.AbortRate, p.Name
			}
		}
		out = append(out, GateResult{
			Gate: "abort_rate", Pass: worst <= g.MaxAbortRate,
			Detail: fmt.Sprintf("worst abort rate %.3f (phase %s), max %.3f", worst, at, g.MaxAbortRate),
		})
	}
	if g.MaxRefusalRate > 0 {
		worst, at := 0.0, ""
		for _, p := range phases {
			if p.RefusalRate >= worst {
				worst, at = p.RefusalRate, p.Name
			}
		}
		out = append(out, GateResult{
			Gate: "refusal_rate", Pass: worst <= g.MaxRefusalRate,
			Detail: fmt.Sprintf("worst refusal rate %.3f (phase %s), max %.3f", worst, at, g.MaxRefusalRate),
		})
	}
	throughput := steadyThroughput(phases)
	if g.MinThroughput > 0 {
		out = append(out, GateResult{
			Gate: "throughput", Pass: throughput >= g.MinThroughput,
			Detail: fmt.Sprintf("%.1f committed/sec, min %.1f", throughput, g.MinThroughput),
		})
	}
	if g.MinLiveness != "" {
		got := a.LivenessClass
		pass := got != "" && livenessRank(got) >= livenessRank(g.MinLiveness)
		detail := fmt.Sprintf("class %q, min %q", got, g.MinLiveness)
		if got == "" {
			detail = fmt.Sprintf("no monitor report in artifact (run with -drain), min %q", g.MinLiveness)
		}
		out = append(out, GateResult{Gate: "liveness", Pass: pass, Detail: detail})
	}
	if g.BenchCell != "" {
		out = append(out, benchGate(a, g, benchPath, throughput))
	}
	return out
}

// steadyThroughput is committed arrivals/sec across the phases.
func steadyThroughput(phases []PhaseResult) float64 {
	var committed uint64
	var ms int64
	for _, p := range phases {
		committed += p.Committed
		ms += p.DurationMS
	}
	if ms == 0 {
		return 0
	}
	return float64(committed) / (float64(ms) / 1000)
}

// benchGate compares the run's throughput against the committed
// BENCH trajectory cell.
func benchGate(a *Artifact, g Gates, benchPath string, throughput float64) GateResult {
	frac := g.BenchFraction
	if frac <= 0 {
		frac = 0.01
	}
	if benchPath == "" {
		return GateResult{Gate: "bench_trajectory", Pass: false,
			Detail: fmt.Sprintf("gate names cell %q but no BENCH artifact supplied (-bench)", g.BenchCell)}
	}
	ops, err := benchCellOps(benchPath, g.BenchCell)
	if err != nil {
		return GateResult{Gate: "bench_trajectory", Pass: false, Detail: err.Error()}
	}
	floor := ops * frac
	return GateResult{
		Gate: "bench_trajectory", Pass: throughput >= floor,
		Detail: fmt.Sprintf("%.1f committed/sec vs %.1f (%.2f%% of %s at %.0f ops/sec)",
			throughput, floor, frac*100, g.BenchCell, ops),
	}
}

// benchCellOps pulls one cell's ops_per_sec out of a BENCH artifact.
// Decoding is structural (engine + workload + ops_per_sec), so the
// gate tolerates BENCH schema growth.
func benchCellOps(path, cellName string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("bench artifact: %v", err)
	}
	var bench struct {
		Results []struct {
			Engine    string  `json:"engine"`
			Workload  string  `json:"workload"`
			OpsPerSec float64 `json:"ops_per_sec"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		return 0, fmt.Errorf("bench artifact %s: %v", path, err)
	}
	var engine, workload string
	if _, err := fmt.Sscanf(cellName, "%s %s", &engine, &workload); err != nil {
		return 0, fmt.Errorf("bench cell %q (want \"<engine> <workload>\")", cellName)
	}
	for _, r := range bench.Results {
		if r.Engine == engine && r.Workload == workload {
			if r.OpsPerSec <= 0 {
				return 0, fmt.Errorf("bench cell %q has no ops_per_sec", cellName)
			}
			return r.OpsPerSec, nil
		}
	}
	return 0, fmt.Errorf("bench cell %q not in %s", cellName, path)
}

// Passed reports whether every evaluated gate passed (and that at
// least one was evaluated — an empty gate set cannot greenlight).
func Passed(results []GateResult) bool {
	if len(results) == 0 {
		return false
	}
	for _, r := range results {
		if !r.Pass {
			return false
		}
	}
	return true
}
