package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"livetm/internal/adversary"
	"livetm/internal/workload"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("250ms", "1.5s"), keeping scenario files readable.
type Duration time.Duration

// MarshalJSON renders the duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string or a bare number of
// nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("duration must be a string like %q or nanoseconds", "250ms")
	}
	*d = Duration(n)
	return nil
}

// Scenario is one declarative open-loop load description: what
// arrives, how fast, shaped into which transactions, through which
// phases, against which release gates. See the package documentation
// for the full schema.
type Scenario struct {
	// Name identifies the scenario in artifacts and gate reports.
	Name string `json:"name"`
	// Seed pins the arrival schedule: same scenario + same seed is
	// byte-identical, which is what the determinism CI check asserts.
	Seed uint64 `json:"seed"`
	// Arrival is the base arrival process; each phase scales it.
	Arrival Arrival `json:"arrival"`
	// Mix is the weighted workload-cell mix each arrival draws from.
	Mix []MixEntry `json:"mix"`
	// Phases run back to back; the canonical shape is
	// warmup/inject/recovery. Gates skip phases named "warmup".
	Phases []Phase `json:"phases"`
	// Ramp grows the worker pool mid-run (in-process targets only).
	Ramp []RampStep `json:"ramp,omitempty"`
	// Clients is the number of distinct client identities the arrivals
	// rotate through (admission fairness and the eviction path are
	// exercised per identity). 0 defaults to 4.
	Clients int `json:"clients,omitempty"`
	// Retries is how many times one arrival retries an overload
	// refusal (with jittered backoff) before counting as dropped. 0
	// defaults to 3; negative means no retries.
	Retries int `json:"retries,omitempty"`
	// MaxOutstanding caps concurrently in-flight arrivals; past it an
	// arrival is shed (counted, not dispatched) — the open-loop driver
	// itself must not become an unbounded queue. 0 defaults to 1024.
	MaxOutstanding int `json:"max_outstanding,omitempty"`
	// Session configures the in-process target (ignored over the
	// wire, where the server owns the session).
	Session *SessionSpec `json:"session,omitempty"`
	// Gates are the scenario's release thresholds, embedded into the
	// artifact so `livetm loadgen gate` needs only the artifact.
	Gates *Gates `json:"gates,omitempty"`
}

// Arrival is the open-loop arrival process.
type Arrival struct {
	// Process is "poisson" (exponential inter-arrivals at Rate/sec) or
	// "bursty" (BurstSize simultaneous arrivals every BurstEvery).
	Process string `json:"process"`
	// Rate is the mean arrival rate per second (poisson; for bursty it
	// sizes the burst when BurstSize is 0).
	Rate float64 `json:"rate,omitempty"`
	// BurstSize arrivals fire at once every BurstEvery (bursty only).
	BurstSize int `json:"burst_size,omitempty"`
	// BurstEvery is the burst period (bursty only).
	BurstEvery Duration `json:"burst_every,omitempty"`
}

// MixEntry weights one workload-matrix cell in the arrival mix.
type MixEntry struct {
	// Cell names the cell as "mix/contention/sharing", e.g.
	// "update/hot/shared" — the workload matrix's axes minus the
	// process count, which the target's worker pool supplies.
	Cell string `json:"cell"`
	// Weight is the cell's relative draw weight (> 0).
	Weight float64 `json:"weight"`
}

// Phase is one run phase. Phases execute in order.
type Phase struct {
	Name     string   `json:"name"`
	Duration Duration `json:"duration"`
	// RateScale multiplies the base arrival rate (and burst size) for
	// this phase. 0 means 1.
	RateScale float64 `json:"rate_scale,omitempty"`
	// Fault names an adversary strategy ("alg1", "alg1-crash", "alg2",
	// "alg2-parasitic") run repeatedly as a fault injector for the
	// phase's duration (wire targets only).
	Fault string `json:"fault,omitempty"`
	// Faults layers several strategies in one phase, each driven by
	// its own concurrent episode loop — e.g. a crash variant riding
	// alongside a parasitic one, the compound failure mode a single
	// injector cannot produce. Combines with Fault (which runs first
	// in artifact order); duplicate names are rejected.
	Faults []string `json:"faults,omitempty"`
}

// FaultNames is the phase's combined fault list: the legacy singular
// Fault first, then Faults, order preserved. Empty when the phase
// injects nothing.
func (p *Phase) FaultNames() []string {
	var names []string
	if p.Fault != "" {
		names = append(names, p.Fault)
	}
	return append(names, p.Faults...)
}

// RampStep adds workers at an offset from run start.
type RampStep struct {
	At         Duration `json:"at"`
	AddWorkers int      `json:"add_workers"`
}

// SessionSpec opens the in-process target session.
type SessionSpec struct {
	Engine     string `json:"engine"`
	Workers    int    `json:"workers"`
	MaxWorkers int    `json:"max_workers,omitempty"`
	Vars       int    `json:"vars"`
	MaxQueue   int    `json:"max_queue,omitempty"`
	Live       bool   `json:"live,omitempty"`
	Shards     int    `json:"shards,omitempty"`
}

// Load reads, hashes, parses and validates a scenario file. The hash
// (sha256 of the raw bytes) stamps the artifact's provenance.
func Load(path string) (*Scenario, string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	sum := sha256.Sum256(raw)
	var sc Scenario
	if err := json.Unmarshal(raw, &sc); err != nil {
		return nil, "", fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, "", fmt.Errorf("loadgen: %s: %w", path, err)
	}
	return &sc, hex.EncodeToString(sum[:]), nil
}

// Validate checks the scenario's internal consistency and fills
// nothing in — defaults resolve at plan/run time so the file's hash
// stays the source of truth.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario needs a name")
	}
	switch s.Arrival.Process {
	case "poisson":
		if s.Arrival.Rate <= 0 {
			return fmt.Errorf("poisson arrival needs rate > 0")
		}
	case "bursty":
		if s.Arrival.BurstEvery <= 0 {
			return fmt.Errorf("bursty arrival needs burst_every > 0")
		}
		if s.Arrival.BurstSize <= 0 && s.Arrival.Rate <= 0 {
			return fmt.Errorf("bursty arrival needs burst_size or rate")
		}
	default:
		return fmt.Errorf("arrival process %q (want poisson or bursty)", s.Arrival.Process)
	}
	if len(s.Mix) == 0 {
		return fmt.Errorf("scenario needs at least one mix entry")
	}
	for _, m := range s.Mix {
		if m.Weight <= 0 {
			return fmt.Errorf("mix cell %q needs weight > 0", m.Cell)
		}
		if _, err := parseCell(m.Cell); err != nil {
			return err
		}
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario needs at least one phase")
	}
	total := time.Duration(0)
	for i, p := range s.Phases {
		if p.Name == "" {
			return fmt.Errorf("phase %d needs a name", i)
		}
		if p.Duration <= 0 {
			return fmt.Errorf("phase %q needs duration > 0", p.Name)
		}
		seen := map[string]bool{}
		for _, name := range p.FaultNames() {
			if seen[name] {
				return fmt.Errorf("phase %q lists fault %q more than once", p.Name, name)
			}
			seen[name] = true
			if _, err := FaultStrategy(name); err != nil {
				return err
			}
		}
		total += time.Duration(p.Duration)
	}
	for _, r := range s.Ramp {
		if r.AddWorkers <= 0 {
			return fmt.Errorf("ramp step at %v needs add_workers > 0", time.Duration(r.At))
		}
		if time.Duration(r.At) < 0 || time.Duration(r.At) >= total {
			return fmt.Errorf("ramp step at %v outside the run [0, %v)", time.Duration(r.At), total)
		}
	}
	return nil
}

// FaultStrategy resolves a phase's fault name to the adversary
// strategy variant it injects.
func FaultStrategy(name string) (adversary.Strategy, error) {
	for _, s := range adversary.Variants() {
		if s.Name() == name {
			return s, nil
		}
	}
	return adversary.Strategy{}, fmt.Errorf("unknown fault %q (alg1, alg1-crash, alg2, alg2-parasitic)", name)
}

// cell is a resolved mix entry: one workload-matrix point minus the
// process count.
type cell struct {
	mix        workload.Mix
	contention workload.Contention
	sharing    workload.Sharing
}

// parseCell resolves "mix/contention/sharing" against the workload
// matrix's axes.
func parseCell(name string) (cell, error) {
	parts := strings.Split(name, "/")
	if len(parts) != 3 {
		return cell{}, fmt.Errorf("mix cell %q (want mix/contention/sharing, e.g. update/hot/shared)", name)
	}
	var c cell
	found := false
	for _, m := range workload.Mixes() {
		if m.Name == parts[0] {
			c.mix, found = m, true
		}
	}
	if !found {
		return cell{}, fmt.Errorf("mix cell %q: unknown mix %q", name, parts[0])
	}
	found = false
	for _, ct := range workload.Contentions() {
		if ct.Name == parts[1] {
			c.contention, found = ct, true
		}
	}
	if !found {
		return cell{}, fmt.Errorf("mix cell %q: unknown contention %q", name, parts[1])
	}
	switch workload.Sharing(parts[2]) {
	case workload.Shared:
		c.sharing = workload.Shared
	case workload.Disjoint:
		c.sharing = workload.Disjoint
	default:
		return cell{}, fmt.Errorf("mix cell %q: unknown sharing %q", name, parts[2])
	}
	return c, nil
}

// clientCount resolves the identity-rotation default.
func (s *Scenario) clientCount() int {
	if s.Clients > 0 {
		return s.Clients
	}
	return 4
}

// retryBudget resolves the per-arrival retry default.
func (s *Scenario) retryBudget() int {
	switch {
	case s.Retries > 0:
		return s.Retries
	case s.Retries < 0:
		return 0
	default:
		return 3
	}
}

// outstandingCap resolves the in-flight arrival cap.
func (s *Scenario) outstandingCap() int {
	if s.MaxOutstanding > 0 {
		return s.MaxOutstanding
	}
	return 1024
}
