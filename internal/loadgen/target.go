package loadgen

import (
	"context"
	"errors"
	"fmt"

	"livetm/internal/adversary"
	"livetm/internal/adversary/netadv"
	"livetm/internal/client"
	"livetm/internal/engine"
	"livetm/internal/server"
)

// Target is where the driver lands arrivals: an in-process session or
// a served one over the wire, behind one submission surface. Exec
// runs one program under the given client identity and reports
// whether it committed (declined, ErrNoCommit, is a clean false);
// overload refusals surface as errors matching engine.ErrOverloaded
// so the retry loop treats both targets alike.
type Target interface {
	Exec(ctx context.Context, clientName string, ops []server.Op) (committed bool, err error)
	Stats(ctx context.Context) (engine.SessionStats, error)
	// Workers and Vars shape the generated programs.
	Workers() int
	Vars() int
	// Describe names the target in the artifact.
	Describe() string
}

// WorkerAdder is the optional ramp capability (in-process targets).
type WorkerAdder interface {
	AddWorkers(n int) error
}

// FaultDriver is the optional fault-injection capability: one run of
// an adversary strategy against the target (wire targets, where the
// strategies exist as real network clients).
type FaultDriver interface {
	Fault(s adversary.Strategy, cfg adversary.Config) (adversary.Outcome, error)
}

// SessionTarget drives an in-process engine.Session. Programs submit
// asynchronously so the session's MaxQueue refuses overload with
// ErrOverloaded (hint-less — the backoff falls back to its base)
// instead of Exec's blocking backpressure, keeping the driver
// open-loop.
type SessionTarget struct {
	S     *engine.Session
	NVars int
}

// Exec submits the program and waits for its result.
func (t *SessionTarget) Exec(ctx context.Context, _ string, ops []server.Op) (bool, error) {
	var reads []int64
	done := make(chan error, 1)
	if err := t.S.Submit(server.ProgramBody(ops, &reads), func(err error) { done <- err }); err != nil {
		return false, err
	}
	select {
	case err := <-done:
		switch {
		case err == nil:
			return true, nil
		case errors.Is(err, engine.ErrNoCommit):
			return false, nil
		default:
			return false, err
		}
	case <-ctx.Done():
		return false, ctx.Err()
	}
}

// Stats snapshots the session.
func (t *SessionTarget) Stats(context.Context) (engine.SessionStats, error) {
	return t.S.Stats(), nil
}

// AddWorkers grows the session's pool (the ramp capability).
func (t *SessionTarget) AddWorkers(n int) error { return t.S.AddWorkers(n) }

// Workers reports the current pool size.
func (t *SessionTarget) Workers() int { return t.S.Stats().Workers }

// Vars reports the session's variable count.
func (t *SessionTarget) Vars() int { return t.NVars }

// Describe names the target.
func (t *SessionTarget) Describe() string { return "session/" + t.S.Name() }

// WireTarget drives a served session through internal/client. Each
// arrival's identity fans out of one shared transport via WithName,
// so rotating identities cost nothing per name while still exercising
// the server's per-client admission (and its eviction path).
type WireTarget struct {
	C    *client.Client
	Info server.InfoResponse
}

// NewWireTarget connects and snapshots the server's shape.
func NewWireTarget(ctx context.Context, c *client.Client) (*WireTarget, error) {
	info, err := c.Info(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: info: %w", err)
	}
	return &WireTarget{C: c, Info: info}, nil
}

// Exec runs the program over the wire under the given identity.
func (t *WireTarget) Exec(ctx context.Context, clientName string, ops []server.Op) (bool, error) {
	res, err := t.C.WithName(clientName).Exec(ctx, engine.AnyWorker, ops)
	if err != nil {
		return false, err
	}
	return res.Committed, nil
}

// Stats snapshots the served session.
func (t *WireTarget) Stats(ctx context.Context) (engine.SessionStats, error) {
	return t.C.Stats(ctx)
}

// Fault runs one round-trip batch of the adversary strategy as
// network clients against the server (the inject phase's fault
// injector). The served session needs at least two workers.
func (t *WireTarget) Fault(s adversary.Strategy, cfg adversary.Config) (adversary.Outcome, error) {
	if t.Info.Workers < 2 {
		return adversary.Outcome{}, fmt.Errorf("loadgen: fault %s needs 2 workers, the server has %d", s.Name(), t.Info.Workers)
	}
	return netadv.RunNetwork(t.C, s, cfg)
}

// Workers reports the served pool size.
func (t *WireTarget) Workers() int { return t.Info.Workers }

// Vars reports the served variable count.
func (t *WireTarget) Vars() int { return t.Info.Vars }

// Describe names the target.
func (t *WireTarget) Describe() string { return "wire/" + t.Info.Engine }
