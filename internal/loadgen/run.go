package loadgen

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"livetm/internal/adversary"
	"livetm/internal/client"
	"livetm/internal/engine"
	"livetm/internal/telemetry"
)

// Options tunes a Run beyond what the scenario declares.
type Options struct {
	// ClientPrefix prefixes the rotating client identities
	// ("<prefix>-<i>"). Empty defaults to "loadgen".
	ClientPrefix string
	// Registry, when set, receives live per-phase instruments
	// (livetm_loadgen_* counters and latency histograms) so a /metrics
	// scrape can watch the run.
	Registry *telemetry.Registry
	// FaultConfig tunes the inject phases' adversary episodes. Zero
	// values default to short episodes (4 rounds, 200ms block budget)
	// so one episode never outlives its phase by much.
	FaultConfig adversary.Config
}

// phaseAgg accumulates one phase's counters while arrivals complete
// concurrently. Bare telemetry instruments double as plain atomics
// when no registry is attached (the server's convention).
type phaseAgg struct {
	dispatched *telemetry.Counter
	committed  *telemetry.Counter
	nocommits  *telemetry.Counter
	refusals   *telemetry.Counter
	retries    *telemetry.Counter
	dropped    *telemetry.Counter
	shed       *telemetry.Counter
	errs       *telemetry.Counter
	latency    *telemetry.Histogram

	firstErr atomic.Value // string

	statsIn  engine.SessionStats // target stats entering the phase
	statsOut engine.SessionStats // and leaving it
	faults   []*FaultResult      // one per layered fault, phase order
}

// newPhaseAgg resolves the phase-scoped instruments. The phase label
// is "<index>/<name>" from the validated scenario file: one registry
// serves one run, so the label space is exactly the scenario's phase
// list — finite per process, just not provable from the call graph,
// hence the telemetrylabel allowance.
//
//lint:allow(telemetrylabel) phase label space is the validated scenario's phase list, finite per run/registry
func newPhaseAgg(reg *telemetry.Registry, phase string) *phaseAgg {
	if reg == nil {
		return &phaseAgg{
			dispatched: &telemetry.Counter{}, committed: &telemetry.Counter{},
			nocommits: &telemetry.Counter{}, refusals: &telemetry.Counter{},
			retries: &telemetry.Counter{}, dropped: &telemetry.Counter{},
			shed: &telemetry.Counter{}, errs: &telemetry.Counter{},
			latency: &telemetry.Histogram{},
		}
	}
	return &phaseAgg{
		dispatched: reg.Counter("livetm_loadgen_dispatched_total", "Arrivals dispatched per phase", "phase", phase),
		committed:  reg.Counter("livetm_loadgen_committed_total", "Arrivals committed per phase", "phase", phase),
		nocommits:  reg.Counter("livetm_loadgen_nocommits_total", "Arrivals declined per phase", "phase", phase),
		refusals:   reg.Counter("livetm_loadgen_refusals_total", "Overload refusals per phase", "phase", phase),
		retries:    reg.Counter("livetm_loadgen_retries_total", "Overload retries per phase", "phase", phase),
		dropped:    reg.Counter("livetm_loadgen_dropped_total", "Arrivals dropped after exhausting retries per phase", "phase", phase),
		shed:       reg.Counter("livetm_loadgen_shed_total", "Arrivals shed at the outstanding cap per phase", "phase", phase),
		errs:       reg.Counter("livetm_loadgen_errors_total", "Arrivals failed per phase", "phase", phase),
		latency:    reg.Histogram("livetm_loadgen_latency_ns", "Arrival completion latency per phase", "phase", phase),
	}
}

// Run drives the scenario's plan against the target and returns the
// measured artifact (liveness fields unset — AttachReport folds in a
// drain/close report when the caller has one). The scheduler is
// open-loop: arrivals fire at their planned offsets regardless of
// completions, up to the scenario's outstanding cap, past which
// arrivals are shed and counted rather than queued.
func Run(ctx context.Context, tgt Target, sc *Scenario, scenarioHash string, opts Options) (*Artifact, error) {
	plan, err := sc.Plan()
	if err != nil {
		return nil, err
	}
	// Capability checks before any traffic: a scenario that ramps
	// needs a worker-adding target, faults need a fault driver.
	var adder WorkerAdder
	if len(sc.Ramp) > 0 {
		var ok bool
		if adder, ok = tgt.(WorkerAdder); !ok {
			return nil, fmt.Errorf("loadgen: scenario %s ramps workers, but target %s cannot (ramp is in-process only)", sc.Name, tgt.Describe())
		}
	}
	var faulter FaultDriver
	for _, ph := range sc.Phases {
		if len(ph.FaultNames()) == 0 {
			continue
		}
		var ok bool
		if faulter, ok = tgt.(FaultDriver); !ok {
			return nil, fmt.Errorf("loadgen: scenario %s injects faults, but target %s cannot (faults are wire-only)", sc.Name, tgt.Describe())
		}
		break
	}

	prefix := opts.ClientPrefix
	if prefix == "" {
		prefix = "loadgen"
	}
	fcfg := opts.FaultConfig
	if fcfg.Rounds == 0 {
		fcfg.Rounds = 4
	}
	if fcfg.BlockTimeout == 0 {
		fcfg.BlockTimeout = 200 * time.Millisecond
	}

	cells := make([]cell, len(sc.Mix))
	for i, m := range sc.Mix {
		cells[i], _ = parseCell(m.Cell) // validated by Plan
	}
	aggs := make([]*phaseAgg, len(sc.Phases))
	for i, ph := range sc.Phases {
		aggs[i] = newPhaseAgg(opts.Registry, strconv.Itoa(i)+"/"+ph.Name)
	}

	workers, vars := tgt.Workers(), tgt.Vars()
	retryBudget := sc.retryBudget()
	sem := make(chan struct{}, sc.outstandingCap())
	var wg sync.WaitGroup

	dispatch := func(ev Event, agg *phaseAgg) {
		select {
		case sem <- struct{}{}:
		default:
			agg.shed.Inc()
			return
		}
		agg.dispatched.Inc()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			name := prefix + "-" + strconv.Itoa(ev.Client)
			ops := cells[ev.Cell].ops(ev.Client, ev.Seq, workers, vars)
			var backoff client.Backoff
			t0 := time.Now()
			for attempt := 0; ; attempt++ {
				committed, err := tgt.Exec(ctx, name, ops)
				if err == nil {
					agg.latency.Observe(int64(time.Since(t0)))
					if committed {
						agg.committed.Inc()
					} else {
						agg.nocommits.Inc()
					}
					return
				}
				if errors.Is(err, engine.ErrOverloaded) {
					agg.refusals.Inc()
					if attempt >= retryBudget {
						agg.dropped.Inc()
						return
					}
					var we *client.Error
					hint := time.Duration(0)
					if errors.As(err, &we) {
						hint = we.RetryAfter
					}
					select {
					case <-time.After(backoff.Next(hint)):
					case <-ctx.Done():
						agg.errs.Inc()
						return
					}
					agg.retries.Inc()
					continue
				}
				agg.errs.Inc()
				agg.firstErr.CompareAndSwap(nil, err.Error())
				return
			}
		}()
	}

	// Fault injection runs as episodes in phase-scoped goroutines, one
	// per layered fault so a crash variant and a parasitic one really
	// overlap; stop asks each loop to finish its current episode and
	// waits for all of them.
	var faultStop chan struct{}
	var faultWG sync.WaitGroup
	startFaults := func(pi int) {
		faultStop = make(chan struct{})
		for _, name := range sc.Phases[pi].FaultNames() {
			strat, _ := FaultStrategy(name) // validated
			fr := &FaultResult{Strategy: strat.Name()}
			aggs[pi].faults = append(aggs[pi].faults, fr)
			stop := faultStop
			faultWG.Add(1)
			go func() {
				defer faultWG.Done()
				for {
					select {
					case <-stop:
						return
					case <-ctx.Done():
						return
					default:
					}
					out, err := faulter.Fault(strat, fcfg)
					if err != nil {
						fr.Error = err.Error()
						return
					}
					fr.Runs++
					fr.Rounds += out.Rounds
					if out.LocalProgressViolated() {
						fr.Violations++
					}
				}
			}()
		}
	}
	stopFault := func() {
		if faultStop == nil {
			return
		}
		close(faultStop)
		faultWG.Wait()
		faultStop = nil
	}

	art := &Artifact{
		Schema:       ArtifactSchema,
		Scenario:     sc.Name,
		ScenarioHash: scenarioHash,
		Seed:         sc.Seed,
		GitDescribe:  GitDescribe(),
		StartedAt:    time.Now().UTC().Format(time.RFC3339),
		Target:       tgt.Describe(),
		Workers:      workers,
		Vars:         vars,
		Gates:        sc.Gates,
	}
	if art.PlanDigest, err = plan.Digest(); err != nil {
		return nil, err
	}
	for _, n := range plan.PlannedByPhase {
		art.PlannedArrivals += n
	}

	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	<-timer.C
	cur := -1
	enter := func(pi int) error {
		stopFault()
		if cur >= 0 {
			st, err := tgt.Stats(ctx)
			if err != nil {
				return fmt.Errorf("loadgen: stats at phase boundary: %w", err)
			}
			aggs[cur].statsOut = st
			if pi >= 0 {
				aggs[pi].statsIn = st
			}
		} else if pi >= 0 {
			st, err := tgt.Stats(ctx)
			if err != nil {
				return fmt.Errorf("loadgen: stats at start: %w", err)
			}
			aggs[pi].statsIn = st
		}
		cur = pi
		if pi >= 0 && len(sc.Phases[pi].FaultNames()) > 0 {
			startFaults(pi)
		}
		return nil
	}

	for _, ev := range plan.Events {
		if d := time.Until(start.Add(ev.At)); d > 0 {
			timer.Reset(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				stopFault()
				return nil, ctx.Err()
			}
		}
		switch ev.Kind {
		case EvPhase:
			if err := enter(ev.Phase); err != nil {
				stopFault()
				return nil, err
			}
		case EvRamp:
			// The pool grows, but op generation keeps the run-start
			// worker count: the programs stay a pure function of the
			// plan no matter when the ramp lands.
			if err := adder.AddWorkers(ev.AddWorkers); err != nil {
				aggs[ev.Phase].errs.Inc()
				aggs[ev.Phase].firstErr.CompareAndSwap(nil, "ramp: "+err.Error())
			}
		case EvArrival:
			dispatch(ev, aggs[ev.Phase])
		}
	}
	// Run out the final phase's clock, then let stragglers finish
	// (bounded by the context) before the closing stats snapshot.
	if d := time.Until(start.Add(plan.Total)); d > 0 {
		timer.Reset(d)
		select {
		case <-timer.C:
		case <-ctx.Done():
		}
	}
	stopFault()
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
	case <-ctx.Done():
	}
	if err := enter(-1); err != nil {
		return nil, err
	}

	for i, ph := range sc.Phases {
		agg := aggs[i]
		durMS := time.Duration(ph.Duration).Milliseconds()
		names := ph.FaultNames()
		pr := PhaseResult{
			Name:       ph.Name,
			DurationMS: durMS,
			Planned:    plan.PlannedByPhase[i],
			Dispatched: agg.dispatched.Load(),
			Committed:  agg.committed.Load(),
			NoCommits:  agg.nocommits.Load(),
			Refusals:   agg.refusals.Load(),
			Retries:    agg.retries.Load(),
			Dropped:    agg.dropped.Load(),
			Shed:       agg.shed.Load(),
			Errors:     agg.errs.Load(),
			P50MS:      float64(agg.latency.Quantile(0.50)) / 1e6,
			P95MS:      float64(agg.latency.Quantile(0.95)) / 1e6,
			P99MS:      float64(agg.latency.Quantile(0.99)) / 1e6,
		}
		if durMS > 0 {
			pr.ThroughputPerSec = float64(pr.Committed) / (float64(durMS) / 1000)
		}
		commits := agg.statsOut.Commits - agg.statsIn.Commits
		aborts := agg.statsOut.Aborts - agg.statsIn.Aborts
		if commits+aborts > 0 {
			pr.AbortRate = float64(aborts) / float64(commits+aborts)
		}
		// Every dispatch is one attempt and every retry one more;
		// each attempt either completes, errors, or is refused.
		if attempts := pr.Dispatched + pr.Retries; attempts > 0 {
			pr.RefusalRate = float64(pr.Refusals) / float64(attempts)
		}
		// Faults carries the full layered list; the singular Fault and
		// FaultOutcome stay populated with the first entry so older
		// artifact consumers keep working.
		if len(names) > 0 {
			pr.Fault = names[0]
			pr.Faults = names
		}
		pr.FaultResults = agg.faults
		if len(agg.faults) > 0 {
			pr.FaultOutcome = agg.faults[0]
		}
		if fe, ok := agg.firstErr.Load().(string); ok {
			pr.FirstError = fe
		}
		art.Phases = append(art.Phases, pr)
	}
	return art, nil
}
