package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"livetm/internal/monitor"
)

// ArtifactSchema versions the loadgen artifact. Bump on breaking
// field changes; CI validates it.
const ArtifactSchema = "livetm/loadgen/v1"

// Artifact is one run's provenance-stamped result: enough to gate a
// release on it (Evaluate) and to reproduce it (scenario hash + seed
// + plan digest).
type Artifact struct {
	Schema       string `json:"schema"`
	Scenario     string `json:"scenario"`
	ScenarioHash string `json:"scenario_hash,omitempty"`
	Seed         uint64 `json:"seed"`
	// PlanDigest is the sha256 of the materialized schedule — the
	// determinism witness: same scenario + seed, same digest.
	PlanDigest      string `json:"plan_digest"`
	PlannedArrivals int    `json:"planned_arrivals"`
	GitDescribe     string `json:"git_describe,omitempty"`
	StartedAt       string `json:"started_at,omitempty"`
	Target          string `json:"target"`
	Workers         int    `json:"workers"`
	Vars            int    `json:"vars"`

	Phases []PhaseResult `json:"phases"`

	// LivenessClass and Checked come from the final monitor report
	// (AttachReport) when the run ends in a drain or close.
	LivenessClass string `json:"liveness_class,omitempty"`
	Checked       bool   `json:"checked,omitempty"`
	// CheckedThroughput is committed transactions per second across
	// the whole run, counted only when the monitor verified the run
	// (Checked) — the BENCH trajectory's ops_per_sec counterpart.
	CheckedThroughput float64 `json:"checked_throughput,omitempty"`

	// Gates embeds the scenario's thresholds so `livetm loadgen gate`
	// needs only the artifact.
	Gates *Gates `json:"gates,omitempty"`
}

// PhaseResult is one phase's measured outcome.
type PhaseResult struct {
	Name string `json:"name"`
	// Fault is the phase's first injected fault (kept for older
	// consumers); Faults is the full layered list in injection order.
	Fault      string   `json:"fault,omitempty"`
	Faults     []string `json:"faults,omitempty"`
	DurationMS int64    `json:"duration_ms"`
	// Planned is deterministic (from the plan); the rest is measured.
	Planned    int    `json:"planned"`
	Dispatched uint64 `json:"dispatched"`
	Committed  uint64 `json:"committed"`
	NoCommits  uint64 `json:"nocommits,omitempty"`
	// Refusals counts overload refusals (each attempt), Retries the
	// re-submissions after one, Dropped the arrivals that exhausted
	// their retry budget, Shed the arrivals never dispatched because
	// the outstanding cap was full.
	Refusals uint64 `json:"refusals,omitempty"`
	Retries  uint64 `json:"retries,omitempty"`
	Dropped  uint64 `json:"dropped,omitempty"`
	Shed     uint64 `json:"shed,omitempty"`
	Errors   uint64 `json:"errors,omitempty"`

	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	// ThroughputPerSec is committed arrivals over the phase duration.
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	// AbortRate is the target's abort rate measured over the phase
	// (attempt-level: server-side stats delta, so it includes retries
	// inside the TM's own retry loop).
	AbortRate float64 `json:"abort_rate"`
	// RefusalRate is refusals / (dispatched + retries + refusals of
	// shed-free attempts): the fraction of submission attempts the
	// admission layer turned away.
	RefusalRate float64 `json:"refusal_rate"`

	// FaultOutcome is the first layered fault's summary (older
	// consumers); FaultResults has one entry per fault, Faults order.
	FaultOutcome *FaultResult   `json:"fault_result,omitempty"`
	FaultResults []*FaultResult `json:"fault_results,omitempty"`
	FirstError   string         `json:"first_error,omitempty"`
}

// FaultResult summarizes the inject phase's adversary runs.
type FaultResult struct {
	Strategy string `json:"strategy"`
	// Runs is completed adversary episodes; Rounds sums p2 commits
	// across them; Violations counts episodes consistent with a
	// local-progress violation (p1 never committed).
	Runs       int    `json:"runs"`
	Rounds     int    `json:"rounds"`
	Violations int    `json:"violations"`
	Error      string `json:"error,omitempty"`
}

// AttachReport folds the final monitor report into the artifact:
// liveness class, checked flag, and checked-throughput.
func (a *Artifact) AttachReport(rep *monitor.Report) {
	if rep == nil {
		return
	}
	a.LivenessClass = rep.LivenessClass()
	a.Checked = rep.Checked
	if !rep.Checked {
		return
	}
	var committed uint64
	var totalMS int64
	for _, p := range a.Phases {
		committed += p.Committed
		totalMS += p.DurationMS
	}
	if totalMS > 0 {
		a.CheckedThroughput = float64(committed) / (float64(totalMS) / 1000)
	}
}

// Write renders the artifact as indented JSON at path.
func (a *Artifact) Write(path string) error {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadArtifact reads an artifact back (the gate subcommand's input).
func LoadArtifact(path string) (*Artifact, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(raw, &a); err != nil {
		return nil, fmt.Errorf("loadgen: parse artifact %s: %w", path, err)
	}
	if a.Schema != ArtifactSchema {
		return nil, fmt.Errorf("loadgen: artifact %s has schema %q, want %q", path, a.Schema, ArtifactSchema)
	}
	return &a, nil
}

// GitDescribe stamps provenance; "unknown" outside a git checkout.
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
