package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"math"
	"sort"
	"time"

	"livetm/internal/server"
	"livetm/internal/workload"
)

// rng is a splitmix64 stream: tiny, dependency-free, and — unlike the
// global math/rand — trivially pinned by the scenario seed, which is
// what makes the arrival schedule a pure function of the file.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// exp returns an exponential inter-arrival gap at rate events/sec.
func (r *rng) exp(rate float64) time.Duration {
	u := r.float()
	// 1-u is in (0, 1], so the log is finite.
	return time.Duration(-math.Log(1-u) / rate * float64(time.Second))
}

// Event kinds of a plan.
const (
	EvPhase   = "phase"
	EvArrival = "arrival"
	EvRamp    = "ramp"
)

// Event is one scheduled instant of a plan, ordered by At.
type Event struct {
	// At is the offset from run start, nanoseconds.
	At time.Duration `json:"at_ns"`
	// Kind is EvPhase, EvArrival or EvRamp.
	Kind string `json:"kind"`
	// Phase indexes Scenario.Phases (all kinds).
	Phase int `json:"phase"`
	// Seq numbers arrivals globally; it seeds the arrival's op
	// pattern, so replaying the plan replays the transactions too.
	Seq int `json:"seq,omitempty"`
	// Cell indexes Scenario.Mix (arrivals).
	Cell int `json:"cell,omitempty"`
	// Client indexes the rotating client identities (arrivals).
	Client int `json:"client,omitempty"`
	// AddWorkers is the ramp step's pool growth (ramps).
	AddWorkers int `json:"add_workers,omitempty"`
}

// Plan is the fully materialized, deterministic schedule of one
// scenario: every phase boundary, arrival, and ramp step with its
// offset, cell, and client identity decided up front. Two plans of
// the same scenario and seed are byte-identical (Encode), which CI
// asserts.
type Plan struct {
	Scenario string        `json:"scenario"`
	Seed     uint64        `json:"seed"`
	Total    time.Duration `json:"total_ns"`
	// PlannedByPhase counts arrivals per phase.
	PlannedByPhase []int   `json:"planned_by_phase"`
	Events         []Event `json:"events"`
}

// Plan materializes the scenario's schedule.
func (s *Scenario) Plan() (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r := &rng{s: s.Seed}
	p := &Plan{
		Scenario:       s.Name,
		Seed:           s.Seed,
		PlannedByPhase: make([]int, len(s.Phases)),
	}
	clients := s.clientCount()
	cum := cumWeights(s.Mix)
	seq := 0
	offset := time.Duration(0)
	for pi, ph := range s.Phases {
		p.Events = append(p.Events, Event{At: offset, Kind: EvPhase, Phase: pi})
		end := offset + time.Duration(ph.Duration)
		scale := ph.RateScale
		if scale <= 0 {
			scale = 1
		}
		emit := func(at time.Duration) {
			p.Events = append(p.Events, Event{
				At: at, Kind: EvArrival, Phase: pi, Seq: seq,
				Cell:   pickCell(cum, r.float()),
				Client: int(r.next() % uint64(clients)),
			})
			p.PlannedByPhase[pi]++
			seq++
		}
		switch s.Arrival.Process {
		case "poisson":
			t := offset + r.exp(s.Arrival.Rate*scale)
			for t < end {
				emit(t)
				t += r.exp(s.Arrival.Rate * scale)
			}
		case "bursty":
			every := time.Duration(s.Arrival.BurstEvery)
			size := s.Arrival.BurstSize
			if size <= 0 {
				size = int(math.Round(s.Arrival.Rate * every.Seconds()))
			}
			n := int(math.Round(float64(size) * scale))
			if n < 1 {
				n = 1
			}
			for t := offset; t < end; t += every {
				for i := 0; i < n; i++ {
					emit(t)
				}
			}
		}
		offset = end
	}
	p.Total = offset
	for _, rs := range s.Ramp {
		at := time.Duration(rs.At)
		pi := 0
		acc := time.Duration(0)
		for i, ph := range s.Phases {
			if at < acc+time.Duration(ph.Duration) {
				pi = i
				break
			}
			acc += time.Duration(ph.Duration)
		}
		p.Events = append(p.Events, Event{At: at, Kind: EvRamp, Phase: pi, AddWorkers: rs.AddWorkers})
	}
	// Events were built phase-ordered; fold the ramps in. The sort is
	// stable so simultaneous events keep their build order (phase
	// marker first, then that instant's arrivals).
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p, nil
}

// Encode renders the plan as deterministic JSON — the byte-identical
// representation the determinism check compares.
func (p *Plan) Encode() ([]byte, error) {
	return json.MarshalIndent(p, "", " ")
}

// Digest is the sha256 of Encode, stamped into the artifact.
func (p *Plan) Digest() (string, error) {
	b, err := p.Encode()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// cumWeights builds the cumulative weight scale of the mix.
func cumWeights(mix []MixEntry) []float64 {
	cum := make([]float64, len(mix))
	total := 0.0
	for i, m := range mix {
		total += m.Weight
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return cum
}

// pickCell maps a uniform draw onto the cumulative scale.
func pickCell(cum []float64, u float64) int {
	for i, c := range cum {
		if u < c {
			return i
		}
	}
	return len(cum) - 1
}

// ops generates the arrival's program: the workload matrix cell's
// read/RMW pattern (Spec.Body's variable choice, reproduced as a
// declarative program so it crosses the wire) over the target's
// variable range. proc partitions disjoint cells; seq makes each
// arrival's picks distinct yet replayable.
func (c cell) ops(proc, seq, workers, vars int) []server.Op {
	n := workers * c.contention.VarsPerProc
	if n > vars {
		n = vars
	}
	if n < 1 {
		n = 1
	}
	perProc := n / workers
	if perProc < 1 {
		perProc = 1
	}
	h := uint64(proc)*2654435761 + uint64(seq)*97 + 1
	pick := func() int {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		if c.sharing == workload.Disjoint {
			idx := (proc%workers)*perProc + int(h%uint64(perProc))
			return idx % n
		}
		return int(h % uint64(n))
	}
	ops := make([]server.Op, 0, c.mix.Reads+c.mix.Writes)
	for r := 0; r < c.mix.Reads; r++ {
		ops = append(ops, server.Op{Kind: server.OpRead, Var: pick()})
	}
	for w := 0; w < c.mix.Writes; w++ {
		ops = append(ops, server.Op{Kind: server.OpIncr, Var: pick(), Val: 1})
	}
	return ops
}
