package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix flags mixed atomic/plain access: any variable or struct
// field whose address is passed to a sync/atomic function anywhere in
// the program must be accessed through sync/atomic everywhere. A
// plain read or write of such a location is a latent data race that
// `-race` only reports if the schedule happens to exercise it; this
// rule makes the invariant a build-time fact. (The typed atomics —
// atomic.Int64 and friends — are safe by construction and outside
// this rule's scope; prefer them for new code.)
func AtomicMix() *Analyzer {
	return &Analyzer{
		Name: "atomicmix",
		Doc:  "locations touched via sync/atomic must be accessed atomically everywhere",
		Run:  runAtomicMix,
	}
}

// atomicFns are the address-taking sync/atomic package functions.
var atomicFns = func() map[string]bool {
	m := map[string]bool{}
	for _, op := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		for _, ty := range []string{"Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer"} {
			m[op+ty] = true
		}
	}
	return m
}()

func runAtomicMix(prog *Program) []Finding {
	// Pass 1: every object whose address feeds a sync/atomic call.
	atomicAt := map[*types.Var]token.Pos{}
	for _, pkg := range prog.Pkgs {
		p := pkg
		p.walkStack(func(n ast.Node, _ []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := p.stdCall(call, "sync/atomic")
			if !ok || !atomicFns[fn.Name()] || len(call.Args) == 0 {
				return true
			}
			if v := p.addressedVar(call.Args[0]); v != nil {
				if _, seen := atomicAt[v]; !seen {
					atomicAt[v] = call.Pos()
				}
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return nil
	}

	// Pass 2: any other mention of those objects is a plain access
	// unless it is itself the &x of a sync/atomic call.
	var out []Finding
	for _, pkg := range prog.Pkgs {
		p := pkg
		p.walkStack(func(n ast.Node, stack []ast.Node) bool {
			var obj types.Object
			var at ast.Expr
			switch n := n.(type) {
			case *ast.Ident:
				// Selector .Sel idents are handled by their parent so
				// the whole x.f expression anchors the finding.
				if len(stack) > 0 {
					if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.Sel == n {
						return true
					}
				}
				obj, at = p.Info.Uses[n], n
			case *ast.SelectorExpr:
				if s := p.Info.Selections[n]; s != nil {
					obj, at = s.Obj(), n
				} else {
					obj, at = p.Info.Uses[n.Sel], n
				}
			default:
				return true
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return true
			}
			first, hot := atomicAt[v]
			if !hot || inAtomicArg(p, stack) || inKeyedLiteral(stack, at) {
				return true
			}
			out = append(out, Finding{
				Pos:  prog.Position(at.Pos()),
				Rule: "atomicmix",
				Message: fmt.Sprintf("%s is accessed with sync/atomic (first at %s); this plain access can race with it — use sync/atomic here too, or a typed atomic",
					exprKey(at), trimPos(prog.Position(first))),
			})
			return true
		})
	}
	return out
}

// addressedVar resolves &x or &x.f to the variable or field object
// whose address is taken; nil for anything else (index expressions,
// calls, conversions).
func (p *Pkg) addressedVar(arg ast.Expr) *types.Var {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	switch x := ast.Unparen(un.X).(type) {
	case *ast.Ident:
		if v, ok := p.Info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if s := p.Info.Selections[x]; s != nil {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
		if v, ok := p.Info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// inAtomicArg reports whether the current node sits inside the first
// argument of a sync/atomic call (the sanctioned access).
func inAtomicArg(p *Pkg, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		if fn, ok := p.stdCall(call, "sync/atomic"); ok && atomicFns[fn.Name()] {
			return true
		}
	}
	return false
}

// inKeyedLiteral reports whether expr is the key of a keyed composite
// literal element (S{field: v}): initialization before the value is
// shared, the one plain mention that is conventionally safe.
func inKeyedLiteral(stack []ast.Node, expr ast.Expr) bool {
	if len(stack) == 0 {
		return false
	}
	kv, ok := stack[len(stack)-1].(*ast.KeyValueExpr)
	return ok && kv.Key == expr
}

// trimPos shortens a position to dir/file:line for messages.
func trimPos(pos token.Position) string {
	name := pos.Filename
	if i := strings.LastIndex(name, "/"); i >= 0 {
		if j := strings.LastIndex(name[:i], "/"); j >= 0 {
			name = name[j+1:]
		}
	}
	return fmt.Sprintf("%s:%d", name, pos.Line)
}
