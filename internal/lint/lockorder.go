package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
)

// LockOrder proves two locking disciplines about sync.Mutex /
// sync.RWMutex usage, per function body:
//
//  1. Pairing: every Lock()/RLock() must be matched — by a deferred
//     Unlock()/RUnlock() on the same receiver, or by an explicit
//     unlock on every path that leaves the function. A return
//     reachable while a lock is held (and not deferred) is flagged,
//     as is a function that locks a receiver it never unlocks.
//  2. Ordering: elements of an indexed lock slice (the engine's
//     per-shard cutMu) must be acquired in ascending index order —
//     an ascending sweep is the repo-wide deadlock-avoidance
//     protocol for the degraded all-shard cut. Locking constant
//     indices out of order, or sweeping a lock slice with a
//     descending loop, is flagged.
//
// The analysis is function-local and syntactic on purpose: a helper
// that intentionally returns with a lock held needs an explicit
// //lint:allow(lockorder) directive stating the protocol it is part
// of.
func LockOrder() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "lock slices acquired in ascending order; every Lock paired with an Unlock on all paths",
		Run:  runLockOrder,
	}
}

// lockCall is one (R)Lock/(R)Unlock call on a sync mutex.
type lockCall struct {
	key     string // normalized receiver ("s.cutMu[#]", "mu")
	base    string // slice base for indexed receivers ("s.cutMu"), "" otherwise
	index   ast.Expr
	read    bool // RLock/RUnlock
	acquire bool // Lock/RLock
	defered bool
	pos     token.Pos
}

func runLockOrder(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range prog.Pkgs {
		p := pkg
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, p.lockCheckFunc(fd)...)
			}
		}
	}
	return out
}

// mutexCall classifies a call as a sync mutex (un)lock.
func (p *Pkg) mutexCall(call *ast.CallExpr, defered bool) (lockCall, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockCall{}, false
	}
	var lc lockCall
	switch sel.Sel.Name {
	case "Lock":
		lc.acquire = true
	case "RLock":
		lc.acquire, lc.read = true, true
	case "Unlock":
	case "RUnlock":
		lc.read = true
	default:
		return lockCall{}, false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok {
		return lockCall{}, false
	}
	if !namedType(tv.Type, "sync", "Mutex") && !namedType(tv.Type, "sync", "RWMutex") {
		return lockCall{}, false
	}
	lc.key = exprKey(sel.X)
	lc.defered = defered
	lc.pos = call.Pos()
	if ix, ok := ast.Unparen(sel.X).(*ast.IndexExpr); ok {
		lc.base = exprKey(ix.X)
		lc.index = ix.Index
	}
	return lc, true
}

// lockCheckFunc runs both disciplines over one function body.
func (p *Pkg) lockCheckFunc(fd *ast.FuncDecl) []Finding {
	var out []Finding
	var calls []lockCall

	// Collect every mutex call in source order, noting defers.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if lc, ok := p.mutexCall(n.Call, true); ok {
				calls = append(calls, lc)
			}
			return false
		case *ast.CallExpr:
			if lc, ok := p.mutexCall(n, false); ok {
				calls = append(calls, lc)
			}
		}
		return true
	})
	if len(calls) == 0 {
		return nil
	}

	// Pairing, part 1: a locked receiver must have some unlock of the
	// same kind in the function.
	released := map[pair]bool{}
	deferred := map[pair]bool{}
	for _, lc := range calls {
		if !lc.acquire {
			released[pair{lc.key, lc.read}] = true
			if lc.defered {
				deferred[pair{lc.key, lc.read}] = true
			}
		}
	}
	reported := map[pair]bool{}
	for _, lc := range calls {
		k := pair{lc.key, lc.read}
		if lc.acquire && !released[k] && !reported[k] {
			reported[k] = true
			verb := "Lock"
			if lc.read {
				verb = "RLock"
			}
			out = append(out, Finding{
				Pos:  p.prog.Position(lc.pos),
				Rule: "lockorder",
				Message: fmt.Sprintf("%s.%s() has no matching unlock in this function; unlock on every path or document the handoff with //lint:allow(lockorder)",
					lc.key, verb),
			})
		}
	}

	// Pairing, part 2: no return while a non-deferred lock is held.
	held := map[pair]token.Pos{}
	var scan func(stmts []ast.Stmt)
	classify := func(s ast.Stmt) {
		// Locks/unlocks anywhere inside this statement update the
		// held-set conservatively (a branch that unlocks counts as
		// released — pairing part 1 already demands unlocks exist).
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				if lc, ok := p.mutexCall(n.Call, true); ok && !lc.acquire {
					delete(held, pair{lc.key, lc.read})
				}
				return false
			case *ast.FuncLit:
				return false // its body is its own scope
			case *ast.CallExpr:
				if lc, ok := p.mutexCall(n, false); ok {
					k := pair{lc.key, lc.read}
					if lc.acquire {
						if !deferred[k] {
							held[k] = lc.pos
						}
					} else {
						delete(held, k)
					}
				}
			}
			return true
		})
	}
	scan = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ast.ReturnStmt:
				for k, lockPos := range held {
					verb := "Lock"
					if k.read {
						verb = "RLock"
					}
					out = append(out, Finding{
						Pos:  p.prog.Position(s.Pos()),
						Rule: "lockorder",
						Message: fmt.Sprintf("return while %s.%s() (at %s) is held with no deferred unlock on this path",
							k.key, verb, trimPos(p.prog.Position(lockPos))),
					})
				}
			case *ast.BlockStmt:
				scan(s.List)
			case *ast.IfStmt:
				save := copyHeld(held)
				scan(s.Body.List)
				held = save
				if s.Else != nil {
					switch e := s.Else.(type) {
					case *ast.BlockStmt:
						scan(e.List)
					case *ast.IfStmt:
						scan([]ast.Stmt{e})
					}
					held = save
				}
				classify(s) // then fold the whole statement's effect
			case *ast.ForStmt:
				save := copyHeld(held)
				scan(s.Body.List)
				held = save
				classify(s)
			case *ast.RangeStmt:
				save := copyHeld(held)
				scan(s.Body.List)
				held = save
				classify(s)
			case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				save := copyHeld(held)
				ast.Inspect(s, func(n ast.Node) bool {
					switch cc := n.(type) {
					case *ast.CaseClause:
						held = copyHeld(save)
						scan(cc.Body)
						return false
					case *ast.CommClause:
						held = copyHeld(save)
						scan(cc.Body)
						return false
					}
					return true
				})
				held = save
				classify(s)
			default:
				classify(s)
			}
		}
	}
	scan(fd.Body.List)

	// Ordering: constant-index acquisitions of one base must ascend
	// unless the earlier lock was released in between, and sweeps of a
	// lock slice must not run descending.
	heldIdx := map[string][]struct {
		idx int64
		pos token.Pos
	}{}
	for _, lc := range calls {
		if lc.base == "" {
			continue
		}
		v, ok := constIndex(p, lc.index)
		if !ok {
			continue
		}
		if !lc.acquire {
			hs := heldIdx[lc.base]
			for i := range hs {
				if hs[i].idx == v {
					heldIdx[lc.base] = append(hs[:i], hs[i+1:]...)
					break
				}
			}
			continue
		}
		for _, h := range heldIdx[lc.base] {
			if v < h.idx {
				out = append(out, Finding{
					Pos:  p.prog.Position(lc.pos),
					Rule: "lockorder",
					Message: fmt.Sprintf("%s[%d] locked while %s[%d] (at %s) is held: indexed locks must be acquired in ascending order",
						lc.base, v, lc.base, h.idx, trimPos(p.prog.Position(h.pos))),
				})
			}
		}
		heldIdx[lc.base] = append(heldIdx[lc.base], struct {
			idx int64
			pos token.Pos
		}{v, lc.pos})
	}

	// Descending sweeps: for i := hi; ...; i-- { base[i].Lock() }.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Post == nil {
			return true
		}
		dec, ok := fs.Post.(*ast.IncDecStmt)
		if !ok || dec.Tok != token.DEC {
			return true
		}
		loopVar, ok := dec.X.(*ast.Ident)
		if !ok {
			return true
		}
		ast.Inspect(fs.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			lc, ok := p.mutexCall(call, false)
			if !ok || !lc.acquire || lc.base == "" {
				return true
			}
			if ix, ok := ast.Unparen(lc.index).(*ast.Ident); ok && ix.Name == loopVar.Name {
				out = append(out, Finding{
					Pos:  p.prog.Position(call.Pos()),
					Rule: "lockorder",
					Message: fmt.Sprintf("%s[%s] locked inside a descending loop: sweep lock slices in ascending index order",
						lc.base, loopVar.Name),
				})
			}
			return true
		})
		return true
	})
	return out
}

// pair identifies one held lock: receiver key plus read/write kind.
type pair struct {
	key  string
	read bool
}

func copyHeld(m map[pair]token.Pos) map[pair]token.Pos {
	out := make(map[pair]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// constIndex evaluates a constant integer index expression.
func constIndex(p *Pkg, e ast.Expr) (int64, bool) {
	if e == nil {
		return 0, false
	}
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
