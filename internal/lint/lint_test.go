package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// expectation is one // want: annotation in a fixture source file.
// The marker's line (or, for want-prev, the line above) must carry a
// finding whose message contains the substring.
type expectation struct {
	file    string // absolute path
	line    int
	substr  string
	matched bool
}

// collectWants scans every .go file under dir for want annotations.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if at := strings.Index(line, "// want-prev:"); at >= 0 {
				wants = append(wants, &expectation{file: abs, line: i, // i is 0-based: line above
					substr: strings.TrimSpace(line[at+len("// want-prev:"):])})
			} else if at := strings.Index(line, "// want:"); at >= 0 {
				wants = append(wants, &expectation{file: abs, line: i + 1,
					substr: strings.TrimSpace(line[at+len("// want:"):])})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("collecting wants under %s: %v", dir, err)
	}
	return wants
}

// runFixture analyzes testdata/src/<fixture> with the named analyzers
// and requires an exact two-way match between findings and want
// annotations.
func runFixture(t *testing.T, fixture string, rules ...string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	var as []*Analyzer
	for _, a := range Analyzers() {
		for _, r := range rules {
			if a.Name == r {
				as = append(as, a)
			}
		}
	}
	if len(as) != len(rules) {
		t.Fatalf("unknown rule in %v", rules)
	}
	findings, err := AnalyzeWith(as, dir, "./...")
	if err != nil {
		t.Fatalf("analyzing %s: %v", dir, err)
	}
	wants := collectWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want annotations", fixture)
	}
	for _, f := range findings {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == filepath.Clean(f.Pos.Filename) &&
				w.line == f.Pos.Line && strings.Contains(f.Message, w.substr) {
				w.matched, found = true, true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing finding at %s:%d (want message containing %q)",
				w.file, w.line, w.substr)
		}
	}
}

func TestAtomicMixFixture(t *testing.T)    { runFixture(t, "atomicmix", "atomicmix") }
func TestLockOrderFixture(t *testing.T)    { runFixture(t, "lockorder", "lockorder") }
func TestWireSentinelFixture(t *testing.T) { runFixture(t, "wiresentinel", "wiresentinel") }
func TestDeterminismFixture(t *testing.T)  { runFixture(t, "determinism", "determinism") }

// TestDeterminismScopeLoss: deleting a scoped loadgen file without
// moving its scope marker is itself a finding.
func TestDeterminismScopeLoss(t *testing.T) { runFixture(t, "determinism-missing", "determinism") }

func TestTelemetryLabelFixture(t *testing.T) { runFixture(t, "telemetrylabel", "telemetrylabel") }

// TestAllowDirectives proves each directive scope suppresses exactly
// its documented span, a wrong-rule directive suppresses nothing, and
// a reasonless directive is an unsuppressible finding of its own.
func TestAllowDirectives(t *testing.T) { runFixture(t, "allow", "determinism") }

// TestSelfRunClean is the gate the committed tree must hold: the full
// suite over the livetm module itself reports nothing. Violations are
// either fixed or carry an //lint:allow with a written reason.
func TestSelfRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("self-run type-checks the whole module")
	}
	findings, err := Analyze("../..", "./...")
	if err != nil {
		t.Fatalf("self-run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("self-run finding: %s", f)
	}
}

// TestAnalyzerCatalog pins the suite's rule names: doc.go, the CLI,
// and the allow directives all refer to them.
func TestAnalyzerCatalog(t *testing.T) {
	want := []string{"atomicmix", "lockorder", "wiresentinel", "determinism", "telemetrylabel"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q needs a doc line and a Run", a.Name)
		}
	}
}
