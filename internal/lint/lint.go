package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic: a rule violation at a position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Message)
}

// Analyzer is one rule: a name, a one-line summary, and a pass over
// the whole type-checked program (several rules are inherently
// cross-package — a sentinel table in one package must agree with a
// declaration in another).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program) []Finding
}

// Analyzers returns the full suite in catalog order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicMix(),
		LockOrder(),
		WireSentinel(),
		Determinism(),
		TelemetryLabel(),
	}
}

// Analyze loads the packages matched by patterns under dir and runs
// every analyzer in the suite. Returned findings have allow
// directives already applied; directive misuse (an allow without a
// reason) surfaces as rule "directive" and is never suppressible.
func Analyze(dir string, patterns ...string) ([]Finding, error) {
	return AnalyzeWith(Analyzers(), dir, patterns...)
}

// AnalyzeWith runs a chosen analyzer subset (the fixture harness
// exercises one rule at a time).
func AnalyzeWith(as []*Analyzer, dir string, patterns ...string) ([]Finding, error) {
	prog, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, a := range as {
		for _, f := range a.Run(prog) {
			if !prog.allowed(a.Name, f.Pos) {
				out = append(out, f)
			}
		}
	}
	out = append(out, prog.directiveFindings...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out, nil
}

// directive is one parsed //lint:allow(rule[,rule]) reason comment
// with the line span it suppresses.
type directive struct {
	file      string
	rules     []string
	fromLine  int // suppression span, inclusive
	toLine    int
	wholeFile bool
}

func (d *directive) covers(rule string, pos token.Position) bool {
	if pos.Filename != d.file {
		return false
	}
	if !d.wholeFile && (pos.Line < d.fromLine || pos.Line > d.toLine) {
		return false
	}
	for _, r := range d.rules {
		if r == rule {
			return true
		}
	}
	return false
}

const allowPrefix = "//lint:allow("

// parseDirectives scans a file's comments for allow directives. The
// suppression span depends on where the directive sits:
//
//   - in a function declaration's doc comment: the whole function;
//   - in the file's package doc comment: the whole file;
//   - any other comment (doc of a var/const/type, end-of-line, or
//     standalone): the directive's own line and the line after the
//     comment group, so both `x := y //lint:allow(r) why` and a
//     comment line directly above the flagged line work.
func (p *Pkg) parseDirectives(f *ast.File) ([]*directive, []Finding) {
	var ds []*directive
	var bad []Finding
	fset := p.prog.Fset

	// Function doc comments suppress their whole body.
	funcDoc := map[*ast.CommentGroup]*ast.FuncDecl{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
			funcDoc[fd.Doc] = fd
		}
	}

	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, allowPrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := text[len(allowPrefix):]
			close := strings.Index(rest, ")")
			if close < 0 {
				bad = append(bad, Finding{Pos: pos, Rule: "directive",
					Message: "malformed allow directive: missing ')'"})
				continue
			}
			var rules []string
			for _, r := range strings.Split(rest[:close], ",") {
				if r = strings.TrimSpace(r); r != "" {
					rules = append(rules, r)
				}
			}
			reason := strings.TrimSpace(rest[close+1:])
			if len(rules) == 0 || reason == "" {
				bad = append(bad, Finding{Pos: pos, Rule: "directive",
					Message: "allow directive needs a rule list and a written reason: //lint:allow(rule) reason"})
				continue
			}
			d := &directive{file: pos.Filename, rules: rules}
			switch {
			case funcDoc[cg] != nil:
				fd := funcDoc[cg]
				d.fromLine = fset.Position(fd.Pos()).Line
				d.toLine = fset.Position(fd.End()).Line
			case f.Doc == cg:
				d.wholeFile = true
			default:
				d.fromLine = pos.Line
				d.toLine = fset.Position(cg.End()).Line + 1
			}
			ds = append(ds, d)
		}
	}
	return ds, bad
}
