package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// Determinism statically enforces the repo's pure-function contracts:
// the loadgen plan/arrival compile path (Plan.Encode/Digest is the
// runtime witness that a schedule is a pure function of (scenario,
// seed)) and the deterministic sim scheduler. In scoped files the
// rule flags:
//
//   - wall-clock reads: time.Now, time.Since, time.Until, and the
//     timer constructors that embed one (time.After, time.Tick);
//   - the global math/rand (and math/rand/v2) generators — seeded
//     local sources (rand.New(rand.NewSource(seed)) or the repo's own
//     splitmix64) are fine, the process-global stream is not;
//   - iteration over a map: Go randomizes the order, so any map range
//     on the compile path can leak schedule-order nondeterminism into
//     an encoder or hasher. Collect and sort the keys instead.
//
// Scope: every file of internal/sim, the loadgen files that compile
// plans (arrival.go, scenario.go), and any file carrying a
// //lint:deterministic marker comment. If the loadgen package exists
// but its scoped files vanish in a refactor, that is a finding too —
// renames must not silently drop coverage.
func Determinism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "plan-compile and sim files must not read clocks, global rand, or map order",
		Run:  runDeterminism,
	}
}

const (
	simPathSuffix     = "internal/sim"
	loadgenPathSuffix = "internal/loadgen"
	deterministicMark = "//lint:deterministic"
)

// loadgenScopedFiles are the plan-compile path inside the loadgen
// package.
var loadgenScopedFiles = []string{"arrival.go", "scenario.go"}

// globalRandFns are the package-level math/rand functions backed by
// the process-global generator.
var globalRandFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	"N": true, "IntN": true, "Int32N": true, "Int64N": true, "UintN": true,
	"Uint32N": true, "Uint64N": true, // rand/v2 spellings
}

// clockFns are the wall-clock reads in package time.
var clockFns = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "Tick": true,
}

func runDeterminism(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range prog.Pkgs {
		p := pkg
		simScoped := pathHasSuffix(p.Path, simPathSuffix)
		loadgenPkg := pathHasSuffix(p.Path, loadgenPathSuffix)
		seen := map[string]bool{}
		for _, f := range p.Files {
			base := filepath.Base(prog.Position(f.Pos()).Filename)
			seen[base] = true
			scoped := simScoped || hasMarker(f)
			if loadgenPkg {
				for _, want := range loadgenScopedFiles {
					if base == want {
						scoped = true
					}
				}
			}
			if !scoped {
				continue
			}
			out = append(out, p.determinismFile(f)...)
		}
		if loadgenPkg {
			for _, want := range loadgenScopedFiles {
				if !seen[want] {
					out = append(out, Finding{
						Pos:  prog.Position(p.Files[0].Pos()),
						Rule: "determinism",
						Message: fmt.Sprintf("loadgen plan-compile file %s is gone: move its determinism scope (a //lint:deterministic marker on the successor) before deleting it",
							want),
					})
				}
			}
		}
	}
	return out
}

func hasMarker(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimSpace(c.Text), deterministicMark) {
				return true
			}
		}
	}
	return false
}

func (p *Pkg) determinismFile(f *ast.File) []Finding {
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := p.calleeFunc(n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if clockFns[fn.Name()] {
					out = append(out, Finding{
						Pos:  p.prog.Position(n.Pos()),
						Rule: "determinism",
						Message: fmt.Sprintf("time.%s reads the wall clock in a deterministic-scope file: plans and sim schedules must be pure functions of their seed",
							fn.Name()),
					})
				}
			case "math/rand", "math/rand/v2":
				if globalRandFns[fn.Name()] {
					out = append(out, Finding{
						Pos:  p.prog.Position(n.Pos()),
						Rule: "determinism",
						Message: fmt.Sprintf("%s.%s uses the process-global generator in a deterministic-scope file: thread a seeded source instead",
							fn.Pkg().Path(), fn.Name()),
					})
				}
			}
		case *ast.RangeStmt:
			tv, ok := p.Info.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				out = append(out, Finding{
					Pos:     p.prog.Position(n.Pos()),
					Rule:    "determinism",
					Message: "map iteration order is randomized: in a deterministic-scope file, range over sorted keys (or justify with //lint:allow(determinism))",
				})
			}
		}
		return true
	})
	return out
}
