package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// TelemetryLabel flags telemetry label values that may be unbounded.
// Every distinct label value materializes a series in the registry
// for the life of the process, so a label fed from client-supplied
// input is a memory leak an attacker controls — exactly the class of
// bug behind the admission-state leak PR 9 had to fix at runtime.
//
// A label value passed to Registry.Counter/Gauge/Histogram is
// accepted when it provably derives from a finite source:
//
//   - string literals and named constants;
//   - strconv formatting of numeric/bool values (worker and shard
//     indices are bounded by configuration);
//   - fmt.Sprintf over a literal format whose string arguments are
//     themselves finite;
//   - concatenations of the above;
//   - a local variable assigned exactly once from a finite source;
//   - a string parameter that every call site in the program feeds a
//     finite value (traced through up to three call layers).
//
// Anything else — struct fields, map lookups, request data, function
// results — is flagged. Sites that bound their label space some other
// way (the admission layer's idle eviction, the engine registry's
// fixed algorithm list) document that with //lint:allow(telemetrylabel).
func TelemetryLabel() *Analyzer {
	return &Analyzer{
		Name: "telemetrylabel",
		Doc:  "telemetry label values must derive from finite sources",
		Run:  runTelemetryLabel,
	}
}

const telemetryPathSuffix = "internal/telemetry"

// registryMethods create labeled series: (name, help string, kvs ...string).
var registryMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func runTelemetryLabel(prog *Program) []Finding {
	calls := buildCallIndex(prog)
	var out []Finding
	for _, pkg := range prog.Pkgs {
		p := pkg
		if pathHasSuffix(p.Path, telemetryPathSuffix) {
			continue // the registry implementation handles raw kvs by design
		}
		p.walkStack(func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] {
				return true
			}
			f, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := f.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			if !namedType(sig.Recv().Type(), mustPath(f), "Registry") || !pathHasSuffix(mustPath(f), telemetryPathSuffix) {
				return true
			}
			if call.Ellipsis.IsValid() {
				out = append(out, Finding{
					Pos:  p.prog.Position(call.Pos()),
					Rule: "telemetrylabel",
					Message: fmt.Sprintf("Registry.%s called with spread labels (kvs...): the label values cannot be proven finite",
						sel.Sel.Name),
				})
				return true
			}
			// Args: name, help, k1, v1, k2, v2, ... — values are the
			// odd positions of the kvs tail.
			fn := funcFor(stack)
			for i := 3; i < len(call.Args); i += 2 {
				cl := classifier{p: p, calls: calls, enclosing: fn}
				if reason := cl.finite(call.Args[i], 0); reason != "" {
					key := "?"
					if kv, ok := p.Info.Types[call.Args[i-1]]; ok && kv.Value != nil {
						key = kv.Value.String()
					}
					out = append(out, Finding{
						Pos:  p.prog.Position(call.Args[i].Pos()),
						Rule: "telemetrylabel",
						Message: fmt.Sprintf("label %s value may be unbounded (%s): every distinct value is a series kept for the process lifetime — derive labels from a finite set or bound them and //lint:allow(telemetrylabel) with the mechanism",
							key, reason),
					})
				}
			}
			return true
		})
	}
	return out
}

func mustPath(f *types.Func) string {
	if f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// classifier decides whether a string expression provably comes from
// a finite value space.
type classifier struct {
	p         *Pkg
	calls     *callIndex
	enclosing ast.Node
	visiting  map[*types.Var]bool
}

const maxTraceDepth = 3

// finite returns "" when e is provably finite, else a short reason.
func (c *classifier) finite(e ast.Expr, depth int) string {
	if depth > maxTraceDepth {
		return "value flows through too many call layers to trace"
	}
	e = ast.Unparen(e)
	if tv, ok := c.p.Info.Types[e]; ok {
		if tv.Value != nil {
			return "" // any constant
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString == 0 {
			return "" // numeric/bool operands of Sprintf etc. are finite enough
		}
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		if r := c.finite(e.X, depth); r != "" {
			return r
		}
		return c.finite(e.Y, depth)
	case *ast.CallExpr:
		return c.finiteCall(e, depth)
	case *ast.Ident:
		obj := c.p.Info.Uses[e]
		if obj == nil {
			obj = c.p.Info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return fmt.Sprintf("%s is not a traceable variable", e.Name)
		}
		return c.finiteVar(v, e, depth)
	case *ast.SelectorExpr:
		return "struct fields and package variables are not provably finite"
	case *ast.IndexExpr:
		return "indexed values (maps, slices) are not provably finite"
	default:
		return fmt.Sprintf("expression kind %T is not provably finite", e)
	}
}

// finiteCall accepts the sanctioned formatting helpers.
func (c *classifier) finiteCall(call *ast.CallExpr, depth int) string {
	fn := c.p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return "call result is not provably finite"
	}
	switch fn.Pkg().Path() {
	case "strconv":
		switch fn.Name() {
		case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "FormatBool", "Quote":
			return ""
		}
	case "fmt":
		if fn.Name() == "Sprintf" && len(call.Args) > 0 {
			if tv, ok := c.p.Info.Types[call.Args[0]]; !ok || tv.Value == nil {
				return "Sprintf format is not a constant"
			}
			for _, a := range call.Args[1:] {
				if r := c.finite(a, depth); r != "" {
					return r
				}
			}
			return ""
		}
	}
	return fmt.Sprintf("result of %s.%s is not provably finite", fn.Pkg().Name(), fn.Name())
}

// finiteVar traces a variable: single-assigned locals chase their
// right-hand side; parameters chase every call site of the enclosing
// function.
func (c *classifier) finiteVar(v *types.Var, use *ast.Ident, depth int) string {
	if c.visiting == nil {
		c.visiting = map[*types.Var]bool{}
	}
	if c.visiting[v] {
		return fmt.Sprintf("%s is assigned from itself", v.Name())
	}
	c.visiting[v] = true
	defer delete(c.visiting, v)

	// A parameter of the enclosing function?
	if fobj, param := c.paramOf(v); fobj != nil {
		sites := c.calls.calls[fobj]
		if len(sites) == 0 {
			return fmt.Sprintf("parameter %s has no visible call sites to prove finite", v.Name())
		}
		for _, site := range sites {
			if param >= len(site.call.Args) || site.call.Ellipsis.IsValid() {
				return fmt.Sprintf("a call to %s spreads or omits the %s argument", fobj.Name(), v.Name())
			}
			sub := classifier{p: site.pkg, calls: c.calls, enclosing: nil, visiting: c.visiting}
			sub.enclosing = enclosingFuncOf(site.pkg, site.call)
			if r := sub.finite(site.call.Args[param], depth+1); r != "" {
				return fmt.Sprintf("parameter %s: call at %s passes a value that %s", v.Name(),
					trimPos(c.p.prog.Position(site.call.Pos())), r)
			}
		}
		return ""
	}

	// A local: find its assignments inside the enclosing function.
	rhs, n := c.assignments(v)
	switch {
	case n == 0:
		return fmt.Sprintf("%s has no visible initializer", v.Name())
	case n > 1:
		return fmt.Sprintf("%s is assigned more than once", v.Name())
	case rhs == nil:
		return fmt.Sprintf("%s is not assigned a traceable expression", v.Name())
	}
	return c.finite(rhs, depth)
}

// paramOf reports whether v is a parameter of a program function,
// returning the function object and the parameter index.
func (c *classifier) paramOf(v *types.Var) (*types.Func, int) {
	for _, pkg := range c.p.prog.Pkgs {
		for ident, obj := range pkg.Info.Defs {
			f, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			sig := f.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len(); i++ {
				if sig.Params().At(i) == v {
					_ = ident
					return f, i
				}
			}
		}
	}
	return nil, 0
}

// assignments finds v's initializer/assignments inside the enclosing
// function, returning the single RHS when there is exactly one.
func (c *classifier) assignments(v *types.Var) (ast.Expr, int) {
	if c.enclosing == nil {
		return nil, 0
	}
	var rhs ast.Expr
	n := 0
	ast.Inspect(c.enclosing, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.p.Info.Defs[id]
				if obj == nil {
					obj = c.p.Info.Uses[id]
				}
				if obj != v {
					continue
				}
				n++
				if len(node.Rhs) == len(node.Lhs) {
					rhs = node.Rhs[i]
				} else {
					rhs = nil // multi-value unpacking: untraceable
				}
			}
		case *ast.ValueSpec:
			for i, id := range node.Names {
				if c.p.Info.Defs[id] != v {
					continue
				}
				n++
				if i < len(node.Values) {
					rhs = node.Values[i]
				}
			}
		case *ast.RangeStmt:
			for _, lhs := range []ast.Expr{node.Key, node.Value} {
				if id, ok := lhs.(*ast.Ident); ok && (c.p.Info.Defs[id] == v || c.p.Info.Uses[id] == v) {
					n += 2 // range vars take many values: untraceable
				}
			}
		}
		return true
	})
	if n != 1 {
		return nil, n
	}
	return rhs, 1
}

// enclosingFuncOf finds the function declaration containing a node by
// position.
func enclosingFuncOf(p *Pkg, n ast.Node) ast.Node {
	for _, f := range p.Files {
		if n.Pos() < f.Pos() || n.Pos() > f.End() {
			continue
		}
		var found ast.Node
		ast.Inspect(f, func(m ast.Node) bool {
			if m == nil || found != nil {
				return false
			}
			if fd, ok := m.(*ast.FuncDecl); ok {
				if n.Pos() >= fd.Pos() && n.Pos() <= fd.End() {
					found = fd
				}
				return found == nil
			}
			return true
		})
		if found != nil {
			return found
		}
	}
	return nil
}
