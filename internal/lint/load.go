package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Program is the fully type-checked set of module packages plus the
// machinery the analyzers share. Stdlib (and any other out-of-module)
// dependencies are imported from compiler export data; only module
// packages carry syntax and full type info.
type Program struct {
	Fset   *token.FileSet
	Pkgs   []*Pkg // dependency order: imports before importers
	ByPath map[string]*Pkg

	directives        []*directive
	directiveFindings []Finding
}

// Pkg is one module package under analysis.
type Pkg struct {
	prog  *Program
	Path  string
	Dir   string
	Files []*ast.File // parsed with comments, non-test sources only
	Types *types.Package
	Info  *types.Info
}

// Lookup finds a module package by import path, nil when it is not
// part of the analyzed set.
func (p *Program) Lookup(path string) *Pkg { return p.ByPath[path] }

// Position resolves a token.Pos against the shared FileSet.
func (p *Program) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

func (p *Program) allowed(rule string, pos token.Position) bool {
	for _, d := range p.directives {
		if d.covers(rule, pos) {
			return true
		}
	}
	return false
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Imports    []string
}

// Load builds the package graph for patterns (relative to dir) with
// `go list -deps -export -json`, parses every in-module package, and
// type-checks them in dependency order. Out-of-module imports resolve
// through the build cache's export data, so the loader needs nothing
// beyond the go toolchain and the standard library.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,Standard,GoFiles,Imports"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var listed []*listedPkg
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		listed = append(listed, &lp)
	}

	prog := &Program{Fset: token.NewFileSet(), ByPath: map[string]*Pkg{}}

	// Module packages (everything go list did not mark Standard) get
	// parsed; stdlib resolves from export data via the gc importer.
	local := map[string]*listedPkg{}
	for _, lp := range listed {
		if !lp.Standard && lp.Name != "" {
			local[lp.ImportPath] = lp
		}
	}

	checked := map[string]*types.Package{}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	gc := importer.ForCompiler(prog.Fset, "gc", lookup)
	imp := &progImporter{checked: checked, fallback: gc}

	// Dependency-order walk: type-check a package only after its
	// in-module imports.
	var visit func(lp *listedPkg) error
	visiting := map[string]bool{}
	for _, lp := range listed {
		if local[lp.ImportPath] == nil {
			continue
		}
		if err := func() error {
			visit = func(lp *listedPkg) error {
				if checked[lp.ImportPath] != nil {
					return nil
				}
				if visiting[lp.ImportPath] {
					return fmt.Errorf("lint: import cycle through %s", lp.ImportPath)
				}
				visiting[lp.ImportPath] = true
				defer func() { visiting[lp.ImportPath] = false }()
				for _, dep := range lp.Imports {
					if d := local[dep]; d != nil {
						if err := visit(d); err != nil {
							return err
						}
					}
				}
				return prog.check(lp, imp)
			}
			return visit(lp)
		}(); err != nil {
			return nil, err
		}
	}

	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ds, bad := pkg.parseDirectives(f)
			prog.directives = append(prog.directives, ds...)
			prog.directiveFindings = append(prog.directiveFindings, bad...)
		}
	}
	return prog, nil
}

// check parses and type-checks one module package, registering it for
// later importers.
func (p *Program) check(lp *listedPkg, imp types.Importer) error {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(p.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := types.Config{Importer: imp}
	tpkg, err := cfg.Check(lp.ImportPath, p.Fset, files, info)
	if err != nil {
		return fmt.Errorf("lint: type-check %s: %v", lp.ImportPath, err)
	}
	pkg := &Pkg{prog: p, Path: lp.ImportPath, Dir: lp.Dir,
		Files: files, Types: tpkg, Info: info}
	p.Pkgs = append(p.Pkgs, pkg)
	p.ByPath[lp.ImportPath] = pkg
	if ci, ok := imp.(*progImporter); ok {
		ci.checked[lp.ImportPath] = tpkg
	}
	return nil
}

// progImporter serves already-checked module packages from memory and
// everything else (the standard library) from export data.
type progImporter struct {
	checked  map[string]*types.Package
	fallback types.Importer
}

func (i *progImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg := i.checked[path]; pkg != nil {
		return pkg, nil
	}
	return i.fallback.Import(path)
}

func (i *progImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return i.Import(path)
}
