// Package telemetry replicates the registry surface the rule keys on.
// The registry implementation itself is exempt: it handles raw kvs by
// design.
package telemetry

// Registry resolves labeled instrument series.
type Registry struct{}

// Counter is a monotone series.
type Counter struct{}

// Gauge is a point-in-time series.
type Gauge struct{}

// Histogram is a distribution series.
type Histogram struct{}

// Counter resolves a counter series for the label pairs.
func (r *Registry) Counter(name, help string, kvs ...string) *Counter { return &Counter{} }

// Gauge resolves a gauge series for the label pairs.
func (r *Registry) Gauge(name, help string, kvs ...string) *Gauge { return &Gauge{} }

// Histogram resolves a histogram series for the label pairs.
func (r *Registry) Histogram(name, help string, kvs ...string) *Histogram { return &Histogram{} }
