// Package fixture exercises the telemetrylabel rule: label values
// must provably derive from finite sources.
package fixture

import (
	"fmt"
	"strconv"

	"fixture/internal/telemetry"
)

// Finite sources: literals, constants, strconv over numerics,
// const-format Sprintf, concatenation, single-assigned locals.
func finiteSources(reg *telemetry.Registry, shard int, hot bool) {
	const mode = "steady"
	reg.Counter("evts_total", "events", "lane", "shared")
	reg.Gauge("depth", "queue depth", "mode", mode)
	reg.Counter("cuts_total", "cuts", "shard", strconv.Itoa(shard))
	reg.Gauge("hot", "hot flag", "hot", strconv.FormatBool(hot))
	reg.Histogram("lat_ns", "latency", "cell", fmt.Sprintf("r%dc%d", shard, shard))
	reg.Counter("mix_total", "mix", "kind", "w"+strconv.Itoa(shard))
	lane := "pinned"
	reg.Gauge("lanes", "lanes", "lane", lane)
}

// Unbounded sources: map lookups, struct fields, reassigned locals,
// spread label lists.
type req struct{ client string }

func unboundedSources(reg *telemetry.Registry, r req, m map[string]string, kvs []string) {
	reg.Counter("reqs_total", "requests", "client", r.client) // want: may be unbounded
	reg.Gauge("inflight", "in flight", "client", m["client"]) // want: may be unbounded
	lane := "shared"
	if len(m) > 0 {
		lane = m["lane"]
	}
	reg.Counter("lanes_total", "lanes", "lane", lane) // want: may be unbounded
	reg.Counter("spread_total", "spread", kvs...)     // want: spread labels
}

// metricsFor's algo parameter is finite: every call site passes a
// constant, which the call-graph trace proves.
func metricsFor(reg *telemetry.Registry, algo string) *telemetry.Counter {
	return reg.Counter("tx_total", "transactions", "algo", algo)
}

func useTL2(reg *telemetry.Registry) *telemetry.Counter { return metricsFor(reg, "tl2") }

func useNOrec(reg *telemetry.Registry) *telemetry.Counter { return metricsFor(reg, "norec") }

// accountFor's client parameter is fed by a parameter of its own
// caller with no further call sites: unprovable, flagged here at the
// registry call.
func accountFor(reg *telemetry.Registry, client string) *telemetry.Gauge {
	return reg.Gauge("slots", "slots", "client", client) // want: may be unbounded
}

// Admit is exported, so its client argument has no visible bound.
func Admit(reg *telemetry.Registry, name string) *telemetry.Gauge {
	return accountFor(reg, name)
}
