// Package server carries the fixture's wire code tables.
package server

import (
	"errors"

	"fixture/internal/engine"
)

// CodeOf maps engine sentinels to wire codes.
func CodeOf(err error) string {
	switch {
	case errors.Is(err, engine.ErrOne):
		return "one"
	case errors.Is(err, engine.ErrThree):
		return "three"
	case errors.Is(err, engine.ErrFive):
		return "five"
	}
	return "internal"
}

// SentinelOf maps wire codes back to engine sentinels.
func SentinelOf(code string) error {
	switch code {
	case "one":
		return engine.ErrOne
	case "four":
		return engine.ErrFour
	case "5":
		return engine.ErrFive
	}
	return nil
}
