// Package engine exercises the wiresentinel rule's sentinel side:
// exported Err* vars must round-trip through the server tables.
package engine

import "errors"

// ErrOne is fully wired: CodeOf and SentinelOf agree.
var ErrOne = errors.New("engine: one")

// ErrTwo appears in neither table.
var ErrTwo = errors.New("engine: two") // want: has no wire code

// ErrThree encodes but the code never decodes back.
var ErrThree = errors.New("engine: three") // want: never decodes that code back

// ErrFour decodes but CodeOf never encodes it.
var ErrFour = errors.New("engine: four") // want: the table is one-way

// ErrFive encodes to "five" but SentinelOf decodes it from "5" only.
var ErrFive = errors.New("engine: five") // want: tables disagree

// errHidden is unexported: out of scope.
var errHidden = errors.New("engine: hidden")

// ErrCode is exported and Err-prefixed but not an error: out of scope.
var ErrCode = "not-an-error"

// Used keeps the unexported sentinel referenced.
func Used() error { return errHidden }
