// Package client deliberately never calls server.SentinelOf, so wire
// errors cannot unwrap to engine sentinels.
package client // want: never calls server.SentinelOf

import "fixture/internal/server"

// Code encodes but nothing ever decodes.
func Code(err error) string {
	return server.CodeOf(err)
}
