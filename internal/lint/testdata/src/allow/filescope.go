// This file's package-doc directive suppresses the whole file.
//
//lint:allow(determinism) fixture: whole-file suppression
package fixture

//lint:deterministic

import "time"

// FileScopeA is covered by the package-doc directive.
func FileScopeA() int64 {
	return time.Now().UnixNano()
}

// FileScopeB too, at the other end of the file.
func FileScopeB() int64 {
	return time.Now().UnixNano()
}
