// Reasonless or malformed directives are findings themselves (rule
// "directive") and suppress nothing.
package fixture

//lint:deterministic

import "time"

// NoReason's directive has no written reason: rejected, so the
// violation below still fires.
func NoReason() int64 {
	//lint:allow(determinism)
	// want-prev: needs a rule list and a written reason
	return time.Now().UnixNano() // want: reads the wall clock
}
