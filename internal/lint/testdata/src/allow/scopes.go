// Package fixture exercises the allow-directive scopes. This file is
// in determinism scope via the marker below; each directive form must
// suppress exactly its documented span.
package fixture

//lint:deterministic

import "time"

// FuncScope's doc-comment directive suppresses its whole body.
//
//lint:allow(determinism) fixture: function-scope suppression
func FuncScope() int64 {
	return time.Now().UnixNano()
}

// LineScope's directive sits directly above the flagged line.
func LineScope() int64 {
	//lint:allow(determinism) fixture: line-scope suppression
	return time.Now().UnixNano()
}

// MultiRule lists several rules in one directive.
//
//lint:allow(determinism,lockorder) fixture: multi-rule suppression
func MultiRule() int64 {
	return time.Now().UnixNano()
}

// WrongRule's directive names a different rule: no suppression.
func WrongRule() int64 {
	//lint:allow(atomicmix) fixture: wrong rule must not suppress
	return time.Now().UnixNano() // want: reads the wall clock
}

// OutOfSpan: a line-scope directive does not reach later lines.
func OutOfSpan() int64 {
	//lint:allow(determinism) fixture: covers only the next line
	a := time.Now().UnixNano()
	b := time.Now().UnixNano() // want: reads the wall clock
	return a + b
}

// Unsuppressed has no directive at all.
func Unsuppressed() int64 {
	return time.Now().UnixNano() // want: reads the wall clock
}
