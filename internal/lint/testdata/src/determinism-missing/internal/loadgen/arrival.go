// Package loadgen lost its scenario.go in a refactor: the rule flags
// the dropped determinism coverage rather than silently shrinking.
package loadgen // want: scenario.go is gone

// Plan is pure.
func Plan(seed uint64) uint64 {
	return seed * 0x9e3779b97f4a7c15
}
