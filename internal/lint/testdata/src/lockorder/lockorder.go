// Package fixture exercises the lockorder rule: lock/unlock pairing
// on all paths and ascending acquisition order over lock slices.
package fixture

import "sync"

var mu sync.Mutex

var ready bool

type shards struct {
	mu []sync.RWMutex
}

// leak locks and never unlocks anywhere in the function.
func leak() {
	mu.Lock() // want: no matching unlock
}

// earlyReturn unlocks on the fallthrough path but returns with the
// lock held on the branch.
func earlyReturn() int {
	mu.Lock()
	if ready {
		return 1 // want: is held with no deferred unlock
	}
	mu.Unlock()
	return 0
}

// deferGood is the canonical safe shape.
func deferGood() int {
	mu.Lock()
	defer mu.Unlock()
	if ready {
		return 1
	}
	return 0
}

// branchGood unlocks on every path explicitly.
func branchGood() int {
	mu.Lock()
	if ready {
		mu.Unlock()
		return 1
	}
	mu.Unlock()
	return 0
}

// outOfOrder acquires constant indices descending.
func outOfOrder(s *shards) {
	s.mu[1].Lock()
	s.mu[0].Lock() // want: ascending order
	s.mu[0].Unlock()
	s.mu[1].Unlock()
}

// releaseBetween reacquires a lower index only after releasing the
// higher one: legal.
func releaseBetween(s *shards) {
	s.mu[1].Lock()
	s.mu[1].Unlock()
	s.mu[0].Lock()
	s.mu[0].Unlock()
}

// descendingSweep locks a slice in a descending loop.
func descendingSweep(s *shards) {
	for i := len(s.mu) - 1; i >= 0; i-- {
		s.mu[i].Lock() // want: descending loop
	}
	for i := range s.mu {
		s.mu[i].Unlock()
	}
}

// ascendingSweep is the repo's degraded all-shard cut protocol.
func ascendingSweep(s *shards) {
	for i := range s.mu {
		s.mu[i].Lock()
	}
	for i := range s.mu {
		s.mu[i].Unlock()
	}
}
