// Package fixture hosts a file opted into determinism scope by the
// marker comment below.
package fixture

//lint:deterministic

import "math/rand"

// Jitter uses the global generator in a marked file.
func Jitter() float64 {
	return rand.Float64() // want: process-global generator
}
