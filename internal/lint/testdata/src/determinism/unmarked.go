package fixture

import "math/rand"

// Unscoped is not in any determinism scope: the global generator is
// allowed here.
func Unscoped() float64 {
	return rand.Float64()
}
