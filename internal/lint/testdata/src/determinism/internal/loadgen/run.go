package loadgen

import "time"

// Elapsed is outside the scoped files: wall-clock reads are the
// runtime driver's job, not the plan compiler's.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
