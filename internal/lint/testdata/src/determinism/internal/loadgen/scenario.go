package loadgen

// Mix is pure: scenario.go stays clean.
func Mix(weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	return total
}
