// Package loadgen replicates the plan-compile path: arrival.go and
// scenario.go are in determinism scope by name.
package loadgen

import "time"

// At leaks the wall clock into a plan.
func At() int64 {
	return time.Now().UnixNano() // want: reads the wall clock
}
