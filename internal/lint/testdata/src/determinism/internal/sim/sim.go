// Package sim is in determinism scope by path: every file of an
// internal/sim package must be a pure function of its seed.
package sim

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want: reads the wall clock
}

// Roll uses the process-global generator.
func Roll() int {
	return rand.Intn(6) // want: process-global generator
}

// RollSeeded threads a seeded source: fine.
func RollSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Sum ranges over a map: iteration order is randomized.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want: map iteration order
		total += v
	}
	return total
}

// SumSlice ranges over a slice: order is positional, fine.
func SumSlice(vs []int) int {
	total := 0
	for _, v := range vs {
		total += v
	}
	return total
}
