// Package fixture exercises the atomicmix rule: a location touched
// via sync/atomic anywhere must be accessed atomically everywhere.
package fixture

import "sync/atomic"

type counter struct {
	n    int64
	cold int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) loadGood() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) loadBad() int64 {
	return c.n // want: plain access can race
}

func (c *counter) storeBad() {
	c.n = 0 // want: plain access can race
}

// cold is never touched atomically, so plain access is fine.
func (c *counter) coldGood() int64 {
	c.cold++
	return c.cold
}

// Keyed composite-literal initialization is the sanctioned plain
// mention: the value is not shared yet.
func newCounter() *counter {
	return &counter{n: 0, cold: 0}
}

var hits int64

func bump() {
	atomic.AddInt64(&hits, 1)
}

func hitsBad() int64 {
	return hits // want: plain access can race
}

func hitsGood() int64 {
	return atomic.LoadInt64(&hits)
}
