// Package lint is livetm's domain-specific static-analysis suite: a
// zero-dependency driver (go list + go/parser + go/types, no
// golang.org/x/tools) running analyzers that prove the repository's
// concurrency and determinism invariants at compile time.
//
// The driver (Load) shells out to `go list -deps -export -json` for
// the package graph and the build cache's export data, parses the
// module's own packages with go/parser, and type-checks them in
// dependency order with go/types, importing dependencies from their
// compiled export files. Analyze runs every registered analyzer over
// the resulting whole-program view; several rules are inherently
// cross-package (a sentinel declared in internal/engine must agree
// with tables in internal/server and a consumer in internal/client),
// which is why the analyzers receive the full Program rather than one
// package at a time.
//
// # Rule catalog
//
// atomicmix — a memory location accessed through sync/atomic anywhere
// must be accessed atomically everywhere. A plain read or write of a
// field that elsewhere flows into atomic.AddInt64/Load/Store/Swap/CAS
// is a data race waiting for the scheduler to expose it; the fix is
// another atomic access or a typed atomic (sync/atomic.Int64 and
// friends). Composite-literal keyed fields and &x arguments to the
// atomic calls themselves are exempt.
//
// lockorder — every sync.Mutex/RWMutex Lock (and RLock) must be
// paired with an Unlock on all paths out of the function, either
// deferred or on each return; and indexed lock slices (the engine's
// per-shard cutMu pattern) must be acquired in ascending index order,
// including inside loops — a descending sweep over a lock slice is an
// ordering inversion against the ascending convention and deadlocks
// under concurrent sweeps.
//
// wiresentinel — every exported Err* sentinel in internal/engine must
// round-trip the wire: internal/server's CodeOf maps it to a stable
// code, SentinelOf maps that code back to the identical sentinel, and
// internal/client must consume SentinelOf so errors.Is works across
// the wire. One-way tables, missing codes, and disagreeing mappings
// are each distinct findings. Sentinels that never cross the wire
// carry an allow directive saying so.
//
// determinism — the deterministic-by-contract code (all of
// internal/sim; the loadgen plan-compile files arrival.go and
// scenario.go; any file marked //lint:deterministic) must not reach
// time.Now, the process-global math/rand generator, or range over a
// map (iteration order is randomized). These are exactly the paths
// whose byte-identical replay CI asserts; the analyzer also fails if
// a scoped loadgen file disappears, so the scope cannot rot silently.
//
// telemetrylabel — label values passed to telemetry.Registry
// instruments must derive from finite sources (constants, the
// compiled-in engine registry, validated scenario phase lists, …).
// An unbounded label value (request-supplied strings, map lookups,
// reassigned locals) grows a labeled family without bound — the
// admission-state leak class PR 9 fixed. Values are traced through
// single-assignment locals and parameters across call sites up to a
// small depth; anything unresolvable is flagged.
//
// # Suppression
//
// The only suppression mechanism is the allow directive:
//
//	//lint:allow(rule[,rule]) reason
//
// The rule list is one or more analyzer names, comma-separated; the
// reason is mandatory prose on the same line — a directive without a
// reason (or with a malformed rule list) is itself reported under the
// unsuppressible rule name "directive". Scope follows placement: in a
// function's doc comment the directive covers the whole function; in
// the package clause's doc comment it covers the whole file; anywhere
// else it covers the directive's comment group plus the next line.
// Keep directives on a single line — gofmt relocates directive
// comments within doc groups, which would strand a wrapped reason.
//
// A separate marker, //lint:deterministic, carries no rules: it opts
// the containing file into the determinism analyzer's scope.
//
// # Fixtures and self-run
//
// testdata/src/* holds one small module per analyzer plus directive
// fixtures, each annotated with `// want: substring` (finding
// expected on that line) or `// want-prev: substring` (on the line
// above, for lines that cannot carry a trailing comment — e.g. a
// malformed directive). lint_test.go runs each analyzer over its
// fixture and matches findings against annotations both ways, and
// TestSelfRunClean runs the full suite over livetm itself, which must
// be clean. cmd/livetm-lint is the CLI: `livetm-lint ./...` exits 0
// when clean, 1 with findings on stderr, 2 on driver errors; CI runs
// it and also asserts a seeded violation fails it.
package lint
