package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// walkStack traverses every file of pkg, giving the visitor the full
// ancestor stack (stack[len-1] is n's parent). Return false to prune.
func (p *Pkg) walkStack(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			ok := fn(n, stack)
			stack = append(stack, n)
			if !ok {
				// Still ballast the stack: Inspect will deliver the
				// matching nil pop even for pruned subtrees only if we
				// return true, so prune by skipping children manually.
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}

// funcFor returns the innermost enclosing function declaration or
// literal on the stack.
func funcFor(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// calleeFunc resolves the called function object of a call, nil for
// indirect calls, conversions, and built-ins.
func (p *Pkg) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// stdCall reports whether call invokes pkgPath.name (a package-level
// function of a named package, e.g. sync/atomic.AddInt64), returning
// the function object.
func (p *Pkg) stdCall(call *ast.CallExpr, pkgPath string) (*types.Func, bool) {
	f := p.calleeFunc(call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return nil, false
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil, false
	}
	return f, true
}

// namedType reports whether t (after pointer indirection) is the
// named type pkgPath.name.
func namedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// exprKey renders a stable identity string for a lock receiver
// expression: identifiers and field selections verbatim, index
// expressions normalized so s.cutMu[i] and s.cutMu[k] share the key
// "s.cutMu[#]".
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprKey(e.X) + "[#]"
	case *ast.UnaryExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.CallExpr:
		return "call:" + exprKey(e.Fun) + "()"
	default:
		return fmt.Sprintf("expr:%T", e)
	}
}

// callIndex maps every function object to its call sites across the
// whole program — the one-level interprocedural view telemetrylabel
// uses to decide whether a string parameter is fed only finite
// values.
type callIndex struct {
	calls map[*types.Func][]callSite
}

type callSite struct {
	pkg  *Pkg
	call *ast.CallExpr
}

func buildCallIndex(prog *Program) *callIndex {
	ci := &callIndex{calls: map[*types.Func][]callSite{}}
	for _, pkg := range prog.Pkgs {
		p := pkg
		p.walkStack(func(n ast.Node, _ []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if f := p.calleeFunc(call); f != nil {
				ci.calls[f] = append(ci.calls[f], callSite{pkg: p, call: call})
			}
			return true
		})
	}
	return ci
}

// pathHasSuffix matches an import path against a module-relative
// suffix ("internal/engine" matches "livetm/internal/engine").
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
