package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Paths the wiresentinel rule wires together. They are matched as
// module-relative suffixes so the rule works identically on the livetm
// module and on the fixture modules that replicate its layout.
const (
	enginePathSuffix = "internal/engine"
	serverPathSuffix = "internal/server"
	clientPathSuffix = "internal/client"
)

// WireSentinel proves wire round-trip completeness for the engine's
// error sentinels as a build-time fact:
//
//   - every exported package-level `Err*` variable in internal/engine
//     must have a wire code in internal/server's CodeOf table and a
//     reverse mapping in its SentinelOf table;
//   - the two tables must agree (CodeOf maps a sentinel to the code
//     SentinelOf maps back to it, and vice versa);
//   - internal/client must actually consume SentinelOf (its Error
//     unwrapping), otherwise errors.Is against engine sentinels
//     silently stops holding across the wire.
//
// A sentinel that genuinely never crosses the wire (for example one
// consumed by the retry loop before it can escape a submission)
// carries an //lint:allow(wiresentinel) directive at its declaration
// stating why.
func WireSentinel() *Analyzer {
	return &Analyzer{
		Name: "wiresentinel",
		Doc:  "engine Err* sentinels round-trip through the server/client wire code tables",
		Run:  runWireSentinel,
	}
}

func runWireSentinel(prog *Program) []Finding {
	engine := findPkg(prog, enginePathSuffix)
	server := findPkg(prog, serverPathSuffix)
	client := findPkg(prog, clientPathSuffix)
	if engine == nil {
		return nil // nothing to prove in this module
	}

	// The sentinels: exported package-level Err* vars of type error.
	var sentinels []*types.Var
	scope := engine.Types.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Err") {
			continue
		}
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok || !v.Exported() {
			continue
		}
		// Sentinels are typed `error` (the errors.New convention).
		if !types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
			continue
		}
		sentinels = append(sentinels, v)
	}
	if len(sentinels) == 0 {
		return nil
	}
	var out []Finding
	if server == nil {
		out = append(out, Finding{
			Pos:  prog.Position(engine.Files[0].Pos()),
			Rule: "wiresentinel",
			Message: fmt.Sprintf("%s declares %d Err* sentinels but no %s package is in the analyzed set to carry their wire codes",
				engine.Path, len(sentinels), serverPathSuffix),
		})
		return out
	}

	codeOf, codeOfFound := server.sentinelToCode("CodeOf")
	sentinelOf, sentinelOfFound := server.codeToSentinel("SentinelOf")
	if !codeOfFound {
		out = append(out, Finding{
			Pos:     prog.Position(server.Files[0].Pos()),
			Rule:    "wiresentinel",
			Message: "internal/server has no CodeOf function mapping engine sentinels to wire codes",
		})
	}
	if !sentinelOfFound {
		out = append(out, Finding{
			Pos:     prog.Position(server.Files[0].Pos()),
			Rule:    "wiresentinel",
			Message: "internal/server has no SentinelOf function mapping wire codes back to engine sentinels",
		})
	}
	if !codeOfFound || !sentinelOfFound {
		return out
	}

	// Completeness: every sentinel appears in both tables.
	for _, v := range sentinels {
		code, inCodeOf := codeOf[v]
		reverse := ""
		for c, sv := range sentinelOf {
			if sv == v {
				reverse = c
				break
			}
		}
		switch {
		case !inCodeOf && reverse == "":
			out = append(out, Finding{
				Pos:  prog.Position(v.Pos()),
				Rule: "wiresentinel",
				Message: fmt.Sprintf("engine.%s has no wire code: add it to server.CodeOf and server.SentinelOf, or justify why it never crosses the wire",
					v.Name()),
			})
		case !inCodeOf:
			out = append(out, Finding{
				Pos:  prog.Position(v.Pos()),
				Rule: "wiresentinel",
				Message: fmt.Sprintf("engine.%s is decodable (SentinelOf %q) but server.CodeOf never encodes it: the table is one-way",
					v.Name(), reverse),
			})
		case reverse == "":
			out = append(out, Finding{
				Pos:  prog.Position(v.Pos()),
				Rule: "wiresentinel",
				Message: fmt.Sprintf("engine.%s encodes to %q but server.SentinelOf never decodes that code back: errors.Is breaks across the wire",
					v.Name(), code),
			})
		case sentinelOf[code] != v:
			got := "nil"
			if sv := sentinelOf[code]; sv != nil {
				got = sv.Name()
			}
			out = append(out, Finding{
				Pos:  prog.Position(v.Pos()),
				Rule: "wiresentinel",
				Message: fmt.Sprintf("tables disagree: CodeOf(engine.%s) = %q but SentinelOf(%q) = %s",
					v.Name(), code, code, got),
			})
		}
	}

	// The client must consume the reverse table.
	if client != nil {
		uses := false
		for _, obj := range client.Info.Uses {
			if f, ok := obj.(*types.Func); ok && f.Name() == "SentinelOf" &&
				f.Pkg() != nil && f.Pkg().Path() == server.Path {
				uses = true
				break
			}
		}
		if !uses {
			out = append(out, Finding{
				Pos:     prog.Position(client.Files[0].Pos()),
				Rule:    "wiresentinel",
				Message: "internal/client never calls server.SentinelOf: wire errors will not unwrap to engine sentinels",
			})
		}
	}
	return out
}

func findPkg(prog *Program, suffix string) *Pkg {
	for _, p := range prog.Pkgs {
		if pathHasSuffix(p.Path, suffix) {
			return p
		}
	}
	return nil
}

// sentinelToCode parses a CodeOf-shaped function: switch cases of
// errors.Is(err, engine.ErrX) returning a code constant.
func (p *Pkg) sentinelToCode(fnName string) (map[*types.Var]string, bool) {
	fd := p.funcDecl(fnName)
	if fd == nil {
		return nil, false
	}
	out := map[*types.Var]string{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		var sent *types.Var
		for _, cond := range cc.List {
			call, ok := ast.Unparen(cond).(*ast.CallExpr)
			if !ok {
				continue
			}
			if f, ok := p.stdCall(call, "errors"); !ok || f.Name() != "Is" || len(call.Args) != 2 {
				continue
			}
			if sel, ok := ast.Unparen(call.Args[1]).(*ast.SelectorExpr); ok {
				if v, ok := p.Info.Uses[sel.Sel].(*types.Var); ok {
					sent = v
				}
			}
		}
		if sent == nil {
			return true
		}
		if code, ok := p.returnedString(cc.Body); ok {
			out[sent] = code
		}
		return true
	})
	return out, true
}

// codeToSentinel parses a SentinelOf-shaped function: switch cases of
// code constants returning engine sentinels.
func (p *Pkg) codeToSentinel(fnName string) (map[string]*types.Var, bool) {
	fd := p.funcDecl(fnName)
	if fd == nil {
		return nil, false
	}
	out := map[string]*types.Var{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		var codes []string
		for _, cond := range cc.List {
			if tv, ok := p.Info.Types[cond]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				codes = append(codes, constant.StringVal(tv.Value))
			}
		}
		if len(codes) == 0 {
			return true
		}
		var sent *types.Var
		for _, st := range cc.Body {
			ret, ok := st.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				continue
			}
			if sel, ok := ast.Unparen(ret.Results[0]).(*ast.SelectorExpr); ok {
				if v, ok := p.Info.Uses[sel.Sel].(*types.Var); ok {
					sent = v
				}
			}
		}
		for _, c := range codes {
			out[c] = sent // nil records "decodes to no sentinel"
		}
		return true
	})
	return out, true
}

// returnedString extracts the single constant string returned by a
// case body.
func (p *Pkg) returnedString(body []ast.Stmt) (string, bool) {
	for _, st := range body {
		ret, ok := st.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			continue
		}
		if tv, ok := p.Info.Types[ret.Results[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return constant.StringVal(tv.Value), true
		}
	}
	return "", false
}

// funcDecl finds a top-level function by name.
func (p *Pkg) funcDecl(name string) *ast.FuncDecl {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name && fd.Recv == nil {
				return fd
			}
		}
	}
	return nil
}
