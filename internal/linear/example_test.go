package linear_test

import (
	"fmt"

	"livetm/internal/linear"
)

// A FIFO violation: dequeuing 2 while 1 is still at the head.
func ExampleCheck() {
	ops := []linear.Op{
		{Proc: 1, Name: "enqueue", Arg: 1, OK: true, Start: 1, End: 2},
		{Proc: 1, Name: "enqueue", Arg: 2, OK: true, Start: 3, End: 4},
		{Proc: 2, Name: "dequeue", Ret: 2, OK: true, Start: 5, End: 6},
	}
	res, _ := linear.Check(linear.QueueSpec{}, ops)
	fmt.Println("linearizable:", res.Holds)

	ops[2].Ret = 1
	res, _ = linear.Check(linear.QueueSpec{}, ops)
	fmt.Println("with the FIFO head:", res.Holds)
	// Output:
	// linearizable: false
	// with the FIFO head: true
}
