// Package linear decides linearizability of concurrent histories of
// abstract data types — the correctness notion for the shared-object
// layer of §2.1 (data structures implemented over a TM). Where package
// safety works at the t-variable read/write level, this package works
// at the operation level (enqueue/dequeue, add/remove/contains): an
// operation log is linearizable iff there is a total order of the
// operations, consistent with their real-time intervals, that is legal
// for the type's sequential specification.
//
// The search mirrors the opacity checker: a DFS over order prefixes
// with incremental legality pruning and memoization on
// (placed-set, state) pairs (Wing & Gong style).
package linear

import (
	"errors"
	"fmt"
	"strings"
)

// Op is one completed operation of the concurrent history.
type Op struct {
	// Proc identifies the calling process (operations of one process
	// must already be non-overlapping).
	Proc int
	// Name is the operation name understood by the Spec.
	Name string
	// Arg and Ret are the argument and return value (use 0 when not
	// applicable).
	Arg, Ret int64
	// OK is the operation's boolean outcome (hit/miss, success/full).
	OK bool
	// Start and End are logical timestamps: op A precedes op B in real
	// time iff A.End < B.Start.
	Start, End int
}

// String renders the op compactly.
func (o Op) String() string {
	return fmt.Sprintf("p%d.%s(%d)=(%d,%v)@[%d,%d]", o.Proc, o.Name, o.Arg, o.Ret, o.OK, o.Start, o.End)
}

// Spec is a sequential specification with string-encoded states
// (states are memoization keys, so the encoding must be canonical).
type Spec interface {
	// Initial returns the encoded initial state.
	Initial() string
	// Apply returns the state after op, or false when op is illegal in
	// this state (wrong return value for the given argument/state).
	Apply(state string, op Op) (string, bool)
}

// ErrTooManyOps bounds the search representation.
var ErrTooManyOps = errors.New("linear: history exceeds 64 operations")

// Result is the outcome of a linearizability check.
type Result struct {
	Holds bool
	// Witness is a linearization order (indices into the input ops)
	// when Holds.
	Witness []int
	// Explored counts visited order prefixes.
	Explored int
}

// Check decides whether the operation log is linearizable with respect
// to the spec.
func Check(spec Spec, ops []Op) (Result, error) {
	n := len(ops)
	if n > 64 {
		return Result{}, ErrTooManyOps
	}
	if n == 0 {
		return Result{Holds: true}, nil
	}
	for i, op := range ops {
		if op.End < op.Start {
			return Result{}, fmt.Errorf("linear: op %d has End < Start", i)
		}
	}
	preds := make([]uint64, n)
	for i := range ops {
		for j := range ops {
			if i != j && ops[j].End < ops[i].Start {
				preds[i] |= 1 << uint(j)
			}
		}
	}
	c := &checker{spec: spec, ops: ops, preds: preds, failed: map[string]bool{}}
	order := make([]int, 0, n)
	ok := c.dfs(0, spec.Initial(), order)
	return Result{Holds: ok, Witness: c.witness, Explored: c.explored}, nil
}

type checker struct {
	spec     Spec
	ops      []Op
	preds    []uint64
	failed   map[string]bool
	witness  []int
	explored int
}

func (c *checker) dfs(placed uint64, state string, order []int) bool {
	if len(order) == len(c.ops) {
		c.witness = append([]int(nil), order...)
		return true
	}
	key := fmt.Sprintf("%x|%s", placed, state)
	if c.failed[key] {
		return false
	}
	for i := range c.ops {
		bit := uint64(1) << uint(i)
		if placed&bit != 0 || c.preds[i]&^placed != 0 {
			continue
		}
		c.explored++
		next, legal := c.spec.Apply(state, c.ops[i])
		if !legal {
			continue
		}
		if c.dfs(placed|bit, next, append(order, i)) {
			return true
		}
	}
	c.failed[key] = true
	return false
}

// --- Specifications for the tstruct types ---

// QueueSpec is the sequential bounded-FIFO specification matching
// tstruct.Queue: "enqueue" (Arg; OK=false means full) and "dequeue"
// (Ret; OK=false means empty).
type QueueSpec struct {
	// Capacity of the queue; 0 means unbounded.
	Capacity int
}

// Initial implements Spec.
func (QueueSpec) Initial() string { return "" }

// Apply implements Spec.
func (q QueueSpec) Apply(state string, op Op) (string, bool) {
	items := splitState(state)
	switch op.Name {
	case "enqueue":
		full := q.Capacity > 0 && len(items) >= q.Capacity
		if op.OK == full {
			return "", false
		}
		if !op.OK {
			return state, true
		}
		return joinState(append(items, op.Arg)), true
	case "dequeue":
		empty := len(items) == 0
		if op.OK == empty {
			return "", false
		}
		if !op.OK {
			return state, true
		}
		if items[0] != op.Ret {
			return "", false
		}
		return joinState(items[1:]), true
	default:
		return "", false
	}
}

// RegisterSpec is a single read/write register: "write" (Arg) and
// "read" (Ret).
type RegisterSpec struct{}

// Initial implements Spec.
func (RegisterSpec) Initial() string { return "0" }

// Apply implements Spec.
func (RegisterSpec) Apply(state string, op Op) (string, bool) {
	switch op.Name {
	case "write":
		return fmt.Sprintf("%d", op.Arg), true
	case "read":
		return state, state == fmt.Sprintf("%d", op.Ret)
	default:
		return "", false
	}
}

func splitState(s string) []int64 {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		var v int64
		fmt.Sscanf(p, "%d", &v)
		out[i] = v
	}
	return out
}

func joinState(items []int64) string {
	parts := make([]string, len(items))
	for i, v := range items {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ",")
}

// Log collects operations with logical timestamps; a shared *Log is
// safe under the cooperative scheduler (one process runs at a time).
type Log struct {
	clock int
	ops   []Op
}

// Begin stamps an operation start and returns the start time.
func (l *Log) Begin() int {
	l.clock++
	return l.clock
}

// End records a completed operation that began at start.
func (l *Log) End(start int, op Op) {
	l.clock++
	op.Start = start
	op.End = l.clock
	l.ops = append(l.ops, op)
}

// Ops returns the collected operations.
func (l *Log) Ops() []Op { return append([]Op(nil), l.ops...) }
