package linear

import (
	"errors"
	"testing"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/dstm"
	"livetm/internal/stm/ostm"
	"livetm/internal/stm/tl2"
	"livetm/internal/tstruct"
)

func TestRegisterSpecBasics(t *testing.T) {
	ops := []Op{
		{Proc: 1, Name: "write", Arg: 5, OK: true, Start: 1, End: 2},
		{Proc: 2, Name: "read", Ret: 5, OK: true, Start: 3, End: 4},
	}
	res, err := Check(RegisterSpec{}, ops)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatal("sequential write-then-read must linearize")
	}
	// Reading a value never written, strictly after the write of 5.
	ops[1].Ret = 9
	res, _ = Check(RegisterSpec{}, ops)
	if res.Holds {
		t.Fatal("reading 9 after writing 5 must fail")
	}
}

func TestRegisterConcurrentReorders(t *testing.T) {
	// Overlapping write(5) and read->0: the read may linearize first.
	ops := []Op{
		{Proc: 1, Name: "write", Arg: 5, OK: true, Start: 1, End: 10},
		{Proc: 2, Name: "read", Ret: 0, OK: true, Start: 2, End: 3},
	}
	res, err := Check(RegisterSpec{}, ops)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatal("overlapping read may order before the write")
	}
	if len(res.Witness) != 2 || res.Witness[0] != 1 {
		t.Errorf("witness = %v, want the read first", res.Witness)
	}
}

func TestQueueSpec(t *testing.T) {
	q := QueueSpec{Capacity: 2}
	tests := []struct {
		name string
		ops  []Op
		want bool
	}{
		{
			"fifo order",
			[]Op{
				{Name: "enqueue", Arg: 1, OK: true, Start: 1, End: 2},
				{Name: "enqueue", Arg: 2, OK: true, Start: 3, End: 4},
				{Name: "dequeue", Ret: 1, OK: true, Start: 5, End: 6},
				{Name: "dequeue", Ret: 2, OK: true, Start: 7, End: 8},
			},
			true,
		},
		{
			"lifo order is not a queue",
			[]Op{
				{Name: "enqueue", Arg: 1, OK: true, Start: 1, End: 2},
				{Name: "enqueue", Arg: 2, OK: true, Start: 3, End: 4},
				{Name: "dequeue", Ret: 2, OK: true, Start: 5, End: 6},
			},
			false,
		},
		{
			"spurious empty",
			[]Op{
				{Name: "enqueue", Arg: 1, OK: true, Start: 1, End: 2},
				{Name: "dequeue", OK: false, Start: 3, End: 4},
			},
			false,
		},
		{
			"overlapping empty is fine",
			[]Op{
				{Name: "enqueue", Arg: 1, OK: true, Start: 2, End: 5},
				{Name: "dequeue", OK: false, Start: 1, End: 3},
			},
			true,
		},
		{
			"full at capacity",
			[]Op{
				{Name: "enqueue", Arg: 1, OK: true, Start: 1, End: 2},
				{Name: "enqueue", Arg: 2, OK: true, Start: 3, End: 4},
				{Name: "enqueue", Arg: 3, OK: false, Start: 5, End: 6},
			},
			true,
		},
		{
			"spurious full",
			[]Op{
				{Name: "enqueue", Arg: 1, OK: true, Start: 1, End: 2},
				{Name: "enqueue", Arg: 2, OK: false, Start: 3, End: 4},
			},
			false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := Check(q, tt.ops)
			if err != nil {
				t.Fatal(err)
			}
			if res.Holds != tt.want {
				t.Errorf("Holds = %v, want %v", res.Holds, tt.want)
			}
		})
	}
}

func TestCheckValidation(t *testing.T) {
	if _, err := Check(RegisterSpec{}, []Op{{Start: 5, End: 2}}); err == nil {
		t.Error("End < Start must be rejected")
	}
	big := make([]Op, 70)
	if _, err := Check(RegisterSpec{}, big); !errors.Is(err, ErrTooManyOps) {
		t.Error("want ErrTooManyOps")
	}
	res, err := Check(RegisterSpec{}, nil)
	if err != nil || !res.Holds {
		t.Error("empty log is linearizable")
	}
}

// TestTransactionalQueueLinearizable runs concurrent producers and a
// consumer on tstruct.Queue over several TMs and seeds, collects the
// operation log, and checks it against the FIFO spec.
func TestTransactionalQueueLinearizable(t *testing.T) {
	factories := map[string]stm.Factory{
		"tl2":  func(n, v int) stm.TM { return tl2.New() },
		"dstm": func(n, v int) stm.TM { return dstm.New() },
		"ostm": func(n, v int) stm.TM { return ostm.New() },
	}
	for name, f := range factories {
		f := f
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				log := &Log{}
				q, err := tstruct.NewQueue(f(3, 10), 0, 4)
				if err != nil {
					t.Fatal(err)
				}
				s := sim.New(sim.NewSeeded(seed))
				producer := func(base int64, count int) func(*sim.Env) {
					return func(env *sim.Env) {
						for k := 0; k < count; {
							v := base + int64(k)
							start := log.Begin()
							err := q.Enqueue(env, model.Value(v))
							log.End(start, Op{Proc: int(env.Proc()), Name: "enqueue", Arg: v, OK: err == nil})
							if err == nil {
								k++ // retry the same item when the queue was full
							}
						}
					}
				}
				_ = s.Spawn(1, producer(100, 4))
				_ = s.Spawn(2, producer(200, 4))
				_ = s.Spawn(3, func(env *sim.Env) {
					for got := 0; got < 6; {
						start := log.Begin()
						v, err := q.Dequeue(env)
						log.End(start, Op{Proc: 3, Name: "dequeue", Ret: int64(v), OK: err == nil})
						if err == nil {
							got++
						}
					}
				})
				if steps := s.Run(200000); steps >= 200000 {
					t.Fatal("queue workload wedged")
				}
				s.Close()
				ops := log.Ops()
				if len(ops) > 40 {
					ops = ops[:40] // keep the check fast; prefix-closed
				}
				res, err := Check(QueueSpec{Capacity: 4}, ops)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Holds {
					t.Fatalf("seed %d: queue log not linearizable:\n%v", seed, ops)
				}
			}
		})
	}
}

// TestBrokenQueueCaught: a racy, non-transactional queue produces a
// non-linearizable log under some schedule.
func TestBrokenQueueCaught(t *testing.T) {
	found := false
	for seed := uint64(1); seed <= 60 && !found; seed++ {
		log := &Log{}
		var items []int64
		s := sim.New(sim.NewSeeded(seed))
		enqueue := func(env *sim.Env, v int64) {
			start := log.Begin()
			// BUG: read-yield-write on shared state without a TM; a
			// concurrent enqueue between the length read and the
			// truncating append is silently dropped (lost update).
			n := len(items)
			env.Yield()
			if n > len(items) {
				n = len(items)
			}
			items = append(items[:n:n], v)
			log.End(start, Op{Proc: int(env.Proc()), Name: "enqueue", Arg: v, OK: true})
		}
		dequeue := func(env *sim.Env) {
			start := log.Begin()
			if len(items) == 0 {
				env.Yield()
				log.End(start, Op{Proc: int(env.Proc()), Name: "dequeue", OK: false})
				return
			}
			v := items[0]
			env.Yield()
			if len(items) > 0 {
				items = items[1:]
			}
			log.End(start, Op{Proc: int(env.Proc()), Name: "dequeue", Ret: v, OK: true})
		}
		_ = s.Spawn(1, func(env *sim.Env) {
			for i := int64(1); i <= 4; i++ {
				enqueue(env, i)
			}
		})
		_ = s.Spawn(2, func(env *sim.Env) {
			for i := int64(11); i <= 14; i++ {
				enqueue(env, i)
			}
		})
		_ = s.Spawn(3, func(env *sim.Env) {
			for i := 0; i < 6; i++ {
				dequeue(env)
			}
		})
		s.Run(20000)
		s.Close()
		res, err := Check(QueueSpec{}, log.Ops())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Holds {
			found = true
		}
	}
	if !found {
		t.Error("the racy queue should produce a non-linearizable log under some seed")
	}
}
