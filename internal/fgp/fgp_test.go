package fgp

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"livetm/internal/automaton"
	"livetm/internal/model"
	"livetm/internal/safety"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, Faithful); err == nil {
		t.Error("zero processes must be rejected")
	}
	if _, err := New(1, 0, Faithful); err == nil {
		t.Error("zero variables must be rejected")
	}
	if _, err := New(1, 1, Variant(0)); err == nil {
		t.Error("zero variant must be rejected")
	}
	if Faithful.String() != "faithful" || Corrected.String() != "corrected" {
		t.Error("variant names")
	}
}

// TestFig15States reproduces Figure 15: the Fgp instance for one
// process and one binary t-variable has exactly the 10 states the
// paper lists.
func TestFig15States(t *testing.T) {
	a, err := New(1, 1, Faithful)
	if err != nil {
		t.Fatal(err)
	}
	states, err := automaton.Explore(a.IOAutomaton(), a.Alphabet([]model.Value{0, 1}), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 10 {
		for _, s := range states {
			t.Logf("state: %s", s.(*State))
		}
		t.Fatalf("reachable states = %d, want 10", len(states))
	}

	// Check the 10 states are exactly the listed tuples
	// (status, CP, val, f). Encode each as "status|cp|val|f".
	want := map[string]bool{
		"c|∅|0|⊥":       true, // s1
		"c|{p1}|0|w(0)": true, // s2
		"c|{p1}|1|w(1)": true, // s3
		"c|{p1}|0|r":    true, // s4
		"c|{p1}|0|tryC": true, // s5
		"c|{p1}|1|⊥":    true, // s6
		"c|{p1}|0|⊥":    true, // s7
		"c|{p1}|1|r":    true, // s8
		"c|{p1}|1|tryC": true, // s9
		"c|∅|1|⊥":       true, // s10
	}
	for _, as := range states {
		s := as.(*State)
		key := encodeFig15(s)
		if !want[key] {
			t.Errorf("unexpected reachable state %s (encoded %q)", s, key)
		}
		delete(want, key)
	}
	for k := range want {
		t.Errorf("listed state %q not reached", k)
	}
}

func encodeFig15(s *State) string {
	var b strings.Builder
	b.WriteByte(s.Status(1))
	b.WriteByte('|')
	if s.InCP(1) {
		b.WriteString("{p1}")
	} else {
		b.WriteString("∅")
	}
	b.WriteByte('|')
	if s.Val(1, 0) == 0 {
		b.WriteByte('0')
	} else {
		b.WriteByte('1')
	}
	b.WriteByte('|')
	if e, ok := s.Pending(1); ok {
		switch e.Kind {
		case model.InvRead:
			b.WriteString("r")
		case model.InvWrite:
			if e.Val == 0 {
				b.WriteString("w(0)")
			} else {
				b.WriteString("w(1)")
			}
		case model.InvTryCommit:
			b.WriteString("tryC")
		}
	} else {
		b.WriteString("⊥")
	}
	return b.String()
}

// TestFig15SingleProcessNeverAborts checks the paper's remark that the
// single-process instance has no abort events.
func TestFig15SingleProcessNeverAborts(t *testing.T) {
	a, _ := New(1, 1, Faithful)
	states, err := automaton.Explore(a.IOAutomaton(), a.Alphabet([]model.Value{0, 1}), 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range automaton.Edges(a.IOAutomaton(), states, a.Alphabet([]model.Value{0, 1})) {
		if tr.Event.Kind == model.RespAbort {
			t.Fatalf("abort transition found from %s", tr.From.(*State))
		}
	}
}

// TestTwoProcStateSpaceStable pins the reachable state-space size of
// the two-process, one-binary-variable instance for both variants, so
// accidental changes to the transition rules are caught structurally,
// not just behaviorally.
func TestTwoProcStateSpaceStable(t *testing.T) {
	sizes := map[Variant]int{}
	for _, variant := range []Variant{Faithful, Corrected} {
		a, err := New(2, 1, variant)
		if err != nil {
			t.Fatal(err)
		}
		states, err := automaton.Explore(a.IOAutomaton(), a.Alphabet([]model.Value{0, 1}), 20000)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		sizes[variant] = len(states)
		// Structural invariants over the whole reachable space.
		for _, as := range states {
			s := as.(*State)
			for p := model.Proc(1); p <= 2; p++ {
				if st := s.Status(p); st != 'c' && st != 'a' {
					t.Fatalf("status %c out of domain", st)
				}
				if _, pending := s.Pending(p); pending && s.Status(p) == 'a' {
					continue // legal: demoted with an op in flight
				}
			}
		}
	}
	// The corrected variant tracks the committed snapshot, so its
	// space is at least as large as the faithful one.
	if sizes[Corrected] < sizes[Faithful] {
		t.Errorf("corrected space (%d) smaller than faithful (%d)", sizes[Corrected], sizes[Faithful])
	}
	t.Logf("reachable states: faithful=%d corrected=%d", sizes[Faithful], sizes[Corrected])
}

// hexHistory is the history Hex of Figure 16: three processes, two
// binary t-variables x (=x0) and y (=x1).
func hexHistory() model.History {
	const (
		x = model.TVar(0)
		y = model.TVar(1)
	)
	return model.History{
		model.Read(1, x), model.ValueResp(1, 0), // p1: x.r -> 0
		model.Write(2, y, 1),              // p2: y.w(1) pending
		model.Write(1, x, 1), model.OK(1), // p1: x.w(1)
		model.TryCommit(1), model.Commit(1), // p1: C (p2 in CP -> status a)
		model.Abort(2),                          // p2's pending write aborted
		model.Read(3, y), model.ValueResp(3, 0), // p3: y.r -> 0
		model.Write(3, y, 1), model.OK(3), // p3: y.w(1)
		model.Read(1, y), model.ValueResp(1, 0), // p1: y.r -> 0 (second txn)
		model.TryCommit(3), model.Commit(3), // p3: C (p1 in CP -> status a)
		model.TryCommit(1), model.Abort(1), // p1: A
		model.Read(2, y), model.ValueResp(2, 1), // p2: y.r -> 1
		model.Read(2, x), model.ValueResp(2, 1), // p2: x.r -> 1
		model.TryCommit(2), model.Commit(2), // p2: C
	}
}

// TestFig16Hex replays the paper's example history Hex through both
// variants; every event must be enabled in sequence.
func TestFig16Hex(t *testing.T) {
	for _, variant := range []Variant{Faithful, Corrected} {
		t.Run(variant.String(), func(t *testing.T) {
			a, err := New(3, 2, variant)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := a.IOAutomaton().Replay(hexHistory()); err != nil {
				t.Fatalf("Hex not a history of Fgp (%s): %v", variant, err)
			}
		})
	}
	// Sanity: Hex is opaque.
	res, err := safety.CheckOpacity(hexHistory())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("Hex must be opaque: %s", res.Reason)
	}
}

// TestCommitDemotesOnlyCP pins the prose semantics: a commit demotes
// only concurrent-set members. Under the literal formal rule p3 (which
// has not invoked anything) would be demoted too, and Hex would not
// replay; this test captures the distinction directly.
func TestCommitDemotesOnlyCP(t *testing.T) {
	a, _ := New(3, 1, Faithful)
	s := a.Initial()
	for _, e := range []model.Event{
		model.Read(1, 0), model.ValueResp(1, 0),
		model.Read(2, 0), model.ValueResp(2, 0),
		model.TryCommit(1), model.Commit(1),
	} {
		var ok bool
		s, ok = a.Step(s, e)
		if !ok {
			t.Fatalf("event %s not enabled", e)
		}
	}
	if got := s.Status(2); got != 'a' {
		t.Errorf("p2 was in CP: status = %c, want a", got)
	}
	if got := s.Status(3); got != 'c' {
		t.Errorf("p3 never invoked: status = %c, want c", got)
	}
	if got := s.Status(1); got != 'c' {
		t.Errorf("committer keeps status c, got %c", got)
	}
}

// TestFaithfulAnomaly demonstrates the preprint subtlety: under the
// Faithful variant a process can read a value written by its own
// aborted transaction, producing a non-opaque history.
func TestFaithfulAnomaly(t *testing.T) {
	a, _ := New(2, 1, Faithful)
	h := model.History{
		// p2 joins CP with a read, then p1 commits x:=1, demoting p2.
		model.Read(2, 0), model.ValueResp(2, 0),
		model.Write(1, 0, 1), model.OK(1),
		model.TryCommit(1), model.Commit(1),
		// p2's write invocation stores 5 into Val[2][0]; the response
		// is an abort (status 'a'), which leaves Val unchanged.
		model.Write(2, 0, 5), model.Abort(2),
		// p2's fresh transaction now reads the never-committed 5.
		model.Read(2, 0), model.ValueResp(2, 5),
	}
	if _, err := a.IOAutomaton().Replay(h); err != nil {
		t.Fatalf("anomaly history must be accepted by the faithful variant: %v", err)
	}
	res, err := safety.CheckOpacity(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("the anomaly history must not be opaque")
	}

	// The corrected variant rejects the bad read: Val[2][0] was
	// restored to the committed snapshot (1) on abort.
	c, _ := New(2, 1, Corrected)
	if _, err := c.IOAutomaton().Replay(h); err == nil {
		t.Error("corrected variant must not accept the stale read")
	}
	good := append(h[:len(h)-1:len(h)-1], model.ValueResp(2, 1))
	if _, err := c.IOAutomaton().Replay(good); err != nil {
		t.Errorf("corrected variant must return the committed value instead: %v", err)
	}
}

func TestStepRejectsOutOfRange(t *testing.T) {
	a, _ := New(2, 1, Corrected)
	s := a.Initial()
	for _, e := range []model.Event{
		model.Read(3, 0),     // unknown process
		model.Read(1, 5),     // unknown variable
		model.Write(0, 0, 1), // invalid process id
		model.OK(1),          // no pending write
		model.Commit(1),      // no pending tryC
		model.Abort(1),       // status c
		model.ValueResp(1, 0),
	} {
		if _, ok := a.Step(s, e); ok {
			t.Errorf("event %s must not be enabled initially", e)
		}
	}
}

func TestStepRejectsDoubleInvocation(t *testing.T) {
	a, _ := New(1, 1, Corrected)
	s, ok := a.Step(a.Initial(), model.Read(1, 0))
	if !ok {
		t.Fatal("read invocation must be enabled")
	}
	if _, ok := a.Step(s, model.Write(1, 0, 1)); ok {
		t.Error("second invocation with one pending must be rejected")
	}
}

func TestReadValueMustMatchState(t *testing.T) {
	a, _ := New(1, 1, Corrected)
	s, _ := a.Step(a.Initial(), model.Read(1, 0))
	if _, ok := a.Step(s, model.ValueResp(1, 7)); ok {
		t.Error("a read response must carry Val[k][j]")
	}
	if _, ok := a.Step(s, model.ValueResp(1, 0)); !ok {
		t.Error("the correct value response must be enabled")
	}
}

func TestEngineBasicTransaction(t *testing.T) {
	e, err := NewEngine(2, 2, Corrected)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := e.Read(1, 0)
	if err != nil || !ok || v != 0 {
		t.Fatalf("Read = %d,%v,%v; want 0,true,nil", v, ok, err)
	}
	if ok, err := e.Write(1, 0, 7); err != nil || !ok {
		t.Fatalf("Write = %v,%v", ok, err)
	}
	v, ok, err = e.Read(1, 0)
	if err != nil || !ok || v != 7 {
		t.Fatalf("read own write = %d,%v,%v; want 7,true,nil", v, ok, err)
	}
	if ok, err := e.TryCommit(1); err != nil || !ok {
		t.Fatalf("TryCommit = %v,%v", ok, err)
	}
	// p2 reads the committed value.
	v, ok, err = e.Read(2, 0)
	if err != nil || !ok || v != 7 {
		t.Fatalf("p2 read = %d,%v,%v; want 7,true,nil", v, ok, err)
	}
}

func TestEngineConflictAbortsLoser(t *testing.T) {
	e, _ := NewEngine(2, 1, Corrected)
	if _, ok, _ := e.Read(1, 0); !ok {
		t.Fatal("p1 read")
	}
	if _, ok, _ := e.Read(2, 0); !ok {
		t.Fatal("p2 read")
	}
	if ok, _ := e.TryCommit(1); !ok {
		t.Fatal("first committer wins")
	}
	// p2 was in CP at p1's commit: its next operation aborts.
	if _, ok, _ := e.Read(2, 0); ok {
		t.Fatal("p2 must be aborted once after p1's commit")
	}
	// p2 retries and succeeds.
	if _, ok, _ := e.Read(2, 0); !ok {
		t.Fatal("p2's retry must proceed")
	}
	if ok, _ := e.TryCommit(2); !ok {
		t.Fatal("p2's retry must commit (no further conflict)")
	}
}

func TestEngineHistoryIsValid(t *testing.T) {
	e, _ := NewEngine(3, 2, Corrected)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		p := model.Proc(rng.Intn(3) + 1)
		switch rng.Intn(3) {
		case 0:
			_, _, _ = e.Read(p, model.TVar(rng.Intn(2)))
		case 1:
			_, _ = e.Write(p, model.TVar(rng.Intn(2)), model.Value(rng.Intn(4)))
		case 2:
			_, _ = e.TryCommit(p)
		}
	}
	h := e.History()
	if err := model.CheckWellFormed(h); err != nil {
		t.Fatalf("engine history not well-formed: %v", err)
	}
	a, _ := New(3, 2, Corrected)
	if _, err := a.IOAutomaton().Replay(h); err != nil {
		t.Fatalf("engine history must be a history of the automaton: %v", err)
	}
}

// TestTheorem3OpacityRandom checks opacity of corrected-variant
// histories over many random schedules (Theorem 3, safety half).
func TestTheorem3OpacityRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		e, _ := NewEngine(3, 2, Corrected)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 40; i++ {
			p := model.Proc(rng.Intn(3) + 1)
			switch rng.Intn(4) {
			case 0, 1:
				_, _, _ = e.Read(p, model.TVar(rng.Intn(2)))
			case 2:
				_, _ = e.Write(p, model.TVar(rng.Intn(2)), model.Value(rng.Intn(3)))
			case 3:
				_, _ = e.TryCommit(p)
			}
		}
		res, err := safety.CheckOpacity(e.History())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Holds {
			t.Fatalf("seed %d: corrected Fgp produced a non-opaque history: %s\n%s",
				seed, res.Reason, e.History())
		}
	}
}

// TestTheorem3GlobalProgress checks the liveness half of Theorem 3 in
// its operational form: whenever processes keep invoking operations
// and at least one keeps attempting to commit, commits keep happening.
func TestTheorem3GlobalProgress(t *testing.T) {
	e, _ := NewEngine(4, 2, Corrected)
	rng := rand.New(rand.NewSource(7))
	commits := 0
	for i := 0; i < 2000; i++ {
		p := model.Proc(rng.Intn(4) + 1)
		switch rng.Intn(4) {
		case 0, 1:
			_, _, _ = e.Read(p, model.TVar(rng.Intn(2)))
		case 2:
			_, _ = e.Write(p, model.TVar(rng.Intn(2)), model.Value(rng.Intn(3)))
		case 3:
			if ok, _ := e.TryCommit(p); ok {
				commits++
			}
		}
	}
	if commits < 100 {
		t.Errorf("only %d commits over 2000 steps; Fgp must keep committing", commits)
	}
}

// TestEngineHistoryPropertiesQuick drives the corrected engine with
// arbitrary op sequences derived from fuzz bytes and checks the
// structural invariants on every run: the history is well-formed, is
// accepted by the automaton, and every small prefix is opaque.
func TestEngineHistoryPropertiesQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) > 30 {
			raw = raw[:30]
		}
		e, err := NewEngine(3, 2, Corrected)
		if err != nil {
			return false
		}
		for _, c := range raw {
			p := model.Proc(c%3 + 1)
			switch (c / 3) % 4 {
			case 0, 1:
				_, _, err = e.Read(p, model.TVar(c%2))
			case 2:
				_, err = e.Write(p, model.TVar(c%2), model.Value(c%3))
			case 3:
				_, err = e.TryCommit(p)
			}
			if err != nil {
				return false
			}
		}
		h := e.History()
		if model.CheckWellFormed(h) != nil {
			return false
		}
		a, _ := New(3, 2, Corrected)
		if _, err := a.IOAutomaton().Replay(h); err != nil {
			return false
		}
		if len(h) > 36 {
			h = h[:36]
		}
		res, err := safety.CheckOpacity(h)
		return err == nil && res.Holds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestEngineAdversarialCrashCannotBlock shows crash resilience: p1
// stops forever mid-transaction, and p2 still commits (global
// progress in a crash-prone system).
func TestEngineAdversarialCrashCannotBlock(t *testing.T) {
	e, _ := NewEngine(2, 1, Corrected)
	if _, ok, _ := e.Read(1, 0); !ok {
		t.Fatal("p1 read")
	}
	// p1 crashes here: no more p1 operations, p1 stays in CP forever.
	for i := 0; i < 10; i++ {
		for {
			if _, ok, _ := e.Read(2, 0); !ok {
				continue // aborted once after p2's own commit; retry
			}
			break
		}
		if _, err := e.Write(2, 0, model.Value(i)); err != nil {
			t.Fatal(err)
		}
		if ok, err := e.TryCommit(2); err != nil {
			t.Fatal(err)
		} else if !ok {
			// Retry the whole transaction once; a second failure in a
			// two-process system with p1 crashed is a liveness bug.
			t.Fatalf("iteration %d: p2 could not commit despite running alone", i)
		}
	}
}
