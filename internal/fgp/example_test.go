package fgp_test

import (
	"fmt"

	"livetm/internal/fgp"
)

// Drive the paper's Fgp automaton (§6) as a runtime TM: the first
// committer of a concurrent group wins, the others are aborted once
// and then proceed.
func ExampleEngine() {
	eng, _ := fgp.NewEngine(2, 1, fgp.Corrected)

	v, _, _ := eng.Read(1, 0)
	fmt.Println("p1 reads", v)
	_, _ = eng.Write(1, 0, 7)

	_, _, _ = eng.Read(2, 0) // p2 joins the concurrent group

	ok, _ := eng.TryCommit(1)
	fmt.Println("p1 commits:", ok)

	_, ok, _ = eng.Read(2, 0) // p2 was demoted: aborted once
	fmt.Println("p2 aborted:", !ok)

	v, _, _ = eng.Read(2, 0) // retry sees the committed value
	fmt.Println("p2 reads", v)
	ok, _ = eng.TryCommit(2)
	fmt.Println("p2 commits:", ok)
	// Output:
	// p1 reads 0
	// p1 commits: true
	// p2 aborted: true
	// p2 reads 7
	// p2 commits: true
}
