package fgp

import (
	"fmt"

	"livetm/internal/model"
)

// Engine drives an Fgp instance as a runtime TM: every invocation is
// answered synchronously with the response the automaton enables
// (values and oks while the status is 'c', aborts while it is 'a',
// commits on tryC). The engine is single-threaded; concurrent callers
// must serialize access (the stm adapter does).
type Engine struct {
	a *Automaton
	s *State
	h model.History
}

// NewEngine returns an engine over a fresh instance.
func NewEngine(nProcs, nVars int, variant Variant) (*Engine, error) {
	a, err := New(nProcs, nVars, variant)
	if err != nil {
		return nil, err
	}
	return &Engine{a: a, s: a.Initial()}, nil
}

// State returns the current automaton state.
func (e *Engine) State() *State { return e.s }

// History returns the history recorded so far (a copy).
func (e *Engine) History() model.History { return e.h.Clone() }

// step applies an event, which must be enabled, and records it.
func (e *Engine) step(ev model.Event) error {
	next, ok := e.a.Step(e.s, ev)
	if !ok {
		return fmt.Errorf("fgp: event %s not enabled in state %s", ev, e.s)
	}
	e.s = next
	e.h = append(e.h, ev)
	return nil
}

// invoke performs inv and answers it with the enabled response,
// returning that response.
func (e *Engine) invoke(inv model.Event) (model.Event, error) {
	if err := e.step(inv); err != nil {
		return model.Event{}, err
	}
	k := int(inv.Proc) - 1
	var resp model.Event
	if e.s.status[k] == 'a' {
		resp = model.Abort(inv.Proc)
	} else {
		switch inv.Kind {
		case model.InvRead:
			resp = model.ValueResp(inv.Proc, e.s.val[k][inv.Var])
		case model.InvWrite:
			resp = model.OK(inv.Proc)
		case model.InvTryCommit:
			resp = model.Commit(inv.Proc)
		}
	}
	if err := e.step(resp); err != nil {
		return model.Event{}, err
	}
	return resp, nil
}

// Read performs x.read_p. ok is false when the transaction was
// aborted.
func (e *Engine) Read(p model.Proc, x model.TVar) (model.Value, bool, error) {
	resp, err := e.invoke(model.Read(p, x))
	if err != nil {
		return 0, false, err
	}
	if resp.Kind == model.RespAbort {
		return 0, false, nil
	}
	return resp.Val, true, nil
}

// Write performs x.write_p(v). ok is false when the transaction was
// aborted.
func (e *Engine) Write(p model.Proc, x model.TVar, v model.Value) (bool, error) {
	resp, err := e.invoke(model.Write(p, x, v))
	if err != nil {
		return false, err
	}
	return resp.Kind == model.RespOK, nil
}

// TryCommit performs tryC_p. ok is true on commit, false on abort.
func (e *Engine) TryCommit(p model.Proc) (bool, error) {
	resp, err := e.invoke(model.TryCommit(p))
	if err != nil {
		return false, err
	}
	return resp.Kind == model.RespCommit, nil
}
