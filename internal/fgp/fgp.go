// Package fgp implements the paper's global-progress TM automaton Fgp
// (§6): states are tuples (Status, CP, Val, f) and transitions follow
// the paper's rules. The automaton ensures opacity and global progress
// in any fault-prone system (Theorem 3).
//
// Two variants are provided.
//
//   - Faithful follows the preprint's transition rules literally: a
//     write invocation updates Val[k][j] immediately, and an abort
//     response leaves Val unchanged. As the package tests demonstrate,
//     this combination lets a process observe a value written by one of
//     its own *aborted* transactions (write-invoke, receive A because a
//     concurrent commit set the status to 'a', then read the leftover
//     value in a fresh transaction), violating opacity. The variant is
//     kept because it reproduces Figure 15's state space exactly and
//     documents the preprint's subtlety.
//
//   - Corrected additionally keeps the committed snapshot Com in the
//     state and restores Val[k] := Com on every abort response. This is
//     the minimal repair that makes the opacity argument of Theorem 3
//     go through; all Theorem 3 experiments use it.
//
// A further reading note: the preprint's formal commit rule sets
// Status[k'] = 'a' for *every* other process, while the prose says only
// the members of the concurrent set CP are demoted. Only the prose
// semantics admits the paper's own example history Hex (Figure 16) —
// under the formal rule p3's first read would have to abort — so both
// variants implement the prose semantics.
package fgp

import (
	"fmt"
	"strings"

	"livetm/internal/automaton"
	"livetm/internal/model"
)

// Variant selects between the literal preprint transition rules and
// the opacity-preserving repair. See the package comment.
type Variant int

// Automaton variants.
const (
	Faithful Variant = iota + 1
	Corrected
)

// String returns the variant name.
func (v Variant) String() string {
	switch v {
	case Faithful:
		return "faithful"
	case Corrected:
		return "corrected"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Automaton is an instance of Fgp for a fixed process count and
// t-variable count. Processes are 1..NProcs; t-variables 0..NVars-1.
type Automaton struct {
	NProcs  int
	NVars   int
	Variant Variant
}

// New returns an Fgp instance. NProcs and NVars must be positive.
func New(nProcs, nVars int, variant Variant) (*Automaton, error) {
	if nProcs <= 0 || nVars <= 0 {
		return nil, fmt.Errorf("fgp: need positive process and variable counts, got %d, %d", nProcs, nVars)
	}
	if variant != Faithful && variant != Corrected {
		return nil, fmt.Errorf("fgp: unknown variant %d", int(variant))
	}
	return &Automaton{NProcs: nProcs, NVars: nVars, Variant: variant}, nil
}

// State is an Fgp state (Status, CP, Val, f), plus the committed
// snapshot Com in the Corrected variant. States are immutable; Step
// returns fresh values.
type State struct {
	status  []byte          // per process: 'c' or 'a'
	cp      []bool          // per process: membership in CP
	val     [][]model.Value // val[k][j]: process k's view of x_j
	com     []model.Value   // committed snapshot (Corrected only, else nil)
	pending []model.Event   // f: pending invocation per process; Kind==0 is ⊥
}

// Initial returns s0: all statuses 'c', CP empty, all values 0, no
// pending invocations.
func (a *Automaton) Initial() *State {
	s := &State{
		status:  make([]byte, a.NProcs),
		cp:      make([]bool, a.NProcs),
		val:     make([][]model.Value, a.NProcs),
		pending: make([]model.Event, a.NProcs),
	}
	for k := range s.status {
		s.status[k] = 'c'
		s.val[k] = make([]model.Value, a.NVars)
	}
	if a.Variant == Corrected {
		s.com = make([]model.Value, a.NVars)
	}
	return s
}

func (s *State) clone() *State {
	c := &State{
		status:  append([]byte(nil), s.status...),
		cp:      append([]bool(nil), s.cp...),
		val:     make([][]model.Value, len(s.val)),
		pending: append([]model.Event(nil), s.pending...),
	}
	for k := range s.val {
		c.val[k] = append([]model.Value(nil), s.val[k]...)
	}
	if s.com != nil {
		c.com = append([]model.Value(nil), s.com...)
	}
	return c
}

// Status returns process p's status, 'c' or 'a'.
func (s *State) Status(p model.Proc) byte { return s.status[p-1] }

// InCP reports whether p is in the concurrent set.
func (s *State) InCP(p model.Proc) bool { return s.cp[p-1] }

// Val returns process p's current view of t-variable x.
func (s *State) Val(p model.Proc, x model.TVar) model.Value { return s.val[p-1][x] }

// Pending returns p's pending invocation, or false if f(p) = ⊥.
func (s *State) Pending(p model.Proc) (model.Event, bool) {
	e := s.pending[p-1]
	return e, e.Kind != 0
}

// Key canonically encodes the state; states are equal iff keys are.
func (s *State) Key() string {
	var b strings.Builder
	b.Write(s.status)
	b.WriteByte('|')
	for _, in := range s.cp {
		if in {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteByte('|')
	for _, row := range s.val {
		for _, v := range row {
			fmt.Fprintf(&b, "%d,", v)
		}
		b.WriteByte(';')
	}
	if s.com != nil {
		b.WriteByte('|')
		for _, v := range s.com {
			fmt.Fprintf(&b, "%d,", v)
		}
	}
	b.WriteByte('|')
	for _, e := range s.pending {
		if e.Kind == 0 {
			b.WriteString("_;")
		} else {
			b.WriteString(e.String())
			b.WriteByte(';')
		}
	}
	return b.String()
}

// String renders the state in the paper's tuple notation, e.g.
// "(c, {p1}, 1, f(p1)=x0.write_1(1))" for the single-process instance.
func (s *State) String() string {
	var parts []string
	parts = append(parts, string(s.status))
	var cps []string
	for k, in := range s.cp {
		if in {
			cps = append(cps, fmt.Sprintf("p%d", k+1))
		}
	}
	parts = append(parts, "{"+strings.Join(cps, ",")+"}")
	var vals []string
	for _, row := range s.val {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = fmt.Sprintf("%d", v)
		}
		vals = append(vals, strings.Join(cells, " "))
	}
	parts = append(parts, "["+strings.Join(vals, "; ")+"]")
	var fs []string
	for k, e := range s.pending {
		if e.Kind != 0 {
			fs = append(fs, fmt.Sprintf("f(p%d)=%s", k+1, e))
		}
	}
	if len(fs) == 0 {
		fs = append(fs, "f=⊥")
	}
	parts = append(parts, strings.Join(fs, ","))
	return "(" + strings.Join(parts, ", ") + ")"
}

func (a *Automaton) inRange(e model.Event) bool {
	if e.Proc < 1 || int(e.Proc) > a.NProcs {
		return false
	}
	switch e.Kind {
	case model.InvRead, model.InvWrite:
		return e.Var >= 0 && int(e.Var) < a.NVars
	default:
		return true
	}
}

// Step applies event e to state s, returning the successor state, or
// false when e is not enabled in s.
func (a *Automaton) Step(s *State, e model.Event) (*State, bool) {
	if !a.inRange(e) {
		return nil, false
	}
	k := int(e.Proc) - 1
	switch e.Kind {
	case model.InvWrite:
		if s.pending[k].Kind != 0 {
			return nil, false
		}
		n := s.clone()
		n.cp[k] = true
		n.val[k][e.Var] = e.Val
		n.pending[k] = e
		return n, true

	case model.InvRead:
		if s.pending[k].Kind != 0 {
			return nil, false
		}
		n := s.clone()
		n.cp[k] = true
		n.pending[k] = e
		return n, true

	case model.InvTryCommit:
		if s.pending[k].Kind != 0 {
			return nil, false
		}
		n := s.clone()
		n.cp[k] = true
		n.pending[k] = e
		return n, true

	case model.RespOK:
		if s.status[k] != 'c' || s.pending[k].Kind != model.InvWrite {
			return nil, false
		}
		n := s.clone()
		n.pending[k] = model.Event{}
		return n, true

	case model.RespValue:
		if s.status[k] != 'c' || s.pending[k].Kind != model.InvRead {
			return nil, false
		}
		if e.Val != s.val[k][s.pending[k].Var] {
			return nil, false
		}
		n := s.clone()
		n.pending[k] = model.Event{}
		return n, true

	case model.RespCommit:
		if s.status[k] != 'c' || s.pending[k].Kind != model.InvTryCommit {
			return nil, false
		}
		n := s.clone()
		for j := range n.status {
			if j != k && n.cp[j] {
				n.status[j] = 'a'
			}
			n.cp[j] = false
			copy(n.val[j], s.val[k])
		}
		if n.com != nil {
			copy(n.com, s.val[k])
		}
		n.pending[k] = model.Event{}
		return n, true

	case model.RespAbort:
		if s.status[k] != 'a' || s.pending[k].Kind == 0 {
			return nil, false
		}
		n := s.clone()
		n.status[k] = 'c'
		n.pending[k] = model.Event{}
		if a.Variant == Corrected {
			copy(n.val[k], n.com)
		}
		return n, true

	default:
		return nil, false
	}
}

// IOAutomaton adapts the instance to the generic automaton kit.
func (a *Automaton) IOAutomaton() *automaton.Automaton {
	return &automaton.Automaton{
		Initial: a.Initial(),
		Step: func(s automaton.State, e model.Event) (automaton.State, bool) {
			fs, ok := s.(*State)
			if !ok {
				return nil, false
			}
			return a.Step(fs, e)
		},
	}
}

// Alphabet returns every event over the instance's processes and
// t-variables with values drawn from vals, suitable for reachability
// exploration of small instances.
func (a *Automaton) Alphabet(vals []model.Value) []model.Event {
	var out []model.Event
	for k := 1; k <= a.NProcs; k++ {
		p := model.Proc(k)
		for j := 0; j < a.NVars; j++ {
			x := model.TVar(j)
			out = append(out, model.Read(p, x))
			for _, v := range vals {
				out = append(out, model.Write(p, x, v))
			}
		}
		out = append(out, model.TryCommit(p))
		for _, v := range vals {
			out = append(out, model.ValueResp(p, v))
		}
		out = append(out, model.OK(p), model.Commit(p), model.Abort(p))
	}
	return out
}
