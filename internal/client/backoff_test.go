package client

import (
	"testing"
	"time"
)

// TestBackoffNoLockstep is the herd regression test: two zero-value
// Backoffs fed the same Retry-After hint — exactly the state of two
// refused clients — must not produce the same wait sequence, i.e.
// they do not retry in the same tick.
func TestBackoffNoLockstep(t *testing.T) {
	var a, b Backoff
	hint := 50 * time.Millisecond
	same := true
	for i := 0; i < 4; i++ {
		if a.Next(hint) != b.Next(hint) {
			same = false
		}
	}
	if same {
		t.Fatalf("two independent Backoffs produced identical 4-wait sequences (lockstep herd)")
	}
}

// TestBackoffHonorsHintFloor asserts jitter only ever adds: the wait
// never undercuts the server's Retry-After, even when the hint
// exceeds Cap.
func TestBackoffHonorsHintFloor(t *testing.T) {
	b := Backoff{Cap: 100 * time.Millisecond}
	for i := 0; i < 20; i++ {
		hint := time.Duration(i+1) * 40 * time.Millisecond
		if w := b.Next(hint); w < hint {
			t.Fatalf("refusal %d: wait %v under hint %v", i, w, hint)
		}
	}
}

// TestBackoffGrowthAndCap pins the envelope: with a fixed seed the
// i-th wait lies in [floor, floor·(1+Jitter)) where floor doubles per
// refusal and saturates at Cap, and Reset restarts the growth.
func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Seed: 7, Cap: 160 * time.Millisecond, Jitter: 0.5}
	hint := 20 * time.Millisecond
	for i, floor := range []time.Duration{
		20 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond,
		160 * time.Millisecond, 160 * time.Millisecond, // saturated at Cap
	} {
		w := b.Next(hint)
		if w < floor || w >= floor+floor/2 {
			t.Fatalf("refusal %d: wait %v outside [%v, %v)", i, w, floor, floor+floor/2)
		}
	}
	b.Reset()
	if w := b.Next(hint); w >= 30*time.Millisecond {
		t.Fatalf("post-Reset wait %v did not restart from the hint", w)
	}
	// No hint falls back to Base.
	nb := Backoff{Seed: 3, Base: 8 * time.Millisecond}
	if w := nb.Next(0); w < 8*time.Millisecond || w >= 12*time.Millisecond {
		t.Fatalf("hintless wait %v outside [8ms, 12ms)", w)
	}
}

// TestBackoffSeedDeterminism: an explicit seed pins the whole wait
// sequence, which is what lets the loadgen's retry timing be replayed.
func TestBackoffSeedDeterminism(t *testing.T) {
	mk := func(seed uint64) []time.Duration {
		b := Backoff{Seed: seed}
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = b.Next(25 * time.Millisecond)
		}
		return out
	}
	a, b, c := mk(42), mk(42), mk(43)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatalf("different seeds produced identical sequences")
	}
}
