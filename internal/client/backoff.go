package client

import (
	"sync/atomic"
	"time"
)

// backoffSeq distinguishes zero-value Backoffs created in the same
// clock tick, so no two default-seeded instances share a jitter
// stream.
var backoffSeq atomic.Uint64

// Backoff computes the wait before retrying an overload-refused
// submission. Sleeping exactly the server's Retry-After puts every
// refused client on the same wake-up tick, re-colliding on the same
// fair-share window forever (the lockstep retry herd); Backoff breaks
// the herd by treating the hint as a floor, growing it exponentially
// on consecutive refusals up to Cap, and spreading wake-ups with
// bounded random jitter above the floor. Not safe for concurrent use:
// keep one instance per submission loop.
type Backoff struct {
	// Base is the floor used when the server sends no Retry-After
	// hint. 0 defaults to 10ms.
	Base time.Duration
	// Cap bounds the exponential growth of the pre-jitter wait. 0
	// defaults to 2s. The server's hint still floors the wait even
	// when it exceeds Cap.
	Cap time.Duration
	// Jitter is the fraction of the grown wait added as a uniform
	// random extra, in (0, 1]; 0 defaults to 0.5. Jitter only ever
	// adds, so the wait never undercuts the server's hint.
	Jitter float64
	// Seed pins the jitter stream for reproducibility. 0 (the useful
	// default) seeds from the clock mixed with a process-wide
	// sequence, so concurrent zero-value Backoffs draw from distinct
	// streams.
	Seed uint64

	refusals int
	seeded   bool
	state    uint64
}

// next64 steps the instance's splitmix64 stream, seeding it lazily.
func (b *Backoff) next64() uint64 {
	if !b.seeded {
		seed := b.Seed
		if seed == 0 {
			seed = uint64(time.Now().UnixNano()) ^ (backoffSeq.Add(1) * 0x9e3779b97f4a7c15)
		}
		b.state = seed
		b.seeded = true
	}
	b.state += 0x9e3779b97f4a7c15
	z := b.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Next returns the wait before the next retry, given the server's
// Retry-After hint (≤ 0 when the refusal carried none). The wait is
// floor + uniform[0, floor·Jitter), where floor is the hint (or Base)
// doubled per consecutive refusal up to Cap — but never below the
// hint itself. Call Reset after an accepted submission.
func (b *Backoff) Next(hint time.Duration) time.Duration {
	base := hint
	if base <= 0 {
		base = b.Base
		if base <= 0 {
			base = 10 * time.Millisecond
		}
	}
	shift := b.refusals
	if shift > 16 {
		shift = 16
	}
	b.refusals++
	w := base << shift
	cap := b.Cap
	if cap <= 0 {
		cap = 2 * time.Second
	}
	if w > cap || w <= 0 { // w ≤ 0 catches shift overflow
		w = cap
	}
	if w < base {
		w = base // the server's hint floors the wait even past Cap
	}
	j := b.Jitter
	if j <= 0 {
		j = 0.5
	} else if j > 1 {
		j = 1
	}
	if span := time.Duration(float64(w) * j); span > 0 {
		w += time.Duration(b.next64() % uint64(span))
	}
	return w
}

// Reset clears the consecutive-refusal growth; call it once a
// submission is accepted.
func (b *Backoff) Reset() { b.refusals = 0 }
