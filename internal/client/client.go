// Package client is the Go client of the livetm wire API: the
// engine's submission surface (programs, async submissions, and
// interactive transactions) reconstructed over HTTP against
// internal/server. Errors cross the wire as stable codes and come
// back as *Error values wrapping the original engine sentinels, so
// errors.Is(err, engine.ErrOverloaded) holds on the client exactly as
// it does next to the session.
package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"livetm/internal/engine"
	"livetm/internal/server"
)

// Config parameterizes a Client.
type Config struct {
	// Addr is the server's base address ("host:port" or a full
	// "http://..." URL).
	Addr string
	// Name is the client identity sent as the X-Livetm-Client header;
	// the server's admission controller accounts fairness against it.
	// Empty falls back to the connection's remote address, which
	// lumps every client behind one NAT together — set it.
	Name string
	// Codec frames the wire bodies; nil defaults to server.JSONCodec.
	// Must match the server's codec.
	Codec server.Codec
	// HTTPClient overrides the transport; nil uses a dedicated
	// client with its own connection pool.
	HTTPClient *http.Client
}

// Error is a wire error decoded back into Go: the stable code, the
// server's message, and the Retry-After hint on overload refusals.
// Unwrap yields the engine sentinel the code encodes, so errors.Is
// against engine.ErrOverloaded, engine.ErrClosed, etc. works across
// the wire.
type Error struct {
	Code       string
	Message    string
	RetryAfter time.Duration
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("livetm server: %s (%s)", e.Message, e.Code)
}

// Unwrap maps the wire code back onto its engine sentinel (nil for
// codes with no engine counterpart, e.g. bad-request).
func (e *Error) Unwrap() error { return server.SentinelOf(e.Code) }

// Client talks the wire API v1. Safe for concurrent use.
type Client struct {
	base  string
	name  string
	codec server.Codec
	hc    *http.Client
}

// New builds a client for the server at cfg.Addr.
func New(cfg Config) *Client {
	base := cfg.Addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	codec := cfg.Codec
	if codec == nil {
		codec = server.JSONCodec{}
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: base, name: cfg.Name, codec: codec, hc: hc}
}

// WithName returns a client identical to c but presenting name as its
// wire identity (X-Livetm-Client). The transport and connection pool
// are shared, so fanning one physical client out into many admission
// identities — the loadgen's client-churn mode — costs nothing per
// name.
func (c *Client) WithName(name string) *Client {
	cc := *c
	cc.name = name
	return &cc
}

// do posts one frame and decodes the reply; non-2xx replies decode
// into *Error.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		var buf bytes.Buffer
		if err := c.codec.Encode(&buf, in); err != nil {
			return fmt.Errorf("client: encode %s: %w", path, err)
		}
		body = &buf
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", c.codec.ContentType())
	}
	if c.name != "" {
		req.Header.Set(server.ClientHeader, c.name)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var er server.ErrorResponse
		if derr := c.codec.Decode(resp.Body, &er); derr != nil || er.Code == "" {
			return &Error{Code: server.CodeInternal,
				Message: fmt.Sprintf("%s: http %d", path, resp.StatusCode)}
		}
		return &Error{
			Code:       er.Code,
			Message:    er.Error,
			RetryAfter: time.Duration(er.RetryAfterMS) * time.Millisecond,
		}
	}
	if out != nil {
		if err := c.codec.Decode(resp.Body, out); err != nil {
			return fmt.Errorf("client: decode %s: %w", path, err)
		}
	}
	return nil
}

// Info fetches the serving session's shape.
func (c *Client) Info(ctx context.Context) (server.InfoResponse, error) {
	var out server.InfoResponse
	err := c.do(ctx, http.MethodGet, "/v1/info", nil, &out)
	return out, err
}

// Stats snapshots the session counters.
func (c *Client) Stats(ctx context.Context) (engine.SessionStats, error) {
	var out engine.SessionStats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Exec runs one transaction program to completion on worker
// (engine.AnyWorker for the shared lane) and returns its result.
func (c *Client) Exec(ctx context.Context, worker int, ops []server.Op) (server.ExecResponse, error) {
	var out server.ExecResponse
	err := c.do(ctx, http.MethodPost, "/v1/exec", server.ExecRequest{Worker: worker, Ops: ops}, &out)
	return out, err
}

// Submit enqueues a program asynchronously; the id redeems the result
// through Wait.
func (c *Client) Submit(ctx context.Context, worker int, ops []server.Op) (string, error) {
	var out server.SubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/submit", server.ExecRequest{Worker: worker, Ops: ops}, &out)
	return out.ID, err
}

// Wait blocks for an async submission's result; the result is
// consumed (a second Wait on the same id is not-found).
func (c *Client) Wait(ctx context.Context, id string) (server.ExecResponse, error) {
	var out server.ExecResponse
	err := c.do(ctx, http.MethodPost, "/v1/wait", server.WaitRequest{ID: id}, &out)
	return out, err
}

// Drain asks the server to gracefully drain and close its session,
// returning the final monitor report and closing stats.
func (c *Client) Drain(ctx context.Context) (server.DrainResponse, error) {
	var out server.DrainResponse
	err := c.do(ctx, http.MethodPost, "/v1/drain", struct{}{}, &out)
	return out, err
}

// Begin opens an interactive transaction pinned to worker. The
// returned Tx spans attempts: an aborted op leaves the transaction
// open (the engine's retry loop re-entered the body) and the next op
// simply lands on the fresh attempt.
func (c *Client) Begin(ctx context.Context, worker int) (*Tx, error) {
	var out server.BeginResponse
	if err := c.do(ctx, http.MethodPost, "/v1/tx/begin", server.BeginRequest{Worker: worker}, &out); err != nil {
		return nil, err
	}
	return &Tx{c: c, id: out.Txn}, nil
}

// Tx is an open interactive transaction.
type Tx struct {
	c  *Client
	id string
}

// ID returns the transaction's wire id.
func (t *Tx) ID() string { return t.id }

// Read reads variable i. aborted reports that this attempt aborted on
// the read — the transaction is still open, retrying.
func (t *Tx) Read(ctx context.Context, i int) (val int64, aborted bool, err error) {
	var out server.TxOpResponse
	err = t.c.do(ctx, http.MethodPost, "/v1/tx/op",
		server.TxOpRequest{Txn: t.id, Op: server.Op{Kind: server.OpRead, Var: i}}, &out)
	return out.Val, out.Aborted, err
}

// Write writes v into variable i; aborted as for Read.
func (t *Tx) Write(ctx context.Context, i int, v int64) (aborted bool, err error) {
	var out server.TxOpResponse
	err = t.c.do(ctx, http.MethodPost, "/v1/tx/op",
		server.TxOpRequest{Txn: t.id, Op: server.Op{Kind: server.OpWrite, Var: i, Val: v}}, &out)
	return out.Aborted, err
}

// Finish ends the transaction with the given mode (server.FinishCommit,
// FinishNoCommit, or FinishAbandon) and returns the wire verdict.
// resp.Retrying means a commit attempt aborted and the transaction is
// still open — keep issuing ops or finish again.
func (t *Tx) Finish(ctx context.Context, mode string) (server.TxFinishResponse, error) {
	var out server.TxFinishResponse
	err := t.c.do(ctx, http.MethodPost, "/v1/tx/finish",
		server.TxFinishRequest{Txn: t.id, Mode: mode}, &out)
	return out, err
}

// Commit is Finish(FinishCommit).
func (t *Tx) Commit(ctx context.Context) (server.TxFinishResponse, error) {
	return t.Finish(ctx, server.FinishCommit)
}

// Abandon is Finish(FinishAbandon); it never leaves the transaction
// open.
func (t *Tx) Abandon(ctx context.Context) error {
	_, err := t.Finish(ctx, server.FinishAbandon)
	return err
}
