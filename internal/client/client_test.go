package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"livetm/internal/engine"
	"livetm/internal/server"
)

func startServer(t *testing.T, scfg server.Config) (*server.Server, string) {
	t.Helper()
	sess, err := engine.Open(engine.SessionConfig{
		Engine: "native-tl2", Workers: 2, Vars: 4,
	})
	if err != nil {
		t.Fatalf("open session: %v", err)
	}
	if scfg.Info == (server.InfoResponse{}) {
		scfg.Info = server.InfoResponse{Engine: sess.Name(), Workers: 2, Vars: 4}
	}
	srv := server.New(sess, scfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, _ = srv.Drain(ctx)
	})
	return srv, hs.URL
}

func TestClientExecAndInteractive(t *testing.T) {
	_, url := startServer(t, server.Config{})
	c := New(Config{Addr: url, Name: "t1"})
	ctx := context.Background()

	info, err := c.Info(ctx)
	if err != nil || info.Workers != 2 {
		t.Fatalf("info = %+v, %v", info, err)
	}

	res, err := c.Exec(ctx, engine.AnyWorker, []server.Op{
		{Kind: server.OpWrite, Var: 0, Val: 5},
		{Kind: server.OpIncr, Var: 0, Val: 2},
	})
	if err != nil || !res.Committed {
		t.Fatalf("exec = %+v, %v", res, err)
	}

	id, err := c.Submit(ctx, engine.AnyWorker, []server.Op{{Kind: server.OpRead, Var: 0}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	wres, err := c.Wait(ctx, id)
	if err != nil || !wres.Committed || len(wres.Reads) != 1 || wres.Reads[0] != 7 {
		t.Fatalf("wait = %+v, %v", wres, err)
	}

	tx, err := c.Begin(ctx, 1)
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := tx.Write(ctx, 1, 9); err != nil {
		t.Fatalf("tx write: %v", err)
	}
	v, aborted, err := tx.Read(ctx, 1)
	if err != nil || aborted || v != 9 {
		t.Fatalf("tx read = %d aborted=%v err=%v", v, aborted, err)
	}
	fin, err := tx.Commit(ctx)
	if err != nil || !fin.Committed {
		t.Fatalf("tx commit = %+v, %v", fin, err)
	}

	stats, err := c.Stats(ctx)
	if err != nil || stats.Submitted == 0 {
		t.Fatalf("stats = %+v, %v", stats, err)
	}
}

// TestErrorRoundTrip drives the engine sentinels across the wire and
// back: a refusal raised next to the session surfaces on the client
// as an error for which errors.Is against the same sentinel holds.
func TestErrorRoundTrip(t *testing.T) {
	_, url := startServer(t, server.Config{MaxInflight: 1, RetryAfter: 120 * time.Millisecond})
	c := New(Config{Addr: url, Name: "rt"})
	ctx := context.Background()

	// Occupy the only admission slot with a parked interactive
	// transaction, then overload.
	tx, err := c.Begin(ctx, 0)
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	_, err = c.Exec(ctx, engine.AnyWorker, []server.Op{{Kind: server.OpRead, Var: 0}})
	if !errors.Is(err, engine.ErrOverloaded) {
		t.Fatalf("overloaded exec err = %v, want errors.Is ErrOverloaded", err)
	}
	var we *Error
	if !errors.As(err, &we) {
		t.Fatalf("err %T does not unwrap to *client.Error", err)
	}
	if we.Code != server.CodeOverloaded {
		t.Fatalf("wire code = %q", we.Code)
	}
	if we.RetryAfter != 120*time.Millisecond {
		t.Fatalf("retry-after = %v, want 120ms", we.RetryAfter)
	}

	if err := tx.Abandon(ctx); err != nil {
		t.Fatalf("abandon: %v", err)
	}

	// Bad requests carry no sentinel but keep their code.
	_, err = c.Exec(ctx, engine.AnyWorker, nil)
	var be *Error
	if !errors.As(err, &be) || be.Code != server.CodeBadRequest {
		t.Fatalf("bad-request err = %v", err)
	}

	// Drain, then every submission path reports ErrClosed.
	if _, err := c.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	_, err = c.Exec(ctx, engine.AnyWorker, []server.Op{{Kind: server.OpRead, Var: 0}})
	if !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("post-drain exec err = %v, want errors.Is ErrClosed", err)
	}
	if _, err := c.Begin(ctx, 0); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("post-drain begin err = %v, want errors.Is ErrClosed", err)
	}
}

// TestEngineOverloadCrossesWire exercises the engine-level MaxQueue
// cap (satellite of this change set): the session itself refuses the
// async submission and the sentinel still reaches the client.
func TestEngineOverloadCrossesWire(t *testing.T) {
	sess, err := engine.Open(engine.SessionConfig{
		Engine: "native-tl2", Workers: 1, Vars: 1, MaxQueue: 1,
	})
	if err != nil {
		t.Fatalf("open session: %v", err)
	}
	srv := server.New(sess, server.Config{Info: server.InfoResponse{Engine: sess.Name(), Workers: 1, Vars: 1}})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, _ = srv.Drain(ctx)
	}()
	c := New(Config{Addr: hs.URL, Name: "mq"})
	ctx := context.Background()

	// Park the only worker in an interactive transaction so queued
	// submissions pile up behind it, then push async submissions until
	// the engine's MaxQueue refuses one.
	tx, err := c.Begin(ctx, 0)
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	overloaded := false
	for i := 0; i < 10; i++ {
		_, err := c.Submit(ctx, engine.AnyWorker, []server.Op{{Kind: server.OpRead, Var: 0}})
		if errors.Is(err, engine.ErrOverloaded) {
			overloaded = true
			break
		}
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if !overloaded {
		t.Fatalf("MaxQueue=1 never refused an async submission")
	}
	if err := tx.Abandon(ctx); err != nil {
		t.Fatalf("abandon: %v", err)
	}
}
