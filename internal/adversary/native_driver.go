package adversary

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"livetm/internal/model"
	"livetm/internal/monitor"
	"livetm/internal/native"
	"livetm/internal/record"
)

// errDriverStop is the sentinel a gated transaction body returns when
// the driver tears the run down. It is not ErrAborted, so the native
// retry loop abandons the attempt (releasing whatever it holds) and
// surfaces the error instead of retrying.
var errDriverStop = errors.New("adversary: native driver stopped the process")

// advStreamCap bounds the recorder's live channel. Adversary runs are
// driver-gated and nearly sequential, so a small buffer suffices.
const advStreamCap = 1024

// advRebiasEvery is how often (in observed events) the pump feeds the
// measured starvation back into the backoff policy. Adversary runs are
// short; a tight cadence makes the bias trajectory visible.
const advRebiasEvery = 32

// nmsg is one process→driver notification. Each process's messages
// arrive in program order on its own channel.
type nmsg struct {
	kind    nmsgKind
	val     int64
	aborted bool
	err     error
}

type nmsgKind int

const (
	// nAtGate: the process is parked at its gate waiting for an action.
	nAtGate nmsgKind = iota
	// nReadDone: p1 finished a granted read (val/aborted filled in).
	nReadDone
	// nCommitted: a whole transaction committed (AtomicallyOpts
	// returned nil and the goroutine armed the next one).
	nCommitted
	// nExited: the process goroutine ended; err is AtomicallyOpts's
	// return (nil when p1's transaction committed).
	nExited
)

// Actions granted at a gate.
const (
	actRead = iota
	actFinish
	actAttempt
)

// nproc is the driver's view of one gated process.
type nproc struct {
	msgs    chan nmsg // process → driver, in program order
	act     chan int  // driver → process, one grant per gate stop
	atGate  bool      // an nAtGate was consumed without granting yet
	crashed bool      // Crash(p): never grant again
}

// NativeDriver drives the strategies against a native (real-
// concurrency) TM: p1 and p2 run as real goroutines inside the shared
// retry loop (native.RunOpts with per-process observers, stop channel
// and backoff), and every strategy step is a gate the driver grants.
// The gates sit inside the transaction bodies, so a granted read
// happens inside p1's open transaction exactly like the simulated
// strategies' mid-transaction suspensions — which is what lets the
// adversary hold p1's transaction open across p2's commits on real
// hardware.
//
// The recorded events stream through the online monitor while the run
// executes (the same record→monitor pump the live engine uses), so the
// result carries per-process starvation intervals, liveness classes
// and the starvation-aware backoff's bias trajectory alongside the
// history.
type NativeDriver struct {
	cfg  Config
	info native.Info
	tm   native.ObservableTM
	rec  *record.Recorder
	mon  *monitor.Monitor
	bo   *native.Backoff

	stop     chan struct{}
	pumpDone chan struct{}
	wg       sync.WaitGroup
	procs    [2]*nproc
	p2arm    chan struct{} // closed when Step 2 first releases p2
	p2armed  bool          // driver-side: p2arm already closed

	// Written on the pump goroutine, read after pumpDone closes.
	violation error
	biasTraj  [][]int
}

// NativeResult reports what the adversary achieved against a native
// TM.
type NativeResult struct {
	// Outcome carries the substrate-independent figures.
	Outcome
	// Engine is the native algorithm's report name ("native-tl2").
	Engine string
	// Strategy is the strategy that ran.
	Strategy Strategy
	// History is the recorded history of the run (including the
	// teardown aborts of transactions the stop released).
	History model.History
	// TMStats is the algorithm's own commit/abort accounting.
	TMStats native.Stats
	// Report is the online monitor's verdict over the streamed events:
	// opacity, per-process progress, starvation intervals
	// (Report.StarvationIntervals) and liveness classes.
	Report monitor.Report
	// Violation is the monitor's terminal safety error, if the
	// recorded stream violated opacity (nil against a correct TM).
	Violation error
	// BackoffBias is each process's final backoff bias.
	BackoffBias []int
	// BiasTrajectory is the bias snapshot at every starvation-feedback
	// rebias, in order — how the contention manager leaned over the
	// run.
	BiasTrajectory [][]int
}

// RunNative runs strategy s against a fresh instance of the native
// algorithm. It errors only on misconfiguration (unknown variant, a TM
// without linearization-point hooks); the adversary's outcomes —
// starvation, blocking — land in the result.
func RunNative(info native.Info, s Strategy, cfg Config) (NativeResult, error) {
	cfg = cfg.withDefaults()
	if err := s.validate(); err != nil {
		return NativeResult{}, err
	}
	tm, err := info.New(1)
	if err != nil {
		return NativeResult{}, err
	}
	otm, ok := tm.(native.ObservableTM)
	if !ok {
		return NativeResult{}, fmt.Errorf("adversary: %s does not expose linearization-point hooks", info.Name)
	}
	d := &NativeDriver{
		cfg:      cfg,
		info:     info,
		tm:       otm,
		bo:       native.NewBackoff(2),
		stop:     make(chan struct{}),
		pumpDone: make(chan struct{}),
		p2arm:    make(chan struct{}),
	}
	// No Options.Stop: the pump drains the stream until CloseStream, so
	// publishers never need the departed-consumer escape hatch — and
	// taking it at teardown would mute a log's final flush and starve
	// the resequencer of the early sequence numbers it is waiting on.
	d.rec = record.NewWithOptions(2, record.Options{
		CapacityHint:   cfg.Rounds*16 + 16,
		StreamCapacity: advStreamCap,
	})
	d.mon, err = monitor.New(monitor.Config{
		Procs:      []model.Proc{1, 2},
		Approx:     true,
		RecordGaps: true,
	})
	if err != nil {
		return NativeResult{}, err
	}
	pump := &monitor.Pump{
		Mon:         d.mon,
		Procs:       2,
		OnViolation: func(err error) { d.violation = err },
		RebiasEvery: advRebiasEvery,
		Rebias: func(starvation []int) {
			d.bo.Rebias(starvation)
			d.biasTraj = append(d.biasTraj, d.bo.BiasSnapshot())
		},
	}
	go func() {
		defer close(d.pumpDone)
		pump.Run(d.rec.Stream())
	}()
	d.procs[0] = &nproc{msgs: make(chan nmsg, 4), act: make(chan int, 1)}
	d.procs[1] = &nproc{msgs: make(chan nmsg, 4), act: make(chan int, 1)}
	d.spawnP1()
	d.spawnP2()

	outcome := drive(d, s, cfg)
	d.close()

	res := NativeResult{
		Outcome:        outcome,
		Engine:         info.Name,
		Strategy:       s,
		History:        d.rec.History(),
		TMStats:        tm.Stats(),
		Report:         d.mon.Report(),
		Violation:      d.violation,
		BackoffBias:    d.bo.BiasSnapshot(),
		BiasTrajectory: d.biasTraj,
	}
	return res, nil
}

// opts builds process p's run options: its recorder log as observer,
// the driver's stop channel, and its slot in the shared backoff
// policy.
func (d *NativeDriver) opts(p int) native.RunOpts {
	return native.RunOpts{
		Observer: d.rec.Log(model.Proc(p)),
		Stop:     d.stop,
		Backoff:  d.bo,
		Proc:     p - 1,
	}
}

// spawnP1 starts the victim. Its transaction body is a command loop:
// each granted read happens inside the current attempt, so the
// transaction stays open across grants; actFinish writes last+1 and
// returns nil, handing the attempt to the retry loop's tryCommit. An
// aborted operation returns ErrAborted to the retry loop, which backs
// off and re-enters the body — p1 parks at the gate again, exactly the
// strategies' "on abort, return to Step 1".
func (d *NativeDriver) spawnP1() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		err := d.tm.AtomicallyOpts(d.opts(1), func(tx native.Txn) error {
			var last int64
			hasRead := false
			for {
				act, ok := d.await(0)
				if !ok {
					return errDriverStop
				}
				switch act {
				case actRead:
					v, rerr := tx.Read(int(X))
					d.post(0, nmsg{kind: nReadDone, val: v, aborted: rerr != nil})
					if rerr != nil {
						return rerr
					}
					last, hasRead = v, true
				case actFinish:
					if !hasRead {
						return errDriverStop
					}
					if werr := tx.Write(int(X), last+1); werr != nil {
						return werr
					}
					return nil
				}
			}
		})
		d.post(0, nmsg{kind: nExited, err: err})
	}()
}

// spawnP2 starts the committer. Each grant is one transaction attempt
// (read x, write v+1, hand the attempt to tryCommit); a committed
// transaction posts nCommitted and immediately arms the next
// AtomicallyOpts, whose first attempt parks at the gate again.
func (d *NativeDriver) spawnP2() {
	d.wg.Add(1)
	arm := d.p2arm
	go func() {
		defer d.wg.Done()
		// Hold off the first begin until the strategy reaches Step 2:
		// on a blocking TM an eager begin would race p1 for the lock
		// and wedge Step 1 itself.
		select {
		case <-arm:
		case <-d.stop:
			return
		}
		for {
			err := d.tm.AtomicallyOpts(d.opts(2), func(tx native.Txn) error {
				if _, ok := d.await(1); !ok {
					return errDriverStop
				}
				v, rerr := tx.Read(int(X))
				if rerr != nil {
					return rerr
				}
				return tx.Write(int(X), v+1)
			})
			if err != nil {
				d.post(1, nmsg{kind: nExited, err: err})
				return
			}
			d.post(1, nmsg{kind: nCommitted})
		}
	}()
}

// await parks the calling process at its gate: announce, then wait for
// the driver's action. False means the driver is tearing down.
func (d *NativeDriver) await(i int) (int, bool) {
	select {
	case d.procs[i].msgs <- nmsg{kind: nAtGate}:
	case <-d.stop:
		return 0, false
	}
	select {
	case a := <-d.procs[i].act:
		return a, true
	case <-d.stop:
		return 0, false
	}
}

// post sends one notification, or drops it when the driver already
// stopped listening.
func (d *NativeDriver) post(i int, m nmsg) {
	select {
	case d.procs[i].msgs <- m:
	case <-d.stop:
	}
}

// recv waits for process i+1's next message within the block timeout.
func (d *NativeDriver) recv(i int) (nmsg, bool) {
	t := time.NewTimer(d.cfg.BlockTimeout)
	defer t.Stop()
	select {
	case m := <-d.procs[i].msgs:
		return m, true
	case <-t.C:
		return nmsg{}, false
	}
}

// atGate waits until process i+1 is parked at its gate. False means
// the process is blocked inside the TM (or crashed) — it never reached
// the gate within the budget.
func (d *NativeDriver) atGate(i int) bool {
	p := d.procs[i]
	if p.crashed {
		return false
	}
	if p.atGate {
		p.atGate = false
		return true
	}
	m, ok := d.recv(i)
	return ok && m.kind == nAtGate
}

// Read implements Driver: grant p one read of x inside its open
// transaction.
func (d *NativeDriver) Read(p int) StepResult {
	i := p - 1
	if !d.atGate(i) {
		return StepResult{Blocked: true}
	}
	d.procs[i].act <- actRead
	m, ok := d.recv(i)
	if !ok || m.kind != nReadDone {
		return StepResult{Blocked: true}
	}
	return StepResult{Val: model.Value(m.val), OK: !m.aborted}
}

// Finish implements Driver: grant p its write-and-commit step. The
// value is implicit — p1's body tracked its own last read — so v only
// documents the strategy's intent. OK means AtomicallyOpts returned
// nil: the transaction committed.
func (d *NativeDriver) Finish(p int, v model.Value) StepResult {
	i := p - 1
	if !d.atGate(i) {
		return StepResult{Blocked: true}
	}
	d.procs[i].act <- actFinish
	m, ok := d.recv(i)
	if !ok {
		return StepResult{Blocked: true}
	}
	switch m.kind {
	case nExited:
		return StepResult{OK: m.err == nil}
	case nAtGate:
		// The write or the tryCommit aborted; the retry loop re-entered
		// the body and p is parked at the gate for the next round.
		d.procs[i].atGate = true
		return StepResult{OK: false}
	}
	return StepResult{Blocked: true}
}

// Attempt implements Driver: grant p one whole transaction attempt.
func (d *NativeDriver) Attempt(p int) StepResult {
	i := p - 1
	if i == 1 {
		d.armP2()
	}
	if !d.atGate(i) {
		return StepResult{Blocked: true}
	}
	d.procs[i].act <- actAttempt
	m, ok := d.recv(i)
	if !ok {
		return StepResult{Blocked: true}
	}
	switch m.kind {
	case nCommitted:
		return StepResult{OK: true}
	case nAtGate:
		// The attempt aborted; the retry loop re-entered the body.
		d.procs[i].atGate = true
		return StepResult{OK: false}
	}
	return StepResult{Blocked: true}
}

// Crash implements Driver: p takes no further steps. Whatever its open
// transaction holds stays held — on a blocking TM the crashed process
// wedges everyone else, which is exactly Figure 9's point.
func (d *NativeDriver) Crash(p int) {
	d.procs[p-1].crashed = true
}

// armP2 releases p2's first AtomicallyOpts (idempotent; driver
// goroutine only).
func (d *NativeDriver) armP2() {
	if !d.p2armed {
		d.p2armed = true
		close(d.p2arm)
	}
}

// close tears the run down: release every gated process (their
// attempts abandon, so held locks free and blocked peers drain), wait
// for the goroutines, then flush the stream so the pump's monitor
// report is complete.
func (d *NativeDriver) close() {
	close(d.stop)
	// Drain any in-flight notifications so no process blocks on a full
	// message channel while unwinding (post also selects on stop, but
	// messages sent before the close may still be buffered).
	for _, p := range d.procs {
		for {
			select {
			case <-p.msgs:
				continue
			default:
			}
			break
		}
	}
	d.wg.Wait()
	d.rec.CloseStream()
	<-d.pumpDone
}
