package adversary

import (
	"testing"

	"livetm/internal/model"
	"livetm/internal/safety"
	"livetm/internal/stm"
	"livetm/internal/stm/dstm"
	"livetm/internal/stm/fgptm"
	"livetm/internal/stm/glock"
	"livetm/internal/stm/ostm"
	"livetm/internal/stm/tiny"
	"livetm/internal/stm/tl2"
)

// abortingTMs are the opaque TMs that resolve conflicts by aborting
// (the adversary's Step 2 loop terminates against them).
func abortingTMs() map[string]stm.Factory {
	return map[string]stm.Factory{
		"dstm": func(n, v int) stm.TM { return dstm.New() },
		"tl2":  func(n, v int) stm.TM { return tl2.New() },
		"tiny": func(n, v int) stm.TM { return tiny.New() },
		"ostm": func(n, v int) stm.TM { return ostm.New() },
		"fgp": func(n, v int) stm.TM {
			tm, err := fgptm.New(n, v)
			if err != nil {
				panic(err)
			}
			return tm
		},
	}
}

func glockFactory(n, v int) stm.TM { return glock.New() }

// TestTheorem1Algorithm1 runs Algorithm 1 against every aborting
// opaque TM: p2 commits round after round while p1 never commits —
// the sampled run witnesses the loss of local progress.
func TestTheorem1Algorithm1(t *testing.T) {
	for name, factory := range abortingTMs() {
		t.Run(name, func(t *testing.T) {
			res := Algorithm1(factory, Config{Rounds: 8, Seed: 3})
			if res.P1Committed {
				t.Fatalf("p1 committed against %s: opacity or the strategy is broken\n%s", name, res.History)
			}
			if res.Rounds < 8 {
				t.Fatalf("p2 completed only %d/8 rounds against %s", res.Rounds, name)
			}
			if res.Stats.Commits[2] < 8 {
				t.Errorf("history shows %d p2 commits, want ≥ 8", res.Stats.Commits[2])
			}
			if res.Stats.Commits[1] != 0 {
				t.Errorf("history shows %d p1 commits, want 0", res.Stats.Commits[1])
			}
			// Figure 10: p1 is correct — it receives abort events over
			// and over (here: at least once per completed round batch).
			if res.Stats.Aborts[1] == 0 {
				t.Errorf("p1 received no aborts against %s; it should be starving, not blocked", name)
			}
			if !res.LocalProgressViolated() {
				t.Error("run must witness a local-progress violation")
			}
		})
	}
}

// TestTheorem1Algorithm1Blocking: against the global-lock TM the
// adversary cannot even complete a round — p1's transaction holds the
// lock and p2 blocks forever. Local progress fails by blocking rather
// than by aborting.
func TestTheorem1Algorithm1Blocking(t *testing.T) {
	res := Algorithm1(glockFactory, Config{Rounds: 3, MaxSteps: 3000, Seed: 3})
	if res.P1Committed {
		t.Fatal("p1 cannot commit: it is parked waiting for p2's commit that never comes")
	}
	if res.Rounds != 0 {
		t.Fatalf("p2 completed %d rounds; the global lock should block it", res.Rounds)
	}
	// p2's read invocation is pending forever.
	if !res.Stats.PendingInv[2] {
		t.Error("p2 should be blocked inside its read")
	}
}

// TestFig9CrashVariant: p1 crashes after its read; p2, now running
// alone, keeps committing against crash-resilient TMs.
func TestFig9CrashVariant(t *testing.T) {
	for name, factory := range abortingTMs() {
		t.Run(name, func(t *testing.T) {
			res := Algorithm1(factory, Config{Rounds: 6, Seed: 5, CrashP1AfterRead: true})
			if res.P1Committed {
				t.Fatal("crashed p1 cannot commit")
			}
			if res.Rounds < 6 {
				t.Fatalf("p2 completed %d/6 rounds against %s after p1's crash", res.Rounds, name)
			}
			if res.Stats.Commits[1] != 0 {
				t.Error("crashed p1 must not commit")
			}
		})
	}
}

// TestFig9CrashVariantGlock: the crashed p1 holds the global lock, so
// p2 blocks — the blocking TM fails the crash case differently.
func TestFig9CrashVariantGlock(t *testing.T) {
	res := Algorithm1(glockFactory, Config{Rounds: 3, MaxSteps: 3000, Seed: 5, CrashP1AfterRead: true})
	if res.Rounds != 0 {
		t.Fatalf("p2 completed %d rounds; the crashed lock holder should block it", res.Rounds)
	}
}

// TestTheorem1Algorithm2 mirrors Algorithm 1 for the crash-free case.
func TestTheorem1Algorithm2(t *testing.T) {
	for name, factory := range abortingTMs() {
		t.Run(name, func(t *testing.T) {
			res := Algorithm2(factory, Config{Rounds: 8, Seed: 7})
			if res.P1Committed {
				t.Fatalf("p1 committed against %s\n%s", name, res.History)
			}
			if res.Rounds < 8 {
				t.Fatalf("p2 completed only %d/8 rounds against %s", res.Rounds, name)
			}
			if res.Stats.Commits[1] != 0 {
				t.Error("p1 must never commit")
			}
		})
	}
}

// TestFig12ParasiticVariant: p1 keeps reading without ever attempting
// to commit. TMs with invisible or version-validated reads let p2
// commit forever.
func TestFig12ParasiticVariant(t *testing.T) {
	for name, factory := range abortingTMs() {
		t.Run(name, func(t *testing.T) {
			res := Algorithm2(factory, Config{Rounds: 6, Seed: 9, ParasiticP1: true})
			if res.P1Committed {
				t.Fatal("parasitic p1 never even tries to commit")
			}
			if res.Rounds < 6 {
				t.Fatalf("p2 completed %d/6 rounds against %s with parasitic p1", res.Rounds, name)
			}
			// The parasitic p1 invokes no tryC; it may still receive
			// aborts from the TM (which is fine — the histories of
			// Figure 12 show A events for p2's benefit, not p1's).
			for _, e := range res.History {
				if e.Proc == 1 && e.Kind == model.InvTryCommit {
					t.Fatal("parasitic p1 must never invoke tryC")
				}
			}
		})
	}
}

// TestFig12ParasiticVariantGlock: the parasitic p1 holds the global
// lock forever.
func TestFig12ParasiticVariantGlock(t *testing.T) {
	res := Algorithm2(glockFactory, Config{Rounds: 3, MaxSteps: 3000, Seed: 9, ParasiticP1: true})
	if res.Rounds != 0 {
		t.Fatalf("p2 completed %d rounds; the parasitic lock holder should block it", res.Rounds)
	}
}

// TestAdversaryHistoriesOpaque: the adversary must not trick the TMs
// into safety violations. The full recorded history (hundreds of
// events, beyond the monolithic checker's reach) is verified with the
// segmented checker; the adversary's round structure provides the
// quiescent cuts.
func TestAdversaryHistoriesOpaque(t *testing.T) {
	for name, factory := range abortingTMs() {
		t.Run(name, func(t *testing.T) {
			for _, alg := range []int{1, 2} {
				cfg := Config{Rounds: 6, Seed: 11}
				var res Result
				if alg == 1 {
					res = Algorithm1(factory, cfg)
				} else {
					res = Algorithm2(factory, cfg)
				}
				seg, err := safety.CheckOpacitySegmented(res.History, 16)
				if err != nil {
					t.Fatalf("alg%d: %v (history has %d events)", alg, err, len(res.History))
				}
				if !seg.Holds {
					t.Fatalf("alg%d produced a non-opaque history against %s: %s", alg, name, seg.Reason)
				}
			}
		})
	}
}

// TestLemma1NProcesses: for n = 3..6, n-1 holders plus one committer;
// at most one process makes progress while at least two are correct.
func TestLemma1NProcesses(t *testing.T) {
	for n := 3; n <= 6; n++ {
		for name, factory := range abortingTMs() {
			res := Lemma1(factory, n, Config{Rounds: 5, Seed: uint64(n)})
			if res.P1Committed {
				t.Errorf("n=%d %s: a holder committed after p_n's commits; opacity should forbid the stale update", n, name)
			}
			if res.Rounds < 5 {
				t.Errorf("n=%d %s: p_n completed only %d/5 rounds", n, name, res.Rounds)
			}
			progressing := 0
			for _, c := range res.Stats.Commits {
				if c > 0 {
					progressing++
				}
			}
			if progressing > 1 {
				t.Errorf("n=%d %s: %d processes progressed, want at most 1", n, name, progressing)
			}
		}
	}
}

// TestConfigDefaults exercises the zero-value configuration.
func TestConfigDefaults(t *testing.T) {
	res := Algorithm1(func(n, v int) stm.TM { return dstm.New() }, Config{})
	if res.Rounds == 0 {
		t.Error("default config must complete rounds")
	}
	if res.Steps == 0 {
		t.Error("steps must be counted")
	}
}
