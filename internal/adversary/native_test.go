package adversary

import (
	"testing"
	"time"

	"livetm/internal/model"
	"livetm/internal/native"
	"livetm/internal/safety"
)

// testCfg keeps the native cells fast but flake-free: a small round
// budget, and a block timeout generous enough that a descheduled
// goroutine on a loaded -race runner is not misread as a parked one
// (the handoffs themselves take microseconds; only genuinely blocked
// mutex cells ever pay the full second).
func testCfg() Config {
	return Config{Rounds: 4, MaxSteps: 8000, BlockTimeout: time.Second}
}

func TestStrategyNames(t *testing.T) {
	want := map[string]bool{"alg1": true, "alg1-crash": true, "alg2": true, "alg2-parasitic": true}
	vs := Variants()
	if len(vs) != 4 {
		t.Fatalf("want 4 variants, got %d", len(vs))
	}
	for _, s := range vs {
		if !want[s.Name()] {
			t.Errorf("unexpected variant %q", s.Name())
		}
		if err := s.validate(); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
	for _, bad := range []Strategy{{}, {Algorithm: 3}, {Algorithm: 2, Crash: true}, {Algorithm: 1, Parasitic: true}} {
		if err := bad.validate(); err == nil {
			t.Errorf("strategy %+v must not validate", bad)
		}
	}
}

// TestNativeDriverDichotomy drives every variant against every native
// algorithm: p1 never commits, and the only TM that blocks the
// adversary is the coarse mutex — on every other algorithm p2 commits
// the full round budget while p1 starves.
func TestNativeDriverDichotomy(t *testing.T) {
	cfg := testCfg()
	for _, info := range native.Algorithms() {
		for _, s := range Variants() {
			t.Run(info.Name+"/"+s.Name(), func(t *testing.T) {
				res, err := RunNative(info, s, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.P1Committed {
					t.Fatalf("p1 committed against %s: opacity or the strategy is broken\n%s", info.Name, res.History)
				}
				if res.Violation != nil {
					t.Fatalf("the adversary tricked %s into a safety violation: %v", info.Name, res.Violation)
				}
				if info.Name == "native-mutex" {
					if !res.Blocked {
						t.Error("the mutex TM must block the adversary")
					}
				} else {
					if res.Blocked {
						t.Error("a non-mutex TM must not block the adversary")
					}
					if res.Rounds < cfg.Rounds {
						t.Errorf("p2 completed only %d/%d rounds", res.Rounds, cfg.Rounds)
					}
				}
				if !res.LocalProgressViolated() {
					t.Error("run must witness a local-progress violation")
				}
				iv := res.Report.StarvationIntervals()
				if len(iv[1]) == 0 {
					t.Error("p1 must report a non-empty starvation interval")
				}
			})
		}
	}
}

// TestNativeHistoriesOpaque replays each unblocked cell's recorded
// history through the segmented checker: the adversary must not trick
// the native TMs into safety violations, and the recorded history must
// be independently checkable (not just by the in-flight monitor).
func TestNativeHistoriesOpaque(t *testing.T) {
	cfg := testCfg()
	for _, info := range native.Algorithms() {
		if info.Name == "native-mutex" {
			continue // blocked: three events, nothing to check
		}
		for _, s := range Variants() {
			res, err := RunNative(info, s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			seg, err := safety.CheckOpacitySegmented(res.History, 32)
			if err != nil {
				t.Fatalf("%s/%s: %v (history has %d events)", info.Name, s.Name(), err, len(res.History))
			}
			if !seg.Holds {
				t.Fatalf("%s/%s produced a non-opaque history: %s", info.Name, s.Name(), seg.Reason)
			}
		}
	}
}

// TestNativeParasiticNeverTriesCommit checks the Figure 12 shape on
// the native substrate: the parasitic p1 never invokes tryC.
func TestNativeParasiticNeverTriesCommit(t *testing.T) {
	res, err := RunNative(native.Algorithms()[1], Strategy{Algorithm: 2, Parasitic: true}, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.History {
		if e.Proc == 1 && e.Kind == model.InvTryCommit {
			t.Fatal("parasitic p1 must never invoke tryC")
		}
	}
}

// TestNativeBiasTrajectory: with enough rounds the starvation feedback
// must engage and penalize the hot p2 (positive bias), never the
// starving p1.
func TestNativeBiasTrajectory(t *testing.T) {
	cfg := testCfg()
	cfg.Rounds = 12
	res, err := RunNative(native.Algorithms()[1], Strategy{Algorithm: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BiasTrajectory) == 0 {
		t.Fatal("a 12-round run must cross the rebias cadence at least once")
	}
	for _, snap := range res.BiasTrajectory {
		if len(snap) != 2 {
			t.Fatalf("bias snapshot for 2 procs, got %v", snap)
		}
		if snap[0] > 0 {
			t.Errorf("starving p1 must never be penalized, got bias %d", snap[0])
		}
	}
	last := res.BiasTrajectory[len(res.BiasTrajectory)-1]
	if last[1] <= 0 {
		t.Errorf("hot p2 should end penalized, got bias %d", last[1])
	}
}

// TestMatrixCrossSubstrate runs the full matrix and checks the
// cross-substrate pairing: every native cell is followed by its
// simulated counterpart, the dichotomy holds in every cell, and the
// artifact round-trips.
func TestMatrixCrossSubstrate(t *testing.T) {
	cfg := Config{Rounds: 3, MaxSteps: 6000, BlockTimeout: time.Second}
	cells, err := RunMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(Variants()) * len(native.Algorithms()) * 2; len(cells) != want {
		t.Fatalf("want %d cells, got %d", want, len(cells))
	}
	for i := 0; i < len(cells); i += 2 {
		nat, sim := cells[i], cells[i+1]
		if nat.Substrate != "native" || sim.Substrate != "sim" {
			t.Fatalf("cell pair %d: substrates %s/%s", i, nat.Substrate, sim.Substrate)
		}
		if nat.Algorithm != sim.Algorithm || nat.Strategy != sim.Strategy {
			t.Fatalf("cell pair %d: mismatched (%s,%s) vs (%s,%s)", i, nat.Strategy, nat.Algorithm, sim.Strategy, sim.Algorithm)
		}
		for _, c := range []Cell{nat, sim} {
			if !c.Dichotomy() {
				t.Errorf("%s on %s: p1 committed", c.Strategy, c.Engine)
			}
			if len(c.Starvation["p1"].Intervals) == 0 {
				t.Errorf("%s on %s: empty p1 starvation", c.Strategy, c.Engine)
			}
		}
		// The blocking dichotomy branch must agree across substrates:
		// the mutex blocks on both, the rest starve p1 on both.
		if nat.Blocked != sim.Blocked {
			t.Errorf("%s on %s: native blocked=%v but sim blocked=%v",
				nat.Strategy, nat.Algorithm, nat.Blocked, sim.Blocked)
		}
	}
}

func TestStarvationArtifactRoundTrip(t *testing.T) {
	cfg := Config{Rounds: 2, MaxSteps: 4000, BlockTimeout: time.Second}
	cell, err := NativeCell(native.Algorithms()[1], Strategy{Algorithm: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/starvation.json"
	if err := WriteStarvationArtifact(path, cfg.Rounds, []Cell{cell}); err != nil {
		t.Fatal(err)
	}
	art, err := LoadStarvationArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if art.Schema != StarvationArtifactSchema {
		t.Errorf("schema %q", art.Schema)
	}
	if len(art.Cells) != 1 || art.Cells[0].Engine != cell.Engine || art.Cells[0].Rounds != cell.Rounds {
		t.Errorf("artifact cells did not round-trip: %+v", art.Cells)
	}
}
