package adversary

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"livetm/internal/model"
	"livetm/internal/monitor"
	"livetm/internal/native"
	"livetm/internal/stm"
	"livetm/internal/stm/dstm"
	"livetm/internal/stm/glock"
	"livetm/internal/stm/norec"
	"livetm/internal/stm/tiny"
	"livetm/internal/stm/tl2"
)

// The cross-substrate adversary matrix: every strategy variant against
// every native algorithm and its simulated counterpart, each cell
// harvested into the same starvation metrics so the two substrates
// compare like for like. The mapping pairs each native algorithm with
// the simulated TM it reproduces (mutex with the global-lock TM — both
// are the coarse blocking baseline).

// simCounterpart names a native algorithm's simulated twin: the
// registered sim TM (its core/engine-registry name, so matrix output
// drills straight into `livetm adversary -engine sim-<name>`) and its
// factory.
type simCounterpart struct {
	name    string
	factory stm.Factory
}

// simCounterparts maps the substrate-independent algorithm name to its
// simulated counterpart. The mutex pairs with the global-lock TM —
// both are the coarse blocking baseline — under its registry name
// "glock".
func simCounterparts() map[string]simCounterpart {
	return map[string]simCounterpart{
		"mutex":   {"glock", func(n, v int) stm.TM { return glock.New() }},
		"tl2":     {"tl2", func(n, v int) stm.TM { return tl2.New() }},
		"norec":   {"norec", func(n, v int) stm.TM { return norec.New() }},
		"tinystm": {"tinystm", func(n, v int) stm.TM { return tiny.New() }},
		"dstm":    {"dstm", func(n, v int) stm.TM { return dstm.New() }},
	}
}

// ProcStarvation is one process's starvation figures in one cell, in
// global events.
type ProcStarvation struct {
	// Intervals are the process's starvation intervals: every closed
	// commit gap plus the still-open gap at the end of the run. A
	// process that never committed contributes one interval — the whole
	// run.
	Intervals []int `json:"intervals"`
	// Open is the still-open commit gap at the end of the run.
	Open int `json:"open"`
	// Max is the longest interval.
	Max int `json:"max"`
}

// Cell is one (strategy, engine) cell of the cross-substrate adversary
// matrix.
type Cell struct {
	Strategy  string `json:"strategy"`
	Engine    string `json:"engine"`
	Algorithm string `json:"algorithm"`
	Substrate string `json:"substrate"`
	// Rounds is the number of completed p2 commits; P1Committed must be
	// false against every correct TM, and Blocked marks the cells where
	// the dichotomy's other branch fired (nobody commits).
	Rounds      int  `json:"rounds"`
	P1Committed bool `json:"p1_committed"`
	Blocked     bool `json:"blocked"`
	// Events is the number of recorded events the monitor observed.
	Events int `json:"events"`
	// LivenessClass is the strongest liveness-lattice property the
	// monitor's lasso reading of the cell satisfied.
	LivenessClass string `json:"liveness_class"`
	// Classes maps "p1"/"p2" to the monitor's process classification.
	Classes map[string]string `json:"classes"`
	// RoundsToFirstStarvation counts the p2 commits that preceded p1's
	// first starvation-witnessing abort — how many rounds the adversary
	// needed before the victim visibly starved. -1 when p1 never
	// starved: the crash and blocked cells, where p1 just stops or
	// waits (the single trailing abort a released native p1 records at
	// teardown does not count).
	RoundsToFirstStarvation int `json:"rounds_to_first_starvation"`
	// Starvation holds the per-process interval distributions.
	Starvation map[string]ProcStarvation `json:"starvation"`
	// BackoffBias and BiasTrajectory carry the starvation-aware
	// backoff's final per-process bias and its snapshot at every rebias
	// (native cells only; the simulated substrate has no backoff loop).
	BackoffBias    []int   `json:"backoff_bias,omitempty"`
	BiasTrajectory [][]int `json:"bias_trajectory,omitempty"`
}

// Dichotomy reports whether the cell witnessed the paper's
// no-local-progress dichotomy: p1 never commits, or nobody does.
func (c Cell) Dichotomy() bool {
	return !c.P1Committed
}

// roundsToFirstStarvation counts p2 commit events before p1's first
// starvation-witnessing abort, or -1 when p1 never aborts. An abort
// witnesses starvation only when the strategy observed it and went on
// (p1 has later events) or it ended a commit attempt (a write or tryC
// invocation preceded it): the native driver's teardown abandon also
// records one trailing p1 abort on crash/blocked cells — p1 stopped or
// waited, it did not starve — and that artifact must not count, or the
// native cells would disagree with their simulated twins.
func roundsToFirstStarvation(h model.History) int {
	commits := 0
	attempted := false // p1 invoked a write or tryC before this point
	lastP1 := -1
	for i, e := range h {
		if e.Proc == 1 {
			lastP1 = i
		}
	}
	for i, e := range h {
		switch {
		case e.Proc == 1 && e.Kind == model.RespAbort:
			if attempted || i < lastP1 {
				return commits
			}
		case e.Proc == 1 && (e.Kind == model.InvWrite || e.Kind == model.InvTryCommit):
			attempted = true
		case e.Proc == 2 && e.Kind == model.RespCommit:
			commits++
		}
	}
	return -1
}

// harvest folds a monitor report and outcome into one matrix cell.
func harvest(strategy Strategy, engineName, algorithm, substrate string, o Outcome, h model.History, rep monitor.Report) Cell {
	cell := Cell{
		Strategy:                strategy.Name(),
		Engine:                  engineName,
		Algorithm:               algorithm,
		Substrate:               substrate,
		Rounds:                  o.Rounds,
		P1Committed:             o.P1Committed,
		Blocked:                 o.Blocked,
		Events:                  rep.Events,
		LivenessClass:           rep.LivenessClass(),
		Classes:                 make(map[string]string, len(rep.Procs)),
		RoundsToFirstStarvation: roundsToFirstStarvation(h),
		Starvation:              make(map[string]ProcStarvation, len(rep.Procs)),
	}
	intervals := rep.StarvationIntervals()
	for _, p := range rep.Procs {
		key := fmt.Sprintf("p%d", p.Proc)
		cell.Classes[key] = p.Class
		iv := intervals[p.Proc]
		max := 0
		for _, g := range iv {
			if g > max {
				max = g
			}
		}
		cell.Starvation[key] = ProcStarvation{Intervals: iv, Open: p.OpenGap, Max: max}
	}
	return cell
}

// NativeCell runs one strategy against one native algorithm and
// harvests the cell.
func NativeCell(info native.Info, s Strategy, cfg Config) (Cell, error) {
	res, err := RunNative(info, s, cfg)
	if err != nil {
		return Cell{}, err
	}
	if res.Violation != nil {
		return Cell{}, fmt.Errorf("adversary: %s under %s violated safety: %w", info.Name, s.Name(), res.Violation)
	}
	algorithm := strings.TrimPrefix(info.Name, "native-")
	return harvest(s, info.Name, algorithm, "native", res.Outcome, res.History, res.Report), nil
}

// SimCell runs one strategy against one simulated TM and harvests the
// cell through the same monitor pipeline, so the two substrates report
// identical metrics.
func SimCell(name string, factory stm.Factory, s Strategy, cfg Config) (Cell, error) {
	cfg = cfg.withDefaults()
	if err := s.validate(); err != nil {
		return Cell{}, err
	}
	res := NewSimDriver(factory, cfg).Run(s)
	mon, err := monitor.New(monitor.Config{
		Procs:      []model.Proc{1, 2},
		Approx:     true,
		RecordGaps: true,
	})
	if err != nil {
		return Cell{}, err
	}
	// The simulated histories are deterministic and complete, so the
	// monitor replays them event by event — the same accounting the
	// native pump performs live. A terminal safety error would mean the
	// simulated TM is broken; surface it.
	if err := mon.ObserveHistory(res.History); err != nil {
		return Cell{}, fmt.Errorf("adversary: sim-%s under %s violated safety: %w", name, s.Name(), err)
	}
	return harvest(s, "sim-"+name, name, "sim", res.Outcome, res.History, mon.Report()), nil
}

// RunMatrix runs every strategy variant against every native algorithm
// and its simulated counterpart, returning the cells grouped by
// algorithm (native cell, then sim cell) so the cross-substrate
// comparison reads side by side.
func RunMatrix(cfg Config) ([]Cell, error) {
	sims := simCounterparts()
	var out []Cell
	for _, s := range Variants() {
		for _, info := range native.Algorithms() {
			cell, err := NativeCell(info, s, cfg)
			if err != nil {
				return out, err
			}
			out = append(out, cell)
			algorithm := strings.TrimPrefix(info.Name, "native-")
			sc, ok := sims[algorithm]
			if !ok {
				// The matrix's contract is strict native/sim pairing —
				// consumers index the cells two at a time — so a native
				// algorithm without a registered counterpart must fail
				// loudly, not skip silently.
				return out, fmt.Errorf("adversary: no simulated counterpart registered for %s", info.Name)
			}
			simCell, err := SimCell(sc.name, sc.factory, s, cfg)
			if err != nil {
				return out, err
			}
			// The pairing key across substrates is the native algorithm
			// name, even where the sim twin is registered differently
			// (mutex ↔ glock); Engine keeps the registry name so the
			// table drills into `livetm adversary -engine sim-<name>`.
			simCell.Algorithm = algorithm
			out = append(out, simCell)
		}
	}
	return out, nil
}

// StarvationArtifactSchema versions the starvation-comparison artifact
// written alongside BENCH_native.json.
const StarvationArtifactSchema = "livetm/adversary-starvation/v1"

// StarvationArtifact is the machine-readable cross-substrate
// starvation comparison.
type StarvationArtifact struct {
	Schema string `json:"schema"`
	Rounds int    `json:"rounds"`
	Cells  []Cell `json:"cells"`
}

// WriteStarvationArtifact writes the matrix cells and the round budget
// they were measured under as a JSON artifact.
func WriteStarvationArtifact(path string, rounds int, cells []Cell) error {
	data, err := json.MarshalIndent(StarvationArtifact{
		Schema: StarvationArtifactSchema,
		Rounds: rounds,
		Cells:  cells,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadStarvationArtifact reads an artifact back, verifying the schema.
func LoadStarvationArtifact(path string) (StarvationArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return StarvationArtifact{}, err
	}
	var art StarvationArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		return StarvationArtifact{}, fmt.Errorf("adversary: malformed starvation artifact %s: %w", path, err)
	}
	if art.Schema != StarvationArtifactSchema {
		return StarvationArtifact{}, fmt.Errorf("adversary: artifact %s has schema %q, want %q", path, art.Schema, StarvationArtifactSchema)
	}
	return art, nil
}

// FormatCells renders the matrix cells as an aligned text table.
func FormatCells(cells []Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-16s %7s %8s %8s %7s %9s %-16s %s\n",
		"strategy", "engine", "rounds", "p1-cmt", "blocked", "events", "starve@", "liveness", "p1-starvation")
	for _, c := range cells {
		starve := "-"
		if c.RoundsToFirstStarvation >= 0 {
			starve = fmt.Sprintf("%d", c.RoundsToFirstStarvation)
		}
		p1 := c.Starvation["p1"]
		b.WriteString(fmt.Sprintf("%-16s %-16s %7d %8v %8v %7d %9s %-16s max=%d n=%d\n",
			c.Strategy, c.Engine, c.Rounds, c.P1Committed, c.Blocked, c.Events,
			starve, c.LivenessClass, p1.Max, len(p1.Intervals)))
	}
	return b.String()
}
