package adversary

import (
	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

// simCmd is one pending action for a simulated process.
type simCmd int

const (
	simIdle simCmd = iota
	simRead
	simFinish
	simAttempt
)

// SimDriver drives the strategies on the simulated substrate: the two
// processes run as command loops under the deterministic cooperative
// scheduler, and each Driver action steps the scheduler until the
// commanded process posts its result or the step budget runs out
// (Blocked). All strategy state lives in the driver; the process
// bodies only execute the granted operation, so there are no data
// races under the cooperative scheduler.
type SimDriver struct {
	cfg Config
	s   *sim.Scheduler
	rec *stm.Recorder

	cmd [2]simCmd      // pending command per process (index p-1)
	arg [2]model.Value // Finish's read value
	res [2]*StepResult // posted result, nil while pending
}

// NewSimDriver creates a driver running a fresh TM from the factory
// under a scheduler seeded from cfg.
func NewSimDriver(factory stm.Factory, cfg Config) *SimDriver {
	cfg = cfg.withDefaults()
	d := &SimDriver{
		cfg: cfg,
		s:   sim.New(sim.NewSeeded(cfg.Seed)),
		rec: stm.NewRecorder(factory(2, 1)),
	}
	d.spawn(1)
	d.spawn(2)
	return d
}

// spawn installs process p's command loop.
func (d *SimDriver) spawn(p int) {
	i := p - 1
	_ = d.s.Spawn(model.Proc(p), func(env *sim.Env) {
		for {
			for d.cmd[i] == simIdle {
				env.Yield()
			}
			c := d.cmd[i]
			d.cmd[i] = simIdle
			switch c {
			case simRead:
				v, st := d.rec.Read(env, X)
				d.res[i] = &StepResult{Val: v, OK: st == stm.OK}
			case simFinish:
				ok := false
				if d.rec.Write(env, X, d.arg[i]+1) == stm.OK {
					ok = d.rec.TryCommit(env) == stm.OK
				}
				d.res[i] = &StepResult{OK: ok}
			case simAttempt:
				res := StepResult{}
				if v, st := d.rec.Read(env, X); st == stm.OK {
					if d.rec.Write(env, X, v+1) == stm.OK {
						res.OK = d.rec.TryCommit(env) == stm.OK
					}
				}
				d.res[i] = &res
			}
		}
	})
}

// issue posts a command for p and steps the scheduler until the result
// lands or the global step budget is exhausted (Blocked).
func (d *SimDriver) issue(p int, c simCmd, arg model.Value) StepResult {
	i := p - 1
	d.cmd[i], d.arg[i], d.res[i] = c, arg, nil
	for d.res[i] == nil && d.s.Steps() < d.cfg.MaxSteps {
		if !d.s.Step() {
			break
		}
	}
	if d.res[i] == nil {
		return StepResult{Blocked: true}
	}
	return *d.res[i]
}

// Read implements Driver.
func (d *SimDriver) Read(p int) StepResult { return d.issue(p, simRead, 0) }

// Finish implements Driver.
func (d *SimDriver) Finish(p int, v model.Value) StepResult { return d.issue(p, simFinish, v) }

// Attempt implements Driver.
func (d *SimDriver) Attempt(p int) StepResult { return d.issue(p, simAttempt, 0) }

// Crash implements Driver.
func (d *SimDriver) Crash(p int) { d.s.Crash(model.Proc(p)) }

// Run executes strategy s and assembles the simulated result.
func (d *SimDriver) Run(s Strategy) Result {
	defer d.s.Close()
	o := drive(d, s, d.cfg)
	h := d.rec.History()
	return Result{
		Outcome: o,
		History: h,
		Stats:   stm.Summarize(h),
		Steps:   d.s.Steps(),
	}
}
