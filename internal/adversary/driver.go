package adversary

import (
	"fmt"

	"livetm/internal/model"
)

// Strategy selects one of the paper's environment strategies and its
// fault variant. The zero value is invalid; use Variants or set
// Algorithm explicitly.
type Strategy struct {
	// Algorithm is 1 (§4, the strategy used in parasitic-free systems)
	// or 2 (§5, the strategy used in crash-free systems).
	Algorithm int
	// Crash crashes p1 right after its first successful read — the
	// Figure 9 variant of Algorithm 1.
	Crash bool
	// Parasitic makes p1 keep reading forever, never attempting to
	// commit — the Figure 12 variant of Algorithm 2.
	Parasitic bool
}

// Name returns the strategy's report name: "alg1", "alg1-crash",
// "alg2" or "alg2-parasitic".
func (s Strategy) Name() string {
	name := fmt.Sprintf("alg%d", s.Algorithm)
	if s.Crash {
		name += "-crash"
	}
	if s.Parasitic {
		name += "-parasitic"
	}
	return name
}

func (s Strategy) validate() error {
	if s.Algorithm != 1 && s.Algorithm != 2 {
		return fmt.Errorf("adversary: algorithm must be 1 or 2, got %d", s.Algorithm)
	}
	if s.Crash && s.Algorithm != 1 {
		return fmt.Errorf("adversary: the crash variant (Figure 9) belongs to Algorithm 1")
	}
	if s.Parasitic && s.Algorithm != 2 {
		return fmt.Errorf("adversary: the parasitic variant (Figure 12) belongs to Algorithm 2")
	}
	return nil
}

// Variants returns the four strategy variants of the paper's figures:
// Algorithm 1 plain (Figure 10) and with the p1 crash (Figure 9),
// Algorithm 2 plain (Figure 13) and with the parasitic p1 (Figure 12).
func Variants() []Strategy {
	return []Strategy{
		{Algorithm: 1},
		{Algorithm: 1, Crash: true},
		{Algorithm: 2},
		{Algorithm: 2, Parasitic: true},
	}
}

// StepResult is the outcome of one driver action.
type StepResult struct {
	// Val is the value a successful read returned.
	Val model.Value
	// OK reports the action succeeded: the read returned a value, the
	// transaction committed. False means the operation (or the attempt
	// it belonged to) aborted.
	OK bool
	// Blocked reports the substrate exhausted its budget — scheduler
	// steps on the simulated substrate, the block timeout on the native
	// one — with the action still pending: the TM blocked the process.
	Blocked bool
}

// Driver runs the strategies' per-process actions on one substrate.
// The strategy logic (drive) is substrate-agnostic; the simulated
// backend steps the cooperative scheduler under each call, the native
// backend gates two real goroutines through the linearization-point
// hooks. Process indices are 1 (the victim) and 2 (the committer).
type Driver interface {
	// Read lets process p issue one read of x in its open transaction,
	// beginning one if none is open, and reports the response.
	Read(p int) StepResult
	// Finish lets p write v+1 — v being its last read value — and try
	// to commit its open transaction. OK means the commit succeeded.
	Finish(p int, v model.Value) StepResult
	// Attempt lets p run one whole transaction attempt — read x, write
	// the value plus one, try to commit — and reports the outcome.
	Attempt(p int) StepResult
	// Crash removes p from the run: it takes no further steps, and
	// whatever it holds (an open transaction, a lock) stays held.
	Crash(p int)
}

// Outcome is the substrate-independent result of one adversary run.
type Outcome struct {
	// Rounds is the number of completed p2 commits.
	Rounds int
	// P1Committed reports whether p1 ever committed. Against an opaque
	// TM this must be false (Theorem 1); true means the run found a
	// safety violation.
	P1Committed bool
	// Blocked reports the TM blocked the adversary: some action never
	// completed within the substrate budget, so from that point on
	// nobody commits.
	Blocked bool
}

// LocalProgressViolated reports whether the sampled run is consistent
// with a violation of local progress: p1 never committed. (In the
// infinite continuation p1 is correct — it is aborted or retries
// forever, or everyone blocks — yet pending.)
func (o Outcome) LocalProgressViolated() bool { return !o.P1Committed }

// Drive executes strategy s against driver d for up to cfg.Rounds p2
// commits, validating the strategy and applying the config defaults
// first. It is the exported entry point for Driver implementations
// living outside this package (the network driver of
// internal/adversary/netadv); the in-package substrates call drive
// directly.
func Drive(d Driver, s Strategy, cfg Config) (Outcome, error) {
	cfg = cfg.withDefaults()
	if err := s.validate(); err != nil {
		return Outcome{}, err
	}
	return drive(d, s, cfg), nil
}

// drive executes strategy s against driver d for up to cfg.Rounds p2
// commits. It is the one copy of Algorithms 1 and 2: both substrates
// run exactly this loop.
func drive(d Driver, s Strategy, cfg Config) Outcome {
	var o Outcome
	crashed := false
	for o.Rounds < cfg.Rounds && !o.P1Committed {
		// Step 1 (both algorithms): p1 reads x.
		var read StepResult
		if !crashed {
			read = d.Read(1)
			if read.Blocked {
				o.Blocked = true
				return o
			}
		}
		if s.Algorithm == 1 {
			if s.Crash && read.OK && !crashed {
				d.Crash(1)
				crashed = true
			}
			// Step 2: p2 reads x, writes v+1 and tries to commit,
			// repeated until the commit succeeds.
			for {
				a := d.Attempt(2)
				if a.Blocked {
					o.Blocked = true
					return o
				}
				if a.OK {
					break
				}
			}
			o.Rounds++
			// Step 3: if p1's read succeeded, p1 writes v+1 and tries
			// to commit; on any abort the algorithm returns to Step 1.
			if !crashed && read.OK {
				f := d.Finish(1, read.Val)
				if f.Blocked {
					o.Blocked = true
					return o
				}
				o.P1Committed = f.OK
			}
		} else {
			// Algorithm 2, Step 1 continued: p2 makes one attempt; if
			// it aborts, Step 1 repeats (p1 reads again).
			a := d.Attempt(2)
			if a.Blocked {
				o.Blocked = true
				return o
			}
			if !a.OK {
				continue
			}
			o.Rounds++
			if s.Parasitic {
				continue // p1 never takes Step 2: it only ever reads
			}
			// Step 2: if p1's last response was a value, p1 writes v+1
			// and tries to commit; any abort goes back to Step 1.
			if read.OK {
				f := d.Finish(1, read.Val)
				if f.Blocked {
					o.Blocked = true
					return o
				}
				o.P1Committed = f.OK
			}
		}
	}
	return o
}
