package netadv

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"livetm/internal/adversary"
	"livetm/internal/client"
	"livetm/internal/engine"
	"livetm/internal/model"
	"livetm/internal/server"
)

// startNetTM serves a fresh live native session over loopback: the
// environment the network adversary attacks. Quiescent cuts are
// disabled — the strategies hold transactions open across round
// trips, which would stall a cut's rendezvous (see server docs).
func startNetTM(t *testing.T, engineName string) (*server.Server, *client.Client) {
	t.Helper()
	sess, err := engine.Open(engine.SessionConfig{
		Engine:       engineName,
		Workers:      2,
		Vars:         1,
		Live:         true,
		QuiesceEvery: -1,
	})
	if err != nil {
		t.Fatalf("open session: %v", err)
	}
	srv := server.New(sess, server.Config{
		Info: server.InfoResponse{Engine: engineName, Workers: 2, Vars: 1, Live: true},
	})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, _ = srv.Drain(ctx)
		hs.Close()
	})
	return srv, client.New(client.Config{Addr: hs.URL, Name: "adversary"})
}

// TestNetworkAdversaryDichotomy reproduces the paper's no-local-
// progress dichotomy with the adversary running as a network client:
// over the wire, against an opaque TM, p2 commits every round while
// p1 never does — and the served session's own monitor measures p1's
// starvation at the protocol boundary.
func TestNetworkAdversaryDichotomy(t *testing.T) {
	if testing.Short() {
		t.Skip("network adversary runs are round-trip heavy")
	}
	for _, s := range []adversary.Strategy{{Algorithm: 1}, {Algorithm: 2, Parasitic: true}} {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			_, c := startNetTM(t, "native-tl2")
			cfg := adversary.Config{Rounds: 6, BlockTimeout: 5 * time.Second}
			outcome, err := RunNetwork(c, s, cfg)
			if err != nil {
				t.Fatalf("RunNetwork: %v", err)
			}
			if outcome.Blocked {
				t.Fatalf("adversary blocked: %+v", outcome)
			}
			if outcome.P1Committed {
				t.Fatalf("p1 committed against an opaque TM: %+v", outcome)
			}
			if outcome.Rounds != cfg.Rounds {
				t.Fatalf("p2 committed %d rounds, want %d", outcome.Rounds, cfg.Rounds)
			}
			if !outcome.LocalProgressViolated() {
				t.Fatalf("local progress not violated: %+v", outcome)
			}

			// Drain through the same wire the adversary used: the final
			// report must show p1 (worker 0 records as Proc 1) starving
			// while p2 progressed.
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			dr, err := c.Drain(ctx)
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
			if dr.Report == nil {
				t.Fatalf("drain returned no monitor report")
			}
			intervals := dr.Report.StarvationIntervals()
			if len(intervals[model.Proc(1)]) == 0 {
				t.Fatalf("p1 starvation intervals empty: %+v", intervals)
			}
			var p1, p2 *struct {
				commits uint64
				class   string
			}
			for _, pr := range dr.Report.Procs {
				v := struct {
					commits uint64
					class   string
				}{pr.Commits, pr.Class}
				switch pr.Proc {
				case 1:
					p1 = &v
				case 2:
					p2 = &v
				}
			}
			if p1 == nil || p2 == nil {
				t.Fatalf("report procs incomplete: %+v", dr.Report.Procs)
			}
			if p1.commits != 0 {
				t.Fatalf("p1 commits = %d, want 0", p1.commits)
			}
			if p2.commits == 0 {
				t.Fatalf("p2 never committed in the monitored stream")
			}
		})
	}
}

// TestNetworkAdversaryCrash runs the Figure 9 variant over the wire:
// p1 crashes after its first read, its transaction stays open
// server-side, and p2 — on an obstruction-free TM — keeps committing
// anyway.
func TestNetworkAdversaryCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("network adversary runs are round-trip heavy")
	}
	_, c := startNetTM(t, "native-tl2")
	cfg := adversary.Config{Rounds: 4, BlockTimeout: 5 * time.Second}
	outcome, err := RunNetwork(c, adversary.Strategy{Algorithm: 1, Crash: true}, cfg)
	if err != nil {
		t.Fatalf("RunNetwork: %v", err)
	}
	if outcome.Blocked || outcome.P1Committed {
		t.Fatalf("unexpected outcome: %+v", outcome)
	}
	if outcome.Rounds != cfg.Rounds {
		t.Fatalf("p2 committed %d rounds, want %d", outcome.Rounds, cfg.Rounds)
	}
}
