// Package netadv runs the adversary strategies of internal/adversary
// as network clients: the same Driver contract, but every strategy
// step is one or more wire round trips through internal/client
// against a served session. It lives outside internal/adversary only
// to break the import cycle adversary -> client -> engine -> core ->
// adversary.
package netadv

import (
	"context"
	"time"

	"livetm/internal/adversary"
	"livetm/internal/client"
	"livetm/internal/model"
	"livetm/internal/server"
)

// NetDriver drives the strategies through the wire API: p1 and p2 are
// network clients holding interactive transactions open across
// requests against a served session (internal/server). Every strategy
// step is one or more round trips, so the starvation the strategies
// manufacture is measured at the protocol boundary — where a
// production user would feel it — instead of next to the TM.
//
// The mapping onto the gate semantics of NativeDriver is one-to-one:
// an aborted wire op leaves the transaction open (the engine's retry
// loop re-entered the body server-side, the next op lands on the
// fresh attempt), a Retrying finish is a failed commit with the
// transaction still open, and a wire call that exceeds BlockTimeout
// is the substrate blocking the process.
type NetDriver struct {
	c   *client.Client
	cfg adversary.Config

	txs     [2]*client.Tx
	crashed [2]bool
}

// ctx returns one action's budget.
func (d *NetDriver) ctx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d.cfg.BlockTimeout)
}

// tx returns process p's open interactive transaction, beginning one
// pinned to worker p-1 if none is open.
func (d *NetDriver) tx(ctx context.Context, p int) (*client.Tx, bool) {
	i := p - 1
	if d.txs[i] == nil {
		tx, err := d.c.Begin(ctx, i)
		if err != nil {
			return nil, false
		}
		d.txs[i] = tx
	}
	return d.txs[i], true
}

// Read implements Driver: one read of x inside p's open transaction.
func (d *NetDriver) Read(p int) adversary.StepResult {
	if d.crashed[p-1] {
		return adversary.StepResult{Blocked: true}
	}
	ctx, cancel := d.ctx()
	defer cancel()
	tx, ok := d.tx(ctx, p)
	if !ok {
		return adversary.StepResult{Blocked: true}
	}
	v, aborted, err := tx.Read(ctx, int(adversary.X))
	if err != nil {
		return adversary.StepResult{Blocked: true}
	}
	return adversary.StepResult{Val: model.Value(v), OK: !aborted}
}

// Finish implements Driver: p writes v+1 and hands its open attempt
// to the commit path. OK false with no block means the attempt
// aborted (on the write or the commit) and the transaction is open
// again — the strategies' "on abort, return to Step 1".
func (d *NetDriver) Finish(p int, v model.Value) adversary.StepResult {
	i := p - 1
	if d.crashed[i] || d.txs[i] == nil {
		return adversary.StepResult{Blocked: true}
	}
	ctx, cancel := d.ctx()
	defer cancel()
	tx := d.txs[i]
	aborted, err := tx.Write(ctx, int(adversary.X), int64(v)+1)
	if err != nil {
		return adversary.StepResult{Blocked: true}
	}
	if aborted {
		return adversary.StepResult{OK: false}
	}
	fin, err := tx.Finish(ctx, server.FinishCommit)
	if err != nil {
		return adversary.StepResult{Blocked: true}
	}
	if fin.Retrying {
		return adversary.StepResult{OK: false}
	}
	d.txs[i] = nil
	return adversary.StepResult{OK: fin.Committed}
}

// Attempt implements Driver: one whole transaction attempt — read x,
// write the value plus one, try to commit.
func (d *NetDriver) Attempt(p int) adversary.StepResult {
	i := p - 1
	if d.crashed[i] {
		return adversary.StepResult{Blocked: true}
	}
	ctx, cancel := d.ctx()
	defer cancel()
	tx, ok := d.tx(ctx, p)
	if !ok {
		return adversary.StepResult{Blocked: true}
	}
	v, aborted, err := tx.Read(ctx, int(adversary.X))
	if err != nil {
		return adversary.StepResult{Blocked: true}
	}
	if aborted {
		return adversary.StepResult{OK: false}
	}
	aborted, err = tx.Write(ctx, int(adversary.X), v+1)
	if err != nil {
		return adversary.StepResult{Blocked: true}
	}
	if aborted {
		return adversary.StepResult{OK: false}
	}
	fin, err := tx.Finish(ctx, server.FinishCommit)
	if err != nil {
		return adversary.StepResult{Blocked: true}
	}
	if fin.Retrying {
		return adversary.StepResult{OK: false}
	}
	d.txs[i] = nil
	return adversary.StepResult{OK: fin.Committed}
}

// Crash implements Driver: p takes no further steps and its open
// transaction stays open server-side, holding whatever it holds.
func (d *NetDriver) Crash(p int) {
	d.crashed[p-1] = true
}

// close abandons whatever transactions are still open — including a
// crashed process's, mirroring NativeDriver's teardown, so the served
// session can drain.
func (d *NetDriver) close() {
	for i, tx := range d.txs {
		if tx == nil {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = tx.Abandon(ctx)
		cancel()
		d.txs[i] = nil
	}
}

// RunNetwork runs strategy s against a served session through c: the
// adversary as a pair of network clients. The outcome carries the
// substrate-independent figures; the final monitor report — with the
// starvation intervals measured over the same run — comes from
// draining the server afterwards (client.Drain or the serve process's
// SIGTERM handler). The served session should disable quiescent cuts
// (SessionConfig.QuiesceEvery = -1): the strategies hold transactions
// open across round trips, which would stall a cut's rendezvous.
func RunNetwork(c *client.Client, s adversary.Strategy, cfg adversary.Config) (adversary.Outcome, error) {
	d := &NetDriver{c: c, cfg: cfg.WithDefaults()}
	outcome, err := adversary.Drive(d, s, cfg)
	d.close()
	return outcome, err
}
