// Package adversary implements the environment strategies from the
// impossibility proofs of the paper (§4, §5): Algorithm 1 (used in
// parasitic-free systems), Algorithm 2 (used in crash-free systems),
// their crash/parasitic variants (Figures 9, 10, 12, 13), and the
// n-process generalization behind Lemma 1.
//
// The strategies drive two (or n) processes against an arbitrary TM
// through the operational interface. Against any TM that ensures
// opacity, process p1 can never commit (the would-be terminating
// history — Figures 8 and 11 — is not opaque), so every run witnesses
// a violation of local progress: either p1 starves while p2 commits
// forever, or the TM blocks and nobody commits — which violates local
// progress too.
package adversary

import (
	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

// X is the single t-variable the strategies use.
const X = model.TVar(0)

// Config parameterizes an adversary run.
type Config struct {
	// Rounds is the number of p2 commits after which the run stops
	// (the adversary could go on forever; a run is a finite sample of
	// the infinite history).
	Rounds int
	// MaxSteps bounds the scheduler steps so runs against blocking
	// TMs terminate.
	MaxSteps int
	// Seed drives the scheduler for the phases where both processes
	// are runnable.
	Seed uint64
	// CrashP1AfterRead crashes p1 right after its first successful
	// Step-1 read (the Figure 9 variant of Algorithm 1).
	CrashP1AfterRead bool
	// ParasiticP1 makes p1 keep reading forever, never attempting to
	// commit and ignoring its scheduled write/commit turns (the
	// Figure 12 variant of Algorithm 2).
	ParasiticP1 bool
}

func (c Config) withDefaults() Config {
	if c.Rounds == 0 {
		c.Rounds = 20
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 20000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result reports what the adversary achieved.
type Result struct {
	// History is the recorded history of the run.
	History model.History
	// Stats summarizes commits/aborts per process.
	Stats stm.Stats
	// Rounds is the number of completed p2 commits.
	Rounds int
	// P1Committed reports whether p1 ever committed. Against an
	// opaque TM this must be false (Theorem 1); true means the run
	// found a safety violation.
	P1Committed bool
	// Steps is the number of scheduler steps consumed.
	Steps int
}

// LocalProgressViolated reports whether the sampled run is consistent
// with a violation of local progress: p1 never committed. (In the
// infinite continuation p1 is correct — it is aborted or retries
// forever — yet pending.)
func (r Result) LocalProgressViolated() bool { return !r.P1Committed }

// Algorithm1 runs the parasitic-free-case strategy (§4, Algorithm 1)
// against a fresh TM from the factory:
//
//	Step 1: p1 reads x (response v1 or A1).
//	Step 2: p2 reads x, writes v+1, tries to commit — repeated until
//	        the commit succeeds.
//	Step 3: if p1's read succeeded, p1 writes v+1 and tries to
//	        commit; on any abort the algorithm returns to Step 1.
//
// With CrashP1AfterRead, p1 crashes after its first successful read
// and only Step 2 repeats forever (Figure 9); otherwise p1 is
// aborted infinitely often (Figure 10).
func Algorithm1(factory stm.Factory, cfg Config) Result {
	cfg = cfg.withDefaults()
	rec := stm.NewRecorder(factory(2, 1))
	s := sim.New(sim.NewSeeded(cfg.Seed))
	defer s.Close()

	// Shared state of the strategy state machine. All accesses happen
	// under the cooperative scheduler, so there are no data races.
	const (
		phaseP1Read = iota + 1
		phaseP2Commit
		phaseP1Finish
	)
	phase := phaseP1Read
	var (
		p1Val       model.Value
		p1HasRead   bool
		rounds      int
		p1Committed bool
	)

	_ = s.Spawn(1, func(env *sim.Env) {
		for {
			for phase != phaseP1Read {
				env.Yield()
			}
			v, st := rec.Read(env, X)
			p1Val, p1HasRead = v, st == stm.OK
			phase = phaseP2Commit
			if cfg.CrashP1AfterRead && p1HasRead {
				// Figure 9: p1 stops taking steps forever. The crash
				// is effected by the driver below; from p1's side we
				// just stop issuing operations.
				for {
					env.Yield()
				}
			}
			for phase != phaseP1Finish {
				env.Yield()
			}
			if p1HasRead {
				if rec.Write(env, X, p1Val+1) == stm.OK {
					if rec.TryCommit(env) == stm.OK {
						p1Committed = true
						phase = phaseP1Read
						return
					}
				}
			}
			phase = phaseP1Read
		}
	})
	_ = s.Spawn(2, func(env *sim.Env) {
		for {
			for phase != phaseP2Commit {
				env.Yield()
			}
			v, st := rec.Read(env, X)
			if st != stm.OK {
				continue
			}
			if rec.Write(env, X, v+1) != stm.OK {
				continue
			}
			if rec.TryCommit(env) != stm.OK {
				continue
			}
			rounds++
			phase = phaseP1Finish
		}
	})

	for s.Steps() < cfg.MaxSteps && rounds < cfg.Rounds && !p1Committed {
		if cfg.CrashP1AfterRead {
			if phase != phaseP1Read && !s.Crashed(1) {
				s.Crash(1)
			}
			// With p1 crashed, Step 3 never happens: p2 runs alone,
			// round after round (Figure 9's suffix).
			if s.Crashed(1) && phase != phaseP2Commit {
				phase = phaseP2Commit
			}
		}
		if !s.Step() {
			break
		}
	}
	return result(rec, rounds, p1Committed, s.Steps())
}

// Algorithm2 runs the crash-free-case strategy (§4, Algorithm 2):
//
//	Step 1: p1 reads x; then p2 reads x, writes v+1, and tries to
//	        commit. Step 1 repeats until p2's commit succeeds.
//	Step 2: if p1's last response was a value, p1 writes v+1 and
//	        tries to commit; any abort goes back to Step 1.
//
// With ParasiticP1, p1 never takes Step 2: it keeps reading forever
// without attempting to commit (Figure 12); otherwise p1 is aborted
// infinitely often (Figure 13).
func Algorithm2(factory stm.Factory, cfg Config) Result {
	cfg = cfg.withDefaults()
	rec := stm.NewRecorder(factory(2, 1))
	s := sim.New(sim.NewSeeded(cfg.Seed))
	defer s.Close()

	const (
		phaseP1Read = iota + 1
		phaseP2Try
		phaseP1Finish
	)
	phase := phaseP1Read
	var (
		p1Val       model.Value
		p1HasRead   bool
		rounds      int
		p1Committed bool
	)

	_ = s.Spawn(1, func(env *sim.Env) {
		for {
			for phase != phaseP1Read {
				env.Yield()
			}
			v, st := rec.Read(env, X)
			p1Val, p1HasRead = v, st == stm.OK
			phase = phaseP2Try
			if cfg.ParasiticP1 {
				continue // never attempt Step 2: parasitic
			}
			for phase != phaseP1Finish && phase != phaseP1Read {
				env.Yield()
			}
			if phase != phaseP1Finish {
				continue // p2 did not commit this round; read again
			}
			if p1HasRead {
				if rec.Write(env, X, p1Val+1) == stm.OK {
					if rec.TryCommit(env) == stm.OK {
						p1Committed = true
						phase = phaseP1Read
						return
					}
				}
			}
			phase = phaseP1Read
		}
	})
	_ = s.Spawn(2, func(env *sim.Env) {
		for {
			for phase != phaseP2Try {
				env.Yield()
			}
			v, st := rec.Read(env, X)
			if st != stm.OK {
				phase = phaseP1Read
				continue
			}
			if rec.Write(env, X, v+1) != stm.OK {
				phase = phaseP1Read
				continue
			}
			if rec.TryCommit(env) != stm.OK {
				phase = phaseP1Read
				continue
			}
			rounds++
			if cfg.ParasiticP1 {
				phase = phaseP1Read
			} else {
				phase = phaseP1Finish
			}
		}
	})

	for s.Steps() < cfg.MaxSteps && rounds < cfg.Rounds && !p1Committed {
		if !s.Step() {
			break
		}
	}
	return result(rec, rounds, p1Committed, s.Steps())
}

// Lemma1 runs the n-process generalization: processes 1..n-1 each
// start a transaction with a read and then hold it; process n commits
// transactions forever; afterwards each holder tries to finish its
// transaction. At most one process (p_n) makes progress.
func Lemma1(factory stm.Factory, n int, cfg Config) Result {
	cfg = cfg.withDefaults()
	rec := stm.NewRecorder(factory(n, 1))
	s := sim.New(sim.NewSeeded(cfg.Seed))
	defer s.Close()

	var (
		holdersReady int
		holdersDone  int
		rounds       int
		anyHolderC   bool
		finish       bool
	)
	for i := 1; i < n; i++ {
		p := model.Proc(i)
		_ = s.Spawn(p, func(env *sim.Env) {
			defer func() { holdersDone++ }()
			v, st := rec.Read(env, X)
			holdersReady++
			for !finish {
				env.Yield()
			}
			if st != stm.OK {
				return
			}
			if rec.Write(env, X, v+1) != stm.OK {
				return
			}
			if rec.TryCommit(env) == stm.OK {
				anyHolderC = true
			}
		})
	}
	_ = s.Spawn(model.Proc(n), func(env *sim.Env) {
		for {
			for holdersReady < n-1 {
				env.Yield()
			}
			v, st := rec.Read(env, X)
			if st != stm.OK {
				continue
			}
			if rec.Write(env, X, v+1) != stm.OK {
				continue
			}
			if rec.TryCommit(env) != stm.OK {
				continue
			}
			rounds++
		}
	})

	for s.Steps() < cfg.MaxSteps && rounds < cfg.Rounds {
		if !s.Step() {
			break
		}
	}
	finish = true
	for s.Steps() < 2*cfg.MaxSteps && !anyHolderC && holdersDone < n-1 {
		if !s.Step() {
			break
		}
	}
	return result(rec, rounds, anyHolderC, s.Steps())
}

func result(rec *stm.Recorder, rounds int, p1Committed bool, steps int) Result {
	h := rec.History()
	return Result{
		History:     h,
		Stats:       stm.Summarize(h),
		Rounds:      rounds,
		P1Committed: p1Committed,
		Steps:       steps,
	}
}
