// Package adversary implements the environment strategies from the
// impossibility proofs of the paper (§4, §5): Algorithm 1 (used in
// parasitic-free systems), Algorithm 2 (used in crash-free systems),
// their crash/parasitic variants (Figures 9, 10, 12, 13), and the
// n-process generalization behind Lemma 1.
//
// The strategies drive two (or n) processes against an arbitrary TM
// through the operational interface. Against any TM that ensures
// opacity, process p1 can never commit (the would-be terminating
// history — Figures 8 and 11 — is not opaque), so every run witnesses
// a violation of local progress: either p1 starves while p2 commits
// forever, or the TM blocks and nobody commits — which violates local
// progress too.
//
// The strategy logic is substrate-agnostic: drive executes Algorithms
// 1 and 2 once, against the Driver interface, and two backends supply
// the per-process actions. SimDriver steps the two processes under the
// deterministic cooperative scheduler of internal/sim (the original
// proof-checking vehicle, kept reproducible by seed). NativeDriver
// gates two real goroutines through internal/native's
// linearization-point hooks (RunOpts{Observer, Stop, Backoff, Proc}),
// streams the recorded events through the online monitor while the run
// executes, and harvests per-process starvation intervals, liveness
// classes and the backoff-bias trajectory — so the same strategies
// that prove the impossibility also measure how the five
// production-style native TMs starve in real concurrency, and RunMatrix
// compares the two substrates cell by cell.
package adversary

import (
	"time"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

// X is the single t-variable the strategies use.
const X = model.TVar(0)

// Config parameterizes an adversary run.
type Config struct {
	// Rounds is the number of p2 commits after which the run stops
	// (the adversary could go on forever; a run is a finite sample of
	// the infinite history).
	Rounds int
	// MaxSteps bounds the scheduler steps so simulated runs against
	// blocking TMs terminate. The default scales with Rounds (2000
	// steps per round, at least 20000) so a long run does not exhaust
	// the budget mid-matrix and misreport a live TM as blocking.
	MaxSteps int
	// Seed drives the simulated scheduler for the phases where both
	// processes are runnable (ignored by the native driver, whose
	// interleavings come from the hardware).
	Seed uint64
	// BlockTimeout is the native driver's per-action budget: an action
	// still pending after it reports Blocked — the TM parked a process,
	// which on this substrate only a wall clock can detect. Defaults to
	// 500ms (generous: a gated handoff takes microseconds, so the
	// timeout only has to outlast scheduler stalls on loaded machines);
	// the simulated driver uses MaxSteps instead.
	BlockTimeout time.Duration
	// CrashP1AfterRead crashes p1 right after its first successful
	// Step-1 read (the Figure 9 variant of Algorithm 1).
	CrashP1AfterRead bool
	// ParasiticP1 makes p1 keep reading forever, never attempting to
	// commit and ignoring its scheduled write/commit turns (the
	// Figure 12 variant of Algorithm 2).
	ParasiticP1 bool
}

// WithDefaults returns the config with the documented defaults
// filled in — for out-of-package Driver implementations that hold a
// copy of the config (Drive applies the same defaults internally).
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Rounds == 0 {
		c.Rounds = 20
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 2000 * c.Rounds
		if c.MaxSteps < 20000 {
			c.MaxSteps = 20000
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BlockTimeout == 0 {
		c.BlockTimeout = 500 * time.Millisecond
	}
	return c
}

// strategy derives the Strategy the legacy Config flags select for the
// given algorithm.
func (c Config) strategy(alg int) Strategy {
	return Strategy{Algorithm: alg, Crash: c.CrashP1AfterRead, Parasitic: c.ParasiticP1}
}

// Result reports what the adversary achieved on the simulated
// substrate.
type Result struct {
	// Outcome carries the substrate-independent figures: Rounds,
	// P1Committed, Blocked.
	Outcome
	// History is the recorded history of the run.
	History model.History
	// Stats summarizes commits/aborts per process.
	Stats stm.Stats
	// Steps is the number of scheduler steps consumed.
	Steps int
}

// Algorithm1 runs the parasitic-free-case strategy (§4, Algorithm 1)
// against a fresh TM from the factory:
//
//	Step 1: p1 reads x (response v1 or A1).
//	Step 2: p2 reads x, writes v+1, tries to commit — repeated until
//	        the commit succeeds.
//	Step 3: if p1's read succeeded, p1 writes v+1 and tries to
//	        commit; on any abort the algorithm returns to Step 1.
//
// With CrashP1AfterRead, p1 crashes after its first successful read
// and only Step 2 repeats forever (Figure 9); otherwise p1 is
// aborted infinitely often (Figure 10).
func Algorithm1(factory stm.Factory, cfg Config) Result {
	cfg = cfg.withDefaults()
	return NewSimDriver(factory, cfg).Run(cfg.strategy(1))
}

// Algorithm2 runs the crash-free-case strategy (§4, Algorithm 2):
//
//	Step 1: p1 reads x; then p2 reads x, writes v+1, and tries to
//	        commit. Step 1 repeats until p2's commit succeeds.
//	Step 2: if p1's last response was a value, p1 writes v+1 and
//	        tries to commit; any abort goes back to Step 1.
//
// With ParasiticP1, p1 never takes Step 2: it keeps reading forever
// without attempting to commit (Figure 12); otherwise p1 is aborted
// infinitely often (Figure 13).
func Algorithm2(factory stm.Factory, cfg Config) Result {
	cfg = cfg.withDefaults()
	return NewSimDriver(factory, cfg).Run(cfg.strategy(2))
}

// Lemma1 runs the n-process generalization: processes 1..n-1 each
// start a transaction with a read and then hold it; process n commits
// transactions forever; afterwards each holder tries to finish its
// transaction. At most one process (p_n) makes progress. It stays on
// the simulated substrate — the point is the counting argument, not
// the schedule.
func Lemma1(factory stm.Factory, n int, cfg Config) Result {
	cfg = cfg.withDefaults()
	rec := stm.NewRecorder(factory(n, 1))
	s := sim.New(sim.NewSeeded(cfg.Seed))
	defer s.Close()

	var (
		holdersReady int
		holdersDone  int
		rounds       int
		anyHolderC   bool
		finish       bool
	)
	for i := 1; i < n; i++ {
		p := model.Proc(i)
		_ = s.Spawn(p, func(env *sim.Env) {
			defer func() { holdersDone++ }()
			v, st := rec.Read(env, X)
			holdersReady++
			for !finish {
				env.Yield()
			}
			if st != stm.OK {
				return
			}
			if rec.Write(env, X, v+1) != stm.OK {
				return
			}
			if rec.TryCommit(env) == stm.OK {
				anyHolderC = true
			}
		})
	}
	_ = s.Spawn(model.Proc(n), func(env *sim.Env) {
		for {
			for holdersReady < n-1 {
				env.Yield()
			}
			v, st := rec.Read(env, X)
			if st != stm.OK {
				continue
			}
			if rec.Write(env, X, v+1) != stm.OK {
				continue
			}
			if rec.TryCommit(env) != stm.OK {
				continue
			}
			rounds++
		}
	})

	for s.Steps() < cfg.MaxSteps && rounds < cfg.Rounds {
		if !s.Step() {
			break
		}
	}
	finish = true
	for s.Steps() < 2*cfg.MaxSteps && !anyHolderC && holdersDone < n-1 {
		if !s.Step() {
			break
		}
	}
	h := rec.History()
	return Result{
		Outcome: Outcome{Rounds: rounds, P1Committed: anyHolderC},
		History: h,
		Stats:   stm.Summarize(h),
		Steps:   s.Steps(),
	}
}
