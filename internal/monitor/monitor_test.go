package monitor

import (
	"errors"
	"strings"
	"testing"

	"livetm/internal/model"
	"livetm/internal/safety"
)

// increments builds n sequential committed increments of variable 0
// by process p, starting from value v0.
func increments(b *model.Builder, p model.Proc, v0 model.Value, n int) model.Value {
	for i := 0; i < n; i++ {
		b.Read(p, 0, v0).Write(p, 0, v0+1).Commit(p)
		v0++
	}
	return v0
}

func TestMonitorCleanRun(t *testing.T) {
	m, err := New(Config{SegmentTxns: 4, TailWindow: 64})
	if err != nil {
		t.Fatal(err)
	}
	b := model.NewBuilder()
	v := increments(b, 1, 0, 10)
	v = increments(b, 2, v, 10)
	increments(b, 1, v, 10)
	if err := m.ObserveHistory(b.History()); err != nil {
		t.Fatal(err)
	}
	r := m.Report()
	if !r.Checked || !r.Opacity.Holds {
		t.Fatalf("clean run not opaque: %+v", r.Opacity)
	}
	if r.Opacity.Segments < 3 {
		t.Errorf("segments = %d, want streaming segmentation", r.Opacity.Segments)
	}
	if len(r.Procs) != 2 {
		t.Fatalf("procs = %d, want 2", len(r.Procs))
	}
	for _, p := range r.Procs {
		if p.Class != "progressing" && p.Class != "crashed" {
			// p2's commits may all sit before a small window; with 64
			// events of window both procs commit within it.
			t.Errorf("p%d class = %s", p.Proc, p.Class)
		}
	}
	if r.Procs[0].Commits != 20 || r.Procs[1].Commits != 10 {
		t.Errorf("commit counts = %d/%d, want 20/10", r.Procs[0].Commits, r.Procs[1].Commits)
	}
	for _, vd := range r.Verdicts {
		if !vd.Holds {
			t.Errorf("%s = false on a fully progressing run", vd.Property)
		}
	}
	if !strings.Contains(r.Format(), "opaque=true") {
		t.Errorf("Format lacks the opacity line:\n%s", r.Format())
	}
}

func TestMonitorViolationSurfacesOnline(t *testing.T) {
	m, err := New(Config{SegmentTxns: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := model.NewBuilder()
	v := increments(b, 1, 0, 6)
	b.Read(2, 0, 0).Commit(2) // stale: v committed values later
	increments(b, 1, v, 6)
	h := b.History()
	var obsErr error
	for _, e := range h {
		if obsErr = m.Observe(e); obsErr != nil {
			break
		}
	}
	if !errors.Is(obsErr, safety.ErrStreamNotOpaque) {
		t.Fatalf("err = %v, want ErrStreamNotOpaque", obsErr)
	}
	if m.Events() == len(h) {
		t.Error("violation only surfaced after the entire history")
	}
	r := m.Report()
	if !r.Checked || r.Opacity.Holds {
		t.Fatalf("report must carry the violation: %+v", r.Opacity)
	}
	if r.Opacity.Reason == "" {
		t.Error("violation must carry a reason")
	}
}

// TestMonitorClassification builds a run whose tail window exhibits
// every fault class of the paper's lattice: p1 progresses, p2 crashed
// before the window, p3 is parasitic (operations, never tryC), p4
// starves (keeps aborting).
func TestMonitorClassification(t *testing.T) {
	m, err := New(Config{SegmentTxns: 8, TailWindow: 24})
	if err != nil {
		t.Fatal(err)
	}
	b := model.NewBuilder()
	v := increments(b, 2, 0, 4) // p2 is active, then falls silent
	for i := 0; i < 6; i++ {
		v = increments(b, 1, v, 1)     // p1 commits
		b.Read(3, 1, 0)                // p3 reads, never tries to commit
		b.Read(4, 0, v).CommitAbort(4) // p4 tries and aborts
	}
	// p3's transaction stays live forever, so the safety half is
	// starved of quiescent cuts — the liveness half must keep
	// accounting regardless.
	if err := m.ObserveHistory(b.History()); !errors.Is(err, safety.ErrNoQuiescentCut) {
		t.Fatalf("err = %v, want ErrNoQuiescentCut (parasitic transaction never closes)", err)
	}
	r := m.Report()
	if r.Checked {
		t.Error("safety verdict must be undecided under a never-closing transaction")
	}
	want := map[model.Proc]string{1: "progressing", 2: "crashed", 3: "parasitic", 4: "starving"}
	for _, p := range r.Procs {
		if p.Class != want[p.Proc] {
			t.Errorf("p%d class = %s, want %s", p.Proc, p.Class, want[p.Proc])
		}
	}
	verdicts := map[string]bool{}
	for _, vd := range r.Verdicts {
		verdicts[vd.Property] = vd.Holds
	}
	// p4 is correct yet pending: local progress fails; p1 progresses:
	// global progress holds; nobody runs alone: solo holds vacuously.
	if verdicts["local progress"] {
		t.Error("local progress must fail with a starving process")
	}
	if !verdicts["global progress"] {
		t.Error("global progress must hold: p1 commits in the window")
	}
	if !verdicts["solo progress"] {
		t.Error("solo progress holds vacuously")
	}
}

func TestMonitorStarvationAccounting(t *testing.T) {
	m, err := New(Config{SegmentTxns: 8})
	if err != nil {
		t.Fatal(err)
	}
	b := model.NewBuilder()
	v := increments(b, 1, 0, 1) // p1 commits early (6 events)
	for i := 0; i < 10; i++ {   // then 40 events of p2 activity
		v = increments(b, 2, v, 1)
	}
	increments(b, 1, v, 1) // p1 commits again
	if err := m.ObserveHistory(b.History()); err != nil {
		t.Fatal(err)
	}
	r := m.Report()
	p1 := r.Procs[0]
	if p1.Proc != 1 || p1.Commits != 2 {
		t.Fatalf("p1 accounting off: %+v", p1)
	}
	// The gap between p1's two commits spans p2's 40 events plus p1's
	// own second transaction.
	if p1.MaxStarvation < 40 {
		t.Errorf("p1 MaxStarvation = %d, want >= 40", p1.MaxStarvation)
	}
	p2 := r.Procs[1]
	if p2.MaxStarvation >= p1.MaxStarvation {
		t.Errorf("p2 starved (%d) no less than p1 (%d)?", p2.MaxStarvation, p1.MaxStarvation)
	}
}

// TestMonitorCutStarvation: a run the streaming checker cannot cut is
// reported as undecided, not as a verdict.
func TestMonitorCutStarvation(t *testing.T) {
	m, err := New(Config{SegmentTxns: 2})
	if err != nil {
		t.Fatal(err)
	}
	var h model.History
	for p := model.Proc(1); p <= 5; p++ {
		h = append(h, model.Read(p, 0), model.ValueResp(p, 0))
	}
	for p := model.Proc(1); p <= 5; p++ {
		h = append(h, model.TryCommit(p), model.Commit(p))
	}
	err = m.ObserveHistory(h)
	if !errors.Is(err, safety.ErrNoQuiescentCut) {
		t.Fatalf("err = %v, want ErrNoQuiescentCut", err)
	}
	r := m.Report()
	if r.Checked {
		t.Fatal("cut-starved run must be reported as undecided")
	}
	if !strings.Contains(r.Format(), "not decided") {
		t.Errorf("Format must flag the undecided verdict:\n%s", r.Format())
	}
	if len(r.Procs) != 5 {
		t.Errorf("progress accounting must still cover all procs: %d", len(r.Procs))
	}
}

func TestMonitorEmpty(t *testing.T) {
	m, err := New(Config{Procs: []model.Proc{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	r := m.Report()
	if !r.Checked || !r.Opacity.Holds {
		t.Errorf("empty run is trivially opaque: %+v", r.Opacity)
	}
	if len(r.Verdicts) != 0 {
		t.Errorf("no events: no lasso reading, got %v", r.Verdicts)
	}
	if len(r.Procs) != 2 {
		t.Errorf("declared procs must appear in the report: %d", len(r.Procs))
	}
}

// TestMonitorApproxFallback: with Approx the cut-starved run of
// TestMonitorClassification gets an explicit approximate verdict
// instead of being undecided.
func TestMonitorApproxFallback(t *testing.T) {
	m, err := New(Config{SegmentTxns: 2, Approx: true})
	if err != nil {
		t.Fatal(err)
	}
	b := model.NewBuilder()
	b.Raw(model.Read(3, 1), model.ValueResp(3, 0)) // stays open forever
	v := model.Value(0)
	for i := 0; i < 12; i++ {
		v = increments(b, 1, v, 1)
	}
	if err := m.ObserveHistory(b.History()); err != nil {
		t.Fatalf("approx monitor refused: %v", err)
	}
	r := m.Report()
	if !r.Checked {
		t.Fatalf("approx fallback must decide: %+v", r.Opacity)
	}
	if !r.Opacity.Holds || !r.Opacity.Approx || r.Opacity.ForcedCuts == 0 {
		t.Fatalf("want an approximate holding verdict, got %+v", r.Opacity)
	}
	if !strings.Contains(r.Format(), "approximate") {
		t.Errorf("Format must flag the approximate verdict:\n%s", r.Format())
	}
}

// TestMonitorStarvationNow: the instantaneous commit gap grows for a
// silent process and resets on a commit — the feedback signal for
// starvation-aware backoff.
func TestMonitorStarvationNow(t *testing.T) {
	m, err := New(Config{SegmentTxns: 8, Procs: []model.Proc{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	b := model.NewBuilder()
	v := increments(b, 1, 0, 4) // 24 events, p2 silent
	if err := m.ObserveHistory(b.History()); err != nil {
		t.Fatal(err)
	}
	now := m.StarvationNow(2)
	if now[1] != m.Events() {
		t.Errorf("silent p2 gap = %d, want %d", now[1], m.Events())
	}
	if now[0] >= now[1] {
		t.Errorf("committing p1 gap (%d) not below silent p2 (%d)", now[0], now[1])
	}
	b2 := model.NewBuilder()
	increments(b2, 2, v, 1)
	if err := m.ObserveHistory(b2.History()); err != nil {
		t.Fatal(err)
	}
	after := m.StarvationNow(2)
	if after[1] >= now[1] {
		t.Errorf("p2 gap did not reset on commit: %d -> %d", now[1], after[1])
	}
}

// TestReportLivenessClass: the class is the strongest holding verdict.
func TestReportLivenessClass(t *testing.T) {
	r := Report{Verdicts: []Verdict{
		{Property: "local progress", Holds: false},
		{Property: "2-progress", Holds: false},
		{Property: "global progress", Holds: true},
		{Property: "solo progress", Holds: true},
	}}
	if got := r.LivenessClass(); got != "global progress" {
		t.Errorf("class = %q, want %q", got, "global progress")
	}
	if got := (Report{}).LivenessClass(); got != "none" {
		t.Errorf("empty class = %q, want none", got)
	}
}
