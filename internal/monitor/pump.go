package monitor

import (
	"livetm/internal/model"
	"livetm/internal/record"
)

// Pump drains a recorder's live stream into a Monitor while the run
// executes: it restores the recorded total order from the stream's
// per-process batches (record.Resequencer) and feeds each event to
// Monitor.Observe on the pump's goroutine, so the monitor needs no
// locking. It is the shared consumer half of live monitoring — the
// engine's native adapter and the adversary's native driver both run
// one.
//
// A terminal safety error fires OnViolation exactly once; the pump
// then keeps draining (so no producer stays blocked on a full channel)
// and keeps the progress accounting current, but stops the rebias
// feedback — a violated run is being torn down, not tuned.
type Pump struct {
	// Mon is the monitor every restored event is fed to.
	Mon *Monitor
	// Procs is the run's process count, sizing the starvation snapshot
	// handed to Rebias.
	Procs int
	// OnViolation, when non-nil, is called once with the first terminal
	// error Observe returns (the mid-flight stop hook).
	OnViolation func(error)
	// RebiasEvery is how often, in observed events, the measured
	// starvation is fed back through Rebias (0 = no feedback).
	RebiasEvery int
	// Rebias receives Monitor.StarvationNow snapshots on the feedback
	// cadence (nil = no feedback).
	Rebias func(starvation []int)
}

// Run consumes the stream until it closes. Call it on a dedicated
// goroutine and close the recorder's stream (Recorder.CloseStream)
// once the producers quiesced; Run returning is the signal that the
// monitor absorbed every event and may be asked to Report.
func (p *Pump) Run(stream <-chan []record.Streamed) {
	rs := record.NewResequencer()
	observed := 0
	violated := false
	for batch := range stream {
		rs.Push(batch, func(ev model.Event) {
			observed++
			err := p.Mon.Observe(ev)
			if err != nil && !violated {
				violated = true
				if p.OnViolation != nil {
					p.OnViolation(err)
				}
			}
			if !violated && p.RebiasEvery > 0 && p.Rebias != nil && observed%p.RebiasEvery == 0 {
				p.Rebias(p.Mon.StarvationNow(p.Procs))
			}
		})
	}
}
