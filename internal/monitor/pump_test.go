package monitor

import (
	"errors"
	"testing"

	"livetm/internal/model"
	"livetm/internal/record"
	"livetm/internal/safety"
)

// committedTxn is one whole committed increment transaction of p.
func committedTxn(p model.Proc, from model.Value) []model.Event {
	return []model.Event{
		model.Read(p, 0), model.ValueResp(p, from),
		model.Write(p, 0, from+1), model.OK(p),
		model.TryCommit(p), model.Commit(p),
	}
}

// TestPumpFeedsMonitorInOrder streams two processes' interleaved logs
// through a recorder and pump: the monitor must see every event, in
// the stamped total order, and report per-process progress.
func TestPumpFeedsMonitorInOrder(t *testing.T) {
	rec := record.NewWithOptions(2, record.Options{StreamCapacity: 64})
	mon, err := New(Config{Procs: []model.Proc{1, 2}, RecordGaps: true})
	if err != nil {
		t.Fatal(err)
	}
	pump := &Pump{Mon: mon, Procs: 2}
	done := make(chan struct{})
	go func() {
		defer close(done)
		pump.Run(rec.Stream())
	}()
	logs := []*record.ProcLog{rec.Log(1), rec.Log(2)}
	for round := 0; round < 8; round++ {
		p := round % 2
		l := logs[p]
		l.ReadInv(0)
		l.ReadReturn(0, int64(round), false)
		l.WriteInv(0, int64(round+1))
		l.WriteReturn(0, int64(round+1), false)
		l.TryCommitInv()
		l.TryCommitReturn(true)
	}
	rec.CloseStream()
	<-done
	rep := mon.Report()
	if rep.Events != 48 {
		t.Fatalf("monitor observed %d events, want 48", rep.Events)
	}
	for _, p := range rep.Procs {
		if p.Commits != 4 {
			t.Errorf("p%d commits = %d, want 4", p.Proc, p.Commits)
		}
		if len(p.CommitGaps) != 4 {
			t.Errorf("p%d recorded %d gaps, want 4", p.Proc, len(p.CommitGaps))
		}
	}
}

// TestPumpViolationFiresOnce: the first terminal safety error invokes
// OnViolation exactly once, and the pump keeps draining afterwards so
// producers never block.
func TestPumpViolationFiresOnce(t *testing.T) {
	rec := record.NewWithOptions(1, record.Options{StreamCapacity: 64})
	mon, err := New(Config{Procs: []model.Proc{1}})
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	var got error
	pump := &Pump{Mon: mon, Procs: 1, OnViolation: func(err error) { fired++; got = err }}
	done := make(chan struct{})
	go func() {
		defer close(done)
		pump.Run(rec.Stream())
	}()
	l := rec.Log(1)
	// A committed transaction that reads a value nobody ever wrote:
	// not opaque at the first quiescent cut.
	l.ReadInv(0)
	l.ReadReturn(0, 41, false)
	l.TryCommitInv()
	l.TryCommitReturn(true)
	// More traffic after the violation: the pump must keep draining.
	for i := 0; i < 4; i++ {
		l.ReadInv(0)
		l.ReadReturn(0, 41, false)
		l.TryCommitInv()
		l.TryCommitReturn(true)
	}
	rec.CloseStream()
	<-done
	if fired != 1 {
		t.Fatalf("OnViolation fired %d times, want 1", fired)
	}
	if !errors.Is(got, safety.ErrStreamNotOpaque) {
		t.Fatalf("violation = %v, want ErrStreamNotOpaque", got)
	}
	if mon.Events() != 20 {
		t.Fatalf("monitor observed %d events, want all 20", mon.Events())
	}
}

// TestStarvationIntervals: closed gaps plus the open tail, and a
// never-committing process contributes exactly one whole-run interval.
func TestStarvationIntervals(t *testing.T) {
	mon, err := New(Config{Procs: []model.Proc{1, 2}, RecordGaps: true})
	if err != nil {
		t.Fatal(err)
	}
	var h model.History
	h = append(h, committedTxn(2, 0)...)
	h = append(h, committedTxn(2, 1)...)
	h = append(h, model.Read(1, 0), model.Abort(1)) // p1 only ever aborts
	if err := mon.ObserveHistory(h); err != nil {
		t.Fatal(err)
	}
	rep := mon.Report()
	iv := rep.StarvationIntervals()
	if len(iv[1]) != 1 || iv[1][0] != rep.Events {
		t.Errorf("starving p1 must report one whole-run interval, got %v (events=%d)", iv[1], rep.Events)
	}
	if len(iv[2]) != 3 { // two closed gaps + open tail
		t.Errorf("p2 intervals = %v, want 3 entries", iv[2])
	}
}
