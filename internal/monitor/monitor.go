// Package monitor is the online counterpart of the offline checkers:
// it consumes a history one event at a time — live from a recording
// run or replayed from a trace file — and maintains both halves of the
// paper's story simultaneously:
//
//   - Safety: a streaming opacity check (safety.StreamChecker), which
//     propagates feasible committed snapshots across quiescent cuts so
//     memory stays bounded no matter how long the run is.
//   - Liveness: per-process progress accounting (commits, aborts,
//     declined commits, starvation intervals) plus a classification of
//     the observed run against the paper's liveness lattice. The
//     classifier reads the run as an eventually-periodic history whose
//     cycle is the tail window of recent events — exactly the lasso
//     reading `livetm classify` applies to finite traces, kept
//     incremental here.
//
// An opacity violation is terminal and surfaces from Observe as soon
// as the failing segment is checked; progress accounting keeps its
// figures per process so a starving or wedged process is visible while
// the run is still going.
package monitor

import (
	"errors"
	"fmt"
	"strings"

	"livetm/internal/liveness"
	"livetm/internal/model"
	"livetm/internal/safety"
)

// Config sizes a monitor.
type Config struct {
	// SegmentTxns is the per-segment transaction budget of the
	// streaming opacity check (default 10, max 64).
	SegmentTxns int
	// TailWindow is how many recent events form the lasso cycle for
	// liveness classification (default 256).
	TailWindow int
	// Procs optionally fixes the process set P of the system. Processes
	// that never produce an event still count (the paper fixes P up
	// front); nil defaults to the processes observed.
	Procs []model.Proc
	// Approx enables the streaming checker's bounded-overlap fallback:
	// a cut-starved stream degrades to an explicit approximate verdict
	// (Report.Opacity.Approx) at forced serialization frontiers instead
	// of failing with ErrNoQuiescentCut. Live monitoring sets it — a
	// run must not die because its schedule never quiesced.
	Approx bool
	// RecordGaps retains every process's closed commit gaps
	// (ProcProgress.CommitGaps) instead of only the maximum, so a run's
	// starvation-interval distribution can be reported. Off by default:
	// a long run would retain one int per commit.
	RecordGaps bool
	// Shards fans the streaming opacity check out over a partition of
	// the keyspace: one checker lane per shard, merged across shards
	// only for spanning transactions (safety.ShardedChecker). 0 or 1
	// keeps the single StreamChecker.
	Shards int
	// VarShard assigns each variable to a shard in [0, Shards).
	// Required when Shards > 1.
	VarShard func(model.TVar) int
	// ProcShard assigns each process's home shard, used for
	// transactions that complete without an operation. Nil means
	// shard 0.
	ProcShard func(model.Proc) int
	// CheckerMetrics, when non-nil, wires live telemetry through the
	// streaming checker: per-lane segment/forced/relaxed counters and
	// backlog gauges that a scraper can read mid-run without touching
	// checker-owned state. A single-checker monitor uses Lanes[0]. Nil
	// leaves the checker on bare instruments (no registry, same cost).
	CheckerMetrics *safety.CheckerMetrics
}

func (c Config) withDefaults() Config {
	if c.SegmentTxns <= 0 {
		c.SegmentTxns = 10
	}
	if c.TailWindow <= 0 {
		c.TailWindow = 256
	}
	return c
}

// ProcProgress is one process's online accounting.
type ProcProgress struct {
	Proc model.Proc
	// Commits, Aborts and Ops count commit events, abort events and
	// operation invocations (reads, writes, tryCommits).
	Commits uint64
	Aborts  uint64
	Ops     uint64
	// LastCommitAt is the global event index of the last commit event,
	// -1 before the first.
	LastCommitAt int
	// MaxStarvation is the longest interval, in global events, the
	// process has been active without landing a commit: the largest
	// gap between consecutive commits, counting the still-open gap at
	// the end of the run.
	MaxStarvation int
	// CommitGaps holds every closed commit gap in arrival order when
	// Config.RecordGaps is set: the global-event distance between
	// consecutive commits (the first entry counts from the start of the
	// run). Nil otherwise.
	CommitGaps []int
	// OpenGap is the still-open commit gap at the end of the run, set
	// when the report is assembled: global events since the process's
	// last commit, or since the run began if it never committed.
	OpenGap int

	firstEvent *model.Event // first observed event, for the lasso prefix
	activeFrom int          // global index the current commit gap started at
}

// starvation returns the process's current starvation figure at
// global event index now.
func (p *ProcProgress) starvation(now int) int {
	gap := now - p.activeFrom
	if gap > p.MaxStarvation {
		return gap
	}
	return p.MaxStarvation
}

// streamChecker is the slice of the streaming checkers the monitor
// drives: the single safety.StreamChecker or the fanned-out
// safety.ShardedChecker.
type streamChecker interface {
	Feed(model.Event) error
	Finish() (safety.SegmentedResult, error)
}

// Monitor consumes events incrementally. Not safe for concurrent use;
// feed it from one goroutine (histories are totally ordered anyway).
type Monitor struct {
	cfg     Config
	checker streamChecker
	events  int
	procs   map[model.Proc]*ProcProgress
	window  []model.Event // ring buffer of the last TailWindow events
	wnext   int           // next ring slot
	wfull   bool
	safeErr error // terminal opacity/structure error from the checker
}

// New creates a monitor.
func New(cfg Config) (*Monitor, error) {
	cfg = cfg.withDefaults()
	var checker streamChecker
	if cfg.Shards > 1 {
		sc, err := safety.NewShardedChecker(safety.ShardConfig{
			Shards:      cfg.Shards,
			SegmentTxns: cfg.SegmentTxns,
			VarShard:    cfg.VarShard,
			ProcShard:   cfg.ProcShard,
			Approx:      cfg.Approx,
			Metrics:     cfg.CheckerMetrics,
		})
		if err != nil {
			return nil, err
		}
		checker = sc
	} else {
		sc, err := safety.NewStreamChecker(cfg.SegmentTxns)
		if err != nil {
			return nil, err
		}
		if cfg.Approx {
			sc.WithApproxFallback()
		}
		if cm := cfg.CheckerMetrics; cm != nil && len(cm.Lanes) > 0 {
			sc.WithTelemetry(cm.Lanes[0])
		}
		checker = sc
	}
	m := &Monitor{
		cfg:     cfg,
		checker: checker,
		procs:   make(map[model.Proc]*ProcProgress),
		window:  make([]model.Event, 0, cfg.TailWindow),
	}
	for _, p := range cfg.Procs {
		m.progress(p)
	}
	return m, nil
}

func (m *Monitor) progress(p model.Proc) *ProcProgress {
	pp := m.procs[p]
	if pp == nil {
		pp = &ProcProgress{Proc: p, LastCommitAt: -1}
		m.procs[p] = pp
	}
	return pp
}

// Observe consumes one event. A non-nil error is terminal: the history
// violated opacity (errors.Is safety.ErrStreamNotOpaque), starved the
// streaming checker of quiescent cuts, or was malformed. Progress
// accounting still absorbs the event either way.
func (m *Monitor) Observe(e model.Event) error {
	pp := m.progress(e.Proc)
	if pp.firstEvent == nil {
		ev := e
		pp.firstEvent = &ev
	}
	switch e.Kind {
	case model.RespCommit:
		pp.Commits++
		gap := m.events - pp.activeFrom
		if gap > pp.MaxStarvation {
			pp.MaxStarvation = gap
		}
		if m.cfg.RecordGaps {
			pp.CommitGaps = append(pp.CommitGaps, gap)
		}
		pp.LastCommitAt = m.events
		pp.activeFrom = m.events
	case model.RespAbort:
		pp.Aborts++
	default:
		if e.Kind.IsInvocation() {
			pp.Ops++
		}
	}
	if len(m.window) < m.cfg.TailWindow {
		m.window = append(m.window, e)
	} else {
		m.window[m.wnext] = e
		m.wfull = true
	}
	m.wnext = (m.wnext + 1) % m.cfg.TailWindow
	m.events++

	if m.safeErr != nil {
		return m.safeErr
	}
	if err := m.checker.Feed(e); err != nil {
		m.safeErr = err
		return err
	}
	return nil
}

// ObserveHistory feeds a whole history. Unlike a bare Observe loop it
// does not stop at the first terminal safety error: progress
// accounting absorbs every event (the liveness half outlives an
// undecided or violated safety half), and the first terminal error is
// returned at the end.
func (m *Monitor) ObserveHistory(h model.History) error {
	var first error
	for _, e := range h {
		if err := m.Observe(e); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Events returns the number of events observed so far.
func (m *Monitor) Events() int { return m.events }

// StarvationNow returns each process's current commit gap — global
// events since its last commit (or since the run began) — indexed by
// process id minus one, for procs processes. Unlike MaxStarvation it
// is the instantaneous figure, which makes it the feedback signal for
// starvation-aware contention management: a hot process shows a small
// gap, a starving one a growing gap. Non-terminal; call it while the
// run is still being observed.
func (m *Monitor) StarvationNow(procs int) []int {
	out := make([]int, procs)
	for p, pp := range m.procs {
		if i := int(p) - 1; i >= 0 && i < procs {
			out[i] = m.events - pp.activeFrom
		}
	}
	return out
}

// LivenessClassNow classifies the run so far against the liveness
// lattice on the current lasso reading (the tail window repeated
// forever) and returns the strongest property that holds: "local
// progress", "2-progress", "global progress", "solo progress", or
// "none". Unlike Report it is non-terminal — it does not finish the
// streaming checker — so a live run can expose its current liveness
// class while still being observed. Call it from the goroutine that
// feeds Observe; the lasso reads the same window state.
func (m *Monitor) LivenessClassNow() string {
	l := m.lasso()
	if l == nil {
		return "none"
	}
	for _, prop := range []liveness.Property{
		liveness.LocalProgress, liveness.KProgress(2),
		liveness.GlobalProgress, liveness.SoloProgress,
	} {
		if prop.Contains(l) {
			return prop.Name
		}
	}
	return "none"
}

// tail returns the window contents in arrival order.
func (m *Monitor) tail() model.History {
	if !m.wfull {
		return append(model.History(nil), m.window...)
	}
	out := make(model.History, 0, len(m.window))
	out = append(out, m.window[m.wnext:]...)
	out = append(out, m.window[:m.wnext]...)
	return out
}

// Verdict is one liveness property evaluated on the observed run.
type Verdict struct {
	Property string
	Holds    bool
}

// ProcReport is one process's final accounting and fault class.
type ProcReport struct {
	ProcProgress
	// Class is the paper's classification of the process on the lasso
	// reading of the run: "progressing", "starving", "parasitic" or
	// "crashed".
	Class string
}

// Report is the monitor's summary of the run so far.
type Report struct {
	// Events is the number of events observed.
	Events int
	// Opacity is the streaming opacity verdict; Checked is false when
	// the streaming checker was starved of quiescent cuts or the
	// history was malformed, with the reason in Opacity.Reason.
	Checked bool
	Opacity safety.SegmentedResult
	// Shards is the number of checker lanes the opacity verdict was
	// computed with (1 = the single streaming checker).
	Shards int
	// ShardSegments is the number of segments each checker lane
	// verified on its own when Shards > 1 (cross-shard merged segments
	// are counted in Opacity.Segments but attributed to no lane); nil
	// on a single-checker monitor.
	ShardSegments []int
	// Procs holds per-process accounting, sorted by process id.
	Procs []ProcReport
	// Verdicts evaluates the liveness lattice on the lasso reading of
	// the run: local, 2-, global and solo progress.
	Verdicts []Verdict
}

// LivenessClass names the strongest liveness-lattice property the
// observed run satisfied, scanning the verdicts strongest first:
// "local progress", "2-progress", "global progress", "solo progress",
// or "none" when nothing in the lattice held (or no events were
// observed).
func (r Report) LivenessClass() string {
	for _, v := range r.Verdicts {
		if v.Holds {
			return v.Property
		}
	}
	return "none"
}

// StarvationIntervals returns each process's starvation intervals in
// global events: the closed commit gaps (retained under
// Config.RecordGaps) followed by the still-open gap at the end of the
// run when it is positive. A process that was active but never
// committed contributes exactly one interval — the whole run — which
// is how a starving process of the paper's infinite histories shows up
// in a finite sample.
func (r Report) StarvationIntervals() map[model.Proc][]int {
	out := make(map[model.Proc][]int, len(r.Procs))
	for _, p := range r.Procs {
		intervals := append([]int(nil), p.CommitGaps...)
		if p.OpenGap > 0 {
			intervals = append(intervals, p.OpenGap)
		}
		out[p.Proc] = intervals
	}
	return out
}

// Format renders the report as an aligned text block.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events=%d segments=%d opaque=%v", r.Events, r.Opacity.Segments, r.Opacity.Holds && r.Checked)
	if r.Shards > 1 {
		fmt.Fprintf(&b, " shards=%d", r.Shards)
	}
	if r.Opacity.Approx {
		fmt.Fprintf(&b, " (approximate: %d forced frontiers)", r.Opacity.ForcedCuts)
		if r.Opacity.RelaxedStraddlers > 0 {
			fmt.Fprintf(&b, " (%d straddler reads waived)", r.Opacity.RelaxedStraddlers)
		}
	}
	if !r.Checked {
		fmt.Fprintf(&b, " (not decided: %s)", r.Opacity.Reason)
	} else if !r.Opacity.Holds {
		fmt.Fprintf(&b, "\nopacity violation: %s", r.Opacity.Reason)
	}
	b.WriteString("\n")
	for _, p := range r.Procs {
		fmt.Fprintf(&b, "  p%-3d %-11s commits=%-6d aborts=%-6d ops=%-7d max-starvation=%d\n",
			p.Proc, p.Class, p.Commits, p.Aborts, p.Ops, p.MaxStarvation)
	}
	for _, v := range r.Verdicts {
		fmt.Fprintf(&b, "  %-15s %v\n", v.Property, v.Holds)
	}
	return b.String()
}

// Report finalizes the streaming opacity check and classifies the run
// against the liveness lattice. It is terminal for the safety half:
// the monitor must not be fed afterwards.
func (m *Monitor) Report() Report {
	r := Report{Events: m.events, Shards: 1}
	if m.cfg.Shards > 1 {
		r.Shards = m.cfg.Shards
	}

	switch {
	case m.safeErr != nil && errors.Is(m.safeErr, safety.ErrStreamNotOpaque):
		res, _ := m.checker.Finish()
		r.Checked, r.Opacity = true, res
	case m.safeErr != nil:
		// Still finish the checker: sharded lanes run worker
		// goroutines that must stop and drain before their counters
		// are read. The terminal error stays the reason.
		_, _ = m.checker.Finish()
		r.Opacity.Reason = m.safeErr.Error()
	default:
		res, err := m.checker.Finish()
		if err != nil {
			r.Opacity.Reason = err.Error()
		} else {
			r.Checked, r.Opacity = true, res
		}
	}
	if sc, ok := m.checker.(*safety.ShardedChecker); ok {
		// Finish ran above (every branch), so the lane counters are
		// final and safe to read.
		r.ShardSegments = sc.PerShardSegments()
	}

	lasso := m.lasso()
	for _, p := range sortedProcs(m.procs) {
		pp := *m.procs[p]
		pp.MaxStarvation = pp.starvation(m.events)
		pp.OpenGap = m.events - pp.activeFrom
		r.Procs = append(r.Procs, ProcReport{ProcProgress: pp, Class: m.class(lasso, p)})
	}
	if lasso != nil {
		for _, prop := range []liveness.Property{
			liveness.LocalProgress, liveness.KProgress(2),
			liveness.GlobalProgress, liveness.SoloProgress,
		} {
			r.Verdicts = append(r.Verdicts, Verdict{Property: prop.Name, Holds: prop.Contains(lasso)})
		}
	}
	return r
}

// lasso is the classification reading of the run: the tail window
// repeated forever, with each process's first event standing in for
// its pre-window activity (the classifiers only test event existence
// on the prefix, so one representative event per process suffices).
// Returns nil while no events have been observed.
func (m *Monitor) lasso() *liveness.Lasso {
	cycle := m.tail()
	if len(cycle) == 0 {
		return nil
	}
	var prefix model.History
	for _, p := range sortedProcs(m.procs) {
		pp := m.procs[p]
		if pp.firstEvent != nil && m.events > len(cycle) {
			prefix = append(prefix, *pp.firstEvent)
		}
	}
	l, err := liveness.NewLassoWithProcs(prefix, cycle, sortedProcs(m.procs))
	if err != nil {
		return nil
	}
	return l
}

func (m *Monitor) class(l *liveness.Lasso, p model.Proc) string {
	if l == nil {
		return "silent"
	}
	switch {
	case l.Crashes(p):
		return "crashed"
	case l.Parasitic(p):
		return "parasitic"
	case l.Starving(p):
		return "starving"
	case l.MakesProgress(p):
		return "progressing"
	default:
		return "silent"
	}
}

func sortedProcs(m map[model.Proc]*ProcProgress) []model.Proc {
	out := make([]model.Proc, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
