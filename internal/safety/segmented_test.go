package safety

import (
	"errors"
	"testing"
	"testing/quick"

	"livetm/internal/model"
)

func TestSegmentedAgreesOnFigures(t *testing.T) {
	tests := []struct {
		name string
		h    model.History
		want bool
	}{
		{"fig1", fig1(), true},
		{"fig3", fig3(), false},
		{"fig4", fig4(), false},
		{"fig8", figAlg1Termination(0), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := CheckOpacitySegmented(tt.h, 8)
			if err != nil {
				t.Fatal(err)
			}
			if res.Holds != tt.want {
				t.Errorf("segmented = %v (%s), want %v", res.Holds, res.Reason, tt.want)
			}
		})
	}
}

// Property: the segmented checker agrees with the monolithic one on
// every small random history it can segment.
func TestSegmentedAgreesProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		h := genHistory(raw)
		mono, err := CheckOpacity(h)
		if err != nil {
			return true
		}
		seg, err := CheckOpacitySegmented(h, 8)
		if errors.Is(err, ErrNoQuiescentCut) {
			return true // not segmentable within budget: out of scope
		}
		if err != nil {
			return false
		}
		return seg.Holds == mono.Holds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestSegmentedLongHistory verifies a history far beyond the 64-txn
// monolithic limit: 200 sequential counter transactions.
func TestSegmentedLongHistory(t *testing.T) {
	b := model.NewBuilder()
	for i := 0; i < 200; i++ {
		p := model.Proc(i%3 + 1)
		b.Read(p, 0, model.Value(i)).Write(p, 0, model.Value(i+1)).Commit(p)
	}
	h := b.History()
	if _, err := CheckOpacity(h); err == nil {
		t.Fatal("monolithic checker should refuse 200 transactions")
	}
	res, err := CheckOpacitySegmented(h, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("sequential counter chain must be opaque: %s", res.Reason)
	}
	if res.Segments < 200/8 {
		t.Errorf("segments = %d, expected at least %d", res.Segments, 200/8)
	}
}

// TestSegmentedLongViolation plants a stale read deep inside a long
// history and checks the segmented checker localizes the failure.
func TestSegmentedLongViolation(t *testing.T) {
	b := model.NewBuilder()
	for i := 0; i < 80; i++ {
		p := model.Proc(i%2 + 1)
		b.Read(p, 0, model.Value(i)).Write(p, 0, model.Value(i+1)).Commit(p)
	}
	// The stale read: value 0 was overwritten 80 commits ago.
	b.Read(1, 0, 0).Commit(1)
	res, err := CheckOpacitySegmented(b.History(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("stale read must be caught")
	}
	if res.Reason == "" {
		t.Error("violation must carry a localized reason")
	}
}

// TestSegmentedSnapshotAmbiguity: two concurrent committed writers
// with no reads can serialize either way, leaving two feasible
// snapshots; the next segment is opaque under only one of them. The
// segmented checker must keep both and accept.
func TestSegmentedSnapshotAmbiguity(t *testing.T) {
	h := model.History{
		// Segment 1: w1 and w2 concurrent, both commit blind writes.
		model.Write(1, 0, 1), model.OK(1),
		model.Write(2, 0, 2), model.OK(2),
		model.TryCommit(1), model.Commit(1),
		model.TryCommit(2), model.Commit(2),
		// Segment 2: a reader sees 1 — only the w2-then-w1 order fits.
		model.Read(3, 0), model.ValueResp(3, 1),
		model.TryCommit(3), model.Commit(3),
	}
	res, err := CheckOpacitySegmented(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("must hold via the w2;w1 serialization: %s", res.Reason)
	}
	// Control: reading 3 is infeasible under either order.
	bad := h.Clone()
	bad[9] = model.ValueResp(3, 3)
	res, err = CheckOpacitySegmented(bad, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("reading 3 must fail")
	}
}

func TestSegmentedNoCut(t *testing.T) {
	// Five pairwise-concurrent transactions and a budget of 2: no cut.
	var h model.History
	for p := model.Proc(1); p <= 5; p++ {
		h = append(h, model.Read(p, 0), model.ValueResp(p, 0))
	}
	for p := model.Proc(1); p <= 5; p++ {
		h = append(h, model.TryCommit(p), model.Commit(p))
	}
	_, err := CheckOpacitySegmented(h, 2)
	if !errors.Is(err, ErrNoQuiescentCut) {
		t.Errorf("err = %v, want ErrNoQuiescentCut", err)
	}
	// With a budget of 5 it segments (one segment) and holds: all
	// transactions read the initial value and write nothing.
	res, err := CheckOpacitySegmented(h, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("read-only concurrent transactions are opaque: %s", res.Reason)
	}
}

func TestSegmentedValidation(t *testing.T) {
	if _, err := CheckOpacitySegmented(fig1(), 0); err == nil {
		t.Error("budget 0 must be rejected")
	}
	if _, err := CheckOpacitySegmented(fig1(), 65); err == nil {
		t.Error("budget > 64 must be rejected")
	}
	if _, err := CheckOpacitySegmented(model.History{model.OK(1)}, 4); err == nil {
		t.Error("malformed history must be rejected")
	}
	res, err := CheckOpacitySegmented(nil, 4)
	if err != nil || !res.Holds {
		t.Error("empty history is opaque")
	}
}

// TestSegmentedLiveTransactionBlocksCut: a transaction left live spans
// to the end of the history, so cuts after its start are not
// quiescent.
func TestSegmentedLiveTransactionBlocksCut(t *testing.T) {
	b := model.NewBuilder()
	b.Raw(model.Read(3, 1)) // p3 starts and never finishes
	for i := 0; i < 10; i++ {
		b.Read(1, 0, model.Value(i)).Write(1, 0, model.Value(i+1)).Commit(1)
	}
	_, err := CheckOpacitySegmented(b.History(), 4)
	if !errors.Is(err, ErrNoQuiescentCut) {
		t.Errorf("err = %v, want ErrNoQuiescentCut (live transaction spans everything)", err)
	}
}
