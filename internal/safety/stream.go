package safety

import (
	"fmt"
	"math/bits"

	"livetm/internal/model"
)

// StreamChecker decides opacity of a history fed one event at a time,
// in bounded memory: the incremental counterpart of
// CheckOpacitySegmented, built on the same quiescent-cut argument and
// the same feasible-snapshot propagation.
//
// Events buffer only while some transaction is open. At every
// quiescent cut — a point where no transaction is open — the buffered
// segment is checked against the feasible committed snapshots so far
// and discarded, so memory and each exponential search are bounded by
// one cut-free stretch. A stretch that accumulates more than
// maxTxnsPerSegment completed transactions without quiescing is
// refused with ErrNoQuiescentCut instead of buffering without bound,
// mirroring the segmented checker's ErrTooManyTransactions regime.
//
// Checking at every cut or only at the forced flushes of
// CheckOpacitySegmented propagates the same snapshot sets — the states
// feasible at a cut are a function of the cut, not of the flush
// schedule — so the two checkers agree wherever both decide; the
// streaming one simply reports violations at the earliest cut.
//
// A violation is terminal: Feed reports it once, wrapped around
// ErrStreamNotOpaque, and Finish keeps returning the failing verdict.
//
// A checker with WithApproxFallback set does not refuse cut-starved
// streams: when the budget overflows with transactions still open, it
// forces a serialization frontier — the completed transactions in the
// buffer are checked and flushed as a segment even though open
// transactions overlap the cut, and the final snapshots of that
// check are propagated — and the verdict degrades to an explicit
// approximation (SegmentedResult.Approx). A transaction carried open
// across a frontier (a straddler) may have read mid-window values
// whose explaining writers were just flushed: its reads are
// unverifiable, not wrong, so when the straddler later completes its
// read legality is waived (SegmentedResult.RelaxedStraddlers counts
// the waivers) while its write set still applies. Waiving — rather
// than judging those reads against over-approximated intermediate
// snapshots — both avoids false alarms (two straddlers pinning
// different mid-window states admit no single serialization path) and
// keeps the propagated states exact for everyone else (a straddler's
// stale reads must not steer the feasible set onto a stale branch).
// The cost is an explicit miss window: a violation whose only
// evidence is a straddler's own reads goes undetected once a frontier
// fires. Everything inside one window, and every non-straddler
// transaction, is still searched exactly.
type StreamChecker struct {
	max      int
	buf      model.History
	states   []model.Snapshot
	segments int

	openTxn   map[model.Proc]bool
	openCount int
	txnsInBuf int // completed transactions in the buffer

	approx bool // bounded-overlap fallback enabled
	forced int  // forced frontiers taken
	// straddler marks processes whose open transaction was carried
	// across the last forced frontier; see the type comment for why
	// such a transaction's reads are waived. relaxed counts the
	// waivers.
	straddler map[model.Proc]bool
	relaxed   int

	done   bool // violation or Finish reached
	holds  bool
	reason string

	tel LaneTelemetry // push-style telemetry (bare by default)
}

// ErrStreamNotOpaque wraps the verdict a StreamChecker returns from
// Feed at the moment a segment admits no legal serialization.
var ErrStreamNotOpaque = fmt.Errorf("safety: streamed history is not opaque")

// NewStreamChecker creates a checker with the given per-segment
// transaction budget (1 to 64, like CheckOpacitySegmented).
func NewStreamChecker(maxTxnsPerSegment int) (*StreamChecker, error) {
	if maxTxnsPerSegment <= 0 {
		return nil, fmt.Errorf("safety: segment budget %d must be positive", maxTxnsPerSegment)
	}
	if maxTxnsPerSegment > 64 {
		return nil, fmt.Errorf("%w: segment budget %d exceeds the 64-transaction search cap", ErrTooManyTransactions, maxTxnsPerSegment)
	}
	return &StreamChecker{
		max:       maxTxnsPerSegment,
		states:    []model.Snapshot{make(model.Snapshot)},
		openTxn:   make(map[model.Proc]bool),
		straddler: make(map[model.Proc]bool),
		tel:       LaneTelemetry{}.orBare(),
	}, nil
}

// WithTelemetry routes the checker's counters (segments, forced
// frontiers, waived reads) and its buffered-event backlog into the
// given instruments, so a concurrent scraper can watch the lane
// without racing the checking goroutine. Returns c.
func (c *StreamChecker) WithTelemetry(t LaneTelemetry) *StreamChecker {
	c.tel = t.orBare()
	return c
}

// WithApproxFallback enables the bounded-overlap sliding-window
// fallback: a cut-starved stretch is flushed at a forced serialization
// frontier instead of refused with ErrNoQuiescentCut, and every
// verdict from then on is marked approximate. The segment budget is
// clamped to 63 so a forced window of budget+1 completed transactions
// stays inside the 64-transaction search cap. Returns c.
func (c *StreamChecker) WithApproxFallback() *StreamChecker {
	c.approx = true
	if c.max > 63 {
		c.max = 63
	}
	return c
}

// Segments returns the number of segments checked so far.
func (c *StreamChecker) Segments() int { return c.segments }

// ForcedCuts returns the number of forced serialization frontiers
// taken so far (always 0 without WithApproxFallback).
func (c *StreamChecker) ForcedCuts() int { return c.forced }

// Buffered returns the number of events currently buffered.
func (c *StreamChecker) Buffered() int { return len(c.buf) }

// Feed consumes one event. A non-nil error is terminal: either the
// stream revealed an opacity violation (errors.Is ErrStreamNotOpaque),
// exceeded the segment budget with no quiescent cut (errors.Is
// ErrNoQuiescentCut), or was malformed.
func (c *StreamChecker) Feed(e model.Event) error {
	if c.done {
		if !c.holds {
			return fmt.Errorf("%w: %s", ErrStreamNotOpaque, c.reason)
		}
		return fmt.Errorf("safety: Feed after Finish")
	}
	c.buf = append(c.buf, e)
	c.tel.Buffered.Set(int64(len(c.buf)))
	p := e.Proc
	switch {
	case e.Kind.IsInvocation():
		if !c.openTxn[p] {
			c.openTxn[p] = true
			c.openCount++
		}
	case e.Kind == model.RespCommit || e.Kind == model.RespAbort:
		if c.openTxn[p] {
			c.openTxn[p] = false
			c.openCount--
		}
		c.txnsInBuf++
	}
	// The budget check comes first: a cut-free stretch of max+1
	// completed transactions is refused even if its last event happens
	// to quiesce the buffer, matching CheckOpacitySegmented's "at most
	// max per segment" and keeping every feasibleFinals call within
	// the 64-transaction search cap. With the fallback enabled the
	// stretch is flushed at a forced frontier instead.
	if c.txnsInBuf > c.max {
		if !c.approx {
			return fmt.Errorf("%w: %d concurrent transactions without a quiescent point", ErrNoQuiescentCut, c.txnsInBuf)
		}
		return c.forceFlush()
	}
	if c.openCount == 0 && c.txnsInBuf > 0 {
		return c.flush()
	}
	return nil
}

// forceFlush is the bounded-overlap fallback: the completed
// transactions in the buffer are checked and discarded as one segment
// at a frontier that open transactions still straddle. The events of
// open transactions stay buffered — each process's remaining
// subsequence is intact, so the buffer stays a well-formed history —
// and every later verdict is approximate.
func (c *StreamChecker) forceFlush() error {
	txns, err := model.Transactions(c.buf)
	if err != nil {
		return fmt.Errorf("streaming opacity: %w", err)
	}
	keepFrom := make(map[model.Proc]int, c.openCount)
	for _, t := range txns {
		if t.Status == model.Live {
			// A process's live transaction is its last; everything of
			// that process from its first event on stays buffered.
			keepFrom[t.Proc] = t.First
		}
	}
	seg := make(model.History, 0, len(c.buf))
	kept := make(model.History, 0, len(c.buf))
	for i, e := range c.buf {
		if from, ok := keepFrom[e.Proc]; ok && i >= from {
			kept = append(kept, e)
		} else {
			seg = append(seg, e)
		}
	}
	c.forced++
	c.tel.Forced.Inc()
	txns, err = model.Transactions(seg)
	if err != nil {
		return fmt.Errorf("streaming opacity: %w", err)
	}
	c.segments++
	c.tel.Segments.Inc()
	// The frontier propagates the final snapshots of serializing the
	// flushed window — not the visited intermediates — so post-frontier
	// transactions are re-checked against exactly the states a real cut
	// would have left. The straddlers' pre-frontier reads, the one
	// thing only an intermediate state could explain, are waived when
	// they complete (see the type comment), here as in every later
	// segment.
	finals, err := feasibleFinalsRelaxed(txns, c.states, c.waiveMask(txns))
	if err != nil {
		return err
	}
	if len(finals) == 0 {
		c.done, c.holds = true, false
		c.reason = fmt.Sprintf("forced segment %d (transactions %s..%s) admits no legal serialization from any feasible predecessor state (approximate: at forced frontier %d)",
			c.segments, txns[0].ID(), txns[len(txns)-1].ID(), c.forced)
		return fmt.Errorf("%w: %s", ErrStreamNotOpaque, c.reason)
	}
	c.states = finals
	// Every transaction carried across this frontier is a straddler for
	// the windows ahead; everything else (including previous
	// straddlers, now flushed) is not.
	c.straddler = make(map[model.Proc]bool, len(keepFrom))
	for p := range keepFrom {
		c.straddler[p] = true
	}
	c.buf = kept
	c.txnsInBuf = 0
	c.tel.Buffered.Set(int64(len(c.buf)))
	return nil
}

// waiveMask returns the bitmask over txns selecting each straddler
// process's first transaction — the one whose opening half predates
// the last forced frontier — and counts the waivers.
func (c *StreamChecker) waiveMask(txns []*model.Transaction) uint64 {
	if len(c.straddler) == 0 {
		return 0
	}
	var mask uint64
	seen := make(map[model.Proc]bool, len(c.straddler))
	for i, t := range txns {
		if !seen[t.Proc] {
			seen[t.Proc] = true
			if c.straddler[t.Proc] {
				mask |= 1 << uint(i)
			}
		}
	}
	if n := bits.OnesCount64(mask); n > 0 {
		c.relaxed += n
		c.tel.Relaxed.Add(uint64(n))
	}
	return mask
}

// flush checks the buffered segment — the history since the previous
// quiescent cut — against the feasible snapshots and discards it. The
// straddlers of the last forced frontier are flushed with it.
func (c *StreamChecker) flush() error {
	next, violation, err := c.checkSegment(c.buf)
	if err != nil {
		return err
	}
	if violation != "" {
		c.done, c.holds, c.reason = true, false, violation
		return fmt.Errorf("%w: %s", ErrStreamNotOpaque, violation)
	}
	c.states = next
	c.buf = c.buf[:0]
	c.txnsInBuf = 0
	c.tel.Buffered.Set(0)
	if len(c.straddler) > 0 {
		c.straddler = make(map[model.Proc]bool)
	}
	return nil
}

// checkSegment propagates the feasible committed snapshots through one
// segment, with the reads of frontier straddlers waived. A non-empty
// violation string means no legal serialization exists from any
// feasible predecessor state.
func (c *StreamChecker) checkSegment(seg model.History) ([]model.Snapshot, string, error) {
	txns, err := model.Transactions(seg)
	if err != nil {
		return nil, "", fmt.Errorf("streaming opacity: %w", err)
	}
	if len(txns) == 0 {
		return c.states, "", nil
	}
	c.segments++
	c.tel.Segments.Inc()
	next, err := feasibleFinalsRelaxed(txns, c.states, c.waiveMask(txns))
	if err != nil {
		return nil, "", err
	}
	if len(next) == 0 {
		return nil, fmt.Sprintf("segment %d (transactions %s..%s) admits no legal serialization from any feasible predecessor state",
			c.segments, txns[0].ID(), txns[len(txns)-1].ID()), nil
	}
	return next, "", nil
}

// Finish checks whatever remains buffered — including live and
// commit-pending transactions, which only the final segment may
// contain — and returns the verdict for the whole streamed history.
// Finish is terminal; the checker cannot be fed afterwards.
func (c *StreamChecker) Finish() (SegmentedResult, error) {
	if c.done {
		return c.result(), nil
	}
	c.done = true
	next, violation, err := c.checkSegment(c.buf)
	if err != nil {
		return SegmentedResult{}, err
	}
	c.buf = nil
	if violation != "" {
		c.holds, c.reason = false, violation
		if c.forced > 0 {
			c.reason = fmt.Sprintf("%s (approximate: after %d forced frontiers)", violation, c.forced)
		}
	} else {
		c.holds = true
		c.states = next
	}
	return c.result(), nil
}

// result snapshots the terminal verdict, marking it approximate when
// any forced frontier contributed to it.
func (c *StreamChecker) result() SegmentedResult {
	return SegmentedResult{
		Holds:             c.holds,
		Segments:          c.segments,
		Reason:            c.reason,
		Approx:            c.forced > 0,
		ForcedCuts:        c.forced,
		RelaxedStraddlers: c.relaxed,
	}
}
