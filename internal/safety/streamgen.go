package safety

import "livetm/internal/model"

// Synthetic violating streams for checker evaluation. The ROADMAP's
// open question — how often does the bounded-overlap forced-frontier
// fallback miss a violation the exact checker catches? — needs a
// family of histories that are (a) well-formed, (b) provably not
// opaque, and (c) cut-starved, so the fallback actually engages. This
// generator builds exactly those; the miss-rate test in this package
// sweeps it against both checkers and reports the rate.

// StreamGenConfig parameterizes one synthetic violating stream.
type StreamGenConfig struct {
	// Increments is the number of committed increment transactions p1
	// runs on x before the stale read (x goes 0 → Increments).
	Increments int
	// StaleDepth is how many commits back p2's read value lies: p2
	// reads Increments-StaleDepth even though every increment committed
	// before its read began. Must be in [1, Increments]. Ignored with
	// StraddlerViolation (p2 is omitted there).
	StaleDepth int
	// OpenReader makes the straddler also read x (legally, the initial
	// 0) before the increments start, pinning a pre-increment value
	// across any forced frontier.
	OpenReader bool
	// StraddlerViolation makes the straddler itself the violation: it
	// reads x = 0 before the increments (like OpenReader) and re-reads
	// x = Increments just before committing — no serialization explains
	// both — and p2 is omitted, so the straddler's own reads are the
	// history's only evidence. This is the family the fallback must
	// miss once a frontier fires: a straddler's reads are waived at the
	// frontier (see StreamChecker), trading exactly this detection for
	// false-alarm freedom.
	StraddlerViolation bool
	// CrossShard plants the violation across a variable boundary:
	// every increment writes x and y together, and p2's read set pairs
	// a fresh x = Increments with a stale y = Increments−StaleDepth.
	// No reachable snapshot has that combination, but each variable's
	// own value sequence is innocent — under a sharded checker that
	// puts x and y in different shards, no single shard's projection
	// contains the evidence and only the cross-shard merge pass can
	// reject (see ShardedChecker). The straddler reads z, a third
	// variable, so its shard placement (not the spanning increments)
	// decides which lanes stay cut-starved. OpenReader and
	// StraddlerViolation are ignored with CrossShard.
	CrossShard bool
}

// ViolatingStream builds a well-formed history that is not opaque and
// has no quiescent cut before its final event:
//
//   - p3 opens a straddler transaction (a read of y, plus a read of
//     x = 0 with OpenReader or StraddlerViolation) immediately and
//     holds it until the end, so no prefix ever quiesces;
//   - p1 commits cfg.Increments increment transactions on x, back to
//     back;
//   - without StraddlerViolation, p2 then commits a read-only
//     transaction that reads the stale value x = Increments−StaleDepth.
//     Every increment committed before p2's read began, so real-time
//     order forces p2 after all of them — where only x = Increments is
//     feasible — and no legal serialization exists;
//   - with StraddlerViolation, p3 instead re-reads x = Increments
//     before committing, making its own read set inconsistent.
//
// The exact segmented checker (one segment, budget ≥ all transactions)
// always rejects every variant. The streaming checker's forced-
// frontier fallback propagates final snapshots across frontiers and
// re-checks the post-frontier window against them, so it also rejects
// the p2 variants — with or without the open reader — but it waives a
// straddler's reads once a frontier fires, so the StraddlerViolation
// variant is missed exactly when the increments outrun the budget.
// That residual window is the object under test.
func ViolatingStream(cfg StreamGenConfig) model.History {
	const (
		x = model.TVar(0)
		y = model.TVar(1)
		z = model.TVar(2)
	)
	k := cfg.Increments
	if k < 1 {
		k = 1
	}
	d := cfg.StaleDepth
	if d < 1 {
		d = 1
	}
	if d > k {
		d = k
	}
	if cfg.CrossShard {
		inc := func(h model.History, i int) model.History {
			v := model.Value(i)
			return h.Append(
				model.Read(1, x), model.ValueResp(1, v),
				model.Write(1, x, v+1), model.OK(1),
				model.Read(1, y), model.ValueResp(1, v),
				model.Write(1, y, v+1), model.OK(1),
				model.TryCommit(1), model.Commit(1),
			)
		}
		h := make(model.History, 0, 12*k+14)
		h = h.Append(model.Read(3, z), model.ValueResp(3, 0))
		for i := 0; i < k-d; i++ {
			h = inc(h, i)
		}
		// p2 opens with the then-current y, stays open across the last
		// StaleDepth increments, and pairs it with a fresh x: each read
		// is individually current at some overlapping moment — both
		// shard projections serialize p2 legally on their own — but no
		// reachable snapshot has x = k and y = k−d together.
		h = h.Append(model.Read(2, y), model.ValueResp(2, model.Value(k-d)))
		for i := k - d; i < k; i++ {
			h = inc(h, i)
		}
		h = h.Append(
			model.Read(2, x), model.ValueResp(2, model.Value(k)),
			model.TryCommit(2), model.Commit(2),
		)
		return h.Append(model.TryCommit(3), model.Commit(3))
	}
	h := make(model.History, 0, 6*k+14)
	// The straddler: opens first, closes last.
	h = h.Append(model.Read(3, y), model.ValueResp(3, 0))
	if cfg.OpenReader || cfg.StraddlerViolation {
		h = h.Append(model.Read(3, x), model.ValueResp(3, 0))
	}
	for i := 0; i < k; i++ {
		v := model.Value(i)
		h = h.Append(
			model.Read(1, x), model.ValueResp(1, v),
			model.Write(1, x, v+1), model.OK(1),
			model.TryCommit(1), model.Commit(1),
		)
	}
	if cfg.StraddlerViolation {
		h = h.Append(model.Read(3, x), model.ValueResp(3, model.Value(k)))
	} else {
		h = h.Append(
			model.Read(2, x), model.ValueResp(2, model.Value(k-d)),
			model.TryCommit(2), model.Commit(2),
		)
	}
	return h.Append(model.TryCommit(3), model.Commit(3))
}
