package safety

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"livetm/internal/model"
)

// streamVerdict streams h through a checker and returns the terminal
// verdict. Feed errors other than the violation itself fail the test.
func streamVerdict(t *testing.T, c *StreamChecker, h model.History) SegmentedResult {
	t.Helper()
	for _, e := range h {
		if err := c.Feed(e); err != nil {
			if errors.Is(err, ErrStreamNotOpaque) {
				break // terminal; Finish returns the failing verdict
			}
			t.Fatalf("feed: %v", err)
		}
	}
	res, err := c.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	return res
}

// shapeVariants enumerates the generator's straddler variants.
var shapeVariants = []struct {
	name string
	set  func(*StreamGenConfig)
}{
	{"plain", func(*StreamGenConfig) {}},
	{"openreader", func(c *StreamGenConfig) { c.OpenReader = true }},
	{"straddler", func(c *StreamGenConfig) { c.StraddlerViolation = true }},
}

// TestViolatingStreamShape: the generator's output is well-formed,
// cut-starved, and rejected by the exact segmented checker for every
// parameter combination the sweep uses, in every variant.
func TestViolatingStreamShape(t *testing.T) {
	for _, v := range shapeVariants {
		for k := 2; k <= 16; k++ {
			for _, d := range []int{1, 2, k / 2, k} {
				if d < 1 {
					continue
				}
				cfg := StreamGenConfig{Increments: k, StaleDepth: d}
				v.set(&cfg)
				h := ViolatingStream(cfg)
				if err := model.CheckWellFormed(h); err != nil {
					t.Fatalf("%s k=%d d=%d: malformed: %v", v.name, k, d, err)
				}
				res, err := CheckOpacitySegmented(h, 64)
				if err != nil {
					t.Fatalf("%s k=%d d=%d: exact checker errored: %v", v.name, k, d, err)
				}
				if res.Holds {
					t.Fatalf("%s k=%d d=%d: exact checker accepted a violating stream", v.name, k, d)
				}
				// Cut starvation: the plain streaming checker must refuse the
				// stream once the budget overflows without a cut.
				c, err := NewStreamChecker(4)
				if err != nil {
					t.Fatal(err)
				}
				var refused bool
				for _, e := range h {
					if err := c.Feed(e); err != nil {
						if errors.Is(err, ErrNoQuiescentCut) {
							refused = true
						} else if !errors.Is(err, ErrStreamNotOpaque) {
							t.Fatalf("%s k=%d d=%d: %v", v.name, k, d, err)
						}
						break
					}
				}
				if k+1 > 4 && !refused {
					t.Fatalf("%s k=%d d=%d: stream is not cut-starved (plain checker accepted it)", v.name, k, d)
				}
			}
		}
	}
}

// TestApproxFallbackMissRate quantifies the ROADMAP question. The
// forced-frontier fallback used to propagate visited (not just final)
// snapshots at every frontier, missing ~17% of the sweep's violations.
// Frontiers now propagate final snapshots — so the post-frontier
// window is re-checked tightly and every p2-stale-read violation is
// caught, open reader or not — while a straddler's own reads are
// waived once a frontier fires (they are unverifiable: their
// explaining window was flushed, and judging them would raise false
// alarms on healthy runs). The residual miss window is therefore
// exactly the StraddlerViolation family with the increments outrunning
// the budget; the sweep asserts that boundary, that every miss carries
// the approximate marker and a reported waiver, and that the overall
// rate sits far below the former 17%.
func TestApproxFallbackMissRate(t *testing.T) {
	total, missed := 0, 0
	for _, openReader := range []bool{false, true} {
		for _, budget := range []int{3, 4, 6, 8} {
			for k := 2; k <= 20; k++ {
				for _, d := range []int{1, 2, (k + 1) / 2, k} {
					if d < 1 || d > k {
						continue
					}
					h := ViolatingStream(StreamGenConfig{Increments: k, StaleDepth: d, OpenReader: openReader})
					c, err := NewStreamChecker(budget)
					if err != nil {
						t.Fatal(err)
					}
					c.WithApproxFallback()
					res := streamVerdict(t, c, h)
					total++
					if res.Holds {
						missed++
						t.Errorf("open=%v budget=%d k=%d d=%d: a stale read outside the straddler must be caught, got %+v",
							openReader, budget, k, d, res)
					}
				}
			}
		}
	}
	for _, budget := range []int{3, 4, 6, 8} {
		for k := 2; k <= 20; k++ {
			h := ViolatingStream(StreamGenConfig{Increments: k, StraddlerViolation: true})
			c, err := NewStreamChecker(budget)
			if err != nil {
				t.Fatal(err)
			}
			c.WithApproxFallback()
			res := streamVerdict(t, c, h)
			total++
			wantMiss := k > budget // a frontier fired before the straddler's re-read
			if res.Holds != wantMiss {
				t.Errorf("straddler budget=%d k=%d: holds=%v, want miss=%v (%+v)", budget, k, res.Holds, wantMiss, res)
			}
			if res.Holds {
				missed++
				if !res.Approx || res.ForcedCuts == 0 || res.RelaxedStraddlers == 0 {
					t.Errorf("straddler budget=%d k=%d: a miss must be approximate with a reported waiver, got %+v", budget, k, res)
				}
			}
		}
	}
	rate := float64(missed) / float64(total)
	t.Logf("approx-fallback miss rate: %d/%d = %.1f%% (exact checker catches all; misses confined to straddler-only evidence)",
		missed, total, 100*rate)
	if missed == 0 {
		t.Error("the sweep must witness the residual straddler window (zero misses means the fixture family regressed)")
	}
	if rate >= 0.17 {
		t.Errorf("miss rate %.1f%% has not dropped below the former 17%%", 100*rate)
	}
}

// Fixture files under testdata pin concrete streams whose generator
// parameters are encoded here; each checker scenario names the file it
// replays (whether the fallback engages is a property of the checker's
// budget, not of the file). TestViolatingStreamFixtures asserts both
// that the committed files still match the generator and that each
// verdict stays what the scenario claims.
var violatingFixtures = []struct {
	name   string
	file   string
	cfg    StreamGenConfig
	budget int
	missed bool
}{
	// budget 4, 5 increments: the frontier fires right after the last
	// increment, but final snapshots are propagated across it, so the
	// stale read is caught — the miss this stream used to demonstrate
	// is reclaimed.
	{name: "b4_reclaimed", file: "violating_b4_missed.jsonl", cfg: StreamGenConfig{Increments: 5, StaleDepth: 3}, budget: 4, missed: false},
	// The straddler pinning an early read of x across the frontier does
	// not change that: its read is waived, p2's stale read still fails
	// against the propagated finals.
	{name: "b4_openreader_reclaimed", file: "violating_b4_openreader.jsonl", cfg: StreamGenConfig{Increments: 5, StaleDepth: 5, OpenReader: true}, budget: 4, missed: false},
	// The straddler's own inconsistent re-read is the only evidence:
	// waived once the frontier fires — the fallback's residual window.
	{name: "b4_straddler_missed", file: "violating_b4_straddler.jsonl", cfg: StreamGenConfig{Increments: 5, StraddlerViolation: true}, budget: 4, missed: true},
	// budget 4, 7 increments: increments remain after the frontier, the
	// stale read really-follows them inside one window, and the
	// violation is caught.
	{name: "b4_caught", file: "violating_b4_caught.jsonl", cfg: StreamGenConfig{Increments: 7, StaleDepth: 5}, budget: 4, missed: false},
	// budget 8 covers the streams the budget-4 checker needs frontiers
	// for: no frontier, exact verdicts — including the straddler's.
	{name: "b8_exact", file: "violating_b4_missed.jsonl", cfg: StreamGenConfig{Increments: 5, StaleDepth: 3}, budget: 8, missed: false},
	{name: "b8_straddler_caught", file: "violating_b4_straddler.jsonl", cfg: StreamGenConfig{Increments: 5, StraddlerViolation: true}, budget: 8, missed: false},
}

func TestViolatingStreamFixtures(t *testing.T) {
	for _, f := range violatingFixtures {
		t.Run(f.name, func(t *testing.T) {
			h, err := model.LoadTrace(filepath.Join("testdata", f.file))
			if err != nil {
				t.Fatal(err)
			}
			want := ViolatingStream(f.cfg)
			if fmt.Sprint(h) != fmt.Sprint(want) {
				t.Fatalf("fixture drifted from the generator; regenerate with `go run internal/safety/gen_testdata.go`")
			}
			exact, err := CheckOpacitySegmented(h, 64)
			if err != nil {
				t.Fatal(err)
			}
			if exact.Holds {
				t.Fatal("exact checker must reject every fixture")
			}
			c, err := NewStreamChecker(f.budget)
			if err != nil {
				t.Fatal(err)
			}
			c.WithApproxFallback()
			res := streamVerdict(t, c, h)
			if res.Holds != f.missed {
				t.Fatalf("approx verdict holds=%v, fixture expects missed=%v (%+v)", res.Holds, f.missed, res)
			}
		})
	}
}
