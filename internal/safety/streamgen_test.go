package safety

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"livetm/internal/model"
)

// streamVerdict streams h through a checker and returns the terminal
// verdict. Feed errors other than the violation itself fail the test.
func streamVerdict(t *testing.T, c *StreamChecker, h model.History) SegmentedResult {
	t.Helper()
	for _, e := range h {
		if err := c.Feed(e); err != nil {
			if errors.Is(err, ErrStreamNotOpaque) {
				break // terminal; Finish returns the failing verdict
			}
			t.Fatalf("feed: %v", err)
		}
	}
	res, err := c.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	return res
}

// TestViolatingStreamShape: the generator's output is well-formed,
// cut-starved, and rejected by the exact segmented checker for every
// parameter combination the sweep uses.
func TestViolatingStreamShape(t *testing.T) {
	for k := 2; k <= 16; k++ {
		for _, d := range []int{1, 2, k / 2, k} {
			if d < 1 {
				continue
			}
			h := ViolatingStream(StreamGenConfig{Increments: k, StaleDepth: d})
			if err := model.CheckWellFormed(h); err != nil {
				t.Fatalf("k=%d d=%d: malformed: %v", k, d, err)
			}
			res, err := CheckOpacitySegmented(h, 64)
			if err != nil {
				t.Fatalf("k=%d d=%d: exact checker errored: %v", k, d, err)
			}
			if res.Holds {
				t.Fatalf("k=%d d=%d: exact checker accepted a violating stream", k, d)
			}
			// Cut starvation: the plain streaming checker must refuse the
			// stream once the budget overflows without a cut.
			c, err := NewStreamChecker(4)
			if err != nil {
				t.Fatal(err)
			}
			var refused bool
			for _, e := range h {
				if err := c.Feed(e); err != nil {
					if errors.Is(err, ErrNoQuiescentCut) {
						refused = true
					} else if !errors.Is(err, ErrStreamNotOpaque) {
						t.Fatalf("k=%d d=%d: %v", k, d, err)
					}
					break
				}
			}
			if k+1 > 4 && !refused {
				t.Fatalf("k=%d d=%d: stream is not cut-starved (plain checker accepted it)", k, d)
			}
		}
	}
}

// TestApproxFallbackMissRate quantifies the ROADMAP question: the
// forced-frontier fallback propagates visited (not just final)
// snapshots, which over-approximates — a violation whose stale read
// lands just after a frontier is judged against a snapshot that should
// no longer be feasible and is missed. The sweep measures the miss
// rate against the exact segmented checker over the generator's
// parameter space and asserts an upper bound; every miss must carry
// the explicit approximate marker, and on streams the budget covers
// without frontiers the fallback must stay exact.
func TestApproxFallbackMissRate(t *testing.T) {
	total, missed := 0, 0
	for _, budget := range []int{3, 4, 6, 8} {
		for k := 2; k <= 20; k++ {
			for _, d := range []int{1, 2, (k + 1) / 2, k} {
				if d < 1 || d > k {
					continue
				}
				h := ViolatingStream(StreamGenConfig{Increments: k, StaleDepth: d})
				c, err := NewStreamChecker(budget)
				if err != nil {
					t.Fatal(err)
				}
				c.WithApproxFallback()
				res := streamVerdict(t, c, h)
				total++
				if res.Holds {
					missed++
					if !res.Approx || res.ForcedCuts == 0 {
						t.Fatalf("budget=%d k=%d d=%d: a missed violation must be marked approximate, got %+v",
							budget, k, d, res)
					}
				}
				if k+1 <= budget && res.Holds {
					t.Fatalf("budget=%d k=%d d=%d: no frontier was needed, the fallback must stay exact", budget, k, d)
				}
			}
		}
	}
	rate := float64(missed) / float64(total)
	t.Logf("approx-fallback miss rate: %d/%d = %.1f%% (exact checker catches all)", missed, total, 100*rate)
	if missed == 0 {
		t.Error("the sweep must witness the over-approximation (zero misses means the fixture family regressed)")
	}
	if rate > 0.5 {
		t.Errorf("miss rate %.1f%% exceeds the 50%% bound", 100*rate)
	}
}

// Fixture files under testdata pin two concrete streams whose
// generator parameters are encoded here; each checker scenario names
// the file it replays (whether the fallback engages is a property of
// the checker's budget, not of the file, so the miss/catch/exact
// trio shares two files). TestViolatingStreamFixtures asserts both
// that the committed files still match the generator and that each
// verdict stays what the scenario claims.
var violatingFixtures = []struct {
	name   string
	file   string
	cfg    StreamGenConfig
	budget int
	missed bool
}{
	// budget 4, 5 increments: the frontier fires right after the last
	// increment, so the stale read is judged against visited snapshots
	// and the violation is missed.
	{name: "b4_missed", file: "violating_b4_missed.jsonl", cfg: StreamGenConfig{Increments: 5, StaleDepth: 3}, budget: 4, missed: true},
	// budget 4, 7 increments: increments remain after the frontier, the
	// stale read really-follows them inside one window, and the
	// violation is caught.
	{name: "b4_caught", file: "violating_b4_caught.jsonl", cfg: StreamGenConfig{Increments: 7, StaleDepth: 5}, budget: 4, missed: false},
	// budget 8 covers the same stream the budget-4 checker misses: no
	// frontier, exact verdict.
	{name: "b8_exact", file: "violating_b4_missed.jsonl", cfg: StreamGenConfig{Increments: 5, StaleDepth: 3}, budget: 8, missed: false},
}

func TestViolatingStreamFixtures(t *testing.T) {
	for _, f := range violatingFixtures {
		t.Run(f.name, func(t *testing.T) {
			h, err := model.LoadTrace(filepath.Join("testdata", f.file))
			if err != nil {
				t.Fatal(err)
			}
			want := ViolatingStream(f.cfg)
			if fmt.Sprint(h) != fmt.Sprint(want) {
				t.Fatalf("fixture drifted from the generator; regenerate with `go run internal/safety/gen_testdata.go`")
			}
			exact, err := CheckOpacitySegmented(h, 64)
			if err != nil {
				t.Fatal(err)
			}
			if exact.Holds {
				t.Fatal("exact checker must reject every fixture")
			}
			c, err := NewStreamChecker(f.budget)
			if err != nil {
				t.Fatal(err)
			}
			c.WithApproxFallback()
			res := streamVerdict(t, c, h)
			if res.Holds != f.missed {
				t.Fatalf("approx verdict holds=%v, fixture expects missed=%v (%+v)", res.Holds, f.missed, res)
			}
		})
	}
}
