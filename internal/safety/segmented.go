package safety

import (
	"errors"
	"fmt"

	"livetm/internal/model"
)

// The monolithic checker is exponential in the number of transactions,
// which caps it at small histories. Long histories from the simulator,
// however, usually have *quiescent cuts*: moments where no transaction
// is live. Transactions entirely before a cut precede (in real time)
// all transactions entirely after it, so every real-time-preserving
// serialization is a serialization of the first part followed by one
// of the second — the parts only communicate through the committed
// snapshot. CheckOpacitySegmented exploits this: it splits the history
// at quiescent cuts into segments of bounded size and propagates the
// set of feasible committed snapshots across segments.
//
// This is sound and complete: it accepts exactly the opaque histories
// among those it can segment. Histories with no suitable cuts (a
// transaction spanning everything) fall back to the caller's choice.

// ErrNoQuiescentCut is returned when the history cannot be split into
// segments of the requested size.
var ErrNoQuiescentCut = errors.New("safety: no quiescent cut within the segment budget")

// SegmentedResult reports the outcome of a segmented opacity check.
type SegmentedResult struct {
	Holds    bool
	Segments int
	// Reason explains the violation (the failing segment) when Holds
	// is false.
	Reason string
	// Approx reports that the verdict was reached through forced
	// serialization frontiers (the streaming checker's bounded-overlap
	// fallback, see StreamChecker.WithApproxFallback): ordering
	// constraints across a forced frontier were not searched, so the
	// verdict is an explicit approximation, not a decision.
	Approx bool
	// ForcedCuts counts the forced frontiers the verdict rests on.
	ForcedCuts int
	// RelaxedStraddlers counts transactions carried across a forced
	// frontier whose reads had to be waived to serialize a later
	// segment: their reads pinned mid-window states whose explaining
	// writers were already flushed, so they are unverifiable rather
	// than wrong (see StreamChecker).
	RelaxedStraddlers int
}

// CheckOpacitySegmented decides opacity of a (possibly long) history
// by splitting it at quiescent cuts into segments of at most
// maxTxnsPerSegment transactions each.
func CheckOpacitySegmented(h model.History, maxTxnsPerSegment int) (SegmentedResult, error) {
	if maxTxnsPerSegment <= 0 {
		return SegmentedResult{}, fmt.Errorf("safety: segment budget %d must be positive", maxTxnsPerSegment)
	}
	if maxTxnsPerSegment > 64 {
		// The same cap as the monolithic checker, reported with the
		// same sentinel so callers handle one error either way.
		return SegmentedResult{}, fmt.Errorf("%w: segment budget %d exceeds the 64-transaction search cap", ErrTooManyTransactions, maxTxnsPerSegment)
	}
	txns, err := model.Transactions(h)
	if err != nil {
		return SegmentedResult{}, fmt.Errorf("segmented opacity: %w", err)
	}
	if len(txns) == 0 {
		return SegmentedResult{Holds: true, Segments: 0}, nil
	}

	segments, err := segment(txns, maxTxnsPerSegment)
	if err != nil {
		return SegmentedResult{}, err
	}

	// Propagate the feasible committed snapshots segment by segment.
	states := []model.Snapshot{make(model.Snapshot)}
	for i, seg := range segments {
		next, err := feasibleFinals(seg, states)
		if err != nil {
			return SegmentedResult{}, err
		}
		if len(next) == 0 {
			return SegmentedResult{
				Holds:    false,
				Segments: len(segments),
				Reason:   fmt.Sprintf("segment %d of %d (transactions %s..%s) admits no legal serialization from any feasible predecessor state", i+1, len(segments), seg[0].ID(), seg[len(seg)-1].ID()),
			}, nil
		}
		states = next
	}
	return SegmentedResult{Holds: true, Segments: len(segments)}, nil
}

// segment splits the transactions (ordered by first event) at
// quiescent cuts so each segment has at most max transactions. A cut
// before transaction i is quiescent when every earlier transaction
// ends before transaction i's first event.
func segment(txns []*model.Transaction, max int) ([][]*model.Transaction, error) {
	// maxLast[i] = max Last over txns[0..i].
	maxLast := make([]int, len(txns))
	running := -1
	for i, t := range txns {
		if t.Last > running {
			running = t.Last
		}
		// A live transaction extends to the end of the history.
		if t.Status == model.Live {
			running = int(^uint(0) >> 1)
		}
		maxLast[i] = running
	}
	var out [][]*model.Transaction
	start := 0
	for start < len(txns) {
		// The largest end such that txns[start:end] ≤ max and end is a
		// quiescent cut (or the end of the history).
		end := -1
		for e := start + 1; e <= len(txns) && e-start <= max; e++ {
			if e == len(txns) || maxLast[e-1] < txns[e].First {
				end = e
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("%w: %d concurrent transactions at %s", ErrNoQuiescentCut, max+1, txns[start].ID())
		}
		out = append(out, txns[start:end])
		start = end
	}
	return out, nil
}

// feasibleFinals returns the deduplicated committed snapshots
// reachable by legally serializing the segment from any of the given
// start states.
func feasibleFinals(seg []*model.Transaction, starts []model.Snapshot) ([]model.Snapshot, error) {
	return feasibleFinalsRelaxed(seg, starts, 0)
}

// feasibleFinalsRelaxed is feasibleFinals with a bitmask of segment
// transactions whose read legality is waived: transactions that
// straddled a forced serialization frontier (the streaming checker's
// bounded-overlap fallback) read values the flushed window would have
// had to explain, and that window is gone — their reads are
// unverifiable, not wrong. A relaxed transaction still occupies its
// real-time slot and still applies its write set when (treated as)
// committed, so the propagated states stay exact for everyone else.
func feasibleFinalsRelaxed(seg []*model.Transaction, starts []model.Snapshot, relaxed uint64) (finals []model.Snapshot, err error) {
	n := len(seg)
	if n > 64 {
		return nil, ErrTooManyTransactions
	}
	preds := make([]uint64, n)
	for i, a := range seg {
		for j, b := range seg {
			if i != j && b.Precedes(a) {
				preds[i] |= 1 << uint(j)
			}
		}
	}
	finalSet := make(map[string]model.Snapshot)
	seen := make(map[string]bool)
	for _, start := range starts {
		collectFinals(seg, preds, relaxed, 0, start, finalSet, seen)
	}
	for _, s := range finalSet {
		finals = append(finals, s)
	}
	return finals, nil
}

// collectFinals enumerates all legal linear extensions, recording the
// final snapshot of each complete one. Unlike the decision search it
// cannot stop at the first witness — different witnesses may end in
// different snapshots — but segments are small by construction, and
// (placed, state) pairs already explored are skipped: their reachable
// finals were recorded on the first visit.
func collectFinals(seg []*model.Transaction, preds []uint64, relaxed, placed uint64, state model.Snapshot, finals map[string]model.Snapshot, seen map[string]bool) {
	key := memoKey(placed, state)
	if seen[key] {
		return
	}
	seen[key] = true
	if placed == uint64(1)<<uint(len(seg))-1 {
		finals[memoKey(0, state)] = state
		return
	}
	for i := range seg {
		bit := uint64(1) << uint(i)
		if placed&bit != 0 || preds[i]&^placed != 0 {
			continue
		}
		t := seg[i]
		if relaxed&bit == 0 && model.LegalInState(t, state) != nil {
			continue
		}
		commits := []bool{t.Status == model.Committed}
		if commitPending(t) {
			commits = []bool{false, true}
		}
		for _, asCommitted := range commits {
			next := state
			if asCommitted {
				ws := t.WriteSet()
				if len(ws) > 0 {
					next = state.Clone()
					next.Apply(ws)
				}
			}
			collectFinals(seg, preds, relaxed, placed|bit, next, finals, seen)
		}
	}
}
