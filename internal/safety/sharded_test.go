package safety

import (
	"errors"
	"testing"
	"testing/quick"

	"livetm/internal/model"
)

// evenOddShard splits the two-variable test keyspace: even variables
// to shard 0, odd to shard 1.
func evenOddShard(v model.TVar) int { return int(v) % 2 }

// feedSharded streams a whole history through a fresh sharded checker
// and returns its verdict, folding a mid-stream violation into the
// result the way Monitor does.
func feedSharded(t *testing.T, h model.History, cfg ShardConfig) (SegmentedResult, error) {
	t.Helper()
	c, err := NewShardedChecker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range h {
		if err := c.Feed(e); err != nil {
			if errors.Is(err, ErrStreamNotOpaque) {
				return c.Finish()
			}
			return SegmentedResult{}, err
		}
	}
	return c.Finish()
}

// TestShardedAgreesOnFigures: the sharded checker reproduces the
// paper-figure verdicts of the single checker.
func TestShardedAgreesOnFigures(t *testing.T) {
	tests := []struct {
		name string
		h    model.History
		want bool
	}{
		{"fig1", fig1(), true},
		{"fig3", fig3(), false},
		{"fig4", fig4(), false},
		{"fig8", figAlg1Termination(0), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := feedSharded(t, tt.h, ShardConfig{
				Shards: 2, SegmentTxns: 8, VarShard: evenOddShard,
			})
			if err != nil && !errors.Is(err, ErrStreamNotOpaque) {
				t.Fatal(err)
			}
			if res.Holds != tt.want && !(tt.want == false && res.Approx) {
				t.Errorf("sharded = %v (%s), want %v", res.Holds, res.Reason, tt.want)
			}
		})
	}
}

// The satellite property: sharded checking never flips a verdict
// against the single-checker baseline on the same history. Concretely,
// with the monolithic checker as ground truth on every random history
// it can decide: a sharded violation is always real, and a sharded
// non-approximate "holds" is always right. An approximate "holds" may
// hide a violation (that is what Approx declares), never invent one.
func TestShardedNeverFlipsVerdict(t *testing.T) {
	for _, shards := range []int{1, 2} {
		f := func(raw []uint8) bool {
			h := genHistory(raw)
			mono, err := CheckOpacity(h)
			if err != nil {
				return true
			}
			c, err := NewShardedChecker(ShardConfig{
				Shards: shards, SegmentTxns: 4, VarShard: evenOddShard, Approx: true,
			})
			if err != nil {
				return false
			}
			var streamErr error
			for _, e := range h {
				if streamErr = c.Feed(e); streamErr != nil {
					break
				}
			}
			res, ferr := c.Finish()
			switch {
			case errors.Is(streamErr, ErrStreamNotOpaque):
				return !mono.Holds
			case streamErr != nil:
				return false
			case ferr != nil:
				return false
			case !res.Holds:
				return !mono.Holds
			default:
				return res.Approx || mono.Holds
			}
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("shards=%d: %v", shards, err)
		}
	}
}

// TestShardedDisjointExact: per-shard counter chains on a 4-way
// partition check exactly — no merges, no approximation — with every
// lane contributing segments and the buffers staying bounded.
func TestShardedDisjointExact(t *testing.T) {
	const shards = 4
	b := model.NewBuilder()
	for i := 0; i < 200; i++ {
		p := model.Proc(i%shards + 1)
		x := model.TVar(int(p) - 1)
		b.Read(p, x, model.Value(i/shards)).Write(p, x, model.Value(i/shards+1)).Commit(p)
	}
	c, err := NewShardedChecker(ShardConfig{
		Shards: shards, SegmentTxns: 8,
		VarShard: func(v model.TVar) int { return int(v) % shards },
	})
	if err != nil {
		t.Fatal(err)
	}
	maxBuffered := 0
	for _, e := range b.History() {
		if err := c.Feed(e); err != nil {
			t.Fatal(err)
		}
		if n := c.Buffered(); n > maxBuffered {
			maxBuffered = n
		}
	}
	res, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds || res.Approx {
		t.Fatalf("disjoint chains must hold exactly: %+v", res)
	}
	for s, n := range c.PerShardSegments() {
		if n == 0 {
			t.Errorf("shard %d checked no segments", s)
		}
	}
	if maxBuffered > shards*9*6 {
		t.Errorf("buffer grew to %d events across %d shards", maxBuffered, shards)
	}
}

// TestShardedDetectsLocalViolation: a violation confined to one shard
// surfaces even while another shard's straddler keeps the stream from
// ever quiescing globally.
func TestShardedDetectsLocalViolation(t *testing.T) {
	b := model.NewBuilder()
	b.Raw(model.Read(3, 1), model.ValueResp(3, 0)) // shard-1 straddler
	for i := 0; i < 6; i++ {
		b.Read(1, 0, model.Value(i)).Write(1, 0, model.Value(i+1)).Commit(1)
	}
	b.Read(2, 0, 99).Commit(2) // unexplained shard-0 value
	b.Raw(model.TryCommit(3), model.Commit(3))
	res, err := feedSharded(t, b.History(), ShardConfig{
		Shards: 2, SegmentTxns: 8, VarShard: evenOddShard,
	})
	if err != nil && !errors.Is(err, ErrStreamNotOpaque) {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatalf("shard-local violation lost: %+v", res)
	}
}

// TestShardedCrossShardViolation is the ViolatingStream sweep variant
// that plants the violation across the shard boundary: each shard's
// projection is innocent on its own, so only the cross-shard merge
// pass can reject. The sweep varies increments and staleness depth;
// the single checker is the baseline on every instance.
func TestShardedCrossShardViolation(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		for _, d := range []int{1, 2} {
			if d > k {
				continue
			}
			h := ViolatingStream(StreamGenConfig{Increments: k, StaleDepth: d, CrossShard: true})
			base, err := feedAll(t, h, 64)
			if err != nil && !errors.Is(err, ErrStreamNotOpaque) {
				t.Fatal(err)
			}
			if err == nil && base.Holds {
				t.Fatalf("k=%d d=%d: baseline accepted a violating stream", k, d)
			}
			// z (the straddler's variable) lands on shard 0 under the
			// even/odd split, so the group is cut-starved until the end.
			res, err := feedSharded(t, h, ShardConfig{
				Shards: 2, SegmentTxns: 64, VarShard: evenOddShard,
			})
			if err != nil && !errors.Is(err, ErrStreamNotOpaque) {
				t.Fatal(err)
			}
			if res.Holds {
				t.Fatalf("k=%d d=%d: cross-shard violation lost: %+v", k, d, res)
			}
			// A 4-way split isolates z on shard 2: the x/y group
			// quiesces after every spanning increment, and the merge
			// pass alone must still reject.
			res, err = feedSharded(t, h, ShardConfig{
				Shards: 4, SegmentTxns: 16,
				VarShard: func(v model.TVar) int { return int(v) % 4 },
			})
			if err != nil && !errors.Is(err, ErrStreamNotOpaque) {
				t.Fatal(err)
			}
			if res.Holds {
				t.Fatalf("k=%d d=%d: merge pass missed the cross-shard violation: %+v", k, d, res)
			}
		}
	}
}

// TestShardedViolatingStreamSweep: on every classic ViolatingStream
// variant and budget, the sharded checker is no weaker than the
// single checker — wherever the baseline rejects, the sharded one
// either rejects too or holds only under an explicit approximation
// (the straddler-waiver miss window both document).
func TestShardedViolatingStreamSweep(t *testing.T) {
	cfgs := []StreamGenConfig{
		{Increments: 6, StaleDepth: 1},
		{Increments: 6, StaleDepth: 3, OpenReader: true},
		{Increments: 6, StaleDepth: 1, StraddlerViolation: true},
		{Increments: 6, StaleDepth: 2, CrossShard: true},
	}
	for _, gen := range cfgs {
		h := ViolatingStream(gen)
		for _, budget := range []int{3, 8, 63} {
			c, err := NewShardedChecker(ShardConfig{
				Shards: 2, SegmentTxns: budget, VarShard: evenOddShard, Approx: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			var streamErr error
			for _, e := range h {
				if streamErr = c.Feed(e); streamErr != nil {
					break
				}
			}
			if streamErr != nil && !errors.Is(streamErr, ErrStreamNotOpaque) {
				t.Fatalf("%+v budget %d: %v", gen, budget, streamErr)
			}
			res, err := c.Finish()
			if err != nil {
				t.Fatalf("%+v budget %d: %v", gen, budget, err)
			}
			if res.Holds && !res.Approx {
				t.Errorf("%+v budget %d: violating stream accepted exactly: %+v", gen, budget, res)
			}
		}
	}
}

// TestShardedStraddlerFalseAlarm: the two-straddler fixture that is
// genuinely opaque must survive sharded forced frontiers too.
func TestShardedStraddlerFalseAlarm(t *testing.T) {
	b := model.NewBuilder()
	b.Raw(model.Read(3, 0), model.ValueResp(3, 0))
	b.Read(1, 0, 0).Write(1, 0, 1).Commit(1)
	b.Raw(model.Read(4, 0), model.ValueResp(4, 1))
	for i := 1; i < 9; i++ {
		b.Read(1, 0, model.Value(i)).Write(1, 0, model.Value(i+1)).Commit(1)
	}
	b.Raw(model.TryCommit(3), model.Commit(3))
	b.Raw(model.TryCommit(4), model.Commit(4))
	res, err := feedSharded(t, b.History(), ShardConfig{
		Shards: 2, SegmentTxns: 3, VarShard: evenOddShard, Approx: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("opaque two-straddler stream judged violating: %s", res.Reason)
	}
	if !res.Approx || res.RelaxedStraddlers == 0 {
		t.Fatalf("waivers must be reported: %+v", res)
	}
}

// TestShardedValidation covers the constructor's contract.
func TestShardedValidation(t *testing.T) {
	if _, err := NewShardedChecker(ShardConfig{Shards: 0, SegmentTxns: 4}); err == nil {
		t.Error("0 shards must be rejected")
	}
	if _, err := NewShardedChecker(ShardConfig{Shards: 2, SegmentTxns: 4}); err == nil {
		t.Error("missing VarShard must be rejected")
	}
	if _, err := NewShardedChecker(ShardConfig{Shards: 1, SegmentTxns: 65}); !errors.Is(err, ErrTooManyTransactions) {
		t.Errorf("budget 65: err = %v, want ErrTooManyTransactions", err)
	}
	c, err := NewShardedChecker(ShardConfig{Shards: 1, SegmentTxns: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Finish()
	if err != nil || !res.Holds {
		t.Errorf("empty stream must hold: %+v, %v", res, err)
	}
	if err := c.Feed(model.Commit(1)); err == nil {
		t.Error("Feed after Finish must error")
	}
}
