package safety

import "livetm/internal/telemetry"

// LaneTelemetry is the push-style telemetry handle bundle of one
// checker lane. The lane counters (segments, forced frontiers, waived
// straddler reads) are plain ints owned by the lane's worker
// goroutine, so a scraper must never read them mid-run; instead the
// lane pushes every increment into these atomic instruments, which a
// snapshot can read at any moment without racing the worker. Buffered
// tracks the lane's current backlog in events — its lag behind the
// producers. Unset fields are replaced by bare (unregistered)
// instruments, so checker code carries no nil checks.
type LaneTelemetry struct {
	// Segments counts segments the lane has checked.
	Segments *telemetry.Counter
	// Forced counts forced serialization frontiers the lane took.
	Forced *telemetry.Counter
	// Relaxed counts straddler reads the lane waived.
	Relaxed *telemetry.Counter
	// Buffered is the lane's current buffered-event backlog.
	Buffered *telemetry.Gauge
}

func (t LaneTelemetry) orBare() LaneTelemetry {
	if t.Segments == nil {
		t.Segments = &telemetry.Counter{}
	}
	if t.Forced == nil {
		t.Forced = &telemetry.Counter{}
	}
	if t.Relaxed == nil {
		t.Relaxed = &telemetry.Counter{}
	}
	if t.Buffered == nil {
		t.Buffered = &telemetry.Gauge{}
	}
	return t
}

// CheckerMetrics bundles the lane telemetry of a sharded checker:
// one LaneTelemetry per shard plus one for the cross-shard merge pass
// (whose Buffered gauge is unused — merges run on borrowed lane
// buffers). A single StreamChecker uses Lanes[0].
type CheckerMetrics struct {
	Lanes []LaneTelemetry
	Merge LaneTelemetry
}

func (m *CheckerMetrics) lane(i int) LaneTelemetry {
	if m != nil && i < len(m.Lanes) {
		return m.Lanes[i].orBare()
	}
	return LaneTelemetry{}.orBare()
}

func (m *CheckerMetrics) merge() LaneTelemetry {
	if m != nil {
		return m.Merge.orBare()
	}
	return LaneTelemetry{}.orBare()
}
