// Package safety decides the two safety properties of the paper on
// finite histories: opacity and strict serializability (§2.4).
//
// A finite history H is opaque iff there is a sequential history Hs
// equivalent to com(H) that preserves the real-time order of com(H)
// and in which every transaction is legal. Strict serializability is
// the same condition applied to the committed projection of H.
//
// The checkers search the linear extensions of the real-time partial
// order with incremental legality pruning and memoization on
// (placed-set, committed-state) pairs. The search is exponential in the
// worst case — deciding opacity is NP-hard in general — so callers keep
// the checked windows small (the experiments use ≤ ~16 transactions).
//
// Both checkers represent transaction sets as 64-bit masks, capping
// any single search window at 64 transactions; exceeding the cap
// (either directly in CheckOpacity/CheckStrictSerializability, or by
// asking CheckOpacitySegmented for a segment budget above 64) is
// reported as ErrTooManyTransactions, detectable with errors.Is.
// Longer histories go through CheckOpacitySegmented, which splits at
// quiescent cuts so each exponential search stays within the cap.
package safety

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"livetm/internal/model"
)

// ErrTooManyTransactions is returned when a history has more
// transactions than the checker's search representation supports.
var ErrTooManyTransactions = errors.New("safety: history exceeds 64 transactions")

// Result is the outcome of a safety check.
type Result struct {
	// Holds reports whether the property is satisfied.
	Holds bool
	// Witness is a serialization order proving the property when Holds
	// is true: the transactions of the (completed or committed-
	// projected) history in a legal real-time-preserving order.
	Witness []*model.Transaction
	// Reason explains a violation when Holds is false.
	Reason string
	// Explored counts the serialization prefixes visited by the
	// search; it is reported for the checker-ablation benchmark.
	Explored int
}

// WitnessHistory renders the witness as a complete sequential history,
// or nil when the property does not hold.
func (r Result) WitnessHistory() model.History {
	if !r.Holds {
		return nil
	}
	return model.SequentialHistory(r.Witness)
}

// CheckOpacity decides whether the finite history is opaque.
//
// Completion follows the paper's reference [18] (Guerraoui & Kapałka,
// Principles of Transactional Memory) rather than the preprint's
// coarser com(H): a live transaction whose pending invocation is tryC
// is *commit-pending* and may be completed as either committed or
// aborted; every other live transaction is aborted. The distinction
// matters for helping TMs — a crashed committer's transaction can be
// finished by a helper, making its writes visible even though the
// crashed process never receives its commit event (found by the
// crash-exhaustive model checker in internal/explore).
func CheckOpacity(h model.History) (Result, error) {
	txns, err := model.Transactions(h)
	if err != nil {
		return Result{}, fmt.Errorf("opacity: %w", err)
	}
	return serialize(txns, true)
}

// CheckStrictSerializability decides whether the finite history is
// strictly serializable.
func CheckStrictSerializability(h model.History) (Result, error) {
	hcom, err := model.CommittedProjection(h)
	if err != nil {
		return Result{}, fmt.Errorf("strict serializability: %w", err)
	}
	txns, err := model.Transactions(hcom)
	if err != nil {
		return Result{}, fmt.Errorf("strict serializability: %w", err)
	}
	return serialize(txns, true)
}

// commitPending reports whether the transaction is live with a
// pending tryC invocation: the TM may have decided its fate without
// the process learning it, so completion may commit or abort it.
func commitPending(t *model.Transaction) bool {
	return t.Status == model.Live && t.PendingInv != nil && t.PendingInv.Kind == model.InvTryCommit
}

// completedAs returns a copy of t completed with the given status,
// for witness construction.
func completedAs(t *model.Transaction, st model.TxnStatus) *model.Transaction {
	c := *t
	c.Status = st
	if st == model.Committed {
		c.Ops = append(append([]model.Op(nil), t.Ops...), model.Op{Kind: model.OpTryCommit})
		c.PendingInv = nil
	}
	return &c
}

// serialize searches for a legal linear extension of the real-time
// order over txns. With prune set, it discards prefixes as soon as a
// placed transaction is illegal; without, it only checks legality of
// complete orders (the naive variant kept for the ablation benchmark).
// Commit-pending transactions branch over both completions.
func serialize(txns []*model.Transaction, prune bool) (Result, error) {
	n := len(txns)
	if n > 64 {
		return Result{}, ErrTooManyTransactions
	}
	if n == 0 {
		return Result{Holds: true}, nil
	}

	// preds[i] is the bitmask of transactions that must precede i.
	preds := make([]uint64, n)
	for i, a := range txns {
		for j, b := range txns {
			if i != j && b.Precedes(a) {
				preds[i] |= 1 << uint(j)
			}
		}
	}

	s := &searcher{txns: txns, preds: preds, prune: prune, failed: make(map[string]bool)}
	order := make([]placement, 0, n)
	found := s.dfs(0, make(model.Snapshot), order)
	res := Result{Holds: found, Explored: s.explored}
	if found {
		res.Witness = make([]*model.Transaction, n)
		for i, pl := range s.witness {
			t := txns[pl.idx]
			switch {
			case t.Status != model.Live:
				res.Witness[i] = t
			case pl.committed:
				res.Witness[i] = completedAs(t, model.Committed)
			default:
				res.Witness[i] = completedAs(t, model.Aborted)
			}
		}
		return res, nil
	}
	res.Reason = s.reason()
	return res, nil
}

// placement records one serialized transaction and, for commit-pending
// ones, the chosen completion.
type placement struct {
	idx       int
	committed bool
}

type searcher struct {
	txns     []*model.Transaction
	preds    []uint64
	prune    bool
	failed   map[string]bool // memo of (placed, state) prefixes known not to extend
	witness  []placement
	explored int
	lastErr  error // deepest legality violation seen, for diagnostics
	lastLen  int
}

func (s *searcher) dfs(placed uint64, state model.Snapshot, order []placement) bool {
	n := len(s.txns)
	if len(order) == n {
		if !s.prune {
			// The naive variant validates the complete order here.
			ordered := make([]*model.Transaction, n)
			for i, pl := range order {
				t := s.txns[pl.idx]
				if t.Status == model.Live {
					st := model.Aborted
					if pl.committed {
						st = model.Committed
					}
					t = completedAs(t, st)
				}
				ordered[i] = t
			}
			if err := model.LegalSequence(ordered); err != nil {
				s.note(err, n)
				return false
			}
		}
		s.witness = append([]placement(nil), order...)
		return true
	}
	// Memoization is sound only when pruning: with pruning, every
	// prefix reaching (placed, state) is already known legal, so
	// extendability depends only on (placed, state). The naive variant
	// validates whole orders at the leaves, where the prefix matters.
	var key string
	if s.prune {
		key = memoKey(placed, state)
		if s.failed[key] {
			return false
		}
	}
	for i := 0; i < n; i++ {
		bit := uint64(1) << uint(i)
		if placed&bit != 0 || s.preds[i]&^placed != 0 {
			continue
		}
		t := s.txns[i]
		commits := []bool{t.Status == model.Committed}
		if commitPending(t) {
			// Branch: complete the pending tryC as aborted, then as
			// committed.
			commits = []bool{false, true}
		}
		for _, asCommitted := range commits {
			s.explored++
			if s.prune {
				if err := model.LegalInState(t, state); err != nil {
					s.note(err, len(order))
					break // legality does not depend on the completion
				}
			}
			next := state
			if asCommitted {
				ws := t.WriteSet()
				if len(ws) > 0 {
					next = state.Clone()
					next.Apply(ws)
				}
			}
			if s.dfs(placed|bit, next, append(order, placement{idx: i, committed: asCommitted})) {
				return true
			}
		}
	}
	if s.prune {
		s.failed[key] = true
	}
	return false
}

func (s *searcher) note(err error, depth int) {
	if depth >= s.lastLen {
		s.lastLen = depth
		s.lastErr = err
	}
}

func (s *searcher) reason() string {
	ids := make([]string, len(s.txns))
	for i, t := range s.txns {
		ids[i] = t.ID()
	}
	msg := fmt.Sprintf("no legal real-time-preserving serialization of {%s} exists", strings.Join(ids, ", "))
	if s.lastErr != nil {
		msg += "; deepest obstacle: " + s.lastErr.Error()
	}
	return msg
}

// memoKey canonically encodes a search state. Only committed writes are
// in the snapshot, so two prefixes with the same placed set and the
// same resulting state are interchangeable. It sits on the innermost
// loop of every serialization search (the live monitor pays it per
// event), hence the hand-rolled formatting: insertion sort over the
// handful of touched variables and strconv appends, no fmt machinery.
func memoKey(placed uint64, state model.Snapshot) string {
	vars := make([]model.TVar, 0, len(state))
	for x := range state {
		vars = append(vars, x)
	}
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && vars[j] < vars[j-1]; j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
	buf := make([]byte, 0, 16+12*len(vars))
	buf = strconv.AppendUint(buf, placed, 16)
	buf = append(buf, '|')
	for _, x := range vars {
		buf = strconv.AppendInt(buf, int64(x), 10)
		buf = append(buf, '=')
		buf = strconv.AppendInt(buf, int64(state[x]), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

// CheckOpacityNaive is CheckOpacity without incremental pruning:
// complete orders are generated first and validated afterwards. It
// exists to quantify the value of pruning (DESIGN.md §5) and must
// agree with CheckOpacity on every history.
func CheckOpacityNaive(h model.History) (Result, error) {
	txns, err := model.Transactions(h)
	if err != nil {
		return Result{}, fmt.Errorf("opacity (naive): %w", err)
	}
	return serialize(txns, false)
}
