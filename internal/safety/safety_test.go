package safety

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"livetm/internal/model"
)

// fig1 is Figure 1: T1 reads 0, T2 reads 0 / writes 1 / commits, then
// T1's write is ok'd and its commit aborted. Opaque and strictly
// serializable.
func fig1() model.History {
	return model.History{
		model.Read(1, 0), model.ValueResp(1, 0),
		model.Read(2, 0), model.ValueResp(2, 0),
		model.Write(2, 0, 1), model.OK(2),
		model.TryCommit(2), model.Commit(2),
		model.Write(1, 0, 1), model.OK(1),
		model.TryCommit(1), model.Abort(1),
	}
}

// fig3 is Figure 3: both transactions read 0, write 1, and commit —
// neither opaque nor strictly serializable (lost update).
func fig3() model.History {
	return model.NewBuilder().
		Read(1, 0, 0).
		Read(2, 0, 0).Write(2, 0, 1).Commit(2).
		Write(1, 0, 1).Commit(1).
		History()
}

// fig4 is Figure 4: T2 writes 1 and commits while T1 is live; T1 then
// reads 1 and aborts. Strictly serializable (committed part is just
// T2) but not opaque (T1 read 0 then 1: no single consistent point).
func fig4() model.History {
	return model.History{
		model.Read(1, 0), model.ValueResp(1, 0),
		model.Write(2, 0, 1), model.OK(2),
		model.TryCommit(2), model.Commit(2),
		model.Read(1, 0), model.ValueResp(1, 1),
		model.TryCommit(1), model.Abort(1),
	}
}

// figAlg1Termination is the Figure 8 / Figure 11 suffix: both
// processes read v, both write v+1, both commit. The proof of Theorem
// 1 shows it is not opaque; with both committed it is not strictly
// serializable either.
func figAlg1Termination(v model.Value) model.History {
	return model.History{
		model.Read(1, 0), model.ValueResp(1, v),
		model.Read(2, 0), model.ValueResp(2, v),
		model.Write(2, 0, v+1), model.OK(2),
		model.TryCommit(2), model.Commit(2),
		model.Write(1, 0, v+1), model.OK(1),
		model.TryCommit(1), model.Commit(1),
	}
}

func TestFigureVerdicts(t *testing.T) {
	tests := []struct {
		name   string
		h      model.History
		opaque bool
		ss     bool
	}{
		{"figure 1", fig1(), true, true},
		{"figure 3", fig3(), false, false},
		{"figure 4", fig4(), false, true},
		{"figures 8 and 11 (v=0)", figAlg1Termination(0), false, false},
		{"figures 8 and 11 (v=41)", figAlg1Termination(41), false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			op, err := CheckOpacity(tt.h)
			if err != nil {
				t.Fatal(err)
			}
			ss, err := CheckStrictSerializability(tt.h)
			if err != nil {
				t.Fatal(err)
			}
			if op.Holds != tt.opaque {
				t.Errorf("opaque = %v (%s), want %v", op.Holds, op.Reason, tt.opaque)
			}
			if ss.Holds != tt.ss {
				t.Errorf("strictly serializable = %v (%s), want %v", ss.Holds, ss.Reason, tt.ss)
			}
		})
	}
}

func TestWitnessIsLegalAndEquivalent(t *testing.T) {
	h := fig1()
	res, err := CheckOpacity(h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("figure 1 must be opaque: %s", res.Reason)
	}
	w := res.WitnessHistory()
	if seq, _ := model.IsSequential(w); !seq {
		t.Error("witness must be sequential")
	}
	if err := model.LegalSequence(res.Witness); err != nil {
		t.Errorf("witness order must be legal: %v", err)
	}
	if !w.Equivalent(model.Complete(h)) {
		t.Error("witness must be equivalent to com(H)")
	}
	// In Figure 1 the only legal order puts aborted T1 first.
	if res.Witness[0].Proc != 1 {
		t.Errorf("figure 1 witness order starts with T%d, want T1", res.Witness[0].Proc)
	}
}

func TestWitnessHistoryNilOnViolation(t *testing.T) {
	res, err := CheckOpacity(fig3())
	if err != nil {
		t.Fatal(err)
	}
	if res.WitnessHistory() != nil {
		t.Error("violating history must have nil witness")
	}
	if res.Reason == "" {
		t.Error("violation must carry a reason")
	}
	if !strings.Contains(res.Reason, "T") {
		t.Errorf("reason should mention transactions: %q", res.Reason)
	}
}

func TestEmptyAndTrivialHistories(t *testing.T) {
	for _, h := range []model.History{
		nil,
		{},
		model.NewBuilder().Read(1, 0, 0).Commit(1).History(),
		model.NewBuilder().ReadAbort(1, 0).History(),
		{model.Read(1, 0)}, // live transaction, pending read
	} {
		op, err := CheckOpacity(h)
		if err != nil {
			t.Fatal(err)
		}
		if !op.Holds {
			t.Errorf("trivial history %v must be opaque: %s", h, op.Reason)
		}
		ss, err := CheckStrictSerializability(h)
		if err != nil {
			t.Fatal(err)
		}
		if !ss.Holds {
			t.Errorf("trivial history %v must be strictly serializable", h)
		}
	}
}

func TestOpacityRequiresRealTimeOrder(t *testing.T) {
	// T1 commits writing 1, then strictly later T2 reads 0: the only
	// legal serialization (T2 before T1) violates real-time order.
	h := model.NewBuilder().
		Write(1, 0, 1).Commit(1).
		Read(2, 0, 0).Commit(2).
		History()
	res, err := CheckOpacity(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("stale read after a committed write in strict sequence must not be opaque")
	}
}

func TestOpacityAllowsConcurrentReordering(t *testing.T) {
	// Same reads/writes, but T2 starts before T1 ends: serializing T2
	// first is now allowed.
	h := model.History{
		model.Write(1, 0, 1), model.OK(1),
		model.Read(2, 0), model.ValueResp(2, 0),
		model.TryCommit(1), model.Commit(1),
		model.TryCommit(2), model.Commit(2),
	}
	res, err := CheckOpacity(h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("concurrent transactions may serialize in either order: %s", res.Reason)
	}
}

func TestAbortedTransactionsMustSeeConsistentState(t *testing.T) {
	// The aborted T1 reads x=1,y=0 while the only committed state
	// transitions are (0,0) -> (1,1). Strictly serializable (T1 is
	// dropped) but not opaque.
	h := model.History{
		model.Read(1, 0), model.ValueResp(1, 1), // T1 reads x=1 ...
		model.Read(1, 1), model.ValueResp(1, 0), // ... and y=0: inconsistent
		model.TryCommit(1), model.Abort(1),
		model.Write(2, 0, 1), model.OK(2),
		model.Write(2, 1, 1), model.OK(2),
		model.TryCommit(2), model.Commit(2),
	}
	op, _ := CheckOpacity(h)
	if op.Holds {
		t.Error("aborted transaction observing a mixed snapshot must break opacity")
	}
	ss, _ := CheckStrictSerializability(h)
	if !ss.Holds {
		t.Errorf("dropping the aborted transaction leaves a serializable history: %s", ss.Reason)
	}
}

func TestOpacityImpliesStrictSerializabilityProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		h := genHistory(raw)
		op, err := CheckOpacity(h)
		if err != nil {
			return true // oversized histories are out of scope
		}
		if !op.Holds {
			return true
		}
		ss, err := CheckStrictSerializability(h)
		if err != nil {
			return true
		}
		return ss.Holds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestNaiveCheckerAgreesProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		h := genHistory(raw)
		txns, err := model.Transactions(h)
		if err != nil || len(txns) > 6 {
			return true // keep the naive search tractable
		}
		fast, err1 := CheckOpacity(h)
		slow, err2 := CheckOpacityNaive(h)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return fast.Holds == slow.Holds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPruningExploresLess(t *testing.T) {
	h := figAlg1Termination(0)
	fast, err := CheckOpacity(h)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := CheckOpacityNaive(h)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Explored > slow.Explored {
		t.Errorf("pruning explored %d prefixes, naive %d — pruning should not explore more",
			fast.Explored, slow.Explored)
	}
}

// --- Commit-pending completion (the [18]-style completion) ---

// TestCommitPendingMayCommit: a helper finished the crashed
// committer's transaction, so its writes are visible although its C
// event was never delivered. The completion must be allowed to commit
// the pending tryC (found by the crash-exhaustive model checker).
func TestCommitPendingMayCommit(t *testing.T) {
	h := model.History{
		model.Write(1, 0, 7), model.OK(1),
		model.TryCommit(1), // p1 crashes here; a helper completes the commit
		model.Read(2, 0), model.ValueResp(2, 7),
		model.TryCommit(2), model.Commit(2),
	}
	res, err := CheckOpacity(h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("commit-pending completion must admit the helped commit: %s", res.Reason)
	}
	// The witness must complete T1.0 as committed.
	if res.Witness[0].ID() != "T1.0" || res.Witness[0].Status != model.Committed {
		t.Errorf("witness[0] = %s, want committed T1.0", res.Witness[0])
	}
	seg, err := CheckOpacitySegmented(h, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !seg.Holds {
		t.Errorf("segmented checker must agree: %s", seg.Reason)
	}
}

// TestCommitPendingMayAbort: the same pending tryC completed as
// aborted when committing would be illegal.
func TestCommitPendingMayAbort(t *testing.T) {
	h := model.History{
		model.Write(1, 0, 7), model.OK(1),
		model.TryCommit(1), // pending forever; nothing was published
		model.Read(2, 0), model.ValueResp(2, 0),
		model.TryCommit(2), model.Commit(2),
	}
	res, err := CheckOpacity(h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("abort-completion must admit the unpublished commit: %s", res.Reason)
	}
}

// TestCommitPendingCannotHaveItBothWays: two readers observing
// contradictory fates of the same pending commit stay non-opaque.
func TestCommitPendingCannotHaveItBothWays(t *testing.T) {
	h := model.History{
		model.Write(1, 0, 7), model.OK(1),
		model.TryCommit(1),
		// Both readers run strictly after each other: r2 sees 7, r3
		// later sees 0 — no single completion explains both.
		model.Read(2, 0), model.ValueResp(2, 7),
		model.TryCommit(2), model.Commit(2),
		model.Read(3, 0), model.ValueResp(3, 0),
		model.TryCommit(3), model.Commit(3),
	}
	res, err := CheckOpacity(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("contradictory observations of one pending commit must be rejected")
	}
}

// TestNonCommitPendingLiveStaysAborted: a live transaction whose
// pending invocation is a read or write is still completed by
// aborting; its writes can never become visible.
func TestNonCommitPendingLiveStaysAborted(t *testing.T) {
	h := model.History{
		model.Write(1, 0, 7), model.OK(1),
		model.Read(1, 1), // pending read: not commit-pending
		model.Read(2, 0), model.ValueResp(2, 7),
		model.TryCommit(2), model.Commit(2),
	}
	res, err := CheckOpacity(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("a live non-commit-pending transaction's writes must stay invisible")
	}
}

func TestTooManyTransactions(t *testing.T) {
	b := model.NewBuilder()
	for i := 0; i < 70; i++ {
		b.Read(1, 0, 0).Commit(1)
	}
	if _, err := CheckOpacity(b.History()); !errors.Is(err, ErrTooManyTransactions) {
		t.Errorf("expected ErrTooManyTransactions for 70 transactions, got %v", err)
	}
	// The segmented checker reports the same sentinel when asked for
	// a budget beyond the search cap.
	if _, err := CheckOpacitySegmented(b.History(), 70); !errors.Is(err, ErrTooManyTransactions) {
		t.Errorf("segmented checker: expected ErrTooManyTransactions, got %v", err)
	}
}

func TestMalformedHistoryErrors(t *testing.T) {
	bad := model.History{model.OK(1)}
	if _, err := CheckOpacity(bad); err == nil {
		t.Error("CheckOpacity must reject malformed histories")
	}
	if _, err := CheckStrictSerializability(bad); err == nil {
		t.Error("CheckStrictSerializability must reject malformed histories")
	}
	if _, err := CheckOpacityNaive(bad); err == nil {
		t.Error("CheckOpacityNaive must reject malformed histories")
	}
}

// genHistory derives a small well-formed history from fuzz bytes:
// whole operations of up to three processes over two variables with
// values in {0,1,2}.
func genHistory(raw []uint8) model.History {
	if len(raw) > 24 {
		raw = raw[:24]
	}
	b := model.NewBuilder()
	for _, c := range raw {
		p := model.Proc(c%3 + 1)
		x := model.TVar(c / 3 % 2)
		v := model.Value(c / 6 % 3)
		switch c % 6 {
		case 0, 1:
			b.Read(p, x, v)
		case 2:
			b.Write(p, x, v)
		case 3:
			b.Commit(p)
		case 4:
			b.CommitAbort(p)
		case 5:
			b.ReadAbort(p, x)
		}
	}
	return b.History()
}
