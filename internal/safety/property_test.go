package safety

import (
	"math/rand"
	"testing"
	"testing/quick"

	"livetm/internal/model"
)

// Opacity is strictly stronger than strict serializability (§2.4): an
// opaque history serializes all its transactions legally, and the
// committed projection of that witness serializes the committed ones.
// The two checkers implement the properties independently, so this
// property test catches divergence between them.

func assertOpacityImpliesSS(t *testing.T, h model.History) (opaque bool) {
	t.Helper()
	op, err := CheckOpacity(h)
	if err != nil {
		return false
	}
	ss, err := CheckStrictSerializability(h)
	if err != nil {
		t.Fatalf("opacity decided but strict serializability errored: %v\n%s", err, h)
	}
	if op.Holds && !ss.Holds {
		t.Fatalf("opaque but not strictly serializable (%s):\n%s", ss.Reason, h)
	}
	return op.Holds
}

func TestOpacityImpliesStrictSerializability(t *testing.T) {
	f := func(raw []uint8) bool {
		assertOpacityImpliesSS(t, genHistory(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestOpacityImpliesSSOnOpaqueBiasedHistories drives the implication
// through histories biased toward legal reads, so the antecedent is
// exercised often enough to be meaningful (testing/quick's uniform
// bytes almost always produce inconsistent reads, making the
// implication vacuous).
func TestOpacityImpliesSSOnOpaqueBiasedHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	opaqueSeen := 0
	for iter := 0; iter < 300; iter++ {
		b := model.NewBuilder()
		// A mostly-serial schedule over one variable: each transaction
		// reads the current committed value and usually increments it,
		// with occasional aborts and occasional stale reads thrown in.
		committed := model.Value(0)
		for i := 0; i < 2+rng.Intn(6); i++ {
			p := model.Proc(rng.Intn(3) + 1)
			v := committed
			if rng.Intn(8) == 0 {
				v = model.Value(rng.Intn(3)) // possibly stale
			}
			b.Read(p, 0, v)
			switch rng.Intn(5) {
			case 0:
				b.CommitAbort(p)
			case 1:
				b.Write(p, 0, v+1).Commit(p)
				committed = v + 1
			default:
				b.Commit(p)
			}
		}
		if assertOpacityImpliesSS(t, b.History()) {
			opaqueSeen++
		}
	}
	if opaqueSeen < 50 {
		t.Fatalf("only %d opaque samples; the implication test is near-vacuous", opaqueSeen)
	}
}
