//go:build ignore

// Regenerates the violating-stream fixtures under testdata. Run from
// the module root:
//
//	go run internal/safety/gen_testdata.go
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"livetm/internal/model"
	"livetm/internal/safety"
)

func main() {
	fixtures := []struct {
		file string
		cfg  safety.StreamGenConfig
	}{
		{"violating_b4_missed.jsonl", safety.StreamGenConfig{Increments: 5, StaleDepth: 3}},
		{"violating_b4_openreader.jsonl", safety.StreamGenConfig{Increments: 5, StaleDepth: 5, OpenReader: true}},
		{"violating_b4_straddler.jsonl", safety.StreamGenConfig{Increments: 5, StraddlerViolation: true}},
		{"violating_b4_caught.jsonl", safety.StreamGenConfig{Increments: 7, StaleDepth: 5}},
	}
	dir := filepath.Join("internal", "safety", "testdata")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, f := range fixtures {
		h := safety.ViolatingStream(f.cfg)
		if err := model.SaveTrace(filepath.Join(dir, f.file), h); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d events)\n", f.file, len(h))
	}
}
