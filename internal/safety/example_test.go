package safety_test

import (
	"fmt"

	"livetm/internal/model"
	"livetm/internal/safety"
)

// Check the paper's Figure 3 (a lost update): neither opaque nor
// strictly serializable.
func ExampleCheckOpacity() {
	h := model.NewBuilder().
		Read(1, 0, 0).
		Read(2, 0, 0).Write(2, 0, 1).Commit(2).
		Write(1, 0, 1).Commit(1).
		History()
	res, _ := safety.CheckOpacity(h)
	fmt.Println("opaque:", res.Holds)
	ss, _ := safety.CheckStrictSerializability(h)
	fmt.Println("strictly serializable:", ss.Holds)
	// Output:
	// opaque: false
	// strictly serializable: false
}

// A witness serialization proves opacity.
func ExampleResult_WitnessHistory() {
	h := model.NewBuilder().
		Write(1, 0, 1).Commit(1).
		Read(2, 0, 1).Commit(2).
		History()
	res, _ := safety.CheckOpacity(h)
	fmt.Println(res.Holds)
	for _, t := range res.Witness {
		fmt.Println(t.ID(), t.Status)
	}
	// Output:
	// true
	// T1.0 committed
	// T2.0 committed
}

// Long histories are verified by segmenting at quiescent cuts.
func ExampleCheckOpacitySegmented() {
	b := model.NewBuilder()
	for i := 0; i < 100; i++ {
		p := model.Proc(i%2 + 1)
		b.Read(p, 0, model.Value(i)).Write(p, 0, model.Value(i+1)).Commit(p)
	}
	res, _ := safety.CheckOpacitySegmented(b.History(), 8)
	fmt.Println(res.Holds, res.Segments > 10)
	// Output:
	// true true
}
