package safety

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"livetm/internal/model"
)

// ShardedChecker is a StreamChecker fanned out over a partition of the
// keyspace: one checking lane per shard, each with its own buffer,
// feasible-snapshot set and worker goroutine, so disjoint traffic is
// checked in parallel and each exponential search sees only one
// shard's transactions.
//
// Events route by variable: an operation (and its response) goes to
// the shard of the variable it touches; a commit or abort fans out to
// every shard the transaction touched, so each lane's buffer is the
// well-formed projection of the stream onto that shard (the model's
// completion-abort relaxation makes the fanned-out abort legal in
// lanes where no invocation is pending). A lane flushes — checks its
// buffered segment against its feasible snapshots and discards it —
// at a *shard-local* quiescent point: no open transaction touching
// that shard, and no buffered transaction spanning into another
// shard. Opacity composes over variable-disjoint transactions (each
// lane's serialization respects real time within the shard, and
// cross-shard real-time edges cannot close a cycle that the per-lane
// orders do not already close), so for disjoint traffic the lane
// verdicts are exact and their conjunction is the global verdict.
//
// A transaction whose read/write-set spans shards links its lanes
// into a group: none of them flushes locally while linked, and when
// the whole group is quiescent the lanes' buffers are merged back
// into stream order (fanned-out duplicates deduplicated by stream
// index) and checked as one segment against the cartesian product of
// the lanes' snapshot sets — the cross-shard merge pass that rechecks
// snapshot consistency across the boundary. The merged finals are
// projected back per lane; when the projection loses cross-lane
// correlation (the product of the projections is larger than the
// merged set) the verdict degrades to an explicit approximation, as
// it does whenever a spanning transaction was already open when one
// of its lanes last flushed (its reads there may only be explainable
// by flushed-away states, so they are waived — the StreamChecker's
// straddler rule applied across shards). Violations are never
// approximate: a lane or merge that finds no legal serialization has
// found a real one, because a projection's violation lifts to the
// whole history.
//
// Budget overflow mirrors the StreamChecker: without the fallback a
// cut-starved lane refuses with ErrNoQuiescentCut; with it the lane
// (or, when spanning content is buffered, its whole group) takes a
// forced serialization frontier, waiving the straddlers it carries.
type ShardedChecker struct {
	cfg   ShardConfig
	lanes []*checkLane

	// Router state, owned by the Feed goroutine.
	next      uint64
	open      map[model.Proc]*openTxnState
	openCount int

	// Cross-shard merge accounting, owned by the Feed goroutine.
	mergeSegments int
	mergeForced   int
	mergeRelaxed  int
	mergeApprox   bool
	mtel          LaneTelemetry

	mu         sync.Mutex
	failErr    error
	failReason string // non-empty only for opacity violations

	done  bool
	holds bool
}

// ShardConfig parameterizes a ShardedChecker.
type ShardConfig struct {
	// Shards is the number of lanes (1 to 64).
	Shards int
	// SegmentTxns is the per-lane segment budget (1 to 64, clamped to
	// 63 with Approx, like the StreamChecker).
	SegmentTxns int
	// VarShard assigns each variable to a shard; results outside
	// [0, Shards) are clamped. Required when Shards > 1.
	VarShard func(model.TVar) int
	// ProcShard assigns a home shard per process, used only for
	// transactions that complete without a single operation. Nil means
	// shard 0.
	ProcShard func(model.Proc) int
	// Approx enables the forced-frontier fallback on cut-starved lanes.
	Approx bool
	// Metrics, when non-nil, routes each lane's counters and backlog
	// (plus the cross-shard merge pass's) into pre-resolved telemetry
	// instruments, which a concurrent scraper can read without racing
	// the lane workers. Nil wires bare instruments.
	Metrics *CheckerMetrics
}

// taggedEvent is a buffered event stamped with its global stream
// index, so lane buffers can be merged back into stream order and
// fanned-out duplicates deduplicated.
type taggedEvent struct {
	idx uint64
	ev  model.Event
}

// openTxnState tracks one open transaction in the router.
type openTxnState struct {
	openIdx  uint64         // stream index of the first event
	touched  uint64         // bitmask of lanes touched so far
	lastLane int            // lane of the last operation invocation
	waive    bool           // opened before a touched lane's last cut
	firstIdx map[int]uint64 // lane -> stream index of first event there
}

// checkLane is one shard's checker: buffer and router counters are
// owned by the Feed goroutine; states, straddlers and statistics are
// owned by the lane worker between drains.
type checkLane struct {
	id  int
	bit uint64

	buf       []taggedEvent
	open      int    // open transactions touching this lane
	txnsInBuf int    // completed transactions in the buffer
	group     uint64 // lanes linked to this one by spanning transactions
	cutIdx    uint64 // stream index of the last flush (0 = never)
	waived    map[uint64]bool

	states    []model.Snapshot
	straddler map[model.Proc]bool
	segments  int
	forced    int
	relaxed   int

	tel  LaneTelemetry
	jobs chan func()
}

// NewShardedChecker creates a checker with one lane per shard.
func NewShardedChecker(cfg ShardConfig) (*ShardedChecker, error) {
	if cfg.Shards < 1 || cfg.Shards > 64 {
		return nil, fmt.Errorf("safety: shard count %d outside 1..64", cfg.Shards)
	}
	if cfg.SegmentTxns <= 0 {
		return nil, fmt.Errorf("safety: segment budget %d must be positive", cfg.SegmentTxns)
	}
	if cfg.SegmentTxns > 64 {
		return nil, fmt.Errorf("%w: segment budget %d exceeds the 64-transaction search cap", ErrTooManyTransactions, cfg.SegmentTxns)
	}
	if cfg.Approx && cfg.SegmentTxns > 63 {
		cfg.SegmentTxns = 63
	}
	if cfg.Shards > 1 && cfg.VarShard == nil {
		return nil, fmt.Errorf("safety: %d shards need a VarShard assignment", cfg.Shards)
	}
	c := &ShardedChecker{
		cfg:  cfg,
		open: make(map[model.Proc]*openTxnState),
		next: 1, // index 0 is reserved as "never" for cutIdx
		mtel: cfg.Metrics.merge(),
	}
	for i := 0; i < cfg.Shards; i++ {
		l := &checkLane{
			id:     i,
			bit:    uint64(1) << uint(i),
			group:  uint64(1) << uint(i),
			states: []model.Snapshot{make(model.Snapshot)},
			tel:    cfg.Metrics.lane(i),
			jobs:   make(chan func(), 4),
		}
		c.lanes = append(c.lanes, l)
		go func() {
			for job := range l.jobs {
				job()
			}
		}()
	}
	return c, nil
}

// Segments returns the number of segments checked so far across all
// lanes and merges. Exact only after Finish (lane workers may still
// be checking).
func (c *ShardedChecker) Segments() int {
	n := c.mergeSegments
	for _, l := range c.lanes {
		n += l.segments
	}
	return n
}

// ForcedCuts returns the number of forced frontiers taken so far.
func (c *ShardedChecker) ForcedCuts() int {
	n := c.mergeForced
	for _, l := range c.lanes {
		n += l.forced
	}
	return n
}

// Buffered returns the number of events currently buffered across all
// lanes (fanned-out duplicates counted once per lane holding them).
func (c *ShardedChecker) Buffered() int {
	n := 0
	for _, l := range c.lanes {
		n += len(l.buf)
	}
	return n
}

// PerShardSegments returns the segments checked per lane (merged
// segments are not attributed to a lane). Valid after Finish.
func (c *ShardedChecker) PerShardSegments() []int {
	out := make([]int, len(c.lanes))
	for i, l := range c.lanes {
		out[i] = l.segments
	}
	return out
}

// pushBuf publishes the lane's current backlog. Called wherever buf
// changes — always on the Feed goroutine, which owns buf.
func (l *checkLane) pushBuf() { l.tel.Buffered.Set(int64(len(l.buf))) }

func (c *ShardedChecker) laneOfVar(v model.TVar) int {
	if c.cfg.VarShard == nil {
		return 0
	}
	s := c.cfg.VarShard(v)
	if s < 0 {
		return 0
	}
	if s >= len(c.lanes) {
		return len(c.lanes) - 1
	}
	return s
}

func (c *ShardedChecker) homeLane(p model.Proc) int {
	if c.cfg.ProcShard == nil {
		return 0
	}
	s := c.cfg.ProcShard(p)
	if s < 0 {
		return 0
	}
	if s >= len(c.lanes) {
		return len(c.lanes) - 1
	}
	return s
}

// terminalErr surfaces a violation or error found by a lane worker
// (or a previous Feed) and the fed-after-Finish condition.
func (c *ShardedChecker) terminalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failErr != nil {
		return c.failErr
	}
	if c.done {
		return fmt.Errorf("safety: Feed after Finish")
	}
	return nil
}

// fail records the first terminal error; later ones (other lanes
// racing to a verdict) are dropped, so Holds is deterministic even
// though the surviving reason string may not be.
func (c *ShardedChecker) fail(err error, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failErr == nil {
		c.failErr = err
		c.failReason = reason
	}
}

// touch marks the open transaction as touching the lane, links the
// lanes it spans, and applies the cross-shard straddler rule: a
// transaction that was already open when this lane last flushed may
// have reads only a flushed-away state could explain.
func (c *ShardedChecker) touch(st *openTxnState, laneID int, idx uint64) {
	lane := c.lanes[laneID]
	if st.touched&lane.bit != 0 {
		return
	}
	st.touched |= lane.bit
	st.firstIdx[laneID] = idx
	lane.open++
	if lane.cutIdx > 0 && st.openIdx < lane.cutIdx {
		st.waive = true
	}
	if st.touched != lane.bit {
		for _, l := range c.lanes {
			if st.touched&l.bit != 0 {
				l.group |= st.touched
			}
		}
	}
}

// closure returns the transitive closure of the lane-link masks
// starting from mask.
func (c *ShardedChecker) closure(mask uint64) uint64 {
	for {
		next := mask
		for _, l := range c.lanes {
			if mask&l.bit != 0 {
				next |= l.group
			}
		}
		if next == mask {
			return mask
		}
		mask = next
	}
}

// Feed consumes one event. A non-nil error is terminal, with the same
// taxonomy as StreamChecker.Feed; violations found asynchronously by
// a lane worker surface on the next Feed (or at Finish).
func (c *ShardedChecker) Feed(e model.Event) error {
	if err := c.terminalErr(); err != nil {
		return err
	}
	idx := c.next
	c.next++
	p := e.Proc
	st := c.open[p]

	switch {
	case e.Kind.IsInvocation():
		if st == nil {
			st = &openTxnState{openIdx: idx, lastLane: -1, firstIdx: make(map[int]uint64, 2)}
			c.open[p] = st
			c.openCount++
		}
		if e.Kind == model.InvTryCommit {
			if st.touched == 0 {
				c.touch(st, c.homeLane(p), idx)
			}
			for _, l := range c.lanes {
				if st.touched&l.bit != 0 {
					l.buf = append(l.buf, taggedEvent{idx, e})
					l.pushBuf()
				}
			}
			st.lastLane = -1
			return nil
		}
		laneID := c.laneOfVar(e.Var)
		c.touch(st, laneID, idx)
		st.lastLane = laneID
		lane := c.lanes[laneID]
		lane.buf = append(lane.buf, taggedEvent{idx, e})
		lane.pushBuf()
		return nil

	case e.Kind == model.RespCommit || e.Kind == model.RespAbort:
		if st == nil {
			// Completion with no tracked transaction: count it on the
			// home lane, mirroring the StreamChecker's tolerant counting;
			// the parse at flush time reports any real malformation.
			lane := c.lanes[c.homeLane(p)]
			lane.buf = append(lane.buf, taggedEvent{idx, e})
			lane.txnsInBuf++
			lane.pushBuf()
			return c.afterComplete(lane.bit, idx)
		}
		if st.touched == 0 {
			c.touch(st, c.homeLane(p), idx)
		}
		touched := st.touched
		for _, l := range c.lanes {
			if touched&l.bit != 0 {
				l.buf = append(l.buf, taggedEvent{idx, e})
				l.open--
				l.txnsInBuf++
				l.pushBuf()
			}
		}
		if st.waive {
			for _, l := range c.lanes {
				if touched&l.bit != 0 {
					if l.waived == nil {
						l.waived = make(map[uint64]bool)
					}
					l.waived[st.openIdx] = true
				}
			}
		}
		delete(c.open, p)
		c.openCount--
		return c.afterComplete(touched, idx)

	default: // RespValue, RespOK
		laneID := 0
		if st != nil && st.lastLane >= 0 {
			laneID = st.lastLane
		} else {
			laneID = c.homeLane(p)
		}
		c.lanes[laneID].buf = append(c.lanes[laneID].buf, taggedEvent{idx, e})
		c.lanes[laneID].pushBuf()
		return nil
	}
}

// afterComplete runs the budget and quiescence checks for the lanes a
// completion landed on, in the StreamChecker's order: budget first.
func (c *ShardedChecker) afterComplete(touched uint64, idx uint64) error {
	for _, l := range c.lanes {
		if touched&l.bit == 0 || l.txnsInBuf <= c.cfg.SegmentTxns {
			continue
		}
		if !c.cfg.Approx {
			return fmt.Errorf("%w: %d concurrent transactions on shard %d without a quiescent point", ErrNoQuiescentCut, l.txnsInBuf, l.id)
		}
		group := c.closure(l.bit)
		if bits.OnesCount64(group) == 1 {
			c.forceLocal(l, idx)
		} else if err := c.flushGroup(group, idx, true); err != nil {
			return err
		}
	}
	// Shard-local quiescent points: a lane with no open transaction
	// and no spanning links flushes on its own worker.
	for _, l := range c.lanes {
		if touched&l.bit == 0 || l.open != 0 || l.txnsInBuf == 0 {
			continue
		}
		if c.closure(l.bit) == l.bit {
			c.flushLocal(l, idx)
		}
	}
	// Group quiescent points: every lane a spanning transaction linked
	// is idle, so the group's buffers merge into one exact segment.
	group := c.closure(touched)
	if bits.OnesCount64(group) > 1 {
		openInGroup, buffered := 0, 0
		for _, l := range c.lanes {
			if group&l.bit != 0 {
				openInGroup += l.open
				buffered += l.txnsInBuf
			}
		}
		if openInGroup == 0 && buffered > 0 {
			return c.flushGroup(group, idx, false)
		}
	}
	return nil
}

// flushLocal hands the lane's buffered segment to its worker. The
// buffer swap happens on the Feed goroutine; the exponential check
// runs on the lane worker, in FIFO order with the lane's other
// segments, so the snapshot chain stays sequential per lane.
func (c *ShardedChecker) flushLocal(l *checkLane, idx uint64) {
	seg := l.buf
	l.buf = nil
	l.txnsInBuf = 0
	l.cutIdx = idx
	l.waived = nil
	l.pushBuf()
	l.jobs <- func() { c.runSegment(l, seg, false, nil) }
}

// forceLocal is the per-lane forced frontier: completed transactions
// flush, open transactions' events stay buffered, and the carried
// processes become straddlers whose reads the next segments waive.
func (c *ShardedChecker) forceLocal(l *checkLane, idx uint64) {
	seg := make([]taggedEvent, 0, len(l.buf))
	kept := make([]taggedEvent, 0, 8)
	newStraddlers := make(map[model.Proc]bool)
	for _, te := range l.buf {
		st := c.open[te.ev.Proc]
		if st != nil && st.touched&l.bit != 0 && te.idx >= st.firstIdx[l.id] {
			kept = append(kept, te)
			newStraddlers[te.ev.Proc] = true
		} else {
			seg = append(seg, te)
		}
	}
	l.buf = kept
	l.txnsInBuf = 0
	l.cutIdx = idx
	l.waived = nil
	l.pushBuf()
	l.jobs <- func() { c.runSegment(l, seg, true, newStraddlers) }
}

// runSegment checks one lane-local segment on the lane's worker.
func (c *ShardedChecker) runSegment(l *checkLane, seg []taggedEvent, forced bool, newStraddlers map[model.Proc]bool) {
	h := make(model.History, len(seg))
	for i, te := range seg {
		h[i] = te.ev
	}
	txns, err := model.Transactions(h)
	if err != nil {
		c.fail(fmt.Errorf("streaming opacity (shard %d): %w", l.id, err), "")
		return
	}
	if len(txns) == 0 {
		if forced {
			l.forced++
			l.tel.Forced.Inc()
			l.straddler = newStraddlers
		}
		return
	}
	l.segments++
	l.tel.Segments.Inc()
	mask := laneWaiveMask(l, txns)
	finals, err := feasibleFinalsRelaxed(txns, l.states, mask)
	if err != nil {
		c.fail(fmt.Errorf("streaming opacity (shard %d): %w", l.id, err), "")
		return
	}
	if len(finals) == 0 {
		reason := fmt.Sprintf("shard %d segment %d (transactions %s..%s) admits no legal serialization from any feasible predecessor state",
			l.id, l.segments, txns[0].ID(), txns[len(txns)-1].ID())
		if forced {
			reason += " (approximate: at a forced frontier)"
		}
		c.fail(fmt.Errorf("%w: %s", ErrStreamNotOpaque, reason), reason)
		return
	}
	l.states = finals
	if forced {
		l.forced++
		l.tel.Forced.Inc()
		l.straddler = newStraddlers
	} else {
		l.straddler = nil
	}
}

// laneWaiveMask is the StreamChecker's straddler waiver per lane: the
// first transaction of each process carried across the lane's last
// forced frontier.
func laneWaiveMask(l *checkLane, txns []*model.Transaction) uint64 {
	if len(l.straddler) == 0 {
		return 0
	}
	var mask uint64
	seen := make(map[model.Proc]bool, len(l.straddler))
	for i, t := range txns {
		if !seen[t.Proc] {
			seen[t.Proc] = true
			if l.straddler[t.Proc] {
				mask |= 1 << uint(i)
			}
		}
	}
	if n := bits.OnesCount64(mask); n > 0 {
		l.relaxed += n
		l.tel.Relaxed.Add(uint64(n))
	}
	return mask
}

// drain waits until every lane in the mask has finished its queued
// segments, so the Feed goroutine may read and write their states.
func (c *ShardedChecker) drain(mask uint64) {
	acks := make([]chan struct{}, 0, bits.OnesCount64(mask))
	for _, l := range c.lanes {
		if mask&l.bit == 0 {
			continue
		}
		ack := make(chan struct{})
		l.jobs <- func() { close(ack) }
		acks = append(acks, ack)
	}
	for _, ack := range acks {
		<-ack
	}
}

// flushGroup is the cross-shard merge pass: the group's buffers are
// merged back into stream order, checked as one segment against the
// cartesian product of the lanes' snapshot sets, and the finals are
// projected back per lane. With forced set, open transactions' events
// are carried (a group-wide forced frontier); otherwise the group is
// quiescent and the check is a real cut. Runs on the Feed goroutine
// after draining the involved lanes.
func (c *ShardedChecker) flushGroup(mask uint64, idx uint64, forced bool) error {
	c.drain(mask)
	var all []taggedEvent
	waivedOpen := make(map[uint64]bool)
	straddlers := make(map[model.Proc]bool)
	for _, l := range c.lanes {
		if mask&l.bit == 0 {
			continue
		}
		all = append(all, l.buf...)
		for oi := range l.waived {
			waivedOpen[oi] = true
		}
		for p := range l.straddler {
			straddlers[p] = true
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].idx < all[j].idx })
	merged := all[:0]
	var last uint64
	for _, te := range all {
		if te.idx != last {
			merged = append(merged, te)
			last = te.idx
		}
	}

	// A forced group frontier carries every open transaction whole:
	// its events (on any lane of the group) stay buffered and its
	// process becomes a straddler for the group's next segments.
	var keptIdx map[uint64]bool
	newStraddlers := make(map[model.Proc]bool)
	seg := merged
	if forced {
		keptIdx = make(map[uint64]bool)
		seg = make([]taggedEvent, 0, len(merged))
		for _, te := range merged {
			if st := c.open[te.ev.Proc]; st != nil && te.idx >= st.openIdx {
				keptIdx[te.idx] = true
				newStraddlers[te.ev.Proc] = true
			} else {
				seg = append(seg, te)
			}
		}
	}

	h := make(model.History, len(seg))
	tags := make([]uint64, len(seg))
	for i, te := range seg {
		h[i] = te.ev
		tags[i] = te.idx
	}
	txns, err := model.Transactions(h)
	if err != nil {
		err = fmt.Errorf("streaming opacity (cross-shard merge): %w", err)
		c.fail(err, "")
		return err
	}

	// The waive mask: straddlers of previous forced frontiers (first
	// transaction per process) plus transactions that were open across
	// a member lane's local cut.
	var waive uint64
	seenProc := make(map[model.Proc]bool)
	for i, t := range txns {
		if !seenProc[t.Proc] {
			seenProc[t.Proc] = true
			if straddlers[t.Proc] {
				waive |= 1 << uint(i)
			}
		}
		if waivedOpen[tags[t.First]] {
			waive |= 1 << uint(i)
		}
	}
	if waive != 0 {
		n := bits.OnesCount64(waive)
		c.mergeRelaxed += n
		c.mtel.Relaxed.Add(uint64(n))
		c.mergeApprox = true
	}

	states := c.productStates(mask)
	finals, verr := c.mergedFinals(txns, states, waive)
	if verr != nil {
		c.fail(verr, "")
		return verr
	}
	if len(finals) == 0 {
		reason := fmt.Sprintf("cross-shard segment %d over shards %s (transactions %s..%s) admits no legal serialization from any feasible predecessor state",
			c.mergeSegments+1, maskString(mask), txns[0].ID(), txns[len(txns)-1].ID())
		if forced {
			reason += " (approximate: at a forced frontier)"
		}
		err := fmt.Errorf("%w: %s", ErrStreamNotOpaque, reason)
		c.fail(err, reason)
		return err
	}
	if len(txns) > 0 {
		c.mergeSegments++
		c.mtel.Segments.Inc()
	}
	if forced {
		c.mergeForced++
		c.mtel.Forced.Inc()
		c.mergeApprox = true
	}

	// Project the merged finals back per lane. The projection drops
	// cross-lane correlation whenever the product of the projections
	// exceeds the merged set; that information loss makes later
	// verdicts approximate (more feasible states can only hide
	// violations, never invent them).
	product := 1
	for _, l := range c.lanes {
		if mask&l.bit == 0 {
			continue
		}
		proj := c.projectStates(finals, l.id)
		l.states = proj
		product *= len(proj)
	}
	if product > uniqueStates(finals) {
		c.mergeApprox = true
	}

	for _, l := range c.lanes {
		if mask&l.bit == 0 {
			continue
		}
		if forced {
			kept := l.buf[:0]
			for _, te := range l.buf {
				if keptIdx[te.idx] {
					kept = append(kept, te)
				}
			}
			l.buf = kept
			l.straddler = newStraddlers
		} else {
			l.buf = nil
			l.straddler = nil
		}
		l.txnsInBuf = 0
		l.group = l.bit
		l.cutIdx = idx
		l.waived = nil
		l.pushBuf()
	}
	return nil
}

// mergedFinals runs the merged segment through the relaxed search,
// splitting it at forced frontiers into chunks of at most 63
// transactions when the group outgrows the 64-transaction cap (only
// the Approx regime may reach that size: each chunk boundary is one
// more forced frontier).
func (c *ShardedChecker) mergedFinals(txns []*model.Transaction, states []model.Snapshot, waive uint64) ([]model.Snapshot, error) {
	if len(txns) <= 64 {
		return feasibleFinalsRelaxed(txns, states, waive)
	}
	if !c.cfg.Approx {
		return nil, fmt.Errorf("%w: %d transactions in one cross-shard segment", ErrTooManyTransactions, len(txns))
	}
	const chunk = 63
	for start := 0; start < len(txns); start += chunk {
		end := start + chunk
		if end > len(txns) {
			end = len(txns)
		}
		var mask uint64
		for i := start; i < end; i++ {
			if waive&(1<<uint(i)) != 0 {
				mask |= 1 << uint(i-start)
			}
		}
		next, err := feasibleFinalsRelaxed(txns[start:end], states, mask)
		if err != nil {
			return nil, err
		}
		if len(next) == 0 {
			return nil, nil
		}
		states = next
		if end < len(txns) {
			c.mergeForced++
			c.mtel.Forced.Inc()
			c.mergeApprox = true
		}
	}
	return states, nil
}

// productStates returns the cartesian combination of the masked
// lanes' snapshot sets; lane domains are disjoint, so each combination
// is their union.
func (c *ShardedChecker) productStates(mask uint64) []model.Snapshot {
	states := []model.Snapshot{make(model.Snapshot)}
	for _, l := range c.lanes {
		if mask&l.bit == 0 {
			continue
		}
		next := make([]model.Snapshot, 0, len(states)*len(l.states))
		for _, a := range states {
			for _, b := range l.states {
				m := a.Clone()
				for k, v := range b {
					m[k] = v
				}
				next = append(next, m)
			}
		}
		states = next
	}
	return states
}

// projectStates restricts each final snapshot to the lane's variables
// and deduplicates.
func (c *ShardedChecker) projectStates(finals []model.Snapshot, laneID int) []model.Snapshot {
	seen := make(map[string]bool, len(finals))
	out := make([]model.Snapshot, 0, len(finals))
	for _, s := range finals {
		p := make(model.Snapshot)
		for k, v := range s {
			if c.laneOfVar(k) == laneID {
				p[k] = v
			}
		}
		key := memoKey(0, p)
		if !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	return out
}

func uniqueStates(states []model.Snapshot) int {
	seen := make(map[string]bool, len(states))
	for _, s := range states {
		seen[memoKey(0, s)] = true
	}
	return len(seen)
}

func maskString(mask uint64) string {
	out := ""
	for i := 0; i < 64; i++ {
		if mask&(1<<uint(i)) != 0 {
			if out != "" {
				out += ","
			}
			out += fmt.Sprint(i)
		}
	}
	return "{" + out + "}"
}

// Finish flushes whatever remains buffered — including live and
// commit-pending transactions — waits for every lane worker, and
// returns the verdict for the whole streamed history. Finish is
// terminal.
func (c *ShardedChecker) Finish() (SegmentedResult, error) {
	if c.done {
		return c.result(), nil
	}
	if err := c.finalFlush(); err != nil && !errors.Is(err, ErrStreamNotOpaque) {
		c.stop()
		c.done = true
		return SegmentedResult{}, err
	}
	c.stop()
	c.done = true
	c.mu.Lock()
	failErr, failReason := c.failErr, c.failReason
	c.mu.Unlock()
	if failErr != nil && failReason == "" {
		// A terminal non-violation error (malformed stream, search cap).
		return SegmentedResult{}, failErr
	}
	c.holds = failErr == nil
	return c.result(), nil
}

// finalFlush checks every remaining buffered segment: linked lanes
// merge, independent lanes flush locally.
func (c *ShardedChecker) finalFlush() error {
	if err := c.terminalErr(); err != nil {
		if errors.Is(err, ErrStreamNotOpaque) {
			return nil // verdict already reached
		}
		return nil
	}
	idx := c.next
	var doneMask uint64
	for _, l := range c.lanes {
		if doneMask&l.bit != 0 || len(l.buf) == 0 {
			continue
		}
		group := c.closure(l.bit)
		doneMask |= group
		if group == l.bit {
			c.flushLocal(l, idx)
			continue
		}
		if err := c.flushGroup(group, idx, false); err != nil {
			return err
		}
	}
	c.drain((uint64(1) << uint(len(c.lanes))) - 1)
	return nil
}

// stop terminates the lane workers after a final drain.
func (c *ShardedChecker) stop() {
	c.drain((uint64(1) << uint(len(c.lanes))) - 1)
	for _, l := range c.lanes {
		close(l.jobs)
		l.jobs = nil
	}
}

// result snapshots the terminal verdict. Approx marks verdicts that
// rest on forced frontiers, waived cross-shard straddlers, or
// projection-lossy merges; violations are always real.
func (c *ShardedChecker) result() SegmentedResult {
	c.mu.Lock()
	reason := c.failReason
	c.mu.Unlock()
	segments := c.mergeSegments
	forced := c.mergeForced
	relaxed := c.mergeRelaxed
	for _, l := range c.lanes {
		segments += l.segments
		forced += l.forced
		relaxed += l.relaxed
	}
	return SegmentedResult{
		Holds:             c.holds,
		Segments:          segments,
		Reason:            reason,
		Approx:            forced > 0 || c.mergeApprox,
		ForcedCuts:        forced,
		RelaxedStraddlers: relaxed,
	}
}
