package safety

import (
	"errors"
	"testing"
	"testing/quick"

	"livetm/internal/model"
)

// feedAll streams a whole history through a fresh checker.
func feedAll(t *testing.T, h model.History, budget int) (SegmentedResult, error) {
	t.Helper()
	c, err := NewStreamChecker(budget)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range h {
		if err := c.Feed(e); err != nil {
			return SegmentedResult{}, err
		}
	}
	return c.Finish()
}

func TestStreamAgreesOnFigures(t *testing.T) {
	tests := []struct {
		name string
		h    model.History
		want bool
	}{
		{"fig1", fig1(), true},
		{"fig3", fig3(), false},
		{"fig4", fig4(), false},
		{"fig8", figAlg1Termination(0), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := feedAll(t, tt.h, 8)
			if err != nil && !errors.Is(err, ErrStreamNotOpaque) {
				t.Fatal(err)
			}
			if err == nil && res.Holds != tt.want {
				t.Errorf("stream = %v (%s), want %v", res.Holds, res.Reason, tt.want)
			}
			if err != nil && tt.want {
				t.Errorf("stream rejected an opaque history: %v", err)
			}
		})
	}
}

// Property: on every small random history the monolithic checker can
// decide, the streaming checker either agrees or refuses for lack of
// quiescent cuts — it never returns a wrong verdict. (It may detect a
// violation in an early segment of a history the greedy segmenter
// refuses to split, so the comparison runs against CheckOpacity, not
// CheckOpacitySegmented.)
func TestStreamAgreesWithMonolithic(t *testing.T) {
	f := func(raw []uint8) bool {
		h := genHistory(raw)
		mono, err := CheckOpacity(h)
		if err != nil {
			return true
		}
		c, err := NewStreamChecker(4)
		if err != nil {
			return false
		}
		var streamErr error
		for _, e := range h {
			if streamErr = c.Feed(e); streamErr != nil {
				break
			}
		}
		var res SegmentedResult
		if streamErr == nil {
			res, streamErr = c.Finish()
		}
		switch {
		case errors.Is(streamErr, ErrStreamNotOpaque):
			return !mono.Holds
		case errors.Is(streamErr, ErrNoQuiescentCut):
			return true // refused, not decided
		case streamErr != nil:
			return false
		default:
			return res.Holds == mono.Holds
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStreamLongHistoryBoundedMemory: 300 sequential transactions
// stream through without the buffer ever holding more than one
// segment's worth of events.
func TestStreamLongHistoryBoundedMemory(t *testing.T) {
	c, err := NewStreamChecker(8)
	if err != nil {
		t.Fatal(err)
	}
	b := model.NewBuilder()
	for i := 0; i < 300; i++ {
		p := model.Proc(i%3 + 1)
		b.Read(p, 0, model.Value(i)).Write(p, 0, model.Value(i+1)).Commit(p)
	}
	maxBuffered := 0
	for _, e := range b.History() {
		if err := c.Feed(e); err != nil {
			t.Fatal(err)
		}
		if c.Buffered() > maxBuffered {
			maxBuffered = c.Buffered()
		}
	}
	res, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("sequential counter chain must be opaque: %s", res.Reason)
	}
	if res.Segments < 300/9 {
		t.Errorf("segments = %d, want at least %d", res.Segments, 300/9)
	}
	// 9 transactions × 6 events is the most one flush can leave behind.
	if maxBuffered > 9*6 {
		t.Errorf("buffer grew to %d events; memory is not bounded by the segment budget", maxBuffered)
	}
}

// TestStreamViolationIsTerminal: the violation surfaces from Feed as
// soon as the failing segment flushes, and the checker stays failed.
func TestStreamViolationIsTerminal(t *testing.T) {
	c, err := NewStreamChecker(2)
	if err != nil {
		t.Fatal(err)
	}
	b := model.NewBuilder()
	for i := 0; i < 6; i++ {
		b.Read(1, 0, model.Value(i)).Write(1, 0, model.Value(i+1)).Commit(1)
	}
	b.Read(2, 0, 99).Commit(2) // unexplained value
	for i := 0; i < 6; i++ {
		b.Read(1, 0, model.Value(i)).Write(1, 0, model.Value(i+1)).Commit(1)
	}
	h := b.History()
	var fed, failAt int
	var feedErr error
	for i, e := range h {
		fed = i
		if feedErr = c.Feed(e); feedErr != nil {
			failAt = i
			break
		}
	}
	if !errors.Is(feedErr, ErrStreamNotOpaque) {
		t.Fatalf("err = %v after %d events, want ErrStreamNotOpaque", feedErr, fed)
	}
	if failAt == len(h)-1 {
		t.Error("violation only surfaced at the end of the stream")
	}
	if err := c.Feed(h[len(h)-1]); !errors.Is(err, ErrStreamNotOpaque) {
		t.Errorf("Feed after violation = %v, want ErrStreamNotOpaque", err)
	}
	res, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds || res.Reason == "" {
		t.Errorf("Finish after violation = %+v", res)
	}
}

// TestStreamFinalSegmentLive: live and commit-pending transactions are
// legal only in the final segment, where Finish handles them.
func TestStreamFinalSegmentLive(t *testing.T) {
	b := model.NewBuilder()
	b.Read(1, 0, 0).Write(1, 0, 1).Commit(1)
	b.Raw(model.Read(2, 0), model.ValueResp(2, 1))               // live at the end
	b.Raw(model.Write(3, 0, 5), model.OK(3), model.TryCommit(3)) // commit-pending
	res, err := feedAll(t, b.History(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("history with trailing live transactions must hold: %s", res.Reason)
	}
}

func TestStreamValidation(t *testing.T) {
	if _, err := NewStreamChecker(0); err == nil {
		t.Error("budget 0 must be rejected")
	}
	if _, err := NewStreamChecker(65); !errors.Is(err, ErrTooManyTransactions) {
		t.Errorf("budget 65: err = %v, want ErrTooManyTransactions", err)
	}
	c, err := NewStreamChecker(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Finish()
	if err != nil || !res.Holds {
		t.Errorf("empty stream must hold: %+v, %v", res, err)
	}
	if err := c.Feed(model.Commit(1)); err == nil {
		t.Error("Feed after Finish must error")
	}
}

// TestStreamNoCut: more concurrent transactions than the budget with
// no quiescent point is refused, like the segmented checker.
func TestStreamNoCut(t *testing.T) {
	var h model.History
	for p := model.Proc(1); p <= 5; p++ {
		h = append(h, model.Read(p, 0), model.ValueResp(p, 0))
	}
	for p := model.Proc(1); p <= 5; p++ {
		h = append(h, model.TryCommit(p), model.Commit(p))
	}
	_, err := feedAll(t, h, 2)
	if !errors.Is(err, ErrNoQuiescentCut) {
		t.Errorf("err = %v, want ErrNoQuiescentCut", err)
	}
	res, err := feedAll(t, h, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("read-only concurrent transactions are opaque: %s", res.Reason)
	}
}

// TestStreamApproxFallbackDecides: a cut-starved stream the strict
// checker refuses degrades to an explicit approximate verdict with
// the bounded-overlap fallback enabled.
func TestStreamApproxFallbackDecides(t *testing.T) {
	// Process 1 opens a transaction and never completes it, so no
	// quiescent cut ever forms; process 2 runs a long sequential
	// counter chain underneath.
	b := model.NewBuilder()
	b.Raw(model.Read(1, 1), model.ValueResp(1, 0)) // stays open forever
	for i := 0; i < 40; i++ {
		b.Read(2, 0, model.Value(i)).Write(2, 0, model.Value(i+1)).Commit(2)
	}
	h := b.History()

	if _, err := feedAll(t, h, 4); !errors.Is(err, ErrNoQuiescentCut) {
		t.Fatalf("strict checker: err = %v, want ErrNoQuiescentCut", err)
	}

	c, err := NewStreamChecker(4)
	if err != nil {
		t.Fatal(err)
	}
	c.WithApproxFallback()
	maxBuffered := 0
	for _, e := range h {
		if err := c.Feed(e); err != nil {
			t.Fatalf("approx checker refused: %v", err)
		}
		if c.Buffered() > maxBuffered {
			maxBuffered = c.Buffered()
		}
	}
	res, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("opaque cut-starved stream judged violating: %s", res.Reason)
	}
	if !res.Approx || res.ForcedCuts == 0 {
		t.Fatalf("verdict not marked approximate: %+v", res)
	}
	// Memory stays bounded by the window even without quiescent cuts:
	// 5 completed transactions x 6 events plus the open straggler.
	if maxBuffered > 5*6+2 {
		t.Errorf("buffer grew to %d events despite forced frontiers", maxBuffered)
	}
}

// TestStreamApproxFallbackViolation: the fallback still catches a
// violation inside one window, reported as an approximate verdict.
func TestStreamApproxFallbackViolation(t *testing.T) {
	b := model.NewBuilder()
	b.Raw(model.Read(1, 1), model.ValueResp(1, 0)) // cut starver
	for i := 0; i < 6; i++ {
		b.Read(2, 0, model.Value(i)).Write(2, 0, model.Value(i+1)).Commit(2)
	}
	b.Read(3, 0, 99).Commit(3) // unexplained value
	for i := 6; i < 12; i++ {
		b.Read(2, 0, model.Value(i)).Write(2, 0, model.Value(i+1)).Commit(2)
	}
	c, err := NewStreamChecker(3)
	if err != nil {
		t.Fatal(err)
	}
	c.WithApproxFallback()
	var feedErr error
	for _, e := range b.History() {
		if feedErr = c.Feed(e); feedErr != nil {
			break
		}
	}
	if !errors.Is(feedErr, ErrStreamNotOpaque) {
		t.Fatalf("err = %v, want ErrStreamNotOpaque", feedErr)
	}
	res, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("violation lost")
	}
	if !res.Approx {
		t.Fatalf("forced-frontier violation not marked approximate: %+v", res)
	}
}

// Property: with the fallback enabled the checker never refuses a
// stream for lack of cuts, and whenever it decides without taking a
// forced frontier it agrees with the monolithic checker exactly.
func TestStreamApproxNeverRefuses(t *testing.T) {
	f := func(raw []uint8) bool {
		h := genHistory(raw)
		mono, err := CheckOpacity(h)
		if err != nil {
			return true
		}
		c, err := NewStreamChecker(4)
		if err != nil {
			return false
		}
		c.WithApproxFallback()
		var streamErr error
		for _, e := range h {
			if streamErr = c.Feed(e); streamErr != nil {
				break
			}
		}
		var res SegmentedResult
		if streamErr == nil {
			res, streamErr = c.Finish()
		}
		switch {
		case errors.Is(streamErr, ErrNoQuiescentCut):
			return false // the fallback's whole point
		case errors.Is(streamErr, ErrStreamNotOpaque):
			res, _ = c.Finish()
			return res.Approx || !mono.Holds
		case streamErr != nil:
			return false
		default:
			return res.Approx || res.Holds == mono.Holds
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStreamStraddlerFalseAlarm pins the fallback's multi-straddler
// soundness hole: two transactions left open across a forced frontier
// whose reads pin different mid-window states (p3 read x before an
// increment, p4 after it). The intervening writer is flushed at the
// frontier, so no single serialization path through the propagated
// snapshots explains both reads — yet the history is genuinely opaque
// (the exact checker decides it). The checker must waive the
// straddlers' unverifiable reads instead of declaring a violation,
// and must report the waivers.
func TestStreamStraddlerFalseAlarm(t *testing.T) {
	b := model.NewBuilder()
	b.Raw(model.Read(3, 0), model.ValueResp(3, 0)) // straddler A: x = 0
	b.Read(1, 0, 0).Write(1, 0, 1).Commit(1)
	b.Raw(model.Read(4, 0), model.ValueResp(4, 1)) // straddler B: x = 1
	for i := 1; i < 9; i++ {
		b.Read(1, 0, model.Value(i)).Write(1, 0, model.Value(i+1)).Commit(1)
	}
	b.Raw(model.TryCommit(3), model.Commit(3))
	b.Raw(model.TryCommit(4), model.Commit(4))
	h := b.History()

	// The history really is opaque: one exact segment covers it.
	exact, err := CheckOpacitySegmented(h, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Holds {
		t.Fatalf("fixture history must be opaque: %s", exact.Reason)
	}

	c, err := NewStreamChecker(3)
	if err != nil {
		t.Fatal(err)
	}
	c.WithApproxFallback()
	for i, e := range h {
		if err := c.Feed(e); err != nil {
			t.Fatalf("false alarm at event %d: %v", i, err)
		}
	}
	res, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("opaque two-straddler stream judged violating: %s", res.Reason)
	}
	if !res.Approx || res.ForcedCuts == 0 {
		t.Fatalf("verdict not marked approximate: %+v", res)
	}
	if res.RelaxedStraddlers == 0 {
		t.Fatalf("the waiver must be reported: %+v", res)
	}
}
