package liveness

import (
	"fmt"

	"livetm/internal/model"
)

// This file implements the extensions the paper sketches as future
// work in §7: TM-liveness properties that guarantee progress for a
// bounded number of processes (k-progress) and for processes with
// higher priority (priority progress). Both slot into the paper's
// class machinery: k-progress for k ≥ 2 is nonblocking and
// biprogressing, so by Theorem 2 it is impossible to ensure together
// with any strictly serializable safety property in a fault-prone
// system — an executable corollary, checked in the package tests.

// KProgress is the TM-liveness property L_k: in every infinite
// history, at least min(k, number-of-correct-processes) correct
// processes make progress. KProgress(1) coincides with global
// progress; KProgress(n) over n processes with local progress.
func KProgress(k int) Property {
	return Property{
		Name: fmt.Sprintf("%d-progress", k),
		Contains: func(l *Lasso) bool {
			correct := len(l.CorrectProcs())
			need := k
			if correct < need {
				need = correct
			}
			return len(l.ProgressingProcs()) >= need
		},
	}
}

// PriorityProgress is the TM-liveness property parameterized by a
// priority assignment: in every infinite history, every correct
// process with maximal priority among the correct processes makes
// progress. Processes missing from the map have priority 0.
//
// With all priorities equal it degenerates to local progress (every
// correct process is maximal); with distinct priorities it guarantees
// exactly one process's progress, like global progress but naming the
// winner.
func PriorityProgress(prio map[model.Proc]int) Property {
	return Property{
		Name: "priority progress",
		Contains: func(l *Lasso) bool {
			correct := l.CorrectProcs()
			if len(correct) == 0 {
				return true
			}
			max := prio[correct[0]]
			for _, p := range correct[1:] {
				if prio[p] > max {
					max = prio[p]
				}
			}
			for _, p := range correct {
				if prio[p] == max && !l.MakesProgress(p) {
					return false
				}
			}
			return true
		},
	}
}

// IsNonblockingOn reports whether the property's membership predicate
// is consistent with being nonblocking on the given sample histories:
// no member history has a starving solo runner. It cannot prove a
// property nonblocking (that quantifies over all histories) but
// refutes it with a witness.
func IsNonblockingOn(p Property, sample []*Lasso) (witness *Lasso, ok bool) {
	for _, l := range sample {
		if p.Contains(l) && ViolatesNonblocking(l) {
			return l, false
		}
	}
	return nil, true
}

// IsBiprogressingOn is the sampled analogue for the biprogressing
// class.
func IsBiprogressingOn(p Property, sample []*Lasso) (witness *Lasso, ok bool) {
	for _, l := range sample {
		if p.Contains(l) && ViolatesBiprogressing(l) {
			return l, false
		}
	}
	return nil, true
}

// ClassifyRun builds a lasso from a finite run so the formal
// predicates can be applied to empirical histories: the first split
// events form the prefix and the remainder the cycle, read as "the
// observed tail repeats forever".
//
// This is sound for the process-class and progress predicates, which
// depend only on the *kinds* of events each process keeps performing
// (commits, aborts, tryC invocations, any events) — not on values —
// so any tail that faithfully samples the steady state yields the
// classification of the true infinite history. Callers choose split
// so that start-up transients fall into the prefix; SplitHalf is the
// usual choice.
func ClassifyRun(h model.History, split int, procs []model.Proc) (*Lasso, error) {
	if split < 0 || split >= len(h) {
		return nil, fmt.Errorf("liveness: split %d out of range for %d events", split, len(h))
	}
	return NewLassoWithProcs(h[:split].Clone(), h[split:].Clone(), procs)
}

// SplitHalf is the conventional split point for ClassifyRun.
func SplitHalf(h model.History) int { return len(h) / 2 }
