package liveness

import (
	"testing"
	"testing/quick"

	"livetm/internal/model"
)

func TestKProgressDegenerateCases(t *testing.T) {
	f := func(raw []uint8) bool {
		l := genLasso(raw)
		// k=1 coincides with global progress.
		if KProgress(1).Contains(l) != GlobalProgress.Contains(l) {
			return false
		}
		// k = |procs| coincides with local progress.
		if KProgress(len(l.Procs)).Contains(l) != LocalProgress.Contains(l) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestKProgressMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		l := genLasso(raw)
		// L_{k+1} ⊆ L_k: demanding more progress is a stronger property.
		for k := 1; k < 3; k++ {
			if KProgress(k+1).Contains(l) && !KProgress(k).Contains(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestKProgressTwoIsBiprogressingAndNonblocking: the executable
// corollary of Theorem 2 — 2-progress has both class attributes, so
// no TM can ensure it with opacity in a fault-prone system.
func TestKProgressTwoIsBiprogressingAndNonblocking(t *testing.T) {
	f := func(raw []uint8) bool {
		l := genLasso(raw)
		if KProgress(2).Contains(l) && ViolatesBiprogressing(l) {
			return false
		}
		if KProgress(2).Contains(l) && ViolatesNonblocking(l) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestKProgressRejectsStarvationShape(t *testing.T) {
	// The adversary's outcome: p2 commits forever, p1 aborts forever.
	cycle := model.NewBuilder().
		Read(2, 0, 0).Write(2, 0, 1).Commit(2).
		Read(1, 0, 1).WriteAbort(1, 0, 2).
		History()
	l, err := NewLasso(nil, cycle)
	if err != nil {
		t.Fatal(err)
	}
	if !KProgress(1).Contains(l) {
		t.Error("one process progresses: 1-progress holds")
	}
	if KProgress(2).Contains(l) {
		t.Error("only one of two correct processes progresses: 2-progress fails")
	}
}

func TestPriorityProgress(t *testing.T) {
	// p1 starves, p2 progresses.
	cycle := model.NewBuilder().
		Read(2, 0, 0).Write(2, 0, 1).Commit(2).
		Read(1, 0, 1).WriteAbort(1, 0, 2).
		History()
	l, err := NewLasso(nil, cycle)
	if err != nil {
		t.Fatal(err)
	}
	if !PriorityProgress(map[model.Proc]int{2: 10, 1: 1}).Contains(l) {
		t.Error("the maximal-priority process (p2) progresses: property holds")
	}
	if PriorityProgress(map[model.Proc]int{1: 10, 2: 1}).Contains(l) {
		t.Error("the maximal-priority process (p1) starves: property fails")
	}
	// Equal priorities degenerate to local progress.
	if PriorityProgress(map[model.Proc]int{1: 5, 2: 5}).Contains(l) {
		t.Error("equal priorities demand progress of every correct process")
	}
}

func TestPriorityProgressEqualsLocalWhenFlat(t *testing.T) {
	f := func(raw []uint8) bool {
		l := genLasso(raw)
		flat := PriorityProgress(map[model.Proc]int{}) // all zero
		return flat.Contains(l) == LocalProgress.Contains(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPriorityProgressVacuousWithoutCorrectProcs(t *testing.T) {
	// Only a crashed process: the property holds vacuously.
	prefix := model.NewBuilder().Read(1, 0, 0).History()
	cycle := model.NewBuilder().Read(2, 0, 0).History() // p2 parasitic
	l, err := NewLasso(prefix, cycle)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.CorrectProcs()) != 0 {
		t.Fatal("test setup: no process should be correct")
	}
	if !PriorityProgress(map[model.Proc]int{1: 1, 2: 2}).Contains(l) {
		t.Error("no correct processes: vacuously satisfied")
	}
}

func TestIsNonblockingOn(t *testing.T) {
	// A blocking history: solo runner starves.
	blockCycle := model.NewBuilder().ReadAbort(3, 0).Read(2, 0, 0).History()
	blockPrefix := model.NewBuilder().Read(1, 0, 0).History()
	blocking, err := NewLasso(blockPrefix, blockCycle)
	if err != nil {
		t.Fatal(err)
	}
	sample := []*Lasso{blocking}

	// The trivial property containing everything is refuted.
	everything := Property{Name: "HTM", Contains: func(*Lasso) bool { return true }}
	if w, ok := IsNonblockingOn(everything, sample); ok || w == nil {
		t.Error("the universal property must be refuted by the blocking history")
	}
	// Solo progress is consistent with the sample (it excludes it).
	if _, ok := IsNonblockingOn(SoloProgress, sample); !ok {
		t.Error("solo progress excludes the blocking history")
	}
}

func TestIsBiprogressingOn(t *testing.T) {
	// Figure-6 shape: two correct, one progressing.
	cycle := model.NewBuilder().
		Read(1, 0, 0).Write(1, 0, 1).Commit(1).
		Read(2, 0, 1).Write(2, 0, 0).CommitAbort(2).
		History()
	uni, err := NewLasso(nil, cycle)
	if err != nil {
		t.Fatal(err)
	}
	sample := []*Lasso{uni}
	if _, ok := IsBiprogressingOn(GlobalProgress, sample); ok {
		t.Error("global progress contains the uni-progress history: refuted")
	}
	if _, ok := IsBiprogressingOn(LocalProgress, sample); !ok {
		t.Error("local progress excludes the uni-progress history")
	}
}

func TestClassifyRun(t *testing.T) {
	h := model.NewBuilder().
		Read(1, 0, 0).Commit(1). // transient: p1 commits once, then vanishes (crash)
		Read(2, 0, 0).Commit(2).
		Read(2, 0, 0).Commit(2).
		History()
	l, err := ClassifyRun(h, SplitHalf(h), []model.Proc{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Crashes(1) {
		t.Error("p1 appears only in the prefix: crashed under the repeats-forever reading")
	}
	if !l.MakesProgress(2) {
		t.Error("p2 commits in the tail: progresses")
	}
	if _, err := ClassifyRun(h, len(h), nil); err == nil {
		t.Error("split at end leaves an empty cycle: must fail")
	}
	if _, err := ClassifyRun(h, -1, nil); err == nil {
		t.Error("negative split must fail")
	}
}
