// Package liveness implements the paper's liveness formalism (§2.3,
// §3): process fault classes on infinite histories and TM-liveness
// properties (local, global, and solo progress).
//
// Infinite histories are represented as lassos — eventually-periodic
// histories Prefix · Cycle^ω. Every infinite history the paper
// exhibits (Figures 5–14, and every history produced by the
// impossibility adversary against a deterministic TM) is eventually
// periodic, and on lassos all of the paper's predicates ("infinitely
// many commit events", "finitely many tryC invocations", …) are
// decidable exactly: an event occurs infinitely often iff it occurs in
// the cycle.
package liveness

import (
	"errors"
	"fmt"

	"livetm/internal/model"
)

// ErrEmptyCycle is returned by NewLasso when the cycle is empty: a
// lasso with an empty cycle is a finite history, not an infinite one.
var ErrEmptyCycle = errors.New("liveness: lasso cycle must be non-empty")

// Lasso is the infinite history Prefix · Cycle^ω.
//
// Procs is the process set P of the system. The paper fixes P
// up front; processes in P with no events at all are permitted (the
// scheduler may simply never pick them). If Procs is nil, the set
// defaults to the processes appearing in the lasso.
type Lasso struct {
	Prefix model.History
	Cycle  model.History
	Procs  []model.Proc
}

// NewLasso builds a lasso over the processes appearing in it.
func NewLasso(prefix, cycle model.History) (*Lasso, error) {
	return NewLassoWithProcs(prefix, cycle, nil)
}

// NewLassoWithProcs builds a lasso with an explicit process set; every
// process appearing in the lasso must be in the set.
func NewLassoWithProcs(prefix, cycle model.History, procs []model.Proc) (*Lasso, error) {
	if len(cycle) == 0 {
		return nil, ErrEmptyCycle
	}
	l := &Lasso{Prefix: prefix.Clone(), Cycle: cycle.Clone(), Procs: procs}
	if l.Procs == nil {
		seen := make(map[model.Proc]bool)
		for _, e := range prefix {
			seen[e.Proc] = true
		}
		for _, e := range cycle {
			seen[e.Proc] = true
		}
		for p := range seen {
			l.Procs = append(l.Procs, p)
		}
		sortProcs(l.Procs)
	} else {
		in := make(map[model.Proc]bool, len(procs))
		for _, p := range procs {
			in[p] = true
		}
		for _, e := range append(prefix.Clone(), cycle...) {
			if !in[e.Proc] {
				return nil, fmt.Errorf("liveness: process %d appears in lasso but not in process set", e.Proc)
			}
		}
	}
	return l, nil
}

// Unroll returns the finite prefix of the infinite history consisting
// of the lasso prefix followed by n copies of the cycle. Useful for
// checking safety of ever longer prefixes of an infinite history.
func (l *Lasso) Unroll(n int) model.History {
	out := l.Prefix.Clone()
	for i := 0; i < n; i++ {
		out = append(out, l.Cycle...)
	}
	return out
}

// String renders the lasso as "prefix . (cycle)^ω".
func (l *Lasso) String() string {
	return fmt.Sprintf("%s . (%s)^ω", l.Prefix, l.Cycle)
}

// cycleHas reports whether the cycle contains an event of p satisfying
// the predicate; such events occur infinitely often in the history.
func (l *Lasso) cycleHas(p model.Proc, pred func(model.Event) bool) bool {
	for _, e := range l.Cycle {
		if e.Proc == p && pred(e) {
			return true
		}
	}
	return false
}

func (l *Lasso) prefixHas(p model.Proc, pred func(model.Event) bool) bool {
	for _, e := range l.Prefix {
		if e.Proc == p && pred(e) {
			return true
		}
	}
	return false
}

func anyEvent(model.Event) bool { return true }

// Crashes reports whether p crashes in the infinite history: H|p is a
// finite non-empty sequence, i.e. p has events in the prefix but none
// in the cycle.
func (l *Lasso) Crashes(p model.Proc) bool {
	return l.prefixHas(p, anyEvent) && !l.cycleHas(p, anyEvent)
}

// Parasitic reports whether p is parasitic: H|p is infinite but
// contains only finitely many tryC invocations and abort events —
// i.e. p keeps executing operations in the cycle yet the cycle has no
// tryC_p and no A_p.
func (l *Lasso) Parasitic(p model.Proc) bool {
	if !l.cycleHas(p, anyEvent) {
		return false
	}
	return !l.cycleHas(p, func(e model.Event) bool {
		return e.Kind == model.InvTryCommit || e.Kind == model.RespAbort
	})
}

// Pending reports whether p is pending: only finitely many commit
// events C_p, i.e. none in the cycle.
func (l *Lasso) Pending(p model.Proc) bool {
	return !l.cycleHas(p, func(e model.Event) bool { return e.Kind == model.RespCommit })
}

// Correct reports whether p is correct: neither parasitic nor crashed.
func (l *Lasso) Correct(p model.Proc) bool {
	return !l.Crashes(p) && !l.Parasitic(p)
}

// Faulty reports whether p is faulty: crashed or parasitic.
func (l *Lasso) Faulty(p model.Proc) bool { return !l.Correct(p) }

// Starving reports whether p is starving: correct yet pending.
func (l *Lasso) Starving(p model.Proc) bool {
	return l.Correct(p) && l.Pending(p)
}

// MakesProgress reports whether the correct process p makes progress:
// it is not pending. Progress is only defined for correct processes;
// for faulty ones it returns false.
func (l *Lasso) MakesProgress(p model.Proc) bool {
	return l.Correct(p) && !l.Pending(p)
}

// CorrectProcs returns the correct processes of the lasso, sorted.
func (l *Lasso) CorrectProcs() []model.Proc {
	var out []model.Proc
	for _, p := range l.Procs {
		if l.Correct(p) {
			out = append(out, p)
		}
	}
	return out
}

// ProgressingProcs returns the correct processes that make progress.
func (l *Lasso) ProgressingProcs() []model.Proc {
	var out []model.Proc
	for _, p := range l.Procs {
		if l.MakesProgress(p) {
			out = append(out, p)
		}
	}
	return out
}

// RunsAlone returns the process that runs alone, if any: the unique
// correct process of the history (all others are faulty).
func (l *Lasso) RunsAlone() (model.Proc, bool) {
	cs := l.CorrectProcs()
	if len(cs) == 1 {
		return cs[0], true
	}
	return 0, false
}

func sortProcs(ps []model.Proc) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
