package liveness

// Property is a TM-liveness property (Definition 1): a set of infinite
// histories, represented intensionally by its membership predicate on
// lassos. Contains(l) reports whether the infinite history l "ensures"
// the property (Definition 2).
type Property struct {
	Name     string
	Contains func(*Lasso) bool
}

// LocalProgress is L_local: every correct process makes progress, or
// the history has no correct process (§3.2.1). It is the strongest
// TM-liveness property; Theorem 1 shows it cannot be ensured together
// with opacity in a fault-prone system.
var LocalProgress = Property{
	Name: "local progress",
	Contains: func(l *Lasso) bool {
		any := false
		for _, p := range l.Procs {
			if l.Correct(p) {
				any = true
				if !l.MakesProgress(p) {
					return false
				}
			}
		}
		_ = any // vacuously true with no correct process
		return true
	},
}

// GlobalProgress is L_global: at least one correct process makes
// progress, or the history has no correct process (§3.2.2). Theorem 3
// shows it is achievable together with opacity.
var GlobalProgress = Property{
	Name: "global progress",
	Contains: func(l *Lasso) bool {
		anyCorrect := false
		for _, p := range l.Procs {
			if l.Correct(p) {
				anyCorrect = true
				if l.MakesProgress(p) {
					return true
				}
			}
		}
		return !anyCorrect
	},
}

// SoloProgress is L_solo: a process that runs alone makes progress, or
// no process runs alone (§3.2.3). Obstruction-free TMs ensure it in
// parasitic-free systems.
var SoloProgress = Property{
	Name: "solo progress",
	Contains: func(l *Lasso) bool {
		p, ok := l.RunsAlone()
		if !ok {
			return true
		}
		return l.MakesProgress(p)
	},
}

// Properties lists the three named properties from weakest to
// strongest (solo ⊇ global? no — see the containment tests; the order
// here is presentational: solo, global, local).
var Properties = []Property{SoloProgress, GlobalProgress, LocalProgress}

// ViolatesNonblocking reports whether the lasso witnesses that any
// property containing it is blocking (Definition 4): some process runs
// alone yet does not make progress. A TM-liveness property L is
// nonblocking iff no history of L returns true here.
func ViolatesNonblocking(l *Lasso) bool {
	p, ok := l.RunsAlone()
	return ok && !l.MakesProgress(p)
}

// ViolatesBiprogressing reports whether the lasso witnesses that any
// property containing it is not biprogressing (Definition 5): at least
// two processes are correct, yet fewer than two make progress.
func ViolatesBiprogressing(l *Lasso) bool {
	return len(l.CorrectProcs()) >= 2 && len(l.ProgressingProcs()) < 2
}
