package liveness

import (
	"testing"
	"testing/quick"

	"livetm/internal/model"
)

// fig5 builds an infinite history in the spirit of Figure 5 (local
// progress): both processes execute infinitely many transactions that
// read v and write 1-v, and both commit infinitely often (each also
// has infinitely many aborted attempts, matching the figure's aborted
// cells).
func fig5(t *testing.T) *Lasso {
	t.Helper()
	cycle := model.NewBuilder().
		Read(1, 0, 0).Write(1, 0, 1).Commit(1).
		ReadAbort(2, 0).
		Read(2, 0, 1).Write(2, 0, 0).Commit(2).
		ReadAbort(1, 0).
		History()
	l, err := NewLasso(nil, cycle)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// fig6 builds Figure 6 (global but not local progress): p1 commits
// infinitely often; p2 is correct (aborted infinitely often) but never
// commits.
func fig6(t *testing.T) *Lasso {
	t.Helper()
	cycle := model.NewBuilder().
		Read(1, 0, 0).Write(1, 0, 1).Commit(1).
		Read(2, 0, 1).Write(2, 0, 0).CommitAbort(2).
		Read(1, 0, 1).Write(1, 0, 0).Commit(1).
		Read(2, 0, 0).Write(2, 0, 1).CommitAbort(2).
		History()
	l, err := NewLasso(nil, cycle)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// fig7 builds Figure 7 (solo progress): p1 crashes after one read, p2
// commits once then turns parasitic (reads and writes forever, never
// invoking tryC, never aborted), p3 runs alone and commits forever.
func fig7(t *testing.T) *Lasso {
	t.Helper()
	prefix := model.NewBuilder().
		Read(1, 0, 0).
		Write(2, 0, 1).Commit(2).
		History()
	cycle := model.NewBuilder().
		Read(3, 0, 1).Write(3, 0, 0).Commit(3).
		Read(2, 0, 0).Write(2, 0, 1).
		Read(3, 0, 0).Write(3, 0, 1).Commit(3).
		Read(2, 0, 1).Write(2, 0, 0).
		History()
	l, err := NewLasso(prefix, cycle)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// fig14 builds Figure 14 (violates every nonblocking property): like
// Figure 7, but p3's transactions all abort — the solo runner starves.
func fig14(t *testing.T) *Lasso {
	t.Helper()
	prefix := model.NewBuilder().
		Read(1, 0, 0).
		Write(2, 0, 1).Commit(2).
		History()
	cycle := model.NewBuilder().
		Read(3, 0, 1).Write(3, 0, 0).CommitAbort(3).
		Read(2, 0, 1).Write(2, 0, 0).
		History()
	l, err := NewLasso(prefix, cycle)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestPropertiesListOrderedByStrength(t *testing.T) {
	if len(Properties) != 3 {
		t.Fatalf("Properties has %d entries, want 3", len(Properties))
	}
	// Listed weakest to strongest: solo, global, local — so each
	// later property's histories are contained in the earlier ones.
	f := func(raw []uint8) bool {
		l := genLasso(raw)
		for i := 1; i < len(Properties); i++ {
			if Properties[i].Contains(l) && !Properties[i-1].Contains(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewLassoValidation(t *testing.T) {
	if _, err := NewLasso(nil, nil); err == nil {
		t.Error("empty cycle must be rejected")
	}
	cycle := model.NewBuilder().Read(1, 0, 0).Commit(1).History()
	if _, err := NewLassoWithProcs(nil, cycle, []model.Proc{2}); err == nil {
		t.Error("process outside the declared set must be rejected")
	}
	l, err := NewLassoWithProcs(nil, cycle, []model.Proc{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Procs) != 3 {
		t.Errorf("explicit process set not kept: %v", l.Procs)
	}
}

func TestUnroll(t *testing.T) {
	l := fig6(t)
	h0 := l.Unroll(0)
	if len(h0) != len(l.Prefix) {
		t.Errorf("Unroll(0) length = %d, want prefix length %d", len(h0), len(l.Prefix))
	}
	h3 := l.Unroll(3)
	if len(h3) != len(l.Prefix)+3*len(l.Cycle) {
		t.Errorf("Unroll(3) length = %d", len(h3))
	}
	if err := model.CheckWellFormed(h3); err != nil {
		t.Errorf("unrolled history must be well-formed: %v", err)
	}
}

func TestFig5LocalProgress(t *testing.T) {
	l := fig5(t)
	for _, p := range []model.Proc{1, 2} {
		if !l.Correct(p) {
			t.Errorf("p%d must be correct in figure 5", p)
		}
		if !l.MakesProgress(p) {
			t.Errorf("p%d must make progress in figure 5", p)
		}
	}
	if !LocalProgress.Contains(l) {
		t.Error("figure 5 must ensure local progress")
	}
	if !GlobalProgress.Contains(l) || !SoloProgress.Contains(l) {
		t.Error("figure 5 must ensure the weaker properties too")
	}
	if ViolatesNonblocking(l) || ViolatesBiprogressing(l) {
		t.Error("figure 5 must not witness blocking or uni-progress")
	}
}

func TestFig6GlobalProgress(t *testing.T) {
	l := fig6(t)
	if !l.Correct(1) || !l.Correct(2) {
		t.Error("both processes of figure 6 are correct")
	}
	if !l.MakesProgress(1) {
		t.Error("p1 must make progress in figure 6")
	}
	if l.MakesProgress(2) {
		t.Error("p2 must not make progress in figure 6")
	}
	if !l.Starving(2) {
		t.Error("p2 must be starving in figure 6")
	}
	if LocalProgress.Contains(l) {
		t.Error("figure 6 must not ensure local progress")
	}
	if !GlobalProgress.Contains(l) {
		t.Error("figure 6 must ensure global progress")
	}
	if !ViolatesBiprogressing(l) {
		t.Error("figure 6 witnesses that global progress is not biprogressing")
	}
	if ViolatesNonblocking(l) {
		t.Error("figure 6 has two correct processes, so no process runs alone")
	}
}

func TestFig7SoloProgress(t *testing.T) {
	l := fig7(t)
	if !l.Crashes(1) {
		t.Error("p1 must crash in figure 7")
	}
	if !l.Parasitic(2) {
		t.Error("p2 must be parasitic in figure 7")
	}
	if !l.Correct(3) {
		t.Error("p3 must be correct in figure 7")
	}
	solo, ok := l.RunsAlone()
	if !ok || solo != 3 {
		t.Errorf("RunsAlone = %d,%v; want 3,true", solo, ok)
	}
	if !SoloProgress.Contains(l) {
		t.Error("figure 7 must ensure solo progress")
	}
	if !GlobalProgress.Contains(l) {
		t.Error("figure 7 must ensure global progress (p3 progresses)")
	}
	if !LocalProgress.Contains(l) {
		t.Error("figure 7 ensures local progress vacuously-for-faulty: every correct process (only p3) progresses")
	}
	if ViolatesNonblocking(l) {
		t.Error("figure 7's solo runner progresses")
	}
	if ViolatesBiprogressing(l) {
		t.Error("figure 7 has fewer than two correct processes")
	}
}

func TestFig14Blocking(t *testing.T) {
	l := fig14(t)
	if !l.Crashes(1) || !l.Parasitic(2) {
		t.Error("figure 14 keeps p1 crashed and p2 parasitic")
	}
	if !l.Correct(3) {
		t.Error("p3 is aborted infinitely often, hence correct")
	}
	if !l.Starving(3) {
		t.Error("p3 must be starving in figure 14")
	}
	if !ViolatesNonblocking(l) {
		t.Error("figure 14 must witness blocking: the solo runner starves")
	}
	if SoloProgress.Contains(l) || GlobalProgress.Contains(l) || LocalProgress.Contains(l) {
		t.Error("figure 14 must not ensure any of the named properties")
	}
}

func TestCrashedVsAbsentProcess(t *testing.T) {
	cycle := model.NewBuilder().Read(1, 0, 0).Commit(1).History()
	prefix := model.NewBuilder().Read(2, 0, 0).History()
	l, err := NewLassoWithProcs(prefix, cycle, []model.Proc{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Crashes(2) {
		t.Error("p2 has prefix events only: crashed")
	}
	if l.Crashes(3) {
		t.Error("p3 has no events at all: H|p3 is empty, not a finite non-empty sequence")
	}
	if l.Parasitic(3) {
		t.Error("an absent process is not parasitic")
	}
	if !l.Pending(3) {
		t.Error("an absent process has no commits, hence pending")
	}
}

func TestParasiticNeedsInfinitelyManyOps(t *testing.T) {
	// p2 executes reads/writes in the prefix only, then stops: that is
	// a crash, not parasitism.
	prefix := model.NewBuilder().Read(2, 0, 0).Write(2, 0, 1).History()
	cycle := model.NewBuilder().Read(1, 0, 0).Commit(1).History()
	l, err := NewLasso(prefix, cycle)
	if err != nil {
		t.Fatal(err)
	}
	if l.Parasitic(2) {
		t.Error("finitely many operations cannot make a process parasitic")
	}
	if !l.Crashes(2) {
		t.Error("p2 crashes")
	}
}

func TestAbortedForeverIsNotParasitic(t *testing.T) {
	// A process aborted infinitely often is correct even if it never
	// invokes tryC (the TM aborts its reads).
	cycle := model.NewBuilder().ReadAbort(2, 0).Read(1, 0, 0).Commit(1).History()
	l, err := NewLasso(nil, cycle)
	if err != nil {
		t.Fatal(err)
	}
	if l.Parasitic(2) {
		t.Error("infinitely many aborts exclude parasitism")
	}
	if !l.Starving(2) {
		t.Error("p2 is correct and pending: starving")
	}
}

// --- Figure 2: the class lattice, as properties over random lassos ---

func TestClassLatticeProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		l := genLasso(raw)
		for _, p := range l.Procs {
			crashed, parasitic := l.Crashes(p), l.Parasitic(p)
			pending, correct := l.Pending(p), l.Correct(p)
			starving, faulty := l.Starving(p), l.Faulty(p)

			// Figure 2 arrows (c1 → c2 means c1 ⊆ c2).
			if crashed && !faulty {
				return false // crashed → faulty
			}
			if parasitic && !faulty {
				return false // parasitic → faulty
			}
			if crashed && !pending {
				return false // crashed → pending
			}
			if parasitic && !pending {
				return false // parasitic → pending
			}
			if starving && !(pending && correct) {
				return false // starving → pending, starving → correct
			}
			if !pending && crashed {
				return false // not-pending → not-crashed
			}
			// Definitional complements.
			if crashed && parasitic {
				return false // finite vs infinite projection
			}
			if correct == faulty {
				return false
			}
			if l.MakesProgress(p) && (pending || !correct) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: local ⊆ global ⊆ solo as history sets.
func TestPropertyContainmentProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		l := genLasso(raw)
		if LocalProgress.Contains(l) && !GlobalProgress.Contains(l) {
			return false
		}
		if GlobalProgress.Contains(l) && !SoloProgress.Contains(l) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: local progress is nonblocking and biprogressing; global
// and solo progress are nonblocking (their biprogressing failures are
// witnessed by Figures 6 and 7 above).
func TestPropertyClassesProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		l := genLasso(raw)
		if LocalProgress.Contains(l) && (ViolatesNonblocking(l) || ViolatesBiprogressing(l)) {
			return false
		}
		if GlobalProgress.Contains(l) && ViolatesNonblocking(l) {
			return false
		}
		if SoloProgress.Contains(l) && ViolatesNonblocking(l) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// genLasso derives a well-formed lasso from fuzz bytes: whole
// operations of up to three processes split across prefix and cycle.
// Processes may end up crashed (prefix-only), parasitic (cycle ops
// without tryC or aborts), starving, or progressing.
func genLasso(raw []uint8) *Lasso {
	split := 0
	if len(raw) > 0 {
		split = int(raw[0]) % (len(raw) + 1)
	}
	build := func(bs []uint8) model.History {
		b := model.NewBuilder()
		for _, c := range bs {
			p := model.Proc(c%3 + 1)
			x := model.TVar(c / 3 % 2)
			v := model.Value(c / 6 % 3)
			switch c % 5 {
			case 0:
				b.Read(p, x, v)
			case 1:
				b.Write(p, x, v)
			case 2:
				b.Commit(p)
			case 3:
				b.CommitAbort(p)
			case 4:
				b.ReadAbort(p, x)
			}
		}
		return b.History()
	}
	prefix := build(raw[:split])
	cycle := build(raw[split:])
	if len(cycle) == 0 {
		cycle = model.NewBuilder().Read(1, 0, 0).Commit(1).History()
	}
	l, err := NewLassoWithProcs(prefix, cycle, []model.Proc{1, 2, 3})
	if err != nil {
		panic(err)
	}
	return l
}
