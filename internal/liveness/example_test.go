package liveness_test

import (
	"fmt"

	"livetm/internal/liveness"
	"livetm/internal/model"
)

// The paper's Figure 6: p1 commits forever, p2 aborts forever —
// global but not local progress.
func ExampleLasso() {
	cycle := model.NewBuilder().
		Read(1, 0, 0).Write(1, 0, 1).Commit(1).
		Read(2, 0, 1).Write(2, 0, 0).CommitAbort(2).
		History()
	l, _ := liveness.NewLasso(nil, cycle)
	fmt.Println("p1 progresses:", l.MakesProgress(1))
	fmt.Println("p2 starving:", l.Starving(2))
	fmt.Println("local:", liveness.LocalProgress.Contains(l))
	fmt.Println("global:", liveness.GlobalProgress.Contains(l))
	// Output:
	// p1 progresses: true
	// p2 starving: true
	// local: false
	// global: true
}

// A crashed process has events in the prefix but none in the cycle.
func ExampleLasso_Crashes() {
	prefix := model.NewBuilder().Read(1, 0, 0).History()
	cycle := model.NewBuilder().Read(2, 0, 0).Commit(2).History()
	l, _ := liveness.NewLasso(prefix, cycle)
	fmt.Println(l.Crashes(1), l.Crashes(2))
	// Output:
	// true false
}

// KProgress interpolates between global (k=1) and local (k=n)
// progress.
func ExampleKProgress() {
	cycle := model.NewBuilder().
		Read(1, 0, 0).Commit(1).
		ReadAbort(2, 0).
		History()
	l, _ := liveness.NewLasso(nil, cycle)
	fmt.Println(liveness.KProgress(1).Contains(l), liveness.KProgress(2).Contains(l))
	// Output:
	// true false
}
