// Package engine unifies the repository's two transactional-memory
// substrates behind one API, so every algorithm and every workload
// can be driven through the same interface.
//
// # The two substrates
//
// The simulated substrate (internal/stm/... under internal/sim) runs
// each process as a goroutine of a deterministic cooperative
// scheduler: exactly one process advances at a time, preemption and
// crashes happen at explicit yield points, and runs are bit-for-bit
// reproducible. It is the vehicle for the paper's formal experiments
// — liveness classification, adversary strategies, history recording,
// opacity checking — because the scheduler can adversarially place
// every context switch and the recorded histories feed the checkers.
// What it cannot measure is wall-clock scalability: only one process
// ever runs.
//
// The native substrate (internal/native) runs transactions from real
// goroutines on real cores over sync/atomic, reproducing the paper's
// footnote-1 motivation — resilient TMs matter because of parallel
// hardware. It measures real throughput and real contention, but
// schedules are up to the Go runtime and the hardware, so runs are not
// reproducible. Histories, however, are recordable on both substrates:
// with RunConfig.Record a native run is observed at its linearization
// points (internal/native's Observer hooks feeding internal/record's
// per-process chunked buffers, globally ordered by one atomic sequence
// counter), and Stats.History carries a well-formed model.History of
// what the hardware actually did. RunConfig.QuiesceEvery plants
// quiescent cuts in recorded runs so the segmented and streaming
// opacity checkers (safety.CheckOpacitySegmented, internal/monitor)
// can verify arbitrarily long native executions in bounded memory.
//
// # Sessions
//
// The paper's liveness results are statements about ongoing systems —
// processes that keep issuing transactions forever while the
// environment schedules them — so the package's core is a long-lived
// Session, not a closed batch run. Open (or Engine.Open) starts a TM
// instance with a worker pool; clients submit individual transactions
// with Session.Exec (blocking, returning the commit error) and
// Session.Submit (async, with a result callback), pinned to a worker
// or to AnyWorker; Session.Stats snapshots the counters mid-flight;
// Session.AddWorkers admits more workers while traffic flows (native
// substrate, up to the provisioned MaxWorkers); and Session.Close
// drains the in-flight transactions and returns the monitor's final
// report. Engine.Run is the batch convenience wrapper over exactly
// this: open a session, keep each worker's lane loaded with its
// OpsPerProc rounds, drain, close. `livetm serve` is the same shape as
// a SIGTERM-clean soak service.
//
// The submission surface is factored out as the Submitter interface
// (Exec/ExecOn blocking, Submit/SubmitOn async) so layers that put
// sessions on the wire depend on the capability, not the struct:
// internal/server adapts any Submitter to an HTTP/JSON wire API with
// per-client fair admission, and internal/client speaks it back.
// Backpressure is part of the contract — SessionConfig.MaxQueue
// bounds each worker lane and an async Submit against a full lane
// refuses immediately with ErrOverloaded rather than blocking, the
// sentinel the server translates to HTTP 429 plus a Retry-After
// hint. Every sentinel in this package (ErrOverloaded, ErrClosed,
// ErrStopped, ErrStepBudget, ErrBusy, ErrNoCommit, ErrLiveViolation)
// round-trips the wire as a stable code, so errors.Is holds on both
// ends of the connection.
//
// On the native substrate workers are real goroutines and submissions
// execute as soon as a worker frees up; quiescent cuts for the
// checkers are brief global pauses (no new transaction starts while
// in-flight ones finish) since idle workers cannot rendezvous at a
// barrier. On the simulated substrate the session is demand-driven:
// the cooperative scheduler steps while a caller blocks in Exec, Drain
// or Close, which is what keeps batch runs bit-for-bit deterministic.
//
// # Live monitoring
//
// SessionConfig.Live (RunConfig.Live on the batch wrapper) keeps the
// online monitor resident for the session's lifetime: the recorder
// publishes every stamped event into a bounded channel, a pump
// goroutine restores the total order by sequence number and feeds
// internal/monitor while transactions execute. A safety violation
// stops the session mid-flight — the stop signal threads through the
// native retry loop, so even a transaction wedged in retries stops;
// outstanding submissions fail with ErrStopped and Close (or Run)
// returns ErrLiveViolation with the verdict in the report. The same
// feedback path drives starvation-aware backoff: the monitor's
// per-process starvation intervals periodically rebias the shared
// backoff policy (native.Backoff) so starved processes back off less
// and hot ones more, within the capped dynamic range reported by
// Stats.BackoffCap. Live without Record retains nothing: each process
// recycles a ring chunk after its events are streamed, capping
// recorder allocation for arbitrarily long monitored sessions
// (Stats.RecorderChunks). Streams whose schedule outruns the segment
// budget between quiescent cuts degrade to an explicit approximate
// verdict (forced serialization frontiers) instead of failing.
//
// # Sharding
//
// SessionConfig.Shards partitions a monitored native session end to
// end so the checker keeps up with the workers instead of serializing
// behind one stream. The keyspace splits into S contiguous shards
// (variable v lands on shard v*S/Vars) and the worker pool into S
// matching groups (worker p on shard p*S/MaxWorkers), so on a
// disjoint workload each transaction stays inside its home shard.
// Three things then become shard-local: the quiescent cut (a cut on
// shard k pauses only shard k's workers, and the rendezvous interval
// scales with the group size so each shard quiesces at the configured
// per-worker cadence), the recorder's shard tag on every streamed
// event, and the checker — the monitor routes events to one streaming
// lane per shard (safety.ShardedChecker) and lanes verify their
// segments concurrently. Per-shard cut counts and pause-latency
// percentiles land in Stats.ShardCuts/CutLatency, per-lane segment
// counts in the monitor report's ShardSegments.
//
// A transaction that touches a variable outside its home shard is
// handled on both sides: the checker routes by variable and merges
// the lanes around the spanning transaction (group closure), keeping
// the verdict identical to the single-lane checker's; the session,
// once it observes any cross-shard access, stickily degrades
// subsequent cuts to global ones (all shard locks, in order) so every
// future cut is still a true quiescent point. Shards must be a power
// of two, at most Workers and Vars, dividing Workers and MaxWorkers,
// and the session must be recorded or live — sharding exists for the
// checker, and the simulated substrate (one runnable process, one
// global order) rejects it.
//
// # Telemetry
//
// SessionConfig.Telemetry accepts a telemetry.Registry and turns the
// session's internal accounting into scrapeable metric families. The
// same instruments always exist — with a nil registry the session
// allocates bare (unregistered) counters, gauges, and histograms that
// cost exactly one atomic operation per update and back SessionStats;
// with a registry those instruments are additionally named, labeled,
// and visible to Snapshot/the HTTP handler, and the clock-involving
// extras (Exec-latency histogram, the native retry loop's per-algo
// transaction metrics) switch on. Stats is therefore a fold of the
// registry, never a parallel set of counters: CutLatency and
// ShardCuts are quantiles of the per-shard livetm_cut_pause_ns
// histograms, Commits sums the per-worker
// livetm_session_commits_total series, and so on.
//
// The family catalog spans every layer: livetm_tx_* from the native
// retry loop (starts/commits/retries, aborts by cause, retry-latency
// and backoff-wait histograms, labeled by algorithm); livetm_session_*
// from the worker pool (submitted/completed, per-worker commits,
// shared/pinned queue-depth gauges, worker count, AddWorkers
// admissions, Exec latency); livetm_cut_pause_ns per shard;
// livetm_recorder_* (events, chunk gauge, recycled, stream drops);
// livetm_checker_* per lane plus a merge lane (segments, forced cuts,
// relaxed straddlers, lane-lag gauges); and the monitor's live gauges
// (livetm_monitor_liveness_class as a lattice ordinal,
// livetm_monitor_starvation and livetm_backoff_bias per process).
// Gauges owned by single-writer goroutines (lane lag, monitor class)
// are pushed by their owners so scrapers never race workers; every
// scrape works from an immutable Snapshot.
//
// The instrumented-vs-bare cost is an enforced budget, not a hope:
// BenchmarkTelemetryOverhead compares sessions with and without a
// registry and CI fails the build when the ratio exceeds
// telemetry.OverheadBudgetRatio.
//
// Use the simulated substrate to ask "is it correct / live under this
// exact adversarial schedule", the native substrate to ask "how fast
// is it on this machine", a recorded native run to ask "was this real
// execution opaque, and which processes progressed", and a live native
// session to ask "is it still opaque, and who is starving, right now".
// The workload matrix (internal/workload) declares each scenario once
// and runs it on every (algorithm, substrate) pair through this
// package.
//
// # The batch API
//
// An Engine wraps one algorithm on one substrate. Engine.Run spawns
// cfg.Procs processes that each execute a TxBody as repeated
// transactions until the budget is exhausted — scheduler steps on the
// simulated substrate, transaction rounds on the native one — and
// returns aggregate commit/abort statistics, plus the recorded
// history when the substrate supports it. Capabilities reports what
// the substrate can do so callers can select engines by feature
// rather than by name. Engines are safe for sequential reuse; a
// concurrent second Run on one engine value returns ErrBusy, and any
// number of Sessions may be open concurrently.
//
// Engines returns the full cross-product registry: the nine simulated
// TMs of core.Registry and the five native algorithms of
// native.Algorithms, all behind this one interface.
//
// The registry is also where the paper's impossibility arguments meet
// the production-style algorithms: the adversary conformance suite
// (adversary_test.go) drives the Theorem 1 strategies
// (internal/adversary) against every native algorithm and asserts the
// no-local-progress dichotomy — p1 never commits, or nobody does — on
// every strategy-variant × algorithm cell, with per-process starvation
// intervals harvested from the online monitor.
package engine
