package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"livetm/internal/native"
)

// openTestSession opens a session on a registry engine or fails the
// test.
func openTestSession(t *testing.T, name string, cfg SessionConfig) *Session {
	t.Helper()
	cfg.Engine = name
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	return s
}

// counterSessionBody increments variable x once.
func counterSessionBody(x int) Body {
	return func(tx Tx) error {
		v, err := tx.Read(x)
		if err != nil {
			return err
		}
		return tx.Write(x, v+1)
	}
}

// TestSessionExecBothSubstrates: the basic session loop — open, Exec a
// few transactions, Stats, Close — commits on both substrates, and the
// committed increments are all there.
func TestSessionExecBothSubstrates(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  SessionConfig
	}{
		{"native-tl2", SessionConfig{Workers: 2, Vars: 1}},
		{"sim-tl2", SessionConfig{Workers: 2, Vars: 1, SimSteps: 50000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := openTestSession(t, tc.name, tc.cfg)
			const n = 20
			for i := 0; i < n; i++ {
				if err := s.Exec(context.Background(), counterSessionBody(0)); err != nil {
					t.Fatalf("exec %d: %v", i, err)
				}
			}
			var got int64
			if err := s.Exec(context.Background(), func(tx Tx) error {
				v, err := tx.Read(0)
				got = v
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if got != n {
				t.Errorf("counter = %d, want %d", got, n)
			}
			st := s.Stats()
			if st.Commits != n+1 || st.Submitted != n+1 || st.Completed != n+1 {
				t.Errorf("stats = %+v, want %d commits/submitted/completed", st, n+1)
			}
			if rep, err := s.Close(); err != nil || rep != nil {
				t.Fatalf("close: rep=%v err=%v, want nil/nil on a non-live session", rep, err)
			}
		})
	}
}

// TestSessionMoreSubmittersThanWorkers floods a small pool from many
// client goroutines: every submission must execute exactly once, and
// the counter must account for every commit. Run with -race.
func TestSessionMoreSubmittersThanWorkers(t *testing.T) {
	const workers, submitters, perSubmitter = 2, 9, 40
	s := openTestSession(t, "native-tinystm", SessionConfig{Workers: workers, Vars: 1, QueueDepth: 4})
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perSubmitter; j++ {
				if err := s.Exec(context.Background(), counterSessionBody(0)); err != nil {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d submissions failed", failed.Load())
	}
	st := s.Stats()
	const want = submitters * perSubmitter
	if st.Commits != want || st.Completed != want {
		t.Errorf("commits=%d completed=%d, want %d", st.Commits, st.Completed, want)
	}
	if len(st.PerWorkerCommits) != workers {
		t.Errorf("per-worker commits cover %d workers, want %d", len(st.PerWorkerCommits), workers)
	}
	var final int64
	if err := s.Exec(context.Background(), func(tx Tx) error {
		v, err := tx.Read(0)
		final = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if final != want {
		t.Errorf("counter = %d, want %d", final, want)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionCloseDrainsInFlight: Close must execute everything
// already accepted — async submissions included — before returning,
// and late submissions must fail with ErrClosed. Run with -race.
func TestSessionCloseDrainsInFlight(t *testing.T) {
	s := openTestSession(t, "native-norec", SessionConfig{Workers: 3, Vars: 1, QueueDepth: 8})
	const n = 300
	var done atomic.Int64
	for i := 0; i < n; i++ {
		if err := s.Submit(counterSessionBody(0), func(err error) {
			if err == nil {
				done.Add(1)
			}
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := done.Load(); got != n {
		t.Errorf("%d of %d accepted submissions completed across Close", got, n)
	}
	st := s.Stats()
	if st.Submitted != n || st.Completed != n || st.Commits != n {
		t.Errorf("stats after close = %+v, want %d everywhere", st, n)
	}
}

// TestSessionMisuse: Exec/Submit after Close and double Close return
// ErrClosed on both substrates; out-of-range workers are rejected.
func TestSessionMisuse(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  SessionConfig
	}{
		{"native-tl2", SessionConfig{Workers: 1, Vars: 1}},
		{"sim-dstm", SessionConfig{Workers: 1, Vars: 1, SimSteps: 1000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := openTestSession(t, tc.name, tc.cfg)
			if err := s.ExecOn(context.Background(), 7, counterSessionBody(0)); err == nil {
				t.Error("ExecOn an unadmitted worker must error")
			}
			if _, err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := s.Exec(context.Background(), counterSessionBody(0)); !errors.Is(err, ErrClosed) {
				t.Errorf("Exec after Close: err = %v, want ErrClosed", err)
			}
			if err := s.Submit(counterSessionBody(0), nil); !errors.Is(err, ErrClosed) {
				t.Errorf("Submit after Close: err = %v, want ErrClosed", err)
			}
			if _, err := s.Close(); !errors.Is(err, ErrClosed) {
				t.Errorf("second Close: err = %v, want ErrClosed", err)
			}
		})
	}
}

// TestConcurrentRunReturnsErrBusy: a second Run on an engine value
// that is already running must fail with ErrBusy instead of racing on
// the instance. Run with -race.
func TestConcurrentRunReturnsErrBusy(t *testing.T) {
	t.Run("native", func(t *testing.T) {
		e, _ := Lookup("native-tl2")
		started := make(chan struct{})
		release := make(chan struct{})
		done := make(chan struct{})
		var once sync.Once
		go func() {
			defer close(done)
			_, err := e.Run(RunConfig{Procs: 1, Vars: 1, OpsPerProc: 1},
				func(proc, round int, tx Tx) error {
					once.Do(func() { close(started) })
					<-release
					return tx.Write(0, 1)
				})
			if err != nil {
				t.Errorf("blocked run: %v", err)
			}
		}()
		<-started
		if _, err := e.Run(RunConfig{Procs: 1, Vars: 1, OpsPerProc: 1}, counterBody(0)); !errors.Is(err, ErrBusy) {
			t.Errorf("concurrent Run: err = %v, want ErrBusy", err)
		}
		close(release)
		<-done
	})
	t.Run("sim", func(t *testing.T) {
		e, _ := Lookup("sim-tl2")
		var nested error
		_, err := e.Run(RunConfig{Procs: 1, Vars: 1, SimSteps: 1000, OpsPerProc: 1},
			func(proc, round int, tx Tx) error {
				// Re-entering Run from a body is the deterministic way to
				// observe the guard on the synchronous substrate.
				_, nested = e.Run(RunConfig{Procs: 1, Vars: 1, SimSteps: 10, OpsPerProc: 1}, counterBody(0))
				return tx.Write(0, 1)
			})
		if err != nil {
			t.Fatal(err)
		}
		if !errors.Is(nested, ErrBusy) {
			t.Errorf("nested Run: err = %v, want ErrBusy", nested)
		}
	})
}

// TestSessionLiveViolationStops: a live session around the violating
// TM must stop mid-session — in-flight and later submissions fail with
// ErrStopped — and Close must return ErrLiveViolation with the failing
// verdict in the final report. Run with -race.
func TestSessionLiveViolationStops(t *testing.T) {
	s, err := bogusEngine().Open(SessionConfig{Workers: 3, Vars: 2, Live: true})
	if err != nil {
		t.Fatal(err)
	}
	var stopped bool
	for i := 0; i < 200000; i++ {
		err := s.Exec(context.Background(), func(tx Tx) error {
			_, err := tx.Read(0)
			return err
		})
		if errors.Is(err, ErrStopped) {
			stopped = true
			break
		}
		if err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
	}
	if !stopped {
		t.Fatal("no submission was stopped by the live monitor")
	}
	if err := s.Exec(context.Background(), counterSessionBody(0)); !errors.Is(err, ErrStopped) {
		t.Errorf("post-stop Exec: err = %v, want ErrStopped", err)
	}
	rep, err := s.Close()
	if !errors.Is(err, ErrLiveViolation) {
		t.Fatalf("close: err = %v, want ErrLiveViolation", err)
	}
	if rep == nil || !rep.Checked || rep.Opacity.Holds {
		t.Fatalf("final report must carry the violation: %+v", rep)
	}
	if !s.Stats().Stopped {
		t.Error("Stats.Stopped must report the mid-session stop")
	}
}

// TestSessionLiveHealthySoak: a healthy live session serves a batch of
// concurrent submitters with the monitor running for the session's
// lifetime, and Close returns a holding verdict with per-worker
// accounting. Run with -race.
func TestSessionLiveHealthySoak(t *testing.T) {
	const workers, submitters, per = 3, 6, 60
	s := openTestSession(t, "native-tl2", SessionConfig{Workers: workers, Vars: 2, Live: true})
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if err := s.Exec(context.Background(), counterSessionBody(j%2)); err != nil {
					t.Errorf("exec: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mid := s.Stats()
	if mid.Commits != submitters*per {
		t.Errorf("mid-flight commits = %d, want %d", mid.Commits, submitters*per)
	}
	if mid.BackoffCap != native.DefaultBackoffCap || len(mid.BackoffBias) != workers {
		t.Errorf("backoff snapshot = cap %d bias %v, want cap %d over %d workers",
			mid.BackoffCap, mid.BackoffBias, native.DefaultBackoffCap, workers)
	}
	rep, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || !rep.Checked || !rep.Opacity.Holds {
		t.Fatalf("healthy soak verdict: %+v", rep)
	}
	if len(rep.Procs) != workers {
		t.Errorf("report covers %d procs, want %d", len(rep.Procs), workers)
	}
	if s.History() != nil {
		t.Error("live session without Record must retain no history")
	}
}

// TestSessionAddWorkers: dynamic admission grows the pool up to
// MaxWorkers mid-session, newly admitted workers serve pinned
// submissions, and the recorded stream stays correct (the live monitor
// absorbs the new process). The simulated substrate refuses. Run with
// -race.
func TestSessionAddWorkers(t *testing.T) {
	s := openTestSession(t, "native-dstm", SessionConfig{Workers: 1, MaxWorkers: 3, Vars: 1, Live: true})
	if err := s.Exec(context.Background(), counterSessionBody(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddWorkers(2); err != nil {
		t.Fatalf("AddWorkers: %v", err)
	}
	if got := s.Stats().Workers; got != 3 {
		t.Fatalf("admitted workers = %d, want 3", got)
	}
	for w := 0; w < 3; w++ {
		for i := 0; i < 8; i++ {
			if err := s.ExecOn(context.Background(), w, counterSessionBody(0)); err != nil {
				t.Fatalf("worker %d: %v", w, err)
			}
		}
	}
	if err := s.AddWorkers(1); err == nil {
		t.Error("admission beyond MaxWorkers must error")
	}
	rep, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Checked || !rep.Opacity.Holds {
		t.Fatalf("verdict after dynamic admission: %+v", rep.Opacity)
	}
	st := s.Stats()
	if st.Commits != 1+3*8 {
		t.Errorf("commits = %d, want %d", st.Commits, 1+3*8)
	}
	for w, c := range st.PerWorkerCommits[1:] {
		if c != 8 {
			t.Errorf("late worker %d commits = %d, want 8", w+1, c)
		}
	}

	sim := openTestSession(t, "sim-tl2", SessionConfig{Workers: 1, Vars: 1, SimSteps: 100})
	defer sim.Close()
	if err := sim.AddWorkers(1); err == nil {
		t.Error("the simulated substrate must refuse dynamic admission")
	}
}

// TestSessionSimFatalBodyError: on the cooperative substrate a
// terminal body error crashes the worker with its implicit transaction
// live, wedging the session: the failing Exec returns the error, later
// submissions fail with it, and Close reports it.
func TestSessionSimFatalBodyError(t *testing.T) {
	sentinel := errors.New("sentinel")
	s := openTestSession(t, "sim-glock", SessionConfig{Workers: 2, Vars: 1, SimSteps: 100000})
	if err := s.Exec(context.Background(), func(tx Tx) error {
		if err := tx.Write(0, 1); err != nil {
			return err
		}
		return sentinel // exits holding the global lock
	}); !errors.Is(err, sentinel) {
		t.Fatalf("exec: err = %v, want sentinel", err)
	}
	if err := s.Exec(context.Background(), counterSessionBody(0)); !errors.Is(err, sentinel) {
		t.Errorf("post-crash Exec: err = %v, want the wedging error", err)
	}
	if _, err := s.Close(); !errors.Is(err, sentinel) {
		t.Errorf("close: err = %v, want the wedging error", err)
	}
}

// TestRunSessionEquivalence: the batch Run and an equivalent explicit
// session submission (every round pinned to its worker, drained, then
// closed) produce identical commit totals, per-worker splits, aborts
// and step counts on the deterministic substrate.
func TestRunSessionEquivalence(t *testing.T) {
	const procs, ops, vars = 3, 8, 2
	cfg := RunConfig{Procs: procs, Vars: vars, Seed: 17, OpsPerProc: ops, SimSteps: 100000}
	e, _ := Lookup("sim-tl2")
	batch, err := e.Run(cfg, mixedBody(vars))
	if err != nil {
		t.Fatal(err)
	}
	if batch.Commits == 0 {
		t.Fatal("batch run committed nothing")
	}

	s, err := e.Open(SessionConfig{Workers: procs, Vars: vars, Seed: 17, SimSteps: 100000})
	if err != nil {
		t.Fatal(err)
	}
	body := mixedBody(vars)
	for p := 0; p < procs; p++ {
		for r := 0; r < ops; r++ {
			p, r := p, r
			if err := s.SubmitOn(p, func(tx Tx) error { return body(p, r, tx) }, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Commits != batch.Commits || st.Aborts != batch.Aborts || st.Steps != batch.Steps {
		t.Fatalf("session run diverged: commits %d/%d aborts %d/%d steps %d/%d",
			st.Commits, batch.Commits, st.Aborts, batch.Aborts, st.Steps, batch.Steps)
	}
	for p := range st.PerWorkerCommits {
		if st.PerWorkerCommits[p] != batch.PerProcCommits[p] {
			t.Fatalf("worker %d diverged: %v vs %v", p, st.PerWorkerCommits, batch.PerProcCommits)
		}
	}
}

// TestSessionCallbackResubmitSaturated: result callbacks that submit
// follow-up work must never deadlock the pool, even with every lane at
// its backpressure threshold — async Submit is non-blocking by
// contract, only Exec feels QueueDepth. Run with -race.
func TestSessionCallbackResubmitSaturated(t *testing.T) {
	const workers, chains, depth = 2, 60, 5
	s := openTestSession(t, "native-tl2", SessionConfig{Workers: workers, Vars: 1, QueueDepth: 1})
	var done atomic.Int64
	var submit func(left int) error
	submit = func(left int) error {
		return s.Submit(counterSessionBody(0), func(err error) {
			if err != nil {
				t.Errorf("chained submission: %v", err)
				return
			}
			done.Add(1)
			if left > 1 {
				if err := submit(left - 1); err != nil {
					t.Errorf("resubmit: %v", err)
				}
			}
		})
	}
	for i := 0; i < chains; i++ {
		if err := submit(depth); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := done.Load(); got != chains*depth {
		t.Fatalf("completed %d of %d chained submissions", got, chains*depth)
	}
}

// TestSessionExecBackpressureHonorsContext: an Exec blocked in the
// QueueDepth admission wait must abandon it when its context ends,
// instead of waiting for room indefinitely. Run with -race.
func TestSessionExecBackpressureHonorsContext(t *testing.T) {
	s := openTestSession(t, "native-tl2", SessionConfig{Workers: 1, Vars: 1, QueueDepth: 1})
	release := make(chan struct{})
	if err := s.SubmitOn(0, func(tx Tx) error {
		<-release // occupy the only worker
		return tx.Write(0, 1)
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitOn(0, counterSessionBody(0), nil); err != nil {
		t.Fatal(err) // fills the pinned lane to QueueDepth
	}
	ctx, cancel := context.WithCancel(context.Background())
	execErr := make(chan error, 1)
	go func() { execErr <- s.ExecOn(ctx, 0, counterSessionBody(0)) }()
	cancel()
	if err := <-execErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked Exec: err = %v, want context.Canceled", err)
	}
	close(release)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Completed; got != 2 {
		t.Fatalf("completed = %d, want 2 (the cancelled Exec was never admitted)", got)
	}
}

// TestSessionMaxQueueOverloaded: the hard admission cap — an async
// Submit whose lane is full is refused with ErrOverloaded on both
// substrates, refusal is immediate (never blocks), and freeing the
// lane readmits.
func TestSessionMaxQueueOverloaded(t *testing.T) {
	t.Run("native-tl2", func(t *testing.T) {
		s := openTestSession(t, "native-tl2", SessionConfig{Workers: 1, Vars: 1, MaxQueue: 1})
		started := make(chan struct{})
		release := make(chan struct{})
		if err := s.SubmitOn(0, func(tx Tx) error {
			close(started)
			<-release // occupy the only worker, off the lane
			return tx.Write(0, 1)
		}, nil); err != nil {
			t.Fatal(err)
		}
		<-started
		if err := s.SubmitOn(0, counterSessionBody(0), nil); err != nil {
			t.Fatalf("submission filling the lane: %v", err) // lane now at MaxQueue
		}
		if err := s.SubmitOn(0, counterSessionBody(0), nil); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("over-cap submit err = %v, want ErrOverloaded", err)
		}
		// The shared lane has its own cap.
		if err := s.Submit(counterSessionBody(0), nil); err != nil {
			t.Fatalf("shared-lane submit: %v", err)
		}
		if err := s.Submit(counterSessionBody(0), nil); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("over-cap shared submit err = %v, want ErrOverloaded", err)
		}
		close(release)
		if err := s.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Drained lanes admit again.
		if err := s.SubmitOn(0, counterSessionBody(0), nil); err != nil {
			t.Fatalf("submit after drain: %v", err)
		}
		if _, err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("sim-tl2", func(t *testing.T) {
		// The simulated scheduler only runs under Exec/Drain, so queued
		// submissions stay in the lane: the second async Submit trips
		// the cap deterministically.
		s := openTestSession(t, "sim-tl2", SessionConfig{Workers: 1, Vars: 1, SimSteps: 50000, MaxQueue: 1})
		if err := s.Submit(counterSessionBody(0), nil); err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(counterSessionBody(0), nil); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("over-cap sim submit err = %v, want ErrOverloaded", err)
		}
		if err := s.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(counterSessionBody(0), nil); err != nil {
			t.Fatalf("submit after drain: %v", err)
		}
		if _, err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSessionSubmitWorkerOutOfRange: pinned submissions past the
// admitted pool (or negative, other than AnyWorker) are refused
// outright on both substrates — async and blocking alike.
func TestSessionSubmitWorkerOutOfRange(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  SessionConfig
	}{
		{"native-tl2", SessionConfig{Workers: 2, Vars: 1}},
		{"sim-tl2", SessionConfig{Workers: 2, Vars: 1, SimSteps: 50000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := openTestSession(t, tc.name, tc.cfg)
			for _, worker := range []int{2, 99, -2} {
				if err := s.SubmitOn(worker, counterSessionBody(0), func(error) {
					t.Errorf("callback invoked for refused worker %d", worker)
				}); err == nil {
					t.Errorf("SubmitOn(%d) accepted, want out-of-range refusal", worker)
				}
				if err := s.ExecOn(context.Background(), worker, counterSessionBody(0)); err == nil {
					t.Errorf("ExecOn(%d) accepted, want out-of-range refusal", worker)
				}
			}
			if st := s.Stats(); st.Submitted != 0 {
				t.Errorf("refused submissions counted: %+v", st)
			}
			if _, err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSessionSubmitCallbacksRaceClose floods Submit from several
// goroutines while Close runs: every accepted submission's callback
// fires exactly once (executed or failed, but never dropped and never
// doubled). Run with -race.
func TestSessionSubmitCallbacksRaceClose(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  SessionConfig
	}{
		{"native-tl2", SessionConfig{Workers: 2, Vars: 1}},
		{"sim-tl2", SessionConfig{Workers: 2, Vars: 1, SimSteps: 200000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := openTestSession(t, tc.name, tc.cfg)
			const floods = 4
			var accepted, fired atomic.Int64
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for g := 0; g < floods; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						err := s.Submit(counterSessionBody(0), func(error) { fired.Add(1) })
						if errors.Is(err, ErrClosed) {
							return
						}
						if err == nil {
							accepted.Add(1)
						}
					}
				}()
			}
			// Let the flood run, then close under it.
			for accepted.Load() < 100 {
				runtime.Gosched()
			}
			_, cerr := s.Close()
			close(stop)
			wg.Wait()
			if cerr != nil && !errors.Is(cerr, ErrStepBudget) {
				t.Fatalf("close: %v", cerr)
			}
			// Close drained the workers, so no callback is still in
			// flight: the counts must match exactly.
			if accepted.Load() != fired.Load() {
				t.Fatalf("accepted %d submissions but %d callbacks fired", accepted.Load(), fired.Load())
			}
		})
	}
}
